#!/usr/bin/env bash
# Full local gate: configure, build, test, sanitize, bench-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== release-ish build + tests =="
cmake -B build -G Ninja >/dev/null
cmake --build build
ctest --test-dir build --output-on-failure

echo "== ASan/UBSan build + tests =="
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" >/dev/null
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure

echo "== bench smoke =="
for b in build/bench/*; do
  if [[ -x "$b" && -f "$b" ]]; then
    echo "--- $b"
    case "$b" in
      *bench_micro|*bench_explorer|*bench_stack)
        "$b" --benchmark_min_time=0.05 ;;
      *)
        "$b" ;;
    esac
  fi
done

echo "== examples =="
./build/examples/quickstart
./build/examples/model_checker 3 1000 3
./build/examples/model_checker --exhaustive 2

echo "ALL CHECKS PASSED"
