#!/usr/bin/env bash
# Full local gate: configure, build, test, sanitize (ASan/UBSan + TSan),
# bench-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

# Reuse whatever generator an existing build dir was configured with; only
# ask for Ninja on a fresh configure (CMake errors on a generator switch).
configure() {
  local dir="$1"; shift
  if [[ -f "$dir/CMakeCache.txt" ]]; then
    cmake -B "$dir" "$@" >/dev/null
  else
    cmake -B "$dir" -G Ninja "$@" >/dev/null
  fi
}

echo "== release-ish build + tests =="
configure build
cmake --build build
ctest --test-dir build --output-on-failure

echo "== ASan/UBSan build + tests =="
configure build-asan -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure
# Chaos conformance smoke under ASan: FaultPlan-driven full-stack runs with
# the spec oracles attached (short sweep; the long one is E16).
./build-asan/examples/model_checker --chaos --smoke --jobs 2
./build-asan/examples/model_checker --chaos --smoke --erratum --jobs 2

echo "== obs gate (ASan) =="
# The observability suites in isolation: metrics/trace unit semantics,
# per-seed byte-identity, and the chaos metric sanity relations.
ctest --test-dir build-asan -L obs --output-on-failure
# The merged metric snapshot must serialize byte-identically no matter how
# many workers ran the sweep.
./build/examples/model_checker --chaos --smoke --metrics --jobs 4 | tee /tmp/chaos_metrics_j4.json >/dev/null
./build/examples/model_checker --chaos --smoke --metrics --jobs 1 | cmp - /tmp/chaos_metrics_j4.json

echo "== batch gate (ASan) =="
# The batching/delta suites in isolation: BATCH framing round-trips and
# corruption fuzz, batched-vs-unbatched cluster equivalence, delta state
# exchange reconstruction, and the batched soak. ASan catches any buffer
# mistake in the framing hot path.
ctest --test-dir build-asan -L batch --output-on-failure
# Chaos conformance smoke with batching on: same seeds, same oracles, the
# coalesced wire path underneath.
./build-asan/examples/model_checker --chaos --smoke --batch --jobs 2

echo "== recovery gate (ASan) =="
# Crash-restart persistence under ASan: the WAL corruption fuzz (bit flips,
# truncation at every byte, duplicated records) and the crash-point sweep
# (a restart injected at every persistence barrier) are exactly where a
# framing bounds mistake or a teardown use-after-free would hide.
ctest --test-dir build-asan -R 'WalFormatTest|WalFuzzTest|StableStoreTest|LayerJournalTest|ExchangeJournalTest|CrashPointSweepTest' \
  --output-on-failure
# Chaos conformance smoke with the restart adversary: kCrash upgraded to
# genuine crash-restart plus scripted kRestart events, oracles online.
./build-asan/examples/model_checker --chaos --smoke --restart --jobs 2

echo "== perf gate (ASan) =="
# The allocation-free hot path and watermark stability suites under ASan:
# the arena/ring/pool containers hand out recycled storage, which is
# exactly where a stale handle, a wrapped index, or a use-after-release
# would hide. (The exact-zero allocation assertion self-relaxes under
# sanitizers — instrumentation allocates; the plain build above enforces
# the strict zero.)
ctest --test-dir build-asan -L perf --output-on-failure
# Watermark-mode chaos smoke under ASan: the piggyback fill/apply path on
# every Data/Seq frame, oracles online. (Watermark stability is the
# default; this pins it explicitly next to the explicit-ack runs above.)
./build-asan/examples/model_checker --chaos --smoke --jobs 2
# The thread sanitizer gate covers the multi-threaded subsystem: the seed
# sweeps, the sharded parallel BFS, and the thread pool itself.
configure build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build build-tsan --target parallel_test obs_test model_checker
./build-tsan/tests/parallel_test
# Metrics registry under TSan: the concurrent-increment and find-or-create
# suites hammer the per-metric atomics from many threads.
./build-tsan/tests/obs_test --gtest_filter='MetricsConcurrencyTest.*'
./build-tsan/examples/model_checker --jobs 4 2 500 8
./build-tsan/examples/model_checker --exhaustive 2 --jobs 4
# Chaos smoke under TSan: the chaos sweep shares the thread pool, and the
# report must be byte-identical regardless of worker count.
./build-tsan/examples/model_checker --chaos --smoke --jobs 4 | tee /tmp/chaos_tsan_j4.txt
./build-tsan/examples/model_checker --chaos --smoke --jobs 1 | cmp - /tmp/chaos_tsan_j4.txt
# Batched chaos smoke under TSan: per-worker Batcher instances must not
# share state, and the merged report (incl. batch counters) must not depend
# on the worker count.
cmake --build build-tsan --target batch_equivalence_test
./build-tsan/tests/batch_equivalence_test \
  --gtest_filter='*Parallel*:*MergesIdentically*'
./build-tsan/examples/model_checker --chaos --smoke --batch --jobs 4 | tee /tmp/chaos_tsan_batch_j4.txt
./build-tsan/examples/model_checker --chaos --smoke --batch --jobs 1 | cmp - /tmp/chaos_tsan_batch_j4.txt
# Watermark equivalence under TSan: the watermark/ack sweeps share the
# thread pool, and the merged verdicts + metric snapshot must not depend
# on the worker count. alloc_free_test rides along for the recycled
# containers under TSan's allocator.
cmake --build build-tsan --target watermark_equivalence_test alloc_free_test
./build-tsan/tests/watermark_equivalence_test \
  --gtest_filter='*ParallelSweep*:*ChaosVerdictsMatchAtN3*'
./build-tsan/tests/alloc_free_test
# Restart differential under TSan: pause-vs-restart semantics on the same
# seeds across worker counts, and the restart chaos report must stay
# byte-identical at any --jobs (per-seed MemStableStores must not share).
cmake --build build-tsan --target restart_differential_test
./build-tsan/tests/restart_differential_test \
  --gtest_filter='*ThreadCountIndependent*:*ScriptedRestart*'
./build-tsan/examples/model_checker --chaos --smoke --restart --jobs 4 | tee /tmp/chaos_tsan_restart_j4.txt
./build-tsan/examples/model_checker --chaos --smoke --restart --jobs 1 | cmp - /tmp/chaos_tsan_restart_j4.txt

echo "== transport gate (ASan) =="
# The real-transport suites under ASan: the Sim-vs-UDP backend conformance
# contract, the byte-order golden vectors every wire/disk format depends
# on, the in-process sim-vs-real differential, and the forked 3-process
# dvsd crash/rejoin/audit test — real sockets, real processes, real
# SIGKILL. The localhost test forks the ASan-instrumented dvsd binary, so
# the daemon's socket/WAL/trace paths run instrumented too.
ctest --test-dir build-asan -L transport --output-on-failure
# The DVS_NO_NET=1 escape hatch must cleanly skip every real-socket test
# (sandboxes without loopback still get the sim half of the label).
DVS_NO_NET=1 ctest --test-dir build -L transport --output-on-failure
# End-to-end deployment smoke: a real 3-node cluster via the launcher —
# workload, SIGKILL, WAL restart, rejoin, offline audit must say PASS.
CLUSTER_DIR=/tmp/dvs-check-cluster CLUSTER_PORT=9400 ./scripts/cluster.sh demo
# The offline auditor is deterministic: re-auditing the same trace dir
# must produce a byte-identical report.
./build/examples/model_checker --audit /tmp/dvs-check-cluster/traces | tee /tmp/dvs_audit_1.txt >/dev/null
./build/examples/model_checker --audit /tmp/dvs-check-cluster/traces | cmp - /tmp/dvs_audit_1.txt

echo "== workload gate (ASan) =="
# The scenario engine suites under ASan: generator laws, .scn round-trip
# and rejection, the churn-vs-hand-built FaultPlan differential, the
# golden determinism tests, and the churn+WAN soak at reduced scale (the
# full 50k-tick run is the plain-build ctest registration).
DVS_SOAK_SCALE=10 ctest --test-dir build-asan -L workload --output-on-failure
# The soak's multi-threaded sweep under TSan: two seeds share the thread
# pool, per-seed clusters/stores must not share state.
cmake --build build-tsan --target scenario_soak_test workload_test
./build-tsan/tests/workload_test
DVS_SOAK_SCALE=20 ./build-tsan/tests/scenario_soak_test
# The SLO report is byte-identical at any worker count for every canonical
# scenario — the determinism contract the golden tests pin, re-checked on
# the real CLI surface.
for scn in scenarios/steady.scn scenarios/diurnal-burst.scn scenarios/churn-storm.scn; do
  ./build/examples/model_checker --scenario "$scn" --jobs 4 | tee /tmp/scn_j4.json >/dev/null
  ./build/examples/model_checker --scenario "$scn" --jobs 1 | cmp - /tmp/scn_j4.json
done
# The steady swarm against a real 3-node dvsd cluster: deterministic client
# streams over the control sockets, digest agreement, audit PASS.
CLUSTER_DIR=/tmp/dvs-check-scenario CLUSTER_PORT=9500 ./scripts/cluster.sh scenario 5

echo "== shard gate (ASan) =="
# The sharded-subgroup suites under ASan: provisioning laws, group-frame
# round-trips, router laws, the K=1 unsharded-vs-sharded byte-identity
# differential (seed count shrunk here; the full 200-seed sweep is the
# plain-build ctest registration above) and the targeted-fault isolation
# suite. ASan watches the GroupMux framing and the per-column teardown.
DVS_SHARD_EQ_SEEDS=25 ctest --test-dir build-asan -L shard --output-on-failure
# Sharded chaos smoke under ASan: K columns over one 5-node pool, faults on
# the shared network, every shard's oracle online.
./build-asan/examples/model_checker --chaos --smoke --shards 3 --replication 2 --jobs 2 5 15
# Isolation soak + sweep determinism under TSan: the equivalence sweep's
# worker pool must keep per-seed clusters fully private, and the sharded
# verdicts must not depend on the worker count.
cmake --build build-tsan --target shard_isolation_test shard_equivalence_test
./build-tsan/tests/shard_isolation_test
DVS_SHARD_EQ_SEEDS=10 ./build-tsan/tests/shard_equivalence_test \
  --gtest_filter='*JobsInvariant*'
# The sharded scenario's SLO report is byte-identical at any worker count —
# the same determinism contract the unsharded scenarios pin above.
./build/examples/model_checker --scenario scenarios/sharded-steady.scn --jobs 4 | tee /tmp/scn_shard_j4.json >/dev/null
./build/examples/model_checker --scenario scenarios/sharded-steady.scn --jobs 1 | cmp - /tmp/scn_shard_j4.json
# The sharded swarm against a real dvsd cluster: multi-column daemons (the
# .scn's shard topology mirrored into the node configs), per-shard digest
# agreement across every replica, and a per-group trace audit PASS.
SCENARIO_FILE=scenarios/sharded-steady.scn CLUSTER_DIR=/tmp/dvs-check-shard CLUSTER_PORT=9600 ./scripts/cluster.sh scenario 5

echo "== reprovision gate (ASan) =="
# The dynamic re-provisioning suites under ASan: plan and transfer-codec
# laws, the router pool-view regression, the stable-pool byte-inertness
# differential (seed count shrunk here; the full 200-seed sweep is the
# plain-build ctest registration above), migration safety under a killed
# replica, and the crash-point sweep over every state-transfer persistence
# barrier. ASan watches snapshot chunking, reassembly and column cutover.
DVS_REPROVISION_SEEDS=25 ctest --test-dir build-asan -L reprovision --output-on-failure
# Migration differential determinism under TSan: the sweep's worker pool
# must keep per-seed ShardClusters fully private, and the stable-pool
# verdicts must not depend on the worker count.
cmake --build build-tsan --target reprovision_test
DVS_REPROVISION_SEEDS=10 ./build-tsan/tests/reprovision_test \
  --gtest_filter='*SweepIsJobsInvariant*:*StablePoolIsByteInert*'
# The dynamic churn scenario's SLO report — migrations included — is
# byte-identical at any worker count.
./build/examples/model_checker --scenario scenarios/reprovision-churn.scn --jobs 4 | tee /tmp/scn_reprov_j4.json >/dev/null
./build/examples/model_checker --scenario scenarios/reprovision-churn.scn --jobs 1 | cmp - /tmp/scn_reprov_j4.json
# Real-cluster migration demo: a 4-node K=4 r=2 dynamic pool, one host
# SIGKILLed, its column slots re-provisioned onto survivors with state
# transfer, workload against the refreshed map, per-group audit PASS.
CLUSTER_DIR=/tmp/dvs-check-migrate CLUSTER_PORT=9700 ./scripts/cluster.sh migrate

echo "== bench smoke =="
for b in build/bench/*; do
  if [[ -x "$b" && -f "$b" ]]; then
    echo "--- $b"
    case "$b" in
      *bench_micro|*bench_explorer|*bench_stack)
        "$b" --benchmark_min_time=0.05 ;;
      *bench_availability|*bench_recovery|*bench_throughput|*bench_parallel)
        "$b" --smoke ;;
      *)
        "$b" ;;
    esac
  fi
done

echo "== examples =="
./build/examples/quickstart
./build/examples/model_checker 3 1000 3
./build/examples/model_checker --jobs 2 3 1000 3
./build/examples/model_checker --exhaustive 2
./build/examples/model_checker --exhaustive 2 --jobs 2

echo "ALL CHECKS PASSED"
