#!/usr/bin/env bash
# cluster.sh — launch and drive a real n-process dvsd cluster on localhost.
#
# Every node is one OS process running the full VS/DVS/TO stack over real
# UDP sockets (examples/dvsd.cpp), with a write-ahead log and an on-disk
# spec-event trace. This script is the deployment harness: it generates the
# per-node config files, forks the daemons, speaks their UDP control
# protocol, injects process-level faults, and hands the traces to the
# offline auditor.
#
#   scripts/cluster.sh up [n]          start an n-node cluster (default 3)
#   scripts/cluster.sh status          ping every node
#   scripts/cluster.sh cmd <i> <...>   raw control command to node i
#                                      (put/get/del/dump/digest/view/stats)
#   scripts/cluster.sh workload [k]    k round-robin puts (default 30)
#   scripts/cluster.sh scenario [s]    s seconds of the steady .scn swarm
#                                      (scenario_runner --real) + digest
#                                      agreement + trace audit
#                                      (SCENARIO_FILE overrides the .scn)
#   scripts/cluster.sh kill <i>        SIGKILL node i (genuine crash)
#   scripts/cluster.sh stop <i>        SIGSTOP node i (pause, state intact)
#   scripts/cluster.sh cont <i>        SIGCONT a stopped node
#   scripts/cluster.sh restart <i>     relaunch node i (recovers from WAL)
#   scripts/cluster.sh drop <i> <p>    set node i's send-drop probability
#   scripts/cluster.sh audit           offline trace audit (model_checker)
#   scripts/cluster.sh down            graceful shutdown + reap
#   scripts/cluster.sh demo            scripted kill/rejoin/audit tour
#   scripts/cluster.sh migrate         dynamic re-provisioning tour: 4-node
#                                      K=4 r=2 pool, SIGKILL one host, wait
#                                      for its column slots to migrate onto
#                                      survivors (state transfer), workload
#                                      against the refreshed map, audit
#
# Environment: BUILD_DIR (default: build), CLUSTER_DIR (default:
# /tmp/dvs-cluster), CLUSTER_PORT (default: 9100 — peers at PORT+i, control
# at PORT+100+i), CLUSTER_SHARDS / CLUSTER_REPLICATION (default unsharded —
# when set, 'up' writes K shard groups into every node config; 'scenario'
# sets them automatically from the .scn's own shards/replication keys),
# CLUSTER_DYNAMIC (default off — when 1, sharded daemons run a pool
# membership group and re-provision departed hosts' column slots onto
# survivors; timers are widened so startup never looks like a departure).
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
CLUSTER_DIR="${CLUSTER_DIR:-/tmp/dvs-cluster}"
CLUSTER_PORT="${CLUSTER_PORT:-9100}"
DVSD="$BUILD_DIR/examples/dvsd"
MODEL_CHECKER="$BUILD_DIR/examples/model_checker"
SCENARIO_RUNNER="$BUILD_DIR/examples/scenario_runner"
SCENARIO_FILE="${SCENARIO_FILE:-scenarios/steady.scn}"

die() { echo "cluster.sh: $*" >&2; exit 1; }

need_binaries() {
  [[ -x "$DVSD" ]] || die "$DVSD not built (cmake --build $BUILD_DIR --target dvsd)"
}

nodes() { cat "$CLUSTER_DIR/n" 2>/dev/null || die "no cluster at $CLUSTER_DIR (run 'up' first)"; }
peer_port() { echo $((CLUSTER_PORT + $1)); }
ctl_port() { echo $((CLUSTER_PORT + 100 + $1)); }

ctl() { # ctl <i> <command...>
  local i="$1"; shift
  "$DVSD" --ctl "127.0.0.1:$(ctl_port "$i")" --timeout-ms 500 --retries 6 "$@"
}

probe() { # probe <i> — one quick ping, no retries
  "$DVSD" --ctl "127.0.0.1:$(ctl_port "$1")" --timeout-ms 200 --retries 1 \
    ping >/dev/null 2>&1
}

write_config() { # write_config <i> <n>
  # CLUSTER_SHARDS / CLUSTER_REPLICATION (env, default unsharded) switch
  # the daemons into multi-column mode: K shard groups provisioned
  # round-robin over the pool. `initial` is only meaningful unsharded —
  # with shards every provisioned replica is an initial member of its
  # shard group (daemon/config.cpp validates the combination).
  local i="$1" n="$2"
  {
    echo "node $i"
    echo "n $n"
    if [[ "${CLUSTER_SHARDS:-0}" != 0 ]]; then
      echo "shards $CLUSTER_SHARDS"
      [[ "${CLUSTER_REPLICATION:-0}" != 0 ]] && echo "replication $CLUSTER_REPLICATION"
      if [[ "${CLUSTER_DYNAMIC:-0}" != 0 ]]; then
        # Dynamic re-provisioning: the pool membership group plans slot
        # migrations off every pool view. The suspect timeout is widened
        # past the launch window so the first view every daemon acts on
        # still contains the whole pool (no spurious startup migration).
        echo "dynamic 1"
        echo "heartbeat_ms 100"
        echo "suspect_ms 1500"
        echo "propose_ms 750"
      fi
    else
      echo "initial $n"
    fi
    for ((j = 0; j < n; j++)); do
      echo "peer $j 127.0.0.1:$(peer_port "$j")"
    done
    echo "control 127.0.0.1:$(ctl_port "$i")"
    echo "wal_dir $CLUSTER_DIR/p$i/wal"
    echo "trace_dir $CLUSTER_DIR/traces"
  } > "$CLUSTER_DIR/p$i.conf"
}

launch() { # launch <i> — fork one daemon, record its pid
  local i="$1"
  "$DVSD" --config "$CLUSTER_DIR/p$i.conf" >> "$CLUSTER_DIR/p$i.log" 2>&1 &
  echo $! > "$CLUSTER_DIR/p$i.pid"
}

pid_of() { cat "$CLUSTER_DIR/p$1.pid" 2>/dev/null || true; }

await_ping() { # await_ping <i> [tries]
  local i="$1" tries="${2:-40}"
  for ((t = 0; t < tries; t++)); do
    if ctl "$i" ping >/dev/null 2>&1; then return 0; fi
    sleep 0.25
  done
  die "node $i never answered ping (see $CLUSTER_DIR/p$i.log)"
}

cmd_up() {
  local n="${1:-3}"
  need_binaries
  [[ -f "$CLUSTER_DIR/n" ]] && die "cluster already up at $CLUSTER_DIR ('down' first)"
  # A daemon from an earlier (crashed or aborted) run still answering on our
  # control ports would silently mix two cluster generations — its traces
  # would go to deleted files and the audit would see garbage. Refuse.
  for ((i = 0; i < n; i++)); do
    if probe "$i"; then
      die "something already answers on control port $(ctl_port "$i") — stale cluster? (try 'down' or change CLUSTER_PORT)"
    fi
  done
  mkdir -p "$CLUSTER_DIR"
  echo "$n" > "$CLUSTER_DIR/n"
  for ((i = 0; i < n; i++)); do
    write_config "$i" "$n"
    launch "$i"
  done
  for ((i = 0; i < n; i++)); do await_ping "$i"; done
  echo "cluster up: $n nodes, dir $CLUSTER_DIR, control ports $(ctl_port 0)-$(ctl_port $((n - 1)))"
}

cmd_status() {
  local n; n=$(nodes)
  for ((i = 0; i < n; i++)); do
    local reply
    reply=$(ctl "$i" ping 2>/dev/null) || reply="DOWN"
    echo "p$i: $reply"
  done
}

routed_put() { # routed_put <i> <key> <value> — chases `moved shard=` redirects
  local i="$1" key="$2" value="$3" reply hop
  for ((hop = 0; hop < 4; hop++)); do
    reply=$(ctl "$i" put "$key" "$value" 2>/dev/null) || return 1
    case "$reply" in
      ok*) return 0 ;;
      moved*) i="${reply##*node=}" ;;
      *) return 1 ;;
    esac
  done
  return 1
}

cmd_workload() {
  # Round-robin puts; a down node just misses its turn (UDP client times
  # out) — the cluster-level fate of each accepted put is what the dumps
  # and the audit check. In a replicated sharded cluster a contacted node
  # may not host the key's shard; routed_put follows its redirect.
  local k="${1:-30}" prefix="${2:-key}" n ok=0; n=$(nodes)
  for ((x = 0; x < k; x++)); do
    if routed_put $((x % n)) "$prefix$x" "val$x"; then
      ok=$((ok + 1))
    fi
  done
  echo "issued $k puts round-robin across $n nodes ($ok accepted)"
}

cmd_kill() {
  local i="$1" pid; pid=$(pid_of "$i")
  [[ -n "$pid" ]] || die "no pid for node $i"
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  echo "p$i SIGKILLed (pid $pid)"
}

cmd_restart() {
  local i="$1"
  launch "$i"
  await_ping "$i"
  ctl "$i" ping
}

cmd_down() {
  local n; n=$(nodes)
  for ((i = 0; i < n; i++)); do
    local pid; pid=$(pid_of "$i")
    [[ -n "$pid" ]] || continue
    kill -CONT "$pid" 2>/dev/null || true  # a SIGSTOPped node cannot quit
    ctl "$i" quit >/dev/null 2>&1 || kill -TERM "$pid" 2>/dev/null || true
  done
  for ((i = 0; i < n; i++)); do
    local pid; pid=$(pid_of "$i")
    [[ -n "$pid" ]] || continue
    for ((t = 0; t < 20; t++)); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.1
    done
    kill -KILL "$pid" 2>/dev/null || true
  done
  rm -f "$CLUSTER_DIR/n"
  echo "cluster down (logs, WALs and traces kept at $CLUSTER_DIR)"
}

cmd_audit() {
  [[ -x "$MODEL_CHECKER" ]] || die "$MODEL_CHECKER not built"
  "$MODEL_CHECKER" --audit "$CLUSTER_DIR/traces"
}

cmd_scenario() {
  # The acceptance loop for the workload engine against real processes:
  # fresh 3-node cluster, the steady scenario's deterministic client swarm
  # over the control sockets, then digest agreement across every replica
  # and an offline audit of the traces. Any failed op, digest split, or
  # audit verdict other than PASS fails the script.
  local secs="${1:-15}"
  [[ -x "$SCENARIO_RUNNER" ]] || die "$SCENARIO_RUNNER not built (cmake --build $BUILD_DIR --target scenario_runner)"
  [[ -f "$SCENARIO_FILE" ]] || die "no scenario file at $SCENARIO_FILE (run from the repo root or set SCENARIO_FILE)"
  [[ -f "$CLUSTER_DIR/n" ]] && cmd_down
  rm -rf "$CLUSTER_DIR"
  # A sharded scenario (scenarios/sharded-steady.scn) carries its shard
  # topology in the .scn itself; mirror it into the daemon configs so the
  # real cluster runs the same K columns the simulation did. The replica-
  # to-replica digest comparison below relies on replication 0 (every node
  # hosts every shard) — which is what the committed sharded scenario uses.
  local scn_shards scn_repl
  scn_shards=$(awk '$1 == "shards" {print $2}' "$SCENARIO_FILE")
  scn_repl=$(awk '$1 == "replication" {print $2}' "$SCENARIO_FILE")
  CLUSTER_SHARDS="${scn_shards:-0}" CLUSTER_REPLICATION="${scn_repl:-0}" cmd_up 3
  echo "-- driving $SCENARIO_FILE for ${secs}s against the live cluster"
  "$SCENARIO_RUNNER" "$SCENARIO_FILE" --real \
    "127.0.0.1:$(ctl_port 0),127.0.0.1:$(ctl_port 1),127.0.0.1:$(ctl_port 2)" \
    --duration-ms $((secs * 1000))
  sleep 1  # let the tail of the write stream reach stability everywhere
  local d0 d1 d2
  d0=$(ctl 0 digest); d1=$(ctl 1 digest); d2=$(ctl 2 digest)
  echo "-- digests: p0 $d0 / p1 $d1 / p2 $d2"
  [[ "$d0" == "$d1" && "$d1" == "$d2" ]] || die "replica digests diverge"
  cmd_down
  echo "-- offline audit of the scenario traces"
  cmd_audit
}

cmd_demo() {
  # Tear down any previous cluster BEFORE deleting its directory: leaked
  # daemons keep their ports and trace-file handles, and a fresh cluster on
  # the same ports would interleave with them.
  [[ -f "$CLUSTER_DIR/n" ]] && cmd_down
  rm -rf "$CLUSTER_DIR"
  cmd_up 3
  echo "-- seeding workload"
  cmd_workload 12
  sleep 1
  echo "-- state at p0: $(ctl 0 dump)"
  echo "-- SIGKILL p1 mid-stream"
  cmd_kill 1
  cmd_workload 6
  sleep 1
  echo "-- survivors: p0 $(ctl 0 digest) / p2 $(ctl 2 digest)"
  echo "-- restarting p1 from its WAL"
  cmd_restart 1
  ctl 0 put rejoin-probe ok >/dev/null
  sleep 1
  echo "-- p1 after rejoin: $(ctl 1 get rejoin-probe) (view $(ctl 1 view))"
  cmd_down
  echo "-- offline audit of the merged traces"
  cmd_audit
}

cmd_migrate() {
  # The dynamic re-provisioning acceptance loop against real processes: a
  # 4-node pool hosting K=4 doubly-replicated columns, one host SIGKILLed
  # mid-stream. Node 3 hosts g3-slot1 and g4-slot1 (ascending provision
  # order); the pool view must evict it and every survivor must converge on
  # the same re-plan — g3 {2,3}->{2,0}, g4 {0,3}->{0,1} — with the dead
  # host's journal state transferred to the joiners. Workload before AND
  # after proves the refreshed map serves; the offline audit must PASS over
  # the merged traces including the dead host's torn files.
  [[ -f "$CLUSTER_DIR/n" ]] && cmd_down
  rm -rf "$CLUSTER_DIR"
  CLUSTER_SHARDS=4 CLUSTER_REPLICATION=2 CLUSTER_DYNAMIC=1 cmd_up 4
  echo "-- seeding workload across the shards"
  cmd_workload 16 premig
  sleep 1
  echo "-- shard map before (p0):"
  ctl 0 shardmap
  echo "-- SIGKILL p3 (hosts two column slots)"
  cmd_kill 3
  echo "-- waiting for the survivors to re-provision"
  local i t m
  for i in 0 1 2; do
    for ((t = 0; t < 120; t++)); do
      m=$(ctl "$i" shardmap 2>/dev/null) || m=""
      [[ "$m" == *"g3 2 0"* && "$m" == *"g4 0 1"* ]] && break
      sleep 0.25
    done
    [[ "$m" == *"g3 2 0"* && "$m" == *"g4 0 1"* ]] \
      || die "p$i never converged on the migrated shard map:
$m"
  done
  echo "-- shard map after (p0):"
  ctl 0 shardmap
  echo "-- post-migration workload against the refreshed map"
  cmd_workload 8 postmig
  sleep 1
  cmd_down
  echo "-- offline audit of the migrated columns' merged traces"
  cmd_audit
}

case "${1:-}" in
  up)       shift; cmd_up "$@" ;;
  status)   cmd_status ;;
  cmd)      shift; i="$1"; shift; ctl "$i" "$@" ;;
  workload) shift; cmd_workload "$@" ;;
  scenario) shift; cmd_scenario "$@" ;;
  kill)     shift; cmd_kill "$1" ;;
  stop)     shift; kill -STOP "$(pid_of "$1")" && echo "p$1 SIGSTOPped" ;;
  cont)     shift; kill -CONT "$(pid_of "$1")" && echo "p$1 resumed" ;;
  restart)  shift; cmd_restart "$1" ;;
  drop)     shift; ctl "$1" drop "$2" ;;
  audit)    cmd_audit ;;
  down)     cmd_down ;;
  demo)     cmd_demo ;;
  migrate)  cmd_migrate ;;
  *)
    sed -n '2,42p' "$0" | sed 's/^# \{0,1\}//'
    exit 1
    ;;
esac
