#!/usr/bin/env bash
# Snapshot the google-benchmark microbenchmarks to JSON so perf changes
# diff in review: BENCH_explorer.json, BENCH_micro.json, and BENCH_obs.json
# at the repo root. Run on an idle machine; commit the refreshed files
# alongside any change that claims a speedup.
#
#   $ scripts/bench_snapshot.sh [min_time_seconds]
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME="${1:-0.2}"

cmake --build build --target bench_explorer bench_micro model_checker >/dev/null

./build/bench/bench_explorer \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_explorer.json
./build/bench/bench_micro \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_micro.json

# Aggregated metric snapshot of the chaos smoke sweep (deterministic: the
# same seeds give the same bytes on every machine), so the stack-level
# counters and latency histograms diff in review alongside the microbenches.
./build/examples/model_checker --chaos --smoke --metrics --jobs 4 >BENCH_obs.json

echo "wrote BENCH_explorer.json, BENCH_micro.json, BENCH_obs.json (min_time=${MIN_TIME}s)"
