#!/usr/bin/env bash
# Snapshot the google-benchmark microbenchmarks to JSON so perf changes
# diff in review: BENCH_explorer.json, BENCH_micro.json, and BENCH_obs.json
# at the repo root. Run on an idle machine; commit the refreshed files
# alongside any change that claims a speedup.
#
#   $ scripts/bench_snapshot.sh [min_time_seconds] [stack_min_time_seconds]
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME="${1:-0.2}"
# The stack benches run whole simulated episodes (5–50 ms each), so the
# default min_time yields single-digit rep counts — too few for a stable
# median. Give them a longer budget.
STACK_MIN_TIME="${2:-2}"

# Refuse to snapshot an unoptimized build: committed BENCH_*.json from a
# Debug tree would make every perf claim in review meaningless. An empty
# cache entry means the top-level CMakeLists default (RelWithDebInfo)
# applied, which is -O2 -DNDEBUG and fine; anything else needs the
# explicit escape hatch, and the snapshot is tagged with the build type
# either way via --benchmark_context.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:STRING=//p' build/CMakeCache.txt)"
BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
case "$BUILD_TYPE" in
  Release|RelWithDebInfo) ;;
  *)
    if [[ "${DVS_BENCH_ALLOW_NONRELEASE:-0}" != "1" ]]; then
      echo "bench_snapshot.sh: refusing to snapshot a '$BUILD_TYPE' build;" \
           "reconfigure with -DCMAKE_BUILD_TYPE=Release (or set" \
           "DVS_BENCH_ALLOW_NONRELEASE=1 to tag-and-proceed)" >&2
      exit 1
    fi
    echo "bench_snapshot.sh: WARNING: snapshotting a '$BUILD_TYPE' build —" \
         "numbers are not comparable to Release snapshots" >&2
    ;;
esac
BENCH_CONTEXT="--benchmark_context=build_type=${BUILD_TYPE}"

cmake --build build --target bench_explorer bench_micro bench_stack model_checker >/dev/null

./build/bench/bench_explorer \
  "${BENCH_CONTEXT}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_explorer.json
./build/bench/bench_micro \
  "${BENCH_CONTEXT}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_micro.json
# Full-stack throughput with the hot-path mode axis (eager retx baseline /
# retx cursors / cursors + wire batching) — the batching speedup and its
# delivered-message counts land in the snapshot for review. Wall-clock on a
# busy machine is noisy at these run lengths; prefer comparing the
# "delivered" labels (deterministic) and treat time ratios as indicative.
./build/bench/bench_stack \
  "${BENCH_CONTEXT}" \
  --benchmark_filter='BM_Stack' \
  --benchmark_min_time="${STACK_MIN_TIME}" \
  --benchmark_format=json >BENCH_stack.json

# Crash-restart cost axis (E19): restart rate {0,1,10}/10k-tick episode on
# the persistent stack, mem- and file-backed. The deterministic labels
# (recoveries, recovery p50, WAL bytes, deliveries) are the review surface;
# wall-clock ratios are indicative only.
./build/bench/bench_stack \
  "${BENCH_CONTEXT}" \
  --benchmark_filter='BM_StackRestart' \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_recovery.json

# Scenario-engine axis (E22): one full scenario seed per iteration,
# faultless closed loop vs crash-restart churn. The deterministic label
# counters (completed, commits, views, restarts, avail_ppm) are the review
# surface; wall-clock ratios are indicative only.
./build/bench/bench_stack \
  "${BENCH_CONTEXT}" \
  --benchmark_filter='BM_Scenario' \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_scenario.json

# Sharding axes: multi-group scaling (E23 — K∈{1,4,16,64} columns over one
# fixed 8-node pool at replication 2; aggregate commit counters must grow
# monotonically with K) and migration cost vs column state size (E24 —
# S∈{16,128,1024} pre-loaded commands journal-snapshotted, transferred and
# replayed when a host departs a dynamic pool). 'BM_Shard' deliberately
# matches both BM_ShardedThroughput and BM_ShardMigration; deterministic
# counters are the review surface, wall-clock ratios indicative only.
./build/bench/bench_stack \
  "${BENCH_CONTEXT}" \
  --benchmark_filter='BM_Shard' \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >BENCH_shard.json

# Aggregated metric snapshot of the chaos smoke sweep (deterministic: the
# same seeds give the same bytes on every machine), so the stack-level
# counters and latency histograms diff in review alongside the microbenches.
./build/examples/model_checker --chaos --smoke --metrics --jobs 4 >BENCH_obs.json
# The same sweep over the batched transport: net.batch_* counters plus the
# datagram/byte reduction diff in review next to the unbatched snapshot.
./build/examples/model_checker --chaos --smoke --metrics --batch --jobs 4 >BENCH_obs_batched.json

echo "wrote BENCH_explorer.json, BENCH_micro.json, BENCH_stack.json," \
     "BENCH_recovery.json, BENCH_scenario.json, BENCH_shard.json," \
     "BENCH_obs.json, BENCH_obs_batched.json (min_time=${MIN_TIME}s)"
