// Allocation-free hot path (ISSUE 6 tentpole lock): a global counting
// operator new proves that once a 3-node stack reaches steady state —
// ring buffers grown, arena slots parked, simulator slots recycled,
// scratch writers at capacity — delivering messages performs ZERO heap
// allocations. Also pins graceful degradation when the arena's retention
// budget is exhausted, and that the arena path is behaviour-invariant
// against the plain-heap path.
//
// This file must be its own test binary: it replaces the global
// operator new/delete.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <vector>

#include "net/sim_network.h"
#include "vsys/vs_node.h"

// Sanitizer builds wrap the allocator and may allocate internally; the
// exact-zero assertion only holds in plain builds. Under a sanitizer the
// same tests still run (that's the point of the ASan perf gate — recycled
// arena/ring storage is where a stale handle would hide) with the bound
// relaxed to "well under one allocation per delivery".
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DVS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DVS_SANITIZED 1
#endif
#endif
#ifndef DVS_SANITIZED
#define DVS_SANITIZED 0
#endif

namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

// Global replacements: every heap allocation in the binary goes through
// the counter (sized/aligned deletes forward to free).
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dvs::vsys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

Msg opaque(std::uint64_t uid, unsigned sender) {
  return Msg{OpaqueMsg{uid, ProcessId{sender}}};
}

/// Minimal 3-node VS cluster whose callbacks only bump counters — the
/// harness itself must not allocate inside the measurement window.
class QuietStack {
 public:
  QuietStack(net::NetConfig net_config, VsConfig vs_config, std::uint64_t seed)
      : rng_(seed),
        universe_(make_universe(3)),
        v0_{ViewId::initial(), make_universe(3)},
        net_(sim_, rng_, net_config, universe_) {
    for (ProcessId p : universe_) {
      VsCallbacks cb;
      cb.on_gprcv = [this](const Msg&, ProcessId) { ++delivered_; };
      cb.on_safe = [this](const Msg&, ProcessId) { ++safes_; };
      nodes_[p] = std::make_unique<VsNode>(p, std::optional<View>{v0_}, net_,
                                           sim_, vs_config, std::move(cb));
    }
    for (auto& [p, node] : nodes_) node->start();
  }

  /// Runs `seconds` of one-broadcast-per-20ms round-robin traffic.
  void pump(unsigned seconds) {
    const sim::Time end = sim_.now() + seconds * kSecond;
    unsigned turn = 0;
    while (sim_.now() < end) {
      nodes_.at(ProcessId{turn % 3})->gpsnd(opaque(++uid_, turn % 3));
      ++turn;
      sim_.run_until(sim_.now() + 20 * kMillisecond);
    }
  }

  void settle(unsigned ms) { sim_.run_until(sim_.now() + ms * kMillisecond); }

  VsNode& node(unsigned p) { return *nodes_.at(ProcessId{p}); }
  net::SimNetwork& net() { return net_; }

  std::uint64_t delivered_ = 0;
  std::uint64_t safes_ = 0;

 private:
  Rng rng_;
  ProcessSet universe_;
  View v0_;
  sim::Simulator sim_;
  net::SimNetwork net_;
  std::map<ProcessId, std::unique_ptr<VsNode>> nodes_;
  std::uint64_t uid_ = 0;
};

TEST(AllocFreeTest, SteadyStateDeliveryAllocatesNothing) {
  net::NetConfig nc;  // payload_arena defaults on
  VsConfig vc;        // watermark stability defaults on
  QuietStack stack(nc, vc, 11);

  // Warmup: grow every ring/arena/scratch buffer to its high-water mark.
  stack.pump(3);
  stack.settle(500);

  const std::uint64_t allocs_before = alloc_count();
  const std::uint64_t delivered_before = stack.delivered_;
  const std::uint64_t safes_before = stack.safes_;
  stack.pump(3);
  const std::uint64_t window_allocs = alloc_count() - allocs_before;
  const std::uint64_t window_delivered = stack.delivered_ - delivered_before;

  // ~150 broadcasts → ~450 deliveries in the window, with heartbeats,
  // watermark piggybacks and stability GC all running — and not one
  // trip to the heap.
  EXPECT_GT(window_delivered, 300u);
  EXPECT_GT(stack.safes_ - safes_before, 300u);
  if (DVS_SANITIZED) {
    EXPECT_LT(static_cast<double>(window_allocs),
              0.25 * static_cast<double>(window_delivered));
  } else {
    EXPECT_EQ(window_allocs, 0u)
        << window_allocs << " allocations for " << window_delivered
        << " deliveries ("
        << static_cast<double>(window_allocs) /
               static_cast<double>(window_delivered)
        << " per delivery)";
  }
}

TEST(AllocFreeTest, ExplicitAckModeStaysCheapButIsNotRequiredToBeZero) {
  // The fallback protocol may allocate (per-message ack bookkeeping), but
  // the containers still amortize: well under one allocation per delivery.
  net::NetConfig nc;
  VsConfig vc;
  vc.stability = StabilityMode::kExplicitAck;
  QuietStack stack(nc, vc, 12);
  stack.pump(3);
  stack.settle(500);

  const std::uint64_t allocs_before = alloc_count();
  const std::uint64_t delivered_before = stack.delivered_;
  stack.pump(3);
  const std::uint64_t window_allocs = alloc_count() - allocs_before;
  const std::uint64_t window_delivered = stack.delivered_ - delivered_before;
  ASSERT_GT(window_delivered, 300u);
  EXPECT_LT(static_cast<double>(window_allocs),
            0.25 * static_cast<double>(window_delivered));
}

TEST(AllocFreeTest, ArenaExhaustionDegradesGracefully) {
  // A retention budget far below the in-flight population: the arena must
  // fall back to plain allocation (counted, never refused) and the
  // protocol must stay fully live.
  net::NetConfig nc;
  nc.arena_max_retained = 2;
  VsConfig vc;
  QuietStack stack(nc, vc, 13);
  stack.pump(2);
  stack.settle(1000);
  EXPECT_GT(stack.delivered_, 200u);
  EXPECT_GT(stack.safes_, 200u);
  EXPECT_GT(stack.net().arena().stats().exhausted_acquires, 0u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(stack.node(i).stats().decode_errors, 0u) << "p" << i;
  }
}

TEST(AllocFreeTest, ArenaPathIsBehaviourInvariant) {
  // Same seed, arena on vs off: identical delivery and safe counts — the
  // arena only changes where bytes live, never what happens.
  net::NetConfig with_arena;
  with_arena.payload_arena = true;
  net::NetConfig heap_only;
  heap_only.payload_arena = false;
  VsConfig vc;
  QuietStack a(with_arena, vc, 14);
  QuietStack b(heap_only, vc, 14);
  a.pump(3);
  a.settle(500);
  b.pump(3);
  b.settle(500);
  EXPECT_EQ(a.delivered_, b.delivered_);
  EXPECT_EQ(a.safes_, b.safes_);
}

}  // namespace
}  // namespace dvs::vsys
