// Unit tests for the timed fault-schedule scripts (net::FaultPlan):
// deterministic generation, exact text round-trips, and schedule()
// application semantics (including the window restore contract).
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/fault_plan.h"
#include "net/sim_network.h"

namespace dvs::net {
namespace {

TEST(FaultPlanTest, RandomIsDeterministicInTheSeed) {
  const ProcessSet universe = make_universe(4);
  const FaultPlan a = FaultPlan::random(7, universe);
  const FaultPlan b = FaultPlan::random(7, universe);
  EXPECT_EQ(a, b);
  const FaultPlan c = FaultPlan::random(8, universe);
  EXPECT_NE(a, c);
}

TEST(FaultPlanTest, RandomRespectsWarmupHorizonAndOrder) {
  FaultPlanConfig config;
  config.warmup = 1000;
  config.horizon = 5000;
  config.events = 32;
  const FaultPlan plan = FaultPlan::random(3, make_universe(3), config);
  ASSERT_EQ(plan.events.size(), 32u);
  sim::Time prev = 0;
  for (const FaultEvent& ev : plan.events) {
    EXPECT_GE(ev.at, config.warmup);
    EXPECT_LE(ev.at, config.horizon);
    EXPECT_GE(ev.at, prev);
    prev = ev.at;
  }
}

TEST(FaultPlanTest, ToStringParseRoundTripsExactly) {
  // Scan a few seeds so every event kind shows up in some plan.
  bool saw_window = false;
  bool saw_partition = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, make_universe(4));
    EXPECT_EQ(FaultPlan::parse(plan.to_string()), plan) << "seed " << seed;
    for (const FaultEvent& ev : plan.events) {
      saw_window |= ev.kind == FaultEvent::Kind::kDropWindow ||
                    ev.kind == FaultEvent::Kind::kDupBurst;
      saw_partition |= ev.kind == FaultEvent::Kind::kPartition;
    }
  }
  EXPECT_TRUE(saw_window);
  EXPECT_TRUE(saw_partition);
}

TEST(FaultPlanTest, ParseAcceptsCommentsAndBlankLines) {
  const FaultPlan plan = FaultPlan::parse(
      "# a comment\n"
      "\n"
      "crash @400000 2\n"
      "partition @1200000 0,1|2\n"
      "drop @2500000 +300000 0.25\n"
      "heal @3000000\n");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(plan.events[0].target, ProcessId{2});
  EXPECT_EQ(plan.events[1].groups.size(), 2u);
  EXPECT_EQ(plan.events[2].duration, 300000u);
  EXPECT_DOUBLE_EQ(plan.events[2].probability, 0.25);
}

TEST(FaultPlanTest, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)FaultPlan::parse("bogus @12\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("crash 12\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("crash @12\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("partition @12 |\n"),
               std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("drop @12 0.5\n"), std::runtime_error);
}

TEST(FaultPlanTest, ScheduleAppliesEventsAndRestoresWindowRates) {
  sim::Simulator sim;
  Rng rng(1);
  NetConfig config;
  config.drop_probability = 0.05;
  SimNetwork net(sim, rng, config, make_universe(3));

  const FaultPlan plan = FaultPlan::parse(
      "crash @100 2\n"
      "partition @200 0|1,2\n"
      "drop @300 +100 0.9\n"
      "heal @500\n"
      "recover @600 2\n");
  plan.schedule(sim, net);

  sim.schedule_at(150, [&] {
    EXPECT_TRUE(net.paused(ProcessId{2}));
    EXPECT_FALSE(net.connected(ProcessId{0}, ProcessId{2}));
  });
  sim.schedule_at(250, [&] {
    EXPECT_FALSE(net.connected(ProcessId{0}, ProcessId{1}));
  });
  sim.schedule_at(350, [&] {
    EXPECT_DOUBLE_EQ(net.config().drop_probability, 0.9);
  });
  sim.schedule_at(450, [&] {
    // Window over: the pre-plan rate is restored, not zero.
    EXPECT_DOUBLE_EQ(net.config().drop_probability, 0.05);
  });
  sim.schedule_at(550, [&] {
    // heal() reconnects the non-paused links only.
    EXPECT_TRUE(net.connected(ProcessId{0}, ProcessId{1}));
    EXPECT_FALSE(net.connected(ProcessId{0}, ProcessId{2}));
  });
  sim.schedule_at(650, [&] {
    EXPECT_TRUE(net.connected(ProcessId{0}, ProcessId{2}));
  });
  sim.run_all();
  EXPECT_GE(sim.now(), 650u);
}

}  // namespace
}  // namespace dvs::net
