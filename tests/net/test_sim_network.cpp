// Unit tests for the simulated partitionable network.
#include <gtest/gtest.h>

#include <vector>

#include "net/sim_network.h"

namespace dvs::net {
namespace {

Bytes payload(std::uint8_t b) { return Bytes{static_cast<std::byte>(b)}; }

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : rng_(42) {
    config_.base_delay = 10;
    config_.jitter_mean_us = 0.0;
    net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(4));
  }

  void attach_recorder(unsigned p) {
    net_->attach(ProcessId{p}, [this, p](ProcessId from, const Bytes& data) {
      received_.push_back({ProcessId{p}, from, data});
    });
  }

  struct Record {
    ProcessId at;
    ProcessId from;
    Bytes data;
  };

  sim::Simulator sim_;
  Rng rng_;
  NetConfig config_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<Record> received_;
};

TEST_F(SimNetworkTest, DeliversWithDelay) {
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(7));
  EXPECT_TRUE(received_.empty());
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].from, ProcessId{0});
  EXPECT_EQ(received_[0].data, payload(7));
  EXPECT_EQ(sim_.now(), 10u);
}

TEST_F(SimNetworkTest, LinksAreFifoEvenWithJitter) {
  config_.jitter_mean_us = 5000.0;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(received_[i].data, payload(i)) << static_cast<int>(i);
  }
}

TEST_F(SimNetworkTest, SelfSendIsDelivered) {
  attach_recorder(0);
  net_->send(ProcessId{0}, ProcessId{0}, payload(1));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(SimNetworkTest, PartitionBlocksCrossGroupTraffic) {
  attach_recorder(1);
  attach_recorder(2);
  net_->set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  EXPECT_TRUE(net_->connected(ProcessId{0}, ProcessId{1}));
  EXPECT_FALSE(net_->connected(ProcessId{0}, ProcessId{2}));
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{0}, ProcessId{2}, payload(2));
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, ProcessId{1});
  EXPECT_EQ(net_->stats().dropped_partition, 1u);
}

TEST_F(SimNetworkTest, InFlightMessagesDieWhenPartitionHappens) {
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  sim_.schedule_at(5, [this] {
    net_->set_partition({make_process_set({0}), make_process_set({1, 2, 3})});
  });
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_->stats().dropped_partition, 1u);
}

TEST_F(SimNetworkTest, HealRestoresConnectivity) {
  attach_recorder(2);
  net_->set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  net_->heal();
  net_->send(ProcessId{0}, ProcessId{2}, payload(9));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(SimNetworkTest, UnmentionedProcessesAreIsolated) {
  net_->set_partition({make_process_set({0, 1})});
  EXPECT_FALSE(net_->connected(ProcessId{2}, ProcessId{3}));
  EXPECT_TRUE(net_->connected(ProcessId{2}, ProcessId{2}));
}

TEST_F(SimNetworkTest, PausedProcessGetsNothingAndSendsNothing) {
  attach_recorder(1);
  net_->pause(ProcessId{1});
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{1}, ProcessId{0}, payload(2));
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_->stats().dropped_crash, 2u);
  net_->resume(ProcessId{1});
  net_->send(ProcessId{0}, ProcessId{1}, payload(3));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(SimNetworkTest, RandomDropRateIsRespected) {
  config_.drop_probability = 0.5;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (int i = 0; i < 1000; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(0));
  }
  sim_.run_all();
  EXPECT_GT(received_.size(), 350u);
  EXPECT_LT(received_.size(), 650u);
  EXPECT_EQ(received_.size() + net_->stats().dropped_random, 1000u);
}

TEST_F(SimNetworkTest, MulticastReachesAllTargets) {
  attach_recorder(1);
  attach_recorder(2);
  attach_recorder(3);
  net_->multicast(ProcessId{0}, make_process_set({1, 2, 3}), payload(5));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 3u);
}

// ----- fault matrix: duplication / reordering / truncation -------------------

TEST_F(SimNetworkTest, DuplicatesAreCountedAndCapped) {
  config_.duplicate_probability = 1.0;
  config_.max_duplicates = 3;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (int i = 0; i < 20; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(7));
  }
  sim_.run_all();
  // Probability 1 always hits the hard cap: original + 3 extra copies.
  EXPECT_EQ(received_.size(), 20u * 4u);
  EXPECT_EQ(net_->stats().duplicated, 20u * 3u);
  EXPECT_EQ(net_->stats().sent, 20u);
  for (const Record& r : received_) EXPECT_EQ(r.data, payload(7));
}

TEST_F(SimNetworkTest, DuplicationRateBelowOneStaysWithinTheCap) {
  config_.duplicate_probability = 0.5;
  config_.max_duplicates = 2;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (int i = 0; i < 500; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  }
  sim_.run_all();
  EXPECT_GE(received_.size(), 500u);
  EXPECT_LE(received_.size(), 500u * 3u);
  EXPECT_EQ(received_.size(), 500u + net_->stats().duplicated);
  // Geometric-ish extras: ~0.5 + 0.25 per send. Loose statistical bounds.
  EXPECT_GT(net_->stats().duplicated, 250u);
  EXPECT_LT(net_->stats().duplicated, 500u);
}

TEST_F(SimNetworkTest, LinksStayFifoWhileReorderKnobIsOff) {
  // Duplication and truncation on, reordering off: the per-link
  // monotonicity contract must hold for every delivered copy.
  config_.jitter_mean_us = 5000.0;
  config_.duplicate_probability = 0.5;
  config_.truncate_probability = 0.3;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, Bytes(2, static_cast<std::byte>(i)));
  }
  sim_.run_all();
  EXPECT_EQ(net_->stats().reordered, 0u);
  // Sequence numbers of delivered (possibly duplicated, possibly truncated
  // to 1 byte) copies never go backwards.
  std::uint8_t prev = 0;
  for (const Record& r : received_) {
    if (r.data.empty()) continue;  // truncated to the empty prefix
    const auto b = static_cast<std::uint8_t>(r.data[0]);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST_F(SimNetworkTest, ReorderingOvertakesOnlyWithTheKnobOn) {
  config_.reorder_probability = 0.5;
  config_.reorder_window = 200;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 50u);
  EXPECT_GT(net_->stats().reordered, 0u);
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < received_.size(); ++i) {
    if (received_[i].data[0] < received_[i - 1].data[0]) ++inversions;
  }
  EXPECT_GT(inversions, 0u) << "reordered deliveries never overtook";
}

TEST_F(SimNetworkTest, TruncationDeliversAProperPrefix) {
  config_.truncate_probability = 1.0;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  const Bytes full = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  for (int i = 0; i < 30; ++i) net_->send(ProcessId{0}, ProcessId{1}, full);
  sim_.run_all();
  ASSERT_EQ(received_.size(), 30u);
  EXPECT_EQ(net_->stats().truncated, 30u);
  for (const Record& r : received_) {
    ASSERT_LT(r.data.size(), full.size());  // proper prefix, never whole
    for (std::size_t i = 0; i < r.data.size(); ++i) {
      EXPECT_EQ(r.data[i], full[i]);
    }
  }
}

TEST_F(SimNetworkTest, HealAfterPauseRestoresExactlyTheNonPausedLinks) {
  attach_recorder(1);
  attach_recorder(2);
  net_->pause(ProcessId{1});
  net_->set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  net_->heal();
  EXPECT_TRUE(net_->connected(ProcessId{0}, ProcessId{2}));
  EXPECT_FALSE(net_->connected(ProcessId{0}, ProcessId{1}));
  net_->send(ProcessId{0}, ProcessId{2}, payload(1));  // healed link
  net_->send(ProcessId{0}, ProcessId{1}, payload(2));  // still paused
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, ProcessId{2});
  net_->resume(ProcessId{1});
  EXPECT_TRUE(net_->connected(ProcessId{0}, ProcessId{1}));
  net_->send(ProcessId{0}, ProcessId{1}, payload(3));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 2u);
}

}  // namespace
}  // namespace dvs::net
