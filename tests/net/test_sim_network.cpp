// Unit tests for the simulated partitionable network.
#include <gtest/gtest.h>

#include <vector>

#include "net/sim_network.h"

namespace dvs::net {
namespace {

Bytes payload(std::uint8_t b) { return Bytes{static_cast<std::byte>(b)}; }

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : rng_(42) {
    config_.base_delay = 10;
    config_.jitter_mean_us = 0.0;
    net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(4));
  }

  void attach_recorder(unsigned p) {
    net_->attach(ProcessId{p}, [this, p](ProcessId from, const Bytes& data) {
      received_.push_back({ProcessId{p}, from, data});
    });
  }

  struct Record {
    ProcessId at;
    ProcessId from;
    Bytes data;
  };

  sim::Simulator sim_;
  Rng rng_;
  NetConfig config_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<Record> received_;
};

TEST_F(SimNetworkTest, DeliversWithDelay) {
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(7));
  EXPECT_TRUE(received_.empty());
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].from, ProcessId{0});
  EXPECT_EQ(received_[0].data, payload(7));
  EXPECT_EQ(sim_.now(), 10u);
}

TEST_F(SimNetworkTest, LinksAreFifoEvenWithJitter) {
  config_.jitter_mean_us = 5000.0;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 50; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(received_[i].data, payload(i)) << static_cast<int>(i);
  }
}

TEST_F(SimNetworkTest, SelfSendIsDelivered) {
  attach_recorder(0);
  net_->send(ProcessId{0}, ProcessId{0}, payload(1));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(SimNetworkTest, PartitionBlocksCrossGroupTraffic) {
  attach_recorder(1);
  attach_recorder(2);
  net_->set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  EXPECT_TRUE(net_->connected(ProcessId{0}, ProcessId{1}));
  EXPECT_FALSE(net_->connected(ProcessId{0}, ProcessId{2}));
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{0}, ProcessId{2}, payload(2));
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].at, ProcessId{1});
  EXPECT_EQ(net_->stats().dropped_partition, 1u);
}

TEST_F(SimNetworkTest, InFlightMessagesDieWhenPartitionHappens) {
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  sim_.schedule_at(5, [this] {
    net_->set_partition({make_process_set({0}), make_process_set({1, 2, 3})});
  });
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_->stats().dropped_partition, 1u);
}

TEST_F(SimNetworkTest, HealRestoresConnectivity) {
  attach_recorder(2);
  net_->set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  net_->heal();
  net_->send(ProcessId{0}, ProcessId{2}, payload(9));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(SimNetworkTest, UnmentionedProcessesAreIsolated) {
  net_->set_partition({make_process_set({0, 1})});
  EXPECT_FALSE(net_->connected(ProcessId{2}, ProcessId{3}));
  EXPECT_TRUE(net_->connected(ProcessId{2}, ProcessId{2}));
}

TEST_F(SimNetworkTest, PausedProcessGetsNothingAndSendsNothing) {
  attach_recorder(1);
  net_->pause(ProcessId{1});
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{1}, ProcessId{0}, payload(2));
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_->stats().dropped_crash, 2u);
  net_->resume(ProcessId{1});
  net_->send(ProcessId{0}, ProcessId{1}, payload(3));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(SimNetworkTest, RandomDropRateIsRespected) {
  config_.drop_probability = 0.5;
  net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(2));
  attach_recorder(1);
  for (int i = 0; i < 1000; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(0));
  }
  sim_.run_all();
  EXPECT_GT(received_.size(), 350u);
  EXPECT_LT(received_.size(), 650u);
  EXPECT_EQ(received_.size() + net_->stats().dropped_random, 1000u);
}

TEST_F(SimNetworkTest, MulticastReachesAllTargets) {
  attach_recorder(1);
  attach_recorder(2);
  attach_recorder(3);
  net_->multicast(ProcessId{0}, make_process_set({1, 2, 3}), payload(5));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 3u);
}

}  // namespace
}  // namespace dvs::net
