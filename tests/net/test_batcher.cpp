// BATCH envelope codec and SimNetwork batching tests.
//
// Codec contract (property-based): encode→decode→re-encode is
// byte-identical for random frame mixes; every truncated or corrupted
// envelope is rejected via DecodeError (strict decode) and never crashes or
// leaks a foreign exception; the lenient salvage decoder recovers exactly
// the frames that survived intact and flags the damage.
//
// Network contract: with batching on, same-instant sends to one destination
// arrive as the same per-message handler calls, in order, carried by a
// single wire datagram (or more when a cap flushes early).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/batcher.h"
#include "net/sim_network.h"

namespace dvs::net {
namespace {

Bytes random_frame(Rng& rng, std::size_t max_len) {
  Bytes frame(rng.below(max_len + 1));
  for (std::byte& b : frame) b = static_cast<std::byte>(rng.below(256));
  return frame;
}

std::vector<Bytes> random_frames(Rng& rng, std::size_t max_count,
                                 std::size_t max_len) {
  std::vector<Bytes> frames(rng.below(max_count + 1));
  for (Bytes& f : frames) f = random_frame(rng, max_len);
  return frames;
}

/// decode_batch must either succeed or throw DecodeError; anything else is
/// a bounds gap. salvage_batch must never throw at all.
void expect_clean(const Bytes& envelope) {
  try {
    (void)decode_batch(envelope);
  } catch (const DecodeError&) {
    // The one acceptable failure mode.
  } catch (const std::exception& e) {
    FAIL() << "decode_batch leaked a foreign exception: " << e.what();
  }
  EXPECT_NO_THROW((void)salvage_batch(envelope));
}

TEST(BatcherCodecTest, RandomMixesRoundTripByteIdentical) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::vector<Bytes> frames = random_frames(rng, 12, 48);
    const Bytes envelope = encode_batch(frames);
    ASSERT_TRUE(looks_like_batch(envelope));
    const std::vector<Bytes> back = decode_batch(envelope);
    EXPECT_EQ(back, frames);
    EXPECT_EQ(encode_batch(back), envelope);
    // The lenient decoder agrees exactly on undamaged envelopes.
    const SalvagedBatch salvaged = salvage_batch(envelope);
    EXPECT_TRUE(salvaged.clean);
    EXPECT_EQ(salvaged.frames, frames);
  }
}

TEST(BatcherCodecTest, EveryTruncationRaisesDecodeError) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Bytes envelope = encode_batch(random_frames(rng, 8, 24));
    for (std::size_t len = 0; len < envelope.size(); ++len) {
      const Bytes cut(envelope.begin(),
                      envelope.begin() + static_cast<std::ptrdiff_t>(len));
      // The frame count is fixed up front, so no strict prefix can parse
      // to completion.
      EXPECT_THROW((void)decode_batch(cut), DecodeError)
          << "envelope truncated to " << len << " of " << envelope.size();
      EXPECT_NO_THROW((void)salvage_batch(cut));
    }
  }
}

TEST(BatcherCodecTest, BitFlipsAndGarbageNeverEscapeDecodeError) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const Bytes envelope = encode_batch(random_frames(rng, 6, 16));
    for (std::size_t byte = 0; byte < envelope.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes flipped = envelope;
        flipped[byte] ^= static_cast<std::byte>(1u << bit);
        expect_clean(flipped);
      }
    }
  }
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.below(96));
    for (std::byte& b : junk) b = static_cast<std::byte>(rng.below(256));
    expect_clean(junk);
  }
}

TEST(BatcherCodecTest, CorruptedCountIsRejectedBeforeAllocation) {
  const Bytes envelope = encode_batch({Bytes{std::byte{1}, std::byte{2}}});
  for (std::size_t byte = 0; byte < envelope.size(); ++byte) {
    Bytes evil = envelope;
    evil[byte] = std::byte{0xff};  // maximal varuint fragment
    expect_clean(evil);
  }
}

TEST(BatcherCodecTest, SalvageRecoversIntactPrefixFrames) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    std::vector<Bytes> frames = random_frames(rng, 8, 24);
    if (frames.empty()) frames.push_back(random_frame(rng, 24));
    const Bytes envelope = encode_batch(frames);
    const std::size_t cut_at = rng.below(envelope.size());
    const Bytes cut(envelope.begin(),
                    envelope.begin() + static_cast<std::ptrdiff_t>(cut_at));
    const SalvagedBatch salvaged = salvage_batch(cut);
    EXPECT_FALSE(salvaged.clean);
    // Every recovered frame except a final damaged tail must be one of the
    // original frames, in order from the front.
    const std::size_t intact = salvaged.frames.empty()
                                   ? 0
                                   : salvaged.frames.size() - 1;
    for (std::size_t k = 0; k < intact; ++k) {
      ASSERT_LT(k, frames.size());
      EXPECT_EQ(salvaged.frames[k], frames[k]) << "frame " << k;
    }
  }
}

// ----- SimNetwork integration ----------------------------------------------

class BatchedNetworkTest : public ::testing::Test {
 protected:
  BatchedNetworkTest() : rng_(42) {
    config_.base_delay = 10;
    config_.jitter_mean_us = 0.0;
    config_.batching = true;
    remake();
  }

  void remake() {
    net_ = std::make_unique<SimNetwork>(sim_, rng_, config_, make_universe(3));
  }

  void attach_recorder(unsigned p) {
    net_->attach(ProcessId{p}, [this, p](ProcessId from, const Bytes& data) {
      received_.push_back({ProcessId{p}, from, data});
    });
  }

  static Bytes payload(std::uint8_t b) {
    return Bytes{static_cast<std::byte>(b)};
  }

  struct Record {
    ProcessId at;
    ProcessId from;
    Bytes data;
  };

  sim::Simulator sim_;
  Rng rng_;
  NetConfig config_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<Record> received_;
};

TEST_F(BatchedNetworkTest, SameInstantSendsShareOneDatagram) {
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 5; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 5u);
  for (std::uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(received_[i].data, payload(i));
    EXPECT_EQ(received_[i].from, ProcessId{0});
  }
  const NetStats& s = net_->stats();
  EXPECT_EQ(s.sent, 5u);
  EXPECT_EQ(s.delivered, 5u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_msgs, 5u);
  EXPECT_EQ(s.datagrams, 1u);
}

TEST_F(BatchedNetworkTest, DistinctDestinationsGetDistinctEnvelopes) {
  attach_recorder(1);
  attach_recorder(2);
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{0}, ProcessId{2}, payload(2));
  net_->send(ProcessId{0}, ProcessId{1}, payload(3));
  sim_.run_all();
  EXPECT_EQ(received_.size(), 3u);
  // p0→p1 coalesced two frames into one envelope; the lone p0→p2 message
  // travelled as its raw frame.
  EXPECT_EQ(net_->stats().batches, 1u);
  EXPECT_EQ(net_->stats().batched_msgs, 2u);
  EXPECT_EQ(net_->stats().datagrams, 2u);
}

TEST_F(BatchedNetworkTest, SingleMessageFlushTravelsAsTheRawFrame) {
  // A flush that coalesced nothing must not pay (or count) the envelope:
  // the datagram on the wire is byte-identical to the unbatched send.
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(9));
  sim_.run_all();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].data, payload(9));
  const NetStats& s = net_->stats();
  EXPECT_EQ(s.datagrams, 1u);
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.batched_msgs, 0u);
  EXPECT_EQ(s.wire_bytes, payload(9).size());
}

TEST_F(BatchedNetworkTest, CountCapFlushesEarly) {
  config_.batch_max_msgs = 4;
  remake();
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 10; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(received_[i].data, payload(i));
  }
  const NetStats& s = net_->stats();
  EXPECT_EQ(s.batched_msgs, 10u);
  EXPECT_EQ(s.batches, 3u);  // 4 + 4 + 2
  EXPECT_EQ(s.batch_cap_flushes, 2u);
}

TEST_F(BatchedNetworkTest, ByteCapFlushesEarly) {
  config_.batch_max_bytes = 8;
  remake();
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 4; ++i) {
    Bytes big(8, static_cast<std::byte>(i));
    net_->send(ProcessId{0}, ProcessId{1}, std::move(big));
  }
  sim_.run_all();
  EXPECT_EQ(received_.size(), 4u);
  // Each payload alone hits the byte cap, so each flush carries one frame —
  // which then travels raw, no envelope framing to pay.
  EXPECT_EQ(net_->stats().batches, 0u);
  EXPECT_EQ(net_->stats().datagrams, 4u);
  EXPECT_EQ(net_->stats().batch_cap_flushes, 4u);
}

TEST_F(BatchedNetworkTest, LaterInstantsOpenFreshBatches) {
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{0}, ProcessId{1}, payload(2));
  sim_.schedule_at(5, [this] {
    net_->send(ProcessId{0}, ProcessId{1}, payload(3));
    net_->send(ProcessId{0}, ProcessId{1}, payload(4));
  });
  sim_.run_all();
  ASSERT_EQ(received_.size(), 4u);
  // Same-instant pairs coalesce; the later instant opens a fresh envelope
  // rather than riding the earlier (already flushed) one.
  EXPECT_EQ(net_->stats().batches, 2u);
  EXPECT_EQ(net_->stats().batched_msgs, 4u);
  EXPECT_EQ(net_->stats().datagrams, 2u);
}

TEST_F(BatchedNetworkTest, FifoOrderHoldsAcrossEnvelopes) {
  config_.jitter_mean_us = 5000.0;
  remake();
  attach_recorder(1);
  for (std::uint8_t t = 0; t < 20; ++t) {
    sim_.schedule_at(t * 3 + 1, [this, t] {
      net_->send(ProcessId{0}, ProcessId{1}, payload(t));
      net_->send(ProcessId{0}, ProcessId{1},
                 payload(static_cast<std::uint8_t>(100 + t)));
    });
  }
  sim_.run_all();
  ASSERT_EQ(received_.size(), 40u);
  for (std::uint8_t t = 0; t < 20; ++t) {
    EXPECT_EQ(received_[2 * t].data, payload(t));
    EXPECT_EQ(received_[2 * t + 1].data,
              payload(static_cast<std::uint8_t>(100 + t)));
  }
}

TEST_F(BatchedNetworkTest, PartitionAtDeliveryLosesTheWholeEnvelope) {
  attach_recorder(1);
  net_->send(ProcessId{0}, ProcessId{1}, payload(1));
  net_->send(ProcessId{0}, ProcessId{1}, payload(2));
  sim_.schedule_at(1, [this] {
    net_->set_partition({make_process_set({0}), make_process_set({1, 2})});
  });
  sim_.run_all();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(net_->stats().dropped_partition, 1u);  // one envelope, one drop
}

TEST_F(BatchedNetworkTest, TruncatedEnvelopeSalvagesIntactPrefix) {
  // Force truncation of every envelope: the trailing frames are damaged but
  // the handler still runs for whatever survived, and the salvage counter
  // records the damage.
  config_.truncate_probability = 1.0;
  remake();
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 8; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  const NetStats& s = net_->stats();
  EXPECT_EQ(s.truncated, 1u);
  EXPECT_EQ(s.batch_salvaged, 1u);
  EXPECT_LE(received_.size(), 8u);
  // Whatever arrived before the damaged tail is the original prefix.
  for (std::size_t i = 0; i + 1 < received_.size(); ++i) {
    EXPECT_EQ(received_[i].data, payload(static_cast<std::uint8_t>(i)));
  }
}

TEST_F(BatchedNetworkTest, BatchingOffLeavesCountersUntouched) {
  config_.batching = false;
  remake();
  attach_recorder(1);
  for (std::uint8_t i = 0; i < 5; ++i) {
    net_->send(ProcessId{0}, ProcessId{1}, payload(i));
  }
  sim_.run_all();
  EXPECT_EQ(received_.size(), 5u);
  const NetStats& s = net_->stats();
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.batched_msgs, 0u);
  EXPECT_EQ(s.datagrams, 5u);
}

}  // namespace
}  // namespace dvs::net
