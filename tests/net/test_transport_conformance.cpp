// Transport conformance: the contract of net::Transport, checked against
// BOTH backends through one shared fixture — the deterministic SimNetwork
// and the real-socket UdpTransport over loopback. Any divergence between
// what the simulator promises and what real UDP provides shows up here as
// a failing parameterization, not as a mystery in a multi-process run.
//
// Covered contract points:
//   * unicast, multicast and self-send delivery with correct sender ids;
//   * best-effort duplication tolerance (resends arrive as extra copies,
//     never deduplicated by the transport);
//   * max_datagram_size: oversize sends are dropped and counted, never
//     truncated, never an exception; at-cap sends go through;
//   * batching: same-window sends to one destination coalesce into one
//     BATCH envelope on the wire and still arrive as per-message handler
//     calls, in order;
//   * NetStats accounting on both backends.
//
// The UDP parameterization binds 127.0.0.1 with kernel-assigned ports; set
// DVS_NO_NET=1 to skip it on machines without loopback sockets (CI
// sandboxes) — the sim parameterization always runs.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/sim_network.h"
#include "net/transport.h"
#include "net/udp_transport.h"
#include "sim/simulator.h"

namespace dvs {
namespace {

constexpr std::size_t kN = 3;

Bytes payload_of(const std::string& s) {
  Bytes b;
  for (char c : s) b.push_back(static_cast<std::byte>(c));
  return b;
}

std::string string_of(const Bytes& b) {
  std::string s;
  for (std::byte x : b) s.push_back(static_cast<char>(x));
  return s;
}

struct Received {
  ProcessId at;
  ProcessId from;
  std::string payload;
};

/// One universe of kN attachable endpoints over some backend.
class Harness {
 public:
  virtual ~Harness() = default;
  /// The Transport process p sends and receives through.
  virtual net::Transport& at(ProcessId p) = 0;
  /// The stats covering p's sends/receives (SimNetwork: one global object).
  virtual const net::NetStats& stats_at(ProcessId p) = 0;
  /// Deliver everything currently in flight.
  virtual void settle() = 0;

  void attach_all(std::vector<Received>& log) {
    for (std::size_t i = 0; i < kN; ++i) {
      const ProcessId p{static_cast<std::uint32_t>(i)};
      at(p).attach(p, [&log, p](ProcessId from, const Bytes& bytes) {
        log.push_back({p, from, string_of(bytes)});
      });
    }
  }
};

class SimHarness final : public Harness {
 public:
  explicit SimHarness(bool batching) {
    net::NetConfig config;
    config.batching = batching;
    net_ = std::make_unique<net::SimNetwork>(sim_, rng_, config,
                                             make_universe(kN));
  }
  net::Transport& at(ProcessId) override { return *net_; }
  const net::NetStats& stats_at(ProcessId) override { return net_->stats(); }
  void settle() override { sim_.run_until(sim_.now() + sim::kSecond); }

 private:
  sim::Simulator sim_;
  Rng rng_{42};
  std::unique_ptr<net::SimNetwork> net_;
};

class UdpHarness final : public Harness {
 public:
  explicit UdpHarness(bool batching) {
    for (std::size_t i = 0; i < kN; ++i) {
      net::UdpConfig config;
      config.self = ProcessId{static_cast<std::uint32_t>(i)};
      config.bind_port = 0;  // kernel-assigned; mapped below
      config.batching = batching;
      transports_.push_back(
          std::make_unique<net::UdpTransport>(config, make_universe(kN)));
    }
    for (auto& t : transports_) {
      for (std::size_t j = 0; j < kN; ++j) {
        t->set_peer(ProcessId{static_cast<std::uint32_t>(j)},
                    {"127.0.0.1", transports_[j]->local_port()});
      }
    }
  }
  net::Transport& at(ProcessId p) override { return *transports_[p.value()]; }
  const net::NetStats& stats_at(ProcessId p) override {
    return transports_[p.value()]->stats();
  }
  net::UdpTransport& udp(ProcessId p) { return *transports_[p.value()]; }
  void settle() override {
    // Loopback is fast but asynchronous: pump every endpoint until the
    // whole universe stays quiet for a few rounds.
    for (int quiet = 0; quiet < 3;) {
      std::size_t dispatched = 0;
      for (auto& t : transports_) dispatched += t->pump(5'000);
      quiet = dispatched == 0 ? quiet + 1 : 0;
    }
  }

 private:
  std::vector<std::unique_ptr<net::UdpTransport>> transports_;
};

bool no_net() {
  const char* env = std::getenv("DVS_NO_NET");
  return env != nullptr && env[0] == '1';
}

enum class Backend { kSim, kUdp };

class TransportConformance : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<Harness> make(bool batching) {
    if (GetParam() == Backend::kSim) {
      return std::make_unique<SimHarness>(batching);
    }
    if (no_net()) {
      return nullptr;  // caller GTEST_SKIPs
    }
    return std::make_unique<UdpHarness>(batching);
  }
};

#define MAKE_OR_SKIP(h, batching) \
  auto h = make(batching);        \
  if (!h) GTEST_SKIP() << "DVS_NO_NET=1: skipping UDP backend"

TEST_P(TransportConformance, UnicastMulticastAndSelfSendDeliver) {
  MAKE_OR_SKIP(h, false);
  std::vector<Received> log;
  h->attach_all(log);
  const ProcessId p0{0};
  const ProcessId p1{1};

  h->at(p0).send(p0, p1, payload_of("one"));
  h->at(p0).multicast(p0, h->at(p0).processes(), payload_of("all"));
  h->at(p1).send(p1, p1, payload_of("self"));
  h->settle();

  std::size_t unicast = 0;
  std::size_t multicast = 0;
  std::size_t self = 0;
  for (const Received& r : log) {
    if (r.payload == "one") {
      EXPECT_EQ(r.at, p1);
      EXPECT_EQ(r.from, p0);
      ++unicast;
    } else if (r.payload == "all") {
      EXPECT_EQ(r.from, p0);
      ++multicast;
    } else if (r.payload == "self") {
      EXPECT_EQ(r.at, p1);
      EXPECT_EQ(r.from, p1);
      ++self;
    }
  }
  EXPECT_EQ(unicast, 1u);
  EXPECT_EQ(multicast, kN);  // multicast to the universe includes self
  EXPECT_EQ(self, 1u);
}

TEST_P(TransportConformance, ResendsArriveAsDuplicateCopies) {
  // Transport is best-effort: the layers above must tolerate duplicates,
  // so the transport must pass resent payloads through as extra copies.
  MAKE_OR_SKIP(h, false);
  std::vector<Received> log;
  h->attach_all(log);
  const ProcessId p0{0};
  const ProcessId p2{2};
  for (int i = 0; i < 3; ++i) h->at(p0).send(p0, p2, payload_of("dup"));
  h->settle();
  std::size_t copies = 0;
  for (const Received& r : log) {
    if (r.payload == "dup" && r.at == p2 && r.from == p0) ++copies;
  }
  EXPECT_EQ(copies, 3u);
}

TEST_P(TransportConformance, OversizeSendIsDroppedCountedNeverTruncated) {
  MAKE_OR_SKIP(h, false);
  std::vector<Received> log;
  h->attach_all(log);
  const ProcessId p0{0};
  const ProcessId p1{1};
  const std::size_t cap = h->at(p0).max_datagram_size();
  if (cap == std::numeric_limits<std::size_t>::max()) {
    // SimNetwork imposes no datagram cap; nothing to probe on this backend.
    GTEST_SKIP() << "backend imposes no datagram size cap";
  }
  const Bytes oversize(cap + 1, std::byte{0x5A});
  const std::uint64_t before = h->stats_at(p0).dropped_oversize;
  EXPECT_NO_THROW(h->at(p0).send(p0, p1, oversize));
  h->settle();
  EXPECT_EQ(h->stats_at(p0).dropped_oversize, before + 1);
  EXPECT_TRUE(log.empty());  // dropped entirely — no truncated prefix either

  // An exactly-at-cap payload still goes through, byte-identical.
  const Bytes at_cap(cap, std::byte{0x42});
  h->at(p0).send(p0, p1, at_cap);
  h->settle();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].at, p1);
  EXPECT_EQ(log[0].payload, std::string(cap, 'B'));
}

TEST_P(TransportConformance, BatchedSendsCoalesceAndArriveInOrder) {
  MAKE_OR_SKIP(h, true);
  std::vector<Received> log;
  h->attach_all(log);
  const ProcessId p0{0};
  const ProcessId p1{1};
  const std::uint64_t datagrams_before = h->stats_at(p0).datagrams;
  for (int i = 0; i < 5; ++i) {
    h->at(p0).send(p0, p1, payload_of("m" + std::to_string(i)));
  }
  h->settle();
  std::vector<std::string> got;
  for (const Received& r : log) {
    if (r.at == p1 && r.from == p0) got.push_back(r.payload);
  }
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
  }
  // One flush window → one envelope on the wire.
  EXPECT_EQ(h->stats_at(p0).datagrams, datagrams_before + 1);
  EXPECT_GE(h->stats_at(p0).batches, 1u);
  EXPECT_GE(h->stats_at(p0).batched_msgs, 5u);
}

TEST_P(TransportConformance, StatsCountSendsAndDeliveries) {
  MAKE_OR_SKIP(h, false);
  std::vector<Received> log;
  h->attach_all(log);
  const ProcessId p0{0};
  const ProcessId p1{1};
  const Bytes payload = payload_of("counted");
  const std::uint64_t sent_before = h->stats_at(p0).sent;
  const std::uint64_t bytes_before = h->stats_at(p0).bytes_sent;
  const std::uint64_t delivered_before = h->stats_at(p1).delivered;
  h->at(p0).send(p0, p1, payload);
  h->settle();
  EXPECT_EQ(h->stats_at(p0).sent, sent_before + 1);
  EXPECT_EQ(h->stats_at(p0).bytes_sent, bytes_before + payload.size());
  EXPECT_EQ(h->stats_at(p1).delivered, delivered_before + 1);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(Backend::kSim, Backend::kUdp),
                         [](const auto& info) {
                           return info.param == Backend::kSim ? "Sim" : "Udp";
                         });

// ----- UDP-only contract points ---------------------------------------------

class UdpOnly : public ::testing::Test {
 protected:
  void SetUp() override {
    if (no_net()) GTEST_SKIP() << "DVS_NO_NET=1: skipping UDP tests";
  }
};

TEST_F(UdpOnly, StrayDatagramsAreRejectedByHeaderCheck) {
  // UdpTransport's own sends always carry the [magic][sender] header, so a
  // stray datagram has to come from a plain socket: inject garbage straight
  // at p1's port and check it is counted and never dispatched.
  UdpHarness h(false);
  std::vector<Received> log;
  h.attach_all(log);
  const ProcessId p1{1};
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(h.udp(p1).local_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const char garbage[] = "not a dvs datagram";
  ASSERT_GT(::sendto(fd, garbage, sizeof(garbage), 0,
                     reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
  h.settle();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(h.udp(p1).udp_stats().bad_header, 1u);
}

TEST_F(UdpOnly, DropKnobDiscardsOutboundDatagrams) {
  UdpHarness h(false);
  std::vector<Received> log;
  h.attach_all(log);
  const ProcessId p0{0};
  const ProcessId p1{1};
  h.udp(p0).set_drop_probability(1.0);
  for (int i = 0; i < 5; ++i) h.at(p0).send(p0, p1, payload_of("lost"));
  h.settle();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(h.udp(p0).udp_stats().dropped_knob, 5u);
  h.udp(p0).set_drop_probability(0.0);
  h.at(p0).send(p0, p1, payload_of("found"));
  h.settle();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].payload, "found");
}

TEST_F(UdpOnly, SendsToUnmappedPeersAreCountedNotThrown) {
  net::UdpConfig config;
  config.self = ProcessId{0};
  net::UdpTransport t(config, make_universe(2));
  // No set_peer calls: ProcessId{1} has no endpoint.
  EXPECT_NO_THROW(t.send(ProcessId{0}, ProcessId{1}, payload_of("x")));
  EXPECT_EQ(t.udp_stats().dropped_unmapped, 1u);
}

TEST_F(UdpOnly, AttachAndSendEnforceSingleOwner) {
  net::UdpConfig config;
  config.self = ProcessId{0};
  net::UdpTransport t(config, make_universe(2));
  EXPECT_THROW(t.attach(ProcessId{1}, [](ProcessId, const Bytes&) {}),
               std::logic_error);
  EXPECT_THROW(t.send(ProcessId{1}, ProcessId{0}, payload_of("x")),
               std::logic_error);
}

}  // namespace
}  // namespace dvs
