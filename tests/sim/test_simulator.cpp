// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace dvs::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(30, [&] { fired.push_back(3); });
  sim.schedule_at(10, [&] { fired.push_back(1); });
  sim.schedule_at(20, [&] { fired.push_back(2); });
  sim.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
  EXPECT_EQ(sim.events_fired(), 3u);
}

TEST(SimulatorTest, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&fired, i] { fired.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(15, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<Time>{10, 25}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100u);  // clock advances to the deadline
}

TEST(PeriodicTimerTest, FiresRepeatedly) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 10, [&] { ++ticks; });
  timer.start();
  sim.run_until(55);
  EXPECT_EQ(ticks, 5);  // t = 10, 20, 30, 40, 50
}

TEST(PeriodicTimerTest, StopPreventsFurtherTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 10, [&] { ++ticks; });
  timer.start();
  sim.schedule_at(25, [&] { timer.stop(); });
  sim.run_until(100);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimerTest, DestructionCancelsInFlightTick) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, 10, [&] { ++ticks; });
    timer.start();
    sim.run_until(15);
  }
  sim.run_until(100);  // the armed tick must not fire after destruction
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTimerTest, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 10, [&] { ++ticks; });
  timer.start();
  sim.run_until(20);
  timer.stop();
  sim.run_until(50);
  EXPECT_EQ(ticks, 2);
  timer.start();
  sim.run_until(70);
  EXPECT_EQ(ticks, 4);  // t = 60, 70
}

}  // namespace
}  // namespace dvs::sim
