// Generator laws: closed-form frequency bounds for every key distribution,
// byte-exact seed replay, per-client stream independence, mix ratios, and
// the stream-seed mixing function.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "workload/generator.h"

namespace dvs::workload {
namespace {

TEST(ZipfianGenerator, MatchesClosedFormFrequencies) {
  const std::size_t n = 100;
  const double theta = 0.99;
  const ZipfianGenerator zipf(n, theta);

  // The pmf is a pmf.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) total += zipf.probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.probability(n), 0.0);

  Rng rng(42);
  const std::size_t draws = 200000;
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t i = 0; i < draws; ++i) ++counts[zipf.next(rng)];

  // Head ranks carry enough mass for tight relative bounds; the tail is
  // checked in aggregate.
  for (std::size_t r = 0; r < 5; ++r) {
    const double expected = zipf.probability(r) * draws;
    EXPECT_NEAR(counts[r], expected, 0.15 * expected)
        << "rank " << r << " empirical " << counts[r] << " expected "
        << expected;
  }
  double tail_expected = 0.0;
  std::size_t tail_count = 0;
  for (std::size_t r = 50; r < n; ++r) {
    tail_expected += zipf.probability(r) * draws;
    tail_count += counts[r];
  }
  EXPECT_NEAR(tail_count, tail_expected, 0.15 * tail_expected);

  // Rank 0 is the hottest key, and monotonically more popular than rank 10.
  EXPECT_GT(counts[0], counts[10]);
}

TEST(ZipfianGenerator, UniformDistributionIsFlat) {
  MixConfig mix;
  mix.keys = 50;
  mix.dist = KeyDist::kUniform;
  mix.reads = 100;
  mix.writes = 0;
  mix.scans = 0;
  OpGenerator gen(mix, 7);
  const std::size_t draws = 100000;
  std::vector<std::size_t> counts(mix.keys, 0);
  for (std::size_t i = 0; i < draws; ++i) ++counts[gen.next().key];
  const double expected = static_cast<double>(draws) / mix.keys;
  for (std::size_t k = 0; k < mix.keys; ++k) {
    EXPECT_NEAR(counts[k], expected, 0.15 * expected) << "key " << k;
  }
}

TEST(ZipfianGenerator, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfianGenerator(0, 0.99), std::logic_error);
  EXPECT_THROW(ZipfianGenerator(10, 0.0), std::logic_error);
  EXPECT_THROW(ZipfianGenerator(10, 1.0), std::logic_error);
}

TEST(LatestDistribution, SkewsTowardTheMovingHead) {
  MixConfig mix;
  mix.keys = 100;
  mix.dist = KeyDist::kLatest;
  mix.theta = 0.99;
  mix.reads = 0;
  mix.writes = 100;  // every op writes, so the head advances each op
  mix.scans = 0;
  OpGenerator gen(mix, 11);
  const std::size_t draws = 20000;
  std::size_t near_head = 0;
  for (std::size_t i = 0; i < draws; ++i) {
    const std::uint64_t head = i % mix.keys;  // head before this op's write
    const Op op = gen.next();
    ASSERT_EQ(op.kind, OpKind::kWrite);
    const std::uint64_t distance = (head + mix.keys - op.key) % mix.keys;
    if (distance < 10) ++near_head;
  }
  // Closed form: P(rank < 10) = (sum_{i=1..10} i^-0.99) / zeta(100, 0.99)
  // ≈ 0.57. Assert well above what a uniform spread (0.10) would give.
  EXPECT_GT(static_cast<double>(near_head) / draws, 0.45);
}

TEST(OpGenerator, SeedReplayIsByteExact) {
  MixConfig mix;
  OpGenerator a(mix, client_stream_seed(99, 3));
  OpGenerator b(mix, client_stream_seed(99, 3));
  for (std::size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "stream diverged at op " << i;
  }
  EXPECT_EQ(a.ops_generated(), 5000u);
}

TEST(OpGenerator, ClientStreamsAreIndependent) {
  // Client 2's stream must not shift when other clients generate — the
  // whole point of per-client Rngs keyed by client_stream_seed.
  MixConfig mix;
  OpGenerator alone(mix, client_stream_seed(5, 2));
  std::vector<Op> expected;
  for (std::size_t i = 0; i < 1000; ++i) expected.push_back(alone.next());

  std::vector<OpGenerator> swarm;
  for (std::uint64_t c = 0; c < 4; ++c) {
    swarm.emplace_back(mix, client_stream_seed(5, c));
  }
  // Interleave the swarm in a scrambled order; client 2 must reproduce
  // `expected` exactly.
  std::vector<Op> interleaved;
  for (std::size_t round = 0; round < 1000; ++round) {
    for (std::uint64_t c : {3u, 0u, 2u, 1u}) {
      const Op op = swarm[c].next();
      if (c == 2) interleaved.push_back(op);
    }
  }
  EXPECT_EQ(interleaved, expected);
}

TEST(OpGenerator, MixRatiosConverge) {
  MixConfig mix;
  mix.reads = 50;
  mix.writes = 45;
  mix.scans = 5;
  OpGenerator gen(mix, 123);
  std::size_t reads = 0, writes = 0, scans = 0;
  const std::size_t draws = 100000;
  for (std::size_t i = 0; i < draws; ++i) {
    switch (gen.next().kind) {
      case OpKind::kRead: ++reads; break;
      case OpKind::kWrite: ++writes; break;
      case OpKind::kScan: ++scans; break;
    }
  }
  EXPECT_NEAR(reads, draws * 0.50, draws * 0.02);
  EXPECT_NEAR(writes, draws * 0.45, draws * 0.02);
  EXPECT_NEAR(scans, draws * 0.05, draws * 0.01);
}

TEST(OpGenerator, WritesCarryDeterministicValuesAndScansALength) {
  MixConfig mix;
  mix.value_len = 12;
  mix.scan_len = 7;
  OpGenerator gen(mix, 1);
  bool saw_write = false, saw_scan = false;
  for (std::size_t i = 0; i < 1000; ++i) {
    const Op op = gen.next();
    if (op.kind == OpKind::kWrite) {
      saw_write = true;
      EXPECT_EQ(op.value, make_value(op.key, 12));
      EXPECT_GE(op.value.size(), 12u);
    }
    if (op.kind == OpKind::kScan) {
      saw_scan = true;
      EXPECT_EQ(op.scan_len, 7u);
    }
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_scan);
}

TEST(OpGenerator, ArrivalGapsAreExponentialWithTheRequestedMean) {
  MixConfig mix;
  OpGenerator gen(mix, 77);
  const double mean = 1000.0;
  double total = 0.0;
  const std::size_t draws = 100000;
  for (std::size_t i = 0; i < draws; ++i) {
    const std::uint64_t gap = gen.arrival_gap_us(mean);
    EXPECT_GE(gap, 1u);
    total += static_cast<double>(gap);
  }
  EXPECT_NEAR(total / draws, mean, 0.05 * mean);
}

TEST(ClientStreamSeed, MixesSeedAndClientWithoutCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (std::uint64_t client = 0; client < 20; ++client) {
      seen.insert(client_stream_seed(seed, client));
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
  // Adjacent inputs land far apart (the splitmix64 avalanche).
  EXPECT_NE(client_stream_seed(1, 0) ^ client_stream_seed(1, 1),
            client_stream_seed(2, 0) ^ client_stream_seed(2, 1));
}

TEST(MixConfig, ValidateRejectsInconsistentMixes) {
  MixConfig bad;
  bad.reads = 50;
  bad.writes = 50;
  bad.scans = 5;
  EXPECT_THROW(bad.validate(), std::runtime_error);

  MixConfig zero_keys;
  zero_keys.keys = 0;
  EXPECT_THROW(zero_keys.validate(), std::runtime_error);

  MixConfig bad_theta;
  bad_theta.theta = 1.5;
  EXPECT_THROW(bad_theta.validate(), std::runtime_error);

  MixConfig no_scan_len;
  no_scan_len.scan_len = 0;
  EXPECT_THROW(no_scan_len.validate(), std::runtime_error);

  MixConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(KeyDist, ParseAndToStringRoundTrip) {
  for (KeyDist d : {KeyDist::kUniform, KeyDist::kZipfian, KeyDist::kLatest}) {
    EXPECT_EQ(parse_key_dist(to_string(d)), d);
  }
  EXPECT_THROW((void)parse_key_dist("pareto"), std::runtime_error);
}

}  // namespace
}  // namespace dvs::workload
