// Scenario format and SLO determinism locks:
//   * .scn parse/to_string exact round-trip, and rejection of malformed
//     input with the offending line in the message;
//   * the fault script compiles to EXACTLY the existing net::FaultPlan
//     vocabulary — differential test against a hand-built plan (no second
//     fault language, docs/VERIFICATION.md);
//   * churn is a deterministic per-seed kCrash/kRecover stream under
//     ChaosConfig's pause-vs-restart semantics knob;
//   * golden SLO reports: fixed scenario × seed range → byte-identical
//     JSON across repeated runs and across --jobs 1 vs --jobs 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/fault_plan.h"
#include "workload/runner.h"
#include "workload/scenario.h"
#include "workload/slo.h"

namespace dvs::workload {
namespace {

// ----- parse / to_string -----------------------------------------------------

Scenario full_scenario() {
  Scenario s;
  s.name = "kitchen-sink";
  s.n = 4;
  s.initial = 3;
  s.seeds = 2;
  s.seed = 7;
  s.warmup = 300 * sim::kMillisecond;
  s.horizon = 12 * sim::kSecond;
  s.settle = 2 * sim::kSecond;
  s.heartbeat_ms = 40;
  s.suspect_ms = 200;
  s.propose_ms = 500;
  s.watermarks = false;
  s.batching = true;
  s.persistence = true;
  s.clients = 6;
  s.closed_loop = false;
  s.rate = 123.5;
  s.think = 7 * sim::kMillisecond;
  s.mix.keys = 500;
  s.mix.dist = KeyDist::kLatest;
  s.mix.theta = 0.9;
  s.mix.reads = 30;
  s.mix.writes = 65;
  s.mix.scans = 5;
  s.mix.scan_len = 5;
  s.mix.value_len = 16;
  s.sample_period = 40 * sim::kMillisecond;
  s.phases = {Phase{"quiet", 4 * sim::kSecond, 1.0},
              Phase{"peak", 4 * sim::kSecond, 3.0},
              Phase{"trough", 4 * sim::kSecond, 0.5}};
  s.burst_period = 1 * sim::kSecond;
  s.burst_len = 200 * sim::kMillisecond;
  s.burst_mult = 2.5;
  s.region = {0, 0, 1, 1};
  s.latency = {{1 * sim::kMillisecond, 25 * sim::kMillisecond},
               {25 * sim::kMillisecond, 1 * sim::kMillisecond}};
  s.drop = 0.01;
  s.duplicate = 0.005;
  s.flaps = {FlapSpec{ProcessId{2}, 1 * sim::kSecond, 2 * sim::kSecond,
                      300 * sim::kMillisecond, 2}};
  s.crash_groups = {CrashGroupSpec{
      5 * sim::kSecond, 500 * sim::kMillisecond, {ProcessId{0}, ProcessId{3}}}};
  s.rolling_restart = RollingRestartSpec{8 * sim::kSecond,
                                         200 * sim::kMillisecond};
  s.drop_windows = {WindowSpec{6 * sim::kSecond, 400 * sim::kMillisecond, 0.3}};
  s.dup_bursts = {WindowSpec{7 * sim::kSecond, 200 * sim::kMillisecond, 0.5}};
  s.churn = ChurnSpec{0.75, true, 400 * sim::kMillisecond,
                      1200 * sim::kMillisecond};
  s.slo_availability_ppm = 700000;
  s.slo_p99_commit_ms = 4000;
  return s;
}

TEST(ScenarioFormat, ToStringParseRoundTripsExactly) {
  const Scenario s = full_scenario();
  s.validate();
  const std::string text = s.to_string();
  const Scenario reparsed = Scenario::parse(text);
  EXPECT_EQ(reparsed, s);
  EXPECT_EQ(reparsed.to_string(), text);
}

TEST(ScenarioFormat, ParsesCommentsBlanksAndDefaults) {
  const Scenario s = Scenario::parse(
      "# a comment line\n"
      "name demo   # trailing comment\n"
      "\n"
      "n 3\n"
      "horizon_ms 2000\n");
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(s.horizon, 2 * sim::kSecond);
  // Everything else keeps its default.
  EXPECT_EQ(s.clients, 4u);
  EXPECT_TRUE(s.closed_loop);
  EXPECT_TRUE(s.phases.empty());
  EXPECT_EQ(s.effective_phases().size(), 1u);
  EXPECT_EQ(s.effective_phases()[0].duration, s.horizon);
}

TEST(ScenarioFormat, RejectsMalformedInputWithTheOffendingLine) {
  const auto reject = [](const std::string& text, const char* needle) {
    try {
      (void)Scenario::parse(text);
      FAIL() << "accepted: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  reject("bogus 1\n", "unknown key");
  reject("n 3 extra\n", "trailing token");
  reject("n abc\n", "malformed number");
  reject("watermarks maybe\n", "on|off");
  reject("loop sideways\n", "closed|open");
  reject("dist pareto\n", "unknown key distribution");
  reject("horizon_ms 2000\nwarmup_ms 2000\n", "warmup");
  reject("horizon_ms 2000\nphase a 1000 1\n", "phase durations");
  reject("horizon_ms 2000\nreads 60\n", "must be 100");
  reject("region 0 0\nregion 1 0\nregion 2 0\n", "latency");
  reject("crash_group 1000 500 0,1,2\n", "at least one process alive");
  reject("flap 9 1000 2000 300 1\n", "outside universe");
  reject("churn 0.5 restart 800 400\n", "down_min > down_max");
  reject("churn 0.5 sometimes 400 800\n", "pause|restart");
  reject("slo_availability_ppm 2000000\n", "<= 1000000");
  reject("horizon_ms 2000\nburst 500 600 2\n", "burst length");
  // Overlapping flap windows drive one global partition state.
  reject(
      "n 3\nhorizon_ms 4000\n"
      "flap 0 1000 2000 300 2\n"
      "flap 1 1100 2000 300 1\n",
      "overlap");
}

// ----- fault compilation: differential against a hand-built FaultPlan -------

TEST(ScenarioFaults, CompilesToExactlyTheHandBuiltFaultPlan) {
  Scenario s;
  s.name = "differential";
  s.n = 4;
  s.horizon = 12 * sim::kSecond;
  s.flaps = {FlapSpec{ProcessId{1}, 1 * sim::kSecond, 2 * sim::kSecond,
                      300 * sim::kMillisecond, 2}};
  s.crash_groups = {CrashGroupSpec{
      4 * sim::kSecond, 500 * sim::kMillisecond, {ProcessId{0}, ProcessId{2}}}};
  s.rolling_restart = RollingRestartSpec{6 * sim::kSecond,
                                         200 * sim::kMillisecond};
  s.drop_windows = {
      WindowSpec{2500 * sim::kMillisecond, 400 * sim::kMillisecond, 0.25}};
  s.dup_bursts = {
      WindowSpec{3 * sim::kSecond, 200 * sim::kMillisecond, 0.5}};
  s.validate();

  // The scripted parts are seed-independent.
  EXPECT_EQ(s.compile_faults(1), s.compile_faults(99));

  // Hand-built expectation in the FaultPlan's own vocabulary, sorted by
  // time exactly as FaultPlan::schedule consumes it.
  using net::FaultEvent;
  const ProcessSet rest{ProcessId{0}, ProcessId{2}, ProcessId{3}};
  net::FaultPlan expected;
  auto add = [&expected](FaultEvent::Kind kind, sim::Time at, ProcessId target,
                         std::vector<ProcessSet> groups, sim::Time duration,
                         double probability) {
    FaultEvent e;
    e.kind = kind;
    e.at = at;
    e.target = target;
    e.groups = std::move(groups);
    e.duration = duration;
    e.probability = probability;
    expected.events.push_back(std::move(e));
  };
  add(FaultEvent::Kind::kPartition, 1 * sim::kSecond, ProcessId{},
      {ProcessSet{ProcessId{1}}, rest}, 0, 0.0);
  add(FaultEvent::Kind::kHeal, 1300 * sim::kMillisecond, ProcessId{}, {}, 0,
      0.0);
  add(FaultEvent::Kind::kDropWindow, 2500 * sim::kMillisecond, ProcessId{}, {},
      400 * sim::kMillisecond, 0.25);
  add(FaultEvent::Kind::kPartition, 3 * sim::kSecond, ProcessId{},
      {ProcessSet{ProcessId{1}}, rest}, 0, 0.0);
  add(FaultEvent::Kind::kDupBurst, 3 * sim::kSecond, ProcessId{}, {},
      200 * sim::kMillisecond, 0.5);
  add(FaultEvent::Kind::kHeal, 3300 * sim::kMillisecond, ProcessId{}, {}, 0,
      0.0);
  add(FaultEvent::Kind::kCrash, 4 * sim::kSecond, ProcessId{0}, {}, 0, 0.0);
  add(FaultEvent::Kind::kCrash, 4 * sim::kSecond, ProcessId{2}, {}, 0, 0.0);
  add(FaultEvent::Kind::kRecover, 4500 * sim::kMillisecond, ProcessId{0}, {},
      0, 0.0);
  add(FaultEvent::Kind::kRecover, 4500 * sim::kMillisecond, ProcessId{2}, {},
      0, 0.0);
  for (std::uint32_t i = 0; i < 4; ++i) {
    add(FaultEvent::Kind::kRestart,
        6 * sim::kSecond + i * 200 * sim::kMillisecond, ProcessId{i}, {}, 0,
        0.0);
  }

  EXPECT_EQ(s.compile_faults(1), expected);
  // The plan round-trips through FaultPlan's own serializer — proof the
  // compilation lives entirely inside the existing vocabulary.
  EXPECT_EQ(net::FaultPlan::parse(s.compile_faults(1).to_string()), expected);
  // Rolling restarts need stable storage; nothing here upgrades kCrash.
  EXPECT_TRUE(s.needs_persistence());
  EXPECT_FALSE(s.crashes_restart());
}

TEST(ScenarioFaults, ChurnIsASeededCrashRecoverStream) {
  Scenario s;
  s.name = "churny";
  s.n = 4;
  s.warmup = 500 * sim::kMillisecond;
  s.horizon = 30 * sim::kSecond;
  s.churn = ChurnSpec{2.0, true, 200 * sim::kMillisecond,
                      900 * sim::kMillisecond};
  s.validate();

  const net::FaultPlan plan = s.compile_faults(42);
  EXPECT_EQ(plan, s.compile_faults(42));      // deterministic per seed
  EXPECT_NE(plan, s.compile_faults(43));      // and seed-sensitive
  ASSERT_FALSE(plan.events.empty());
  EXPECT_GT(plan.events.size(), 40u);  // ~2 events/s over ~30s, paired

  // Only the existing kCrash/kRecover vocabulary, properly paired per
  // target, inside the horizon, with outages in [down_min, down_max] and
  // never more than n-1 processes down at once. The plan is sorted by time,
  // so per-target event lists come out in time order.
  std::map<std::uint32_t, std::vector<net::FaultEvent>> per_target;
  for (const net::FaultEvent& e : plan.events) {
    ASSERT_TRUE(e.kind == net::FaultEvent::Kind::kCrash ||
                e.kind == net::FaultEvent::Kind::kRecover)
        << "churn leaked a non-crash fault kind";
    per_target[e.target.value()].push_back(e);
  }
  std::size_t crashes = 0;
  std::vector<std::pair<sim::Time, int>> sweep;  // (time, +1 crash / -1 up)
  for (const auto& [target, evs] : per_target) {
    EXPECT_LT(target, s.n);
    ASSERT_EQ(evs.size() % 2, 0u) << "unpaired events for " << target;
    for (std::size_t i = 0; i + 1 < evs.size(); i += 2) {
      ASSERT_EQ(evs[i].kind, net::FaultEvent::Kind::kCrash);
      ASSERT_EQ(evs[i + 1].kind, net::FaultEvent::Kind::kRecover);
      ++crashes;
      EXPECT_GE(evs[i].at, s.warmup);
      EXPECT_LT(evs[i].at, s.horizon);
      const sim::Time len = evs[i + 1].at - evs[i].at;
      EXPECT_GE(len, s.churn->down_min);
      EXPECT_LE(len, s.churn->down_max);
      if (i >= 2) {
        EXPECT_GE(evs[i].at, evs[i - 1].at)
            << "re-crashed " << target << " while still down";
      }
      sweep.emplace_back(evs[i].at, +1);
      sweep.emplace_back(evs[i + 1].at, -1);
    }
  }
  EXPECT_EQ(crashes * 2, plan.events.size());
  // Concurrency: sort recoveries before crashes at equal instants (the
  // compiler treats a recovery at t as up again for a crash drawn at t).
  std::sort(sweep.begin(), sweep.end());
  int down_now = 0;
  for (const auto& [at, delta] : sweep) {
    down_now += delta;
    EXPECT_LE(down_now, static_cast<int>(s.n) - 1) << "everyone dark at " << at;
  }

  // `churn ... restart` is the single ChaosConfig-style semantics knob.
  EXPECT_TRUE(s.crashes_restart());
  EXPECT_TRUE(s.needs_persistence());
  Scenario pausey = s;
  pausey.churn->restart_semantics = false;
  EXPECT_FALSE(pausey.crashes_restart());
  EXPECT_FALSE(pausey.needs_persistence());
}

// ----- rate curve ------------------------------------------------------------

TEST(ScenarioRate, PhaseAndBurstMultipliersCompose) {
  Scenario s;
  s.horizon = 6 * sim::kSecond;
  s.phases = {Phase{"a", 2 * sim::kSecond, 1.0},
              Phase{"b", 2 * sim::kSecond, 3.0},
              Phase{"c", 2 * sim::kSecond, 0.5}};
  s.burst_period = 1 * sim::kSecond;
  s.burst_len = 100 * sim::kMillisecond;
  s.burst_mult = 2.0;
  s.validate();
  EXPECT_DOUBLE_EQ(s.rate_mult_at(500 * sim::kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_mult_at(2500 * sim::kMillisecond), 3.0);
  EXPECT_DOUBLE_EQ(s.rate_mult_at(5 * sim::kSecond + 500 * sim::kMillisecond),
                   0.5);
  // Inside a burst window the train multiplies the phase.
  EXPECT_DOUBLE_EQ(s.rate_mult_at(3 * sim::kSecond + 50 * sim::kMillisecond),
                   6.0);
  EXPECT_DOUBLE_EQ(s.rate_mult_at(50 * sim::kMillisecond), 2.0);
}

// ----- SLO report algebra ----------------------------------------------------

TEST(SloReport, MergeAddsAndJsonIsStable) {
  SloReport a;
  a.scenario = "m";
  a.n = 3;
  a.seeds = 1;
  a.first_seed = 1;
  a.measured_us = 1000;
  a.issued = 10;
  a.completed = 9;
  a.commits = 4;
  a.samples = 100;
  a.available_samples = 90;
  SloReport b = a;
  b.available_samples = 100;
  a += b;
  EXPECT_EQ(a.seeds, 2u);
  EXPECT_EQ(a.issued, 20u);
  EXPECT_EQ(a.samples, 200u);
  EXPECT_EQ(a.availability_ppm(), 950000u);
  EXPECT_EQ(a.throughput_ops_per_sec(), 18u * 1'000'000 / 2000);
  EXPECT_EQ(a.to_json(), a.to_json());

  SloReport other;
  other.scenario = "different";
  EXPECT_THROW(a += other, std::logic_error);

  PhaseSlo p1, p2;
  p1.name = "x";
  p2.name = "y";
  EXPECT_THROW(p1 += p2, std::logic_error);
}

TEST(SloReport, DeclaredSlosGateThePassBit) {
  SloReport r;
  r.scenario = "slo";
  r.samples = 100;
  r.available_samples = 80;  // 800000 ppm
  EXPECT_TRUE(r.slo_pass());  // nothing declared
  r.slo_availability_ppm = 900000;
  EXPECT_FALSE(r.slo_pass());
  r.slo_availability_ppm = 750000;
  EXPECT_TRUE(r.slo_pass());
  r.span_violations = 1;
  EXPECT_FALSE(r.slo_pass());
  r.span_violations = 0;
  EXPECT_NE(r.to_json().find("\"pass\":1"), std::string::npos);
}

// ----- golden determinism: jobs 1 vs jobs 4, run vs rerun -------------------

Scenario golden_scenario() {
  Scenario s;
  s.name = "golden";
  s.n = 3;
  s.seeds = 3;
  s.seed = 1;
  s.warmup = 300 * sim::kMillisecond;
  s.horizon = 2 * sim::kSecond;
  s.settle = 1 * sim::kSecond;
  s.clients = 2;
  s.think = 5 * sim::kMillisecond;
  s.mix.keys = 100;
  s.flaps = {FlapSpec{ProcessId{2}, 800 * sim::kMillisecond,
                      600 * sim::kMillisecond, 200 * sim::kMillisecond, 2}};
  s.validate();
  return s;
}

TEST(ScenarioGolden, SloJsonIsByteIdenticalAcrossJobsAndReruns) {
  const Scenario s = golden_scenario();
  const ScenarioSweepResult jobs1 = run_scenario(s, 1);
  const ScenarioSweepResult jobs4 = run_scenario(s, 4);
  const ScenarioSweepResult again = run_scenario(s, 4);
  ASSERT_TRUE(jobs1.ok()) << jobs1.first_failure;
  ASSERT_TRUE(jobs4.ok());
  EXPECT_EQ(jobs1.slo.to_json(), jobs4.slo.to_json());
  EXPECT_EQ(jobs4.slo.to_json(), again.slo.to_json());
  // The merged metric snapshots carry every layer's counters and the span
  // invariants; they obey the same contract.
  EXPECT_EQ(jobs1.metrics.to_json(), jobs4.metrics.to_json());
  EXPECT_EQ(jobs1.metrics, jobs4.metrics);

  // The report actually measured something.
  EXPECT_GT(jobs1.slo.issued, 0u);
  EXPECT_GT(jobs1.slo.commits, 0u);
  EXPECT_GT(jobs1.slo.samples, 0u);
  EXPECT_EQ(jobs1.slo.seeds, 3u);
  EXPECT_EQ(jobs1.slo.converged_seeds, 3u);
  EXPECT_EQ(jobs1.slo.span_violations, 0u);
  EXPECT_EQ(jobs1.slo.fault_events, 3u * 4);  // 2 cut/heal pairs per seed
}

TEST(ScenarioGolden, SingleSeedRunIsSelfConsistent) {
  Scenario s = golden_scenario();
  s.seeds = 1;
  const SeedOutcome out = run_scenario_seed(s, 5);
  const SeedOutcome replay = run_scenario_seed(s, 5);
  EXPECT_EQ(out.slo.to_json(), replay.slo.to_json());
  EXPECT_EQ(out.metrics, replay.metrics);
  EXPECT_EQ(out.slo.first_seed, 5u);
  // Sampling covers the measured window at the configured period.
  EXPECT_EQ(out.slo.samples, (s.horizon - s.warmup) / s.sample_period);
  // Issued = per-kind sum; completed never exceeds issued.
  EXPECT_EQ(out.slo.issued, out.slo.reads + out.slo.writes + out.slo.scans);
  EXPECT_LE(out.slo.completed, out.slo.issued);
  EXPECT_EQ(out.slo.commits, out.slo.commit_latency.count);
}

TEST(ScenarioGolden, OpenLoopRunIsDeterministicToo) {
  Scenario s = golden_scenario();
  s.closed_loop = false;
  s.rate = 200.0;
  s.seeds = 2;
  const ScenarioSweepResult jobs1 = run_scenario(s, 1);
  const ScenarioSweepResult jobs4 = run_scenario(s, 4);
  ASSERT_TRUE(jobs1.ok()) << jobs1.first_failure;
  EXPECT_EQ(jobs1.slo.to_json(), jobs4.slo.to_json());
  EXPECT_GT(jobs1.slo.issued, 0u);
}

}  // namespace
}  // namespace dvs::workload
