// MsgArena / NodePool: the slab allocators behind the allocation-free wire
// path (common/arena.h). Pins the recycling contract (acquire reuses parked
// slots with their heap capacity), the bounded-retention degradation (bursts
// beyond max_retained degrade to plain malloc/free, counted and never
// refused), and the std-allocator adapter.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <set>
#include <vector>

namespace dvs {
namespace {

TEST(MsgArenaTest, AcquireReleaseRecyclesSlots) {
  MsgArena arena(8);
  const MsgArena::Handle a = arena.acquire();
  arena.at(a).resize(100);
  arena.release(a);
  const MsgArena::Handle b = arena.acquire();
  // Same slot back, cleared but with its heap capacity intact.
  EXPECT_EQ(b, a);
  EXPECT_TRUE(arena.at(b).empty());
  EXPECT_GE(arena.at(b).capacity(), 100u);
  EXPECT_EQ(arena.stats().acquires, 2u);
  EXPECT_EQ(arena.stats().reuses, 1u);
  EXPECT_EQ(arena.stats().slots, 1u);
}

TEST(MsgArenaTest, LiveAccountingAndPeak) {
  MsgArena arena(8);
  std::vector<MsgArena::Handle> held;
  for (int i = 0; i < 5; ++i) held.push_back(arena.acquire());
  EXPECT_EQ(arena.stats().live, 5u);
  EXPECT_EQ(arena.stats().peak_live, 5u);
  for (MsgArena::Handle h : held) arena.release(h);
  EXPECT_EQ(arena.stats().live, 0u);
  EXPECT_EQ(arena.stats().peak_live, 5u);
}

TEST(MsgArenaTest, BurstBeyondRetentionDegradesGracefully) {
  // A burst past max_retained must still be served (no refusal, no UB) and
  // must be visible in the exhaustion counters; releasing the burst returns
  // the excess heap memory (trimmed releases) while keeping the slots.
  constexpr std::size_t kRetained = 4;
  MsgArena arena(kRetained);
  std::vector<MsgArena::Handle> held;
  for (std::size_t i = 0; i < 3 * kRetained; ++i) {
    held.push_back(arena.acquire());
    arena.at(held.back()).assign(64, std::byte{0x5a});
  }
  EXPECT_EQ(arena.stats().exhausted_acquires, 2 * kRetained);
  EXPECT_EQ(arena.stats().slots, 3 * kRetained);
  for (MsgArena::Handle h : held) {
    // Every slot is still addressable and holds its bytes.
    ASSERT_EQ(arena.at(h).size(), 64u);
    arena.release(h);
  }
  EXPECT_EQ(arena.stats().trimmed_releases, 2 * kRetained);
  EXPECT_EQ(arena.stats().live, 0u);
  // After the burst the arena still serves from the free list.
  const MsgArena::Handle h = arena.acquire();
  EXPECT_EQ(arena.stats().reuses, 1u);
  arena.release(h);
}

TEST(MsgArenaTest, HandlesStayValidAcrossGrowth) {
  MsgArena arena(2);
  const MsgArena::Handle a = arena.acquire();
  arena.at(a).assign(16, std::byte{0x11});
  // References are stable across growth (the load-bearing contract: a
  // delivery reads its slot while handlers acquire fresh ones).
  const Bytes* stable = &arena.at(a);
  // Force slot-table growth past the retention budget.
  std::vector<MsgArena::Handle> more;
  for (int i = 0; i < 50; ++i) more.push_back(arena.acquire());
  EXPECT_EQ(&arena.at(a), stable);
  EXPECT_EQ(arena.at(a).size(), 16u);
  EXPECT_EQ(arena.at(a)[0], std::byte{0x11});
  arena.release(a);
  for (MsgArena::Handle h : more) arena.release(h);
}

TEST(PoolAllocatorTest, MapAndSetWorkOnThePool) {
  std::map<int, std::string, std::less<int>,
           PoolAllocator<std::pair<const int, std::string>>>
      m;
  std::set<int, std::less<int>, PoolAllocator<int>> s;
  for (int i = 0; i < 1000; ++i) {
    m.emplace(i, "v" + std::to_string(i));
    s.insert(i);
  }
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(m.at(37), "v37");
  for (int i = 0; i < 1000; i += 2) {
    m.erase(i);
    s.erase(i);
  }
  // Re-insert over the freed nodes: the pool hands recycled nodes back.
  for (int i = 0; i < 1000; i += 2) {
    m.emplace(i, "w" + std::to_string(i));
    s.insert(i);
  }
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_EQ(m.at(36), "w36");
  EXPECT_EQ(m.at(37), "v37");
}

TEST(PoolAllocatorTest, LargeNodesPassThrough) {
  // Nodes above the pool's largest size class go straight to operator new —
  // no crash, no corruption.
  struct Big {
    char data[1024];
  };
  PoolAllocator<Big> alloc;
  Big* p = alloc.allocate(1);
  p->data[0] = 'x';
  alloc.deallocate(p, 1);
}

}  // namespace
}  // namespace dvs
