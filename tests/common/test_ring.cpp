// RingBuffer / SeqWindow: the allocation-free queue containers behind the
// vsys/dvsys hot paths (common/ring.h). These are drop-in replacements for
// std::deque and std::map<uint64_t, V>, so the tests pin the container
// semantics the protocol code relies on: FIFO order, stable absolute
// indexing across garbage collection, slot recycling, and growth under
// arbitrary push/pop interleavings (differential-tested against the std
// containers they replaced).
#include "common/ring.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>

#include "common/rng.h"

namespace dvs {
namespace {

TEST(RingBufferTest, FifoPushPop) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, AbsoluteIndexingSurvivesGarbageCollection) {
  RingBuffer<int> rb;
  for (int i = 0; i < 40; ++i) rb.push_back(i);
  // Pop a prefix: the n-th element ever pushed keeps absolute index n.
  for (int i = 0; i < 25; ++i) rb.pop_front();
  EXPECT_EQ(rb.base(), 25u);
  EXPECT_EQ(rb.end_index(), 40u);
  for (std::uint64_t n = rb.base(); n < rb.end_index(); ++n) {
    EXPECT_EQ(rb.at_abs(n), static_cast<int>(n));
  }
  // Wrap around the internal slot array several times.
  for (int i = 40; i < 400; ++i) {
    rb.push_back(i);
    rb.pop_front();
  }
  EXPECT_EQ(rb.base(), 385u);
  EXPECT_EQ(rb.at_abs(390), 390);
}

TEST(RingBufferTest, RelativeIndexingAndIteration) {
  RingBuffer<std::string> rb;
  rb.push_back("a");
  rb.push_back("b");
  rb.push_back("c");
  rb.pop_front();
  EXPECT_EQ(rb[0], "b");
  EXPECT_EQ(rb[1], "c");
  EXPECT_EQ(rb.back(), "c");
  std::string joined;
  for (const std::string& s : rb) joined += s;
  EXPECT_EQ(joined, "bc");
}

TEST(RingBufferTest, ClearRewindsBaseAndKeepsWorking) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  for (int i = 0; i < 5; ++i) rb.pop_front();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.base(), 0u);
  rb.push_back(7);
  EXPECT_EQ(rb.at_abs(0), 7);
}

TEST(RingBufferTest, AppendSlotRecyclesCapacity) {
  RingBuffer<std::string> rb;
  rb.push_back(std::string(100, 'x'));
  rb.pop_front();
  // The popped slot parked its heap buffer. In steady-state churn the head
  // chases the tail, so after one full lap around the slot array the
  // parked slot comes up for reuse; append_slot hands it back without
  // clearing, and assignment recycles the capacity.
  std::string* recycled = nullptr;
  for (int lap = 0; lap < 64 && recycled == nullptr; ++lap) {
    std::string& slot = rb.append_slot();
    if (slot.capacity() >= 100) recycled = &slot;
    rb.pop_front();
  }
  ASSERT_NE(recycled, nullptr) << "parked capacity never came back around";
  recycled->assign(50, 'y');
  EXPECT_EQ(recycled->size(), 50u);
}

TEST(RingBufferTest, DifferentialAgainstDeque) {
  RingBuffer<int> rb;
  std::deque<int> dq;
  Rng rng(42);
  int next = 0;
  for (int step = 0; step < 10000; ++step) {
    if (dq.empty() || rng.below(3) != 0) {
      rb.push_back(next);
      dq.push_back(next);
      ++next;
    } else {
      EXPECT_EQ(rb.front(), dq.front());
      rb.pop_front();
      dq.pop_front();
    }
    ASSERT_EQ(rb.size(), dq.size());
    if (!dq.empty()) {
      const std::size_t probe = rng.below(dq.size());
      ASSERT_EQ(rb[probe], dq[probe]);
    }
  }
}

TEST(SeqWindowTest, InsertFindErase) {
  SeqWindow<std::string> w;
  EXPECT_TRUE(w.empty());
  w.insert(5) = "five";
  w.insert(7) = "seven";
  EXPECT_EQ(w.size(), 2u);
  EXPECT_TRUE(w.contains(5));
  EXPECT_FALSE(w.contains(6));
  ASSERT_NE(w.find(7), nullptr);
  EXPECT_EQ(*w.find(7), "seven");
  EXPECT_EQ(w.find(6), nullptr);
  w.erase(5);
  EXPECT_FALSE(w.contains(5));
  EXPECT_EQ(w.size(), 1u);
  w.erase(5);  // erase of absent key is a no-op
  EXPECT_EQ(w.size(), 1u);
}

TEST(SeqWindowTest, HiIsHighWaterMark) {
  SeqWindow<int> w;
  EXPECT_EQ(w.hi(), 0u);
  w.insert(10) = 1;
  w.insert(3) = 2;
  EXPECT_EQ(w.hi(), 10u);
  w.erase(10);
  // hi is "highest ever issued", not lowered by erase.
  EXPECT_EQ(w.hi(), 10u);
  w.clear();
  EXPECT_EQ(w.hi(), 0u);
}

TEST(SeqWindowTest, EraseBelowGarbageCollectsPrefix) {
  SeqWindow<int> w;
  for (std::uint64_t k = 1; k <= 50; ++k) w.insert(k) = static_cast<int>(k);
  w.erase_below(31);
  EXPECT_EQ(w.size(), 20u);
  EXPECT_FALSE(w.contains(30));
  EXPECT_TRUE(w.contains(31));
  // A second, overlapping GC is cheap and correct.
  w.erase_below(31);
  EXPECT_EQ(w.size(), 20u);
}

TEST(SeqWindowTest, WideKeySpanForcesCollisionFreeRehash) {
  // Two keys with equal residue mod any small power of two: the rehash must
  // keep growing until the span fits (capacity > max-min guarantees
  // distinct residues).
  SeqWindow<int> w;
  w.insert(1) = 1;
  w.insert(1 + (1ull << 14)) = 2;
  EXPECT_EQ(*w.find(1), 1);
  EXPECT_EQ(*w.find(1 + (1ull << 14)), 2);
  w.insert(1 + (1ull << 15)) = 3;
  EXPECT_EQ(*w.find(1), 1);
  EXPECT_EQ(*w.find(1 + (1ull << 14)), 2);
  EXPECT_EQ(*w.find(1 + (1ull << 15)), 3);
}

TEST(SeqWindowTest, DifferentialAgainstMap) {
  SeqWindow<int> w;
  std::map<std::uint64_t, int> m;
  Rng rng(7);
  std::uint64_t next_key = 1;
  for (int step = 0; step < 20000; ++step) {
    const std::size_t op = rng.below(4);
    if (op < 2) {
      w.insert(next_key) = static_cast<int>(next_key);
      m.emplace(next_key, static_cast<int>(next_key));
      ++next_key;
    } else if (op == 2 && !m.empty()) {
      const std::uint64_t k = m.begin()->first + rng.below(m.size());
      w.erase(k);
      m.erase(k);
    } else if (!m.empty()) {
      // Prefix GC to a random point in the live window.
      const std::uint64_t cut = m.begin()->first + rng.below(m.size());
      w.erase_below(cut);
      m.erase(m.begin(), m.lower_bound(cut));
    }
    ASSERT_EQ(w.size(), m.size());
    if (!m.empty()) {
      const std::uint64_t lo = m.begin()->first;
      const std::uint64_t hi = m.rbegin()->first;
      for (std::uint64_t k = lo; k <= hi && k < lo + 8; ++k) {
        ASSERT_EQ(w.contains(k), m.contains(k)) << "key " << k;
        if (m.contains(k)) {
          ASSERT_EQ(*w.find(k), m.at(k));
        }
      }
    }
  }
}

}  // namespace
}  // namespace dvs
