// Unit tests for the core identifier and view types (paper Section 2).
#include <gtest/gtest.h>

#include <set>

#include "common/types.h"
#include "common/view.h"

namespace dvs {
namespace {

TEST(ProcessIdTest, OrderingAndEquality) {
  ProcessId a{1};
  ProcessId b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, ProcessId{1});
  EXPECT_EQ(a.to_string(), "p1");
}

TEST(ViewIdTest, InitialIsLeastElement) {
  const ViewId g0 = ViewId::initial();
  EXPECT_LT(g0, (ViewId{1, ProcessId{0}}));
  EXPECT_LT(g0, (ViewId{0, ProcessId{1}}));
  EXPECT_EQ(g0, (ViewId{0, ProcessId{0}}));
}

TEST(ViewIdTest, LexicographicOrder) {
  ViewId a{1, ProcessId{5}};
  ViewId b{2, ProcessId{0}};
  ViewId c{2, ProcessId{1}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
}

TEST(ViewIdTest, TotallyOrderedSetBehaviour) {
  std::set<ViewId> ids;
  ids.insert(ViewId{3, ProcessId{1}});
  ids.insert(ViewId{1, ProcessId{2}});
  ids.insert(ViewId{3, ProcessId{0}});
  ids.insert(ViewId{1, ProcessId{2}});  // duplicate
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids.begin()->epoch(), 1u);
}

TEST(ViewTest, MembershipAndComparison) {
  View v{ViewId{1, ProcessId{0}}, make_process_set({0, 1, 2})};
  EXPECT_TRUE(v.contains(ProcessId{1}));
  EXPECT_FALSE(v.contains(ProcessId{3}));
  EXPECT_EQ(v.size(), 3u);

  View w{ViewId{2, ProcessId{0}}, make_process_set({0, 1})};
  EXPECT_LT(v, w);  // ordered by id
  EXPECT_NE(v, w);
}

TEST(ViewTest, IntersectionHelpers) {
  const ProcessSet a = make_process_set({0, 1, 2, 3});
  const ProcessSet b = make_process_set({2, 3, 4});
  const ProcessSet c = make_process_set({5, 6});
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_TRUE(intersects(a, b));
  EXPECT_FALSE(intersects(a, c));
  EXPECT_EQ(intersection_size(a, c), 0u);
}

TEST(ViewTest, MajorityIsStrictAndOfSecondArgument) {
  const ProcessSet v = make_process_set({0, 1});
  const ProcessSet w = make_process_set({0, 1, 2, 3});
  // |v ∩ w| = 2 is not > 4/2.
  EXPECT_FALSE(majority_of(v, w));
  const ProcessSet u = make_process_set({0, 1, 2});
  // |u ∩ w| = 3 > 2.
  EXPECT_TRUE(majority_of(u, w));
  // Majority is measured against the second argument's size.
  EXPECT_TRUE(majority_of(w, u));
  const ProcessSet single = make_process_set({7});
  EXPECT_FALSE(majority_of(v, single));
  EXPECT_TRUE(majority_of(single, single));
}

TEST(ViewTest, MakeUniverse) {
  const ProcessSet u = make_universe(4);
  ASSERT_EQ(u.size(), 4u);
  EXPECT_TRUE(u.contains(ProcessId{0}));
  EXPECT_TRUE(u.contains(ProcessId{3}));
  EXPECT_FALSE(u.contains(ProcessId{4}));
}

TEST(ViewTest, InitialView) {
  const View v0 = initial_view(make_universe(3));
  EXPECT_EQ(v0.id(), ViewId::initial());
  EXPECT_EQ(v0.size(), 3u);
}

}  // namespace
}  // namespace dvs
