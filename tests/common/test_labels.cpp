// Unit tests for labels, summaries and the Section 6.1 helper functions
// (knowncontent, maxprimary, chosenrep, shortorder, fullorder).
#include <gtest/gtest.h>

#include "common/labels.h"
#include "common/messages.h"

namespace dvs {
namespace {

Label lbl(std::uint64_t epoch, std::uint64_t seqno, unsigned origin) {
  return Label{ViewId{epoch, ProcessId{0}}, seqno, ProcessId{origin}};
}

TEST(LabelTest, LabelOrderIsLexicographic) {
  // (view id, seqno, origin).
  EXPECT_LT(lbl(1, 9, 2), lbl(2, 1, 0));
  EXPECT_LT(lbl(1, 1, 0), lbl(1, 2, 0));
  EXPECT_LT(lbl(1, 1, 0), lbl(1, 1, 1));
  EXPECT_EQ(lbl(1, 1, 1), lbl(1, 1, 1));
}

TEST(SummaryHelpersTest, KnowncontentUnionsAllCons) {
  std::map<ProcessId, Summary> y;
  Summary a;
  a.con.emplace(lbl(1, 1, 0), AppMsg{1, ProcessId{0}, "x"});
  Summary b;
  b.con.emplace(lbl(1, 2, 1), AppMsg{2, ProcessId{1}, "y"});
  b.con.emplace(lbl(1, 1, 0), AppMsg{1, ProcessId{0}, "x"});  // shared
  y.emplace(ProcessId{0}, a);
  y.emplace(ProcessId{1}, b);
  EXPECT_EQ(knowncontent(y).size(), 2u);
}

TEST(SummaryHelpersTest, MaxprimaryAndChosenrep) {
  std::map<ProcessId, Summary> y;
  Summary a;
  a.high = ViewId{3, ProcessId{0}};
  a.ord = {lbl(1, 1, 0)};
  Summary b;
  b.high = ViewId{5, ProcessId{1}};
  b.ord = {lbl(1, 1, 0), lbl(1, 2, 1)};
  Summary c;
  c.high = ViewId{5, ProcessId{1}};  // ties with b
  c.ord = {lbl(1, 1, 0), lbl(1, 2, 1), lbl(2, 1, 2)};
  y.emplace(ProcessId{2}, a);
  y.emplace(ProcessId{0}, b);
  y.emplace(ProcessId{1}, c);
  EXPECT_EQ(maxprimary(y), (ViewId{5, ProcessId{1}}));
  // chosenrep: smallest id among the high-maximizers → p0 (not p1, p2).
  EXPECT_EQ(chosenrep(y), ProcessId{0});
  EXPECT_EQ(shortorder(y).size(), 2u);
}

TEST(SummaryHelpersTest, MaxnextconfirmTakesTheMaximum) {
  std::map<ProcessId, Summary> y;
  Summary a;
  a.next = 4;
  Summary b;
  b.next = 9;
  y.emplace(ProcessId{0}, a);
  y.emplace(ProcessId{1}, b);
  EXPECT_EQ(maxnextconfirm(y), 9u);
}

TEST(SummaryHelpersTest, FullorderAppendsRemainingInLabelOrder) {
  std::map<ProcessId, Summary> y;
  Summary rep;  // chosenrep (highest high, smallest id)
  rep.high = ViewId{2, ProcessId{0}};
  rep.ord = {lbl(1, 2, 0)};  // deliberately NOT in label order
  rep.con.emplace(lbl(1, 2, 0), AppMsg{});
  Summary other;
  other.high = ViewId{1, ProcessId{0}};
  other.con.emplace(lbl(1, 1, 1), AppMsg{});
  other.con.emplace(lbl(1, 3, 0), AppMsg{});
  y.emplace(ProcessId{0}, rep);
  y.emplace(ProcessId{1}, other);

  const std::vector<Label> order = fullorder(y);
  ASSERT_EQ(order.size(), 3u);
  // shortorder first (rep's tentative order wins)...
  EXPECT_EQ(order[0], lbl(1, 2, 0));
  // ...then the remaining known labels in label order.
  EXPECT_EQ(order[1], lbl(1, 1, 1));
  EXPECT_EQ(order[2], lbl(1, 3, 0));
}

TEST(SummaryHelpersTest, FullorderNeverDuplicates) {
  std::map<ProcessId, Summary> y;
  Summary rep;
  rep.ord = {lbl(1, 1, 0), lbl(1, 2, 0)};
  rep.con.emplace(lbl(1, 1, 0), AppMsg{});
  rep.con.emplace(lbl(1, 2, 0), AppMsg{});
  y.emplace(ProcessId{0}, rep);
  Summary dup = rep;  // same content at another member
  y.emplace(ProcessId{1}, dup);
  const std::vector<Label> order = fullorder(y);
  EXPECT_EQ(order.size(), 2u);
}

TEST(SummaryHelpersTest, EmptyMapThrows) {
  std::map<ProcessId, Summary> y;
  EXPECT_THROW((void)maxprimary(y), std::logic_error);
  EXPECT_THROW((void)maxnextconfirm(y), std::logic_error);
  EXPECT_THROW((void)chosenrep(y), std::logic_error);
}

TEST(MessagesTest, ClientClassification) {
  EXPECT_TRUE(is_client(Msg{OpaqueMsg{}}));
  EXPECT_TRUE(is_client(Msg{LabeledAppMsg{}}));
  EXPECT_TRUE(is_client(Msg{Summary{}}));
  EXPECT_TRUE(is_client(Msg{StateMsg{}}));
  EXPECT_FALSE(is_client(Msg{InfoMsg{initial_view(make_universe(1)), {}}}));
  EXPECT_FALSE(is_client(Msg{RegisteredMsg{}}));
}

TEST(MessagesTest, RoundTripThroughMsg) {
  const ClientMsg original{StateMsg{ViewId{2, ProcessId{1}}, "blob"}};
  EXPECT_EQ(to_client(to_msg(original)), original);
  EXPECT_THROW((void)to_client(Msg{RegisteredMsg{}}), std::logic_error);
}

}  // namespace
}  // namespace dvs
