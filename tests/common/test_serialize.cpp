// Round-trip and malformed-input tests for the wire codec.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serialize.h"

namespace dvs {
namespace {

TEST(SerializeTest, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.varuint(0);
  w.varuint(127);
  w.varuint(128);
  w.varuint(0xffffffffffffffffULL);
  w.str("hello");
  const Bytes data = w.take();

  Reader r(data);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.varuint(), 0u);
  EXPECT_EQ(r.varuint(), 127u);
  EXPECT_EQ(r.varuint(), 128u);
  EXPECT_EQ(r.varuint(), 0xffffffffffffffffULL);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, ViewRoundTrip) {
  const View v{ViewId{42, ProcessId{3}}, make_process_set({0, 3, 7})};
  Writer w;
  w.view(v);
  const Bytes data = w.take();
  Reader r(data);
  EXPECT_EQ(r.view(), v);
  r.expect_exhausted();
}

TEST(SerializeTest, LabelAndSummaryRoundTrip) {
  Summary x;
  const Label l1{ViewId{1, ProcessId{0}}, 1, ProcessId{0}};
  const Label l2{ViewId{1, ProcessId{0}}, 2, ProcessId{1}};
  x.con.emplace(l1, AppMsg{10, ProcessId{0}, "alpha"});
  x.con.emplace(l2, AppMsg{11, ProcessId{1}, "beta"});
  x.ord = {l1, l2};
  x.next = 3;
  x.high = ViewId{1, ProcessId{0}};

  Writer w;
  w.summary(x);
  const Bytes data = w.take();
  Reader r(data);
  EXPECT_EQ(r.summary(), x);
  r.expect_exhausted();
}

TEST(SerializeTest, MsgVariantsRoundTrip) {
  const std::vector<Msg> msgs = {
      Msg{OpaqueMsg{99, ProcessId{2}}},
      Msg{LabeledAppMsg{Label{ViewId{2, ProcessId{1}}, 5, ProcessId{1}},
                        AppMsg{7, ProcessId{1}, "payload"}}},
      Msg{Summary{}},
      Msg{InfoMsg{View{ViewId{1, ProcessId{0}}, make_process_set({0, 1})},
                  {View{ViewId{2, ProcessId{1}}, make_process_set({1, 2})}}}},
      Msg{RegisteredMsg{}},
  };
  for (const Msg& m : msgs) {
    Writer w;
    w.msg(m);
    const Bytes data = w.take();
    Reader r(data);
    EXPECT_EQ(r.msg(), m) << to_string(m);
    r.expect_exhausted();
  }
}

TEST(SerializeTest, ClientMsgRejectsServiceMessages) {
  Writer w;
  w.msg(Msg{RegisteredMsg{}});
  const Bytes data = w.take();
  Reader r(data);
  EXPECT_THROW((void)r.client_msg(), DecodeError);
}

TEST(SerializeTest, TruncatedInputThrows) {
  Writer w;
  w.view(View{ViewId{1, ProcessId{0}}, make_process_set({0, 1, 2})});
  Bytes data = w.take();
  data.resize(data.size() / 2);
  Reader r(data);
  EXPECT_THROW((void)r.view(), DecodeError);
}

TEST(SerializeTest, EmptyMembershipViewRejected) {
  Writer w;
  w.view_id(ViewId{1, ProcessId{0}});
  w.varuint(0);  // empty membership
  const Bytes data = w.take();
  Reader r(data);
  EXPECT_THROW((void)r.view(), DecodeError);
}

TEST(SerializeTest, UnknownTagRejected) {
  Writer w;
  w.u8(0x7f);
  const Bytes data = w.take();
  Reader r(data);
  EXPECT_THROW((void)r.msg(), DecodeError);
}

TEST(SerializeTest, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  const Bytes data = w.take();
  Reader r(data);
  (void)r.u8();
  EXPECT_FALSE(r.exhausted());
  EXPECT_THROW(r.expect_exhausted(), DecodeError);
}

}  // namespace
}  // namespace dvs

namespace dvs {
namespace {

// ---------------------------------------------------------------------------
// Property test: randomly generated message trees round-trip through the
// codec bit-exactly.
// ---------------------------------------------------------------------------

class MsgGenerator {
 public:
  explicit MsgGenerator(std::uint64_t seed) : rng_(seed) {}

  ProcessId process() { return ProcessId{static_cast<ProcessId::Rep>(rng_.below(16))}; }
  ViewId view_id() { return ViewId{rng_.below(64), process()}; }
  View view() {
    ProcessSet members;
    const std::size_t n = 1 + rng_.below(5);
    for (std::size_t i = 0; i < n; ++i) members.insert(process());
    return View{view_id(), std::move(members)};
  }
  Label label() { return Label{view_id(), 1 + rng_.below(100), process()}; }
  std::string text() {
    std::string s;
    const std::size_t n = rng_.below(20);
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<char>(rng_.below(256)));
    }
    return s;
  }
  AppMsg app_msg() { return AppMsg{rng_.below(1000), process(), text()}; }
  Summary summary() {
    Summary x;
    const std::size_t n = rng_.below(6);
    for (std::size_t i = 0; i < n; ++i) x.con.emplace(label(), app_msg());
    const std::size_t m = rng_.below(6);
    for (std::size_t i = 0; i < m; ++i) x.ord.push_back(label());
    x.next = 1 + rng_.below(50);
    x.high = view_id();
    return x;
  }
  Msg msg() {
    switch (rng_.below(5)) {
      case 0:
        return OpaqueMsg{rng_.below(1000), process()};
      case 1:
        return LabeledAppMsg{label(), app_msg()};
      case 2:
        return summary();
      case 3: {
        InfoMsg info{view(), {}};
        const std::size_t n = rng_.below(4);
        for (std::size_t i = 0; i < n; ++i) info.amb.push_back(view());
        return info;
      }
      default:
        if (rng_.chance(0.5)) return StateMsg{view_id(), text()};
        return RegisteredMsg{};
    }
  }

 private:
  Rng rng_;
};

TEST(SerializeTest, PropertyRandomMessagesRoundTrip) {
  MsgGenerator gen(20260707);
  for (int trial = 0; trial < 2000; ++trial) {
    const Msg m = gen.msg();
    Writer w;
    w.msg(m);
    const Bytes data = w.take();
    Reader r(data);
    const Msg back = r.msg();
    EXPECT_EQ(back, m) << "trial " << trial << ": " << to_string(m);
    r.expect_exhausted();
  }
}

TEST(SerializeTest, PropertyRandomViewsRoundTrip) {
  MsgGenerator gen(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const View v = gen.view();
    Writer w;
    w.view(v);
    const Bytes data = w.take();
    Reader r(data);
    EXPECT_EQ(r.view(), v);
    r.expect_exhausted();
  }
}

}  // namespace
}  // namespace dvs
