// Byte-order regression suite: golden wire bytes.
//
// Everything the stack persists or transmits — Writer integers, WAL
// records (including their CRC), BATCH envelopes, the 128-bit state hash —
// must produce IDENTICAL bytes on every host, because real deployments mix
// machines (a trace written on one box is audited on another, a WAL may be
// inspected cross-host) and the exhaustive checker's state hashes are
// compared across runs. These tests pin the exact encodings against
// little-endian golden vectors captured from the reference implementation;
// any host-endianness leak (e.g. a raw memcpy load) changes the bytes and
// fails here on big-endian hardware while still passing on x86.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "net/batcher.h"
#include "parallel/state_hash.h"
#include "storage/wal.h"

namespace dvs {
namespace {

Bytes bytes_of(std::initializer_list<unsigned> values) {
  Bytes out;
  for (unsigned v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(ByteOrder, WriterEmitsLittleEndianGoldenBytes) {
  Writer w;
  w.u8(0xAB);
  w.u32(0x11223344u);
  w.u64(0x0102030405060708ULL);
  w.varuint(0);
  w.varuint(127);
  w.varuint(128);
  w.varuint(300);
  w.varuint(0xFFFFFFFFFFFFFFFFULL);
  w.str("hi");
  const Bytes expected = bytes_of({
      0xab,                                            // u8
      0x44, 0x33, 0x22, 0x11,                          // u32 LE
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64 LE
      0x00,                                            // varuint 0
      0x7f,                                            // varuint 127
      0x80, 0x01,                                      // varuint 128
      0xac, 0x02,                                      // varuint 300
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0x01,                                            // varuint max
      0x02, 0x68, 0x69,                                // str "hi"
  });
  EXPECT_EQ(w.buffer(), expected);
}

TEST(ByteOrder, WriterRoundTripsThroughReader) {
  Writer w;
  w.u32(0xDEADBEEFu);
  w.u64(0x123456789ABCDEF0ULL);
  w.varuint(1u << 20);
  w.str("round trip");
  const Bytes buf = w.take();
  Reader r(buf);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(r.varuint(), 1u << 20);
  EXPECT_EQ(r.str(), "round trip");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteOrder, Crc32MatchesPublishedVector) {
  // The canonical zlib/IEEE check value: crc32("abc") — independent of any
  // implementation in this repo.
  const Bytes abc = bytes_of({'a', 'b', 'c'});
  EXPECT_EQ(storage::crc32(abc), 0x352441C2u);
}

TEST(ByteOrder, WalFrameGoldenBytesIncludingCrc) {
  const Bytes frame =
      storage::Wal::frame(7, [](Writer& w) { w.str("hi"); });
  // magic | type | varuint len | payload | crc32 LE (covers magic..payload)
  const Bytes expected = bytes_of(
      {0xd5, 0x07, 0x03, 0x02, 0x68, 0x69, 0xfc, 0xb3, 0x6a, 0xc9});
  EXPECT_EQ(frame, expected);

  const storage::WalContents contents = storage::read_wal(frame);
  ASSERT_EQ(contents.records.size(), 1u);
  EXPECT_EQ(contents.records[0].type, 7);
  EXPECT_FALSE(contents.corrupt_tail);
}

TEST(ByteOrder, WalFrameFlippedByteFailsCrc) {
  Bytes frame = storage::Wal::frame(7, [](Writer& w) { w.str("hi"); });
  frame[4] ^= std::byte{0x01};  // flip one payload byte
  const storage::WalContents contents = storage::read_wal(frame);
  EXPECT_TRUE(contents.records.empty());
  EXPECT_TRUE(contents.corrupt_tail);
}

TEST(ByteOrder, BatchEnvelopeGoldenBytes) {
  const std::vector<Bytes> frames = {bytes_of({0x01, 0x02}),
                                     bytes_of({0x03})};
  const Bytes envelope = net::encode_batch(frames);
  const Bytes expected =
      bytes_of({0xb5, 0x02, 0x02, 0x01, 0x02, 0x01, 0x03});
  EXPECT_EQ(envelope, expected);
  EXPECT_EQ(net::decode_batch(envelope), frames);
}

TEST(ByteOrder, Hash128KnownAnswers) {
  // Captured from the explicit little-endian implementation; a host-endian
  // block load would change these on big-endian machines. Lengths cover
  // the full-block path (43 = 2 blocks + 11 tail), a mixed tail (17), and
  // the empty input.
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  const auto h43 = parallel::hash128(
      reinterpret_cast<const std::byte*>(fox.data()), fox.size());
  EXPECT_EQ(h43.lo, 0x7d60fe408b0c8bf6ULL);
  EXPECT_EQ(h43.hi, 0x7834e568f8a89680ULL);

  const auto h17 = parallel::hash128(
      reinterpret_cast<const std::byte*>(fox.data()), 17);
  EXPECT_EQ(h17.lo, 0x32e49bb28da6d3faULL);
  EXPECT_EQ(h17.hi, 0x8658f3c038a6759fULL);

  const auto h0 = parallel::hash128(nullptr, 0);
  EXPECT_EQ(h0.lo, 0x893ec81e251a13c9ULL);
  EXPECT_EQ(h0.hi, 0x6a82f3ed5108db09ULL);
}

TEST(ByteOrder, Hash128BlockAndTailAgreeOnSlidingWindows) {
  // The block path (load64) and the tail path (explicit byte assembly)
  // must compose identically: hashing every prefix of a 64-byte pattern
  // exercises all 16 tail lengths against 0..4 full blocks.
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 131) & 0xFF);
  }
  parallel::Hash128 prev{};
  for (std::size_t len = 0; len <= data.size(); ++len) {
    const auto h = parallel::hash128(data.data(), len);
    EXPECT_FALSE(h == prev) << "suspicious collision at len " << len;
    prev = h;
  }
}

}  // namespace
}  // namespace dvs
