// Tests for the Section 2 sequence calculus: prefix, consistency, lub.
#include <gtest/gtest.h>

#include <vector>

#include "common/sequence.h"

namespace dvs {
namespace {

using Seq = std::vector<int>;

TEST(SequenceTest, PrefixBasics) {
  EXPECT_TRUE(is_prefix(Seq{}, Seq{}));
  EXPECT_TRUE(is_prefix(Seq{}, Seq{1, 2}));
  EXPECT_TRUE(is_prefix(Seq{1}, Seq{1, 2}));
  EXPECT_TRUE(is_prefix(Seq{1, 2}, Seq{1, 2}));
  EXPECT_FALSE(is_prefix(Seq{2}, Seq{1, 2}));
  EXPECT_FALSE(is_prefix(Seq{1, 2, 3}, Seq{1, 2}));
}

TEST(SequenceTest, ConsistencyOfChain) {
  EXPECT_TRUE(is_consistent<int>({}));
  EXPECT_TRUE(is_consistent<int>({{1}, {1, 2}, {}}));
  EXPECT_TRUE(is_consistent<int>({{1, 2, 3}, {1, 2}, {1, 2, 3}}));
  EXPECT_FALSE(is_consistent<int>({{1, 2}, {1, 3}}));
  EXPECT_FALSE(is_consistent<int>({{1}, {2}}));
}

TEST(SequenceTest, LubIsLongestOfConsistentCollection) {
  EXPECT_EQ(lub<int>({}), Seq{});
  EXPECT_EQ(lub<int>({{1}, {1, 2, 3}, {1, 2}}), (Seq{1, 2, 3}));
  EXPECT_EQ(lub<int>({{}, {}}), Seq{});
}

TEST(SequenceTest, CommonPrefix) {
  EXPECT_EQ(common_prefix<int>({}), Seq{});
  EXPECT_EQ(common_prefix<int>({{1, 2, 3}, {1, 2, 4}}), (Seq{1, 2}));
  EXPECT_EQ(common_prefix<int>({{1, 2}, {1, 2}}), (Seq{1, 2}));
  EXPECT_EQ(common_prefix<int>({{1}, {2}}), Seq{});
  EXPECT_EQ(common_prefix<int>({{1, 2}, {}}), Seq{});
}

}  // namespace
}  // namespace dvs
