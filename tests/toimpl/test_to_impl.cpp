// Scenario tests for TO-IMPL (Section 6): the DVS-TO-TO automaton, the
// composed system, Invariants 6.1–6.3, and TO trace acceptance
// (Theorem 6.4) on concrete executions including view changes.
#include <gtest/gtest.h>

#include "common/check.h"
#include "spec/acceptors.h"
#include "toimpl/to_impl.h"

namespace dvs::toimpl {
namespace {

View mkview(std::uint64_t epoch, unsigned origin,
            std::initializer_list<unsigned> members) {
  return View{ViewId{epoch, ProcessId{origin}}, make_process_set(members)};
}

/// Drives TO-IMPL with targeted sequences; every external event goes through
/// the TO acceptor and invariants are checked after each scripted step.
class Harness {
 public:
  Harness(std::size_t n, std::initializer_list<unsigned> p0)
      : universe_(make_universe(n)),
        v0_{ViewId::initial(), make_process_set(p0)},
        sys_(universe_, v0_),
        acceptor_(universe_) {}

  void apply(const ToImplAction& a) {
    const auto event = sys_.apply(a);
    if (event.has_value()) {
      const spec::AcceptResult r = acceptor_.feed(*event);
      ASSERT_TRUE(r.ok) << r.error;
      if (std::holds_alternative<spec::EvBrcv>(*event)) {
        deliveries_.push_back(std::get<spec::EvBrcv>(*event));
      }
    }
    sys_.check_invariants();
  }

  void bcast(unsigned p, std::uint64_t uid, const std::string& payload) {
    apply(ToImplAction::bcast(ProcessId{p},
                              AppMsg{uid, ProcessId{p}, payload}));
  }

  void create(const View& v) {
    ASSERT_TRUE(sys_.can_dvs_createview(v)) << v.to_string();
    apply(ToImplAction::with_view(ToImplActionKind::kDvsCreateview,
                                  v.id().origin(), v));
  }

  void newview(const View& v, unsigned p) {
    apply(ToImplAction::with_view(ToImplActionKind::kDvsNewview, ProcessId{p},
                                  v));
  }

  void newview_all(const View& v) {
    for (ProcessId p : v.set()) newview(v, p.value());
  }

  /// Pumps every enabled non-BRCV action to quiescence (labels, sends,
  /// service ordering/receipt/delivery/safe, confirms, registers).
  void settle() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const ToImplAction& a : sys_.enabled_actions()) {
        if (a.kind == ToImplActionKind::kBrcv) continue;
        apply(a);
        progressed = true;
        break;
      }
    }
  }

  /// Pumps everything, including client reports.
  void settle_all() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      const auto actions = sys_.enabled_actions();
      if (!actions.empty()) {
        apply(actions.front());
        progressed = true;
      }
    }
  }

  /// All BRCV payload uids observed at process p, in report order.
  std::vector<std::uint64_t> delivered_at(unsigned p) const {
    std::vector<std::uint64_t> out;
    for (const auto& ev : deliveries_) {
      if (ev.receiver == ProcessId{p}) out.push_back(ev.a.uid);
    }
    return out;
  }

  ToImplSystem& sys() { return sys_; }

 private:
  ProcessSet universe_;
  View v0_;
  ToImplSystem sys_;
  spec::ToAcceptor acceptor_;
  std::vector<spec::EvBrcv> deliveries_;
};

TEST(DvsToToTest, LabelAssignsViewScopedSequenceNumbers) {
  const View v0 = initial_view(make_universe(2));
  DvsToTo node(ProcessId{0}, v0);
  node.on_bcast(AppMsg{1, ProcessId{0}, "a"});
  node.on_bcast(AppMsg{2, ProcessId{0}, "b"});
  ASSERT_TRUE(node.can_label());
  node.apply_label();
  node.apply_label();
  EXPECT_FALSE(node.can_label());
  ASSERT_EQ(node.buffer().size(), 2u);
  EXPECT_EQ(node.buffer()[0], (Label{v0.id(), 1, ProcessId{0}}));
  EXPECT_EQ(node.buffer()[1], (Label{v0.id(), 2, ProcessId{0}}));
  EXPECT_EQ(node.content().size(), 2u);
}

TEST(DvsToToTest, NodeOutsideInitialViewBuffersBcasts) {
  const View v0{ViewId::initial(), make_process_set({0})};
  DvsToTo node(ProcessId{1}, v0);
  node.on_bcast(AppMsg{1, ProcessId{1}, "x"});
  EXPECT_FALSE(node.can_label());  // current = ⊥: delay buffer holds it
  EXPECT_EQ(node.delay().size(), 1u);
}

TEST(DvsToToTest, SummarySendSwitchesToCollect) {
  const View v0 = initial_view(make_universe(2));
  DvsToTo node(ProcessId{0}, v0);
  const View v1{ViewId{1, ProcessId{0}}, make_universe(2)};
  node.on_dvs_newview(v1);
  EXPECT_EQ(node.status(), Status::kSend);
  auto m = node.next_gpsnd();
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(std::holds_alternative<Summary>(*m));
  (void)node.take_gpsnd();
  EXPECT_EQ(node.status(), Status::kCollect);
  // In collect state nothing else is sent.
  EXPECT_FALSE(node.next_gpsnd().has_value());
}

TEST(DvsToToTest, EstablishAdoptsFullorderAndEnablesRegistration) {
  const ProcessSet two = make_universe(2);
  const View v0 = initial_view(two);
  DvsToTo node(ProcessId{0}, v0);
  const View v1{ViewId{1, ProcessId{0}}, two};
  node.on_dvs_newview(v1);
  (void)node.take_gpsnd();
  EXPECT_FALSE(node.can_register());

  Summary mine = node.make_summary();
  Summary other;
  const Label l{v0.id(), 1, ProcessId{1}};
  other.con.emplace(l, AppMsg{9, ProcessId{1}, "m"});
  other.ord = {l};
  other.next = 2;
  other.high = v0.id();
  node.on_dvs_gprcv(ClientMsg{mine}, ProcessId{0});
  EXPECT_EQ(node.status(), Status::kCollect);
  node.on_dvs_gprcv(ClientMsg{other}, ProcessId{1});
  EXPECT_EQ(node.status(), Status::kNormal);
  EXPECT_TRUE(node.established(v1.id()));
  EXPECT_EQ(node.highprimary(), v1.id());
  EXPECT_EQ(node.nextconfirm(), 2u);  // maxnextconfirm
  ASSERT_FALSE(node.order().empty());
  EXPECT_EQ(node.order().front(), l);  // chosenrep’s order wins
  EXPECT_TRUE(node.can_register());
  node.apply_register();
  EXPECT_FALSE(node.can_register());
}

TEST(ToImplTest, BroadcastDeliverInInitialView) {
  Harness h(3, {0, 1, 2});
  h.bcast(0, 1, "alpha");
  h.bcast(1, 2, "beta");
  h.settle_all();
  // Everyone delivers both messages in the same order.
  const auto d0 = h.delivered_at(0);
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(h.delivered_at(1), d0);
  EXPECT_EQ(h.delivered_at(2), d0);
}

TEST(ToImplTest, FifoPerSenderIsPreserved) {
  Harness h(3, {0, 1, 2});
  for (std::uint64_t uid = 1; uid <= 5; ++uid) h.bcast(0, uid, "m");
  h.settle_all();
  const auto d2 = h.delivered_at(2);
  ASSERT_EQ(d2.size(), 5u);
  for (std::uint64_t uid = 1; uid <= 5; ++uid) EXPECT_EQ(d2[uid - 1], uid);
}

TEST(ToImplTest, ViewChangeRecoversAndContinues) {
  Harness h(3, {0, 1, 2});
  h.bcast(0, 1, "pre");
  h.settle_all();

  const View v1 = mkview(1, 0, {0, 1, 2});
  h.create(v1);
  h.newview_all(v1);
  h.settle();  // state exchange, establishment, registration
  for (unsigned i : {0u, 1u, 2u}) {
    EXPECT_TRUE(h.sys().node(ProcessId{i}).established(v1.id()))
        << "p" << i << " failed to establish v1";
  }
  // Registration propagated into the DVS service.
  EXPECT_EQ(h.sys().dvs().registered(v1.id()), make_process_set({0, 1, 2}));

  h.bcast(1, 2, "post");
  h.settle_all();
  const auto d0 = h.delivered_at(0);
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(d0[0], 1u);
  EXPECT_EQ(d0[1], 2u);
  EXPECT_EQ(h.delivered_at(1), d0);
  EXPECT_EQ(h.delivered_at(2), d0);
}

TEST(ToImplTest, MessageInFlightAcrossViewChangeIsRecovered) {
  Harness h(3, {0, 1, 2});
  // p0 broadcasts; the message is labelled and sent but we do NOT settle:
  // deliveries happen only at p0 itself... we let the service deliver to
  // everyone (drain-before-attempt requires it) but withhold BRCV reports;
  // then change views and verify the label survives via state exchange and
  // is reported exactly once in a consistent order.
  h.bcast(0, 7, "inflight");
  h.settle();  // everything except client reports

  const View v1 = mkview(1, 0, {0, 1, 2});
  h.create(v1);
  h.newview_all(v1);
  h.settle_all();
  for (unsigned i : {0u, 1u, 2u}) {
    const auto d = h.delivered_at(i);
    ASSERT_EQ(d.size(), 1u) << "p" << i;
    EXPECT_EQ(d[0], 7u);
  }
}

TEST(ToImplTest, MembershipShrinkThenGrow) {
  Harness h(4, {0, 1, 2, 3});
  h.bcast(3, 1, "from-p3");
  h.settle_all();

  // Shrink to {0,1,2}.
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.create(v1);
  h.newview_all(v1);
  h.settle();
  h.bcast(0, 2, "small-view");
  h.settle_all();

  // Grow back to everyone.
  const View v2 = mkview(2, 0, {0, 1, 2, 3});
  h.create(v2);
  h.newview_all(v2);
  h.settle_all();

  // p3 catches up on the small-view message through the state exchange.
  const auto d3 = h.delivered_at(3);
  ASSERT_EQ(d3.size(), 2u);
  EXPECT_EQ(d3[0], 1u);
  EXPECT_EQ(d3[1], 2u);
  // And matches the order everyone else saw.
  EXPECT_EQ(h.delivered_at(0), d3);
  h.sys().check_invariants();
}

TEST(ToImplTest, SummariesSatisfyInvariant61) {
  Harness h(3, {0, 1, 2});
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.create(v1);
  h.newview_all(v1);
  h.settle();
  const auto all = h.sys().allstate();
  EXPECT_TRUE(all.empty() ||
              std::all_of(all.begin(), all.end(), [&](const Summary& x) {
                return h.sys().dvs().created().contains(x.high);
              }));
  h.sys().check_invariant_6_1();
  h.sys().check_invariant_6_2();
  h.sys().check_invariant_6_3();
}

TEST(ToImplTest, DelayBufferHoldsPreViewBroadcasts) {
  // A process outside the initial membership can BCAST; messages wait in
  // the delay buffer until it gains a view.
  Harness h(3, {0, 1});
  h.bcast(2, 9, "early");
  EXPECT_EQ(h.sys().node(ProcessId{2}).delay().size(), 1u);
  h.settle_all();
  EXPECT_TRUE(h.delivered_at(2).empty());

  const View v1 = mkview(1, 0, {0, 1, 2});
  h.create(v1);
  h.newview_all(v1);
  h.settle_all();
  // Now the early message is labelled in v1 and delivered everywhere.
  for (unsigned i : {0u, 1u, 2u}) {
    const auto d = h.delivered_at(i);
    ASSERT_EQ(d.size(), 1u) << "p" << i;
    EXPECT_EQ(d[0], 9u);
  }
}

}  // namespace
}  // namespace dvs::toimpl
