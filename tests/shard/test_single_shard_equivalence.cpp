// The K=1 single-shard equivalence differential: a ShardCluster with one
// full-replication shard must be BYTE-IDENTICAL to the unsharded stack —
// same delivery orders at every receiver, same chaos verdicts, same oracle
// work counts, same SLO reports — seed for seed, across pool sizes, at any
// thread count.
//
// This is the lock on the tentpole's determinism contract: shard 1's
// channel Rng is seeded exactly like the unsharded network's Rng, group
// tags travel out-of-band in the simulator, the K=1 GroupPort id map is the
// identity, and pool-level traffic draws from its own salted Rng — so
// adding the whole subgroup layer changes nothing a K=1 column can observe.
// Any future change that breaks one of those properties shows up here as a
// byte diff with the seed that reproduces it.
//
// DVS_SHARD_EQ_SEEDS overrides the per-n seed count (sanitizer gates shrink
// it; the default suite runs the full 200).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "shard/shard_chaos.h"
#include "workload/runner.h"

namespace dvs {
namespace {

std::size_t seeds_per_n() {
  if (const char* env = std::getenv("DVS_SHARD_EQ_SEEDS")) {
    const std::size_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 200;
}

tosys::ChaosConfig chaos_config(std::size_t n) {
  tosys::ChaosConfig c;
  c.n_processes = n;
  // Shortened adversarial run — enough for crashes, partitions, dup bursts
  // and a recovery epilogue per seed while keeping 200 x 3 x 2 runs cheap.
  c.plan.horizon = 2 * sim::kSecond;
  c.plan.events = 10;
  c.broadcasts = 40;
  c.settle = 1500 * sim::kMillisecond;
  return c;
}

/// Canonical text form of the per-shard / per-receiver delivery orders —
/// the byte-compare artifact.
std::string orders_text(
    const std::vector<std::vector<std::vector<std::uint64_t>>>& orders) {
  std::string out;
  for (std::size_t s = 0; s < orders.size(); ++s) {
    out += "shard " + std::to_string(s + 1) + "\n";
    for (std::size_t r = 0; r < orders[s].size(); ++r) {
      out += "  p" + std::to_string(r) + ":";
      for (const std::uint64_t uid : orders[s][r]) {
        out += " " + std::to_string(uid);
      }
      out += "\n";
    }
  }
  return out;
}

/// Runs one seed both ways and returns a diagnosis ("" = equivalent).
std::string compare_seed(std::uint64_t seed, std::size_t n) {
  shard::ShardChaosConfig unsharded;
  unsharded.shards = 0;
  unsharded.chaos = chaos_config(n);
  shard::ShardChaosConfig sharded;
  sharded.shards = 1;
  sharded.replication = 0;
  sharded.chaos = chaos_config(n);

  const shard::ShardChaosResult a = run_shard_chaos_seed(seed, unsharded);
  const shard::ShardChaosResult b = run_shard_chaos_seed(seed, sharded);

  auto ctx = [&](const std::string& what) {
    return "seed " + std::to_string(seed) + " n=" + std::to_string(n) + ": " +
           what;
  };
  if (a.plan_text != b.plan_text) return ctx("fault plans diverge");
  if (a.ok != b.ok) {
    return ctx("verdicts diverge: unsharded " +
               std::string(a.ok ? "ok" : ("FAIL (" + a.failure + ")")) +
               ", sharded " +
               std::string(b.ok ? "ok" : ("FAIL (" + b.failure + ")")));
  }
  if (!a.ok) return ctx("both modes violated the spec: " + a.failure);
  if (orders_text(a.orders) != orders_text(b.orders)) {
    return ctx("delivery orders diverge:\nunsharded:\n" +
               orders_text(a.orders) + "sharded:\n" + orders_text(b.orders));
  }
  // Column-level counters must agree exactly (pool-wide NetStats are
  // excluded by design — the sharded run's include top-level VS traffic).
  const tosys::ChaosStats& sa = a.stats;
  const tosys::ChaosStats& sb = b.stats;
  if (sa.events_checked != sb.events_checked) {
    return ctx("oracle work diverges: " + std::to_string(sa.events_checked) +
               " vs " + std::to_string(sb.events_checked));
  }
  if (sa.views_installed != sb.views_installed) {
    return ctx("views_installed diverges: " +
               std::to_string(sa.views_installed) + " vs " +
               std::to_string(sb.views_installed));
  }
  if (sa.deliveries != sb.deliveries) {
    return ctx("deliveries diverge: " + std::to_string(sa.deliveries) +
               " vs " + std::to_string(sb.deliveries));
  }
  if (sa.duplicates_suppressed != sb.duplicates_suppressed ||
      sa.decode_errors != sb.decode_errors) {
    return ctx("vs-layer anomaly counters diverge");
  }
  return {};
}

/// Fans `count` seeds over `jobs` threads; results indexed by seed so the
/// output is scheduling-independent.
std::vector<std::string> sweep(std::size_t count, std::size_t n,
                               std::size_t jobs) {
  std::vector<std::string> diags(count);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      diags[i] = compare_seed(/*seed=*/1 + i, n);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return diags;
}

class SingleShardEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SingleShardEquivalence, ChaosSweepIsByteIdentical) {
  const std::size_t n = GetParam();
  const std::size_t count = seeds_per_n();
  const std::size_t jobs =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<std::string> diags = sweep(count, n, jobs);
  std::size_t failures = 0;
  for (const std::string& d : diags) {
    if (d.empty()) continue;
    ++failures;
    ADD_FAILURE() << d;
    if (failures >= 3) break;  // first seeds are enough to debug
  }
  EXPECT_EQ(failures, 0u) << count << " seeds at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, SingleShardEquivalence,
                         ::testing::Values(2, 3, 4));

TEST(SingleShardEquivalence, SweepIsJobsInvariant) {
  // The differential artifact itself must not depend on the thread count:
  // seed-indexed results at --jobs 1 and --jobs 4 are identical.
  const std::size_t count = 12;
  EXPECT_EQ(sweep(count, 3, 1), sweep(count, 3, 4));
}

TEST(SingleShardEquivalence, SloReportsAreByteIdentical) {
  // The full workload runner through the router: shards=1 must reproduce
  // the unsharded SLO report byte for byte (canonical JSON).
  for (const std::size_t n : {2, 3, 4}) {
    workload::Scenario sc;
    sc.name = "eq";
    sc.n = n;
    sc.clients = 3;
    sc.horizon = 2 * sim::kSecond;
    sc.warmup = 300 * sim::kMillisecond;
    sc.settle = 1 * sim::kSecond;
    sc.drop = 0.01;
    if (n >= 3) {
      workload::FlapSpec flap;
      flap.target = ProcessId(0);
      flap.first = 600 * sim::kMillisecond;
      flap.period = 700 * sim::kMillisecond;
      flap.down = 200 * sim::kMillisecond;
      flap.count = 2;
      sc.flaps.push_back(flap);
    }
    const std::size_t slo_seeds = std::min<std::size_t>(seeds_per_n(), 25);
    for (std::uint64_t seed = 1; seed <= slo_seeds; ++seed) {
      sc.shards = 0;
      const workload::SeedOutcome a = workload::run_scenario_seed(sc, seed);
      sc.shards = 1;
      const workload::SeedOutcome b = workload::run_scenario_seed(sc, seed);
      ASSERT_EQ(a.slo.to_json(), b.slo.to_json())
          << "n=" << n << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dvs
