// The sharded offline-audit path: per-(pool process, group) trace files
// with group-tagged METAs, partitioned per-group replay through the spec
// acceptors, and violations that name their shard.
//
// The end-to-end test runs a real two-group deployment in-process — K=2
// shard columns of daemon::NodeRuntime over a GroupMux on one SimNetwork
// (exactly the sharded dvsd wiring, minus the sockets), writing genuine
// trace files — then audits the directory. The violation tests feed the
// auditor hand-built traces, because a protocol violation should be
// impossible to produce with the real stack.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/view.h"
#include "daemon/audit.h"
#include "daemon/runtime.h"
#include "daemon/trace_io.h"
#include "net/sim_network.h"
#include "shard/group_mux.h"
#include "shard/provision.h"
#include "sim/simulator.h"

namespace dvs {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kPool = 3;
constexpr std::size_t kShards = 2;
constexpr std::size_t kReplication = 2;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("dvs-sharded-audit-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ShardedAudit, TwoGroupDeploymentWritesGroupFilesAndAuditsPerGroup) {
  TempDir dir;
  sim::Simulator sim;
  Rng rng(11);
  net::SimNetwork net(sim, rng, net::NetConfig{}, make_universe(kPool));
  shard::GroupMux mux(net);

  const std::vector<shard::ShardAssignment> assignments =
      shard::provision(make_universe(kPool), kShards, kReplication);

  // One column = one NodeRuntime + one trace sink per (pool process, group),
  // the same shape a sharded dvsd builds. Sinks outlive the runtimes.
  std::vector<std::unique_ptr<daemon::TraceSink>> sinks;
  std::vector<std::unique_ptr<daemon::NodeRuntime>> columns;
  std::vector<std::size_t> group_of;  // parallel to `columns`
  for (const shard::ShardAssignment& a : assignments) {
    shard::GroupMux::Port& port = mux.open(a.group, a.replicas);
    for (ProcessId pool_p : a.replicas) {
      const ProcessId local = port.to_local(pool_p);
      daemon::TraceMeta meta;
      meta.n = kReplication;
      meta.initial_members = kReplication;
      meta.self = local;
      meta.group = a.group;
      sinks.push_back(std::make_unique<daemon::TraceSink>(
          daemon::TraceSink::path_for(dir.path.string(), pool_p, a.group),
          meta));
      columns.push_back(std::make_unique<daemon::NodeRuntime>(
          local, kReplication, kReplication, port, sim,
          daemon::RuntimeOptions{}, nullptr, sinks.back().get(),
          [&sim] { return sim.now(); }));
      group_of.push_back(a.group);
    }
  }
  for (auto& rt : columns) rt->start();

  const auto run_until = [&](const std::function<bool()>& pred) {
    const sim::Time deadline = sim.now() + 30 * sim::kSecond;
    while (!pred() && sim.now() < deadline) {
      sim.run_until(sim.now() + 100 * sim::kMillisecond);
    }
    return pred();
  };

  ASSERT_TRUE(run_until([&] {
    for (const auto& rt : columns) {
      if (!rt->vs().view() || rt->vs().view()->size() != kReplication) {
        return false;
      }
    }
    return true;
  })) << "initial views never formed in every group";

  // One distinct put into each group, via each group's first column.
  for (std::size_t g = 1; g <= kShards; ++g) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (group_of[i] == g) {
        columns[i]->bcast_command("put g" + std::to_string(g) + " v");
        break;
      }
    }
  }
  ASSERT_TRUE(run_until([&] {
    for (const auto& rt : columns) {
      if (rt->kv().applied() < 1) return false;
    }
    return true;
  })) << "puts never applied in every group";

  columns.clear();  // flush order: runtimes first, then the sinks
  sinks.clear();

  // One file per (pool process, group) column under the sharded names.
  EXPECT_TRUE(fs::exists(dir.path / "p0.g1.trace"));
  EXPECT_TRUE(fs::exists(dir.path / "p1.g1.trace"));
  EXPECT_TRUE(fs::exists(dir.path / "p1.g2.trace"));
  EXPECT_TRUE(fs::exists(dir.path / "p2.g2.trace"));

  const daemon::AuditReport report = daemon::audit_dir(dir.path.string());
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.groups, kShards);
  EXPECT_EQ(report.processes, kShards * kReplication);
  EXPECT_GT(report.to_events, 0u);
  EXPECT_NE(report.to_string().find("shard groups: 2"), std::string::npos);
  EXPECT_NE(report.to_string().find("VERDICT: PASS"), std::string::npos);
}

daemon::ProcessTrace meta_only_trace(const std::string& path, std::size_t n,
                                     ProcessId self, std::uint32_t group) {
  daemon::ProcessTrace t;
  t.path = path;
  daemon::TraceMeta meta;
  meta.n = n;
  meta.initial_members = n;
  meta.self = self;
  meta.group = group;
  t.metas.push_back(meta);
  return t;
}

TEST(ShardedAudit, ViolationNamesItsShard) {
  // Group 1 is clean; group 2's second file disagrees on the cluster shape.
  std::vector<daemon::ProcessTrace> traces;
  traces.push_back(meta_only_trace("p0.g1.trace", 2, ProcessId{0}, 1));
  traces.push_back(meta_only_trace("p1.g1.trace", 2, ProcessId{1}, 1));
  traces.push_back(meta_only_trace("p1.g2.trace", 2, ProcessId{0}, 2));
  traces.push_back(meta_only_trace("p2.g2.trace", 3, ProcessId{1}, 2));

  const daemon::AuditReport report = daemon::audit_traces(traces);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.groups, 2u);
  EXPECT_EQ(report.error.rfind("shard 2: ", 0), 0u) << report.error;
  EXPECT_NE(report.error.find("disagrees on cluster shape"),
            std::string::npos);
}

TEST(ShardedAudit, UnshardedViolationKeepsLegacyMessage) {
  std::vector<daemon::ProcessTrace> traces;
  traces.push_back(meta_only_trace("p0.trace", 2, ProcessId{0}, 0));
  traces.push_back(meta_only_trace("p1.trace", 3, ProcessId{1}, 0));

  const daemon::AuditReport report = daemon::audit_traces(traces);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.groups, 1u);
  EXPECT_EQ(report.error.rfind("trace ", 0), 0u) << report.error;
  EXPECT_EQ(report.to_string().find("shard groups"), std::string::npos);
}

TEST(ShardedAudit, GroupMetaRoundTripsThroughTheFileFormat) {
  TempDir dir;
  // Legacy name for group 0; "p<N>.g<K>.trace" for a shard column.
  EXPECT_EQ(daemon::TraceSink::path_for(dir.path.string(), ProcessId{4}),
            dir.path.string() + "/p4.trace");
  EXPECT_EQ(daemon::TraceSink::path_for(dir.path.string(), ProcessId{4}, 0),
            dir.path.string() + "/p4.trace");
  EXPECT_EQ(daemon::TraceSink::path_for(dir.path.string(), ProcessId{4}, 7),
            dir.path.string() + "/p4.g7.trace");

  daemon::TraceMeta meta;
  meta.ts_us = 123;
  meta.n = 2;
  meta.initial_members = 2;
  meta.self = ProcessId{1};
  meta.group = 7;
  const std::string path =
      daemon::TraceSink::path_for(dir.path.string(), ProcessId{4}, 7);
  { daemon::TraceSink sink(path, meta); }
  const daemon::ProcessTrace loaded = daemon::load_trace_file(path);
  ASSERT_EQ(loaded.metas.size(), 1u);
  EXPECT_EQ(loaded.metas[0].group, 7u);
  EXPECT_EQ(loaded.group(), 7u);
  EXPECT_EQ(loaded.metas[0].self, ProcessId{1});

  // An unsharded META stays byte-compatible: group 0 encodes nothing and
  // decodes as group 0.
  daemon::TraceMeta legacy = meta;
  legacy.group = 0;
  const std::string legacy_path =
      daemon::TraceSink::path_for(dir.path.string(), ProcessId{4});
  { daemon::TraceSink sink(legacy_path, legacy); }
  const daemon::ProcessTrace old = daemon::load_trace_file(legacy_path);
  ASSERT_EQ(old.metas.size(), 1u);
  EXPECT_EQ(old.group(), 0u);
}

}  // namespace
}  // namespace dvs
