// Unit coverage for the sharding layer's parts: deterministic provisioning,
// the group-frame wire codec, SimNetwork group channels behind GroupPort,
// the in-band GroupMux demux, the keyspace router, per-group conformance
// recording, and a small multi-shard ShardCluster smoke.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "common/view.h"
#include "net/sim_network.h"
#include "shard/group_mux.h"
#include "shard/group_port.h"
#include "shard/provision.h"
#include "shard/router.h"
#include "shard/shard_cluster.h"
#include "sim/simulator.h"
#include "spec/trace_recorder.h"
#include "vsys/wire.h"

namespace dvs {
namespace {

Bytes bytes(std::initializer_list<int> vals) {
  Bytes out;
  for (const int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Provision, RoundRobinWindows) {
  const ProcessSet pool = make_universe(5);
  const auto a = shard::provision(pool, 3, 2);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].group, 1u);
  EXPECT_EQ(a[0].replicas, (std::vector<ProcessId>{ProcessId(0), ProcessId(1)}));
  EXPECT_EQ(a[1].replicas, (std::vector<ProcessId>{ProcessId(1), ProcessId(2)}));
  EXPECT_EQ(a[2].replicas, (std::vector<ProcessId>{ProcessId(2), ProcessId(3)}));
}

TEST(Provision, WrapsAroundThePool) {
  const ProcessSet pool = make_universe(3);
  const auto a = shard::provision(pool, 4, 2);
  // Shard 3 starts at pool[2] and wraps to pool[0]; replicas stay ascending.
  EXPECT_EQ(a[2].replicas, (std::vector<ProcessId>{ProcessId(0), ProcessId(2)}));
  EXPECT_EQ(a[3].replicas, (std::vector<ProcessId>{ProcessId(0), ProcessId(1)}));
}

TEST(Provision, ZeroReplicationMeansWholePool) {
  const ProcessSet pool = make_universe(4);
  const auto a = shard::provision(pool, 2, 0);
  for (const auto& s : a) {
    EXPECT_EQ(s.replicas.size(), 4u);
  }
  // K=1 full replication is the identity map the equivalence test leans on.
  const auto one = shard::provision(pool, 1, 0);
  EXPECT_EQ(one[0].replicas,
            (std::vector<ProcessId>{ProcessId(0), ProcessId(1), ProcessId(2),
                                    ProcessId(3)}));
}

TEST(Provision, RejectsDegenerateInputs) {
  const ProcessSet pool = make_universe(3);
  EXPECT_THROW((void)shard::provision(pool, 0, 1), std::logic_error);
  EXPECT_THROW((void)shard::provision({}, 1, 0), std::logic_error);
  EXPECT_THROW((void)shard::provision(pool, 2, 4), std::logic_error);
}

TEST(Provision, PureFunctionOfInputs) {
  const ProcessSet pool = make_universe(7);
  EXPECT_EQ(shard::provision(pool, 5, 3), shard::provision(pool, 5, 3));
}

TEST(GroupFrame, RoundTrips) {
  const Bytes payload = bytes({0x01, 0xff, 0x00, 0x42});
  for (const std::uint32_t g : {1u, 7u, 300u, 0xFFFFFFFFu}) {
    const Bytes wire = vsys::encode_group_frame(g, payload);
    ASSERT_TRUE(vsys::looks_like_group_frame(wire));
    const vsys::GroupFrame f = vsys::decode_group_frame(wire);
    EXPECT_EQ(f.group, g);
    EXPECT_EQ(f.payload, payload);
  }
}

TEST(GroupFrame, TagDoesNotCollideWithVsTraffic) {
  // Every vsys message starts with its Tag byte (1..7) and batches with the
  // batcher's tag; 0x47 must stay distinct so untagged traffic routes to
  // the default handler.
  const Bytes untagged = bytes({0x01, 0x02, 0x03});
  EXPECT_FALSE(vsys::looks_like_group_frame(untagged));
  EXPECT_FALSE(vsys::looks_like_group_frame({}));
}

TEST(GroupFrame, TruncatedHeaderThrows) {
  const Bytes wire = vsys::encode_group_frame(90000, bytes({0xaa}));
  const Bytes cut(wire.begin(), wire.begin() + 2);  // mid-varuint
  EXPECT_THROW((void)vsys::decode_group_frame(cut), DecodeError);
}

TEST(GroupChannels, IndependentHandlersAndIsolation) {
  sim::Simulator sim;
  Rng rng(7);
  const ProcessSet procs = make_universe(3);
  net::SimNetwork net(sim, rng, {}, procs);
  net.open_group(1, 11);
  net.open_group(2, 22);
  EXPECT_TRUE(net.has_group(1));
  EXPECT_FALSE(net.has_group(3));
  EXPECT_THROW(net.open_group(1, 99), std::logic_error);
  EXPECT_THROW(net.open_group(0, 99), std::logic_error);

  std::vector<std::string> got;
  net.attach(ProcessId(1), [&](ProcessId from, const Bytes& b) {
    got.push_back("default:" + from.to_string() + ":" +
                  std::to_string(b.size()));
  });
  net.attach_group(1, ProcessId(1), [&](ProcessId from, const Bytes& b) {
    got.push_back("g1:" + from.to_string() + ":" + std::to_string(b.size()));
  });
  net.attach_group(2, ProcessId(1), [&](ProcessId from, const Bytes& b) {
    got.push_back("g2:" + from.to_string() + ":" + std::to_string(b.size()));
  });

  net.send(ProcessId(0), ProcessId(1), bytes({0x01}));
  net.send_group(1, ProcessId(0), ProcessId(1), bytes({0x01, 0x02}));
  net.send_group(2, ProcessId(0), ProcessId(1), bytes({0x01, 0x02, 0x03}));
  sim.run_until(sim::Time{1000000});

  // Same link, but each channel dispatched to its own handler — the
  // out-of-band demux. Cross-channel arrival order is unspecified (each
  // channel draws jitter from its own Rng), so compare as a set.
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"default:p0:1", "g1:p0:2",
                                           "g2:p0:3"}));
}

TEST(GroupChannels, PauseIsProcessGlobal) {
  sim::Simulator sim;
  Rng rng(7);
  net::SimNetwork net(sim, rng, {}, make_universe(2));
  net.open_group(1, 11);
  std::size_t deliveries = 0;
  net.attach_group(1, ProcessId(1),
                   [&](ProcessId, const Bytes&) { ++deliveries; });
  net.pause(ProcessId(1));
  net.send_group(1, ProcessId(0), ProcessId(1), bytes({0x01}));
  sim.run_until(sim::Time{1000000});
  EXPECT_EQ(deliveries, 0u);  // unplugging a machine unplugs every channel
  net.resume(ProcessId(1));
  net.send_group(1, ProcessId(0), ProcessId(1), bytes({0x01}));
  sim.run_until(sim::Time{2000000});
  EXPECT_EQ(deliveries, 1u);
}

TEST(GroupPort, TranslatesLocalIdsToPoolIds) {
  sim::Simulator sim;
  Rng rng(3);
  net::SimNetwork net(sim, rng, {}, make_universe(5));
  // Shard hosted on pool {1, 3, 4}: local 0->1, 1->3, 2->4.
  shard::GroupPort port(net, 1, {ProcessId(1), ProcessId(3), ProcessId(4)},
                        123);
  EXPECT_EQ(port.to_pool(ProcessId(2)), ProcessId(4));
  EXPECT_EQ(port.to_local(ProcessId(3)), ProcessId(1));
  EXPECT_THROW((void)port.to_local(ProcessId(0)), std::logic_error);
  EXPECT_EQ(port.processes(), make_universe(3));

  std::vector<std::string> got;
  port.attach(ProcessId(1), [&](ProcessId from, const Bytes&) {
    got.push_back("from-local-" + from.to_string());
  });
  port.send(ProcessId(2), ProcessId(1), bytes({0x01}));
  sim.run_until(sim::Time{1000000});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "from-local-p2");  // pool p4 translated back to local 2
}

TEST(GroupMux, InBandFramesDemuxToPorts) {
  sim::Simulator sim;
  Rng rng(5);
  const ProcessSet procs = make_universe(4);
  net::SimNetwork net(sim, rng, {}, procs);
  shard::GroupMux mux(net);
  auto& p1 = mux.open(1, {ProcessId(0), ProcessId(1)});
  auto& p2 = mux.open(2, {ProcessId(1), ProcessId(2)});
  EXPECT_THROW(mux.open(1, {ProcessId(0)}), std::logic_error);
  EXPECT_THROW(mux.open(0, {ProcessId(0)}), std::logic_error);

  std::vector<std::string> got;
  p1.attach(ProcessId(1), [&](ProcessId from, const Bytes&) {
    got.push_back("g1-from-" + from.to_string());
  });
  p2.attach(ProcessId(0), [&](ProcessId from, const Bytes&) {
    got.push_back("g2-from-" + from.to_string());
  });
  mux.attach_default(ProcessId(1), [&](ProcessId from, const Bytes& b) {
    got.push_back("untagged-from-" + from.to_string() + ":" +
                  std::to_string(b.size()));
  });

  // Group 1: pool 0 -> pool 1 is local 0 -> local 1.
  p1.send(ProcessId(0), ProcessId(1), bytes({0x01}));
  // Group 2: pool 2 -> pool 1 is local 1 -> local 0.
  p2.send(ProcessId(1), ProcessId(0), bytes({0x01}));
  // Untagged legacy traffic to the same destination.
  net.send(ProcessId(3), ProcessId(1), bytes({0x01, 0x02}));
  sim.run_until(sim::Time{1000000});

  // All on the base transport's single channel, but from different links,
  // so relative order is jitter-dependent — compare as a set.
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::string>{"g1-from-p0", "g2-from-p1",
                                           "untagged-from-p3:2"}));
  EXPECT_EQ(mux.unroutable(), 0u);
}

TEST(GroupMux, UnknownGroupAndForeignSenderAreCountedDrops) {
  sim::Simulator sim;
  Rng rng(5);
  net::SimNetwork net(sim, rng, {}, make_universe(3));
  shard::GroupMux mux(net);
  auto& p1 = mux.open(1, {ProcessId(0), ProcessId(1)});
  std::size_t deliveries = 0;
  p1.attach(ProcessId(1), [&](ProcessId, const Bytes&) { ++deliveries; });

  // A frame naming a group with no open port.
  net.send(ProcessId(0), ProcessId(1),
           vsys::encode_group_frame(9, bytes({0x01})));
  // A well-formed group-1 frame from a process that is not a replica of
  // group 1 — must not reach the handler (to_local would have no mapping).
  net.send(ProcessId(2), ProcessId(1),
           vsys::encode_group_frame(1, bytes({0x01})));
  sim.run_until(sim::Time{1000000});
  EXPECT_EQ(deliveries, 0u);
  EXPECT_EQ(mux.unroutable(), 2u);

  // Real traffic still flows.
  p1.send(ProcessId(0), ProcessId(1), bytes({0x01}));
  sim.run_until(sim::Time{2000000});
  EXPECT_EQ(deliveries, 1u);
}

TEST(Router, StableKeyPlacement) {
  shard::ShardRouter router(4);
  const std::uint32_t s = router.shard_of("user/42");
  EXPECT_GE(s, 1u);
  EXPECT_LE(s, 4u);
  EXPECT_EQ(router.shard_of("user/42"), s);  // pure function of the key
  // FNV-1a reference value pins the hash across platforms.
  EXPECT_EQ(shard::key_hash(""), 0xcbf29ce484222325ULL);
}

TEST(Router, ContactPrefersHomeThenLiveReplica) {
  shard::ShardRouter router(2);
  const ProcessSet pool = make_universe(4);
  router.set_assignments(shard::provision(pool, 2, 2));
  router.set_pool_view(pool);
  // Shard 1 = {0,1}; a client homed on a replica stays local.
  EXPECT_EQ(router.contact(1, ProcessId(0)), ProcessId(0));
  // A client homed elsewhere contacts the first live replica.
  EXPECT_EQ(router.contact(1, ProcessId(3)), ProcessId(0));
  // When a replica leaves the pool view, contact moves to the survivor.
  router.set_pool_view(ProcessSet{ProcessId(1), ProcessId(2), ProcessId(3)});
  EXPECT_EQ(router.contact(1, ProcessId(3)), ProcessId(1));
}

TEST(Router, CountsReResolutions) {
  shard::ShardRouter router(2);
  const ProcessSet pool = make_universe(3);
  EXPECT_EQ(router.re_resolutions(), 0u);
  router.set_assignments(shard::provision(pool, 2, 2));
  router.set_pool_view(pool);
  EXPECT_EQ(router.re_resolutions(), 2u);
  // Identical installs are not changes.
  router.set_assignments(shard::provision(pool, 2, 2));
  router.set_pool_view(pool);
  EXPECT_EQ(router.re_resolutions(), 2u);
  router.set_pool_view(ProcessSet{ProcessId(0), ProcessId(1)});
  EXPECT_EQ(router.re_resolutions(), 3u);
}

TEST(ShardedTraceRecorder, GroupsAreIndependent) {
  spec::ShardedTraceRecorder rec;
  const ProcessSet u2 = make_universe(2);
  rec.add_group(1, u2, View(ViewId::initial(), u2));
  rec.add_group(2, u2, View(ViewId::initial(), u2));
  EXPECT_THROW(rec.add_group(1, u2, View(ViewId::initial(), u2)),
               std::logic_error);

  const AppMsg a{1, ProcessId(0), "x"};
  rec.record(1, spec::ToEvent{spec::EvBcast{ProcessId(0), a}});
  rec.record(1, spec::ToEvent{spec::EvBrcv{ProcessId(0), ProcessId(0), a}});
  EXPECT_TRUE(rec.ok());
  // Group 2 never saw the bcast: the same delivery must trip ITS oracle
  // (each group has its own spec state), and the violation names the shard.
  rec.record(2, spec::ToEvent{spec::EvBrcv{ProcessId(0), ProcessId(0), a}});
  EXPECT_FALSE(rec.ok());
  EXPECT_TRUE(rec.group(1).ok());
  EXPECT_FALSE(rec.group(2).ok());
  ASSERT_TRUE(rec.violation().has_value());
  EXPECT_NE(rec.violation()->layer.find("shard 2"), std::string::npos);
  EXPECT_EQ(rec.events_checked(),
            rec.group(1).events_checked() + rec.group(2).events_checked());
  EXPECT_TRUE(rec.check_invariants() == false);  // group 2 stays tripped
}

TEST(ShardCluster, MultiShardSmoke) {
  shard::ShardClusterConfig cfg;
  cfg.shards = 3;
  cfg.replication = 2;
  cfg.base.n_processes = 4;
  shard::ShardCluster sc(cfg, /*seed=*/42);
  ASSERT_EQ(sc.shard_count(), 3u);
  EXPECT_EQ(sc.assignment(2).replicas,
            (std::vector<ProcessId>{ProcessId(1), ProcessId(2)}));
  EXPECT_TRUE(sc.hosts(2, ProcessId(1)));
  EXPECT_FALSE(sc.hosts(2, ProcessId(0)));
  EXPECT_EQ(sc.local_id(2, ProcessId(2)), ProcessId(1));

  sc.start();
  sc.run_for(sim::Time{200000});
  // One broadcast into every shard at its local replica 0.
  for (std::uint32_t k = 1; k <= 3; ++k) {
    sc.bcast(k, ProcessId(0), AppMsg{k, ProcessId(0), "m"});
  }
  sc.run_for(sim::Time{2000000});

  for (std::uint32_t k = 1; k <= 3; ++k) {
    // Both replicas of shard k delivered exactly its own message.
    std::map<std::uint32_t, std::size_t> per_receiver;
    for (const auto& d : sc.shard(k).deliveries()) {
      EXPECT_EQ(d.msg.uid, k);
      ++per_receiver[d.receiver.value()];
    }
    EXPECT_EQ(per_receiver.size(), 2u) << "shard " << k;
    EXPECT_EQ(sc.primary_fraction(k), 1.0) << "shard " << k;
  }
  EXPECT_TRUE(sc.oracle_ok());
  EXPECT_TRUE(sc.check_invariants());
  EXPECT_EQ(sc.min_primary_fraction(), 1.0);

  const obs::MetricsSnapshot snap = sc.metrics_snapshot();
  EXPECT_TRUE(snap.gauges.contains("pool.shards"));
  EXPECT_EQ(snap.gauges.at("pool.shards"), 3);
  // Per-shard prefixes plus pool rollups of the column counters.
  bool saw_shard_prefix = false;
  bool saw_rollup = false;
  for (const auto& [key, v] : snap.counters) {
    if (key.rfind("shard.2.", 0) == 0) {
      saw_shard_prefix = true;
      saw_rollup |= snap.counters.contains("pool." + key.substr(8));
    }
  }
  EXPECT_TRUE(saw_shard_prefix);
  EXPECT_TRUE(saw_rollup);
}

TEST(ShardCluster, ReconfiguresOneShardWhileSiblingsCommit) {
  // The tentpole's isolation property in miniature: pause shard 2's only
  // non-overlapping replica window and watch shards 1 and 3 keep
  // committing. (The full statistical version is test_shard_isolation.)
  shard::ShardClusterConfig cfg;
  cfg.shards = 3;
  cfg.replication = 2;  // shard k hosted on {k-1, k mod 4}
  cfg.base.n_processes = 4;
  shard::ShardCluster sc(cfg, /*seed=*/7);
  sc.start();
  sc.run_for(sim::Time{200000});

  // ProcessId(3) hosts only shard 3... actually shard 3 = {2,3}. Pause p3:
  // shard 3 loses a member and reconfigures; shards 1 ({0,1}) and 2 ({1,2})
  // share no replica with the fault.
  sc.net().pause(ProcessId(3));
  sc.run_for(sim::Time{1000000});
  std::uint64_t uid = 100;
  for (std::uint32_t k = 1; k <= 2; ++k) {
    sc.bcast(k, ProcessId(0), AppMsg{uid++, ProcessId(0), "m"});
  }
  sc.run_for(sim::Time{2000000});
  for (std::uint32_t k = 1; k <= 2; ++k) {
    EXPECT_FALSE(sc.shard(k).deliveries().empty()) << "shard " << k;
    EXPECT_EQ(sc.primary_fraction(k), 1.0) << "shard " << k;
  }
  // Shard 3 took the fault; whatever view it settled in, its oracle (and
  // everyone else's) must still be clean.
  EXPECT_TRUE(sc.oracle_ok());
}

}  // namespace
}  // namespace dvs
