// Fault-isolation property of the sharded subgroup layer: faults aimed at
// exactly shard 1's replicas must leave every shard that shares NO replica
// with the targets oracle-clean, fully available, and committing with
// bounded latency — the only thing shards share is the pool, the simulator
// and the wire.
//
// Topology used throughout: pool n=6, K=3, replication=2. Round-robin
// provisioning gives shard 1 {p0,p1}, shard 2 {p1,p2}, shard 3 {p2,p3}.
// The adversary targets {p0,p1}: shard 1 is fully wounded, shard 2 loses
// one of two replicas, and shard 3 is disjoint from the blast radius.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "shard/shard_chaos.h"
#include "shard/shard_cluster.h"

namespace dvs {
namespace {

constexpr std::size_t kPool = 6;
constexpr std::size_t kShards = 3;
constexpr std::size_t kReplication = 2;
const ProcessSet kTargets{ProcessId(0), ProcessId(1)};  // shard 1's replicas

tosys::ChaosConfig chaos_config() {
  tosys::ChaosConfig c;
  c.n_processes = kPool;
  c.plan.horizon = 3 * sim::kSecond;
  c.broadcasts = 45;  // 15 per shard
  c.settle = 2 * sim::kSecond;
  return c;
}

/// Replays run_shard_chaos_seed's load draws (same salt, same sequence) to
/// predict which uids were injected into shard k.
std::set<std::uint64_t> uids_for_shard(std::uint64_t seed,
                                       const tosys::ChaosConfig& c,
                                       std::uint32_t k) {
  Rng load(seed ^ 0xb0adca5700150adULL);
  std::set<std::uint64_t> uids;
  for (std::size_t i = 0; i < c.broadcasts; ++i) {
    (void)load.below(static_cast<std::size_t>(c.plan.horizon));
    (void)load.below(kPool);
    if (static_cast<std::uint32_t>(i % kShards) + 1 == k) uids.insert(i + 1);
  }
  return uids;
}

TEST(ShardIsolation, ProvisioningMatchesTheTopologyThisSuiteAssumes) {
  const std::vector<shard::ShardAssignment> a = shard::provision(
      make_universe(kPool), kShards, kReplication);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].replicas, (std::vector<ProcessId>{ProcessId(0), ProcessId(1)}));
  EXPECT_EQ(a[1].replicas, (std::vector<ProcessId>{ProcessId(1), ProcessId(2)}));
  EXPECT_EQ(a[2].replicas, (std::vector<ProcessId>{ProcessId(2), ProcessId(3)}));
}

TEST(ShardIsolation, TargetedChaosLeavesDisjointShardComplete) {
  // 30 adversarial schedules aimed only at {p0,p1}. Every shard's oracle
  // must stay clean (a wounded shard may stall, never lie), and shard 3 —
  // disjoint from the targets — must deliver its entire load in the same
  // total order at both replicas despite sharing the wire with the chaos.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    shard::ShardChaosConfig config;
    config.shards = kShards;
    config.replication = kReplication;
    config.chaos = chaos_config();
    config.fault_targets = kTargets;

    const shard::ShardChaosResult r = shard::run_shard_chaos_seed(seed, config);
    ASSERT_TRUE(r.ok) << r.failure << "\nplan:\n" << r.plan_text;
    EXPECT_GT(r.stats.fault_events, 0u) << "seed " << seed;

    ASSERT_EQ(r.orders.size(), kShards);
    const std::vector<std::vector<std::uint64_t>>& shard3 = r.orders[2];
    ASSERT_EQ(shard3.size(), kReplication);
    EXPECT_EQ(shard3[0], shard3[1])
        << "seed " << seed << ": shard 3 replicas disagree on total order";
    const std::set<std::uint64_t> got(shard3[0].begin(), shard3[0].end());
    EXPECT_EQ(got, uids_for_shard(seed, config.chaos, 3))
        << "seed " << seed << ": shard 3 lost or invented broadcasts";
    EXPECT_EQ(shard3[0].size(), got.size())
        << "seed " << seed << ": shard 3 delivered a uid twice";
  }
}

TEST(ShardIsolation, DisjointShardCommitLatencyStaysBoundedDuringOutage) {
  // Deterministic single-run version with a latency meter: both of shard
  // 1's replicas go dark mid-run, and a stream of broadcasts into shard 3
  // must keep committing at both replicas within a bound that is far below
  // any reconfiguration timescale.
  shard::ShardClusterConfig scc;
  scc.shards = kShards;
  scc.replication = kReplication;
  scc.base.n_processes = kPool;
  shard::ShardCluster sc(scc, /*seed=*/7);

  constexpr sim::Time kWarmup = 500 * sim::kMillisecond;
  constexpr sim::Time kGap = 50 * sim::kMillisecond;
  constexpr std::size_t kPings = 40;
  constexpr sim::Time kLatencyBound = 300 * sim::kMillisecond;

  sc.sim().schedule_at(kWarmup, [&sc] {
    sc.net().pause(ProcessId(0));
    sc.net().pause(ProcessId(1));
  });

  std::map<std::uint64_t, sim::Time> sent;
  for (std::size_t i = 0; i < kPings; ++i) {
    const std::uint64_t uid = 1000 + i;
    const sim::Time at = kWarmup + static_cast<sim::Time>(i + 1) * kGap;
    sent[uid] = at;
    const ProcessId local(static_cast<std::uint32_t>(i % kReplication));
    sc.sim().schedule_at(
        at, [&sc, uid, local] { sc.bcast(3, local, AppMsg{uid, local, "p"}); });
  }

  sc.start();
  sc.run_for(kWarmup + static_cast<sim::Time>(kPings + 10) * kGap);

  // Mid-outage: the disjoint shard never lost its primary.
  EXPECT_EQ(sc.primary_fraction(3), 1.0);

  // Every ping committed at BOTH replicas of shard 3, promptly.
  std::map<std::uint64_t, std::size_t> receivers;
  for (const tosys::Delivery& d : sc.shard(3).deliveries()) {
    const auto it = sent.find(d.msg.uid);
    ASSERT_NE(it, sent.end()) << "unexpected uid " << d.msg.uid;
    ++receivers[d.msg.uid];
    EXPECT_LE(d.at - it->second, kLatencyBound)
        << "uid " << d.msg.uid << " at p" << d.receiver.value();
  }
  for (const auto& [uid, at] : sent) {
    EXPECT_EQ(receivers[uid], kReplication) << "uid " << uid;
  }

  // Epilogue: heal, let the wounded shards recover, and require every
  // shard's oracle clean — isolation never came at the cost of the spec.
  sc.net().resume(ProcessId(0));
  sc.net().resume(ProcessId(1));
  sc.run_for(2 * sim::kSecond);
  EXPECT_TRUE(sc.check_invariants());
  EXPECT_TRUE(sc.oracle_ok()) << sc.violation_message();
  EXPECT_EQ(sc.min_primary_fraction(), 1.0);
}

}  // namespace
}  // namespace dvs
