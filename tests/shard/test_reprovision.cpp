// Dynamic shard re-provisioning conformance suite (tests the tentpole of
// shard/reprovision.h + ShardCluster dynamic mode):
//
//   1. plan_reprovision unit laws — slot stability, deterministic donor and
//      joiner choice, stall/loss accounting — plus the 0x48 transfer frame
//      and slot-snapshot codecs and the chunk reassembly path the daemon's
//      joiner bootstrap runs on.
//   2. The router pool-view regression: contact() must never hand a client
//      a replica the live pool view no longer contains when a live one
//      exists (the dvsd bug was a never-installed pool view).
//   3. The no-view-change differential: with a stable pool, dynamic mode is
//      BYTE-INERT — run_shard_chaos_seed with dynamic on and off must agree
//      on plans, verdicts, delivery orders and counters, seed for seed, at
//      any --jobs, and the workload runner's SLO JSON must match too.
//   4. Migration safety: kill a replica's pool process, let the pool view
//      drive a migration with state transfer, and check the shard comes
//      back primary with the established order intact (oracle PASS; orders
//      prefix-consistent and complete).
//   5. The crash-point sweep: inject a crash at EVERY persistence barrier
//      of a migration episode; recovery must roll the episode forward or
//      back — never a split-brain — and the migration must still complete.
//
// DVS_REPROVISION_SEEDS overrides the differential's per-n seed count
// (sanitizer gates shrink it; the default suite runs the full 200).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "shard/reprovision.h"
#include "shard/router.h"
#include "shard/shard_chaos.h"
#include "shard/shard_cluster.h"
#include "workload/runner.h"

namespace dvs {
namespace {

using shard::ShardAssignment;

// ===== 1. plan laws ==========================================================

std::vector<ShardAssignment> installed_4pool() {
  // Pool {0,1,2,3}, K=2, r=2: shard1={0,1}, shard2={1,2}.
  return shard::provision(make_universe(4), 2, 2);
}

TEST(ReprovisionPlan, StablePoolPlansNothing) {
  const auto plan = shard::plan_reprovision(installed_4pool(), make_universe(4));
  EXPECT_TRUE(plan.empty());
}

TEST(ReprovisionPlan, EmptyInstalledPlansNothing) {
  const auto plan = shard::plan_reprovision({}, make_universe(3));
  EXPECT_TRUE(plan.empty());
}

TEST(ReprovisionPlan, EmptyLiveViewLosesEveryColumn) {
  const auto plan = shard::plan_reprovision(installed_4pool(), ProcessSet{});
  EXPECT_TRUE(plan.migrations.empty());
  EXPECT_EQ(plan.lost, 2u);
}

TEST(ReprovisionPlan, DepartedSlotMovesOntoFreshCandidate) {
  // 0 departs: shard1 slot0 (host 0) must move; shard2 = {1,2} survives
  // untouched. Target over {1,2,3} gives shard1 = {1,2}; the only fresh
  // candidate is 2. Donor = the lowest-pool-id survivor, slot1 (host 1).
  const auto plan =
      shard::plan_reprovision(installed_4pool(), make_process_set({1, 2, 3}));
  ASSERT_EQ(plan.migrations.size(), 1u);
  const shard::GroupMigration& gm = plan.migrations.front();
  EXPECT_EQ(gm.group, 1u);
  EXPECT_EQ(gm.source_slot, ProcessId(1));
  ASSERT_EQ(gm.moves.size(), 1u);
  EXPECT_EQ(gm.moves.front(),
            (shard::SlotMove{ProcessId(0), ProcessId(0), ProcessId(2)}));
  EXPECT_EQ(plan.stalled, 0u);
  EXPECT_EQ(plan.lost, 0u);
}

TEST(ReprovisionPlan, ApplyPatchesOnlyMovedSlotsAndConverges) {
  const auto installed = installed_4pool();
  const ProcessSet live = make_process_set({1, 2, 3});
  const auto plan = shard::plan_reprovision(installed, live);
  const auto patched = shard::apply_plan(installed, plan);
  // Slot order is identity, not pool order: slot0 now hosts 2, slot1 keeps 1.
  EXPECT_EQ(patched[0].replicas, (std::vector<ProcessId>{ProcessId(2),
                                                          ProcessId(1)}));
  EXPECT_EQ(patched[1].replicas, installed[1].replicas);  // survivors stay
  // Fixpoint: the patched map is stable under the same live view.
  EXPECT_TRUE(shard::plan_reprovision(patched, live).empty());
}

TEST(ReprovisionPlan, MultipleDeparturesPairAscendingBySlot) {
  // Pool {0..5}, K=1, r=3: shard1={0,1,2}. 0 and 1 depart; target over
  // {2,3,4,5} is {2,3,4}, so fresh candidates {3,4} pair with slots 0,1 in
  // slot order. Donor is slot2 (host 2, the only survivor).
  const auto installed = shard::provision(make_universe(6), 1, 3);
  const auto plan =
      shard::plan_reprovision(installed, make_process_set({2, 3, 4, 5}));
  ASSERT_EQ(plan.migrations.size(), 1u);
  const shard::GroupMigration& gm = plan.migrations.front();
  EXPECT_EQ(gm.source_slot, ProcessId(2));
  ASSERT_EQ(gm.moves.size(), 2u);
  EXPECT_EQ(gm.moves[0],
            (shard::SlotMove{ProcessId(0), ProcessId(0), ProcessId(3)}));
  EXPECT_EQ(gm.moves[1],
            (shard::SlotMove{ProcessId(1), ProcessId(1), ProcessId(4)}));
}

TEST(ReprovisionPlan, PoolBelowReplicationStallsTheRefill) {
  // Pool {0,1}, K=1, r=2: shard1={0,1}. Only 1 survives; the clamped
  // target over {1} is {1}, already hosting — no candidate, so the refill
  // stalls (re-planned when the pool grows back).
  const auto installed = shard::provision(make_universe(2), 1, 2);
  const auto plan = shard::plan_reprovision(installed, make_process_set({1}));
  EXPECT_TRUE(plan.migrations.empty());
  EXPECT_EQ(plan.stalled, 1u);
  EXPECT_EQ(plan.lost, 0u);
}

TEST(ReprovisionPlan, AllReplicasDepartedIsLostNotMigrated) {
  // Nobody who holds shard1's state survives: nothing can migrate.
  const auto installed = shard::provision(make_universe(2), 1, 2);
  const auto plan = shard::plan_reprovision(installed, make_process_set({2, 3}));
  EXPECT_TRUE(plan.migrations.empty());
  EXPECT_EQ(plan.lost, 1u);
}

TEST(ReprovisionPlan, PlanIsAPureFunctionOfItsInputs) {
  const auto installed = installed_4pool();
  const ProcessSet live = make_process_set({1, 3});
  const auto a = shard::plan_reprovision(installed, live);
  const auto b = shard::plan_reprovision(installed, live);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.stalled, b.stalled);
  EXPECT_EQ(a.lost, b.lost);
}

// ===== 1b. transfer frame / snapshot codecs ==================================

Bytes bytes_of(std::initializer_list<int> vals) {
  Bytes b;
  for (int v : vals) b.push_back(static_cast<std::byte>(v));
  return b;
}

TEST(TransferCodec, FramesRoundTrip) {
  shard::TransferFrame req;
  req.kind = shard::TransferKind::kRequest;
  req.group = 3;
  req.slot = 1;
  req.episode = 17;
  const Bytes enc = shard::encode_transfer(req);
  EXPECT_TRUE(shard::looks_like_transfer_frame(enc));
  EXPECT_EQ(shard::decode_transfer(enc), req);

  shard::TransferFrame snap;
  snap.kind = shard::TransferKind::kSnapshot;
  snap.group = 2;
  snap.slot = 0;
  snap.episode = 17;
  snap.seq = 4;
  snap.total = 9;
  snap.payload = bytes_of({1, 2, 3, 0, 255});
  EXPECT_EQ(shard::decode_transfer(shard::encode_transfer(snap)), snap);
}

TEST(TransferCodec, SniffRejectsForeignPayloads) {
  EXPECT_FALSE(shard::looks_like_transfer_frame({}));
  EXPECT_FALSE(shard::looks_like_transfer_frame(bytes_of({0x48})));
  // Right tag, wrong version (v1 frames had no episode nonce).
  EXPECT_FALSE(shard::looks_like_transfer_frame(bytes_of({0x48, 1})));
  // The group-frame tag (0x47) and bare protocol frames never collide.
  EXPECT_FALSE(shard::looks_like_transfer_frame(bytes_of({0x47, 1, 0})));
}

TEST(TransferCodec, DecodeRejectsMalformedFrames) {
  shard::TransferFrame f;
  f.kind = shard::TransferKind::kSnapshot;
  f.seq = 0;
  f.total = 1;
  Bytes good = shard::encode_transfer(f);

  EXPECT_THROW(
      shard::decode_transfer(bytes_of({0x49, 2, 1, 0, 0, 0, 0, 0, 0})),
      DecodeError);  // bad tag
  EXPECT_THROW(
      shard::decode_transfer(bytes_of({0x48, 9, 1, 0, 0, 0, 0, 0, 0})),
      DecodeError);  // bad version
  EXPECT_THROW(
      shard::decode_transfer(bytes_of({0x48, 1, 1, 0, 0, 0, 0, 0})),
      DecodeError);  // v1 frame (no episode field) rejected at the version
  EXPECT_THROW(
      shard::decode_transfer(bytes_of({0x48, 2, 7, 0, 0, 0, 0, 0, 0})),
      DecodeError);  // unknown kind
  Bytes trailing = good;
  trailing.push_back(std::byte{0});
  EXPECT_THROW(shard::decode_transfer(trailing), DecodeError);
  // Snapshot-specific structure: zero total, seq beyond total.
  shard::TransferFrame zero_total = f;
  zero_total.total = 0;
  EXPECT_THROW(shard::decode_transfer(shard::encode_transfer(zero_total)),
               DecodeError);
  shard::TransferFrame beyond = f;
  beyond.seq = 5;
  beyond.total = 5;
  EXPECT_THROW(shard::decode_transfer(shard::encode_transfer(beyond)),
               DecodeError);
}

TEST(TransferCodec, SnapshotRoundTripsIncludingEmptyJournals) {
  shard::SlotSnapshot s;
  s.vs = {};  // a never-written journal is a legal (empty) field
  s.dvs = bytes_of({9, 8, 7});
  s.to = bytes_of({1});
  s.next = 42;
  EXPECT_EQ(shard::decode_snapshot(shard::encode_snapshot(s)), s);
  EXPECT_EQ(shard::decode_snapshot(shard::encode_snapshot({})),
            shard::SlotSnapshot{});
}

TEST(TransferCodec, ChunkingCoversEveryByteAndEmptySnapshots) {
  Bytes enc;
  for (int i = 0; i < 1000; ++i) enc.push_back(static_cast<std::byte>(i));
  const auto frames = shard::chunk_snapshot(1, 0, /*episode=*/7, enc, 64);
  ASSERT_EQ(frames.size(), (enc.size() + 63) / 64);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].episode, 7u);  // every chunk echoes the request
    EXPECT_EQ(frames[i].seq, i);
    EXPECT_EQ(frames[i].total, frames.size());
  }
  // An empty snapshot still produces one (empty) terminating frame.
  const auto empty = shard::chunk_snapshot(1, 0, 1, {}, 64);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_TRUE(empty.front().payload.empty());
}

TEST(TransferCodec, AssemblerReassemblesOutOfOrderWithDuplicates) {
  Bytes enc;
  for (int i = 0; i < 300; ++i) enc.push_back(static_cast<std::byte>(i * 7));
  const auto frames = shard::chunk_snapshot(2, 1, /*episode=*/1, enc, 32);
  shard::SnapshotAssembler asm_;
  // Reverse arrival order, every frame delivered twice.
  for (std::size_t i = frames.size(); i-- > 0;) {
    const bool complete = asm_.add(frames[i]);
    EXPECT_EQ(complete, i == 0);
    EXPECT_FALSE(asm_.add(frames[i]));  // duplicate never re-completes
  }
  EXPECT_TRUE(asm_.complete());
  EXPECT_EQ(asm_.take(), enc);
  EXPECT_FALSE(asm_.complete());  // take() resets for the next episode
  // Late duplicates of the taken episode never start a second assembly.
  EXPECT_FALSE(asm_.add(frames[0]));
  EXPECT_FALSE(asm_.complete());
}

TEST(TransferCodec, AssemblerNeverMixesEpisodes) {
  // Two answers to retried requests: same geometry, different content —
  // exactly the interleaving that used to assemble a decodable but
  // internally inconsistent snapshot.
  const auto ep1 = shard::chunk_snapshot(1, 0, 1, bytes_of({1, 2, 3, 4}), 2);
  const auto ep2 = shard::chunk_snapshot(1, 0, 2, bytes_of({5, 6, 7, 8}), 2);
  ASSERT_EQ(ep1.size(), 2u);
  shard::SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.add(ep1[0]));
  // A frame from a NEWER episode supersedes the partial assembly...
  EXPECT_FALSE(asm_.add(ep2[1]));
  // ...so the older episode's chunks are dropped, not mixed in.
  EXPECT_FALSE(asm_.add(ep1[1]));
  EXPECT_FALSE(asm_.complete());
  EXPECT_TRUE(asm_.add(ep2[0]));
  EXPECT_EQ(asm_.take(), bytes_of({5, 6, 7, 8}));

  // A donor whose state grew between answers ships a different chunk count:
  // the new episode replaces the old assembly wholesale.
  const auto small = shard::chunk_snapshot(1, 0, 3, bytes_of({9, 9, 9}), 2);
  const auto grown =
      shard::chunk_snapshot(1, 0, 4, bytes_of({1, 2, 3, 4, 5}), 2);
  EXPECT_FALSE(asm_.add(small[0]));
  for (const auto& f : grown) asm_.add(f);
  EXPECT_TRUE(asm_.complete());
  EXPECT_EQ(asm_.take(), bytes_of({1, 2, 3, 4, 5}));

  // Same episode, inconsistent geometry (an honest donor sends one answer
  // per episode): the frame is dropped as corrupt.
  const auto e5 = shard::chunk_snapshot(1, 0, 5, bytes_of({1, 2, 3, 4}), 2);
  shard::TransferFrame forged = e5[1];
  forged.total = 3;
  EXPECT_FALSE(asm_.add(e5[0]));
  EXPECT_FALSE(asm_.add(forged));
  EXPECT_TRUE(asm_.add(e5[1]));
  EXPECT_EQ(asm_.take(), bytes_of({1, 2, 3, 4}));
}

TEST(TransferCodec, AssemblerExpectQuarantinesPoisonedEpisodes) {
  // After a failed install the joiner quarantines everything it asked for
  // so far: duplicates of the poisoned episode must never re-complete.
  const auto ep1 = shard::chunk_snapshot(1, 0, 1, bytes_of({1, 2, 3}), 2);
  ASSERT_EQ(ep1.size(), 2u);
  shard::SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.add(ep1[0]));
  EXPECT_TRUE(asm_.add(ep1[1]));
  (void)asm_.take();
  asm_.expect(2);
  for (const auto& f : ep1) EXPECT_FALSE(asm_.add(f));
  EXPECT_FALSE(asm_.complete());
  // The re-requested episode assembles normally.
  const auto ep2 = shard::chunk_snapshot(1, 0, 2, bytes_of({4, 5, 6}), 2);
  EXPECT_FALSE(asm_.add(ep2[0]));
  EXPECT_TRUE(asm_.add(ep2[1]));
  EXPECT_EQ(asm_.take(), bytes_of({4, 5, 6}));
}

// ===== 2. router pool-view regression ========================================

TEST(RouterPoolView, ContactSkipsReplicasTheLiveViewLost) {
  shard::ShardRouter router(1);
  ShardAssignment a;
  a.group = 1;
  a.replicas = {ProcessId(0), ProcessId(1), ProcessId(2)};
  router.set_assignments({a});
  // The dvsd regression: with no pool view installed the router can only
  // fall back to the first provisioned replica — even when it is dead.
  EXPECT_EQ(router.contact(1, ProcessId(5)), ProcessId(0));
  // With the live view installed, a departed first replica is skipped.
  router.set_pool_view(make_process_set({1, 2, 3}));
  EXPECT_EQ(router.contact(1, ProcessId(5)), ProcessId(1));
  // A hosting home always wins.
  EXPECT_EQ(router.contact(1, ProcessId(2)), ProcessId(2));
  // Nobody provisioned survives: fall back to the first replica (it may be
  // rejoining; the op times out and retries above the router).
  router.set_pool_view(make_process_set({7, 8}));
  EXPECT_EQ(router.contact(1, ProcessId(7)), ProcessId(0));
}

TEST(RouterPoolView, ReResolutionsCountActualChangesOnly) {
  shard::ShardRouter router(1);
  ShardAssignment a;
  a.group = 1;
  a.replicas = {ProcessId(0), ProcessId(1)};
  router.set_assignments({a});
  const std::uint64_t base = router.re_resolutions();
  router.set_pool_view(make_universe(3));
  EXPECT_EQ(router.re_resolutions(), base + 1);
  router.set_pool_view(make_universe(3));  // unchanged membership
  EXPECT_EQ(router.re_resolutions(), base + 1);
  router.set_pool_view(make_process_set({0, 1}));
  EXPECT_EQ(router.re_resolutions(), base + 2);
}

// ===== 3. the no-view-change differential ====================================

std::size_t seeds_per_n() {
  if (const char* env = std::getenv("DVS_REPROVISION_SEEDS")) {
    const std::size_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 200;
}

// A chaos mix whose pool views provably stay stable: every membership fault
// (partitions, pauses, restarts) and the high-rate drop windows are zeroed —
// a drop window at 0.4 loss can outlast the suspicion timeout and falsely
// evict a live pool member, which would make dynamic mode *correctly*
// migrate and the byte-compare meaningless. Dup bursts and the steady
// anomaly rates stay on: they stress delivery, never membership.
tosys::ChaosConfig stable_pool_chaos(std::size_t n) {
  tosys::ChaosConfig c;
  c.n_processes = n;
  c.plan.horizon = 2 * sim::kSecond;
  c.plan.events = 10;
  c.plan.w_partition = 0.0;
  c.plan.w_heal = 0.0;
  c.plan.w_crash = 0.0;
  c.plan.w_recover = 0.0;
  c.plan.w_restart = 0.0;
  c.plan.w_drop_window = 0.0;
  c.plan.w_dup_burst = 1.0;
  c.broadcasts = 40;
  c.settle = 1500 * sim::kMillisecond;
  // Both arms journal: dynamic mode requires persistence, and the arms must
  // run the identical stack for the byte-compare to mean anything.
  c.persistence = true;
  return c;
}

std::string orders_text(
    const std::vector<std::vector<std::vector<std::uint64_t>>>& orders) {
  std::string out;
  for (std::size_t s = 0; s < orders.size(); ++s) {
    out += "shard " + std::to_string(s + 1) + "\n";
    for (std::size_t r = 0; r < orders[s].size(); ++r) {
      out += "  p" + std::to_string(r) + ":";
      for (const std::uint64_t uid : orders[s][r]) {
        out += " " + std::to_string(uid);
      }
      out += "\n";
    }
  }
  return out;
}

/// Runs one seed with dynamic off and on; returns a diagnosis ("" = inert).
std::string compare_seed(std::uint64_t seed, std::size_t n) {
  shard::ShardChaosConfig off;
  off.shards = 2;
  off.replication = 2;
  off.dynamic = false;
  off.chaos = stable_pool_chaos(n);
  shard::ShardChaosConfig on = off;
  on.dynamic = true;

  const shard::ShardChaosResult a = run_shard_chaos_seed(seed, off);
  const shard::ShardChaosResult b = run_shard_chaos_seed(seed, on);

  auto ctx = [&](const std::string& what) {
    return "seed " + std::to_string(seed) + " n=" + std::to_string(n) + ": " +
           what;
  };
  if (b.migrations != 0 || b.migration_stalls != 0 || b.migrations_lost != 0) {
    return ctx("stable pool migrated: " + std::to_string(b.migrations) + "/" +
               std::to_string(b.migration_stalls) + "/" +
               std::to_string(b.migrations_lost));
  }
  if (a.plan_text != b.plan_text) return ctx("fault plans diverge");
  if (a.ok != b.ok) {
    return ctx("verdicts diverge: static " +
               std::string(a.ok ? "ok" : ("FAIL (" + a.failure + ")")) +
               ", dynamic " +
               std::string(b.ok ? "ok" : ("FAIL (" + b.failure + ")")));
  }
  if (!a.ok) return ctx("both modes violated the spec: " + a.failure);
  if (orders_text(a.orders) != orders_text(b.orders)) {
    return ctx("delivery orders diverge:\nstatic:\n" + orders_text(a.orders) +
               "dynamic:\n" + orders_text(b.orders));
  }
  const tosys::ChaosStats& sa = a.stats;
  const tosys::ChaosStats& sb = b.stats;
  if (sa.events_checked != sb.events_checked ||
      sa.views_installed != sb.views_installed ||
      sa.deliveries != sb.deliveries ||
      sa.duplicates_suppressed != sb.duplicates_suppressed ||
      sa.decode_errors != sb.decode_errors) {
    return ctx("column counters diverge");
  }
  return {};
}

std::vector<std::string> sweep(std::size_t count, std::size_t n,
                               std::size_t jobs) {
  std::vector<std::string> diags(count);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      diags[i] = compare_seed(/*seed=*/1 + i, n);
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return diags;
}

class ReprovisionDifferential : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(ReprovisionDifferential, StablePoolIsByteInert) {
  const std::size_t n = GetParam();
  const std::size_t count = seeds_per_n();
  const std::size_t jobs =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<std::string> diags = sweep(count, n, jobs);
  std::size_t failures = 0;
  for (const std::string& d : diags) {
    if (d.empty()) continue;
    ++failures;
    ADD_FAILURE() << d;
    if (failures >= 3) break;
  }
  EXPECT_EQ(failures, 0u) << count << " seeds at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ReprovisionDifferential,
                         ::testing::Values(2, 3, 4));

TEST(ReprovisionDifferential, SweepIsJobsInvariant) {
  const std::size_t count = 12;
  EXPECT_EQ(sweep(count, 3, 1), sweep(count, 3, 4));
}

TEST(ReprovisionDifferential, SloReportsAreByteIdentical) {
  // The workload runner end to end: with a stable pool, `dynamic on` must
  // reproduce the static scenario's SLO report byte for byte.
  for (const std::size_t n : {3, 4}) {
    workload::Scenario sc;
    sc.name = "reprov-eq";
    sc.n = n;
    sc.shards = 2;
    sc.replication = 2;
    sc.persistence = true;  // both arms journal (dynamic would force it)
    sc.clients = 3;
    sc.horizon = 2 * sim::kSecond;
    sc.warmup = 300 * sim::kMillisecond;
    sc.settle = 1 * sim::kSecond;
    sc.drop = 0.01;
    const std::size_t slo_seeds = std::min<std::size_t>(seeds_per_n(), 20);
    for (std::uint64_t seed = 1; seed <= slo_seeds; ++seed) {
      sc.dynamic = false;
      const workload::SeedOutcome a = workload::run_scenario_seed(sc, seed);
      sc.dynamic = true;
      const workload::SeedOutcome b = workload::run_scenario_seed(sc, seed);
      ASSERT_EQ(a.slo.to_json(), b.slo.to_json())
          << "n=" << n << " seed " << seed;
    }
  }
}

// ===== 4 & 5. migration safety and the crash-point sweep =====================

shard::ShardClusterConfig dynamic_cluster_config(std::size_t pool) {
  shard::ShardClusterConfig cfg;
  cfg.shards = 2;
  cfg.replication = 2;
  cfg.dynamic = true;
  cfg.base.n_processes = pool;
  cfg.base.persistence = true;  // journals are the transferable state
  return cfg;
}

/// The established order at one column slot, as client-message uids.
std::vector<std::uint64_t> order_uids(tosys::Cluster& column, ProcessId slot) {
  auto& at = column.to_node(slot).automaton();
  std::vector<std::uint64_t> uids;
  uids.reserve(at.order().size());
  for (const Label& l : at.order()) {
    const auto it = at.content().find(l);
    uids.push_back(it == at.content().end() ? 0 : it->second.uid);
  }
  return uids;
}

/// Asserts shard k's replicas agree on a common established prefix and that
/// the longest order contains every broadcast uid. (Per-receiver *delivery*
/// streams may legally re-deliver after a handoff; the established order may
/// not diverge — that would be the split-brain the oracle also catches.)
void expect_orders_consistent(shard::ShardCluster& sc, std::uint32_t k,
                              const std::vector<std::uint64_t>& sent) {
  tosys::Cluster& column = sc.shard(k);
  const std::size_t r = sc.assignment(k).replicas.size();
  std::vector<std::uint64_t> longest;
  for (std::size_t i = 0; i < r; ++i) {
    const auto uids =
        order_uids(column, ProcessId(static_cast<std::uint32_t>(i)));
    if (uids.size() > longest.size()) longest = uids;
  }
  for (std::size_t i = 0; i < r; ++i) {
    const auto uids =
        order_uids(column, ProcessId(static_cast<std::uint32_t>(i)));
    ASSERT_LE(uids.size(), longest.size());
    for (std::size_t j = 0; j < uids.size(); ++j) {
      ASSERT_EQ(uids[j], longest[j])
          << "shard " << k << " slot " << i << " diverges at index " << j;
    }
  }
  for (const std::uint64_t uid : sent) {
    EXPECT_NE(std::find(longest.begin(), longest.end(), uid), longest.end())
        << "shard " << k << " lost uid " << uid;
  }
}

TEST(MigrationSafety, KilledReplicaMigratesAndTheOrderCompletes) {
  // Pool {0,1,2,3}, K=2, r=2: shard1={0,1}, shard2={1,2}. Killing 0 leaves
  // shard1 without a quorum of its 2-member view — the pool view change
  // must refill slot0 on a survivor (2) via state transfer, after which the
  // shard is primary again and everything broadcast before, during and
  // after the outage establishes in one agreed order.
  shard::ShardCluster sc(dynamic_cluster_config(4), /*seed=*/7);
  std::uint64_t handoffs = 0;
  sc.set_handoff_hook([&](std::uint32_t, ProcessId) { ++handoffs; });
  sc.start();

  std::vector<std::uint64_t> sent1, sent2;
  std::uint64_t uid = 1;
  auto send = [&](std::uint32_t k, ProcessId slot) {
    AppMsg a;
    a.uid = uid++;
    a.origin = slot;
    a.payload = "m" + std::to_string(a.uid);
    sc.bcast(k, slot, a);
    (k == 1 ? sent1 : sent2).push_back(a.uid);
  };

  sc.run_for(500 * sim::kMillisecond);
  send(1, ProcessId(0));  // at the soon-to-die replica
  send(1, ProcessId(1));
  send(2, ProcessId(0));
  sc.run_for(500 * sim::kMillisecond);

  sc.net().pause(ProcessId(0));  // kill shard1's slot0 host
  // The pool view must evict 0 and the plan must migrate slot0.
  for (int i = 0; i < 40 && sc.migrations() == 0; ++i) {
    sc.run_for(100 * sim::kMillisecond);
  }
  ASSERT_GE(sc.migrations(), 1u) << "pool view change never migrated slot0";
  EXPECT_EQ(handoffs, sc.migrations());
  EXPECT_EQ(sc.assignment(1).replicas[0], ProcessId(2));
  EXPECT_EQ(sc.assignment(1).replicas[1], ProcessId(1));
  EXPECT_EQ(sc.assignment(2).replicas,
            (std::vector<ProcessId>{ProcessId(1), ProcessId(2)}));

  send(1, ProcessId(1));  // the refilled shard must accept new load
  send(2, ProcessId(1));
  sc.run_for(1 * sim::kSecond);
  sc.net().resume(ProcessId(0));  // the old host rejoins the pool...
  sc.run_for(3 * sim::kSecond);
  // ...but slot-stable planning moves nothing back.
  EXPECT_EQ(sc.assignment(1).replicas[0], ProcessId(2));

  EXPECT_TRUE(sc.oracle_ok()) << sc.violation_message();
  EXPECT_TRUE(sc.check_invariants());
  expect_orders_consistent(sc, 1, sent1);
  expect_orders_consistent(sc, 2, sent2);
  // The refill restored availability: every shard spent time primary.
  EXPECT_GT(sc.min_primary_fraction(), 0.0);
}

TEST(MigrationCrashSweep, EveryBarrierRollsForwardOrBackNeverSplitBrain) {
  // Pool {0,1,2}, K=2, r=2: shard1={0,1}, shard2={1,2}; killing 0 plans
  // exactly one move (shard1 slot0 → 2), whose episode crosses 10
  // persistence barriers. Crash at every one of them: the run-global
  // ordinal hook throws at barrier i *and every barrier after it* (the
  // node keeps crashing until the operator intervenes — so the sibling
  // pool members' replanning attempts crash too instead of silently
  // completing the episode for us), then recovery must roll the episode
  // forward (meta marker present) or back (re-planned) and converge.
  std::size_t clean_at = 0;
  for (std::size_t barrier = 0;; ++barrier) {
    ASSERT_LT(barrier, 64u) << "sweep failed to terminate";
    shard::ShardCluster sc(dynamic_cluster_config(3), /*seed=*/11);
    bool crashed = false;
    sc.set_migration_crash_hook([&](std::size_t ordinal) {
      if (ordinal >= barrier) throw shard::MigrationCrash(ordinal);
    });
    sc.start();

    std::vector<std::uint64_t> sent1, sent2;
    auto send = [&](std::uint32_t k, ProcessId slot, std::uint64_t uid) {
      AppMsg a;
      a.uid = uid;
      a.origin = slot;
      a.payload = "c" + std::to_string(uid);
      sc.bcast(k, slot, a);
      (k == 1 ? sent1 : sent2).push_back(uid);
    };
    auto run_catching = [&](sim::Time d) {
      try {
        sc.run_for(d);
      } catch (const shard::MigrationCrash&) {
        crashed = true;
      }
    };

    run_catching(400 * sim::kMillisecond);
    send(1, ProcessId(1), 100 + barrier);
    send(2, ProcessId(0), 200 + barrier);
    run_catching(400 * sim::kMillisecond);
    sc.net().pause(ProcessId(0));
    for (int i = 0; i < 40 && sc.migrations() == 0 && !crashed; ++i) {
      run_catching(100 * sim::kMillisecond);
    }

    if (crashed) {
      // Operator intervention: stop injecting, recover, settle.
      sc.set_migration_crash_hook({});
      sc.recover_migrations();
    } else {
      clean_at = barrier;
    }
    for (int i = 0; i < 40 && sc.migrations() == 0; ++i) {
      sc.run_for(100 * sim::kMillisecond);
    }
    ASSERT_GE(sc.migrations(), 1u)
        << "migration never completed after crash at barrier " << barrier;
    send(1, ProcessId(1), 300 + barrier);
    sc.run_for(3 * sim::kSecond);

    EXPECT_EQ(sc.assignment(1).replicas[0], ProcessId(2))
        << "barrier " << barrier;
    EXPECT_TRUE(sc.oracle_ok())
        << "barrier " << barrier << ": " << sc.violation_message();
    EXPECT_TRUE(sc.check_invariants()) << "barrier " << barrier;
    expect_orders_consistent(sc, 1, sent1);
    expect_orders_consistent(sc, 2, sent2);
    if (!crashed) break;  // the hook outran the episode: sweep complete
  }
  // The sweep must actually have crossed every barrier of one episode
  // (snapshot, 3 staging writes, meta commit, 3 installs, cutover, clear).
  EXPECT_GE(clean_at, 10u);
}

}  // namespace
}  // namespace dvs
