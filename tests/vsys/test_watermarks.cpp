// SST-style watermark stability (vsys/watermarks.h + VsConfig::stability):
// unit tests of the incremental per-member watermark table, plus VS-level
// protocol tests pinning the watermark mode's behaviour — identical
// delivery/safe semantics to the explicit-ack protocol, piggybacked
// watermark propagation, and the retransmit-liveness regression (a stalled
// peer watermark must still trip the holdoff resend, exactly like a silent
// acker in the old protocol).
#include "vsys/watermarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/sim_network.h"
#include "spec/acceptors.h"
#include "vsys/vs_node.h"

namespace dvs::vsys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(WatermarkTableTest, MinTracksMemberRows) {
  WatermarkTable t;
  t.resize(4);
  t.reset({0, 1, 2});
  EXPECT_EQ(t.min_delivered(), 0u);
  // raise returns true iff the column MINIMUM advanced — rows 1,2 still
  // hold it at 0 here.
  EXPECT_FALSE(t.raise_delivered(0, 5));
  EXPECT_EQ(t.min_delivered(), 0u);
  EXPECT_FALSE(t.raise_delivered(1, 3));
  EXPECT_EQ(t.min_delivered(), 0u);
  // The last binding row moves: min advances to the new column minimum.
  EXPECT_TRUE(t.raise_delivered(2, 7));
  EXPECT_EQ(t.min_delivered(), 3u);
  EXPECT_EQ(t.delivered(0), 5u);
  EXPECT_EQ(t.delivered(1), 3u);
  EXPECT_EQ(t.delivered(2), 7u);
}

TEST(WatermarkTableTest, RaiseIsMonotoneAndReportsAdvance) {
  WatermarkTable t;
  t.resize(2);
  t.reset({0, 1});
  EXPECT_FALSE(t.raise_delivered(0, 4));  // row 1 still binds the min at 0
  // A stale (lower or equal) watermark is ignored.
  EXPECT_FALSE(t.raise_delivered(0, 2));
  EXPECT_FALSE(t.raise_delivered(0, 4));
  EXPECT_EQ(t.delivered(0), 4u);
  // raise returns whether the *minimum* advanced, not the cell: moving the
  // last binding row reports the advance.
  EXPECT_TRUE(t.raise_delivered(1, 9));
  EXPECT_EQ(t.min_delivered(), 4u);
}

TEST(WatermarkTableTest, NonMemberRowsCannotDisturbTheMin) {
  WatermarkTable t;
  t.resize(4);
  t.reset({0, 1});
  // Row 3 is in the universe but not in the view: raising it must be a
  // no-op (a corrupted-but-decodable frame from a non-member must not move
  // stability).
  EXPECT_FALSE(t.raise_delivered(3, 100));
  EXPECT_EQ(t.delivered(3), 0u);
  t.raise_delivered(0, 2);
  t.raise_delivered(1, 2);
  EXPECT_EQ(t.min_delivered(), 2u);
  EXPECT_FALSE(t.raise_delivered(3, 1));
  EXPECT_EQ(t.min_delivered(), 2u);
}

TEST(WatermarkTableTest, ResetReinstallsMembership) {
  WatermarkTable t;
  t.resize(3);
  t.reset({0, 1, 2});
  t.raise_delivered(0, 5);
  t.raise_delivered(1, 5);
  t.raise_delivered(2, 5);
  EXPECT_EQ(t.min_delivered(), 5u);
  // New view with fewer members: rows zero, old member drops out.
  t.reset({0, 1});
  EXPECT_EQ(t.min_delivered(), 0u);
  EXPECT_EQ(t.delivered(0), 0u);
  EXPECT_FALSE(t.raise_delivered(2, 9));  // no longer a member
  t.raise_delivered(0, 1);
  t.raise_delivered(1, 1);
  EXPECT_EQ(t.min_delivered(), 1u);
}

TEST(WatermarkTableTest, DifferentialAgainstNaiveMin) {
  // Random raises on both columns; the incrementally maintained minimum
  // must always equal a from-scratch scan over the member rows.
  WatermarkTable t;
  constexpr std::size_t kRows = 5;
  t.resize(kRows);
  const std::vector<std::size_t> members{0, 2, 4};
  t.reset(members);
  std::vector<std::uint64_t> delivered(kRows, 0);
  std::vector<std::uint64_t> safe(kRows, 0);
  Rng rng(123);
  for (int step = 0; step < 20000; ++step) {
    const std::size_t row = rng.below(kRows);  // non-members included
    const auto bump = static_cast<std::uint64_t>(rng.below(4));
    const bool which = rng.below(2) == 0;
    auto& shadow = which ? delivered : safe;
    const std::uint64_t v = shadow[row] + bump;
    if (which) {
      t.raise_delivered(row, v);
    } else {
      t.raise_safe(row, v);
    }
    if (std::find(members.begin(), members.end(), row) != members.end()) {
      shadow[row] = std::max(shadow[row], v);
    }
    auto naive = [&](const std::vector<std::uint64_t>& col) {
      std::uint64_t m = col[members.front()];
      for (std::size_t r : members) m = std::min(m, col[r]);
      return m;
    };
    ASSERT_EQ(t.min_delivered(), naive(delivered)) << "step " << step;
    ASSERT_EQ(t.min_safe(), naive(safe)) << "step " << step;
  }
}

// ----- VS-level protocol tests ---------------------------------------------

Msg opaque(std::uint64_t uid, unsigned sender) {
  return Msg{OpaqueMsg{uid, ProcessId{sender}}};
}

/// A little VS-only cluster with trace recording and a configurable
/// VsConfig (mirrors the harness in test_vs_node.cpp, plus the config
/// knob the stability-mode tests need).
class VsHarness {
 public:
  VsHarness(std::size_t n, std::uint64_t seed, VsConfig config)
      : rng_(seed),
        universe_(make_universe(n)),
        v0_{ViewId::initial(), make_universe(n)},
        net_(sim_, rng_, net::NetConfig{}, universe_),
        config_(config) {
    for (ProcessId p : universe_) {
      VsCallbacks cb;
      cb.on_newview = [this, p](const View& v) {
        trace_.push_back(spec::EvNewview{p, v});
        views_[p].push_back(v);
      };
      cb.on_gprcv = [this, p](const Msg& m, ProcessId from) {
        trace_.push_back(spec::EvGprcv<Msg>{from, p, m});
        delivered_[p].push_back(m);
      };
      cb.on_safe = [this, p](const Msg& m, ProcessId from) {
        trace_.push_back(spec::EvSafe<Msg>{from, p, m});
        safes_[p].push_back(m);
      };
      cb.on_gpsnd = [this, p](const Msg& m) {
        trace_.push_back(spec::EvGpsnd<Msg>{p, m});
      };
      nodes_[p] = std::make_unique<VsNode>(p, std::optional<View>{v0_}, net_,
                                           sim_, config_, std::move(cb));
    }
  }

  void start() {
    for (auto& [p, node] : nodes_) node->start();
  }

  void run_for(sim::Time d) { sim_.run_until(sim_.now() + d); }

  VsNode& node(unsigned p) { return *nodes_.at(ProcessId{p}); }
  net::SimNetwork& net() { return net_; }

  spec::AcceptResult check_trace() {
    spec::VsAcceptor acceptor(universe_, v0_);
    return acceptor.feed_all(trace_);
  }

  std::map<ProcessId, std::vector<Msg>> delivered_;
  std::map<ProcessId, std::vector<Msg>> safes_;
  std::map<ProcessId, std::vector<View>> views_;

 private:
  Rng rng_;
  ProcessSet universe_;
  View v0_;
  sim::Simulator sim_;
  net::SimNetwork net_;
  VsConfig config_;
  std::map<ProcessId, std::unique_ptr<VsNode>> nodes_;
  std::vector<spec::VsEvent> trace_;
};

VsConfig mode_config(StabilityMode mode) {
  VsConfig cfg;
  cfg.stability = mode;
  return cfg;
}

TEST(WatermarkModeTest, StableGroupOrdersAndStabilizes) {
  VsHarness h(3, 1, mode_config(StabilityMode::kWatermark));
  h.start();
  h.run_for(100 * kMillisecond);
  // A rapid burst: several messages deliver between consecutive 20 ms
  // heartbeats, so the Data/Seq piggybacks carry fresher watermarks than
  // the last heartbeat — stability travels at data rate.
  constexpr unsigned kBurst = 30;
  for (unsigned k = 0; k < kBurst; ++k) {
    h.node(k % 3).gpsnd(opaque(k + 1, k % 3));
    h.run_for(2 * kMillisecond);
  }
  h.run_for(1 * kSecond);
  const auto& d0 = h.delivered_.at(ProcessId{0});
  ASSERT_EQ(d0.size(), kBurst);
  EXPECT_EQ(h.delivered_.at(ProcessId{1}), d0);
  EXPECT_EQ(h.delivered_.at(ProcessId{2}), d0);
  // Safes at everyone: the watermark minimum reached every message.
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(h.safes_[ProcessId{i}].size(), kBurst) << "p" << i;
  }
  // The piggyback path actually advanced rows ahead of the heartbeats.
  std::uint64_t updates = 0;
  for (unsigned i = 0; i < 3; ++i) {
    updates += h.node(i).stats().watermark_updates;
  }
  EXPECT_GT(updates, 0u);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(WatermarkModeTest, ExplicitAckModeNeverTouchesTheTablePiggyback) {
  VsHarness h(3, 2, mode_config(StabilityMode::kExplicitAck));
  h.start();
  h.run_for(100 * kMillisecond);
  h.node(0).gpsnd(opaque(1, 0));
  h.run_for(1 * kSecond);
  EXPECT_EQ(h.safes_[ProcessId{0}].size(), 1u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(h.node(i).stats().watermark_updates, 0u) << "p" << i;
  }
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(WatermarkModeTest, BothModesDeliverIdenticalSequences) {
  VsHarness wm(3, 7, mode_config(StabilityMode::kWatermark));
  VsHarness ack(3, 7, mode_config(StabilityMode::kExplicitAck));
  for (VsHarness* h : {&wm, &ack}) {
    h->start();
    h->run_for(100 * kMillisecond);
    h->node(0).gpsnd(opaque(1, 0));
    h->node(1).gpsnd(opaque(2, 1));
    h->node(2).gpsnd(opaque(3, 2));
    h->run_for(2 * kSecond);
  }
  EXPECT_EQ(wm.delivered_, ack.delivered_);
  EXPECT_EQ(wm.safes_, ack.safes_);
  EXPECT_TRUE(wm.views_[ProcessId{0}].empty());
  EXPECT_TRUE(ack.views_[ProcessId{0}].empty());
}

TEST(WatermarkModeTest, StalledWatermarkStillRetransmits) {
  // The satellite-f liveness regression: a partition blip shorter than the
  // suspect timeout drops the SEQ in flight to p1/p2, so their published
  // watermarks stall at the pre-blip value. Heartbeats (which carry the
  // watermark columns in both modes) keep flowing after the heal; the
  // sender's holdoff cursor must treat the stalled watermark exactly like a
  // silent acker and resend the un-acked suffix — the message must get
  // through without any view change.
  VsHarness h(3, 8, mode_config(StabilityMode::kWatermark));
  h.start();
  h.run_for(100 * kMillisecond);
  h.node(0).gpsnd(opaque(1, 0));
  h.net().set_partition({make_process_set({0}), make_process_set({1, 2})});
  h.run_for(30 * kMillisecond);  // below the 100 ms suspect timeout
  h.net().heal();
  h.run_for(2 * kSecond);
  ASSERT_EQ(h.delivered_[ProcessId{1}].size(), 1u);
  EXPECT_EQ(h.delivered_[ProcessId{1}].front(), opaque(1, 0));
  EXPECT_TRUE(h.views_[ProcessId{0}].empty()) << "no view change expected";
  // And stability completed after the resend: safes at the sender too.
  EXPECT_EQ(h.safes_[ProcessId{0}].size(), 1u);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(WatermarkModeTest, SafeRequiresEveryMemberUnderPause) {
  // A paused (but not yet suspected) member blocks stability in watermark
  // mode just as it blocks acks: min over the table cannot advance past a
  // silent row.
  VsHarness h(3, 9, mode_config(StabilityMode::kWatermark));
  h.start();
  h.run_for(100 * kMillisecond);
  h.net().pause(ProcessId{2});
  h.node(0).gpsnd(opaque(1, 0));
  h.run_for(60 * kMillisecond);  // deliveries happen, stability must not
  EXPECT_TRUE(h.safes_[ProcessId{0}].empty());
  EXPECT_TRUE(h.safes_[ProcessId{1}].empty());
  h.net().resume(ProcessId{2});
  h.run_for(2 * kSecond);
  // After the resume (no view change needed at 60 ms < timeout... or after
  // one, either way) the message eventually stabilizes somewhere.
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
}  // namespace dvs::vsys
