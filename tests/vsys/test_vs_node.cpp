// Protocol-level tests of the distributed VS layer (vsys): membership
// agreement, sequencer ordering, safe indications, retransmission and the
// failure detector — driving VsNode instances directly over the simulated
// network, with recorded traces replayed through the VS acceptor.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/sim_network.h"
#include "spec/acceptors.h"
#include "vsys/vs_node.h"

namespace dvs::vsys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

Msg opaque(std::uint64_t uid, unsigned sender) {
  return Msg{OpaqueMsg{uid, ProcessId{sender}}};
}

/// A little VS-only cluster with trace recording.
class VsHarness {
 public:
  VsHarness(std::size_t n, std::size_t members, std::uint64_t seed)
      : rng_(seed),
        universe_(make_universe(n)),
        v0_{ViewId::initial(), make_universe(members)},
        net_(sim_, rng_, net::NetConfig{}, universe_) {
    for (ProcessId p : universe_) {
      VsCallbacks cb;
      cb.on_newview = [this, p](const View& v) {
        trace_.push_back(spec::EvNewview{p, v});
        views_[p].push_back(v);
      };
      cb.on_gprcv = [this, p](const Msg& m, ProcessId from) {
        trace_.push_back(spec::EvGprcv<Msg>{from, p, m});
        delivered_[p].push_back(m);
      };
      cb.on_safe = [this, p](const Msg& m, ProcessId from) {
        trace_.push_back(spec::EvSafe<Msg>{from, p, m});
        safes_[p].push_back(m);
      };
      cb.on_gpsnd = [this, p](const Msg& m) {
        trace_.push_back(spec::EvGpsnd<Msg>{p, m});
      };
      nodes_[p] = std::make_unique<VsNode>(
          p, v0_.contains(p) ? std::optional<View>{v0_} : std::nullopt, net_,
          sim_, config_, std::move(cb));
    }
  }

  void start() {
    for (auto& [p, node] : nodes_) node->start();
  }

  void run_for(sim::Time d) { sim_.run_until(sim_.now() + d); }

  VsNode& node(unsigned p) { return *nodes_.at(ProcessId{p}); }
  net::SimNetwork& net() { return net_; }

  spec::AcceptResult check_trace() {
    spec::VsAcceptor acceptor(universe_, v0_);
    return acceptor.feed_all(trace_);
  }

  std::map<ProcessId, std::vector<Msg>> delivered_;
  std::map<ProcessId, std::vector<Msg>> safes_;
  std::map<ProcessId, std::vector<View>> views_;

 private:
  Rng rng_;
  ProcessSet universe_;
  View v0_;
  sim::Simulator sim_;
  net::SimNetwork net_;
  VsConfig config_;
  std::map<ProcessId, std::unique_ptr<VsNode>> nodes_;
  std::vector<spec::VsEvent> trace_;
};

TEST(VsNodeTest, StableGroupOrdersAndStabilizesMessages) {
  VsHarness h(3, 3, 1);
  h.start();
  h.run_for(100 * kMillisecond);
  h.node(0).gpsnd(opaque(1, 0));
  h.node(1).gpsnd(opaque(2, 1));
  h.node(2).gpsnd(opaque(3, 2));
  h.run_for(1 * kSecond);

  // Everyone delivered all three, in the same order, and got safes for all.
  const auto& d0 = h.delivered_.at(ProcessId{0});
  ASSERT_EQ(d0.size(), 3u);
  EXPECT_EQ(h.delivered_.at(ProcessId{1}), d0);
  EXPECT_EQ(h.delivered_.at(ProcessId{2}), d0);
  EXPECT_EQ(h.safes_.at(ProcessId{0}).size(), 3u);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, NoViewChangeInStableGroup) {
  VsHarness h(4, 4, 2);
  h.start();
  h.run_for(5 * kSecond);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_TRUE(h.views_[ProcessId{i}].empty())
        << "p" << i << " installed a view in a stable group";
    EXPECT_EQ(h.node(i).stats().proposals_started, 0u);
  }
}

TEST(VsNodeTest, SuspectedProcessTriggersViewChange) {
  VsHarness h(3, 3, 3);
  h.start();
  h.run_for(100 * kMillisecond);
  h.net().pause(ProcessId{2});
  h.run_for(1 * kSecond);
  ASSERT_FALSE(h.views_[ProcessId{0}].empty());
  const View& v = h.views_[ProcessId{0}].back();
  EXPECT_EQ(v.set(), make_process_set({0, 1}));
  EXPECT_EQ(h.node(0).view()->id(), v.id());
  EXPECT_EQ(h.node(1).view()->id(), v.id());
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, ConcurrentPartitionsInstallDistinctViews) {
  VsHarness h(4, 4, 4);
  h.start();
  h.run_for(100 * kMillisecond);
  h.net().set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  h.run_for(2 * kSecond);
  ASSERT_TRUE(h.node(0).view().has_value());
  ASSERT_TRUE(h.node(2).view().has_value());
  const View& a = *h.node(0).view();
  const View& b = *h.node(2).view();
  EXPECT_EQ(a.set(), make_process_set({0, 1}));
  EXPECT_EQ(b.set(), make_process_set({2, 3}));
  EXPECT_NE(a.id(), b.id()) << "concurrent coordinators minted the same id";
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, MessagesDoNotCrossViews) {
  VsHarness h(3, 3, 5);
  h.start();
  h.run_for(100 * kMillisecond);
  // p2 departs; messages sent in the old 3-view must never be delivered in
  // the new 2-view.
  h.node(0).gpsnd(opaque(1, 0));
  h.net().pause(ProcessId{2});
  h.run_for(2 * kSecond);
  h.node(0).gpsnd(opaque(2, 0));
  h.run_for(1 * kSecond);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;  // the acceptor enforces per-view delivery
  // The new-view message arrives at both survivors.
  const auto& d1 = h.delivered_.at(ProcessId{1});
  ASSERT_FALSE(d1.empty());
  EXPECT_EQ(d1.back(), opaque(2, 0));
}

TEST(VsNodeTest, SafeRequiresEveryMemberEvenUnderLag) {
  VsHarness h(2, 2, 6);
  h.start();
  h.run_for(100 * kMillisecond);
  h.node(0).gpsnd(opaque(1, 0));
  h.run_for(1 * kSecond);
  // Both nodes delivered and acked through heartbeats → safes at both.
  EXPECT_EQ(h.safes_[ProcessId{0}].size(), 1u);
  EXPECT_EQ(h.safes_[ProcessId{1}].size(), 1u);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, RetransmissionSurvivesLoss) {
  // A partition blip shorter than the suspect timeout drops in-flight
  // traffic without triggering a view change; retransmission must still get
  // the client message through.
  VsHarness lossy(3, 3, 8);
  lossy.start();
  lossy.run_for(100 * kMillisecond);
  lossy.node(0).gpsnd(opaque(1, 0));
  lossy.net().set_partition({make_process_set({0}),
                             make_process_set({1, 2})});
  lossy.run_for(30 * kMillisecond);  // below the 100 ms suspect timeout
  lossy.net().heal();
  lossy.run_for(2 * kSecond);
  // The message was lost in the blip but retransmitted afterwards.
  ASSERT_EQ(lossy.delivered_[ProcessId{1}].size(), 1u);
  EXPECT_EQ(lossy.delivered_[ProcessId{1}].front(), opaque(1, 0));
  EXPECT_TRUE(lossy.views_[ProcessId{0}].empty()) << "no view change expected";
  const auto r = lossy.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, LateJoinerGetsAView) {
  VsHarness h(3, 2, 9);  // p2 starts with no view
  h.start();
  EXPECT_FALSE(h.node(2).view().has_value());
  h.run_for(2 * kSecond);
  ASSERT_TRUE(h.node(2).view().has_value());
  EXPECT_EQ(h.node(2).view()->set(), make_process_set({0, 1, 2}));
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, SendWithoutViewIsDropped) {
  VsHarness h(3, 2, 10);
  h.start();
  h.node(2).gpsnd(opaque(1, 2));  // p2 has no view yet
  h.run_for(500 * kMillisecond);
  EXPECT_EQ(h.node(2).stats().msgs_sent, 0u);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, EstimateTracksConnectivity) {
  VsHarness h(3, 3, 11);
  h.start();
  h.run_for(200 * kMillisecond);
  EXPECT_EQ(h.node(0).estimate(), make_process_set({0, 1, 2}));
  h.net().pause(ProcessId{1});
  h.run_for(500 * kMillisecond);
  EXPECT_EQ(h.node(0).estimate(), make_process_set({0, 2}));
  h.net().resume(ProcessId{1});
  h.run_for(500 * kMillisecond);
  EXPECT_EQ(h.node(0).estimate(), make_process_set({0, 1, 2}));
}

}  // namespace
}  // namespace dvs::vsys

namespace dvs::vsys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(VsNodeTest, DuelingCoordinatorsConvergeAfterMerge) {
  // Two partitions each install their own view (two concurrent
  // coordinators); on heal, one fresh proposal must absorb everyone and the
  // surviving view id must exceed both partition views.
  VsHarness h(4, 4, 21);
  h.start();
  h.run_for(100 * kMillisecond);
  h.net().set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  h.run_for(2 * kSecond);
  ASSERT_TRUE(h.node(0).view().has_value());
  ASSERT_TRUE(h.node(2).view().has_value());
  const ViewId left = h.node(0).view()->id();
  const ViewId right = h.node(2).view()->id();
  ASSERT_NE(left, right);

  h.net().heal();
  h.run_for(3 * kSecond);
  ASSERT_TRUE(h.node(0).view().has_value());
  const View merged = *h.node(0).view();
  EXPECT_EQ(merged.set(), make_process_set({0, 1, 2, 3}));
  EXPECT_GT(merged.id(), left);
  EXPECT_GT(merged.id(), right);
  for (unsigned i = 1; i < 4; ++i) {
    ASSERT_TRUE(h.node(i).view().has_value());
    EXPECT_EQ(h.node(i).view()->id(), merged.id()) << "p" << i;
  }
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(VsNodeTest, RepeatedFlappingStaysMonotoneAndUnique) {
  // Rapid partition/heal flapping: every install at every node must be
  // monotone (enforced by the trace acceptor) and ids globally unique.
  VsHarness h(3, 3, 22);
  h.start();
  h.run_for(100 * kMillisecond);
  for (int i = 0; i < 6; ++i) {
    h.net().set_partition({make_process_set({0}), make_process_set({1, 2})});
    h.run_for(600 * kMillisecond);
    h.net().heal();
    h.run_for(600 * kMillisecond);
  }
  h.run_for(2 * kSecond);
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;
  // Converged to one full view.
  ASSERT_TRUE(h.node(0).view().has_value());
  EXPECT_EQ(h.node(0).view()->set(), make_process_set({0, 1, 2}));
  EXPECT_EQ(h.node(1).view()->id(), h.node(0).view()->id());
}

TEST(VsNodeTest, ProposalAbortAndRetryUnderAckLoss) {
  // The coordinator's proposal dies when a member is unreachable during the
  // flush round; after the member resumes, a retried proposal (with a
  // higher epoch) succeeds.
  VsHarness h(3, 3, 23);
  h.start();
  h.run_for(100 * kMillisecond);
  // p2 pauses: the coordinator first suspects it and re-forms {0,1}.
  h.net().pause(ProcessId{2});
  h.run_for(1 * kSecond);
  ASSERT_TRUE(h.node(0).view().has_value());
  EXPECT_EQ(h.node(0).view()->set(), make_process_set({0, 1}));
  // Resume: a new proposal absorbs p2 again; epochs never repeat.
  h.net().resume(ProcessId{2});
  h.run_for(2 * kSecond);
  EXPECT_EQ(h.node(0).view()->set(), make_process_set({0, 1, 2}));
  const auto r = h.check_trace();
  EXPECT_TRUE(r.ok) << r.error;  // acceptor rejects duplicate/regressing ids
  EXPECT_GE(h.node(0).stats().views_installed, 2u);
}

}  // namespace
}  // namespace dvs::vsys
