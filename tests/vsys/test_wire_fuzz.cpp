// Wire-robustness fuzz: adversarially damaged encodings of every wire.h
// message type must surface as a clean DecodeError — never a crash, an
// over-read, or a foreign exception (std::length_error / bad_alloc from a
// corrupted length prefix). This is the receiver-side contract the
// network's payload-truncation fault relies on (vsys drops datagrams whose
// decode throws DecodeError and counts them in stats().decode_errors).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "vsys/wire.h"

namespace dvs::vsys {
namespace {

View sample_view() {
  return View{ViewId{3, ProcessId{1}}, make_process_set({0, 1, 2})};
}

/// One representative of every WireMsg alternative, with the nested
/// payload variants (Summary and InfoMsg carry containers whose length
/// prefixes are the interesting attack surface) covered too.
std::vector<WireMsg> samples() {
  const Label l{ViewId{2, ProcessId{0}}, 5, ProcessId{1}};
  const AppMsg a{42, ProcessId{1}, "payload"};
  Summary x;
  x.con.emplace(l, a);
  x.ord.push_back(l);
  x.next = 2;
  x.high = ViewId{1, ProcessId{0}};
  InfoMsg info;
  info.act = sample_view();
  info.amb.push_back(sample_view());

  std::vector<WireMsg> out;
  Heartbeat hb;
  hb.max_epoch = 7;
  hb.view = ViewId{3, ProcessId{1}};
  hb.delivered = 9;
  hb.token_rotation = 4;
  out.push_back(hb);
  out.push_back(Propose{sample_view()});
  out.push_back(FlushAck{ViewId{3, ProcessId{1}}});
  out.push_back(Install{sample_view()});
  out.push_back(Data{ViewId{3, ProcessId{1}}, 6, Msg{x}});
  out.push_back(Data{ViewId{3, ProcessId{1}}, 7, Msg{info}});
  out.push_back(Seq{ViewId{3, ProcessId{1}}, 8, ProcessId{2},
                    Msg{LabeledAppMsg{l, a}}});
  out.push_back(Seq{ViewId{3, ProcessId{1}}, 9, ProcessId{2},
                    Msg{StateMsg{ViewId{3, ProcessId{1}}, "blob"}}});
  // Delta-encoded state exchange: the flag byte plus the conditional
  // base_view/keep_len tail are new attack surface.
  StateMsg delta{ViewId{4, ProcessId{1}}, "suffix"};
  delta.is_delta = true;
  delta.base_view = ViewId{3, ProcessId{1}};
  delta.keep_len = 12;
  out.push_back(Seq{ViewId{4, ProcessId{1}}, 10, ProcessId{0}, Msg{delta}});
  out.push_back(Token{ViewId{3, ProcessId{1}}, 11, 12});
  return out;
}

/// decode() must either succeed or throw DecodeError; anything else
/// (length_error, bad_alloc, out_of_range, a crash) is a bounds gap.
void expect_clean_decode(const Bytes& data) {
  try {
    (void)decode(data);
  } catch (const DecodeError&) {
    // The one acceptable failure mode.
  } catch (const std::exception& e) {
    FAIL() << "decode leaked a foreign exception: " << e.what();
  }
}

TEST(WireFuzzTest, EveryTruncationRaisesDecodeError) {
  for (const WireMsg& m : samples()) {
    const Bytes full = encode(m);
    ASSERT_FALSE(full.empty());
    for (std::size_t len = 0; len < full.size(); ++len) {
      const Bytes cut(full.begin(),
                      full.begin() + static_cast<std::ptrdiff_t>(len));
      // A strict prefix can never be a complete message: the layout is
      // self-describing, so the parser must run out of bytes (or reject a
      // now-impossible length prefix) before finishing.
      EXPECT_THROW((void)decode(cut), DecodeError)
          << to_string(m) << " truncated to " << len << " bytes";
    }
  }
}

TEST(WireFuzzTest, EverySingleBitFlipDecodesCleanlyOrRejects) {
  for (const WireMsg& m : samples()) {
    const Bytes full = encode(m);
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes flipped = full;
        flipped[byte] ^= static_cast<std::byte>(1u << bit);
        expect_clean_decode(flipped);
      }
    }
  }
}

TEST(WireFuzzTest, DeltaStateMsgRoundTripsExactly) {
  StateMsg delta{ViewId{9, ProcessId{2}}, "tail-bytes"};
  delta.is_delta = true;
  delta.base_view = ViewId{7, ProcessId{0}};
  delta.keep_len = 1234;
  const WireMsg m = Seq{ViewId{9, ProcessId{2}}, 3, ProcessId{1}, Msg{delta}};
  const Bytes wire = encode(m);
  const WireMsg back = decode(wire);
  const auto& sq = std::get<Seq>(back);
  const auto& st = std::get<StateMsg>(sq.payload);
  EXPECT_TRUE(st.is_delta);
  EXPECT_EQ(st.base_view, delta.base_view);
  EXPECT_EQ(st.keep_len, delta.keep_len);
  EXPECT_EQ(st.blob, delta.blob);
  // Re-encode is byte-identical: the delta fields have one canonical form.
  EXPECT_EQ(encode(back), wire);
}

TEST(WireFuzzTest, StateMsgDeltaFlagAboveOneIsRejected) {
  StateMsg st{ViewId{9, ProcessId{2}}, "blob"};
  const WireMsg m = Seq{ViewId{9, ProcessId{2}}, 3, ProcessId{1}, Msg{st}};
  Bytes wire = encode(m);
  // The flag byte is the last byte of a non-delta StateMsg encoding (it is
  // the final field and the blob length precedes the blob bytes).
  ASSERT_EQ(static_cast<std::uint8_t>(wire.back()), 0u);
  wire.back() = std::byte{2};
  EXPECT_THROW((void)decode(wire), DecodeError);
}

TEST(WireFuzzTest, RandomGarbageNeverEscapesDecodeError) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk(rng.below(64));
    for (std::byte& b : junk) {
      b = static_cast<std::byte>(rng.below(256));
    }
    expect_clean_decode(junk);
  }
}

TEST(WireFuzzTest, CorruptedLengthPrefixIsRejectedBeforeAllocation) {
  // Blow up the container count inside a Summary-carrying Data message:
  // the varuint count must be rejected against the bytes remaining, not
  // handed to vector::reserve / map insertion loops.
  Summary x;
  const Label l{ViewId{2, ProcessId{0}}, 5, ProcessId{1}};
  x.con.emplace(l, AppMsg{42, ProcessId{1}, ""});
  x.ord.push_back(l);
  x.next = 1;
  x.high = ViewId{1, ProcessId{0}};
  const Bytes full = encode(Data{ViewId{3, ProcessId{1}}, 6, Msg{x}});
  // Overwrite every byte in turn with 0xff (a maximal varuint fragment —
  // wherever it lands on a length prefix it claims an enormous count).
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    Bytes evil = full;
    evil[byte] = std::byte{0xff};
    expect_clean_decode(evil);
  }
}

}  // namespace
}  // namespace dvs::vsys
