// Round-trip and robustness tests for the vsys wire protocol.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "vsys/wire.h"

namespace dvs::vsys {
namespace {

TEST(WireTest, HeartbeatRoundTrip) {
  Heartbeat hb;
  hb.max_epoch = 42;
  hb.view = ViewId{7, ProcessId{2}};
  hb.delivered = 19;
  const WireMsg m{hb};
  EXPECT_EQ(decode(encode(m)), m);

  Heartbeat no_view;
  no_view.max_epoch = 1;
  EXPECT_EQ(decode(encode(WireMsg{no_view})), WireMsg{no_view});
}

TEST(WireTest, MembershipMessagesRoundTrip) {
  const View v{ViewId{3, ProcessId{1}}, make_process_set({0, 1, 2})};
  EXPECT_EQ(decode(encode(WireMsg{Propose{v}})), WireMsg{Propose{v}});
  EXPECT_EQ(decode(encode(WireMsg{FlushAck{v.id()}})),
            WireMsg{FlushAck{v.id()}});
  EXPECT_EQ(decode(encode(WireMsg{Install{v}})), WireMsg{Install{v}});
}

TEST(WireTest, DataAndSeqRoundTrip) {
  const Data da{ViewId{2, ProcessId{0}}, 5,
                Msg{InfoMsg{View{ViewId{1, ProcessId{0}},
                                 make_process_set({0, 1})},
                            {}}}};
  EXPECT_EQ(decode(encode(WireMsg{da})), WireMsg{da});
  const Seq sq{ViewId{2, ProcessId{0}}, 9, ProcessId{1},
               Msg{RegisteredMsg{}}};
  EXPECT_EQ(decode(encode(WireMsg{sq})), WireMsg{sq});
}

TEST(WireTest, WatermarkPiggybacksRoundTrip) {
  // Stability-mode kWatermark rides delivered/safe counters on every Data
  // and Seq frame; a decode that dropped or reordered them would silently
  // stall (or falsely advance) stability.
  Data da{ViewId{2, ProcessId{0}}, 5, Msg{RegisteredMsg{}}};
  da.wm_delivered = 17;
  da.wm_safe = 13;
  EXPECT_EQ(decode(encode(WireMsg{da})), WireMsg{da});

  Seq sq{ViewId{2, ProcessId{0}}, 9, ProcessId{1}, Msg{RegisteredMsg{}}};
  sq.wm_delivered = 21;
  sq.wm_safe = 18;
  EXPECT_EQ(decode(encode(WireMsg{sq})), WireMsg{sq});
  // Distinct fields: a swap would still round-trip, so pin inequality.
  Seq swapped = sq;
  std::swap(swapped.wm_delivered, swapped.wm_safe);
  EXPECT_NE(WireMsg{swapped}, WireMsg{sq});
}

TEST(WireTest, HeartbeatCarriesSafeWatermark) {
  Heartbeat hb;
  hb.max_epoch = 4;
  hb.view = ViewId{2, ProcessId{1}};
  hb.delivered = 12;
  hb.safe = 9;
  const WireMsg m{hb};
  EXPECT_EQ(decode(encode(m)), m);
  Heartbeat zero = hb;
  zero.safe = 0;
  EXPECT_NE(WireMsg{zero}, m);
}

TEST(WireTest, TokenRoundTrip) {
  const Token tk{ViewId{4, ProcessId{2}}, 17, 42};
  EXPECT_EQ(decode(encode(WireMsg{tk})), WireMsg{tk});
}

TEST(WireTest, HeartbeatCarriesTokenRotation) {
  Heartbeat hb;
  hb.max_epoch = 3;
  hb.view = ViewId{3, ProcessId{0}};
  hb.delivered = 5;
  hb.token_rotation = 99;
  const WireMsg m{hb};
  EXPECT_EQ(decode(encode(m)), m);
}

TEST(WireTest, ToStringCoversAllVariants) {
  const View v{ViewId{3, ProcessId{1}}, make_process_set({0, 1})};
  EXPECT_NE(to_string(WireMsg{Heartbeat{}}).find("heartbeat"),
            std::string::npos);
  EXPECT_NE(to_string(WireMsg{Propose{v}}).find("propose"), std::string::npos);
  EXPECT_NE(to_string(WireMsg{FlushAck{v.id()}}).find("flush-ack"),
            std::string::npos);
  EXPECT_NE(to_string(WireMsg{Install{v}}).find("install"), std::string::npos);
  EXPECT_NE(to_string(WireMsg{Data{v.id(), 1, Msg{RegisteredMsg{}}}})
                .find("data"),
            std::string::npos);
  EXPECT_NE(to_string(WireMsg{Seq{v.id(), 1, ProcessId{0},
                                  Msg{RegisteredMsg{}}}})
                .find("seq"),
            std::string::npos);
  EXPECT_NE(to_string(WireMsg{Token{v.id(), 2, 3}}).find("token"),
            std::string::npos);
}

TEST(WireTest, TruncatedAndTrailingBytesRejected) {
  const View v{ViewId{3, ProcessId{1}}, make_process_set({0, 1, 2})};
  Bytes data = encode(WireMsg{Install{v}});
  Bytes truncated(data.begin(), data.begin() + 3);
  EXPECT_THROW((void)decode(truncated), DecodeError);
  Bytes padded = data;
  padded.push_back(std::byte{0});
  EXPECT_THROW((void)decode(padded), DecodeError);
}

TEST(WireTest, RandomBytesNeverCrashTheDecoder) {
  // Fuzz-ish robustness: decoding arbitrary bytes either succeeds (the
  // bytes happened to be a valid message) or throws DecodeError — it must
  // never crash, hang or read out of bounds.
  Rng rng(20260706);
  std::size_t decoded = 0;
  std::size_t rejected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::byte>(rng.below(256));
    try {
      (void)decode(junk);
      ++decoded;
    } catch (const DecodeError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(decoded + rejected, 5000u);
  EXPECT_GT(rejected, 0u);
}

TEST(WireTest, MutatedValidMessagesNeverCrashTheDecoder) {
  const View v{ViewId{3, ProcessId{1}}, make_process_set({0, 1, 2})};
  const Bytes base = encode(WireMsg{
      Seq{v.id(), 9, ProcessId{1},
          Msg{InfoMsg{v, {View{ViewId{4, ProcessId{2}},
                               make_process_set({1, 2})}}}}}});
  Rng rng(99);
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes mutated = base;
    const std::size_t flips = 1 + rng.below(4);
    for (std::size_t i = 0; i < flips; ++i) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::byte>(rng.below(256));
    }
    try {
      (void)decode(mutated);
    } catch (const DecodeError&) {
      // fine
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace dvs::vsys
