// Unit tests for the obs metrics registry: counter/gauge/histogram
// semantics, Prometheus `le` bucket boundaries, integral quantile math on
// known distributions, golden JSON / Prometheus exports, snapshot merge
// and comparison, collector scraping, and concurrent-increment correctness
// (the suite runs under TSan via scripts/check.sh's obs gate).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace dvs::obs {
namespace {

TEST(CounterTest, IncrementAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(42);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::logic_error);
  EXPECT_THROW(Histogram({10, 10}), std::logic_error);
  EXPECT_THROW(Histogram({20, 10}), std::logic_error);
}

TEST(HistogramTest, BucketBoundariesAreLeSemantics) {
  // Prometheus `le`: a value lands in the first bucket whose upper bound
  // is >= it; a value exactly on a bound belongs to that bound's bucket.
  Histogram h({10, 20});
  h.observe(0);    // <= 10
  h.observe(10);   // <= 10 (on the bound)
  h.observe(11);   // <= 20
  h.observe(20);   // <= 20 (on the bound)
  h.observe(21);   // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0u + 10 + 11 + 20 + 21);
  EXPECT_EQ(s.max, 21u);
}

TEST(HistogramTest, QuantilesOnKnownDistribution) {
  // 1..100 into decade buckets: quantile(q) is the upper bound of the
  // bucket holding rank ceil(q*100) — exact integers, no interpolation.
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (std::uint64_t v = 1; v <= 100; ++v) h.observe(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile(0.10), 10u);
  EXPECT_EQ(s.p50(), 50u);
  EXPECT_EQ(s.quantile(0.51), 60u);  // rank 51 lands in the (50,60] bucket
  EXPECT_EQ(s.p95(), 100u);          // rank 95 lands in the (90,100] bucket
  EXPECT_EQ(s.p99(), 100u);
  EXPECT_EQ(s.quantile(1.0), 100u);
  EXPECT_EQ(s.quantile(0.0), 10u);  // rank clamps to 1: the first value
}

TEST(HistogramTest, QuantileOverflowReportsMax) {
  Histogram h({10});
  h.observe(5);
  h.observe(1000);
  h.observe(2000);
  const HistogramSnapshot s = h.snapshot();
  // Ranks 2 and 3 land in the +Inf bucket, which has no finite upper
  // bound; the exact observed max is the honest readout.
  EXPECT_EQ(s.p50(), 2000u);
  EXPECT_EQ(s.p99(), 2000u);
  EXPECT_EQ(s.max, 2000u);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h({10});
  EXPECT_EQ(h.snapshot().p50(), 0u);
}

TEST(HistogramSnapshotTest, MergeSumsBucketsAndTracksMax) {
  Histogram a({10, 20});
  Histogram b({10, 20});
  a.observe(5);
  a.observe(15);
  b.observe(15);
  b.observe(99);
  HistogramSnapshot s = a.snapshot();
  s += b.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 5u + 15 + 15 + 99);
  EXPECT_EQ(s.max, 99u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
}

TEST(HistogramSnapshotTest, MergeWithEmptyAndMismatch) {
  Histogram a({10});
  a.observe(3);
  HistogramSnapshot empty;
  HistogramSnapshot s = empty;
  s += a.snapshot();  // empty += x adopts x
  EXPECT_EQ(s, a.snapshot());
  s += empty;  // x += empty is a no-op
  EXPECT_EQ(s, a.snapshot());
  HistogramSnapshot other = Histogram({99}).snapshot();
  EXPECT_THROW(s += other, std::logic_error);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  Histogram& h1 = reg.histogram("h", {1, 2});
  Histogram& h2 = reg.histogram("h", {3, 4});  // bounds ignored on re-lookup
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(MetricsRegistryTest, CollectorsPublishStructBackedStats) {
  struct Stats {
    std::uint64_t hits = 0;
  } stats;
  MetricsRegistry reg;
  reg.add_collector(
      [&] { reg.counter("layer.hits").set(stats.hits); });
  stats.hits = 7;
  EXPECT_EQ(reg.snapshot().counters.at("layer.hits"), 7u);
  stats.hits = 9;  // the struct stays source of truth between scrapes
  EXPECT_EQ(reg.snapshot().counters.at("layer.hits"), 9u);
}

TEST(MetricsSnapshotTest, CounterSumAcrossLabelVariants) {
  MetricsSnapshot s;
  s.counters["vs.msgs_sent{process=\"p0\"}"] = 3;
  s.counters["vs.msgs_sent{process=\"p1\"}"] = 4;
  s.counters["vs.msgs_sent_total"] = 100;  // different metric, not a variant
  s.counters["vs.msgs"] = 50;
  EXPECT_EQ(s.counter_sum("vs.msgs_sent"), 7u);
  EXPECT_EQ(s.counter_sum("vs.msgs"), 50u);
  EXPECT_EQ(s.counter_sum("absent"), 0u);
}

TEST(MetricsSnapshotTest, MergeAndEquality) {
  MetricsSnapshot a;
  a.counters["c"] = 1;
  a.gauges["g"] = -5;
  MetricsSnapshot b;
  b.counters["c"] = 2;
  b.counters["d"] = 7;
  b.gauges["g"] = 1;
  MetricsSnapshot m = a;
  m += b;
  EXPECT_EQ(m.counters.at("c"), 3u);
  EXPECT_EQ(m.counters.at("d"), 7u);
  EXPECT_EQ(m.gauges.at("g"), -4);
  EXPECT_NE(m, a);
  MetricsSnapshot m2 = a;
  m2 += b;
  EXPECT_EQ(m, m2);
}

MetricsRegistry& golden_registry(MetricsRegistry& reg) {
  reg.counter("a.b").set(3);
  reg.counter("c{process=\"p1\"}").set(1);
  reg.gauge("g").set(-2);
  Histogram& h = reg.histogram("h", {10, 20});
  h.observe(5);
  h.observe(15);
  h.observe(100);
  return reg;
}

TEST(MetricsSnapshotTest, JsonGolden) {
  MetricsRegistry reg;
  const std::string json = golden_registry(reg).snapshot().to_json();
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"a.b\": 3,\n"
      "    \"c{process=\\\"p1\\\"}\": 1\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g\": -2\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h\": {\"count\": 3, \"sum\": 120, \"max\": 100, \"p50\": 20, "
      "\"p95\": 100, \"p99\": 100, \"buckets\": [[\"10\", 1], [\"20\", 1], "
      "[\"+Inf\", 1]]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(MetricsSnapshotTest, PrometheusGolden) {
  MetricsRegistry reg;
  const std::string text = golden_registry(reg).snapshot().to_prometheus();
  const std::string expected =
      "# TYPE a_b counter\n"
      "a_b 3\n"
      "# TYPE c counter\n"
      "c{process=\"p1\"} 1\n"
      "# TYPE g gauge\n"
      "g -2\n"
      "# TYPE h histogram\n"
      "h_bucket{le=\"10\"} 1\n"
      "h_bucket{le=\"20\"} 2\n"
      "h_bucket{le=\"+Inf\"} 3\n"
      "h_sum 120\n"
      "h_count 3\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsSnapshotTest, PrometheusComposesHistogramLabelsWithLe) {
  MetricsRegistry reg;
  reg.histogram("lat{process=\"p1\"}", {10}).observe(4);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("lat_bucket{process=\"p1\",le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_sum{process=\"p1\"} 4"), std::string::npos);
  EXPECT_NE(text.find("lat_count{process=\"p1\"} 1"), std::string::npos);
}

TEST(MetricsConcurrencyTest, ParallelIncrementsAreExact) {
  // The hot path is per-metric atomics; this is the TSan witness that the
  // registry is safe to hammer from the sweep's worker threads.
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("lat", {8, 64, 512});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe((i + static_cast<std::uint64_t>(t)) % 1024);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.max, 1023u);
  std::uint64_t total = 0;
  for (const std::uint64_t n : s.counts) total += n;
  EXPECT_EQ(total, s.count);
}

TEST(MetricsConcurrencyTest, ConcurrentFindOrCreateIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared." + std::to_string(i % 16)).inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot s = reg.snapshot();
  std::uint64_t total = 0;
  for (const auto& [key, value] : s.counters) total += value;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 200u);
}

}  // namespace
}  // namespace dvs::obs
