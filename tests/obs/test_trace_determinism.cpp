// Span semantics of the StackTracer, and the determinism contract of the
// whole observability layer: for a fixed seed the metric snapshot and the
// span tree — including their serialized JSON — are bit-identical across
// repeated runs and across sweep thread counts, and the span invariants
// (no view_change left open at quiescence, every delivery nested in a
// view_active tenure, registrations never overlapping per process) hold on
// every conforming run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "net/fault_plan.h"
#include "obs/stack_tracer.h"
#include "obs/trace.h"
#include "parallel/seed_sweep.h"
#include "tosys/chaos.h"
#include "tosys/cluster.h"

namespace dvs::obs {
namespace {

TEST(TraceLogTest, IdsAreConsecutiveAndCloseIsIdempotent) {
  TraceLog log;
  const SpanId a = log.open("k", ProcessId{0}, 10);
  const SpanId b = log.open("k", ProcessId{1}, 20, a);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(log.span(b).parent, a);
  EXPECT_TRUE(log.span(a).open());
  EXPECT_EQ(log.open_count("k"), 2u);

  log.close(a, 30);
  EXPECT_EQ(log.span(a).outcome, SpanOutcome::kCompleted);
  EXPECT_EQ(log.span(a).duration(), 20u);
  log.abandon(a, 99);  // already closed: no-op
  EXPECT_EQ(log.span(a).outcome, SpanOutcome::kCompleted);
  EXPECT_EQ(*log.span(a).end, 30u);

  log.abandon(b, 25);
  EXPECT_EQ(log.span(b).outcome, SpanOutcome::kAbandoned);
  EXPECT_EQ(log.open_count("k"), 0u);

  log.close(kNoSpan, 1);  // null id: no-op
}

TEST(TraceLogTest, CoversIsInclusiveAndOpenExtendsForever) {
  TraceLog log;
  const SpanId a = log.open("k", ProcessId{0}, 10);
  EXPECT_TRUE(log.span(a).covers(10));
  EXPECT_TRUE(log.span(a).covers(1'000'000));
  EXPECT_FALSE(log.span(a).covers(9));
  log.close(a, 20);
  EXPECT_TRUE(log.span(a).covers(20));
  EXPECT_FALSE(log.span(a).covers(21));
}

TEST(StackTracerTest, ViewChangeLifecycle) {
  const ProcessId p0{0};
  const ProcessId p1{1};
  const View v0{ViewId::initial(), {p0, p1}};
  const View v1{ViewId{2, p0}, {p0, p1}};
  MetricsRegistry metrics;
  TraceLog trace;
  StackTracer tracer(metrics, trace);

  tracer.on_start(v0, 0);
  EXPECT_EQ(trace.open_count("view_active"), 2u);

  tracer.on_vs_newview(p0, v1, 100);
  tracer.on_vs_newview(p1, v1, 120);
  EXPECT_EQ(trace.open_count("view_change"), 2u);
  // Both transitions for v1 hang off one episode root (the first opened).
  // Copies, not references: later tracer calls append to the log and may
  // reallocate its span storage.
  {
    const Span first = trace.span(3);
    const Span second = trace.span(4);
    EXPECT_EQ(first.kind, "view_change");
    EXPECT_EQ(first.parent, kNoSpan);
    EXPECT_EQ(second.parent, first.id);
  }

  tracer.on_dvs_newview(p0, v1, 250);
  EXPECT_EQ(trace.open_count("view_change"), 1u);
  const Span first = trace.span(3);
  EXPECT_EQ(first.outcome, SpanOutcome::kCompleted);
  EXPECT_EQ(first.duration(), 150u);
  // p0's v0 tenure closed, a new view_active opened, parented to the
  // completed transition.
  EXPECT_FALSE(trace.span(1).open());
  const Span& tenure = trace.spans().back();
  EXPECT_EQ(tenure.kind, "view_active");
  EXPECT_EQ(tenure.process, p0);
  EXPECT_EQ(tenure.parent, first.id);

  const MetricsSnapshot s = metrics.snapshot();
  EXPECT_EQ(s.counters.at("trace.view_change.opened"), 2u);
  EXPECT_EQ(s.counters.at("trace.view_change.completed"), 1u);
  EXPECT_EQ(s.histograms.at("trace.view_change_us").count, 1u);
  EXPECT_EQ(s.histograms.at("trace.view_change_us").sum, 150u);
}

TEST(StackTracerTest, SupersededViewChangeIsAbandoned) {
  const ProcessId p0{0};
  const View v0{ViewId::initial(), {p0}};
  const View v1{ViewId{2, p0}, {p0}};
  const View v2{ViewId{3, p0}, {p0}};
  MetricsRegistry metrics;
  TraceLog trace;
  StackTracer tracer(metrics, trace);
  tracer.on_start(v0, 0);
  tracer.on_vs_newview(p0, v1, 10);
  tracer.on_vs_newview(p0, v2, 20);  // v1 never became primary at p0
  const Span& abandoned = trace.span(2);
  EXPECT_EQ(abandoned.outcome, SpanOutcome::kAbandoned);
  EXPECT_EQ(*abandoned.end, 20u);
  EXPECT_EQ(metrics.snapshot().counters.at("trace.view_change.abandoned"),
            1u);
}

TEST(StackTracerTest, RegistrationClosesAtTotalRegistration) {
  const ProcessId p0{0};
  const ProcessId p1{1};
  const View v0{ViewId::initial(), {p0, p1}};
  MetricsRegistry metrics;
  TraceLog trace;
  StackTracer tracer(metrics, trace);
  tracer.on_start(v0, 0);

  tracer.on_register(p0, v0, 50);
  EXPECT_EQ(trace.open_count("registration"), 1u);
  tracer.on_register(p1, v0, 80);
  // Every member registered: the view is totally registered (the
  // Invariant 4.2 hinge) and both spans close at that instant.
  EXPECT_EQ(trace.open_count("registration"), 0u);
  const MetricsSnapshot s = metrics.snapshot();
  EXPECT_EQ(s.counters.at("trace.registration.completed"), 2u);
  const HistogramSnapshot& h = s.histograms.at("trace.registration_us");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 30u + 0u);  // p0 waited 80-50, p1 closed instantly
}

TEST(StackTracerTest, DeliverySpanCoversBcastToBrcv) {
  const ProcessId p0{0};
  const ProcessId p1{1};
  const View v0{ViewId::initial(), {p0, p1}};
  MetricsRegistry metrics;
  TraceLog trace;
  StackTracer tracer(metrics, trace);
  tracer.on_start(v0, 0);
  tracer.on_bcast(p0, 7, 100);
  tracer.on_brcv(p1, p0, 7, 260);
  const Span& d = trace.spans().back();
  EXPECT_EQ(d.kind, "to_delivery");
  EXPECT_EQ(d.process, p1);
  EXPECT_EQ(d.start, 100u);
  EXPECT_EQ(*d.end, 260u);
  EXPECT_EQ(d.outcome, SpanOutcome::kCompleted);
  EXPECT_EQ(d.parent, trace.span(2).id);  // p1's view_active span
  EXPECT_EQ(metrics.snapshot().histograms.at("trace.to_delivery_us").sum,
            160u);
}

TEST(SpanInvariantTest, DetectsViolationsOnSyntheticTraces) {
  TraceLog log;
  const ProcessId p{0};
  log.open("view_change", p, 10);  // never closed
  const SpanId active = log.open("view_active", p, 0);
  log.close(active, 100);
  const SpanId d = log.open("to_delivery", p, 50);
  log.close(d, 200);  // delivered after the tenure ended
  const SpanId r1 = log.open("registration", p, 10);
  log.close(r1, 60);
  const SpanId r2 = log.open("registration", p, 40);  // overlaps r1
  log.close(r2, 80);
  const SpanInvariantReport report = check_span_invariants(log);
  EXPECT_EQ(report.open_view_change, 1u);
  EXPECT_EQ(report.non_nested_delivery, 1u);
  EXPECT_EQ(report.overlapping_registration, 1u);
  EXPECT_FALSE(report.all_zero());

  MetricsRegistry metrics;
  publish_span_invariants(report, metrics);
  const MetricsSnapshot s = metrics.snapshot();
  EXPECT_EQ(s.counters.at("trace.invariant.open_view_change"), 1u);
  EXPECT_EQ(s.counters.at("trace.invariant.non_nested_delivery"), 1u);
  EXPECT_EQ(s.counters.at("trace.invariant.overlapping_registration"), 1u);
}

// ----- full-stack determinism ------------------------------------------------

struct StackRun {
  std::string metrics_json;
  std::string trace_json;
  SpanInvariantReport invariants;
};

/// One adversarial full-stack run with observability on: scripted faults,
/// seeded client load, heal + settle. Everything below is a deterministic
/// function of (n, seed).
StackRun run_stack(std::size_t n, std::uint64_t seed) {
  tosys::ClusterConfig cc;
  cc.n_processes = n;
  cc.net.drop_probability = 0.02;
  cc.net.duplicate_probability = 0.1;
  cc.net.reorder_probability = 0.1;
  cc.net.truncate_probability = 0.01;
  tosys::Cluster cluster(cc, seed);

  net::FaultPlanConfig pc;
  pc.horizon = 2 * sim::kSecond;
  pc.events = 6;
  const net::FaultPlan plan =
      net::FaultPlan::random(seed, cluster.universe(), pc);
  plan.schedule(cluster.sim(), cluster.net());

  // A deterministic mid-run outage of the last member, held well past the
  // suspect timeout, so every (n, seed) provokes at least one
  // reconfiguration — the spans the test asserts on exist in every run.
  const ProcessId victim = *cluster.universe().rbegin();
  cluster.sim().schedule_at(300 * sim::kMillisecond,
                            [&cluster, victim] { cluster.net().pause(victim); });
  cluster.sim().schedule_at(800 * sim::kMillisecond,
                            [&cluster, victim] { cluster.net().resume(victim); });

  Rng load(seed ^ 0x0b5u);
  const std::vector<ProcessId> procs(cluster.universe().begin(),
                                     cluster.universe().end());
  std::uint64_t uid = 1;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto at = static_cast<sim::Time>(
        1 + load.below(static_cast<std::size_t>(pc.horizon)));
    const ProcessId p = procs[load.below(procs.size())];
    cluster.sim().schedule_at(at, [&cluster, p, m = AppMsg{uid++, p, "x"}] {
      cluster.bcast(p, m);
    });
  }

  cluster.start();
  cluster.run_for(pc.horizon);
  cluster.net().heal();
  for (ProcessId p : cluster.universe()) cluster.net().resume(p);
  cluster.run_for(2 * sim::kSecond);

  StackRun out;
  out.invariants = check_span_invariants(cluster.trace());
  publish_span_invariants(out.invariants, cluster.metrics());
  out.metrics_json = cluster.metrics_snapshot().to_json();
  out.trace_json = cluster.trace_json();
  return out;
}

TEST(TraceDeterminismTest, RunsAreBitIdenticalPerSeed) {
  for (const std::size_t n : {2u, 3u, 4u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const StackRun a = run_stack(n, seed);
      const StackRun b = run_stack(n, seed);
      EXPECT_EQ(a.metrics_json, b.metrics_json) << "n=" << n << " s=" << seed;
      EXPECT_EQ(a.trace_json, b.trace_json) << "n=" << n << " s=" << seed;
      // The runs actually produced spans and latency samples.
      EXPECT_NE(a.trace_json.find("view_change"), std::string::npos);
      EXPECT_NE(a.metrics_json.find("trace.to_delivery_us"),
                std::string::npos);
    }
  }
}

TEST(TraceDeterminismTest, SpanInvariantsHoldAtQuiescence) {
  for (const std::size_t n : {2u, 3u, 4u}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const StackRun r = run_stack(n, seed);
      EXPECT_TRUE(r.invariants.all_zero())
          << "n=" << n << " seed=" << seed << ": open_view_change="
          << r.invariants.open_view_change
          << " non_nested_delivery=" << r.invariants.non_nested_delivery
          << " overlapping_registration="
          << r.invariants.overlapping_registration;
    }
  }
}

TEST(TraceDeterminismTest, SweepMetricsAreThreadCountIndependent) {
  tosys::ChaosConfig chaos;
  chaos.plan.horizon = 2 * sim::kSecond;
  chaos.plan.events = 8;
  chaos.broadcasts = 30;
  chaos.settle = 2 * sim::kSecond;
  parallel::SeedSweepConfig sweep;
  sweep.first_seed = 1;
  sweep.num_seeds = 24;
  sweep.jobs = 1;
  const auto serial = parallel::run_chaos_sweep(sweep, chaos);
  sweep.jobs = 4;
  const auto fanned = parallel::run_chaos_sweep(sweep, chaos);
  ASSERT_FALSE(serial.first_failure.has_value());
  ASSERT_FALSE(fanned.first_failure.has_value());
  // The merged snapshot — and its serialized bytes — are identical no
  // matter how the seeds were fanned out.
  EXPECT_EQ(serial.total.metrics, fanned.total.metrics);
  EXPECT_EQ(serial.total.metrics.to_json(), fanned.total.metrics.to_json());
  EXPECT_EQ(serial.total.metrics.to_prometheus(),
            fanned.total.metrics.to_prometheus());
  EXPECT_EQ(serial.total, fanned.total);
  // Latency histograms accumulated real samples across the sweep.
  EXPECT_GT(serial.total.metrics.histograms.at("trace.to_delivery_us").count,
            0u);
  EXPECT_GT(serial.total.metrics.histograms.at("trace.view_change_us").count,
            0u);
}

}  // namespace
}  // namespace dvs::obs
