// Exhaustive small-scope verification of the DVS specification
// (experiments E2/E3 at full coverage): every reachable state under a
// bounded environment satisfies Invariants 4.1 and 4.2.
#include <gtest/gtest.h>

#include "explorer/exhaustive.h"

namespace dvs::explorer {
namespace {

View mkview(std::uint64_t epoch, unsigned origin,
            std::initializer_list<unsigned> members) {
  return View{ViewId{epoch, ProcessId{origin}}, make_process_set(members)};
}

TEST(ExhaustiveTest, TwoProcessesTwoViewsOneMessage) {
  ExhaustiveConfig config;
  config.candidate_views = {mkview(1, 0, {0, 1}), mkview(2, 1, {0, 1})};
  config.send_budget = 1;
  const auto stats = exhaustive_check_dvs_spec(
      make_universe(2), initial_view(make_universe(2)), config);
  EXPECT_FALSE(stats.truncated) << "raise max_states";
  EXPECT_GT(stats.states_visited, 50u);
  EXPECT_GT(stats.transitions, stats.states_visited);
}

TEST(ExhaustiveTest, ThreeProcessesWithShrinkingViews) {
  // The scope exercises the dynamic-voting shape: full view, then a
  // two-member majority, then an overlapping successor — plus a disjoint
  // candidate that the CREATEVIEW precondition must keep rejecting until a
  // totally registered view separates it.
  ExhaustiveConfig config;
  config.candidate_views = {
      mkview(1, 0, {0, 1, 2}),
      mkview(2, 0, {0, 1}),
      mkview(3, 2, {2}),  // disjoint from {0,1}: admissible only when
                          // separated by a totally registered view
  };
  config.send_budget = 0;
  config.max_states = 3'000'000;
  const auto stats = exhaustive_check_dvs_spec(
      make_universe(3), initial_view(make_universe(3)), config);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.states_visited, 300u);
}

TEST(ExhaustiveTest, MessageLifecycleFullyInterleaved) {
  // One view, two messages: the full order/receive/deliver/safe lattice
  // across two processes is enumerated.
  ExhaustiveConfig config;
  config.candidate_views = {};
  config.send_budget = 2;
  const auto stats = exhaustive_check_dvs_spec(
      make_universe(2), initial_view(make_universe(2)), config);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.states_visited, 200u);
}

TEST(ExhaustiveTest, EncodeStateDistinguishesStates) {
  spec::DvsSpec a(make_universe(2), initial_view(make_universe(2)));
  spec::DvsSpec b = a;
  EXPECT_EQ(encode_state(a), encode_state(b));
  b.apply_gpsnd(ClientMsg{OpaqueMsg{1, ProcessId{0}}}, ProcessId{0});
  EXPECT_NE(encode_state(a), encode_state(b));
  a.apply_gpsnd(ClientMsg{OpaqueMsg{1, ProcessId{0}}}, ProcessId{0});
  EXPECT_EQ(encode_state(a), encode_state(b));
  a.apply_order(ProcessId{0}, ViewId::initial());
  EXPECT_NE(encode_state(a), encode_state(b));
}

TEST(ExhaustiveTest, StateCountIsDeterministic) {
  ExhaustiveConfig config;
  config.candidate_views = {mkview(1, 0, {0, 1})};
  config.send_budget = 1;
  const auto s1 = exhaustive_check_dvs_spec(
      make_universe(2), initial_view(make_universe(2)), config);
  const auto s2 = exhaustive_check_dvs_spec(
      make_universe(2), initial_view(make_universe(2)), config);
  EXPECT_EQ(s1.states_visited, s2.states_visited);
  EXPECT_EQ(s1.transitions, s2.transitions);
}

}  // namespace
}  // namespace dvs::explorer

namespace dvs::explorer {
namespace {

// ---------------------------------------------------------------------------
// Exhaustive DVS-IMPL enumeration: Theorem 5.9 + Invariants 5.1–5.6 by
// enumeration for bounded scopes (every transition refinement-checked).
// ---------------------------------------------------------------------------

TEST(ExhaustiveImplTest, TwoProcessesOneViewNoMessages) {
  ExhaustiveConfig config;
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, make_universe(2)}};
  config.send_budget = 0;
  config.max_states = 500'000;
  const auto stats = exhaustive_check_dvs_impl(
      make_universe(2), initial_view(make_universe(2)), config);
  EXPECT_FALSE(stats.truncated) << stats.states_visited << " states";
  EXPECT_GT(stats.states_visited, 500u);
}

TEST(ExhaustiveImplTest, TwoProcessesOneMessageNoViewChange) {
  // Full message lifecycle (send → order → receive → deliver → safe at both
  // members) exhaustively interleaved with registration, in v0.
  ExhaustiveConfig config;
  config.candidate_views = {};
  config.send_budget = 1;
  config.max_states = 500'000;
  const auto stats = exhaustive_check_dvs_impl(
      make_universe(2), initial_view(make_universe(2)), config);
  EXPECT_FALSE(stats.truncated) << stats.states_visited << " states";
  EXPECT_GT(stats.states_visited, 50u);
}

TEST(ExhaustiveImplTest, ViewChangePlusMessageBoundedCoverage) {
  // The combined scope (view change × client message) is large; cover a
  // bounded prefix of it with every state invariant-checked and every
  // transition refinement-checked. Full exhaustion of this scope is
  // available via the model_checker binary on a beefier budget.
  ExhaustiveConfig config;
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, make_universe(2)}};
  config.send_budget = 1;
  config.max_states = 40'000;
  const auto stats = exhaustive_check_dvs_impl(
      make_universe(2), initial_view(make_universe(2)), config);
  EXPECT_GE(stats.states_visited, 40'000u);
}

TEST(ExhaustiveImplTest, ImplEncodingDistinguishesStates) {
  impl::DvsImplSystem a(make_universe(2), initial_view(make_universe(2)));
  impl::DvsImplSystem b(make_universe(2), initial_view(make_universe(2)));
  EXPECT_EQ(encode_state(a), encode_state(b));
  (void)a.apply(impl::DvsImplAction::send(
      ProcessId{0}, ClientMsg{OpaqueMsg{1, ProcessId{0}}}));
  EXPECT_NE(encode_state(a), encode_state(b));
}

}  // namespace
}  // namespace dvs::explorer
