// Randomized model-checking tests (experiments E1–E5 of DESIGN.md): seeded
// exploration sweeps over the spec automata and over DVS-IMPL with all
// invariant checkers, the refinement checker and the trace acceptor armed.
#include <gtest/gtest.h>

#include "explorer/explorer.h"
#include "explorer/to_explorer.h"

namespace dvs::explorer {
namespace {

struct SweepParam {
  std::size_t n_processes;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "n" + std::to_string(info.param.n_processes) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<SweepParam> sweep(std::initializer_list<std::size_t> sizes,
                              std::uint64_t seeds) {
  std::vector<SweepParam> out;
  for (std::size_t n : sizes) {
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      out.push_back({n, s * 7919 + n});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// E1: VS specification sweeps (Invariant 3.1).
// ---------------------------------------------------------------------------

class VsSpecSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(VsSpecSweep, InvariantsHoldOverRandomExecutions) {
  const auto [n, seed] = GetParam();
  ExplorerConfig config;
  config.steps = 1500;
  VsSpecExplorer ex(make_universe(n), initial_view(make_universe(n)), config,
                    seed);
  const ExplorationStats stats = ex.run();
  EXPECT_EQ(stats.steps_taken, config.steps);
  EXPECT_GT(stats.invariant_checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VsSpecSweep,
                         ::testing::ValuesIn(sweep({2, 3, 5}, 6)),
                         param_name);

// ---------------------------------------------------------------------------
// E2/E3: DVS specification sweeps (Invariants 4.1, 4.2).
// ---------------------------------------------------------------------------

class DvsSpecSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DvsSpecSweep, InvariantsHoldOverRandomExecutions) {
  const auto [n, seed] = GetParam();
  ExplorerConfig config;
  config.steps = 1500;
  DvsSpecExplorer ex(make_universe(n), initial_view(make_universe(n)), config,
                     seed);
  const ExplorationStats stats = ex.run();
  EXPECT_EQ(stats.steps_taken, config.steps);
  EXPECT_GT(stats.views_created + 1, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DvsSpecSweep,
                         ::testing::ValuesIn(sweep({2, 3, 5}, 6)),
                         param_name);

// ---------------------------------------------------------------------------
// E4/E5: DVS-IMPL sweeps — invariants 5.1–5.6 + refinement + acceptance.
// ---------------------------------------------------------------------------

class DvsImplSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DvsImplSweep, InvariantsRefinementAndAcceptanceHold) {
  const auto [n, seed] = GetParam();
  ExplorerConfig config;
  config.steps = 1200;
  DvsImplExplorer ex(make_universe(n), initial_view(make_universe(n)), config,
                     seed);
  const ExplorationStats stats = ex.run();
  EXPECT_EQ(stats.steps_taken, config.steps);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DvsImplSweep,
                         ::testing::ValuesIn(sweep({2, 3, 4}, 5)),
                         param_name);

// ---------------------------------------------------------------------------
// E6/E7: TO-IMPL sweeps — invariants 6.1–6.3 + TO trace acceptance
// (Theorem 6.4).
// ---------------------------------------------------------------------------

class ToImplSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ToImplSweep, InvariantsAndTotalOrderHold) {
  const auto [n, seed] = GetParam();
  ExplorerConfig config;
  config.steps = 1200;
  ToImplExplorer ex(make_universe(n), initial_view(make_universe(n)), config,
                    seed);
  const ExplorationStats stats = ex.run();
  EXPECT_EQ(stats.steps_taken, config.steps);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ToImplSweep,
                         ::testing::ValuesIn(sweep({2, 3, 4}, 5)),
                         param_name);

TEST(ToImplExplorerTest, LongRunDeliversThroughViewChanges) {
  ExplorerConfig config;
  config.steps = 10000;
  config.max_views = 12;
  ToImplExplorer ex(make_universe(3), initial_view(make_universe(3)), config,
                    /*seed=*/1234);
  const ExplorationStats stats = ex.run();
  EXPECT_GT(stats.views_created, 0u);
  EXPECT_GT(stats.msgs_sent, 0u);
  EXPECT_GT(stats.msgs_delivered, 0u) << "no BRCV ever happened";
}

// A longer single run that must produce actual primary-view dynamics, to
// guard against a sweep that silently never exercises view changes.
TEST(DvsImplExplorerTest, LongRunExercisesViewDynamics) {
  ExplorerConfig config;
  config.steps = 8000;
  config.max_views = 14;
  DvsImplExplorer ex(make_universe(4), initial_view(make_universe(4)), config,
                     /*seed=*/42);
  const ExplorationStats stats = ex.run();
  EXPECT_GT(stats.views_created, 0u) << "no VS views were ever formed";
  EXPECT_GT(stats.dvs_views_attempted, 0u)
      << "no dynamic primary view was ever attempted";
  EXPECT_GT(stats.msgs_delivered, 0u);
  EXPECT_GT(stats.external_events, 0u);
  EXPECT_FALSE(ex.trace().empty());
}

// Exploration with a process outside the initial membership (join scenario).
TEST(DvsImplExplorerTest, LateJoinerUniverse) {
  ExplorerConfig config;
  config.steps = 4000;
  const ProcessSet universe = make_universe(4);
  const View v0{ViewId::initial(), make_process_set({0, 1, 2})};
  DvsImplExplorer ex(universe, v0, config, /*seed=*/7);
  const ExplorationStats stats = ex.run();
  EXPECT_EQ(stats.steps_taken, config.steps);
}

// Determinism: the same seed yields the same trace.
TEST(DvsImplExplorerTest, SameSeedSameTrace) {
  ExplorerConfig config;
  config.steps = 800;
  DvsImplExplorer a(make_universe(3), initial_view(make_universe(3)), config,
                    99);
  DvsImplExplorer b(make_universe(3), initial_view(make_universe(3)), config,
                    99);
  (void)a.run();
  (void)b.run();
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(spec::to_string(a.trace()[i]), spec::to_string(b.trace()[i]));
  }
}

// The candidate generator respects the id floor and nonempty membership.
TEST(RandomViewCandidateTest, ProducesFreshNonemptyViews) {
  Rng rng(123);
  const ProcessSet universe = make_universe(5);
  const ViewId floor{3, ProcessId{2}};
  for (int i = 0; i < 200; ++i) {
    const View v = random_view_candidate(rng, universe, floor, universe, 0.5);
    EXPECT_GT(v.id(), floor);
    EXPECT_FALSE(v.set().empty());
    for (ProcessId p : v.set()) EXPECT_TRUE(universe.contains(p));
  }
}

}  // namespace
}  // namespace dvs::explorer
