// Mutation tests: run the automata EXACTLY AS PRINTED in the paper's
// figures (reverting our corrections) and demonstrate that the
// verification machinery detects the resulting violations. These tests
// prove two things at once: the paper's printed artifacts really are
// broken in the ways EXPERIMENTS.md describes, and our checkers have the
// teeth to catch such bugs.
#include <gtest/gtest.h>

#include "explorer/explorer.h"
#include "explorer/to_explorer.h"

namespace dvs::explorer {
namespace {

TEST(MutationTest, PrintedFigure3FailsTheRefinement) {
  // Figure 3 as printed (no deliver-before-safe, no drain-before-attempt)
  // emits DVS-SAFE indications the DVS specification forbids. The step-wise
  // refinement checker must catch it within a modest seed scan.
  impl::VsToDvsOptions printed;
  printed.printed_figure_mode = true;
  ExplorerConfig config;
  config.steps = 1500;
  bool caught = false;
  std::string what;
  for (std::uint64_t seed = 1; seed <= 40 && !caught; ++seed) {
    DvsImplExplorer ex(make_universe(2), initial_view(make_universe(2)),
                       config, seed, printed);
    try {
      (void)ex.run();
    } catch (const ExplorationFailure& e) {
      caught = true;
      what = e.what();
    }
  }
  ASSERT_TRUE(caught) << "the printed Figure 3 behaviour went undetected";
  EXPECT_NE(what.find("DVS-SAFE"), std::string::npos) << what;
}

TEST(MutationTest, PrintedFigure5ViolatesTotalOrder) {
  // Figure 5 as printed (labelling during recovery; order-appends racing
  // the state exchange) produces duplicate / divergent client deliveries.
  // The TO trace acceptor must reject within a modest seed scan. The
  // corrected automaton must pass the same scan (the sweeps in
  // test_explorer.cpp).
  toimpl::DvsToToOptions printed;
  printed.printed_figure_mode = true;
  ExplorerConfig config;
  config.steps = 2000;
  bool caught = false;
  std::string what;
  for (std::uint64_t seed = 1; seed <= 40 && !caught; ++seed) {
    ToImplExplorer ex(make_universe(2), initial_view(make_universe(2)),
                      config, seed, printed);
    try {
      (void)ex.run();
    } catch (const ExplorationFailure& e) {
      caught = true;
      what = e.what();
    }
  }
  ASSERT_TRUE(caught) << "the printed Figure 5 behaviour went undetected";
  EXPECT_NE(what.find("Theorem 6.4"), std::string::npos) << what;
}

TEST(MutationTest, CorrectedAutomataPassTheSameScan) {
  // Control: identical scans with the corrections enabled find nothing.
  ExplorerConfig config;
  config.steps = 1500;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DvsImplExplorer a(make_universe(2), initial_view(make_universe(2)),
                      config, seed);
    EXPECT_NO_THROW((void)a.run()) << "seed " << seed;
    ToImplExplorer b(make_universe(2), initial_view(make_universe(2)),
                     config, seed);
    EXPECT_NO_THROW((void)b.run()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dvs::explorer
