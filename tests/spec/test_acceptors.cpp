// Tests for the trace acceptors: valid traces accepted, invalid rejected
// with a diagnosis.
#include <gtest/gtest.h>

#include "spec/acceptors.h"

namespace dvs::spec {
namespace {

ClientMsg opaque(std::uint64_t uid, unsigned sender) {
  return ClientMsg{OpaqueMsg{uid, ProcessId{sender}}};
}

View mkview(std::uint64_t epoch, unsigned origin,
            std::initializer_list<unsigned> members) {
  return View{ViewId{epoch, ProcessId{origin}}, make_process_set(members)};
}

class DvsAcceptorTest : public ::testing::Test {
 protected:
  DvsAcceptorTest()
      : universe_(make_universe(3)),
        v0_(initial_view(universe_)),
        acc_(universe_, v0_) {}

  ProcessSet universe_;
  View v0_;
  DvsAcceptor acc_;
};

TEST_F(DvsAcceptorTest, AcceptsBroadcastDeliverSafeSequence) {
  std::vector<DvsEvent> trace;
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(1, 0)});
  for (unsigned q : {0u, 1u, 2u}) {
    trace.push_back(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{q}, opaque(1, 0)});
  }
  for (unsigned q : {0u, 1u, 2u}) {
    trace.push_back(EvSafe<ClientMsg>{ProcessId{0}, ProcessId{q}, opaque(1, 0)});
  }
  const AcceptResult r = acc_.feed_all(trace);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(acc_.events_accepted(), trace.size());
}

TEST_F(DvsAcceptorTest, RejectsDeliveryWithoutSend) {
  const AcceptResult r =
      acc_.feed(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{1}, opaque(7, 0)});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("never sent"), std::string::npos);
}

TEST_F(DvsAcceptorTest, RejectsDivergentDeliveryOrders) {
  std::vector<DvsEvent> trace;
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(1, 0)});
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{1}, opaque(2, 1)});
  // q0 commits the total order (1 then 2); q1 then tries to start with 2.
  trace.push_back(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{0}, opaque(1, 0)});
  trace.push_back(EvGprcv<ClientMsg>{ProcessId{1}, ProcessId{0}, opaque(2, 1)});
  ASSERT_TRUE(acc_.feed_all(trace).ok);
  const AcceptResult r =
      acc_.feed(EvGprcv<ClientMsg>{ProcessId{1}, ProcessId{1}, opaque(2, 1)});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("total order"), std::string::npos);
}

TEST_F(DvsAcceptorTest, RejectsSenderFifoViolation) {
  std::vector<DvsEvent> trace;
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(1, 0)});
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(2, 0)});
  ASSERT_TRUE(acc_.feed_all(trace).ok);
  const AcceptResult r =
      acc_.feed(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{1}, opaque(2, 0)});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("FIFO"), std::string::npos);
}

TEST_F(DvsAcceptorTest, AcceptsSafeBeforeOtherClientsDeliver) {
  // Corrected DVS semantics (see spec/dvs_spec.h): a safe indication means
  // node-level receipt at all members; other *clients* may still lag, and
  // the acceptor inserts the internal DVS-RECEIVE steps greedily.
  std::vector<DvsEvent> trace;
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(1, 0)});
  trace.push_back(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{0}, opaque(1, 0)});
  ASSERT_TRUE(acc_.feed_all(trace).ok);
  const AcceptResult r =
      acc_.feed(EvSafe<ClientMsg>{ProcessId{0}, ProcessId{0}, opaque(1, 0)});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(DvsAcceptorTest, RejectsSafeOfUnsentMessage) {
  const AcceptResult r =
      acc_.feed(EvSafe<ClientMsg>{ProcessId{0}, ProcessId{1}, opaque(7, 0)});
  EXPECT_FALSE(r.ok);
}

TEST_F(DvsAcceptorTest, RejectsSafeOutOfOrder) {
  std::vector<DvsEvent> trace;
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(1, 0)});
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{1}, opaque(2, 1)});
  trace.push_back(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{0}, opaque(1, 0)});
  trace.push_back(EvGprcv<ClientMsg>{ProcessId{1}, ProcessId{0}, opaque(2, 1)});
  ASSERT_TRUE(acc_.feed_all(trace).ok);
  // Safe for the second message cannot precede safe for the first.
  const AcceptResult r =
      acc_.feed(EvSafe<ClientMsg>{ProcessId{1}, ProcessId{0}, opaque(2, 1)});
  EXPECT_FALSE(r.ok);
}

TEST_F(DvsAcceptorTest, AcceptsPrimaryViewChangeAndRegistration) {
  std::vector<DvsEvent> trace;
  const View v1 = mkview(1, 0, {0, 1});
  trace.push_back(EvNewview{ProcessId{0}, v1});
  trace.push_back(EvNewview{ProcessId{1}, v1});
  trace.push_back(EvRegister{ProcessId{0}});
  trace.push_back(EvRegister{ProcessId{1}});
  // After v1 is totally registered, a disjoint later view is legal.
  const View v2 = mkview(2, 0, {0, 1});
  trace.push_back(EvNewview{ProcessId{0}, v2});
  const AcceptResult r = acc_.feed_all(trace);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(DvsAcceptorTest, RejectsDisjointPrimaryWithoutSeparation) {
  const View v1 = mkview(1, 0, {0, 1});
  ASSERT_TRUE(acc_.feed(EvNewview{ProcessId{0}, v1}).ok);
  // {2} is disjoint from v1 with no totally registered view between.
  const View bad = mkview(2, 2, {2});
  const AcceptResult r = acc_.feed(EvNewview{ProcessId{2}, bad});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("CREATEVIEW"), std::string::npos);
}

TEST_F(DvsAcceptorTest, RejectsOutOfOrderViewReports) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  const View v2 = mkview(2, 0, {0, 1, 2});
  ASSERT_TRUE(acc_.feed(EvNewview{ProcessId{0}, v2}).ok);
  ASSERT_TRUE(acc_.feed(EvNewview{ProcessId{1}, v1}).ok);  // other process OK
  const AcceptResult r = acc_.feed(EvNewview{ProcessId{0}, v1});
  EXPECT_FALSE(r.ok);  // p0 already at v2
}

TEST_F(DvsAcceptorTest, RejectsTwoViewsWithSameId) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  ASSERT_TRUE(acc_.feed(EvNewview{ProcessId{0}, v1}).ok);
  const View clash = mkview(1, 0, {0, 1});
  const AcceptResult r = acc_.feed(EvNewview{ProcessId{1}, clash});
  EXPECT_FALSE(r.ok);
}

TEST_F(DvsAcceptorTest, MessagesDoNotCrossViews) {
  // A message sent in v0 must not be delivered to a process already in v1.
  std::vector<DvsEvent> trace;
  trace.push_back(EvGpsnd<ClientMsg>{ProcessId{0}, opaque(1, 0)});
  const View v1 = mkview(1, 0, {0, 1, 2});
  trace.push_back(EvNewview{ProcessId{1}, v1});
  ASSERT_TRUE(acc_.feed_all(trace).ok);
  const AcceptResult r =
      acc_.feed(EvGprcv<ClientMsg>{ProcessId{0}, ProcessId{1}, opaque(1, 0)});
  EXPECT_FALSE(r.ok);  // p1's current view is v1; message was sent in v0
}

class VsAcceptorTest : public ::testing::Test {
 protected:
  VsAcceptorTest()
      : universe_(make_universe(3)),
        v0_(initial_view(universe_)),
        acc_(universe_, v0_) {}

  ProcessSet universe_;
  View v0_;
  VsAcceptor acc_;
};

TEST_F(VsAcceptorTest, AcceptsOutOfOrderFirstReports) {
  // VS creates views in id order internally, but first reports may be
  // observed out of order across processes; the acceptor handles this via
  // retroactive creation.
  const View v1 = mkview(1, 0, {0, 1});
  const View v2 = mkview(2, 0, {0, 1, 2});
  ASSERT_TRUE(acc_.feed(VsEvent{EvNewview{ProcessId{0}, v2}}).ok);
  const AcceptResult r = acc_.feed(VsEvent{EvNewview{ProcessId{1}, v1}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(VsAcceptorTest, RejectsRegisterEvents) {
  const AcceptResult r = acc_.feed(VsEvent{EvRegister{ProcessId{0}}});
  EXPECT_FALSE(r.ok);
}

TEST_F(VsAcceptorTest, AcceptsServiceMessages) {
  // VS carries non-client messages too.
  const Msg info{InfoMsg{v0_, {}}};
  ASSERT_TRUE(acc_.feed(VsEvent{EvGpsnd<Msg>{ProcessId{0}, info}}).ok);
  for (unsigned q : {0u, 1u, 2u}) {
    const AcceptResult r =
        acc_.feed(VsEvent{EvGprcv<Msg>{ProcessId{0}, ProcessId{q}, info}});
    EXPECT_TRUE(r.ok) << r.error;
  }
}

TEST(ToAcceptorTest, AcceptsConsistentTotalOrder) {
  ToAcceptor acc(make_universe(3));
  const AppMsg a{1, ProcessId{0}, "x"};
  const AppMsg b{2, ProcessId{1}, "y"};
  std::vector<ToEvent> trace;
  trace.push_back(EvBcast{ProcessId{0}, a});
  trace.push_back(EvBcast{ProcessId{1}, b});
  for (unsigned q : {0u, 1u, 2u}) {
    trace.push_back(EvBrcv{ProcessId{1}, ProcessId{q}, b});
    trace.push_back(EvBrcv{ProcessId{0}, ProcessId{q}, a});
  }
  const AcceptResult r = acc.feed_all(trace);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ToAcceptorTest, RejectsInconsistentOrders) {
  ToAcceptor acc(make_universe(2));
  const AppMsg a{1, ProcessId{0}, "x"};
  const AppMsg b{2, ProcessId{1}, "y"};
  ASSERT_TRUE(acc.feed(EvBcast{ProcessId{0}, a}).ok);
  ASSERT_TRUE(acc.feed(EvBcast{ProcessId{1}, b}).ok);
  ASSERT_TRUE(acc.feed(EvBrcv{ProcessId{0}, ProcessId{0}, a}).ok);
  const AcceptResult r = acc.feed(EvBrcv{ProcessId{1}, ProcessId{1}, b});
  EXPECT_FALSE(r.ok);  // p1 skipped a in the total order
}

TEST(ToAcceptorTest, RejectsUnsentDelivery) {
  ToAcceptor acc(make_universe(2));
  const AcceptResult r =
      acc.feed(EvBrcv{ProcessId{0}, ProcessId{1}, AppMsg{9, ProcessId{0}, ""}});
  EXPECT_FALSE(r.ok);
}

TEST(ToAcceptorTest, PrefixDeliveryIsFine) {
  ToAcceptor acc(make_universe(3));
  const AppMsg a{1, ProcessId{0}, "x"};
  ASSERT_TRUE(acc.feed(EvBcast{ProcessId{0}, a}).ok);
  // Only one receiver ever delivers: still a valid TO trace (others lag).
  EXPECT_TRUE(acc.feed(EvBrcv{ProcessId{0}, ProcessId{2}, a}).ok);
}

}  // namespace
}  // namespace dvs::spec
