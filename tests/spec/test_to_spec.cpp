// Unit tests for the TO broadcast specification automaton.
#include <gtest/gtest.h>

#include "common/check.h"
#include "spec/to_spec.h"

namespace dvs::spec {
namespace {

AppMsg am(std::uint64_t uid, unsigned origin) {
  return AppMsg{uid, ProcessId{origin}, ""};
}

TEST(ToSpecTest, OrderCommitsOneGlobalSequence) {
  ToSpec to(make_universe(3));
  to.apply_bcast(am(1, 0), ProcessId{0});
  to.apply_bcast(am(2, 1), ProcessId{1});
  EXPECT_TRUE(to.can_order(ProcessId{0}));
  EXPECT_TRUE(to.can_order(ProcessId{1}));
  to.apply_order(ProcessId{1});
  to.apply_order(ProcessId{0});
  ASSERT_EQ(to.queue().size(), 2u);
  EXPECT_EQ(to.queue()[0].first, am(2, 1));
  EXPECT_EQ(to.queue()[1].first, am(1, 0));
}

TEST(ToSpecTest, EachReceiverConsumesAPrefix) {
  ToSpec to(make_universe(2));
  to.apply_bcast(am(1, 0), ProcessId{0});
  to.apply_bcast(am(2, 0), ProcessId{0});
  to.apply_order(ProcessId{0});
  to.apply_order(ProcessId{0});
  // p1 consumes both; p0 consumes one.
  EXPECT_EQ(to.apply_brcv(ProcessId{1}).first, am(1, 0));
  EXPECT_EQ(to.apply_brcv(ProcessId{1}).first, am(2, 0));
  EXPECT_FALSE(to.next_brcv(ProcessId{1}).has_value());
  EXPECT_EQ(to.apply_brcv(ProcessId{0}).first, am(1, 0));
  EXPECT_EQ(to.next(ProcessId{0}), 2u);
  EXPECT_EQ(to.next(ProcessId{1}), 3u);
}

TEST(ToSpecTest, PerSenderFifoThroughPending) {
  ToSpec to(make_universe(2));
  to.apply_bcast(am(1, 0), ProcessId{0});
  to.apply_bcast(am(2, 0), ProcessId{0});
  to.apply_order(ProcessId{0});
  // Only the first can have been ordered.
  EXPECT_EQ(to.queue().front().first, am(1, 0));
  EXPECT_EQ(to.pending(ProcessId{0}).front(), am(2, 0));
}

TEST(ToSpecTest, DisabledActionsThrow) {
  ToSpec to(make_universe(2));
  EXPECT_FALSE(to.can_order(ProcessId{0}));
  EXPECT_THROW(to.apply_order(ProcessId{0}), PreconditionViolation);
  EXPECT_THROW((void)to.apply_brcv(ProcessId{0}), PreconditionViolation);
}

}  // namespace
}  // namespace dvs::spec
