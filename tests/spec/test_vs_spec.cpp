// Unit tests for the VS specification automaton (Figure 1).
#include <gtest/gtest.h>

#include "common/check.h"
#include "spec/vs_spec.h"

namespace dvs::spec {
namespace {

Msg opaque(std::uint64_t uid, unsigned sender) {
  return Msg{OpaqueMsg{uid, ProcessId{sender}}};
}

class VsSpecTest : public ::testing::Test {
 protected:
  VsSpecTest()
      : universe_(make_universe(3)),
        v0_(initial_view(universe_)),
        vs_(universe_, v0_) {}

  ProcessSet universe_;
  View v0_;
  VsSpec vs_;
};

TEST_F(VsSpecTest, InitialState) {
  ASSERT_EQ(vs_.created().size(), 1u);
  EXPECT_EQ(vs_.created().begin()->second, v0_);
  for (ProcessId p : universe_) {
    ASSERT_TRUE(vs_.current_viewid(p).has_value());
    EXPECT_EQ(*vs_.current_viewid(p), ViewId::initial());
  }
  vs_.check_invariants();
}

TEST_F(VsSpecTest, ProcessOutsideInitialViewHasNoView) {
  ProcessSet p0 = make_process_set({0, 1});
  VsSpec vs(make_universe(3), View{ViewId::initial(), p0});
  EXPECT_FALSE(vs.current_viewid(ProcessId{2}).has_value());
}

TEST_F(VsSpecTest, CreateviewRequiresIncreasingIds) {
  const View v1{ViewId{1, ProcessId{0}}, make_process_set({0, 1})};
  EXPECT_TRUE(vs_.can_createview(v1));
  vs_.apply_createview(v1);
  // Same id again is rejected.
  EXPECT_FALSE(vs_.can_createview(v1));
  // A lower id is rejected.
  const View older{ViewId{0, ProcessId{2}}, make_process_set({2})};
  EXPECT_FALSE(vs_.can_createview(older));
  // Applying a disabled action throws.
  EXPECT_THROW(vs_.apply_createview(older), PreconditionViolation);
}

TEST_F(VsSpecTest, NewviewOnlyToMembersInIdOrder) {
  const View v1{ViewId{1, ProcessId{0}}, make_process_set({0, 1})};
  vs_.apply_createview(v1);
  EXPECT_TRUE(vs_.can_newview(v1, ProcessId{0}));
  EXPECT_FALSE(vs_.can_newview(v1, ProcessId{2}));  // not a member
  vs_.apply_newview(v1, ProcessId{0});
  EXPECT_EQ(*vs_.current_viewid(ProcessId{0}), v1.id());
  // Cannot be re-notified of the same view.
  EXPECT_FALSE(vs_.can_newview(v1, ProcessId{0}));
}

TEST_F(VsSpecTest, NewviewSkippingIsAllowed) {
  const View v1{ViewId{1, ProcessId{0}}, make_process_set({0, 1})};
  const View v2{ViewId{2, ProcessId{0}}, make_process_set({0, 1, 2})};
  vs_.apply_createview(v1);
  vs_.apply_createview(v2);
  // p0 may go straight to v2 without ever seeing v1.
  vs_.apply_newview(v2, ProcessId{0});
  EXPECT_FALSE(vs_.can_newview(v1, ProcessId{0}));  // older than current
  EXPECT_TRUE(vs_.can_newview(v1, ProcessId{1}));
}

TEST_F(VsSpecTest, SendOrderDeliverWithinView) {
  const ProcessId p0{0};
  const ProcessId p1{1};
  vs_.apply_gpsnd(opaque(1, 0), p0);
  vs_.apply_gpsnd(opaque(2, 0), p0);
  EXPECT_EQ(vs_.pending(p0, ViewId::initial()).size(), 2u);

  // Nothing deliverable before ordering.
  EXPECT_FALSE(vs_.next_gprcv(p1).has_value());
  ASSERT_TRUE(vs_.can_order(p0, ViewId::initial()));
  vs_.apply_order(p0, ViewId::initial());
  auto delivery = vs_.next_gprcv(p1);
  ASSERT_TRUE(delivery.has_value());
  EXPECT_EQ(delivery->first, opaque(1, 0));
  EXPECT_EQ(delivery->second, p0);
  vs_.apply_gprcv(p1);
  // FIFO per sender: second message delivered second.
  vs_.apply_order(p0, ViewId::initial());
  auto second = vs_.next_gprcv(p1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, opaque(2, 0));
}

TEST_F(VsSpecTest, EachReceiverSeesTheSamePrefix) {
  const ProcessId p0{0};
  vs_.apply_gpsnd(opaque(1, 0), p0);
  vs_.apply_gpsnd(opaque(2, 1), ProcessId{1});
  vs_.apply_order(ProcessId{1}, ViewId::initial());
  vs_.apply_order(p0, ViewId::initial());
  // Order committed: uid 2 (from p1) first, then uid 1.
  for (ProcessId q : universe_) {
    auto d1 = vs_.next_gprcv(q);
    ASSERT_TRUE(d1.has_value());
    EXPECT_EQ(d1->first, opaque(2, 1));
    vs_.apply_gprcv(q);
    auto d2 = vs_.next_gprcv(q);
    ASSERT_TRUE(d2.has_value());
    EXPECT_EQ(d2->first, opaque(1, 0));
    vs_.apply_gprcv(q);
  }
}

TEST_F(VsSpecTest, SafeRequiresAllMembersToHaveReceived) {
  const ProcessId p0{0};
  vs_.apply_gpsnd(opaque(1, 0), p0);
  vs_.apply_order(p0, ViewId::initial());
  // Deliver at p0 and p1 only.
  vs_.apply_gprcv(ProcessId{0});
  vs_.apply_gprcv(ProcessId{1});
  EXPECT_FALSE(vs_.next_safe_indication(ProcessId{0}).has_value());
  // After the last member receives, safe becomes enabled everywhere.
  vs_.apply_gprcv(ProcessId{2});
  for (ProcessId q : universe_) {
    auto s = vs_.next_safe_indication(q);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->first, opaque(1, 0));
    vs_.apply_safe(q);
    EXPECT_FALSE(vs_.next_safe_indication(q).has_value());
  }
}

TEST_F(VsSpecTest, MessagesSentInOldViewNotDeliveredInNew) {
  const ProcessId p0{0};
  vs_.apply_gpsnd(opaque(1, 0), p0);
  vs_.apply_order(p0, ViewId::initial());
  const View v1{ViewId{1, ProcessId{0}}, universe_};
  vs_.apply_createview(v1);
  vs_.apply_newview(v1, p0);
  // p0 now has view v1; the old view's queue is no longer visible to it.
  EXPECT_FALSE(vs_.next_gprcv(p0).has_value());
  // p1 still in v0 can receive.
  EXPECT_TRUE(vs_.next_gprcv(ProcessId{1}).has_value());
  // A message sent by p0 now goes to v1's queue.
  vs_.apply_gpsnd(opaque(2, 0), p0);
  EXPECT_EQ(vs_.pending(p0, v1.id()).size(), 1u);
  EXPECT_TRUE(vs_.pending(p0, ViewId::initial()).empty());
}

TEST_F(VsSpecTest, SafeNeedsCreatedViewMembership) {
  // A member that moved to a later view no longer gets safe indications for
  // the old one, and safe in the new view requires all new members.
  const View v1{ViewId{1, ProcessId{0}}, make_process_set({0, 1})};
  vs_.apply_createview(v1);
  vs_.apply_newview(v1, ProcessId{0});
  vs_.apply_newview(v1, ProcessId{1});
  vs_.apply_gpsnd(opaque(5, 0), ProcessId{0});
  vs_.apply_order(ProcessId{0}, v1.id());
  vs_.apply_gprcv(ProcessId{0});
  EXPECT_FALSE(vs_.next_safe_indication(ProcessId{0}).has_value());
  vs_.apply_gprcv(ProcessId{1});
  EXPECT_TRUE(vs_.next_safe_indication(ProcessId{0}).has_value());
  EXPECT_TRUE(vs_.next_safe_indication(ProcessId{1}).has_value());
}

TEST_F(VsSpecTest, ForceCreateviewAllowsRetroactiveIds) {
  const View v2{ViewId{2, ProcessId{0}}, make_process_set({0, 1})};
  vs_.apply_createview(v2);
  const View v1{ViewId{1, ProcessId{0}}, make_process_set({0, 2})};
  EXPECT_FALSE(vs_.can_createview(v1));
  vs_.force_createview(v1);
  EXPECT_EQ(vs_.created().size(), 3u);
  // Duplicate ids still rejected.
  EXPECT_THROW(vs_.force_createview(v1), PreconditionViolation);
  vs_.check_invariants();
}

TEST_F(VsSpecTest, SendWithNoViewIsDropped) {
  ProcessSet p0 = make_process_set({0, 1});
  VsSpec vs(make_universe(3), View{ViewId::initial(), p0});
  vs.apply_gpsnd(opaque(1, 2), ProcessId{2});  // p2 has no view
  EXPECT_TRUE(vs.pending(ProcessId{2}, ViewId::initial()).empty());
}

}  // namespace
}  // namespace dvs::spec
