// Unit tests for the DVS specification automaton (Figure 2), focused on the
// dynamic-primary CREATEVIEW precondition and Invariants 4.1 / 4.2.
#include <gtest/gtest.h>

#include "common/check.h"
#include "spec/dvs_spec.h"

namespace dvs::spec {
namespace {

ClientMsg opaque(std::uint64_t uid, unsigned sender) {
  return ClientMsg{OpaqueMsg{uid, ProcessId{sender}}};
}

View mkview(std::uint64_t epoch, unsigned origin,
            std::initializer_list<unsigned> members) {
  return View{ViewId{epoch, ProcessId{origin}}, make_process_set(members)};
}

class DvsSpecTest : public ::testing::Test {
 protected:
  DvsSpecTest()
      : universe_(make_universe(5)),
        v0_{ViewId::initial(), make_process_set({0, 1, 2, 3, 4})},
        dvs_(universe_, v0_) {}

  /// Makes every member of `v` see and register `v` (v must be created).
  void attempt_and_register_everywhere(const View& v) {
    for (ProcessId p : v.set()) {
      if (dvs_.can_newview(v, p)) dvs_.apply_newview(v, p);
      dvs_.apply_register(p);
    }
  }

  ProcessSet universe_;
  View v0_;
  DvsSpec dvs_;
};

TEST_F(DvsSpecTest, InitialStateIsTotallyRegistered) {
  ASSERT_EQ(dvs_.tot_reg().size(), 1u);
  EXPECT_EQ(dvs_.tot_reg().front(), v0_);
  EXPECT_EQ(dvs_.tot_att().size(), 1u);
  dvs_.check_invariants();
}

TEST_F(DvsSpecTest, CreateviewRequiresIntersectionWithUnseparatedViews) {
  // {0,1,2} intersects v0: allowed.
  const View v1 = mkview(1, 0, {0, 1, 2});
  EXPECT_TRUE(dvs_.can_createview(v1));
  dvs_.apply_createview(v1);
  // {3,4} does not intersect v1 and no totally registered view separates
  // them: forbidden.
  const View bad = mkview(2, 3, {3, 4});
  EXPECT_FALSE(dvs_.can_createview(bad));
  EXPECT_THROW(dvs_.apply_createview(bad), PreconditionViolation);
}

TEST_F(DvsSpecTest, TotallyRegisteredViewLiftsTheIntersectionObligation) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  attempt_and_register_everywhere(v1);
  ASSERT_EQ(dvs_.tot_reg().size(), 2u);
  // {3,4} is disjoint from v1 but still intersects nothing between v1 and
  // it... there is no TotReg view strictly between v1 and the candidate, and
  // the candidate does not intersect v1 → still forbidden.
  EXPECT_FALSE(dvs_.can_createview(mkview(2, 3, {3, 4})));
  // A view intersecting v1 is fine.
  const View v2 = mkview(2, 0, {2, 3});
  EXPECT_TRUE(dvs_.can_createview(v2));
  dvs_.apply_createview(v2);
  attempt_and_register_everywhere(v2);
  // Now v2 ∈ TotReg separates v1 from later views: a view disjoint from v1
  // (but intersecting v2) is allowed.
  const View v3 = mkview(3, 3, {3, 4});
  EXPECT_TRUE(dvs_.can_createview(v3));
  dvs_.apply_createview(v3);
  dvs_.check_invariants();
}

TEST_F(DvsSpecTest, DuplicateIdsRejected) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  EXPECT_FALSE(dvs_.can_createview(mkview(1, 0, {0, 1})));
}

TEST_F(DvsSpecTest, OutOfOrderCreationIsAllowed) {
  const View v5 = mkview(5, 0, {0, 1, 2});
  dvs_.apply_createview(v5);
  // An id between g0 and v5 is allowed if it intersects both neighbours.
  const View v3 = mkview(3, 1, {1, 2, 3});
  EXPECT_TRUE(dvs_.can_createview(v3));
  dvs_.apply_createview(v3);
  dvs_.check_invariants();
  // But a view between them that is disjoint from v5 is rejected.
  EXPECT_FALSE(dvs_.can_createview(mkview(4, 3, {3, 4})));
}

TEST_F(DvsSpecTest, NewviewRecordsAttemptAndAdvancesClientView) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  EXPECT_TRUE(dvs_.att().size() == 1);  // only v0
  dvs_.apply_newview(v1, ProcessId{0});
  EXPECT_EQ(dvs_.attempted(v1.id()), make_process_set({0}));
  EXPECT_EQ(*dvs_.current_viewid(ProcessId{0}), v1.id());
  EXPECT_EQ(dvs_.att().size(), 2u);
  EXPECT_EQ(dvs_.tot_att().size(), 1u);
  dvs_.apply_newview(v1, ProcessId{1});
  dvs_.apply_newview(v1, ProcessId{2});
  EXPECT_EQ(dvs_.tot_att().size(), 2u);
}

TEST_F(DvsSpecTest, RegisterAppliesToCurrentViewOnly) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  dvs_.apply_newview(v1, ProcessId{0});
  dvs_.apply_register(ProcessId{0});
  EXPECT_EQ(dvs_.registered(v1.id()), make_process_set({0}));
  // p3 still has v0 current: registering re-registers v0.
  dvs_.apply_register(ProcessId{3});
  EXPECT_TRUE(dvs_.registered(ViewId::initial()).contains(ProcessId{3}));
}

TEST_F(DvsSpecTest, MessageFlowWithinPrimaryView) {
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  for (unsigned i : {0u, 1u, 2u}) dvs_.apply_newview(v1, ProcessId{i});

  dvs_.apply_gpsnd(opaque(1, 0), ProcessId{0});
  dvs_.apply_order(ProcessId{0}, v1.id());
  for (unsigned i : {0u, 1u, 2u}) {
    // Corrected spec: the client delivery requires node-level receipt first.
    EXPECT_FALSE(dvs_.next_gprcv(ProcessId{i}).has_value());
    dvs_.apply_receive(ProcessId{i}, v1.id());
    auto d = dvs_.next_gprcv(ProcessId{i});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->first, opaque(1, 0));
    dvs_.apply_gprcv(ProcessId{i});
  }
  // All members received → safe everywhere.
  for (unsigned i : {0u, 1u, 2u}) {
    auto s = dvs_.next_safe_indication(ProcessId{i});
    ASSERT_TRUE(s.has_value());
    dvs_.apply_safe(ProcessId{i});
  }
  dvs_.check_invariants();
}

TEST_F(DvsSpecTest, SafeMayPrecedeClientDeliveryAtOtherMembers) {
  // The corrected safe semantics (reproduction finding; see spec/dvs_spec.h):
  // node-level receipt suffices at *other* members, but the indicated client
  // must have delivered the message itself (deliver-before-safe).
  const View v1 = mkview(1, 0, {0, 1});
  dvs_.apply_createview(v1);
  dvs_.apply_newview(v1, ProcessId{0});
  dvs_.apply_newview(v1, ProcessId{1});
  dvs_.apply_gpsnd(opaque(1, 0), ProcessId{0});
  dvs_.apply_order(ProcessId{0}, v1.id());
  dvs_.apply_receive(ProcessId{0}, v1.id());
  EXPECT_FALSE(dvs_.next_safe_indication(ProcessId{0}).has_value());
  dvs_.apply_receive(ProcessId{1}, v1.id());
  // Both nodes received but p0's client has not delivered yet.
  EXPECT_FALSE(dvs_.next_safe_indication(ProcessId{0}).has_value());
  dvs_.apply_gprcv(ProcessId{0});
  // Now safe is enabled at p0 — even though p1's *client* still lags.
  EXPECT_TRUE(dvs_.next_safe_indication(ProcessId{0}).has_value());
  EXPECT_FALSE(dvs_.next_safe_indication(ProcessId{1}).has_value());
  dvs_.apply_gprcv(ProcessId{1});
  EXPECT_TRUE(dvs_.next_safe_indication(ProcessId{1}).has_value());
}

TEST_F(DvsSpecTest, NewviewBlockedUntilClientDrainsReceipts) {
  // Corrected drain-before-attempt precondition: a member whose node has
  // received messages its client has not consumed cannot move to the next
  // view.
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  for (unsigned i : {0u, 1u, 2u}) dvs_.apply_newview(v1, ProcessId{i});
  dvs_.apply_gpsnd(opaque(1, 0), ProcessId{0});
  dvs_.apply_order(ProcessId{0}, v1.id());
  dvs_.apply_receive(ProcessId{1}, v1.id());

  const View v2 = mkview(2, 0, {0, 1, 2});
  dvs_.apply_createview(v2);
  EXPECT_TRUE(dvs_.can_newview(v2, ProcessId{0}));   // nothing received
  EXPECT_FALSE(dvs_.can_newview(v2, ProcessId{1}));  // undrained receipt
  dvs_.apply_gprcv(ProcessId{1});
  EXPECT_TRUE(dvs_.can_newview(v2, ProcessId{1}));
}

TEST_F(DvsSpecTest, Invariant41HoldsAcrossAChainOfPrimaries) {
  // Build a chain v0 → v1 → v2 → v3 where each step shrinks or shifts the
  // membership; check Invariant 4.1 after every step.
  View prev = v0_;
  const std::vector<View> chain = {
      mkview(1, 0, {0, 1, 2, 3}),
      mkview(2, 0, {2, 3, 4}),
      mkview(3, 2, {3, 4}),
      mkview(4, 3, {0, 3}),
  };
  for (const View& v : chain) {
    ASSERT_TRUE(dvs_.can_createview(v)) << v.to_string();
    dvs_.apply_createview(v);
    dvs_.check_invariants();
    attempt_and_register_everywhere(v);
    dvs_.check_invariants();
    prev = v;
  }
}

TEST_F(DvsSpecTest, Invariant42DetectsStaleActiveView) {
  // Invariant 4.2: once a later view is totally attempted, some member of
  // each earlier view has moved on. Here all of v1's members move to v2, so
  // the invariant is maintained; verify via the checker after each step.
  const View v1 = mkview(1, 0, {0, 1, 2});
  dvs_.apply_createview(v1);
  attempt_and_register_everywhere(v1);
  const View v2 = mkview(2, 0, {0, 1, 2});
  dvs_.apply_createview(v2);
  for (ProcessId p : v2.set()) {
    dvs_.apply_newview(v2, p);
    dvs_.check_invariants();
  }
  EXPECT_EQ(dvs_.tot_att().size(), 3u);  // v0, v1 and v2
}

TEST_F(DvsSpecTest, SafeBlocksUntilAllMembersReceive) {
  const View v1 = mkview(1, 0, {0, 1});
  dvs_.apply_createview(v1);
  dvs_.apply_newview(v1, ProcessId{0});
  dvs_.apply_newview(v1, ProcessId{1});
  dvs_.apply_gpsnd(opaque(9, 1), ProcessId{1});
  dvs_.apply_order(ProcessId{1}, v1.id());
  dvs_.apply_receive(ProcessId{0}, v1.id());
  dvs_.apply_gprcv(ProcessId{0});
  EXPECT_FALSE(dvs_.next_safe_indication(ProcessId{0}).has_value());
  dvs_.apply_receive(ProcessId{1}, v1.id());
  EXPECT_TRUE(dvs_.next_safe_indication(ProcessId{0}).has_value());
}

}  // namespace
}  // namespace dvs::spec
