// WAL robustness fuzz: adversarially damaged logs (bit flips anywhere,
// truncation at every byte, whole-log and per-record duplication) must
// surface as clean prefix recovery — never a crash, a foreign exception, or
// a silently wrong state. This is the contract every layer journal relies
// on: a torn tail after a crash is indistinguishable from corruption, so
// read_wal returns the longest CRC-verified prefix and replay is idempotent.
//
// Coverage:
//   * golden frame bytes pinned to hex (the on-disk format is an interface);
//   * frame/read_wal round trips, store-level corrupt-tail recovery;
//   * bit-flip-every-bit and truncate-at-every-byte prefix properties;
//   * MemStableStore / FileStableStore basics (stats, barriers, reopen);
//   * layer journals produced by a real persistent cluster run: recover()
//     equals the live automaton's durable_state(), and recover() of the
//     duplicated log (whole-log doubling and per-record doubling) equals
//     recover() of the original — duplicate records are legal;
//   * the exchange snapshot codec via restore → attach → recover.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "dvsys/dvs_node.h"
#include "dvsys/exchange_node.h"
#include "storage/file_store.h"
#include "storage/stable_store.h"
#include "storage/wal.h"
#include "tosys/cluster.h"
#include "tosys/to_node.h"
#include "vsys/vs_node.h"

namespace dvs::storage {
namespace {

using sim::kMillisecond;
using sim::kSecond;

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::byte>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string to_hex(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::byte x : b) {
    out += digits[std::to_integer<unsigned>(x) >> 4];
    out += digits[std::to_integer<unsigned>(x) & 0xF];
  }
  return out;
}

/// A small log of records with distinctive payloads, for damage sweeps.
Bytes sample_log(std::vector<WalRecord>* originals = nullptr) {
  Bytes log;
  for (std::uint8_t i = 1; i <= 5; ++i) {
    const Bytes rec = Wal::frame(i, [i](Writer& w) {
      w.u64(0x1000 + i);
      w.str(std::string(i * 3, static_cast<char>('a' + i)));
    });
    if (originals != nullptr) {
      WalContents one = read_wal(rec);
      originals->push_back(one.records.at(0));
    }
    log.insert(log.end(), rec.begin(), rec.end());
  }
  return log;
}

/// Re-frames a decoded record byte-identically (local copy of the framing
/// rules, so the test notices if Wal::frame drifts from the documented
/// format).
Bytes reframe(const WalRecord& r) {
  Bytes out;
  out.push_back(static_cast<std::byte>(kWalMagic));
  out.push_back(static_cast<std::byte>(r.type));
  std::uint64_t v = r.payload.size();
  do {
    std::uint8_t b = v & 0x7F;
    v >>= 7;
    if (v != 0) b |= 0x80;
    out.push_back(static_cast<std::byte>(b));
  } while (v != 0);
  out.insert(out.end(), r.payload.begin(), r.payload.end());
  const std::uint32_t c = crc32(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((c >> (8 * i)) & 0xFF));
  }
  return out;
}

// ----- framing -------------------------------------------------------------

TEST(WalFormatTest, GoldenFrameBytes) {
  // The record layout is an on-disk interface: magic 0xD5, type, varuint
  // length, payload, little-endian CRC-32 over magic..payload. Pinned so an
  // accidental format change (which would orphan existing logs) fails here.
  const Bytes rec = Wal::frame(0x07, [](Writer& w) { w.u64(0xDEADBEEF); });
  EXPECT_EQ(to_hex(rec), "d50708efbeadde000000004c8c76f5");
}

TEST(WalFormatTest, FrameRoundTrip) {
  std::vector<WalRecord> originals;
  const Bytes log = sample_log(&originals);
  const WalContents c = read_wal(log);
  ASSERT_EQ(c.records.size(), originals.size());
  EXPECT_FALSE(c.corrupt_tail);
  EXPECT_EQ(c.bytes_consumed, log.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(c.records[i].type, originals[i].type);
    EXPECT_EQ(c.records[i].payload, originals[i].payload);
  }
  // reframe() reproduces the original log byte-for-byte.
  Bytes rebuilt;
  for (const WalRecord& r : c.records) {
    const Bytes f = reframe(r);
    rebuilt.insert(rebuilt.end(), f.begin(), f.end());
  }
  EXPECT_EQ(rebuilt, log);
}

TEST(WalFormatTest, EmptyAndAbsentLogsDecodeEmpty) {
  EXPECT_TRUE(read_wal(Bytes{}).records.empty());
  EXPECT_FALSE(read_wal(Bytes{}).corrupt_tail);
  MemStableStore store;
  const WalContents c = read_wal(store, "never-written");
  EXPECT_TRUE(c.records.empty());
  EXPECT_FALSE(c.corrupt_tail);
}

// ----- damage sweeps -------------------------------------------------------

TEST(WalFuzzTest, BitFlipAnywhereYieldsVerifiedPrefix) {
  std::vector<WalRecord> originals;
  const Bytes log = sample_log(&originals);
  // Record extents, so a flip position maps to the record it damages.
  std::vector<std::size_t> ends;  // end offset of record i
  {
    Bytes prefix;
    for (const WalRecord& r : originals) {
      const Bytes f = reframe(r);
      prefix.insert(prefix.end(), f.begin(), f.end());
      ends.push_back(prefix.size());
    }
  }
  for (std::size_t pos = 0; pos < log.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes damaged = log;
      damaged[pos] ^= static_cast<std::byte>(1u << bit);
      WalContents c;
      ASSERT_NO_THROW(c = read_wal(damaged)) << "pos=" << pos << " bit=" << bit;
      // The damaged record's index: first record whose extent covers pos.
      std::size_t damaged_idx = 0;
      while (ends[damaged_idx] <= pos) ++damaged_idx;
      // Everything before the damaged record survives; the damaged record
      // and everything after it never reappear as modified-but-valid.
      ASSERT_LE(c.records.size(), damaged_idx)
          << "pos=" << pos << " bit=" << bit;
      for (std::size_t i = 0; i < c.records.size(); ++i) {
        EXPECT_EQ(c.records[i].type, originals[i].type);
        EXPECT_EQ(c.records[i].payload, originals[i].payload);
      }
      EXPECT_TRUE(c.corrupt_tail) << "pos=" << pos << " bit=" << bit;
    }
  }
}

TEST(WalFuzzTest, TruncateAtEveryByteYieldsVerifiedPrefix) {
  std::vector<WalRecord> originals;
  const Bytes log = sample_log(&originals);
  std::vector<std::size_t> ends;
  {
    Bytes prefix;
    for (const WalRecord& r : originals) {
      const Bytes f = reframe(r);
      prefix.insert(prefix.end(), f.begin(), f.end());
      ends.push_back(prefix.size());
    }
  }
  for (std::size_t len = 0; len < log.size(); ++len) {
    const Bytes cut(log.begin(), log.begin() + static_cast<std::ptrdiff_t>(len));
    WalContents c;
    ASSERT_NO_THROW(c = read_wal(cut)) << "len=" << len;
    // Exactly the records whose full extent fits survive.
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= len) ++expect;
    EXPECT_EQ(c.records.size(), expect) << "len=" << len;
    for (std::size_t i = 0; i < c.records.size(); ++i) {
      EXPECT_EQ(c.records[i].payload, originals[i].payload);
    }
    EXPECT_EQ(c.bytes_consumed, expect == 0 ? 0 : ends[expect - 1]);
    EXPECT_EQ(c.corrupt_tail, c.bytes_consumed != len);
  }
}

TEST(WalFuzzTest, GarbageTailOnStoreKeyRecoversPrefix) {
  MemStableStore store;
  Wal wal(store, "k");
  wal.append(1, [](Writer& w) { w.u64(7); });
  wal.append(2, [](Writer& w) { w.str("x"); });
  Bytes raw = *store.load("k");
  const std::size_t clean = raw.size();
  // A torn third record: half a frame, then noise.
  raw.push_back(static_cast<std::byte>(kWalMagic));
  raw.push_back(static_cast<std::byte>(3));
  raw.push_back(static_cast<std::byte>(200));
  store.poke("k", raw);
  const WalContents c = read_wal(store, "k");
  EXPECT_EQ(c.records.size(), 2u);
  EXPECT_EQ(c.bytes_consumed, clean);
  EXPECT_TRUE(c.corrupt_tail);
}

// ----- stable stores -------------------------------------------------------

TEST(StableStoreTest, MemStoreStatsAndBarrierHook) {
  MemStableStore store;
  std::vector<std::string> barriers;
  store.set_barrier_hook([&](const std::string& key) {
    barriers.push_back(key);
  });
  store.append("a", from_hex("0102"));
  store.append("a", from_hex("03"));
  store.replace("a", from_hex("ff"));
  EXPECT_EQ(store.load("a"), from_hex("ff"));
  EXPECT_EQ(store.load("missing"), std::nullopt);
  EXPECT_EQ(store.stats().appends, 2u);
  EXPECT_EQ(store.stats().bytes_appended, 3u);
  EXPECT_EQ(store.stats().replaces, 1u);
  EXPECT_EQ(store.stats().bytes_replaced, 1u);
  EXPECT_EQ(store.stats().bytes_written(), 4u);
  EXPECT_EQ(store.stats().loads, 2u);
  EXPECT_EQ(barriers, (std::vector<std::string>{"a", "a", "a"}));
}

TEST(StableStoreTest, FileStoreRoundTripAndReopen) {
  const std::string root =
      (std::filesystem::path(::testing::TempDir()) / "dvs_wal_fuzz_store")
          .string();
  {
    FileStableStore store(root);
    store.wipe();
    Wal wal(store, "p0/dvs");  // path separator must flatten, not nest
    wal.append(1, [](Writer& w) { w.u64(42); });
    wal.append(2, [](Writer& w) { w.str("hello"); });
    const WalContents c = read_wal(store, "p0/dvs");
    ASSERT_EQ(c.records.size(), 2u);
    EXPECT_FALSE(c.corrupt_tail);
  }
  {
    // A new instance over the same root sees the same bytes (this is the
    // "survives the process" property the benches rely on).
    FileStableStore store(root);
    const WalContents c = read_wal(store, "p0/dvs");
    ASSERT_EQ(c.records.size(), 2u);
    {
      const Bytes& p = c.records[1].payload;
      Reader r(p);
      EXPECT_EQ(r.str(), "hello");
    }
    // replace() truncates wholesale.
    store.replace("p0/dvs", Wal::frame(9, [](Writer& w) { w.u64(1); }));
    EXPECT_EQ(read_wal(store, "p0/dvs").records.size(), 1u);
    store.wipe();
    EXPECT_EQ(store.load("p0/dvs"), std::nullopt);
  }
  std::filesystem::remove_all(root);
}

TEST(StableStoreTest, WalCompactionResetsGrowth) {
  MemStableStore store;
  Wal wal(store, "k");
  for (int i = 0; i < 8; ++i) wal.append(1, [i](Writer& w) { w.u64(i); });
  EXPECT_EQ(wal.records_since_snapshot(), 8u);
  const std::size_t grown = store.load("k")->size();
  wal.snapshot(5, [](Writer& w) { w.u64(99); });
  EXPECT_EQ(wal.records_since_snapshot(), 0u);
  EXPECT_LT(store.load("k")->size(), grown);
  const WalContents c = read_wal(store, "k");
  ASSERT_EQ(c.records.size(), 1u);
  EXPECT_EQ(c.records[0].type, 5u);
  EXPECT_EQ(store.stats().replaces, 1u);
}

// ----- layer journals from a real run -------------------------------------

/// Runs a persistent 3-process cluster with client load and a mid-run
/// partition, so all journals (epoch bumps, act/amb/attempt/register,
/// content/order/establish/confirm) carry real traffic.
tosys::Cluster& persistent_cluster() {
  static tosys::Cluster* cluster = [] {
    tosys::ClusterConfig cfg;
    cfg.n_processes = 3;
    cfg.persistence = true;
    auto* c = new tosys::Cluster(cfg, 1337);
    c->start();
    c->run_for(300 * kMillisecond);
    for (std::uint64_t uid = 1; uid <= 6; ++uid) {
      const ProcessId p{static_cast<std::uint32_t>(uid % 3)};
      c->bcast(p, AppMsg{uid, p, "m"});
    }
    c->run_for(500 * kMillisecond);
    c->net().pause(ProcessId{2});  // force a view change → epoch bumps
    c->run_for(2 * kSecond);
    c->net().resume(ProcessId{2});
    c->run_for(2 * kSecond);
    return c;
  }();
  return *cluster;
}

TEST(LayerJournalTest, RecoverEqualsLiveDurableState) {
  tosys::Cluster& c = persistent_cluster();
  ASSERT_TRUE(c.oracle().ok());
  auto* store = dynamic_cast<MemStableStore*>(c.store());
  ASSERT_NE(store, nullptr);
  for (ProcessId p : c.universe()) {
    const std::string id = p.to_string();
    const std::uint64_t epoch = vsys::VsNode::recover_epoch(*store, id + "/vs");
    EXPECT_GT(epoch, 0u) << id;  // views were installed, epochs journaled
    // DVS: the journal is append-only between compactions while the live
    // automaton garbage-collects amb/attempted/reg — so the recovered state
    // is a *superset* of the live durable knowledge (safe: Invariants
    // 4.1/4.2 quantify over everything ever attempted; extra entries only
    // make the restarted node more conservative). act itself is max-merged
    // and must match exactly.
    const impl::DvsDurableState dvs =
        dvsys::DvsNode::recover(*store, id + "/dvs", p, c.v0());
    const impl::DvsDurableState live =
        c.dvs_node(p).automaton().durable_state();
    EXPECT_EQ(dvs.act, live.act) << id;
    for (const auto& [g, v] : live.amb) {
      auto it = dvs.amb.find(g);
      ASSERT_NE(it, dvs.amb.end()) << id;
      EXPECT_EQ(it->second, v) << id;
    }
    for (const auto& [g, v] : live.attempted) {
      auto it = dvs.attempted.find(g);
      ASSERT_NE(it, dvs.attempted.end()) << id;
      EXPECT_EQ(it->second, v) << id;
    }
    for (const ViewId& g : live.reg) EXPECT_TRUE(dvs.reg.contains(g)) << id;
    const toimpl::ToDurableState to =
        tosys::ToNode::recover(*store, id + "/to");
    EXPECT_EQ(to, c.to_node(p).automaton().durable_state()) << id;
    EXPECT_FALSE(to.order.empty()) << id;  // the load actually got ordered
  }
}

TEST(LayerJournalTest, DuplicatedLogsReplayToSameState) {
  tosys::Cluster& c = persistent_cluster();
  auto* store = dynamic_cast<MemStableStore*>(c.store());
  ASSERT_NE(store, nullptr);
  for (const auto& [key, raw] : store->contents()) {
    // Whole-log doubling (the log replayed twice end-to-end) and in-place
    // per-record doubling (every append written twice) — both are legal
    // under idempotent replay.
    Bytes doubled = raw;
    doubled.insert(doubled.end(), raw.begin(), raw.end());
    Bytes per_record;
    for (const WalRecord& r : read_wal(raw).records) {
      const Bytes f = reframe(r);
      per_record.insert(per_record.end(), f.begin(), f.end());
      per_record.insert(per_record.end(), f.begin(), f.end());
    }
    MemStableStore dup;
    dup.poke(key, doubled);
    MemStableStore dup2;
    dup2.poke(key, per_record);

    const ProcessId p{static_cast<std::uint32_t>(key[1] - '0')};
    if (key.ends_with("/vs")) {
      const std::uint64_t want = vsys::VsNode::recover_epoch(*store, key);
      EXPECT_EQ(vsys::VsNode::recover_epoch(dup, key), want) << key;
      EXPECT_EQ(vsys::VsNode::recover_epoch(dup2, key), want) << key;
    } else if (key.ends_with("/dvs")) {
      const impl::DvsDurableState want =
          dvsys::DvsNode::recover(*store, key, p, c.v0());
      EXPECT_EQ(dvsys::DvsNode::recover(dup, key, p, c.v0()), want) << key;
      EXPECT_EQ(dvsys::DvsNode::recover(dup2, key, p, c.v0()), want) << key;
    } else if (key.ends_with("/to")) {
      const toimpl::ToDurableState want = tosys::ToNode::recover(*store, key);
      EXPECT_EQ(tosys::ToNode::recover(dup, key), want) << key;
      EXPECT_EQ(tosys::ToNode::recover(dup2, key), want) << key;
    }
  }
}

TEST(LayerJournalTest, CorruptedLayerLogsRecoverCleanPrefixes) {
  tosys::Cluster& c = persistent_cluster();
  auto* store = dynamic_cast<MemStableStore*>(c.store());
  ASSERT_NE(store, nullptr);
  // Flip one byte near the end of each log: recover() must not throw and
  // must produce *a* valid durable state (an older prefix of the truth).
  for (const auto& [key, raw] : store->contents()) {
    if (raw.empty()) continue;
    Bytes damaged = raw;
    damaged[raw.size() - 3] ^= static_cast<std::byte>(0x40);
    MemStableStore bad;
    bad.poke(key, damaged);
    const ProcessId p{static_cast<std::uint32_t>(key[1] - '0')};
    if (key.ends_with("/vs")) {
      ASSERT_NO_THROW((void)vsys::VsNode::recover_epoch(bad, key)) << key;
    } else if (key.ends_with("/dvs")) {
      impl::DvsDurableState got;
      ASSERT_NO_THROW(got = dvsys::DvsNode::recover(bad, key, p, c.v0()))
          << key;
      // The recovered prefix can only know a subset of what the full log
      // knows (registrations/attempts only ever grow).
      const impl::DvsDurableState full =
          dvsys::DvsNode::recover(*store, key, p, c.v0());
      for (const ViewId& g : got.reg) EXPECT_TRUE(full.reg.contains(g)) << key;
      EXPECT_LE(got.attempted.size(), full.attempted.size()) << key;
    } else if (key.ends_with("/to")) {
      toimpl::ToDurableState got;
      ASSERT_NO_THROW(got = tosys::ToNode::recover(bad, key)) << key;
      const toimpl::ToDurableState full = tosys::ToNode::recover(*store, key);
      EXPECT_LE(got.nextconfirm, full.nextconfirm) << key;
      EXPECT_LE(got.order.size(), full.order.size()) << key;
    }
  }
}

// ----- exchange snapshot codec --------------------------------------------

TEST(ExchangeJournalTest, RestoreAttachRecoverRoundTrip) {
  dvsys::ExchangeDurableState state;
  const ViewId g2{2, ProcessId{0}};
  const ViewId g3{3, ProcessId{1}};
  state.peer_blobs[ProcessId{0}][g2] = "blob-a";
  state.peer_blobs[ProcessId{0}][g3] = "blob-b";
  state.peer_blobs[ProcessId{2}][g3] = std::string("\x00\xffz", 3);
  state.last_sent = dvsys::ExchangeDurableState::SentRecord{
      g3, make_process_set({0, 1, 2}), "sent-blob"};
  state.confirmed = dvsys::ExchangeDurableState::SentRecord{
      g2, make_process_set({0, 1}), "confirmed-blob"};

  MemStableStore store;
  dvsys::ExchangeDvsNode node(ProcessId{1}, {});
  node.restore(state);
  EXPECT_EQ(node.durable_state(), state);
  node.attach_storage(store, "p1/exchange");  // writes baseline snapshot
  EXPECT_EQ(dvsys::ExchangeDvsNode::recover(store, "p1/exchange"), state);

  // Empty store → default state.
  EXPECT_EQ(dvsys::ExchangeDvsNode::recover(store, "absent"),
            dvsys::ExchangeDurableState{});
}

}  // namespace
}  // namespace dvs::storage
