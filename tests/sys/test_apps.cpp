// Tests for the application layer: state machines, the replicated
// state-machine library (SMR over TO), the service-supported state-exchange
// extension (paper Section 7), and the load balancer built on it.
#include <gtest/gtest.h>

#include "apps/load_balancer.h"
#include "apps/smr.h"
#include "apps/state_machine.h"

namespace dvs::apps {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// State machines
// ---------------------------------------------------------------------------

TEST(KvStateMachineTest, PutDelGet) {
  KvStateMachine kv;
  kv.apply("put a 1");
  kv.apply("put b two words");
  EXPECT_EQ(kv.get("a"), "1");
  EXPECT_EQ(kv.get("b"), "two words");
  kv.apply("del a");
  EXPECT_EQ(kv.get("a"), "");
  EXPECT_EQ(kv.applied(), 3u);
}

TEST(KvStateMachineTest, DigestIsOrderSensitive) {
  KvStateMachine a;
  KvStateMachine b;
  a.apply("put x 1");
  a.apply("put x 2");
  b.apply("put x 2");
  b.apply("put x 1");
  EXPECT_EQ(a.snapshot(), "x=2;");
  EXPECT_EQ(b.snapshot(), "x=1;");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KvStateMachineTest, UnknownCommandsAreDeterministicNoOps) {
  KvStateMachine a;
  KvStateMachine b;
  a.apply("frobnicate z");
  b.apply("frobnicate z");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_TRUE(a.data().empty());
}

TEST(CounterStateMachineTest, SaturatingWithdrawal) {
  CounterStateMachine c;
  c.apply("add 10");
  c.apply("sub 3");
  EXPECT_EQ(c.balance(), 7u);
  c.apply("sub 100");  // deterministic no-op floor at zero
  EXPECT_EQ(c.balance(), 0u);
  EXPECT_EQ(c.applied(), 3u);
}

// ---------------------------------------------------------------------------
// SMR over the TO stack
// ---------------------------------------------------------------------------

tosys::ClusterConfig smr_config(std::size_t n) {
  tosys::ClusterConfig cfg;
  cfg.n_processes = n;
  return cfg;
}

TEST(SmrClusterTest, ReplicasConvergeUnderConcurrentWriters) {
  SmrCluster smr(smr_config(3), 21,
                 [] { return std::make_unique<KvStateMachine>(); });
  smr.start();
  smr.run_for(200 * kMillisecond);
  for (int i = 0; i < 10; ++i) {
    smr.submit(ProcessId{static_cast<ProcessId::Rep>(i % 3)},
               "put k" + std::to_string(i % 4) + " v" + std::to_string(i));
    smr.run_for(20 * kMillisecond);
  }
  smr.run_for(2 * kSecond);
  EXPECT_TRUE(smr.prefix_consistent());
  EXPECT_TRUE(smr.converged());
  const auto& kv = dynamic_cast<const KvStateMachine&>(
      smr.replica(ProcessId{0}));
  EXPECT_EQ(kv.applied(), 10u);
}

TEST(SmrClusterTest, PrefixConsistencyHoldsMidFlight) {
  SmrCluster smr(smr_config(4), 22,
                 [] { return std::make_unique<CounterStateMachine>(); });
  smr.start();
  smr.run_for(200 * kMillisecond);
  for (int i = 0; i < 20; ++i) {
    smr.submit(ProcessId{0}, "add 1");
    smr.run_for(3 * kMillisecond);  // deliberately not quiescent
    EXPECT_TRUE(smr.prefix_consistent());
  }
  smr.run_for(2 * kSecond);
  EXPECT_TRUE(smr.converged());
  EXPECT_EQ(dynamic_cast<const CounterStateMachine&>(
                smr.replica(ProcessId{3}))
                .balance(),
            20u);
}

TEST(SmrClusterTest, PartitionedMinorityStallsThenConverges) {
  SmrCluster smr(smr_config(5), 23,
                 [] { return std::make_unique<KvStateMachine>(); });
  smr.start();
  smr.run_for(300 * kMillisecond);
  smr.submit(ProcessId{0}, "put before yes");
  smr.run_for(1 * kSecond);

  smr.cluster().net().set_partition({make_process_set({0, 1, 2}),
                                     make_process_set({3, 4})});
  smr.run_for(1 * kSecond);
  smr.submit(ProcessId{1}, "put during majority");
  smr.submit(ProcessId{4}, "put minority late");  // stalls
  smr.run_for(2 * kSecond);
  EXPECT_TRUE(smr.prefix_consistent());
  EXPECT_EQ(smr.replica(ProcessId{4}).applied(), 1u);  // only "before"
  EXPECT_EQ(smr.replica(ProcessId{0}).applied(), 2u);

  smr.cluster().net().heal();
  smr.run_for(4 * kSecond);
  EXPECT_TRUE(smr.converged());
  EXPECT_EQ(smr.replica(ProcessId{4}).applied(), 3u);  // all three committed
  EXPECT_TRUE(smr.cluster().check_to_trace().ok);
}

// ---------------------------------------------------------------------------
// Exchange extension + load balancer
// ---------------------------------------------------------------------------

TEST(LoadBalancerTest, InitialAssignmentAgreesEverywhere) {
  LbCluster lb(4, /*shards=*/8, 31);
  lb.start();
  lb.run_for(2 * kSecond);
  for (ProcessId p : lb.universe()) {
    ASSERT_TRUE(lb.balancer(p).assignment_fresh()) << p.to_string();
    EXPECT_EQ(lb.balancer(p).assignment(),
              lb.balancer(ProcessId{0}).assignment());
  }
  // All 8 shards covered, spread across all 4 members (2 each).
  for (ProcessId p : lb.universe()) {
    EXPECT_EQ(lb.balancer(ProcessId{0}).shards_owned_by(p).size(), 2u);
  }
}

TEST(LoadBalancerTest, MajorityReassignsMinorityGoesStale) {
  LbCluster lb(5, /*shards=*/10, 32);
  lb.start();
  lb.run_for(2 * kSecond);
  lb.net().set_partition({make_process_set({0, 1, 2}),
                          make_process_set({3, 4})});
  lb.run_for(3 * kSecond);

  // Majority: fresh assignment covering only the three survivors.
  for (unsigned i : {0u, 1u, 2u}) {
    ASSERT_TRUE(lb.balancer(ProcessId{i}).assignment_fresh()) << i;
  }
  const auto& assignment = lb.balancer(ProcessId{0}).assignment();
  for (ProcessId owner : assignment) {
    EXPECT_LT(owner.value(), 3u) << "a shard is assigned to a lost member";
  }
  // Minority: stale — it must stop serving.
  EXPECT_FALSE(lb.balancer(ProcessId{3}).assignment_fresh());
  EXPECT_FALSE(lb.balancer(ProcessId{4}).assignment_fresh());

  lb.net().heal();
  lb.run_for(3 * kSecond);
  for (ProcessId p : lb.universe()) {
    EXPECT_TRUE(lb.balancer(p).assignment_fresh()) << p.to_string();
    EXPECT_EQ(lb.balancer(p).assignment(),
              lb.balancer(ProcessId{0}).assignment());
  }
}

TEST(LoadBalancerTest, LoadAwareAssignmentFavoursIdleNodes) {
  LbCluster lb(3, /*shards=*/9, 33);
  lb.balancer(ProcessId{0}).set_load(100);  // busy
  lb.balancer(ProcessId{1}).set_load(0);
  lb.balancer(ProcessId{2}).set_load(50);
  lb.start();
  lb.run_for(2 * kSecond);
  // 9 shards across 3 members: 3 each (round robin), but the ORDER favours
  // idle nodes — p1 gets shards {0,3,6}, p2 {1,4,7}, p0 {2,5,8}.
  const auto& node0 = lb.balancer(ProcessId{0});
  ASSERT_TRUE(node0.assignment_fresh());
  EXPECT_EQ(node0.assignment()[0], ProcessId{1});
  EXPECT_EQ(node0.assignment()[1], ProcessId{2});
  EXPECT_EQ(node0.assignment()[2], ProcessId{0});
}

TEST(ExchangeNodeTest, BlobsReachEveryMemberExactlyOncePerView) {
  LbCluster lb(3, 3, 34);
  lb.start();
  lb.run_for(2 * kSecond);
  for (ProcessId p : lb.universe()) {
    const auto& stats = lb.exchange(p).stats();
    EXPECT_EQ(stats.views_seen, 1u) << p.to_string();  // v0 only
    EXPECT_EQ(stats.views_established, 1u);
    EXPECT_EQ(stats.blobs_received, 3u);
  }
  // A view change runs a second exchange.
  lb.net().pause(ProcessId{2});
  lb.run_for(2 * kSecond);
  EXPECT_EQ(lb.exchange(ProcessId{0}).stats().views_established, 2u);
  EXPECT_TRUE(lb.exchange(ProcessId{0}).established());
}

TEST(ExchangeNodeTest, DeltaExchangeAcrossRepeatedReconfigurations) {
  // Exercises the delta path end-to-end: once a node's exchange blob goes
  // safe, later exchanges with subset memberships ship only the suffix past
  // the common prefix. Loads share the prefix "10", so a load change
  // between views produces a partial (non-empty-suffix) delta.
  LbCluster lb(3, 6, 35);
  lb.balancer(ProcessId{0}).set_load(100);
  lb.balancer(ProcessId{1}).set_load(101);
  lb.balancer(ProcessId{2}).set_load(105);
  lb.start();
  lb.run_for(2 * kSecond);  // v0 established, blobs safe → confirmed bases

  // Shrink {0,1,2} → {0,1}: a subset of the confirmed base's membership, so
  // the survivors delta against their v0 blobs.
  lb.balancer(ProcessId{0}).set_load(104);  // blob "100" → "104": lcp = 2
  lb.net().pause(ProcessId{2});
  lb.run_for(2 * kSecond);
  for (unsigned i : {0u, 1u}) {
    const auto& st = lb.exchange(ProcessId{i}).stats();
    EXPECT_TRUE(lb.exchange(ProcessId{i}).established()) << i;
    EXPECT_GE(st.delta_blobs_sent, 1u) << i;
    EXPECT_GE(st.delta_blobs_received, 1u) << i;
    EXPECT_GT(st.delta_bytes_saved, 0u) << i;
  }

  // Regrow {0,1} → {0,1,2}: not a subset of any confirmed base (p2 missed
  // the shrunken exchange), so full blobs go out — and p2, whose history
  // predates the deltas, must still end established with agreed state.
  lb.net().resume(ProcessId{2});
  lb.run_for(3 * kSecond);
  // Shrink again on the other side: {0,2} ⊆ {0,1,2}, deltas fire again.
  lb.net().pause(ProcessId{1});
  lb.run_for(2 * kSecond);

  for (ProcessId p : lb.universe()) {
    const auto& st = lb.exchange(p).stats();
    // The load-bearing guarantee: no delta ever arrived whose base the
    // receiver did not hold (safe ⇒ receipt at every member of the base's
    // view), so every exchange reconstructed.
    EXPECT_EQ(st.delta_unreconstructable, 0u) << p.to_string();
  }
  // The agreed outcome survived the delta plumbing: both live members hold
  // identical fresh assignments.
  ASSERT_TRUE(lb.balancer(ProcessId{0}).assignment_fresh());
  EXPECT_EQ(lb.balancer(ProcessId{0}).assignment(),
            lb.balancer(ProcessId{2}).assignment());
}

}  // namespace
}  // namespace dvs::apps
