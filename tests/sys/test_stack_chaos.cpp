// Randomized fault-injection sweeps over the distributed stack: random
// partitions, heals, pauses, resumes and broadcasts, across group sizes and
// seeds. After every run the recorded VS/DVS/TO traces must replay through
// the specification acceptors, and deliveries must be prefix-consistent
// across nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct ChaosParam {
  std::size_t n;
  std::uint64_t seed;
};

std::string chaos_name(const ::testing::TestParamInfo<ChaosParam>& info) {
  return "n" + std::to_string(info.param.n) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<ChaosParam> chaos_sweep() {
  std::vector<ChaosParam> out;
  for (std::size_t n : {3, 4, 5, 7}) {
    for (std::uint64_t s = 1; s <= 4; ++s) out.push_back({n, s * 31 + n});
  }
  return out;
}

/// Draws a random partition of the universe into 1–3 groups.
std::vector<ProcessSet> random_partition(Rng& rng, const ProcessSet& universe) {
  const std::size_t groups = 1 + rng.below(3);
  std::vector<ProcessSet> out(groups);
  for (ProcessId p : universe) {
    out[rng.below(groups)].insert(p);
  }
  std::erase_if(out, [](const ProcessSet& g) { return g.empty(); });
  return out;
}

class StackChaos : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(StackChaos, SafetyHoldsUnderRandomFaults) {
  const auto [n, seed] = GetParam();
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.net.jitter_mean_us = 500.0;
  Cluster c(cfg, seed);
  Rng chaos(seed ^ 0xc0ffee);
  c.start();
  c.run_for(300 * kMillisecond);

  std::uint64_t uid = 1;
  for (int round = 0; round < 25; ++round) {
    const double r = chaos.uniform();
    if (r < 0.25) {
      c.net().set_partition(random_partition(chaos, c.universe()));
    } else if (r < 0.45) {
      c.net().heal();
      for (ProcessId p : c.universe()) c.net().resume(p);
    } else if (r < 0.55) {
      c.net().pause(chaos.pick(c.universe()));
    } else {
      const ProcessId p = chaos.pick(c.universe());
      c.bcast(p, AppMsg{uid++, p, ""});
    }
    c.run_for(static_cast<sim::Time>(chaos.between(50, 800)) * kMillisecond);
  }
  // Final heal and settle, so recovery paths run too.
  c.net().heal();
  for (ProcessId p : c.universe()) c.net().resume(p);
  c.run_for(5 * kSecond);

  const spec::AcceptResult vs = c.check_vs_trace();
  ASSERT_TRUE(vs.ok) << "VS: " << vs.error;
  const spec::AcceptResult dvs = c.check_dvs_trace();
  ASSERT_TRUE(dvs.ok) << "DVS: " << dvs.error;
  const spec::AcceptResult to = c.check_to_trace();
  ASSERT_TRUE(to.ok) << "TO: " << to.error;

  // Deliveries are prefix-consistent between every pair of nodes (total
  // order), and FIFO per sender.
  for (ProcessId a : c.universe()) {
    const auto da = c.deliveries_at(a);
    for (ProcessId b : c.universe()) {
      const auto db = c.deliveries_at(b);
      const std::size_t k = std::min(da.size(), db.size());
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(da[i].msg, db[i].msg)
            << "delivery order diverges between " << a.to_string() << " and "
            << b.to_string() << " at position " << i;
      }
    }
  }
  // After the final heal everyone is back in one primary.
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackChaos, ::testing::ValuesIn(chaos_sweep()),
                         chaos_name);

}  // namespace
}  // namespace dvs::tosys
