// End-to-end tests of the distributed stack (experiment E8): the full
// simulated cluster — heartbeat failure detection, membership agreement,
// sequencer ordering, the dynamic-primary layer and the totally-ordered
// broadcast application — under partitions, merges and pauses. Every run
// finishes by replaying the recorded traces through the VS, DVS and TO
// specification acceptors.
#include <gtest/gtest.h>

#include <algorithm>

#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

ClusterConfig quiet_config(std::size_t n) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.net.base_delay = 1 * kMillisecond;
  cfg.net.jitter_mean_us = 300.0;
  return cfg;
}

void expect_all_traces_ok(const Cluster& c) {
  const spec::AcceptResult vs = c.check_vs_trace();
  EXPECT_TRUE(vs.ok) << "VS trace rejected: " << vs.error;
  const spec::AcceptResult dvs = c.check_dvs_trace();
  EXPECT_TRUE(dvs.ok) << "DVS trace rejected: " << dvs.error;
  const spec::AcceptResult to = c.check_to_trace();
  EXPECT_TRUE(to.ok) << "TO trace rejected: " << to.error;
}

std::vector<std::uint64_t> uids(const std::vector<Delivery>& ds) {
  std::vector<std::uint64_t> out;
  out.reserve(ds.size());
  for (const Delivery& d : ds) out.push_back(d.msg.uid);
  return out;
}

TEST(StackTest, StableClusterDeliversEverythingEverywhere) {
  Cluster c(quiet_config(3), /*seed=*/1);
  c.start();
  c.run_for(200 * kMillisecond);  // settle
  for (std::uint64_t uid = 1; uid <= 20; ++uid) {
    c.bcast(ProcessId{uid % 3}, AppMsg{uid, ProcessId{uid % 3}, "m"});
    c.run_for(10 * kMillisecond);
  }
  c.run_for(1 * kSecond);

  const auto d0 = uids(c.deliveries_at(ProcessId{0}));
  ASSERT_EQ(d0.size(), 20u);
  EXPECT_EQ(uids(c.deliveries_at(ProcessId{1})), d0);
  EXPECT_EQ(uids(c.deliveries_at(ProcessId{2})), d0);
  expect_all_traces_ok(c);
}

TEST(StackTest, FifoPerSenderHolds) {
  Cluster c(quiet_config(3), 2);
  c.start();
  c.run_for(100 * kMillisecond);
  for (std::uint64_t uid = 1; uid <= 30; ++uid) {
    c.bcast(ProcessId{0}, AppMsg{uid, ProcessId{0}, ""});
  }
  c.run_for(2 * kSecond);
  const auto d1 = uids(c.deliveries_at(ProcessId{1}));
  ASSERT_EQ(d1.size(), 30u);
  EXPECT_TRUE(std::is_sorted(d1.begin(), d1.end()));
  expect_all_traces_ok(c);
}

TEST(StackTest, MajoritySideStaysPrimaryThroughPartition) {
  Cluster c(quiet_config(5), 3);
  c.start();
  c.run_for(300 * kMillisecond);
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);

  // Partition 3/2: the majority side re-forms a primary, the minority side
  // must not.
  c.net().set_partition({make_process_set({0, 1, 2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  for (unsigned i : {0u, 1u, 2u}) {
    EXPECT_TRUE(c.dvs_node(ProcessId{i}).in_primary()) << "p" << i;
  }
  for (unsigned i : {3u, 4u}) {
    EXPECT_FALSE(c.dvs_node(ProcessId{i}).in_primary()) << "p" << i;
  }

  // The majority keeps making progress.
  c.bcast(ProcessId{0}, AppMsg{100, ProcessId{0}, "in-partition"});
  c.run_for(1 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{1}).size(), 1u);
  EXPECT_TRUE(c.deliveries_at(ProcessId{4}).empty());
  expect_all_traces_ok(c);
}

TEST(StackTest, MinorityRejoinsAfterHeal) {
  Cluster c(quiet_config(5), 4);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().set_partition({make_process_set({0, 1, 2}),
                         make_process_set({3, 4})});
  c.run_for(1 * kSecond);
  c.bcast(ProcessId{1}, AppMsg{7, ProcessId{1}, "while-partitioned"});
  c.run_for(1 * kSecond);
  EXPECT_TRUE(c.deliveries_at(ProcessId{3}).empty());

  c.net().heal();
  c.run_for(3 * kSecond);
  // Everyone is primary again and the minority caught up via state exchange.
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);
  const auto d3 = uids(c.deliveries_at(ProcessId{3}));
  ASSERT_EQ(d3.size(), 1u);
  EXPECT_EQ(d3[0], 7u);
  expect_all_traces_ok(c);
}

TEST(StackTest, DynamicPrimarySurvivesCascadingShrink) {
  // The motivating scenario for dynamic voting: 5 → 3 → 2 nodes. A static
  // majority (≥3 of 5) loses the 2-node step; the dynamic definition keeps
  // a primary as long as each step has a majority of the previous one.
  Cluster c(quiet_config(5), 5);
  c.start();
  c.run_for(300 * kMillisecond);

  c.net().set_partition({make_process_set({0, 1, 2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  EXPECT_TRUE(c.dvs_node(ProcessId{0}).in_primary());
  ASSERT_TRUE(c.dvs_node(ProcessId{0}).primary_view().has_value());
  EXPECT_EQ(c.dvs_node(ProcessId{0}).primary_view()->size(), 3u);

  // Registration must have happened (the TO layer registers after its state
  // exchange), enabling the next shrink to measure against {0,1,2}.
  c.net().set_partition({make_process_set({0, 1}), make_process_set({2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  // {0,1} is a majority of {0,1,2}: still primary under dynamic voting.
  EXPECT_TRUE(c.dvs_node(ProcessId{0}).in_primary());
  EXPECT_TRUE(c.dvs_node(ProcessId{1}).in_primary());
  ASSERT_TRUE(c.dvs_node(ProcessId{0}).primary_view().has_value());
  EXPECT_EQ(c.dvs_node(ProcessId{0}).primary_view()->size(), 2u);
  // 2 of 5 is NOT a static majority — this is the paper's headline gain.
  EXPECT_LT(2 * c.dvs_node(ProcessId{0}).primary_view()->size(),
            c.universe().size());

  c.bcast(ProcessId{0}, AppMsg{55, ProcessId{0}, "two-node-primary"});
  c.run_for(1 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{1}).size(), 1u);
  expect_all_traces_ok(c);
}

TEST(StackTest, ConcurrentMinoritiesNeverFormTwoPrimaries) {
  Cluster c(quiet_config(4), 6);
  c.start();
  c.run_for(300 * kMillisecond);
  // Split 2/2: neither side has a majority of {0,1,2,3}.
  c.net().set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  c.run_for(3 * kSecond);
  std::size_t primaries = 0;
  for (ProcessId p : c.universe()) {
    if (c.dvs_node(p).in_primary()) ++primaries;
  }
  EXPECT_EQ(primaries, 0u) << "a 2/2 split must lose the primary entirely";
  expect_all_traces_ok(c);
}

TEST(StackTest, PausedProcessIsExcludedAndReintegrated) {
  Cluster c(quiet_config(3), 8);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().pause(ProcessId{2});
  c.run_for(2 * kSecond);
  EXPECT_TRUE(c.dvs_node(ProcessId{0}).in_primary());
  ASSERT_TRUE(c.dvs_node(ProcessId{0}).primary_view().has_value());
  EXPECT_EQ(c.dvs_node(ProcessId{0}).primary_view()->size(), 2u);

  c.bcast(ProcessId{0}, AppMsg{9, ProcessId{0}, "while-down"});
  c.run_for(1 * kSecond);
  c.net().resume(ProcessId{2});
  c.run_for(3 * kSecond);
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);
  const auto d2 = uids(c.deliveries_at(ProcessId{2}));
  ASSERT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2[0], 9u);
  expect_all_traces_ok(c);
}

TEST(StackTest, LateJoinerIsAbsorbed) {
  ClusterConfig cfg = quiet_config(4);
  cfg.initial_members = 3;  // p3 starts outside v0
  Cluster c(cfg, 11);
  c.start();
  c.run_for(3 * kSecond);
  EXPECT_TRUE(c.dvs_node(ProcessId{3}).in_primary());
  ASSERT_TRUE(c.dvs_node(ProcessId{3}).primary_view().has_value());
  EXPECT_EQ(c.dvs_node(ProcessId{3}).primary_view()->size(), 4u);
  c.bcast(ProcessId{3}, AppMsg{1, ProcessId{3}, "hello"});
  c.run_for(1 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{0}).size(), 1u);
  expect_all_traces_ok(c);
}

TEST(StackTest, LossyNetworkStillSafe) {
  ClusterConfig cfg = quiet_config(3);
  cfg.net.drop_probability = 0.05;
  Cluster c(cfg, 13);
  c.start();
  c.run_for(300 * kMillisecond);
  for (std::uint64_t uid = 1; uid <= 10; ++uid) {
    c.bcast(ProcessId{uid % 3}, AppMsg{uid, ProcessId{uid % 3}, ""});
    c.run_for(50 * kMillisecond);
  }
  c.run_for(3 * kSecond);
  // Loss may stall progress (retransmission is the view layer's job via
  // reconfiguration), but all safety properties must hold.
  expect_all_traces_ok(c);
  // Deliveries at different nodes are prefix-consistent.
  const auto d0 = uids(c.deliveries_at(ProcessId{0}));
  const auto d1 = uids(c.deliveries_at(ProcessId{1}));
  const std::size_t k = std::min(d0.size(), d1.size());
  for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(d0[i], d1[i]);
}

TEST(StackTest, RepeatedPartitionHealCyclesStaySafe) {
  Cluster c(quiet_config(4), 17);
  c.start();
  c.run_for(300 * kMillisecond);
  std::uint64_t uid = 1;
  for (int cycle = 0; cycle < 4; ++cycle) {
    c.net().set_partition({make_process_set({0, 1, 2}),
                           make_process_set({3})});
    c.run_for(1 * kSecond);
    c.bcast(ProcessId{0}, AppMsg{uid++, ProcessId{0}, ""});
    c.run_for(500 * kMillisecond);
    c.net().heal();
    c.run_for(2 * kSecond);
    c.bcast(ProcessId{3}, AppMsg{uid++, ProcessId{3}, ""});
    c.run_for(500 * kMillisecond);
  }
  c.run_for(2 * kSecond);
  expect_all_traces_ok(c);
  // Everyone ends with the same delivery sequence.
  const auto d0 = uids(c.deliveries_at(ProcessId{0}));
  EXPECT_EQ(d0.size(), 8u);
  for (unsigned i : {1u, 2u, 3u}) {
    EXPECT_EQ(uids(c.deliveries_at(ProcessId{i})), d0) << "p" << i;
  }
}

}  // namespace
}  // namespace dvs::tosys
