// Tests for the static-primary baseline stack: identical application code,
// static majority instead of dynamic views. Safety must be just as good
// (TO acceptance); availability is what differs (the benches quantify it —
// here we check the qualitative crossover directly).
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/static_stack.h"

namespace dvs::baseline {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(StaticStackTest, StableClusterDeliversTotallyOrdered) {
  StaticCluster c(3, 51);
  c.start();
  c.run_for(200 * kMillisecond);
  for (std::uint64_t uid = 1; uid <= 10; ++uid) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % 3)};
    c.bcast(p, AppMsg{uid, p, ""});
    c.run_for(20 * kMillisecond);
  }
  c.run_for(1 * kSecond);
  const auto d0 = c.deliveries_at(ProcessId{0});
  ASSERT_EQ(d0.size(), 10u);
  for (unsigned i : {1u, 2u}) {
    const auto di = c.deliveries_at(ProcessId{i});
    ASSERT_EQ(di.size(), 10u);
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_EQ(di[k].msg, d0[k].msg);
    }
  }
  const auto r = c.check_to_trace();
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(StaticStackTest, MajorityPartitionKeepsServing) {
  StaticCluster c(5, 52);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().set_partition({make_process_set({0, 1, 2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  EXPECT_TRUE(c.filter(ProcessId{0}).in_primary());
  EXPECT_FALSE(c.filter(ProcessId{3}).in_primary());
  c.bcast(ProcessId{0}, AppMsg{1, ProcessId{0}, ""});
  c.run_for(1 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{1}).size(), 1u);
  EXPECT_TRUE(c.deliveries_at(ProcessId{3}).empty());
  EXPECT_TRUE(c.check_to_trace().ok);
}

TEST(StaticStackTest, LosesPrimacyBelowHalfWhereDynamicSurvives) {
  // The crossover the paper is about: a graceful 5 → 3 → 2 shrink. The
  // static stack loses the primary at 2 members; see
  // StackTest.DynamicPrimarySurvivesCascadingShrink for the dynamic stack
  // keeping it in the identical scenario.
  StaticCluster c(5, 53);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().set_partition({make_process_set({0, 1, 2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  EXPECT_TRUE(c.filter(ProcessId{0}).in_primary());  // 3 of 5 is a majority

  c.net().set_partition({make_process_set({0, 1}), make_process_set({2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  EXPECT_FALSE(c.filter(ProcessId{0}).in_primary());  // 2 of 5 is not
  EXPECT_FALSE(c.filter(ProcessId{1}).in_primary());
  // Writes stall entirely.
  c.bcast(ProcessId{0}, AppMsg{9, ProcessId{0}, ""});
  c.run_for(1 * kSecond);
  EXPECT_TRUE(c.deliveries_at(ProcessId{1}).empty());
  EXPECT_TRUE(c.check_to_trace().ok);
}

TEST(StaticStackTest, RecoversAfterHeal) {
  StaticCluster c(4, 54);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  c.run_for(1 * kSecond);
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 0.0);  // 2/2 split: nobody serves
  c.net().heal();
  c.run_for(3 * kSecond);
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);
  c.bcast(ProcessId{2}, AppMsg{1, ProcessId{2}, ""});
  c.run_for(1 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{0}).size(), 1u);
  EXPECT_TRUE(c.check_to_trace().ok);
}

TEST(StaticStackTest, ChaosSafety) {
  StaticCluster c(5, 55);
  Rng chaos(555);
  c.start();
  c.run_for(300 * kMillisecond);
  std::uint64_t uid = 1;
  for (int round = 0; round < 20; ++round) {
    const double r = chaos.uniform();
    if (r < 0.3) {
      std::vector<ProcessSet> groups(2);
      for (ProcessId p : c.universe()) groups[chaos.below(2)].insert(p);
      std::erase_if(groups, [](const ProcessSet& g) { return g.empty(); });
      c.net().set_partition(groups);
    } else if (r < 0.5) {
      c.net().heal();
    } else {
      const ProcessId p = chaos.pick(c.universe());
      c.bcast(p, AppMsg{uid++, p, ""});
    }
    c.run_for(static_cast<sim::Time>(chaos.between(100, 600)) * kMillisecond);
  }
  c.net().heal();
  c.run_for(4 * kSecond);
  const auto r = c.check_to_trace();
  EXPECT_TRUE(r.ok) << r.error;
  // Pairwise prefix-consistent deliveries.
  for (ProcessId a : c.universe()) {
    const auto da = c.deliveries_at(a);
    for (ProcessId b : c.universe()) {
      const auto db = c.deliveries_at(b);
      const std::size_t k = std::min(da.size(), db.size());
      for (std::size_t i = 0; i < k; ++i) {
        ASSERT_EQ(da[i].msg, db[i].msg);
      }
    }
  }
}

}  // namespace
}  // namespace dvs::baseline
