// Differential conformance: the watermark-stability stack must be
// indistinguishable from the explicit-ack one wherever the protocol's
// behaviour is determined.
//
// Watermark mode replaces the per-message ack/confirm traffic inside an
// installed view with the SST-style per-member state table (vs_node.cpp,
// vsys/watermarks.h). The TO service's spec does not change, so:
//  * Forced-order runs — a fault-free cluster with broadcasts spaced far
//    apart (>> network delay) has exactly one legal TO order, so both
//    stability modes must produce identical per-receiver delivery
//    sequences, and every receiver the same sequence.
//  * Chaos sweeps — 200 seeds × n ∈ {2,3,4} through the full FaultPlan
//    adversary with the spec oracles attached: every seed must be accepted
//    by both modes (identical verdicts), both must land in the same
//    high-delivery liveness regime, and the erratum self-test must still
//    reject with watermarks on (the new stability rule must not blind the
//    oracle).
//  * Merge ordering — the per-seed ChaosStats and metric snapshots
//    (including the new vs.watermark_* counters) must aggregate
//    byte-identically for --jobs 1 vs --jobs 4.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "parallel/seed_sweep.h"
#include "tosys/chaos.h"
#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

ClusterConfig quiet_cluster(std::size_t n, bool watermarks) {
  ClusterConfig cc;
  cc.n_processes = n;
  cc.vs.stability = watermarks ? vsys::StabilityMode::kWatermark
                               : vsys::StabilityMode::kExplicitAck;
  return cc;
}

/// One delivery sequence per receiver, as (origin, uid) pairs in delivery
/// order.
std::map<ProcessId, std::vector<std::pair<ProcessId, std::uint64_t>>>
per_receiver_orders(const Cluster& cluster) {
  std::map<ProcessId, std::vector<std::pair<ProcessId, std::uint64_t>>> out;
  for (const Delivery& d : cluster.deliveries()) {
    out[d.receiver].emplace_back(d.origin, d.msg.uid);
  }
  return out;
}

/// Fault-free run with broadcasts spaced 50ms apart (the stack settles
/// between sends), so the TO order is forced by time and must be identical
/// whatever the stability detector does.
std::map<ProcessId, std::vector<std::pair<ProcessId, std::uint64_t>>>
forced_order_run(std::size_t n, bool watermarks, std::uint64_t seed) {
  Cluster cluster(quiet_cluster(n, watermarks), seed);
  const std::vector<ProcessId> procs(cluster.universe().begin(),
                                     cluster.universe().end());
  std::uint64_t uid = 1;
  for (std::size_t i = 0; i < 20; ++i) {
    const ProcessId p = procs[i % procs.size()];
    cluster.sim().schedule_at(
        200 * sim::kMillisecond + i * 50 * sim::kMillisecond,
        [&cluster, p, m = AppMsg{uid++, p, "fo"}] { cluster.bcast(p, m); });
  }
  cluster.start();
  cluster.run_for(2 * sim::kSecond);
  EXPECT_TRUE(cluster.oracle().ok());
  return per_receiver_orders(cluster);
}

TEST(WatermarkEquivalenceTest, ForcedOrderDeliveriesAreIdentical) {
  for (std::size_t n : {2u, 3u, 4u}) {
    const auto acked = forced_order_run(n, false, 77);
    const auto watermarked = forced_order_run(n, true, 77);
    ASSERT_EQ(acked.size(), n) << "n=" << n;
    EXPECT_EQ(watermarked, acked) << "n=" << n;
    // All receivers agree on one total order, and nothing was lost.
    const auto& reference = acked.begin()->second;
    EXPECT_EQ(reference.size(), 20u);
    for (const auto& [p, order] : acked) {
      EXPECT_EQ(order, reference) << p.to_string();
    }
  }
}

/// Short-horizon chaos config sized so 200 seeds stay fast enough for the
/// sanitizer gates (mirrors the --smoke sweep shape).
ChaosConfig quick_chaos(std::size_t n, bool watermarks) {
  ChaosConfig chaos;
  chaos.n_processes = n;
  chaos.watermarks = watermarks;
  chaos.plan.horizon = 2 * sim::kSecond;
  chaos.plan.events = 8;
  chaos.broadcasts = 40;
  chaos.settle = 2 * sim::kSecond;
  return chaos;
}

parallel::ChaosSweepResult sweep(std::size_t n, bool watermarks,
                                 std::size_t jobs,
                                 std::uint64_t num_seeds = 200) {
  parallel::SeedSweepConfig cfg;
  cfg.first_seed = 1;
  cfg.num_seeds = num_seeds;
  cfg.jobs = jobs;
  return parallel::run_chaos_sweep(cfg, quick_chaos(n, watermarks));
}

void expect_identical_verdicts(std::size_t n) {
  const parallel::ChaosSweepResult acked = sweep(n, false, 4);
  const parallel::ChaosSweepResult watermarked = sweep(n, true, 4);
  // Identical verdicts: the oracle accepts every seed in both modes.
  EXPECT_EQ(acked.seeds_failed, 0u) << acked.first_failure->message;
  EXPECT_EQ(watermarked.seeds_failed, 0u)
      << watermarked.first_failure->message;
  EXPECT_EQ(watermarked.seeds_run, acked.seeds_run);
  // Liveness parity: chaos does not promise total liveness (a broadcast
  // issued at the horizon's edge by a partitioned process can die with the
  // run), but both modes must land in the same high-delivery regime —
  // never more than the ceiling, never below 95% of it. (The soak test,
  // whose schedule guarantees healing, asserts the strict equality.)
  for (const parallel::ChaosSweepResult* r : {&acked, &watermarked}) {
    EXPECT_LE(r->total.deliveries, r->total.broadcasts * n);
    EXPECT_GE(r->total.deliveries, r->total.broadcasts * n * 95 / 100);
  }
  // The watermark machinery actually engaged: piggybacked watermarks raised
  // table rows in watermark mode, and the ack-mode stack never touched it.
  EXPECT_GT(watermarked.total.metrics.counter_sum("vs.watermark_updates"), 0u);
  EXPECT_EQ(acked.total.metrics.counter_sum("vs.watermark_updates"), 0u);
  // Safe indications flowed in both modes (the stability rule advanced).
  EXPECT_GT(watermarked.total.metrics.counter_sum("vs.safes_emitted"), 0u);
  EXPECT_GT(acked.total.metrics.counter_sum("vs.safes_emitted"), 0u);
}

TEST(WatermarkEquivalenceTest, ChaosVerdictsMatchAtN2) {
  expect_identical_verdicts(2);
}

TEST(WatermarkEquivalenceTest, ChaosVerdictsMatchAtN3) {
  expect_identical_verdicts(3);
}

TEST(WatermarkEquivalenceTest, ChaosVerdictsMatchAtN4) {
  expect_identical_verdicts(4);
}

TEST(WatermarkEquivalenceTest, WatermarksDoNotBlindTheOracle) {
  // Re-inject the paper's Figure 5 errata with watermarks on: the oracle
  // must still reject — a stability-rule change that masked spec violations
  // would be worse than no optimization at all.
  ChaosConfig chaos = quick_chaos(3, true);
  chaos.initial_members = 2;
  chaos.broadcasts = 200;
  chaos.to_options.printed_figure_mode = true;
  parallel::SeedSweepConfig cfg;
  cfg.first_seed = 1;
  cfg.num_seeds = 60;
  cfg.jobs = 4;
  const parallel::ChaosSweepResult r = parallel::run_chaos_sweep(cfg, chaos);
  EXPECT_GT(r.seeds_failed, 0u);
  ASSERT_TRUE(r.first_failure.has_value());
  EXPECT_NE(r.first_failure->message.find("chaos seed"), std::string::npos);
}

// The ChaosStats merge-ordering regression for the new vs.watermark_* and
// arena.* counters (and the TSan target: the watermark sweep shares the
// thread pool, so data races in the table or the arena would surface here).
TEST(WatermarkEquivalenceTest, ParallelSweepMergesIdenticallyForAnyJobCount) {
  const parallel::ChaosSweepResult j1 = sweep(3, true, 1, 60);
  const parallel::ChaosSweepResult j4 = sweep(3, true, 4, 60);
  EXPECT_EQ(j1.seeds_failed, 0u);
  EXPECT_EQ(j4.seeds_failed, 0u);
  // Field-wise totals, including the new counters, merge in seed order:
  // byte-identical whatever the worker count.
  EXPECT_TRUE(j1.total == j4.total);
  // And the serialized metric snapshot (what --metrics prints and
  // BENCH_obs.json records) is byte-identical too.
  EXPECT_EQ(j1.total.metrics.to_json(), j4.total.metrics.to_json());
}

}  // namespace
}  // namespace dvs::tosys
