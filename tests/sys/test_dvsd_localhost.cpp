// Real-deployment system test: three dvsd OS processes on loopback.
//
// This is the end-to-end proof that the stack survives outside the
// simulator: the test forks the actual dvsd binary (path baked in via
// DVSD_BIN_PATH) three times with generated config files, drives the
// cluster through its UDP control sockets, SIGKILLs one member mid-stream
// (a genuine crash — no destructors, a torn trace tail on disk), relaunches
// it, and finally audits the merged on-disk traces with the same offline
// auditor `model_checker --audit` uses.
//
// What must hold at the end:
//   * the two survivors converge to identical KV state containing every
//     command, including those issued while the third was dead;
//   * the relaunched process reports recovered=1 and applies commands
//     issued after its rejoin;
//   * daemon::audit_dir over the trace directory — 3 processes, 4
//     incarnations — ends in VERDICT: PASS.
//
// Set DVS_NO_NET=1 to skip (no loopback sockets available).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "daemon/audit.h"

namespace dvs {
namespace {

constexpr int kNodes = 3;

bool no_net() {
  const char* env = std::getenv("DVS_NO_NET");
  return env != nullptr && env[0] == '1';
}

/// One UDP control round-trip; "" on timeout/error (callers retry via
/// await()).
std::string ctl(std::uint16_t port, const std::string& command,
                int timeout_ms = 300) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string reply;
  if (::sendto(fd, command.data(), command.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) >= 0) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) > 0) {
      char buf[65536];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) reply.assign(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return reply;
}

bool await(const std::function<bool()>& pred, int deadline_ms,
           int poll_ms = 50) {
  for (int waited = 0;; waited += poll_ms) {
    if (pred()) return true;
    if (waited >= deadline_ms) return false;
    ::usleep(static_cast<useconds_t>(poll_ms) * 1000);
  }
}

class DvsdLocalhostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (no_net()) GTEST_SKIP() << "DVS_NO_NET=1: skipping localhost cluster";
    char tmpl[] = "/tmp/dvsd_localhost_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    // Spread port ranges across concurrent test runs; a collision shows up
    // as a bind failure in the child's log and a ping timeout here.
    base_port_ =
        static_cast<std::uint16_t>(22000 + (::getpid() * 17) % 30000);
    for (int i = 0; i < kNodes; ++i) write_config(i);
  }

  void TearDown() override {
    for (int i = 0; i < kNodes; ++i) {
      if (pids_[i] > 0) {
        ::kill(pids_[i], SIGKILL);
        reap(i, 5000);
      }
    }
    if (!HasFailure() && !dir_.empty()) {
      std::filesystem::remove_all(dir_);
    } else if (!dir_.empty()) {
      // Keep configs, daemon logs and traces for the post-mortem.
      std::fprintf(stderr, "dvsd test artifacts kept at %s\n", dir_.c_str());
    }
  }

  [[nodiscard]] std::uint16_t peer_port(int i) const {
    return static_cast<std::uint16_t>(base_port_ + i);
  }
  [[nodiscard]] std::uint16_t ctl_port(int i) const {
    return static_cast<std::uint16_t>(base_port_ + kNodes + i);
  }

  void write_config(int i) {
    std::ofstream out(dir_ + "/p" + std::to_string(i) + ".conf");
    out << "node " << i << "\n"
        << "n " << kNodes << "\n"
        << "initial " << kNodes << "\n";
    for (int j = 0; j < kNodes; ++j) {
      out << "peer " << j << " 127.0.0.1:" << peer_port(j) << "\n";
    }
    out << "control 127.0.0.1:" << ctl_port(i) << "\n"
        << "wal_dir " << dir_ << "/p" << i << "/wal\n"
        << "trace_dir " << dir_ << "/traces\n";
    ASSERT_TRUE(out.good());
  }

  void spawn(int i) {
    const std::string config = dir_ + "/p" + std::to_string(i) + ".conf";
    const std::string log = dir_ + "/p" + std::to_string(i) + ".log";
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      const int fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
      ::execl(DVSD_BIN_PATH, "dvsd", "--config", config.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    pids_[i] = pid;
  }

  void kill_hard(int i) {
    ASSERT_EQ(::kill(pids_[i], SIGKILL), 0);
    ASSERT_TRUE(reap(i, 5000));
  }

  /// waitpid with a deadline; clears the pid slot on success.
  bool reap(int i, int deadline_ms) {
    const bool gone = await(
        [&] {
          return ::waitpid(pids_[i], nullptr, WNOHANG) == pids_[i];
        },
        deadline_ms, 20);
    if (gone) pids_[i] = -1;
    return gone;
  }

  [[nodiscard]] bool pingable(int i) {
    return ctl(ctl_port(i), "ping").rfind("pong", 0) == 0;
  }

  [[nodiscard]] bool dumps_equal(std::initializer_list<int> nodes,
                                 const std::string& want) {
    for (int i : nodes) {
      if (ctl(ctl_port(i), "dump") != want) return false;
    }
    return true;
  }

  std::string dir_;
  std::uint16_t base_port_ = 0;
  std::array<pid_t, kNodes> pids_{-1, -1, -1};
};

TEST_F(DvsdLocalhostTest, KillRejoinAndAuditPasses) {
  for (int i = 0; i < kNodes; ++i) spawn(i);
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(await([&] { return pingable(i); }, 15000))
        << "node " << i << " never answered ping";
  }

  // Seed data from two different origins and wait for full convergence.
  ASSERT_EQ(ctl(ctl_port(0), "put color red").rfind("ok", 0), 0u);
  ASSERT_EQ(ctl(ctl_port(2), "put shape circle").rfind("ok", 0), 0u);
  const std::string seeded = "color=red;shape=circle;";
  ASSERT_TRUE(await([&] { return dumps_equal({0, 1, 2}, seeded); }, 15000))
      << "cluster never converged on the seed data";

  // A genuine crash: SIGKILL gives p1 no chance to flush or deregister.
  kill_hard(1);

  // The survivors form a new primary view and keep accepting commands.
  ASSERT_EQ(ctl(ctl_port(0), "put size large").rfind("ok", 0), 0u);
  const std::string after_kill = "color=red;shape=circle;size=large;";
  ASSERT_TRUE(await([&] { return dumps_equal({0, 2}, after_kill); }, 20000))
      << "survivors never converged after the kill";

  // Crash-restart: same config, fresh process, recovery from the WAL.
  spawn(1);
  ASSERT_TRUE(await(
      [&] {
        const std::string pong = ctl(ctl_port(1), "ping");
        return pong.find("recovered=1") != std::string::npos;
      },
      15000))
      << "restarted node never reported recovered=1";

  // Commands issued after the rejoin reach the restarted replica.
  ASSERT_EQ(ctl(ctl_port(0), "put rejoin yes").rfind("ok", 0), 0u);
  ASSERT_TRUE(await(
      [&] { return ctl(ctl_port(1), "get rejoin") == "yes"; }, 20000))
      << "restarted node never applied a post-rejoin command";

  // Survivors agree on the full history (the restarted node's volatile KV
  // only holds post-rejoin commands — durable TO cursors dedup the rest —
  // so it is checked via `get`, not full-dump equality).
  const std::string dump0 = ctl(ctl_port(0), "dump");
  const std::string dump2 = ctl(ctl_port(2), "dump");
  EXPECT_FALSE(dump0.empty());
  EXPECT_EQ(dump0, dump2);
  EXPECT_NE(dump0.find("rejoin=yes"), std::string::npos);

  // Graceful shutdown, then the offline audit over the merged traces.
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_EQ(ctl(ctl_port(i), "quit"), "ok");
    EXPECT_TRUE(reap(i, 5000)) << "node " << i << " did not exit on quit";
  }
  const daemon::AuditReport report = daemon::audit_dir(dir_ + "/traces");
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(report.processes, 3u);
  EXPECT_EQ(report.incarnations, 4u);  // one restart
  EXPECT_GT(report.to_events, 0u);
}

}  // namespace
}  // namespace dvs
