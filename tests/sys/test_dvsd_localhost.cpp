// Real-deployment system tests: dvsd OS processes on loopback.
//
// These are the end-to-end proofs that the stack survives outside the
// simulator: each test forks the actual dvsd binary (path baked in via
// DVSD_BIN_PATH) with generated config files, drives the cluster through
// its UDP control sockets, SIGKILLs members mid-stream (a genuine crash —
// no destructors, a torn trace tail on disk), and finally audits the
// merged on-disk traces with the same offline auditor `model_checker
// --audit` uses.
//
// Two deployments are exercised:
//   * DvsdLocalhostTest — the classic 3-node unsharded cluster:
//     kill / rejoin / recover, survivors converge, audit passes with 3
//     processes and 4 incarnations. Also asserts the daemon holds a
//     constant descriptor count across the whole workload (fd-leak guard).
//   * DvsdDynamicTest — a 4-node sharded deployment (K=4, r=2,
//     dynamic re-provisioning on): killing one host must migrate its two
//     column slots onto fresh survivors WITH their replicated state
//     (journal snapshot over the transfer protocol), new writes into the
//     migrated shards must commit under the refreshed map, a pure
//     survivor's descriptor count must not change (column teardown /
//     migration leaks nothing), and the per-group partitioned audit over
//     every trace — donors', joiners' and the dead host's torn files —
//     must end in VERDICT: PASS.
//
// Set DVS_NO_NET=1 to skip (no loopback sockets available).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "daemon/audit.h"
#include "shard/router.h"

namespace dvs {
namespace {

bool no_net() {
  const char* env = std::getenv("DVS_NO_NET");
  return env != nullptr && env[0] == '1';
}

/// One UDP control round-trip; "" on timeout/error (callers retry via
/// await()).
std::string ctl(std::uint16_t port, const std::string& command,
                int timeout_ms = 300) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string reply;
  if (::sendto(fd, command.data(), command.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) >= 0) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) > 0) {
      char buf[65536];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) reply.assign(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return reply;
}

bool await(const std::function<bool()>& pred, int deadline_ms,
           int poll_ms = 50) {
  for (int waited = 0;; waited += poll_ms) {
    if (pred()) return true;
    if (waited >= deadline_ms) return false;
    ::usleep(static_cast<useconds_t>(poll_ms) * 1000);
  }
}

/// Shared scaffolding: temp dir, generated configs, fork/exec of dvsd with
/// per-process logs, SIGKILL + reap, and the control-socket helpers.
/// Derived fixtures pick the node count and the config file contents.
class DvsdClusterTest : public ::testing::Test {
 protected:
  explicit DvsdClusterTest(int nodes) : nodes_(nodes), pids_(nodes, -1) {}

  void SetUp() override {
    if (no_net()) GTEST_SKIP() << "DVS_NO_NET=1: skipping localhost cluster";
    char tmpl[] = "/tmp/dvsd_localhost_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    // Spread port ranges across concurrent test runs; a collision shows up
    // as a bind failure in the child's log and a ping timeout here.
    base_port_ =
        static_cast<std::uint16_t>(22000 + (::getpid() * 17) % 30000);
    for (int i = 0; i < nodes_; ++i) write_config(i);
  }

  void TearDown() override {
    for (int i = 0; i < nodes_; ++i) {
      if (pids_[i] > 0) {
        ::kill(pids_[i], SIGKILL);
        reap(i, 5000);
      }
    }
    if (!HasFailure() && !dir_.empty()) {
      std::filesystem::remove_all(dir_);
    } else if (!dir_.empty()) {
      // Keep configs, daemon logs and traces for the post-mortem.
      std::fprintf(stderr, "dvsd test artifacts kept at %s\n", dir_.c_str());
    }
  }

  virtual void write_config(int i) = 0;

  [[nodiscard]] std::uint16_t peer_port(int i) const {
    return static_cast<std::uint16_t>(base_port_ + i);
  }
  [[nodiscard]] std::uint16_t ctl_port(int i) const {
    return static_cast<std::uint16_t>(base_port_ + nodes_ + i);
  }

  /// The config prologue every deployment shares.
  void write_common(std::ofstream& out, int i) {
    out << "node " << i << "\n"
        << "n " << nodes_ << "\n";
    for (int j = 0; j < nodes_; ++j) {
      out << "peer " << j << " 127.0.0.1:" << peer_port(j) << "\n";
    }
    out << "control 127.0.0.1:" << ctl_port(i) << "\n"
        << "wal_dir " << dir_ << "/p" << i << "/wal\n"
        << "trace_dir " << dir_ << "/traces\n";
  }

  void spawn(int i) {
    const std::string config = dir_ + "/p" + std::to_string(i) + ".conf";
    const std::string log = dir_ + "/p" + std::to_string(i) + ".log";
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      const int fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
      ::execl(DVSD_BIN_PATH, "dvsd", "--config", config.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    pids_[i] = pid;
  }

  void kill_hard(int i) {
    ASSERT_EQ(::kill(pids_[i], SIGKILL), 0);
    ASSERT_TRUE(reap(i, 5000));
  }

  /// waitpid with a deadline; clears the pid slot on success.
  bool reap(int i, int deadline_ms) {
    const bool gone = await(
        [&] {
          return ::waitpid(pids_[i], nullptr, WNOHANG) == pids_[i];
        },
        deadline_ms, 20);
    if (gone) pids_[i] = -1;
    return gone;
  }

  [[nodiscard]] bool pingable(int i) {
    return ctl(ctl_port(i), "ping").rfind("pong", 0) == 0;
  }

  [[nodiscard]] bool dumps_equal(std::initializer_list<int> nodes,
                                 const std::string& want) {
    for (int i : nodes) {
      if (ctl(ctl_port(i), "dump") != want) return false;
    }
    return true;
  }

  int nodes_;
  std::string dir_;
  std::uint16_t base_port_ = 0;
  std::vector<pid_t> pids_;
};

// ----- unsharded 3-node cluster ---------------------------------------------

class DvsdLocalhostTest : public DvsdClusterTest {
 protected:
  DvsdLocalhostTest() : DvsdClusterTest(3) {}

  void write_config(int i) override {
    std::ofstream out(dir_ + "/p" + std::to_string(i) + ".conf");
    write_common(out, i);
    out << "initial " << nodes_ << "\n";
    ASSERT_TRUE(out.good());
  }
};

TEST_F(DvsdLocalhostTest, KillRejoinAndAuditPasses) {
  for (int i = 0; i < nodes_; ++i) spawn(i);
  for (int i = 0; i < nodes_; ++i) {
    ASSERT_TRUE(await([&] { return pingable(i); }, 15000))
        << "node " << i << " never answered ping";
  }

  // Seed data from two different origins and wait for full convergence.
  ASSERT_EQ(ctl(ctl_port(0), "put color red").rfind("ok", 0), 0u);
  ASSERT_EQ(ctl(ctl_port(2), "put shape circle").rfind("ok", 0), 0u);
  const std::string seeded = "color=red;shape=circle;";
  ASSERT_TRUE(await([&] { return dumps_equal({0, 1, 2}, seeded); }, 15000))
      << "cluster never converged on the seed data";

  // Steady-state descriptor count at a node the rest of the test only
  // talks to — must be unchanged at the end (no leak per command, per
  // view change, or per peer restart).
  const std::string fds_before = ctl(ctl_port(0), "fds");
  ASSERT_FALSE(fds_before.empty());
  ASSERT_NE(fds_before.rfind("err", 0), 0u) << fds_before;

  // A genuine crash: SIGKILL gives p1 no chance to flush or deregister.
  kill_hard(1);

  // The survivors form a new primary view and keep accepting commands.
  ASSERT_EQ(ctl(ctl_port(0), "put size large").rfind("ok", 0), 0u);
  const std::string after_kill = "color=red;shape=circle;size=large;";
  ASSERT_TRUE(await([&] { return dumps_equal({0, 2}, after_kill); }, 20000))
      << "survivors never converged after the kill";

  // Crash-restart: same config, fresh process, recovery from the WAL.
  spawn(1);
  ASSERT_TRUE(await(
      [&] {
        const std::string pong = ctl(ctl_port(1), "ping");
        return pong.find("recovered=1") != std::string::npos;
      },
      15000))
      << "restarted node never reported recovered=1";

  // Commands issued after the rejoin reach the restarted replica.
  ASSERT_EQ(ctl(ctl_port(0), "put rejoin yes").rfind("ok", 0), 0u);
  ASSERT_TRUE(await(
      [&] { return ctl(ctl_port(1), "get rejoin") == "yes"; }, 20000))
      << "restarted node never applied a post-rejoin command";

  // Survivors agree on the full history (the restarted node's volatile KV
  // only holds post-rejoin commands — durable TO cursors dedup the rest —
  // so it is checked via `get`, not full-dump equality).
  const std::string dump0 = ctl(ctl_port(0), "dump");
  const std::string dump2 = ctl(ctl_port(2), "dump");
  EXPECT_FALSE(dump0.empty());
  EXPECT_EQ(dump0, dump2);
  EXPECT_NE(dump0.find("rejoin=yes"), std::string::npos);

  EXPECT_EQ(ctl(ctl_port(0), "fds"), fds_before)
      << "node 0 leaked or dropped descriptors across the workload";

  // Graceful shutdown, then the offline audit over the merged traces.
  for (int i = 0; i < nodes_; ++i) {
    EXPECT_EQ(ctl(ctl_port(i), "quit"), "ok");
    EXPECT_TRUE(reap(i, 5000)) << "node " << i << " did not exit on quit";
  }
  const daemon::AuditReport report = daemon::audit_dir(dir_ + "/traces");
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(report.processes, 3u);
  EXPECT_EQ(report.incarnations, 4u);  // one restart
  EXPECT_GT(report.to_events, 0u);
}

// ----- dynamic sharded 4-node cluster ---------------------------------------

constexpr int kPool = 4;
constexpr std::uint32_t kShards = 4;

/// The smallest key with the given tag prefix that FNV-routes to `group`
/// under K=4 — the same hash the daemons' routers use.
std::string key_for_shard(std::uint32_t group, const std::string& tag) {
  const shard::ShardRouter router(kShards);
  for (int i = 0;; ++i) {
    std::string key = tag + std::to_string(i);
    if (router.shard_of(key) == group) return key;
  }
}

class DvsdDynamicTest : public DvsdClusterTest {
 protected:
  DvsdDynamicTest() : DvsdClusterTest(kPool) {}

  void write_config(int i) override {
    std::ofstream out(dir_ + "/p" + std::to_string(i) + ".conf");
    write_common(out, i);
    // Rotating-window provisioning over the 4-node pool:
    //   g1={0,1} g2={1,2} g3={2,3} g4={3,0}
    // The suspect timeout is raised well past the spawn window so the
    // first pool view every daemon acts on still contains all four hosts
    // (a daemon that comes up last must not get planned away spuriously).
    out << "shards " << kShards << "\n"
        << "replication 2\n"
        << "dynamic 1\n"
        << "heartbeat_ms 100\n"
        << "suspect_ms 1500\n"
        << "propose_ms 750\n";
    ASSERT_TRUE(out.good());
  }

  /// Issues a routed command starting at `node`, chasing `moved shard=<k>
  /// node=<x>` redirects. Returns the first non-redirect reply ("" on
  /// timeout or a redirect loop — callers retry via await()).
  std::string routed(int node, const std::string& command) {
    for (int hop = 0; hop < kPool; ++hop) {
      const std::string reply = ctl(ctl_port(node), command);
      if (reply.rfind("moved ", 0) != 0) return reply;
      const std::size_t pos = reply.rfind("node=");
      if (pos == std::string::npos) return "";
      node = std::atoi(reply.c_str() + pos + 5);
      if (node < 0 || node >= nodes_) return "";
    }
    return "";
  }

  [[nodiscard]] std::uint64_t migrations_at(int i) {
    const std::string map = ctl(ctl_port(i), "shardmap");
    const std::size_t pos = map.find("migrations=");
    if (pos == std::string::npos) return ~0ULL;
    return std::strtoull(map.c_str() + pos + 11, nullptr, 10);
  }
};

TEST_F(DvsdDynamicTest, KilledHostsColumnsMigrateWithTheirState) {
  for (int i = 0; i < nodes_; ++i) spawn(i);
  for (int i = 0; i < nodes_; ++i) {
    ASSERT_TRUE(await([&] { return pingable(i); }, 15000))
        << "node " << i << " never answered ping";
  }

  // One key per shard; the redirect protocol routes each to a host.
  const std::string k1 = key_for_shard(1, "a");
  const std::string k2 = key_for_shard(2, "b");
  const std::string k3 = key_for_shard(3, "c");
  const std::string k4 = key_for_shard(4, "d");
  for (const auto& [key, value] :
       {std::pair{k1, std::string("v1")}, {k2, "v2"}, {k3, "v3"}, {k4, "v4"}}) {
    const std::string put = "put " + key + " " + value;
    ASSERT_TRUE(await(
        [&] { return routed(0, put).rfind("ok", 0) == 0; }, 20000))
        << "seed " << put << " never committed";
  }

  // Replication convergence at the replicas the kill will orphan: node 2
  // holds g3 (with node 3), node 0 holds g4 (with node 3).
  ASSERT_TRUE(await([&] { return ctl(ctl_port(2), "get " + k3) == "v3"; },
                    20000))
      << "g3 seed never replicated to node 2";
  ASSERT_TRUE(await([&] { return ctl(ctl_port(0), "get " + k4) == "v4"; },
                    20000))
      << "g4 seed never replicated to node 0";

  // The raised suspect timeout kept startup quiet: nothing migrated yet.
  for (int i = 0; i < nodes_; ++i) {
    EXPECT_EQ(migrations_at(i), 0ULL) << "spurious startup migration at "
                                      << i;
  }

  // Node 2 is the pure survivor of the coming kill: it donates g3's
  // snapshot and remaps ports but neither gains nor loses a column, so
  // its descriptor count must come out unchanged.
  const std::string fds_survivor = ctl(ctl_port(2), "fds");
  ASSERT_FALSE(fds_survivor.empty());
  ASSERT_NE(fds_survivor.rfind("err", 0), 0u) << fds_survivor;

  // Kill the host of g3-slot1 and g4-slot1 (replicas are provisioned in
  // ascending order). The pool view must evict it and every daemon must
  // converge on the same re-plan:
  //   g3: {2,3} -> {2,0}   (node 0 adopts slot1, donor node 2)
  //   g4: {0,3} -> {0,1}   (node 1 adopts slot1, donor node 0)
  kill_hard(3);
  const auto migrated = [&](int i) {
    const std::string map = ctl(ctl_port(i), "shardmap");
    return map.find("g3 2 0") != std::string::npos &&
           map.find("g4 0 1") != std::string::npos;
  };
  ASSERT_TRUE(await(
      [&] { return migrated(0) && migrated(1) && migrated(2); }, 45000))
      << "survivors never converged on the migrated shard map; maps:\n"
      << ctl(ctl_port(0), "shardmap") << ctl(ctl_port(1), "shardmap")
      << ctl(ctl_port(2), "shardmap");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(migrations_at(i), 2ULL) << "node " << i;
  }

  // State transfer proof: the pre-kill values are readable AT THE JOINERS
  // — node 0 never hosted g3 and node 1 never hosted g4, so these can only
  // come from the transferred journal snapshots.
  ASSERT_TRUE(await([&] { return ctl(ctl_port(0), "get " + k3) == "v3"; },
                    20000))
      << "joiner node 0 never served g3's transferred state";
  ASSERT_TRUE(await([&] { return ctl(ctl_port(1), "get " + k4) == "v4"; },
                    20000))
      << "joiner node 1 never served g4's transferred state";

  // The migrated columns accept and replicate NEW writes under the
  // refreshed map (joiner and surviving replica agree).
  const std::string k3b = key_for_shard(3, "post");
  const std::string k4b = key_for_shard(4, "post");
  ASSERT_TRUE(await(
      [&] { return routed(1, "put " + k3b + " w3").rfind("ok", 0) == 0; },
      20000));
  ASSERT_TRUE(await(
      [&] { return routed(2, "put " + k4b + " w4").rfind("ok", 0) == 0; },
      20000));
  ASSERT_TRUE(await([&] { return ctl(ctl_port(2), "get " + k3b) == "w3"; },
                    20000))
      << "post-migration g3 write never reached the surviving replica";
  ASSERT_TRUE(await([&] { return ctl(ctl_port(0), "get " + k4b) == "w4"; },
                    20000))
      << "post-migration g4 write never reached the surviving replica";

  // Shards whose hosts all survived are untouched by the episode.
  EXPECT_EQ(routed(0, "get " + k1), "v1");
  EXPECT_EQ(routed(0, "get " + k2), "v2");

  EXPECT_EQ(ctl(ctl_port(2), "fds"), fds_survivor)
      << "survivor node 2 leaked descriptors across the migration";

  // Graceful shutdown of the survivors, then the partitioned audit: every
  // group — including the two with a torn dead-host file and a joiner
  // incarnation continuing the order — must replay cleanly.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ctl(ctl_port(i), "quit"), "ok");
    EXPECT_TRUE(reap(i, 5000)) << "node " << i << " did not exit on quit";
  }
  const daemon::AuditReport report = daemon::audit_dir(dir_ + "/traces");
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_EQ(report.groups, 4u);
  // 8 initial column incarnations (4 shards x r=2) plus one per joiner.
  EXPECT_GE(report.incarnations, 10u);
  EXPECT_GT(report.to_events, 0u);
}

}  // namespace
}  // namespace dvs
