// Restart-vs-pause differential conformance: the same FaultPlan seeds must
// pass every oracle under both crash semantics.
//
// A plan's kCrash is *pause* semantics (node silent, volatile state
// intact). With ChaosConfig.crashes_restart the identical plan re-runs with
// each kCrash upgraded to a genuine crash-restart: volatile state wiped at
// the crash instant, the stack rebuilt from its write-ahead journals, the
// node silent until the paired kRecover. Scripted kRestart events
// (plan.w_restart) add instant restart-and-resume on top. Every arm keeps
// the online spec acceptors and Invariants 4.1/4.2 clean across n ∈
// {2,3,4} and hundreds of seeds, and the restart arm's sweep totals are
// byte-identical at any worker count — restart chaos reproduces exactly.
#include <gtest/gtest.h>

#include "parallel/seed_sweep.h"
#include "tosys/chaos.h"

namespace dvs::tosys {
namespace {

ChaosConfig quick_chaos(std::size_t n) {
  ChaosConfig c;
  c.n_processes = n;
  c.plan.horizon = 2 * sim::kSecond;
  c.plan.events = 8;
  c.broadcasts = 40;
  c.settle = 2 * sim::kSecond;
  return c;
}

parallel::ChaosSweepResult sweep(const ChaosConfig& chaos,
                                 std::uint64_t num_seeds, std::size_t jobs) {
  parallel::SeedSweepConfig config;
  config.first_seed = 1;
  config.num_seeds = num_seeds;
  config.jobs = jobs;
  return parallel::run_chaos_sweep(config, chaos);
}

TEST(RestartDifferentialTest, SameSeedsConformUnderBothCrashSemantics) {
  // w_restart stays 0 in both arms, so both generate the *identical*
  // FaultPlan per seed — the only difference is what a kCrash does.
  std::size_t total_seeds = 0;
  for (const std::size_t n : {2u, 3u, 4u}) {
    ChaosConfig pause_arm = quick_chaos(n);
    pause_arm.persistence = true;  // journaling on, restarts off
    const auto paused = sweep(pause_arm, 35, 0);
    ASSERT_FALSE(paused.first_failure.has_value())
        << "pause arm n=" << n << ":\n" << paused.first_failure->message;
    EXPECT_EQ(paused.total.restarts, 0u) << n;
    EXPECT_GT(paused.total.wal_appends, 0u) << n;

    ChaosConfig restart_arm = quick_chaos(n);
    restart_arm.crashes_restart = true;
    const auto restarted = sweep(restart_arm, 35, 0);
    ASSERT_FALSE(restarted.first_failure.has_value())
        << "restart arm n=" << n << ":\n" << restarted.first_failure->message;
    // The upgrade actually executed restarts and the journals carried them.
    EXPECT_GT(restarted.total.restarts, 0u) << n;
    EXPECT_GT(restarted.total.wal_appends, 0u) << n;
    EXPECT_GT(restarted.total.wal_bytes, 0u) << n;
    EXPECT_GT(restarted.total.deliveries, 0u) << n;
    total_seeds += paused.seeds_run + restarted.seeds_run;
  }
  EXPECT_GE(total_seeds, 200u);
}

TEST(RestartDifferentialTest, JournalingAloneDoesNotPerturbTheRun) {
  // Persistence with no restart adversary is pure write-out: the protocol
  // must behave event-for-event as without it (journal appends schedule
  // nothing and consume no randomness). Any drift here means durability
  // changed behaviour, not just recorded it.
  const ChaosConfig plain = quick_chaos(3);
  ChaosConfig journaled = quick_chaos(3);
  journaled.persistence = true;
  const auto a = sweep(plain, 20, 0);
  const auto b = sweep(journaled, 20, 0);
  ASSERT_FALSE(a.first_failure.has_value());
  ASSERT_FALSE(b.first_failure.has_value());
  EXPECT_EQ(a.total.events_checked, b.total.events_checked);
  EXPECT_EQ(a.total.views_installed, b.total.views_installed);
  EXPECT_EQ(a.total.deliveries, b.total.deliveries);
  EXPECT_EQ(a.total.net_sent, b.total.net_sent);
  EXPECT_EQ(a.total.net_delivered, b.total.net_delivered);
  EXPECT_EQ(a.total.fault_events, b.total.fault_events);
  EXPECT_EQ(b.total.restarts, 0u);
  EXPECT_GT(b.total.wal_bytes, 0u);
}

TEST(RestartDifferentialTest, ScriptedRestartEventsConform) {
  // kRestart as a first-class plan event: instant teardown, rebuild from
  // the store, immediately reachable (no paired kRecover).
  ChaosConfig chaos = quick_chaos(3);
  chaos.plan.w_restart = 0.3;
  const auto r = sweep(chaos, 30, 0);
  ASSERT_FALSE(r.first_failure.has_value()) << r.first_failure->message;
  EXPECT_GT(r.total.restarts, 0u);
  EXPECT_GT(r.total.fault_events, 0u);
  EXPECT_GT(r.total.deliveries, 0u);
}

TEST(RestartDifferentialTest, RestartTotalsAreThreadCountIndependent) {
  // The restart adversary keeps the chaos report byte-identical across
  // --jobs: every field of the merged ChaosStats including the full metric
  // export (storage.* counters, recovery-latency histograms).
  ChaosConfig chaos = quick_chaos(3);
  chaos.crashes_restart = true;
  chaos.plan.w_restart = 0.2;
  const auto serial = sweep(chaos, 30, 1);
  const auto fanned = sweep(chaos, 30, 4);
  ASSERT_FALSE(serial.first_failure.has_value())
      << serial.first_failure->message;
  ASSERT_FALSE(fanned.first_failure.has_value());
  EXPECT_GT(serial.total.restarts, 0u);
  EXPECT_EQ(serial.total, fanned.total);
  EXPECT_EQ(serial.seeds_run, fanned.seeds_run);
}

}  // namespace
}  // namespace dvs::tosys
