// Unit tests for the Cluster assembly itself: trace recording toggle,
// delivery hooks, per-process queries.
#include <gtest/gtest.h>

#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(ClusterTest, TraceRecordingCanBeDisabled) {
  ClusterConfig cfg;
  cfg.n_processes = 3;
  cfg.record_traces = false;
  Cluster c(cfg, 91);
  c.start();
  c.run_for(200 * kMillisecond);
  c.bcast(ProcessId{0}, AppMsg{1, ProcessId{0}, ""});
  c.run_for(1 * kSecond);
  EXPECT_TRUE(c.vs_trace().empty());
  EXPECT_TRUE(c.dvs_trace().empty());
  EXPECT_TRUE(c.to_trace().empty());
  // Deliveries are still tracked (they are results, not traces).
  EXPECT_EQ(c.deliveries_at(ProcessId{1}).size(), 1u);
}

TEST(ClusterTest, DeliveryHookFiresPerDelivery) {
  ClusterConfig cfg;
  cfg.n_processes = 3;
  Cluster c(cfg, 92);
  std::size_t hook_calls = 0;
  sim::Time last_at = 0;
  c.set_delivery_hook([&](const Delivery& d) {
    ++hook_calls;
    EXPECT_GE(d.at, last_at);
    last_at = d.at;
  });
  c.start();
  c.run_for(200 * kMillisecond);
  for (std::uint64_t uid = 1; uid <= 4; ++uid) {
    c.bcast(ProcessId{0}, AppMsg{uid, ProcessId{0}, ""});
  }
  c.run_for(1 * kSecond);
  EXPECT_EQ(hook_calls, 12u);  // 4 messages × 3 receivers
  EXPECT_EQ(c.deliveries().size(), 12u);
}

TEST(ClusterTest, InitialMembersSubset) {
  ClusterConfig cfg;
  cfg.n_processes = 5;
  cfg.initial_members = 2;
  Cluster c(cfg, 93);
  EXPECT_EQ(c.v0().size(), 2u);
  EXPECT_TRUE(c.v0().contains(ProcessId{0}));
  EXPECT_FALSE(c.v0().contains(ProcessId{4}));
  EXPECT_EQ(c.universe().size(), 5u);
}

TEST(ClusterTest, PrimaryFractionIgnoresPausedNodes) {
  ClusterConfig cfg;
  cfg.n_processes = 4;
  Cluster c(cfg, 94);
  c.start();
  c.run_for(300 * kMillisecond);
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);
  c.net().pause(ProcessId{3});
  c.run_for(2 * kSecond);
  // 3 of 4 processes counted (p3 paused); all three in the new primary.
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 0.75);
}

}  // namespace
}  // namespace dvs::tosys
