// Crash-point sweep: a crash-restart injected at *every* persistence
// barrier of a recorded run must leave the protocol correct and live.
//
// StableStore makes every append/replace a persistence barrier — after it
// returns, a crash loses nothing of that write. The sweep records one run
// with the barrier hook enumerating every (time, key) barrier, then re-runs
// the same seed once per barrier, tearing the writing process down at that
// exact point (scheduled at sim.now() so the restart lands on the event
// boundary right after the barrier's event completes) and rebuilding it
// from stable storage alone. Every variant must keep the always-on spec
// acceptors clean (Invariants 3.1/4.1/4.2, TO prefix consistency) and the
// restarted node must fully rejoin — no permanent wedge.
//
// Failures report the lowest failing (n, seed, barrier) replayably.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct Barrier {
  sim::Time at = 0;
  std::string key;
};

ClusterConfig sweep_config(std::size_t n) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.persistence = true;
  return cfg;
}

/// The scripted run every sweep variant repeats: client load, then a pause
/// window forcing a view change (so barriers cover attempt/register/
/// establish transitions, not just message appends), then heal and settle.
void drive(Cluster& c, std::size_t n) {
  c.start();
  c.run_for(300 * kMillisecond);
  for (std::uint64_t uid = 1; uid <= 4; ++uid) {
    const ProcessId p{static_cast<std::uint32_t>(uid % n)};
    c.bcast(p, AppMsg{uid, p, "m"});
  }
  c.run_for(500 * kMillisecond);
  c.net().pause(ProcessId{static_cast<std::uint32_t>(n - 1)});
  c.run_for(1500 * kMillisecond);
  c.net().resume(ProcessId{static_cast<std::uint32_t>(n - 1)});
  c.run_for(2 * kSecond);
}

ProcessId key_process(const std::string& key) {
  // Keys are "p<id>/<layer>".
  std::uint32_t id = 0;
  for (std::size_t i = 1; i < key.size() && key[i] != '/'; ++i) {
    id = id * 10 + static_cast<std::uint32_t>(key[i] - '0');
  }
  return ProcessId{id};
}

std::vector<Barrier> record_barriers(std::size_t n, std::uint64_t seed) {
  Cluster c(sweep_config(n), seed);
  std::vector<Barrier> out;
  c.store()->set_barrier_hook([&](const std::string& key) {
    out.push_back(Barrier{c.sim().now(), key});
  });
  drive(c, n);
  (void)c.oracle().check_invariants();
  EXPECT_TRUE(c.oracle().ok())
      << "baseline run dirty before any injection: n=" << n
      << " seed=" << seed;
  return out;
}

/// Re-runs (n, seed) restarting the process that wrote barrier `index`, at
/// that barrier. Returns a failure description, or nullopt if the variant
/// stayed correct and the node rejoined.
std::optional<std::string> sweep_one(std::size_t n, std::uint64_t seed,
                                     std::size_t index,
                                     const Barrier& barrier) {
  Cluster c(sweep_config(n), seed);
  const ProcessId victim = key_process(barrier.key);
  std::size_t seen = 0;
  bool injected = false;
  c.store()->set_barrier_hook([&](const std::string&) {
    ++seen;
    if (injected || seen != index + 1) return;
    injected = true;
    // The hook fires inside the victim's own event (mid-transition); the
    // teardown must wait for the event boundary.
    c.sim().schedule_at(c.sim().now(), [&c, victim] { c.restart(victim); });
  });
  drive(c, n);
  c.run_for(2 * kSecond);  // extra settle: recovery includes a rejoin
  (void)c.oracle().check_invariants();

  const auto fail = [&](const std::string& what) {
    return "crash-point n=" + std::to_string(n) +
           " seed=" + std::to_string(seed) +
           " barrier=" + std::to_string(index) + " (t=" +
           std::to_string(barrier.at) + ", key=" + barrier.key + "): " + what;
  };
  if (!injected) return fail("barrier never reached on replay");
  if (c.restarts() != 1) return fail("restart did not execute");
  if (!c.oracle().ok()) return fail(c.oracle().violation()->to_string());
  // Rejoin: the restarted incarnation must climb back into the full view —
  // a permanently wedged node (stale epoch accepted, lost registration)
  // would sit viewless or in a minority view forever.
  const auto& view = c.vs_node(victim).view();
  if (!view.has_value()) return fail("restarted node ended with no view");
  if (!view->contains(victim)) {
    return fail("restarted node's view omits itself");
  }
  if (view->size() != n) {
    return fail("restarted node wedged in a partial view of " +
                std::to_string(view->size()) + "/" + std::to_string(n));
  }
  if (c.primary_fraction() != 1.0) {
    return fail("cluster did not reconverge to an all-primary state");
  }
  return std::nullopt;
}

void run_sweep(std::size_t n, const std::vector<std::uint64_t>& seeds) {
  std::optional<std::string> lowest_failure;
  std::size_t swept = 0;
  for (std::uint64_t seed : seeds) {
    const std::vector<Barrier> barriers = record_barriers(n, seed);
    // Every persistence barrier is a crash point; the floor proves the run
    // actually journaled across all layers rather than idling.
    ASSERT_GE(barriers.size(), 40u) << "n=" << n << " seed=" << seed;
    for (std::size_t i = 0; i < barriers.size(); ++i) {
      ++swept;
      const std::optional<std::string> failure =
          sweep_one(n, seed, i, barriers[i]);
      if (failure.has_value() && !lowest_failure.has_value()) {
        lowest_failure = failure;  // seeds ascend, barriers ascend: lowest
      }
    }
  }
  EXPECT_FALSE(lowest_failure.has_value())
      << "lowest failing crash point (replay by running sweep_one with "
       "these parameters): "
      << *lowest_failure << " [swept " << swept << " crash points]";
}

TEST(CrashPointSweepTest, EveryBarrierSurvivesRestartN2) {
  run_sweep(2, {11, 12});
}

TEST(CrashPointSweepTest, EveryBarrierSurvivesRestartN3) {
  run_sweep(3, {11, 12});
}

// A focused probe: restarting a node that was *paused* at the time (the
// crash-under-partition composition) recovers too — the incarnation comes
// back silent, then rejoins when the pause lifts.
TEST(CrashPointSweepTest, RestartWhilePartitionedRejoins) {
  Cluster c(sweep_config(3), 77);
  c.start();
  c.run_for(500 * kMillisecond);
  c.net().pause(ProcessId{2});
  c.run_for(1 * kSecond);
  c.restart(ProcessId{2});  // crash the partitioned node
  c.run_for(1 * kSecond);
  c.net().resume(ProcessId{2});
  c.run_for(3 * kSecond);
  (void)c.oracle().check_invariants();
  EXPECT_TRUE(c.oracle().ok());
  ASSERT_TRUE(c.vs_node(ProcessId{2}).view().has_value());
  EXPECT_EQ(c.vs_node(ProcessId{2}).view()->size(), 3u);
  EXPECT_DOUBLE_EQ(c.primary_fraction(), 1.0);
}

}  // namespace
}  // namespace dvs::tosys
