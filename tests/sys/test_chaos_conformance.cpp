// Chaos-sweep conformance regression suite: the full distributed stack
// under FaultPlan-driven adversaries (duplication + reordering +
// truncation + partitions + crash/recovery) must produce traces the
// Figure 1/2/5 acceptors accept and states satisfying Invariants 4.1/4.2,
// across n ∈ {2,3,4} and hundreds of seeds. A negative arm re-injects the
// paper's printed Figure 5 errata and demonstrates the oracle rejects —
// with the same lowest failing seed at any worker count, so chaos
// counterexamples reproduce exactly.
#include <gtest/gtest.h>

#include <string>

#include "parallel/seed_sweep.h"
#include "tosys/chaos.h"

namespace dvs::tosys {
namespace {

/// Short-horizon chaos shape so a few hundred seeds stay test-suite fast;
/// every anomaly class is still armed (ChaosConfig defaults keep steady
/// dup/reorder/truncate/drop rates on top of the scripted plan).
ChaosConfig quick_chaos(std::size_t n) {
  ChaosConfig c;
  c.n_processes = n;
  c.plan.horizon = 2 * sim::kSecond;
  c.plan.events = 8;
  c.broadcasts = 40;
  c.settle = 2 * sim::kSecond;
  return c;
}

parallel::ChaosSweepResult sweep(const ChaosConfig& chaos,
                                 std::uint64_t num_seeds, std::size_t jobs) {
  parallel::SeedSweepConfig config;
  config.first_seed = 1;
  config.num_seeds = num_seeds;
  config.jobs = jobs;
  return parallel::run_chaos_sweep(config, chaos);
}

TEST(ChaosConformanceTest, SweepsAcceptAtEveryScale) {
  // ≥200 seeds across n ∈ {2,3,4}; every seed runs the whole stack under
  // its own FaultPlan with the acceptors fed online and Invariants 4.1/4.2
  // re-checked periodically. Any rejection fails with the replayable plan.
  std::size_t total_seeds = 0;
  for (const std::size_t n : {2u, 3u, 4u}) {
    const auto r = sweep(quick_chaos(n), n == 4 ? 60 : 80, 0);
    ASSERT_FALSE(r.first_failure.has_value())
        << "n=" << n << ":\n" << r.first_failure->message;
    EXPECT_EQ(r.seeds_failed, 0u);
    total_seeds += r.seeds_run;
    // The sweep must actually have exercised the fault machinery.
    EXPECT_GT(r.total.events_checked, 0u) << n;
    EXPECT_GT(r.total.invariant_checks, 0u) << n;
    EXPECT_GT(r.total.duplicated, 0u) << n;
    EXPECT_GT(r.total.reordered, 0u) << n;
    EXPECT_GT(r.total.truncated, 0u) << n;
    EXPECT_GT(r.total.fault_events, 0u) << n;
    EXPECT_GT(r.total.deliveries, 0u) << n;
  }
  EXPECT_GE(total_seeds, 200u);
}

TEST(ChaosConformanceTest, LateJoinerSweepAccepts) {
  // One process outside v0: its client broadcasts queue until it joins.
  // The corrected automata deliver each exactly once; this is the
  // configuration whose printed-figure counterpart must fail below.
  ChaosConfig chaos = quick_chaos(3);
  chaos.initial_members = 2;
  chaos.broadcasts = 120;
  const auto r = sweep(chaos, 60, 0);
  ASSERT_FALSE(r.first_failure.has_value()) << r.first_failure->message;
  EXPECT_GT(r.total.deliveries, 0u);
}

TEST(ChaosConformanceTest, TotalsAreThreadCountIndependent) {
  const ChaosConfig chaos = quick_chaos(3);
  const auto serial = sweep(chaos, 40, 1);
  const auto fanned = sweep(chaos, 40, 4);
  ASSERT_FALSE(serial.first_failure.has_value());
  ASSERT_FALSE(fanned.first_failure.has_value());
  EXPECT_EQ(serial.total, fanned.total);
  EXPECT_EQ(serial.seeds_run, fanned.seeds_run);
}

TEST(ChaosConformanceTest, PrintedFigureErratumIsRejectedDeterministically) {
  // Negative arm: revert the Figure 5 corrections (printed_figure_mode) in
  // the same late-joiner configuration. The ToAcceptor must reject, and
  // the lowest failing seed and its full failure account must be identical
  // whether the sweep ran on one worker or four.
  ChaosConfig chaos = quick_chaos(3);
  chaos.initial_members = 2;
  chaos.broadcasts = 120;
  chaos.to_options.printed_figure_mode = true;

  const auto serial = sweep(chaos, 20, 1);
  const auto fanned = sweep(chaos, 20, 4);
  ASSERT_TRUE(serial.first_failure.has_value())
      << "the printed Figure 5 behaviour went undetected";
  ASSERT_TRUE(fanned.first_failure.has_value());
  EXPECT_EQ(serial.first_failure->seed, fanned.first_failure->seed);
  EXPECT_EQ(serial.first_failure->message, fanned.first_failure->message);
  EXPECT_EQ(serial.seeds_failed, fanned.seeds_failed);

  // The diagnosis names the TO acceptor and embeds the replayable plan.
  const std::string& msg = serial.first_failure->message;
  EXPECT_NE(msg.find("TO acceptor rejected"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fault plan"), std::string::npos) << msg;

  // The counterexample replays: the same seed fails identically solo.
  try {
    (void)run_chaos_seed(serial.first_failure->seed, chaos);
    FAIL() << "replay of the failing seed passed";
  } catch (const ChaosFailure& e) {
    EXPECT_EQ(e.seed(), serial.first_failure->seed);
    EXPECT_EQ(std::string(e.what()), msg);
  }
}

}  // namespace
}  // namespace dvs::tosys
