// Sim-vs-real differential smoke test.
//
// The tentpole claim of the Transport abstraction is that the protocol
// stack cannot tell the backends apart: the same NodeRuntime code runs the
// same workload over (a) the deterministic SimNetwork and (b) three real
// UdpTransports on loopback, in one test process. The oracles are clean on
// both sides:
//   * every replica converges to the SAME final KV snapshot, and the sim
//     and real snapshots are identical strings;
//   * each side's in-memory spec-event logs, packaged as per-process
//     traces, pass the same offline auditor that checks real deployments
//     (daemon::audit_traces) — VS, DVS and TO acceptors plus Invariants
//     4.1/4.2.
//
// Only the transport and the clock differ between the two sides: the sim
// side advances virtual time, the real side slaves the simulator's timer
// queue to the wall clock exactly like dvsd's event loop.
//
// Set DVS_NO_NET=1 to skip the real half (the sim half still runs).
#include <gtest/gtest.h>

#include <time.h>
#include <unistd.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "daemon/audit.h"
#include "daemon/runtime.h"
#include "net/sim_network.h"
#include "net/udp_transport.h"
#include "sim/simulator.h"

namespace dvs {
namespace {

constexpr std::size_t kN = 3;

bool no_net() {
  const char* env = std::getenv("DVS_NO_NET");
  return env != nullptr && env[0] == '1';
}

std::uint64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

daemon::RuntimeOptions runtime_options() {
  daemon::RuntimeOptions options;
  options.record_in_memory = true;
  return options;
}

/// Packages each runtime's in-memory event log as the auditor's input.
daemon::AuditReport audit_runtimes(
    const std::vector<std::unique_ptr<daemon::NodeRuntime>>& nodes) {
  std::vector<daemon::ProcessTrace> traces;
  for (const auto& rt : nodes) {
    daemon::ProcessTrace trace;
    trace.path = rt->self().to_string();
    trace.metas.push_back({0, kN, kN, rt->self()});
    trace.events = rt->events();
    traces.push_back(std::move(trace));
  }
  return daemon::audit_traces(traces);
}

bool all_applied(
    const std::vector<std::unique_ptr<daemon::NodeRuntime>>& nodes,
    std::uint64_t want) {
  for (const auto& rt : nodes) {
    if (rt->kv().applied() < want) return false;
  }
  return true;
}

bool all_in_full_view(
    const std::vector<std::unique_ptr<daemon::NodeRuntime>>& nodes) {
  for (const auto& rt : nodes) {
    const std::optional<View>& v = rt->vs().view();
    if (!v.has_value() || v->size() != kN) return false;
  }
  return true;
}

/// The common workload: wait for the full view, have every member
/// broadcast one distinct put, wait until everyone applied all of them.
/// `run` advances the world until its predicate holds or its deadline
/// passes (sim: virtual time; real: wall clock) and returns success.
std::string run_workload(
    std::vector<std::unique_ptr<daemon::NodeRuntime>>& nodes,
    const std::function<bool(const std::function<bool()>&)>& run) {
  for (auto& rt : nodes) rt->start();
  if (!run([&] { return all_in_full_view(nodes); })) {
    return "error: initial view never formed";
  }
  for (std::size_t i = 0; i < kN; ++i) {
    nodes[i]->bcast_command("put k" + std::to_string(i) + " v" +
                            std::to_string(i));
  }
  if (!run([&] { return all_applied(nodes, kN); })) {
    return "error: commands never fully applied";
  }
  // All replicas must agree; return the common snapshot.
  const std::string snapshot = std::string(nodes[0]->kv().snapshot());
  for (const auto& rt : nodes) {
    if (rt->kv().snapshot() != snapshot) {
      return "error: replicas diverged: " + snapshot + " vs " +
             rt->kv().snapshot();
    }
  }
  return snapshot;
}

std::string run_sim_side(daemon::AuditReport* report) {
  sim::Simulator sim;
  Rng rng(7);
  net::SimNetwork net(sim, rng, net::NetConfig{}, make_universe(kN));
  std::vector<std::unique_ptr<daemon::NodeRuntime>> nodes;
  for (std::size_t i = 0; i < kN; ++i) {
    nodes.push_back(std::make_unique<daemon::NodeRuntime>(
        ProcessId{static_cast<std::uint32_t>(i)}, kN, kN, net, sim,
        runtime_options(), nullptr, nullptr, [&sim] { return sim.now(); }));
  }
  const auto run = [&](const std::function<bool()>& pred) {
    const sim::Time deadline = sim.now() + 30 * sim::kSecond;
    while (!pred() && sim.now() < deadline) {
      sim.run_until(sim.now() + 100 * sim::kMillisecond);
    }
    return pred();
  };
  const std::string snapshot = run_workload(nodes, run);
  *report = audit_runtimes(nodes);
  return snapshot;
}

std::string run_real_side(daemon::AuditReport* report) {
  sim::Simulator sim;  // timer queue only; slaved to the wall clock below
  std::vector<std::unique_ptr<net::UdpTransport>> nets;
  for (std::size_t i = 0; i < kN; ++i) {
    net::UdpConfig config;
    config.self = ProcessId{static_cast<std::uint32_t>(i)};
    config.bind_port = 0;
    nets.push_back(
        std::make_unique<net::UdpTransport>(config, make_universe(kN)));
  }
  for (auto& t : nets) {
    for (std::size_t j = 0; j < kN; ++j) {
      t->set_peer(ProcessId{static_cast<std::uint32_t>(j)},
                  {"127.0.0.1", nets[j]->local_port()});
    }
  }
  const std::uint64_t start = monotonic_us();
  const auto elapsed = [start] { return monotonic_us() - start; };
  std::vector<std::unique_ptr<daemon::NodeRuntime>> nodes;
  for (std::size_t i = 0; i < kN; ++i) {
    nodes.push_back(std::make_unique<daemon::NodeRuntime>(
        ProcessId{static_cast<std::uint32_t>(i)}, kN, kN, *nets[i], sim,
        runtime_options(), nullptr, nullptr, elapsed));
  }
  // dvsd's event loop in miniature, times three: advance the shared timer
  // queue to wall-now, flush every node's sends, drain every socket.
  const auto run = [&](const std::function<bool()>& pred) {
    const std::uint64_t deadline = elapsed() + 30'000'000;
    for (;;) {
      sim.run_until(elapsed());
      for (auto& t : nets) t->flush();
      for (auto& t : nets) t->drain();
      if (pred()) return true;
      if (elapsed() > deadline) return false;
      ::usleep(2000);
    }
  };
  const std::string snapshot = run_workload(nodes, run);
  *report = audit_runtimes(nodes);
  return snapshot;
}

TEST(SimRealDifferential, SameWorkloadSameStateBothAuditsPass) {
  daemon::AuditReport sim_report;
  const std::string sim_snapshot = run_sim_side(&sim_report);
  ASSERT_EQ(sim_snapshot.rfind("error:", 0), std::string::npos)
      << sim_snapshot;
  EXPECT_EQ(sim_snapshot, "k0=v0;k1=v1;k2=v2;");
  EXPECT_TRUE(sim_report.ok) << sim_report.to_string();
  EXPECT_GT(sim_report.to_events, 0u);

  if (no_net()) {
    GTEST_SKIP() << "DVS_NO_NET=1: sim side verified, skipping real side";
  }
  daemon::AuditReport real_report;
  const std::string real_snapshot = run_real_side(&real_report);
  ASSERT_EQ(real_snapshot.rfind("error:", 0), std::string::npos)
      << real_snapshot;
  EXPECT_TRUE(real_report.ok) << real_report.to_string();
  EXPECT_GT(real_report.to_events, 0u);

  // The differential heart: byte-identical replicated state across
  // simulated and real transports.
  EXPECT_EQ(sim_snapshot, real_snapshot);
}

}  // namespace
}  // namespace dvs
