// Metric sanity relations under chaos: per-seed metric snapshots of
// adversarial full-stack runs must satisfy the arithmetic the stack's
// semantics imply — deliveries bounded by sends plus duplications, DVS
// primaries bounded by VS installs, TO deliveries bounded by n × bcasts,
// and the span invariants (no view_change left open at quiescence, nested
// deliveries, non-overlapping registrations) all clean — across 200+
// seeds and n ∈ {2,3,4}.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "parallel/seed_sweep.h"
#include "tosys/chaos.h"

namespace dvs::tosys {
namespace {

std::uint64_t hist_count(const obs::MetricsSnapshot& m,
                         const std::string& name) {
  const auto it = m.histograms.find(name);
  return it == m.histograms.end() ? 0 : it->second.count;
}

ChaosConfig quick_chaos(std::size_t n) {
  ChaosConfig c;
  c.n_processes = n;
  c.plan.horizon = 2 * sim::kSecond;
  c.plan.events = 8;
  c.broadcasts = 40;
  c.settle = 2 * sim::kSecond;
  return c;
}

/// The relations every conforming seed must satisfy, stated against the
/// seed's own metric snapshot (one export path: the same counters the
/// chaos report and --metrics JSON aggregate).
void assert_sane(std::size_t n, std::uint64_t seed, const ChaosStats& s) {
  const obs::MetricsSnapshot& m = s.metrics;
  // Network conservation: every delivery traces back to a send or an
  // injected duplicate copy.
  const std::uint64_t sent = m.counter_sum("net.sent");
  const std::uint64_t delivered = m.counter_sum("net.delivered");
  const std::uint64_t duplicated = m.counter_sum("net.duplicated");
  EXPECT_LE(delivered, sent + duplicated) << "n=" << n << " seed=" << seed;
  EXPECT_GT(sent, 0u) << "n=" << n << " seed=" << seed;
  // A datagram must be delivered before it can fail to decode.
  EXPECT_LE(m.counter_sum("vs.decode_errors"), delivered)
      << "n=" << n << " seed=" << seed;
  // Primariness is a filter on VS installs: a node can accept at most the
  // views its VS layer installed.
  EXPECT_LE(m.counter_sum("dvs.views_attempted"),
            m.counter_sum("vs.views_installed"))
      << "n=" << n << " seed=" << seed;
  // Each broadcast is delivered at most once per process (TO at-most-once).
  EXPECT_LE(m.counter_sum("to.deliveries"),
            static_cast<std::uint64_t>(n) * m.counter_sum("to.bcasts"))
      << "n=" << n << " seed=" << seed;
  // The snapshot and the hand-rolled ChaosStats fields agree — one export
  // path, not two diverging ones.
  EXPECT_EQ(m.counter_sum("net.sent"), s.net_sent);
  EXPECT_EQ(m.counter_sum("net.delivered"), s.net_delivered);
  EXPECT_EQ(m.counter_sum("net.duplicated"), s.duplicated);
  EXPECT_EQ(m.counter_sum("net.reordered"), s.reordered);
  EXPECT_EQ(m.counter_sum("net.truncated"), s.truncated);
  EXPECT_EQ(m.counter_sum("vs.views_installed"), s.views_installed);
  EXPECT_EQ(m.counter_sum("vs.decode_errors"), s.decode_errors);
  EXPECT_EQ(m.counter_sum("vs.duplicates_suppressed"),
            s.duplicates_suppressed);
  EXPECT_EQ(m.counter_sum("to.deliveries"), s.deliveries);
  // Span invariants at quiescence: every view change resolved, every
  // delivery inside a client-view tenure, registrations never overlapping.
  EXPECT_EQ(m.counter_sum("trace.invariant.open_view_change"), 0u)
      << "n=" << n << " seed=" << seed;
  EXPECT_EQ(m.counter_sum("trace.invariant.non_nested_delivery"), 0u)
      << "n=" << n << " seed=" << seed;
  EXPECT_EQ(m.counter_sum("trace.invariant.overlapping_registration"), 0u)
      << "n=" << n << " seed=" << seed;
  // Tracer bookkeeping closes: every opened span ends completed or
  // abandoned (view_change), and completions carry latency samples.
  EXPECT_EQ(m.counter_sum("trace.view_change.opened"),
            m.counter_sum("trace.view_change.completed") +
                m.counter_sum("trace.view_change.abandoned"))
      << "n=" << n << " seed=" << seed;
  EXPECT_EQ(hist_count(m, "trace.view_change_us"),
            m.counter_sum("trace.view_change.completed"));
  EXPECT_EQ(hist_count(m, "trace.to_delivery_us"),
            m.counter_sum("trace.to_delivery.count"));
}

TEST(ChaosMetricsTest, SanityRelationsHoldPerSeedAcrossScales) {
  std::size_t total_seeds = 0;
  for (const std::size_t n : {2u, 3u, 4u}) {
    const ChaosConfig chaos = quick_chaos(n);
    const std::uint64_t seeds = n == 4 ? 60 : 80;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      ChaosStats s;
      ASSERT_NO_THROW(s = run_chaos_seed(seed, chaos))
          << "n=" << n << " seed=" << seed;
      assert_sane(n, seed, s);
      ++total_seeds;
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "stopping at first unsane seed: n=" << n
               << " seed=" << seed;
      }
    }
  }
  EXPECT_GE(total_seeds, 200u);
}

TEST(ChaosMetricsTest, SweepTotalsSatisfyTheSameRelations) {
  // Relations of the per-seed snapshots are preserved by the seed-order
  // merge: the sweep total is just the key-wise sum.
  const ChaosConfig chaos = quick_chaos(3);
  parallel::SeedSweepConfig sweep;
  sweep.first_seed = 1;
  sweep.num_seeds = 40;
  sweep.jobs = 0;
  const auto r = parallel::run_chaos_sweep(sweep, chaos);
  ASSERT_FALSE(r.first_failure.has_value()) << r.first_failure->message;
  assert_sane(3, 0, r.total);
  // The latency histograms actually accumulated across the sweep.
  EXPECT_GT(r.total.metrics.histograms.at("trace.view_change_us").count, 0u);
  EXPECT_GT(r.total.metrics.histograms.at("trace.registration_us").count,
            0u);
  EXPECT_GT(r.total.metrics.histograms.at("trace.to_delivery_us").count, 0u);
}

}  // namespace
}  // namespace dvs::tosys
