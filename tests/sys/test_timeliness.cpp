// Tests for the conditional-timeliness property checker ([12]-style timed
// trace property): stable periods must be timely; offers overlapping fault
// windows are out of scope.
#include <gtest/gtest.h>

#include "analysis/timeliness.h"

namespace dvs::analysis {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(TimelinessUnitTest, PureFunctionSemantics) {
  const ProcessSet receivers = make_process_set({0, 1});
  TimelinessConfig cfg;
  cfg.stabilization = 100;
  cfg.deadline = 50;
  std::vector<Offer> offers = {{1, 200}, {2, 500}, {3, 900}};
  std::vector<tosys::Delivery> deliveries = {
      {ProcessId{0}, ProcessId{0}, AppMsg{1, ProcessId{0}, ""}, 220},
      {ProcessId{1}, ProcessId{0}, AppMsg{1, ProcessId{0}, ""}, 240},
      {ProcessId{0}, ProcessId{0}, AppMsg{2, ProcessId{0}, ""}, 530},
      // uid 2 never reaches p1 in time.
      {ProcessId{1}, ProcessId{0}, AppMsg{2, ProcessId{0}, ""}, 800},
      {ProcessId{0}, ProcessId{0}, AppMsg{3, ProcessId{0}, ""}, 910},
      {ProcessId{1}, ProcessId{0}, AppMsg{3, ProcessId{0}, ""}, 930},
  };
  // A fault at t=850 puts offer 3 (window [800, 950]) out of scope.
  const std::vector<sim::Time> faults = {850};
  const auto r = check_conditional_timeliness(offers, deliveries, receivers,
                                              faults, cfg, /*run_end=*/2000);
  EXPECT_EQ(r.offers_total, 3u);
  EXPECT_EQ(r.offers_in_scope, 2u);  // offers 1 and 2
  EXPECT_EQ(r.met, 1u);              // offer 1
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations.front(), 2u);
  EXPECT_FALSE(r.ok());
}

TEST(TimelinessUnitTest, UnjudgedWhenRunEndsEarly) {
  const ProcessSet receivers = make_process_set({0});
  TimelinessConfig cfg;
  cfg.stabilization = 10;
  cfg.deadline = 100;
  const auto r = check_conditional_timeliness({{1, 50}}, {}, receivers, {},
                                              cfg, /*run_end=*/100);
  EXPECT_EQ(r.offers_in_scope, 0u);
  EXPECT_TRUE(r.ok());
}

TEST(TimelinessSystemTest, StableClusterIsTimely) {
  tosys::ClusterConfig cfg;
  cfg.n_processes = 4;
  tosys::Cluster c(cfg, 61);
  c.start();
  c.run_for(1 * kSecond);
  std::vector<Offer> offers;
  for (std::uint64_t uid = 1; uid <= 20; ++uid) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % 4)};
    offers.push_back({uid, c.sim().now()});
    c.bcast(p, AppMsg{uid, p, ""});
    c.run_for(50 * kMillisecond);
  }
  c.run_for(1 * kSecond);
  TimelinessConfig tcfg;  // 500 ms stabilization, 300 ms deadline
  const auto r = check_conditional_timeliness(
      offers, c.deliveries(), c.universe(), /*fault_events=*/{}, tcfg,
      c.sim().now());
  EXPECT_EQ(r.offers_in_scope, 20u);
  EXPECT_TRUE(r.ok()) << r.violations.size() << " in-scope offers missed "
                      << "the deadline";
}

TEST(TimelinessSystemTest, FaultWindowsAreExcludedButQuietOnesJudged) {
  tosys::ClusterConfig cfg;
  cfg.n_processes = 3;
  tosys::Cluster c(cfg, 62);
  c.start();
  c.run_for(1 * kSecond);
  std::vector<Offer> offers;
  std::vector<sim::Time> faults;
  std::uint64_t uid = 1;

  auto offer = [&] {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % 3)};
    offers.push_back({uid, c.sim().now()});
    c.bcast(p, AppMsg{uid, p, ""});
    ++uid;
  };

  for (int i = 0; i < 5; ++i) offer(), c.run_for(100 * kMillisecond);
  // Fault window: pause and resume p2.
  faults.push_back(c.sim().now());
  c.net().pause(ProcessId{2});
  offer();  // offered into the fault window → out of scope
  c.run_for(500 * kMillisecond);
  faults.push_back(c.sim().now());
  c.net().resume(ProcessId{2});
  c.run_for(2 * kSecond);  // restabilize
  for (int i = 0; i < 5; ++i) offer(), c.run_for(100 * kMillisecond);
  c.run_for(1 * kSecond);

  TimelinessConfig tcfg;
  const auto r = check_conditional_timeliness(
      offers, c.deliveries(), c.universe(), faults, tcfg, c.sim().now());
  EXPECT_GE(r.offers_in_scope, 7u);  // the two quiet batches
  EXPECT_LT(r.offers_in_scope, offers.size());
  EXPECT_TRUE(r.ok()) << "in-scope offer missed its deadline";
}

}  // namespace
}  // namespace dvs::analysis
