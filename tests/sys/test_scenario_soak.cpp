// Long-horizon scenario soaks with the conformance oracle and span
// invariants on the whole way:
//
//   * ChurnPlusWan — membership churn under genuine crash-restart
//     semantics, a two-region WAN latency matrix, link flaps and a drop
//     window, sustained for 50k heartbeat ticks (1000 simulated seconds at
//     the 20ms heartbeat). Zero violations, every seed's replicas
//     converged, availability within the declared SLO.
//   * ReprovisionChurn — the committed scenarios/reprovision-churn.scn
//     (path baked in via DVS_SCENARIO_DIR): a dynamically re-provisioned
//     K=4 sharded pool under crash-restart churn. Every outage that
//     outlives the suspect timeout migrates the dead host's column slots
//     onto survivors with state transfer; the soak demands actual
//     migrations, zero oracle/span violations, and the declared SLOs.
//
// DVS_SOAK_SCALE=<k> divides the horizons by k (sanitizer/CI runs); the
// default is the full length.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "workload/runner.h"
#include "workload/scenario.h"

namespace dvs::workload {
namespace {

std::uint64_t soak_scale() {
  if (const char* s = std::getenv("DVS_SOAK_SCALE")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 1) return v;
  }
  return 1;
}

TEST(ScenarioSoak, ChurnPlusWanHolds50kTicksWithinDeclaredSlos) {
  const std::uint64_t scale = soak_scale();

  Scenario s;
  s.name = "soak-churn-wan";
  s.n = 4;
  s.seeds = 2;
  s.seed = 1;
  // 20ms heartbeat ticks, 1'000'000ms horizon = 50k ticks at scale 1.
  // Suspicion/propose are WAN-widened so the 25ms inter-region latency
  // never looks like a failure — with churn disabled this topology
  // installs zero spurious views over the whole horizon.
  s.heartbeat_ms = 20;
  s.suspect_ms = 200;
  s.propose_ms = 500;
  s.warmup = 500 * sim::kMillisecond;
  s.horizon = (1'000'000 / scale) * sim::kMillisecond;
  s.settle = 5 * sim::kSecond;
  s.sample_period = 100 * sim::kMillisecond;
  s.clients = 2;
  s.think = 25 * sim::kMillisecond;
  // Read-heavy: the paper's TO recovery exchanges FULL summaries (complete
  // con/ord history) at every primary establishment, so a write-heavy mix
  // under sustained churn is quadratic in history by design (Section 6.1 —
  // see docs/WORKLOADS.md). The soak keeps the write stream modest so 50k
  // ticks of churn stay within honest memory/time budgets; churn-storm.scn
  // covers the write-heavy short-horizon case.
  s.mix.keys = 200;
  s.mix.reads = 96;
  s.mix.writes = 2;
  s.mix.scans = 2;
  // Two regions, 25ms one-way between them, mild steady loss.
  s.region = {0, 0, 1, 1};
  s.latency = {{1 * sim::kMillisecond, 25 * sim::kMillisecond},
               {25 * sim::kMillisecond, 1 * sim::kMillisecond}};
  s.drop = 0.005;
  // Scripted faults early enough to fit every scale: three 1s flaps of the
  // remote replica and one lossy window.
  s.flaps = {FlapSpec{ProcessId{3}, 10 * sim::kSecond, 20 * sim::kSecond,
                      1 * sim::kSecond, 3}};
  s.drop_windows = {WindowSpec{15 * sim::kSecond, 2 * sim::kSecond, 0.2}};
  // Churn with ChaosConfig's restart semantics: ~0.05 crash/recover pairs
  // per second (≈50 genuine crash-restart cycles per seed over the full
  // horizon), outages of 1-4s, volatile state wiped and rebuilt from the
  // WAL at each crash. Every restart triggers a full-summary state
  // exchange whose size grows with history, so the churn rate — not the
  // tick count — dominates wall clock and memory; 0.05/s keeps the
  // 50k-tick run cheap while still exercising ~100 recoveries per sweep.
  s.churn = ChurnSpec{0.05, true, 1 * sim::kSecond, 4 * sim::kSecond};
  s.slo_availability_ppm = 600000;
  s.validate();
  ASSERT_TRUE(s.crashes_restart());
  ASSERT_TRUE(s.needs_persistence());

  const std::uint64_t ticks = (s.horizon / sim::kMillisecond) / s.heartbeat_ms;
  if (scale == 1) {
    ASSERT_GE(ticks, 50000u);
  }

  const ScenarioSweepResult result = run_scenario(s, 2);

  // Zero oracle violations (a violating seed fails the sweep with the
  // replayable plan in the message) and zero span invariant violations.
  ASSERT_TRUE(result.ok()) << "seed " << result.first_failing_seed << ": "
                           << result.first_failure;
  EXPECT_EQ(result.seeds_run, 2u);
  EXPECT_EQ(result.slo.oracle_violations, 0u);
  EXPECT_EQ(result.slo.span_violations, 0u);
  EXPECT_EQ(result.slo.converged_seeds, 2u);

  // The churn actually happened and the stack kept serving through it.
  EXPECT_GT(result.slo.restarts, 0u);
  EXPECT_GT(result.slo.fault_events, 8u);  // flaps + window + churn pairs
  EXPECT_GT(result.slo.views_installed, s.n * 2);
  EXPECT_GT(result.slo.commits, 0u);
  EXPECT_GT(result.slo.samples, 0u);

  // Availability within the declared SLO, and the pass bit agrees.
  EXPECT_GE(result.slo.availability_ppm(), s.slo_availability_ppm);
  EXPECT_TRUE(result.slo.slo_pass());

  // Abandoned writes stay a small minority of issued operations even under
  // sustained churn (clients never wedge on a crashed home replica).
  EXPECT_LT(result.slo.timeouts * 10, result.slo.issued);
}

TEST(ScenarioSoak, ReprovisionChurnMigratesColumnsWithinDeclaredSlos) {
  const std::uint64_t scale = soak_scale();

  Scenario s = Scenario::parse_file(std::string(DVS_SCENARIO_DIR) +
                                    "/reprovision-churn.scn");
  ASSERT_EQ(s.name, "reprovision-churn");
  ASSERT_TRUE(s.dynamic);
  ASSERT_EQ(s.shards, 4u);
  ASSERT_EQ(s.replication, 2u);
  ASSERT_TRUE(s.crashes_restart());
  ASSERT_TRUE(s.needs_persistence());
  if (scale > 1) {
    s.horizon = std::max<sim::Time>(s.warmup + 2 * sim::kSecond,
                                    s.horizon / scale);
    s.seeds = 2;
  }
  s.validate();

  const ScenarioSweepResult result = run_scenario(s, 2);

  ASSERT_TRUE(result.ok()) << "seed " << result.first_failing_seed << ": "
                           << result.first_failure;
  EXPECT_EQ(result.seeds_run, s.seeds);
  EXPECT_EQ(result.slo.oracle_violations, 0u);
  EXPECT_EQ(result.slo.span_violations, 0u);
  EXPECT_EQ(result.slo.converged_seeds, s.seeds);

  // The churn produced genuine crash-restart cycles AND the outages that
  // outlived the suspect timeout re-provisioned columns (state transfer +
  // cutover) rather than stranding them on the dead host.
  EXPECT_GT(result.slo.restarts, 0u);
  EXPECT_GT(result.metrics.counter_sum("pool.migrations"), 0u)
      << "churn at this rate must trigger at least one slot migration";
  EXPECT_GT(result.slo.commits, 0u);
  EXPECT_GT(result.slo.samples, 0u);

  // The service stayed within the .scn's declared SLOs through the
  // migrations.
  EXPECT_GE(result.slo.availability_ppm(), s.slo_availability_ppm);
  EXPECT_TRUE(result.slo.slo_pass());
  EXPECT_LT(result.slo.timeouts * 10, result.slo.issued);
}

}  // namespace
}  // namespace dvs::workload
