// Tests for the weighted dynamic voting extension: the acceptance check
// measures a strict majority of the previous views' vote *weight*. Safety
// must be unchanged (weighted majorities of the same view intersect, so the
// paper's invariants and the refinement keep holding — verified by sweeps),
// while availability shifts toward heavy nodes.
#include <gtest/gtest.h>

#include "common/view.h"
#include "explorer/explorer.h"
#include "tosys/cluster.h"

namespace dvs {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(WeightedMajorityTest, CoincidesWithMajorityWhenUnweighted) {
  const ProcessSet w = make_process_set({0, 1, 2, 3, 4});
  for (std::size_t mask = 0; mask < 32; ++mask) {
    ProcessSet v;
    for (std::size_t i = 0; i < 5; ++i) {
      if (mask & (1u << i)) v.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
    }
    EXPECT_EQ(weighted_majority_of(v, w, {}), majority_of(v, w)) << mask;
  }
}

TEST(WeightedMajorityTest, HeavyNodeDominates) {
  const ProcessSet w = make_process_set({0, 1, 2});
  WeightMap weights{{ProcessId{0}, 5}};  // p1, p2 default to 1; total 7
  // {0} alone holds 5 of 7 votes.
  EXPECT_TRUE(weighted_majority_of(make_process_set({0}), w, weights));
  // {1,2} hold 2 of 7: not a weighted majority, though a counting one.
  EXPECT_FALSE(weighted_majority_of(make_process_set({1, 2}), w, weights));
  EXPECT_TRUE(majority_of(make_process_set({1, 2}), w));
}

TEST(WeightedMajorityTest, ZeroWeightMembersAreNonVoting) {
  const ProcessSet w = make_process_set({0, 1, 2});
  WeightMap weights{{ProcessId{2}, 0}};
  // {0,1} hold the full voting weight.
  EXPECT_TRUE(weighted_majority_of(make_process_set({0, 1}), w, weights));
  EXPECT_FALSE(weighted_majority_of(make_process_set({2}), w, weights));
}

TEST(WeightedVotingStack, HeavyNodeSideKeepsPrimary) {
  // Universe of 4 with p0 weighing 3 (total 6): after a 2/2 split, the side
  // with p0 holds 4 of 6 votes and keeps the primary — impossible for the
  // unweighted rule, where a 2/2 split loses it entirely (see
  // StackTest.ConcurrentMinoritiesNeverFormTwoPrimaries).
  tosys::ClusterConfig cfg;
  cfg.n_processes = 4;
  cfg.weights = WeightMap{{ProcessId{0}, 3}};
  tosys::Cluster c(cfg, 81);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().set_partition({make_process_set({0, 1}), make_process_set({2, 3})});
  c.run_for(3 * kSecond);
  EXPECT_TRUE(c.dvs_node(ProcessId{0}).in_primary());
  EXPECT_TRUE(c.dvs_node(ProcessId{1}).in_primary());
  EXPECT_FALSE(c.dvs_node(ProcessId{2}).in_primary());
  EXPECT_FALSE(c.dvs_node(ProcessId{3}).in_primary());
  // And it is live: a broadcast commits on the heavy side.
  c.bcast(ProcessId{0}, AppMsg{1, ProcessId{0}, ""});
  c.run_for(1 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{1}).size(), 1u);
  EXPECT_TRUE(c.check_dvs_trace().ok);
  EXPECT_TRUE(c.check_to_trace().ok);
}

TEST(WeightedVotingStack, LightSideNeverFormsAPrimary) {
  tosys::ClusterConfig cfg;
  cfg.n_processes = 4;
  cfg.weights = WeightMap{{ProcessId{0}, 3}};
  tosys::Cluster c(cfg, 82);
  c.start();
  c.run_for(300 * kMillisecond);
  // Even a 3-member component without the heavy node holds only 3 of 6.
  c.net().set_partition({make_process_set({0}), make_process_set({1, 2, 3})});
  c.run_for(3 * kSecond);
  for (unsigned i : {1u, 2u, 3u}) {
    EXPECT_FALSE(c.dvs_node(ProcessId{i}).in_primary()) << "p" << i;
  }
  EXPECT_TRUE(c.check_dvs_trace().ok);
}

TEST(WeightedVotingSweep, InvariantsAndRefinementHoldWithRandomWeights) {
  // The weighted rule only strengthens/shifts the acceptance check; the DVS
  // invariants and the refinement must keep holding for arbitrary weights.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng wrng(seed * 13);
    impl::VsToDvsOptions options;
    for (ProcessId p : make_universe(3)) {
      options.weights[p] = 1 + wrng.below(4);
    }
    explorer::ExplorerConfig config;
    config.steps = 1200;
    explorer::DvsImplExplorer ex(make_universe(3),
                                 initial_view(make_universe(3)), config,
                                 seed * 7, options);
    EXPECT_NO_THROW((void)ex.run()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dvs
