// Tests for the token-ring ordering mode (Totem-style) of the VS layer:
// the same safety obligations as the sequencer mode — per-view total order,
// sender FIFO, safe indications, spec-trace acceptance — plus token
// robustness (duplicate suppression, loss retransmission, regeneration via
// view change).
#include <gtest/gtest.h>

#include <algorithm>

#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

using sim::kMillisecond;
using sim::kSecond;

ClusterConfig ring_config(std::size_t n) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.vs.ordering = vsys::OrderingMode::kTokenRing;
  return cfg;
}

void expect_all_traces_ok(const Cluster& c) {
  const spec::AcceptResult vs = c.check_vs_trace();
  EXPECT_TRUE(vs.ok) << "VS trace rejected: " << vs.error;
  const spec::AcceptResult dvs = c.check_dvs_trace();
  EXPECT_TRUE(dvs.ok) << "DVS trace rejected: " << dvs.error;
  const spec::AcceptResult to = c.check_to_trace();
  EXPECT_TRUE(to.ok) << "TO trace rejected: " << to.error;
}

TEST(TokenRingTest, StableClusterDeliversEverythingInOneOrder) {
  Cluster c(ring_config(4), 71);
  c.start();
  c.run_for(300 * kMillisecond);
  for (std::uint64_t uid = 1; uid <= 20; ++uid) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % 4)};
    c.bcast(p, AppMsg{uid, p, ""});
    c.run_for(15 * kMillisecond);
  }
  c.run_for(2 * kSecond);
  const auto d0 = c.deliveries_at(ProcessId{0});
  ASSERT_EQ(d0.size(), 20u);
  for (unsigned i : {1u, 2u, 3u}) {
    const auto di = c.deliveries_at(ProcessId{i});
    ASSERT_EQ(di.size(), 20u) << "p" << i;
    for (std::size_t k = 0; k < 20; ++k) EXPECT_EQ(di[k].msg, d0[k].msg);
  }
  expect_all_traces_ok(c);
}

TEST(TokenRingTest, BurstFromOneSenderKeepsFifo) {
  Cluster c(ring_config(3), 72);
  c.start();
  c.run_for(300 * kMillisecond);
  // A burst larger than the per-rotation cap (16): must arrive in order
  // over multiple token rotations.
  for (std::uint64_t uid = 1; uid <= 40; ++uid) {
    c.bcast(ProcessId{0}, AppMsg{uid, ProcessId{0}, ""});
  }
  c.run_for(3 * kSecond);
  const auto d2 = c.deliveries_at(ProcessId{2});
  ASSERT_EQ(d2.size(), 40u);
  for (std::uint64_t uid = 1; uid <= 40; ++uid) {
    EXPECT_EQ(d2[uid - 1].msg.uid, uid);
  }
  expect_all_traces_ok(c);
}

TEST(TokenRingTest, TokenLossBlipIsRetransmitted) {
  Cluster c(ring_config(3), 73);
  c.start();
  c.run_for(300 * kMillisecond);
  // Short full-isolation blip (shorter than the suspect timeout): any token
  // in flight dies; the forwarder must retransmit and the group keeps
  // ordering without a view change.
  c.net().set_partition({make_process_set({0}), make_process_set({1}),
                         make_process_set({2})});
  c.run_for(30 * kMillisecond);
  c.net().heal();
  c.run_for(500 * kMillisecond);
  c.bcast(ProcessId{1}, AppMsg{1, ProcessId{1}, "after-blip"});
  c.run_for(2 * kSecond);
  EXPECT_EQ(c.deliveries_at(ProcessId{0}).size(), 1u);
  EXPECT_EQ(c.vs_node(ProcessId{0}).stats().views_installed, 0u)
      << "the blip must not force a view change";
  expect_all_traces_ok(c);
}

TEST(TokenRingTest, ViewChangeMintsFreshToken) {
  Cluster c(ring_config(4), 74);
  c.start();
  c.run_for(300 * kMillisecond);
  c.bcast(ProcessId{3}, AppMsg{1, ProcessId{3}, "before"});
  c.run_for(1 * kSecond);
  c.net().pause(ProcessId{2});
  c.run_for(2 * kSecond);  // reconfiguration; fresh token in the new view
  c.bcast(ProcessId{3}, AppMsg{2, ProcessId{3}, "after"});
  c.run_for(2 * kSecond);
  const auto d0 = c.deliveries_at(ProcessId{0});
  ASSERT_EQ(d0.size(), 2u);
  EXPECT_EQ(d0[1].msg.uid, 2u);
  expect_all_traces_ok(c);
}

TEST(TokenRingTest, SurvivesPartitionAndMergeWithTotalOrder) {
  Cluster c(ring_config(5), 75);
  c.start();
  c.run_for(300 * kMillisecond);
  c.net().set_partition({make_process_set({0, 1, 2}),
                         make_process_set({3, 4})});
  c.run_for(2 * kSecond);
  c.bcast(ProcessId{1}, AppMsg{1, ProcessId{1}, "majority"});
  c.run_for(1 * kSecond);
  c.net().heal();
  c.run_for(3 * kSecond);
  c.bcast(ProcessId{4}, AppMsg{2, ProcessId{4}, "merged"});
  c.run_for(2 * kSecond);
  for (ProcessId p : c.universe()) {
    const auto d = c.deliveries_at(p);
    ASSERT_EQ(d.size(), 2u) << p.to_string();
    EXPECT_EQ(d[0].msg.uid, 1u);
    EXPECT_EQ(d[1].msg.uid, 2u);
  }
  expect_all_traces_ok(c);
}

TEST(TokenRingTest, ChaosSafety) {
  Cluster c(ring_config(4), 76);
  Rng chaos(767);
  c.start();
  c.run_for(300 * kMillisecond);
  std::uint64_t uid = 1;
  for (int round = 0; round < 20; ++round) {
    const double r = chaos.uniform();
    if (r < 0.25) {
      std::vector<ProcessSet> groups(2);
      for (ProcessId p : c.universe()) groups[chaos.below(2)].insert(p);
      std::erase_if(groups, [](const ProcessSet& g) { return g.empty(); });
      c.net().set_partition(groups);
    } else if (r < 0.45) {
      c.net().heal();
    } else {
      const ProcessId p = chaos.pick(c.universe());
      c.bcast(p, AppMsg{uid++, p, ""});
    }
    c.run_for(static_cast<sim::Time>(chaos.between(100, 700)) * kMillisecond);
  }
  c.net().heal();
  c.run_for(5 * kSecond);
  expect_all_traces_ok(c);
  for (ProcessId a : c.universe()) {
    const auto da = c.deliveries_at(a);
    for (ProcessId b : c.universe()) {
      const auto db = c.deliveries_at(b);
      const std::size_t k = std::min(da.size(), db.size());
      for (std::size_t i = 0; i < k; ++i) ASSERT_EQ(da[i].msg, db[i].msg);
    }
  }
}

}  // namespace
}  // namespace dvs::tosys
