// Differential conformance: the batched stack must be indistinguishable
// from the unbatched one wherever the protocol's behaviour is determined.
//
// Three angles:
//  * Forced-order runs — a fault-free cluster with broadcasts spaced far
//    apart (>> network delay) has exactly one legal TO order, so the
//    batched and unbatched stacks must produce identical per-receiver
//    delivery sequences, and every receiver the same sequence.
//  * Chaos sweeps — 200 seeds × n ∈ {2,3,4} through the full FaultPlan
//    adversary with the spec oracles attached: every seed must be accepted
//    by both stacks (identical verdicts), and the erratum self-test must
//    still reject with batching on (batching must not blind the oracle).
//  * Merge ordering — with batching enabled, the per-seed ChaosStats and
//    metric snapshots must aggregate byte-identically for --jobs 1 vs
//    --jobs 4 (the seed-order merge regression of NetStats' new counters).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "parallel/seed_sweep.h"
#include "tosys/chaos.h"
#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

ClusterConfig quiet_cluster(std::size_t n, bool batching) {
  ClusterConfig cc;
  cc.n_processes = n;
  cc.net.batching = batching;
  return cc;
}

/// One delivery sequence per receiver, as (origin, uid) pairs in delivery
/// order.
std::map<ProcessId, std::vector<std::pair<ProcessId, std::uint64_t>>>
per_receiver_orders(const Cluster& cluster) {
  std::map<ProcessId, std::vector<std::pair<ProcessId, std::uint64_t>>> out;
  for (const Delivery& d : cluster.deliveries()) {
    out[d.receiver].emplace_back(d.origin, d.msg.uid);
  }
  return out;
}

/// Fault-free run with broadcasts spaced 50ms apart (the stack settles
/// between sends), so the TO order is forced by time and must be identical
/// whatever the transport does.
std::map<ProcessId, std::vector<std::pair<ProcessId, std::uint64_t>>>
forced_order_run(std::size_t n, bool batching, std::uint64_t seed) {
  Cluster cluster(quiet_cluster(n, batching), seed);
  const std::vector<ProcessId> procs(cluster.universe().begin(),
                                     cluster.universe().end());
  std::uint64_t uid = 1;
  for (std::size_t i = 0; i < 20; ++i) {
    const ProcessId p = procs[i % procs.size()];
    cluster.sim().schedule_at(
        200 * sim::kMillisecond + i * 50 * sim::kMillisecond,
        [&cluster, p, m = AppMsg{uid++, p, "fo"}] { cluster.bcast(p, m); });
  }
  cluster.start();
  cluster.run_for(2 * sim::kSecond);
  EXPECT_TRUE(cluster.oracle().ok());
  return per_receiver_orders(cluster);
}

TEST(BatchEquivalenceTest, ForcedOrderDeliveriesAreIdentical) {
  for (std::size_t n : {2u, 3u, 4u}) {
    const auto unbatched = forced_order_run(n, false, 77);
    const auto batched = forced_order_run(n, true, 77);
    ASSERT_EQ(unbatched.size(), n) << "n=" << n;
    EXPECT_EQ(batched, unbatched) << "n=" << n;
    // All receivers agree on one total order, and nothing was lost.
    const auto& reference = unbatched.begin()->second;
    EXPECT_EQ(reference.size(), 20u);
    for (const auto& [p, order] : unbatched) {
      EXPECT_EQ(order, reference) << p.to_string();
    }
  }
}

/// Short-horizon chaos config sized so 200 seeds stay fast enough for the
/// sanitizer gates (mirrors the --smoke sweep shape).
ChaosConfig quick_chaos(std::size_t n, bool batching) {
  ChaosConfig chaos;
  chaos.n_processes = n;
  chaos.batching = batching;
  chaos.plan.horizon = 2 * sim::kSecond;
  chaos.plan.events = 8;
  chaos.broadcasts = 40;
  chaos.settle = 2 * sim::kSecond;
  return chaos;
}

parallel::ChaosSweepResult sweep(std::size_t n, bool batching,
                                 std::size_t jobs,
                                 std::uint64_t num_seeds = 200) {
  parallel::SeedSweepConfig cfg;
  cfg.first_seed = 1;
  cfg.num_seeds = num_seeds;
  cfg.jobs = jobs;
  return parallel::run_chaos_sweep(cfg, quick_chaos(n, batching));
}

void expect_identical_verdicts(std::size_t n) {
  const parallel::ChaosSweepResult unbatched = sweep(n, false, 4);
  const parallel::ChaosSweepResult batched = sweep(n, true, 4);
  // Identical verdicts: the oracle accepts every seed on both stacks.
  EXPECT_EQ(unbatched.seeds_failed, 0u)
      << unbatched.first_failure->message;
  EXPECT_EQ(batched.seeds_failed, 0u) << batched.first_failure->message;
  EXPECT_EQ(batched.seeds_run, unbatched.seeds_run);
  // Liveness parity: chaos does not promise total liveness (a broadcast
  // issued at the horizon's edge by a partitioned process can die with the
  // run), but both stacks must land in the same high-delivery regime —
  // never more than the ceiling, never below 95% of it. (The soak test,
  // whose schedule guarantees healing, asserts the strict equality.)
  for (const parallel::ChaosSweepResult* r : {&unbatched, &batched}) {
    EXPECT_LE(r->total.deliveries, r->total.broadcasts * n);
    EXPECT_GE(r->total.deliveries, r->total.broadcasts * n * 95 / 100);
  }
  // The batching actually engaged, and it shrank the wire datagram count.
  // (Single-frame flushes travel raw, so datagrams = envelopes + raw frames.)
  EXPECT_GT(batched.total.batches, 0u);
  EXPECT_GE(batched.total.datagrams, batched.total.batches);
  EXPECT_GT(batched.total.batched_msgs, batched.total.batches);
  EXPECT_LT(batched.total.datagrams, unbatched.total.datagrams);
  EXPECT_EQ(unbatched.total.batches, 0u);
}

TEST(BatchEquivalenceTest, ChaosVerdictsMatchAtN2) {
  expect_identical_verdicts(2);
}

TEST(BatchEquivalenceTest, ChaosVerdictsMatchAtN3) {
  expect_identical_verdicts(3);
}

TEST(BatchEquivalenceTest, ChaosVerdictsMatchAtN4) {
  expect_identical_verdicts(4);
}

TEST(BatchEquivalenceTest, BatchingDoesNotBlindTheOracle) {
  // Re-inject the paper's Figure 5 errata with batching on: the oracle must
  // still reject — a transport change that masked spec violations would be
  // worse than no batching at all.
  ChaosConfig chaos = quick_chaos(3, true);
  chaos.initial_members = 2;
  chaos.broadcasts = 200;
  chaos.to_options.printed_figure_mode = true;
  parallel::SeedSweepConfig cfg;
  cfg.first_seed = 1;
  cfg.num_seeds = 60;
  cfg.jobs = 4;
  const parallel::ChaosSweepResult r =
      parallel::run_chaos_sweep(cfg, chaos);
  EXPECT_GT(r.seeds_failed, 0u);
  ASSERT_TRUE(r.first_failure.has_value());
  EXPECT_NE(r.first_failure->message.find("chaos seed"), std::string::npos);
}

// The NetStats/ChaosStats merge-ordering regression (and the TSan target:
// the batched sweep shares the thread pool, so data races in the new batch
// counters would surface here).
TEST(BatchEquivalenceTest, ParallelSweepMergesIdenticallyForAnyJobCount) {
  const parallel::ChaosSweepResult j1 = sweep(3, true, 1, 60);
  const parallel::ChaosSweepResult j4 = sweep(3, true, 4, 60);
  EXPECT_EQ(j1.seeds_failed, 0u);
  EXPECT_EQ(j4.seeds_failed, 0u);
  // Field-wise totals, including the new batch counters, merge in seed
  // order: byte-identical whatever the worker count.
  EXPECT_TRUE(j1.total == j4.total);
  // And the serialized metric snapshot (what --metrics prints and
  // BENCH_obs.json records) is byte-identical too.
  EXPECT_EQ(j1.total.metrics.to_json(), j4.total.metrics.to_json());
}

}  // namespace
}  // namespace dvs::tosys
