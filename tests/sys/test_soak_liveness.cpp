// Long-run soak/liveness: a 10,000-tick (200 simulated seconds at the 20ms
// heartbeat) chaos schedule of partitions that always heal, with client
// broadcasts spread across the whole horizon. At quiescence:
//   * the conformance oracle accepted the entire execution;
//   * every broadcast was delivered at every process (total liveness — the
//     spec only promises this in a totally-registered view, which the
//     healed, settled cluster reaches);
//   * every process holds the same TO order (not just prefixes: quiescence
//     means everyone caught up);
//   * no causal span is still open (open view changes / registrations
//     would mean a recovery that never completed).
// Runs the batched and unbatched stacks through the identical schedule.
// ctest label: slow.
#include <gtest/gtest.h>

#include <vector>

#include "obs/stack_tracer.h"
#include "tosys/cluster.h"

namespace dvs::tosys {
namespace {

constexpr sim::Time kTick = 20 * sim::kMillisecond;
constexpr sim::Time kHorizon = 10000 * kTick;  // 200 s
constexpr std::size_t kBroadcasts = 400;

void run_soak(bool batching) {
  ClusterConfig cc;
  cc.n_processes = 3;
  cc.net.batching = batching;
  // Mild steady anomalies on top of the partition schedule.
  cc.net.drop_probability = 0.01;
  cc.net.duplicate_probability = 0.05;
  Cluster cluster(cc, /*seed=*/2026);

  // Healing partition schedule: every 4 s one process is isolated for
  // 1.6 s, rotating through the membership; every 10th cycle pauses the
  // victim instead (crash + recovery). Every fault heals well before the
  // horizon ends.
  const std::vector<ProcessId> procs(cluster.universe().begin(),
                                     cluster.universe().end());
  std::size_t cycle = 0;
  for (sim::Time t = 2 * sim::kSecond; t + 2 * sim::kSecond < kHorizon;
       t += 4 * sim::kSecond, ++cycle) {
    const ProcessId victim = procs[cycle % procs.size()];
    if (cycle % 10 == 9) {
      cluster.sim().schedule_at(
          t, [&cluster, victim] { cluster.net().pause(victim); });
      cluster.sim().schedule_at(t + 1600 * sim::kMillisecond,
                                [&cluster, victim] {
                                  cluster.net().resume(victim);
                                });
    } else {
      cluster.sim().schedule_at(t, [&cluster, victim, &procs] {
        ProcessSet rest;
        for (ProcessId p : procs) {
          if (p != victim) rest.insert(p);
        }
        cluster.net().set_partition({ProcessSet{victim}, rest});
      });
      cluster.sim().schedule_at(t + 1600 * sim::kMillisecond,
                                [&cluster] { cluster.net().heal(); });
    }
  }

  // Client load across the whole horizon, round-robin over the processes —
  // many broadcasts land mid-partition and must survive the reconfiguration
  // traffic to be delivered after the heal.
  std::uint64_t uid = 1;
  for (std::size_t i = 0; i < kBroadcasts; ++i) {
    const sim::Time at = 1 + (kHorizon - 2 * sim::kSecond) * i / kBroadcasts;
    const ProcessId p = procs[i % procs.size()];
    cluster.sim().schedule_at(
        at, [&cluster, p, m = AppMsg{uid++, p, "soak"}] {
          cluster.bcast(p, m);
        });
  }

  cluster.start();
  cluster.run_for(kHorizon);
  // Quiescence: everything healed (the schedule guarantees it), settle out.
  cluster.net().heal();
  for (ProcessId p : cluster.universe()) cluster.net().resume(p);
  cluster.run_for(5 * sim::kSecond);

  ASSERT_TRUE(cluster.oracle().ok())
      << cluster.oracle().violation()->to_string();
  EXPECT_TRUE(cluster.oracle().check_invariants());

  // Total liveness: every broadcast delivered everywhere.
  EXPECT_EQ(cluster.deliveries().size(), kBroadcasts * procs.size());
  // And in one agreed order: at quiescence every process's TO sequence is
  // identical, not merely a common prefix.
  std::vector<std::uint64_t> reference;
  for (const Delivery& d : cluster.deliveries_at(procs[0])) {
    reference.push_back(d.msg.uid);
  }
  EXPECT_EQ(reference.size(), kBroadcasts);
  for (ProcessId p : procs) {
    std::vector<std::uint64_t> order;
    for (const Delivery& d : cluster.deliveries_at(p)) {
      order.push_back(d.msg.uid);
    }
    EXPECT_EQ(order, reference) << p.to_string();
  }

  // No span still open at quiescence: every view change resolved, every
  // registration episode closed, every delivery inside a view tenure.
  const obs::SpanInvariantReport spans =
      obs::check_span_invariants(cluster.trace());
  EXPECT_TRUE(spans.all_zero())
      << "open_view_change=" << spans.open_view_change
      << " non_nested_delivery=" << spans.non_nested_delivery
      << " overlapping_registration=" << spans.overlapping_registration;
}

TEST(SoakLivenessTest, TenThousandTicksUnbatched) { run_soak(false); }

TEST(SoakLivenessTest, TenThousandTicksBatched) { run_soak(true); }

}  // namespace
}  // namespace dvs::tosys
