// Tests for the static primary-view baselines and the analysis helpers.
#include <gtest/gtest.h>

#include "analysis/availability.h"
#include "baseline/static_primary.h"

namespace dvs::baseline {
namespace {

TEST(MajorityDetectorTest, StrictMajorityOfUniverse) {
  MajorityDetector det(make_universe(5));
  EXPECT_TRUE(det.is_primary(make_process_set({0, 1, 2})));
  EXPECT_TRUE(det.is_primary(make_process_set({0, 1, 2, 3, 4})));
  EXPECT_FALSE(det.is_primary(make_process_set({0, 1})));
  // Exactly half is not a majority.
  MajorityDetector det4(make_universe(4));
  EXPECT_FALSE(det4.is_primary(make_process_set({0, 1})));
  EXPECT_TRUE(det4.is_primary(make_process_set({0, 1, 2})));
}

TEST(MajorityDetectorTest, MembersOutsideUniverseDoNotCount) {
  MajorityDetector det(make_universe(3));
  EXPECT_FALSE(det.is_primary(make_process_set({1, 7, 8, 9})));
  EXPECT_TRUE(det.is_primary(make_process_set({0, 1, 9})));
}

TEST(QuorumSetDetectorTest, ExplicitQuorums) {
  QuorumSetDetector det({make_process_set({0, 1}), make_process_set({0, 2}),
                         make_process_set({1, 2})});
  EXPECT_TRUE(det.is_primary(make_process_set({0, 1})));
  EXPECT_TRUE(det.is_primary(make_process_set({0, 1, 2})));
  EXPECT_FALSE(det.is_primary(make_process_set({0})));
  EXPECT_FALSE(det.is_primary(make_process_set({2})));
}

TEST(QuorumSetDetectorTest, RejectsNonIntersectingQuorums) {
  EXPECT_THROW(QuorumSetDetector({make_process_set({0, 1}),
                                  make_process_set({2, 3})}),
               std::invalid_argument);
  EXPECT_THROW(QuorumSetDetector({}), std::invalid_argument);
}

TEST(QuorumSetDetectorTest, MajorityFactoryMatchesMajorityDetector) {
  const ProcessSet universe = make_universe(5);
  const QuorumSetDetector qs = QuorumSetDetector::majorities(universe);
  const MajorityDetector mj(universe);
  // Sample memberships; the two must agree.
  for (std::size_t mask = 1; mask < 32; ++mask) {
    ProcessSet members;
    for (std::size_t i = 0; i < 5; ++i) {
      if (mask & (std::size_t{1} << i)) members.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
    }
    EXPECT_EQ(qs.is_primary(members), mj.is_primary(members)) << mask;
  }
}

TEST(QuorumSetDetectorTest, WeightedVoting) {
  // p0 has weight 3, the rest weight 1 each (total 6): p0 plus any other
  // process beats half; the three light nodes together do not (3 is not
  // > 3).
  const ProcessSet universe = make_universe(4);
  const QuorumSetDetector det =
      QuorumSetDetector::weighted(universe, {3, 1, 1, 1});
  EXPECT_TRUE(det.is_primary(make_process_set({0, 1})));
  EXPECT_FALSE(det.is_primary(make_process_set({1, 2, 3})));
  EXPECT_FALSE(det.is_primary(make_process_set({0})));
}

TEST(DynamicVotingOracleTest, ShrinksGracefully) {
  DynamicVotingOracle oracle(initial_view(make_universe(5)));
  // 5 → 3: majority of 5 ✓.
  EXPECT_TRUE(oracle.advance(make_process_set({0, 1, 2})));
  // 3 → 2: majority of 3 ✓ (this is what static majority cannot do).
  EXPECT_TRUE(oracle.advance(make_process_set({0, 1})));
  // 2 → 1: 1 is not > 2/2.
  EXPECT_FALSE(oracle.advance(make_process_set({0})));
  // The primary stays {0,1}; a component containing both regains it.
  EXPECT_TRUE(oracle.advance(make_process_set({0, 1, 3, 4})));
  EXPECT_TRUE(oracle.is_member(ProcessId{4}));
}

TEST(DynamicVotingOracleTest, DisjointComponentNeverWins) {
  DynamicVotingOracle oracle(initial_view(make_universe(4)));
  EXPECT_TRUE(oracle.advance(make_process_set({0, 1, 2})));
  EXPECT_FALSE(oracle.advance(make_process_set({3})));
  EXPECT_FALSE(oracle.advance(make_process_set({1, 3})));  // 1 of 3
  EXPECT_TRUE(oracle.advance(make_process_set({1, 2, 3})));
}

}  // namespace
}  // namespace dvs::baseline

namespace dvs::analysis {
namespace {

TEST(PercentilesTest, OrderStatistics) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const Percentiles p = percentiles(samples);
  EXPECT_EQ(p.count, 100u);
  EXPECT_NEAR(p.p50, 50.0, 1.0);
  EXPECT_NEAR(p.p90, 90.0, 1.0);
  EXPECT_NEAR(p.p99, 99.0, 1.0);
  EXPECT_NEAR(p.mean, 50.5, 0.01);
}

TEST(PercentilesTest, EmptyInput) {
  const Percentiles p = percentiles({});
  EXPECT_EQ(p.count, 0u);
  EXPECT_EQ(p.mean, 0.0);
}

TEST(ChainConditionTest, HoldsOnRealExecutions) {
  tosys::ClusterConfig cfg;
  cfg.n_processes = 4;
  tosys::Cluster c(cfg, 77);
  c.start();
  c.run_for(300 * sim::kMillisecond);
  c.net().set_partition({make_process_set({0, 1, 2}), make_process_set({3})});
  c.run_for(2 * sim::kSecond);
  c.net().heal();
  c.run_for(2 * sim::kSecond);
  EXPECT_TRUE(chain_condition_holds(c.dvs_trace(), c.v0()));
}

TEST(ChainConditionTest, DetectsBrokenChains) {
  // A synthetic trace with two primaries attempted by disjoint process
  // sets and no linking views: the chain condition must fail.
  const View v0{ViewId::initial(), make_process_set({0, 1})};
  std::vector<spec::DvsEvent> trace;
  const View w{ViewId{5, ProcessId{2}}, make_process_set({2, 3})};
  trace.push_back(spec::EvNewview{ProcessId{2}, w});
  trace.push_back(spec::EvNewview{ProcessId{3}, w});
  EXPECT_FALSE(chain_condition_holds(trace, v0));
}

TEST(IsisPropertyTest, HoldsInQuiescentViewChanges) {
  // If the group is quiescent when the view changes, co-moving members
  // trivially received the same (empty or fully-drained) message sets.
  tosys::ClusterConfig cfg;
  cfg.n_processes = 3;
  tosys::Cluster c(cfg, 41);
  c.start();
  c.run_for(300 * sim::kMillisecond);
  c.bcast(ProcessId{0}, AppMsg{1, ProcessId{0}, "x"});
  c.run_for(1 * sim::kSecond);  // fully delivered before the change
  c.net().pause(ProcessId{2});
  c.run_for(2 * sim::kSecond);
  const IsisPropertyReport r = isis_same_messages(c.dvs_trace(), c.v0());
  EXPECT_GT(r.pairs_checked, 0u);
  EXPECT_EQ(r.pairs_equal, r.pairs_checked);
}

TEST(IsisPropertyTest, MeasuredUnderChurnWithTraffic) {
  // Under concurrent traffic and churn DVS does not guarantee the Isis
  // property; the analyzer reports the achieved fraction (Section 7's
  // open question, quantified). It must never crash and the fraction is a
  // valid probability.
  tosys::ClusterConfig cfg;
  cfg.n_processes = 4;
  tosys::Cluster c(cfg, 43);
  c.start();
  c.run_for(300 * sim::kMillisecond);
  std::uint64_t uid = 1;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      const ProcessId p{static_cast<ProcessId::Rep>(i % 4)};
      c.bcast(p, AppMsg{uid++, p, ""});
    }
    c.net().pause(ProcessId{3});
    c.run_for(1 * sim::kSecond);
    c.net().resume(ProcessId{3});
    c.run_for(2 * sim::kSecond);
  }
  const IsisPropertyReport r = isis_same_messages(c.dvs_trace(), c.v0());
  EXPECT_GT(r.views_examined, 0u);
  EXPECT_GE(r.fraction_equal(), 0.0);
  EXPECT_LE(r.fraction_equal(), 1.0);
}

TEST(AvailabilitySamplerTest, TracksPartitionLoss) {
  tosys::ClusterConfig cfg;
  cfg.n_processes = 5;
  tosys::Cluster c(cfg, 5);
  AvailabilitySampler sampler(c, c.v0());
  c.start();
  c.run_for(500 * sim::kMillisecond);
  for (int i = 0; i < 10; ++i) {
    sampler.sample();
    c.run_for(50 * sim::kMillisecond);
  }
  const AvailabilityReport before = sampler.report();
  EXPECT_NEAR(before.dynamic_dvs, 1.0, 0.01);
  EXPECT_NEAR(before.static_majority, 1.0, 0.01);
  EXPECT_NEAR(before.oracle_dynamic, 1.0, 0.01);
}

}  // namespace
}  // namespace dvs::analysis
