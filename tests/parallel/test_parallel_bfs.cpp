// The sharded parallel exhaustive search must visit exactly the state
// space the serial search does: states_visited and transitions are defined
// by the reachability graph, not by the traversal interleaving, so every
// jobs count has to report identical counts (docs/PERFORMANCE.md).
#include "explorer/exhaustive.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "parallel/sharded_set.h"
#include "parallel/state_hash.h"

namespace dvs::explorer {
namespace {

ExhaustiveConfig scope_for(std::size_t n) {
  ExhaustiveConfig config;
  ProcessSet shrink;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    shrink.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, make_universe(n)},
      View{ViewId{2, ProcessId{0}}, shrink.empty() ? make_universe(n) : shrink},
  };
  config.send_budget = 1;
  return config;
}

TEST(ParallelBfsTest, SpecCountsMatchSerialAtEveryJobsCount) {
  for (const std::size_t n : {2u, 3u}) {
    ExhaustiveConfig config = scope_for(n);
    const ProcessSet universe = make_universe(n);
    const View v0 = initial_view(universe);

    config.jobs = 1;
    const ExhaustiveStats serial =
        exhaustive_check_dvs_spec(universe, v0, config);
    ASSERT_FALSE(serial.truncated);

    for (const std::size_t jobs : {2u, 4u, 8u}) {
      config.jobs = jobs;
      const ExhaustiveStats parallel =
          exhaustive_check_dvs_spec(universe, v0, config);
      EXPECT_EQ(parallel.states_visited, serial.states_visited)
          << "n=" << n << " jobs=" << jobs;
      EXPECT_EQ(parallel.transitions, serial.transitions)
          << "n=" << n << " jobs=" << jobs;
      EXPECT_FALSE(parallel.truncated);
    }
  }
}

TEST(ParallelBfsTest, ImplCountsMatchSerial) {
  // One candidate view, no sends: the largest DVS-IMPL scope that still
  // enumerates untruncated in CI time (adding one send makes it ~60×
  // bigger). Message interleavings are covered by the spec-scope tests —
  // this one exercises the impl-specific path: the refinement checker
  // running inside every parallel expansion.
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  ExhaustiveConfig config;
  config.candidate_views = {View{ViewId{1, ProcessId{0}}, universe}};
  config.send_budget = 0;

  config.jobs = 1;
  const ExhaustiveStats serial =
      exhaustive_check_dvs_impl(universe, v0, config);
  ASSERT_FALSE(serial.truncated);
  EXPECT_GT(serial.states_visited, 100u);

  for (const std::size_t jobs : {2u, 8u}) {
    config.jobs = jobs;
    const ExhaustiveStats parallel =
        exhaustive_check_dvs_impl(universe, v0, config);
    EXPECT_EQ(parallel.states_visited, serial.states_visited)
        << "jobs=" << jobs;
    EXPECT_EQ(parallel.transitions, serial.transitions) << "jobs=" << jobs;
  }
}

// Paranoid mode retains the full encodings; it must agree with the plain
// hash-keyed search (anything else would mean a 128-bit collision, whose
// probability at these scopes is ~0 — so this doubles as a collision
// sentinel in CI).
TEST(ParallelBfsTest, ParanoidModeAgreesSeriallyAndInParallel) {
  ExhaustiveConfig config = scope_for(2);
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);

  config.jobs = 1;
  const ExhaustiveStats plain =
      exhaustive_check_dvs_spec(universe, v0, config);
  config.paranoid_collision_check = true;
  const ExhaustiveStats paranoid_serial =
      exhaustive_check_dvs_spec(universe, v0, config);
  config.jobs = 4;
  const ExhaustiveStats paranoid_parallel =
      exhaustive_check_dvs_spec(universe, v0, config);

  EXPECT_EQ(paranoid_serial.states_visited, plain.states_visited);
  EXPECT_EQ(paranoid_serial.transitions, plain.transitions);
  EXPECT_EQ(paranoid_parallel.states_visited, plain.states_visited);
  EXPECT_EQ(paranoid_parallel.transitions, plain.transitions);
}

TEST(ParallelBfsTest, ShardCountDoesNotChangeCounts) {
  ExhaustiveConfig config = scope_for(2);
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  config.jobs = 1;
  const ExhaustiveStats serial =
      exhaustive_check_dvs_spec(universe, v0, config);
  config.jobs = 4;
  for (const std::size_t shards : {1u, 3u, 256u}) {
    config.shards = shards;
    const ExhaustiveStats parallel =
        exhaustive_check_dvs_spec(universe, v0, config);
    EXPECT_EQ(parallel.states_visited, serial.states_visited)
        << "shards=" << shards;
    EXPECT_EQ(parallel.transitions, serial.transitions)
        << "shards=" << shards;
  }
}

// The binary encoding must distinguish exactly what the canonical string
// encoding distinguishes — it is the visited-set key.
TEST(ParallelBfsTest, BinaryEncodingTracksStringEncoding) {
  const ProcessSet universe = make_universe(3);
  const View v0 = initial_view(universe);
  spec::DvsSpec a{universe, v0};
  spec::DvsSpec b{universe, v0};

  auto binary = [](const spec::DvsSpec& s) {
    Writer w;
    encode_state_binary(s, w);
    return w.take();
  };

  EXPECT_EQ(binary(a), binary(b));
  EXPECT_EQ(encode_state(a), encode_state(b));

  const View v1{ViewId{1, ProcessId{0}}, universe};
  ASSERT_TRUE(a.can_createview(v1));
  a.apply_createview(v1);
  EXPECT_NE(binary(a), binary(b));
  EXPECT_NE(encode_state(a), encode_state(b));

  b.apply_createview(v1);
  EXPECT_EQ(binary(a), binary(b));

  // Registration only takes effect once the process holds a current view.
  a.apply_newview(v1, ProcessId{0});
  EXPECT_NE(binary(a), binary(b));
  b.apply_newview(v1, ProcessId{0});
  EXPECT_EQ(binary(a), binary(b));
  a.apply_register(ProcessId{0});
  EXPECT_NE(binary(a), binary(b));
  EXPECT_NE(encode_state(a), encode_state(b));
}

TEST(StateHashTest, DistinctInputsDistinctHashes) {
  const std::string x = "dvs-createview";
  const std::string y = "dvs-createview!";
  const std::string z = "dvs-createviex";
  auto h = [](const std::string& s) {
    return parallel::hash128(reinterpret_cast<const std::byte*>(s.data()),
                             s.size());
  };
  EXPECT_EQ(h(x), h(x));
  EXPECT_FALSE(h(x) == h(y));
  EXPECT_FALSE(h(x) == h(z));
  EXPECT_FALSE(h(std::string{}) == h(x));
}

TEST(ShardedStateSetTest, InsertDedupsAcrossShards) {
  parallel::ShardedStateSet set(8, /*paranoid=*/false);
  EXPECT_EQ(set.shard_count(), 8u);
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) keys.push_back("state-" + std::to_string(i));
  for (const auto& k : keys) {
    const auto h = parallel::hash128(
        reinterpret_cast<const std::byte*>(k.data()), k.size());
    EXPECT_TRUE(set.insert(h, {}));
    EXPECT_FALSE(set.insert(h, {}));
  }
  EXPECT_EQ(set.size(), 100u);
}

TEST(ShardedStateSetTest, ParanoidModeDetectsCollision) {
  parallel::ShardedStateSet set(4, /*paranoid=*/true);
  const parallel::Hash128 h{0x1234, 0x5678};
  Bytes enc_a{std::byte{1}};
  Bytes enc_b{std::byte{2}};
  EXPECT_TRUE(set.insert(h, enc_a));
  EXPECT_FALSE(set.insert(h, enc_a));  // same encoding: just a revisit
  EXPECT_THROW((void)set.insert(h, enc_b), std::logic_error);
}

}  // namespace
}  // namespace dvs::explorer
