// Determinism contract of the parallel seed sweeps: the aggregated stats
// and the reported (lowest) failing seed must be byte-identical for any
// worker count — see docs/PERFORMANCE.md.
#include "parallel/seed_sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "common/types.h"
#include "common/view.h"
#include "explorer/explorer.h"
#include "parallel/thread_pool.h"

namespace dvs::parallel {
namespace {

explorer::ExplorerConfig small_config() {
  explorer::ExplorerConfig config;
  config.steps = 400;
  return config;
}

SeedSweepResult sweep_with_jobs(const SeedTask& task, std::size_t jobs,
                                std::uint64_t num_seeds = 64) {
  SeedSweepConfig config;
  config.first_seed = 1;
  config.num_seeds = num_seeds;
  config.jobs = jobs;
  return SeedSweep(config).run(task);
}

void expect_equal(const SeedSweepResult& a, const SeedSweepResult& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.seeds_run, b.seeds_run);
  EXPECT_EQ(a.seeds_failed, b.seeds_failed);
  ASSERT_EQ(a.first_failure.has_value(), b.first_failure.has_value());
  if (a.first_failure.has_value()) {
    EXPECT_EQ(a.first_failure->seed, b.first_failure->seed);
    EXPECT_EQ(a.first_failure->message, b.first_failure->message);
  }
}

TEST(SeedSweepTest, ResolveJobs) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
}

TEST(SeedSweepTest, AggregateMatchesSequentialLoop) {
  const ProcessSet universe = make_universe(3);
  const View v0 = initial_view(universe);
  const SeedTask task = dvs_spec_task(universe, v0, small_config());

  explorer::ExplorationStats expected;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    explorer::DvsSpecExplorer ex(universe, v0, small_config(), seed);
    expected += ex.run();
  }

  const SeedSweepResult swept = sweep_with_jobs(task, 4);
  EXPECT_EQ(swept.total, expected);
  EXPECT_EQ(swept.seeds_run, 64u);
  EXPECT_EQ(swept.seeds_failed, 0u);
  EXPECT_FALSE(swept.first_failure.has_value());
}

TEST(SeedSweepTest, StatsIdenticalAcrossThreadCounts) {
  const ProcessSet universe = make_universe(3);
  const View v0 = initial_view(universe);

  for (const SeedTask& task :
       {vs_spec_task(universe, v0, small_config()),
        dvs_impl_task(universe, v0, small_config()),
        to_impl_task(universe, v0, small_config())}) {
    const SeedSweepResult one = sweep_with_jobs(task, 1);
    const SeedSweepResult two = sweep_with_jobs(task, 2);
    const SeedSweepResult eight = sweep_with_jobs(task, 8);
    expect_equal(one, two);
    expect_equal(one, eight);
    EXPECT_FALSE(one.first_failure.has_value());
  }
}

// Re-inject the paper's printed-figure erratum (the uncorrected Figure 4
// pseudocode): many seeds catch the DVS-SAFE violation. Whatever the
// thread count, the sweep must finish every seed and name the LOWEST
// failing one, so the counterexample found with --jobs 8 replays exactly
// with --jobs 1.
TEST(SeedSweepTest, LowestFailingSeedIsThreadCountIndependent) {
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  explorer::ExplorerConfig config;
  config.steps = 1500;
  impl::VsToDvsOptions printed;
  printed.printed_figure_mode = true;
  const SeedTask task = dvs_impl_task(universe, v0, config, printed);

  const SeedSweepResult one = sweep_with_jobs(task, 1);
  const SeedSweepResult two = sweep_with_jobs(task, 2);
  const SeedSweepResult eight = sweep_with_jobs(task, 8);

  ASSERT_TRUE(one.first_failure.has_value())
      << "expected the erratum to produce failing seeds in [1, 64]";
  EXPECT_GT(one.seeds_failed, 0u);
  EXPECT_EQ(one.seeds_run, 64u);
  EXPECT_NE(one.first_failure->message.find("DVS-SAFE"), std::string::npos);
  expect_equal(one, two);
  expect_equal(one, eight);

  // The reported seed really is the lowest failing one: every seed below
  // it passes when run alone.
  for (std::uint64_t seed = 1; seed < one.first_failure->seed; ++seed) {
    EXPECT_NO_THROW((void)task(seed)) << "seed " << seed;
  }
  EXPECT_THROW((void)task(one.first_failure->seed),
               explorer::ExplorationFailure);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasksAcrossWaves) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter]() noexcept { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (wave + 1) * 100);
  }
}

}  // namespace
}  // namespace dvs::parallel
