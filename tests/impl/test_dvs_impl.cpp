// Scenario tests for DVS-IMPL (Section 5): the composed VS × Π VS-TO-DVS_p
// system, its invariants, and the refinement to DVS (Lemma 5.8).
//
// Every scenario step runs through the RefinementChecker, so these tests
// exercise Theorem 5.9 on concrete executions, including the paper's key
// partition scenarios.
#include <gtest/gtest.h>

#include "common/check.h"
#include "impl/dvs_impl.h"
#include "impl/refinement.h"

namespace dvs::impl {
namespace {

View mkview(std::uint64_t epoch, unsigned origin,
            std::initializer_list<unsigned> members) {
  return View{ViewId{epoch, ProcessId{origin}}, make_process_set(members)};
}

/// Drives DVS-IMPL with targeted action sequences, refinement-checked.
class Harness {
 public:
  Harness(std::size_t n, std::initializer_list<unsigned> p0)
      : universe_(make_universe(n)),
        v0_{ViewId::initial(), make_process_set(p0)},
        sys_(universe_, v0_),
        checker_(sys_) {}

  void apply(const DvsImplAction& a) {
    const RefinementResult r = checker_.step(sys_, a);
    ASSERT_TRUE(r.ok) << r.error;
  }

  void vs_create(const View& v) {
    ASSERT_TRUE(sys_.can_vs_createview(v)) << v.to_string();
    apply(DvsImplAction::with_view(DvsImplActionKind::kVsCreateview,
                                   v.id().origin(), v));
  }

  void vs_newview(const View& v, ProcessId p) {
    apply(DvsImplAction::with_view(DvsImplActionKind::kVsNewview, p, v));
  }

  void vs_newview_all(const View& v) {
    for (ProcessId p : v.set()) vs_newview(v, p);
  }

  /// Pumps all message-plumbing actions (gpsnd→VS, order, gprcv, safe) to
  /// quiescence. Does NOT fire dvs-newview / garbage-collect / dvs-gprcv /
  /// dvs-safe, so scenarios control those precisely.
  void flush() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const DvsImplAction& a : sys_.enabled_actions()) {
        switch (a.kind) {
          case DvsImplActionKind::kVsGpsnd:
          case DvsImplActionKind::kVsOrder:
          case DvsImplActionKind::kVsGprcv:
          case DvsImplActionKind::kVsSafe:
            apply(a);
            progressed = true;
            break;
          default:
            break;
        }
        if (progressed) break;  // re-enumerate after each state change
      }
    }
  }

  /// Pumps everything including client-facing deliveries.
  void flush_all() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (const DvsImplAction& a : sys_.enabled_actions()) {
        if (a.kind == DvsImplActionKind::kDvsNewview ||
            a.kind == DvsImplActionKind::kGarbageCollect) {
          continue;
        }
        apply(a);
        progressed = true;
        break;
      }
    }
  }

  void attempt(ProcessId p) {
    ASSERT_TRUE(sys_.node(p).can_dvs_newview())
        << "dvs-newview not enabled at " << p.to_string();
    apply(DvsImplAction::with_view(DvsImplActionKind::kDvsNewview, p,
                                   *sys_.node(p).cur()));
  }

  void do_register(ProcessId p) {
    apply(DvsImplAction::make(DvsImplActionKind::kDvsRegister, p));
  }

  void gc(ProcessId p, const View& v) {
    apply(DvsImplAction::with_view(DvsImplActionKind::kGarbageCollect, p, v));
  }

  void send(ProcessId p, std::uint64_t uid) {
    apply(DvsImplAction::send(p, ClientMsg{OpaqueMsg{uid, p}}));
  }

  DvsImplSystem& sys() { return sys_; }
  const View& v0() const { return v0_; }

 private:
  ProcessSet universe_;
  View v0_;
  DvsImplSystem sys_;
  RefinementChecker checker_;
};

TEST(DvsImplTest, InitialStateSatisfiesInvariantsAndRefinement) {
  Harness h(3, {0, 1, 2});
  h.sys().check_invariants();
  const DvsState f = refinement(h.sys());
  EXPECT_EQ(f.created.size(), 1u);
  EXPECT_EQ(f.registered.size(), 1u);
  EXPECT_EQ(f.attempted.size(), 1u);
}

TEST(DvsImplTest, FullViewChangeRitual) {
  Harness h(3, {0, 1, 2});
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.vs_create(v1);
  h.vs_newview_all(v1);

  // Before info exchange nobody can attempt.
  for (unsigned i : {0u, 1u, 2u}) {
    EXPECT_FALSE(h.sys().node(ProcessId{i}).can_dvs_newview());
  }
  h.flush();  // exchange "info" messages
  for (unsigned i : {0u, 1u, 2u}) {
    EXPECT_TRUE(h.sys().node(ProcessId{i}).can_dvs_newview());
    h.attempt(ProcessId{i});
  }
  h.sys().check_invariants();
  // v1 is now totally attempted.
  ASSERT_EQ(h.sys().tot_att().size(), 2u);  // v0 and v1

  // Register everywhere; after the "registered" messages circulate every
  // node can garbage-collect up to v1.
  for (unsigned i : {0u, 1u, 2u}) h.do_register(ProcessId{i});
  h.flush();
  ASSERT_EQ(h.sys().tot_reg().size(), 2u);
  for (unsigned i : {0u, 1u, 2u}) {
    const ProcessId p{i};
    const auto candidates = h.sys().node(p).gc_candidates();
    ASSERT_EQ(candidates.size(), 1u) << "at " << p.to_string();
    EXPECT_EQ(candidates.front(), v1);
    h.gc(p, v1);
    EXPECT_EQ(h.sys().node(p).act(), v1);
    EXPECT_TRUE(h.sys().node(p).amb().empty());
  }
  h.sys().check_invariants();
}

TEST(DvsImplTest, MinorityViewIsNeverAttempted) {
  Harness h(3, {0, 1, 2});
  const View v1 = mkview(1, 0, {0});
  h.vs_create(v1);
  h.vs_newview(v1, ProcessId{0});
  h.flush();
  // |{0} ∩ v0| = 1, not a strict majority of 3.
  EXPECT_FALSE(h.sys().node(ProcessId{0}).can_dvs_newview());
  h.sys().check_invariants();
}

TEST(DvsImplTest, MinoritySideOfPartitionCannotFormPrimary) {
  Harness h(5, {0, 1, 2, 3, 4});
  // Partition: VS forms {0,1,2} (majority) and later {3,4} (minority).
  const View maj = mkview(1, 0, {0, 1, 2});
  h.vs_create(maj);
  h.vs_newview_all(maj);
  h.flush();
  for (unsigned i : {0u, 1u, 2u}) h.attempt(ProcessId{i});

  const View min = mkview(2, 3, {3, 4});
  h.vs_create(min);
  h.vs_newview_all(min);
  h.flush();
  // {3,4} only know v0; |{3,4} ∩ v0| = 2 is not > 5/2.
  EXPECT_FALSE(h.sys().node(ProcessId{3}).can_dvs_newview());
  EXPECT_FALSE(h.sys().node(ProcessId{4}).can_dvs_newview());
  h.sys().check_invariants();
  // The majority view is the only new attempted view.
  EXPECT_EQ(h.sys().att().size(), 2u);
}

TEST(DvsImplTest, StragglerCarriesAmbiguityIntoTheMergedView) {
  Harness h(5, {0, 1, 2, 3, 4});
  // v1 = {0,1,2} becomes primary (attempted, not registered).
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.vs_create(v1);
  h.vs_newview_all(v1);
  h.flush();
  for (unsigned i : {0u, 1u, 2u}) h.attempt(ProcessId{i});

  // The network merges into v2 = {2,3,4}: p2 carries amb = {v1}.
  const View v2 = mkview(2, 2, {2, 3, 4});
  h.vs_create(v2);
  h.vs_newview_all(v2);
  h.flush();
  // p3/p4 learned v1 through p2's info; |v2 ∩ v1| = 1 not > 3/2 → blocked.
  for (unsigned i : {2u, 3u, 4u}) {
    EXPECT_FALSE(h.sys().node(ProcessId{i}).can_dvs_newview())
        << "p" << i << " must not attempt v2 (ambiguous v1 blocks it)";
  }
  h.sys().check_invariants();

  // A later view with a majority of v1 AND v0 can become primary: {1,2,3}.
  const View v3 = mkview(3, 1, {1, 2, 3});
  h.vs_create(v3);
  h.vs_newview_all(v3);
  h.flush();
  for (unsigned i : {1u, 2u, 3u}) h.attempt(ProcessId{i});
  h.sys().check_invariants();
}

TEST(DvsImplTest, ClientMessagesFlowThroughPrimaryView) {
  Harness h(3, {0, 1, 2});
  h.send(ProcessId{0}, 1);
  h.send(ProcessId{1}, 2);
  h.flush_all();
  // All three clients get both messages, in one order, with safe.
  h.sys().check_invariants();
  const DvsState f = refinement(h.sys());
  // All deliveries drained: every next pointer advanced to 3.
  for (unsigned i : {0u, 1u, 2u}) {
    const auto key = std::make_pair(ProcessId{i}, ViewId::initial());
    ASSERT_TRUE(f.next.contains(key));
    EXPECT_EQ(f.next.at(key), 3u);
    ASSERT_TRUE(f.next_safe.contains(key));
    EXPECT_EQ(f.next_safe.at(key), 3u);
  }
}

TEST(DvsImplTest, MessagesSentBeforeViewChangeStayInOldView) {
  Harness h(3, {0, 1, 2});
  h.send(ProcessId{0}, 1);
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.vs_create(v1);
  h.vs_newview_all(v1);
  h.flush();
  // The old-view message still sits in v0's plumbing; new-view clients have
  // not received it and never will (their VS view moved on). Refinement and
  // invariants still hold.
  h.sys().check_invariants();
}

TEST(DvsImplTest, GarbageCollectionUnblocksDisjointSuccessors) {
  // After v1 = {0,1} is totally registered (universe {0,1,2}, P0 = {0,1,2}),
  // a view {1,2} with only minority overlap of v0 can form because use
  // shrinks to {v1}.
  Harness h(3, {0, 1, 2});
  const View v1 = mkview(1, 0, {0, 1});
  h.vs_create(v1);
  h.vs_newview_all(v1);
  h.flush();
  h.attempt(ProcessId{0});
  h.attempt(ProcessId{1});
  h.do_register(ProcessId{0});
  h.do_register(ProcessId{1});
  h.flush();
  h.gc(ProcessId{0}, v1);
  h.gc(ProcessId{1}, v1);

  const View v2 = mkview(2, 1, {1, 2});
  h.vs_create(v2);
  h.vs_newview_all(v2);
  h.flush();
  // p1's use = {v1}; |v2 ∩ v1| = 1 > 2/2? 1 > 1 is false! So p1 still can't.
  EXPECT_FALSE(h.sys().node(ProcessId{1}).can_dvs_newview());
  // A two-member overlap works: {0,1,2}.
  const View v3 = mkview(3, 0, {0, 1, 2});
  h.vs_create(v3);
  h.vs_newview_all(v3);
  h.flush();
  for (unsigned i : {0u, 1u, 2u}) h.attempt(ProcessId{i});
  h.sys().check_invariants();
}

TEST(DvsImplTest, LiteralInvariant531IsFalsifiable) {
  // Reproduces the counterexample the checker found in the printed
  // Invariant 5.3(1): after p attempts view v1, attempted_p contains v1
  // while info-sent[v1.id]_p = ⟨v0, {}⟩ — v1 is neither in the info nor
  // below v0. The corrected form (hypothesis w.id < g) holds.
  Harness h(3, {0, 1, 2});
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.vs_create(v1);
  h.vs_newview_all(v1);
  h.flush();
  h.attempt(ProcessId{0});
  h.sys().check_invariants();  // corrected forms hold
  EXPECT_THROW(h.sys().check_invariant_5_3_1_literal(), InvariantViolation);
}

TEST(DvsImplTest, LiteralInvariant523IsFalsifiable) {
  // Reproduces the counterexample in the printed Invariant 5.2(3): a node
  // can learn (via "info") of a totally registered view above its own
  // client-cur. Universe {0,1,2}; v1 = {1,2} is formed, registered and
  // garbage-collected by 1 and 2 while 0 sleeps in v0; then v2 = {0,1,2}
  // forms and 1's info advances 0's act to v1 > client-cur_0 = v0.
  Harness h(3, {0, 1, 2});
  const View v1 = mkview(1, 1, {1, 2});
  h.vs_create(v1);
  h.vs_newview_all(v1);
  h.flush();
  h.attempt(ProcessId{1});
  h.attempt(ProcessId{2});
  h.do_register(ProcessId{1});
  h.do_register(ProcessId{2});
  h.flush();
  h.gc(ProcessId{1}, v1);
  h.gc(ProcessId{2}, v1);

  const View v2 = mkview(2, 0, {0, 1, 2});
  h.vs_create(v2);
  h.vs_newview_all(v2);
  h.flush();  // p0 receives p1's info carrying act = v1

  EXPECT_EQ(h.sys().node(ProcessId{0}).act(), v1);
  ASSERT_TRUE(h.sys().node(ProcessId{0}).client_cur().has_value());
  EXPECT_EQ(h.sys().node(ProcessId{0}).client_cur()->id(), ViewId::initial());
  EXPECT_THROW(h.sys().check_invariant_5_2_3_literal(), InvariantViolation);
  // The corrected forms and all other invariants hold in the same state.
  h.sys().check_invariants();
}

TEST(DvsImplTest, PrintedSafePreconditionIsViolatedByTheImplementation) {
  // Reproduction finding: DVS-IMPL emits a DVS-SAFE while another member's
  // *client* has not yet consumed the message (it sits in msgs-from-vs), so
  // the printed DVS-SAFE precondition ∀r: next[r,g] > next-safe[q,g] is
  // false at that moment. The corrected spec (node-level received counter)
  // accepts the step — the harness refinement checker passes throughout.
  Harness h(2, {0, 1});
  h.send(ProcessId{0}, 1);
  h.flush();  // VS-level delivery + safe at both nodes (buffered)

  const ProcessId p0{0};
  const ProcessId p1{1};
  ASSERT_TRUE(h.sys().node(p0).next_dvs_gprcv().has_value());
  h.apply(DvsImplAction::make(DvsImplActionKind::kDvsGprcv, p0));
  ASSERT_TRUE(h.sys().node(p0).next_dvs_safe().has_value());
  h.apply(DvsImplAction::make(DvsImplActionKind::kDvsSafe, p0));

  // At this point p1's client has delivered nothing: spec next[p1,g0] = 1,
  // yet the safe for queue position 1 was just indicated at p0 — the
  // printed precondition (next[p1,g0] > 1) is falsified.
  const DvsState f = refinement(h.sys());
  const auto key = std::make_pair(p1, ViewId::initial());
  EXPECT_FALSE(f.next.contains(key)) << "spec next[p1,g0] must still be 1";
  const auto safe_key = std::make_pair(p0, ViewId::initial());
  ASSERT_TRUE(f.next_safe.contains(safe_key));
  EXPECT_EQ(f.next_safe.at(safe_key), 2u);
  // Node-level receipt did happen everywhere (corrected precondition held).
  ASSERT_TRUE(f.received.contains(key));
  EXPECT_EQ(f.received.at(key), 1u);
}

TEST(DvsImplTest, AttemptBlockedWhileClientBuffersUndrained) {
  // The drain-before-attempt correction in VS-TO-DVS: a node with buffered
  // old-view deliveries may not attempt the next view.
  Harness h(3, {0, 1, 2});
  h.send(ProcessId{0}, 1);
  h.flush();  // deliveries + safes buffered at every node
  const View v1 = mkview(1, 0, {0, 1, 2});
  h.vs_create(v1);
  h.vs_newview_all(v1);
  h.flush();
  for (unsigned i : {0u, 1u, 2u}) {
    EXPECT_FALSE(h.sys().node(ProcessId{i}).can_dvs_newview())
        << "p" << i << " must drain v0 buffers before attempting v1";
    h.apply(DvsImplAction::make(DvsImplActionKind::kDvsGprcv, ProcessId{i}));
    EXPECT_FALSE(h.sys().node(ProcessId{i}).can_dvs_newview());
    h.apply(DvsImplAction::make(DvsImplActionKind::kDvsSafe, ProcessId{i}));
    EXPECT_TRUE(h.sys().node(ProcessId{i}).can_dvs_newview());
    h.attempt(ProcessId{i});
  }
  h.sys().check_invariants();
}

TEST(DvsImplTest, RefinementMapsClientTrafficExactly) {
  Harness h(3, {0, 1, 2});
  h.send(ProcessId{0}, 1);
  const DvsState f1 = refinement(h.sys());
  const auto key = std::make_pair(ProcessId{0}, ViewId::initial());
  ASSERT_TRUE(f1.pending.contains(key));
  EXPECT_EQ(f1.pending.at(key).size(), 1u);
  h.flush_all();
  const DvsState f2 = refinement(h.sys());
  EXPECT_FALSE(f2.pending.contains(key));
  ASSERT_TRUE(f2.queue.contains(ViewId::initial()));
  EXPECT_EQ(f2.queue.at(ViewId::initial()).size(), 1u);
}

}  // namespace
}  // namespace dvs::impl
