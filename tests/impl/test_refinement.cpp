// Unit tests for the refinement machinery: ℱ (Figure 4), state snapshots,
// the purge semantics, and DvsState diffing.
#include <gtest/gtest.h>

#include "common/check.h"
#include "impl/dvs_impl.h"
#include "impl/refinement.h"

namespace dvs::impl {
namespace {

ClientMsg opaque(std::uint64_t uid, unsigned sender) {
  return ClientMsg{OpaqueMsg{uid, ProcessId{sender}}};
}

TEST(RefinementTest, InitialStatesCorrespond) {
  const ProcessSet universe = make_universe(3);
  const View v0 = initial_view(universe);
  DvsImplSystem sys(universe, v0);
  spec::DvsSpec spec(universe, v0);
  EXPECT_EQ(refinement(sys), snapshot(spec));
}

TEST(RefinementTest, ServiceMessagesArePurged) {
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  DvsImplSystem sys(universe, v0);
  // A VS view change floods the system with "info" messages; none of them
  // may surface in the abstract DVS state.
  const View v1{ViewId{1, ProcessId{0}}, universe};
  (void)sys.apply(DvsImplAction::with_view(DvsImplActionKind::kVsCreateview,
                                           ProcessId{0}, v1));
  for (ProcessId p : universe) {
    (void)sys.apply(
        DvsImplAction::with_view(DvsImplActionKind::kVsNewview, p, v1));
  }
  // Forward the queued info messages into VS and order one of them.
  for (ProcessId p : universe) {
    (void)sys.apply(DvsImplAction::make(DvsImplActionKind::kVsGpsnd, p));
  }
  (void)sys.apply(DvsImplAction::order(ProcessId{0}, v1.id()));

  const DvsState t = refinement(sys);
  EXPECT_TRUE(t.pending.empty());
  EXPECT_TRUE(t.queue.empty());
  EXPECT_TRUE(t.next.empty());
  // created is still just the ∪ of attempted sets (v0 only).
  EXPECT_EQ(t.created.size(), 1u);
}

TEST(RefinementTest, ClientSendAppearsInAbstractPending) {
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  DvsImplSystem sys(universe, v0);
  (void)sys.apply(DvsImplAction::send(ProcessId{0}, opaque(1, 0)));
  const DvsState t = refinement(sys);
  const auto key = std::make_pair(ProcessId{0}, v0.id());
  ASSERT_TRUE(t.pending.contains(key));
  ASSERT_EQ(t.pending.at(key).size(), 1u);
  EXPECT_EQ(t.pending.at(key).front(), opaque(1, 0));
  // The message sits in msgs-to-vs, not yet in VS pending; ℱ fuses both.
  (void)sys.apply(DvsImplAction::make(DvsImplActionKind::kVsGpsnd,
                                      ProcessId{0}));
  const DvsState t2 = refinement(sys);
  ASSERT_TRUE(t2.pending.contains(key));
  EXPECT_EQ(t2.pending.at(key), t.pending.at(key)) << "ℱ must be oblivious "
      "to which internal queue holds the message";
}

TEST(RefinementTest, ReceivedTracksNodeLevelDelivery) {
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  DvsImplSystem sys(universe, v0);
  (void)sys.apply(DvsImplAction::send(ProcessId{0}, opaque(1, 0)));
  (void)sys.apply(DvsImplAction::make(DvsImplActionKind::kVsGpsnd,
                                      ProcessId{0}));
  (void)sys.apply(DvsImplAction::order(ProcessId{0}, v0.id()));
  (void)sys.apply(DvsImplAction::make(DvsImplActionKind::kVsGprcv,
                                      ProcessId{1}));
  const DvsState t = refinement(sys);
  const auto key = std::make_pair(ProcessId{1}, v0.id());
  ASSERT_TRUE(t.received.contains(key));
  EXPECT_EQ(t.received.at(key), 1u);
  // Client has not consumed it: next stays at default.
  EXPECT_FALSE(t.next.contains(key));
  // After the client pop, next advances.
  (void)sys.apply(DvsImplAction::make(DvsImplActionKind::kDvsGprcv,
                                      ProcessId{1}));
  const DvsState t2 = refinement(sys);
  ASSERT_TRUE(t2.next.contains(key));
  EXPECT_EQ(t2.next.at(key), 2u);
}

TEST(RefinementTest, DiffPinpointsFirstDifference) {
  DvsState a;
  DvsState b;
  EXPECT_EQ(DvsState::diff(a, b), "");
  b.created.emplace(ViewId{1, ProcessId{0}},
                    View{ViewId{1, ProcessId{0}}, make_process_set({0})});
  EXPECT_NE(DvsState::diff(a, b).find("created"), std::string::npos);
  a = b;
  a.next[{ProcessId{0}, ViewId::initial()}] = 3;
  EXPECT_NE(DvsState::diff(a, b).find("next"), std::string::npos);
}

TEST(RefinementTest, CheckerRejectsSkippedSpecSteps) {
  // Feeding the checker an action whose spec counterpart is disabled must
  // produce a diagnosis, not a crash. We fabricate the situation by asking
  // for a dvs-gprcv at a process with an empty abstract queue — such an
  // action is not enabled in the impl either, so the impl throws; the
  // checker path for *enabled* impl actions whose spec step fails is
  // exercised by the sweeps (and was what found the DVS-SAFE erratum).
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  DvsImplSystem sys(universe, v0);
  RefinementChecker checker(sys);
  const auto disabled =
      DvsImplAction::make(DvsImplActionKind::kDvsGprcv, ProcessId{0});
  EXPECT_THROW((void)checker.step(sys, disabled),
               dvs::PreconditionViolation);
}

TEST(VsToDvsUnitTest, InfoMessageUpdatesActAndAmb) {
  const View v0 = initial_view(make_universe(3));
  VsToDvs node(ProcessId{0}, v0);
  const View v1{ViewId{1, ProcessId{1}}, make_process_set({1, 2})};
  const View v2{ViewId{2, ProcessId{1}}, make_process_set({0, 1, 2})};
  node.on_vs_newview(v2);
  // p1's info claims act = v1 (totally registered elsewhere), amb = {}.
  node.on_vs_gprcv(Msg{InfoMsg{v1, {}}}, ProcessId{1});
  EXPECT_EQ(node.act(), v1);
  EXPECT_TRUE(node.amb().empty());
  // A later info with an OLDER act must not regress act.
  node.on_vs_gprcv(Msg{InfoMsg{v0, {}}}, ProcessId{2});
  EXPECT_EQ(node.act(), v1);
}

TEST(VsToDvsUnitTest, AmbPrunedBelowAct) {
  const View v0 = initial_view(make_universe(3));
  VsToDvs node(ProcessId{0}, v0);
  const View v1{ViewId{1, ProcessId{0}}, make_process_set({0, 1})};
  const View v2{ViewId{2, ProcessId{0}}, make_process_set({0, 1, 2})};
  const View v3{ViewId{3, ProcessId{0}}, make_process_set({0, 1, 2})};
  node.on_vs_newview(v3);
  // Info carries amb = {v1} with act = v0...
  node.on_vs_gprcv(Msg{InfoMsg{v0, {v1}}}, ProcessId{1});
  EXPECT_TRUE(node.amb().contains(v1.id()));
  // ...then another info advances act past v1: amb is pruned.
  node.on_vs_gprcv(Msg{InfoMsg{v2, {}}}, ProcessId{2});
  EXPECT_EQ(node.act(), v2);
  EXPECT_FALSE(node.amb().contains(v1.id()));
}

TEST(VsToDvsUnitTest, RegisteredMessagesEnableGarbageCollection) {
  const ProcessSet two = make_process_set({0, 1});
  const View v0{ViewId::initial(), two};
  VsToDvs node(ProcessId{0}, v0);
  const View v1{ViewId{1, ProcessId{0}}, two};
  node.on_vs_newview(v1);
  node.on_vs_gprcv(Msg{InfoMsg{v0, {}}}, ProcessId{1});
  ASSERT_TRUE(node.can_dvs_newview());
  (void)node.apply_dvs_newview();
  node.on_dvs_register();
  EXPECT_TRUE(node.gc_candidates().empty());  // no "registered" heard yet
  node.on_vs_gprcv(Msg{RegisteredMsg{}}, ProcessId{0});
  node.on_vs_gprcv(Msg{RegisteredMsg{}}, ProcessId{1});
  ASSERT_EQ(node.gc_candidates().size(), 1u);
  node.apply_garbage_collect(v1);
  EXPECT_EQ(node.act(), v1);
}

TEST(VsToDvsUnitTest, CannotAttemptWithoutAllInfos) {
  const View v0 = initial_view(make_universe(3));
  VsToDvs node(ProcessId{0}, v0);
  const View v1{ViewId{1, ProcessId{0}}, make_universe(3)};
  node.on_vs_newview(v1);
  EXPECT_FALSE(node.can_dvs_newview());
  node.on_vs_gprcv(Msg{InfoMsg{v0, {}}}, ProcessId{1});
  EXPECT_FALSE(node.can_dvs_newview());  // p2's info still missing
  node.on_vs_gprcv(Msg{InfoMsg{v0, {}}}, ProcessId{2});
  EXPECT_TRUE(node.can_dvs_newview());
}

}  // namespace
}  // namespace dvs::impl
