// Experiment E11: steady-state throughput and delivery latency of the
// totally-ordered broadcast service over the full stack, vs group size.
//
// Each broadcast is timestamped; BRCV latency is measured per receiver.
// Reported: confirmed deliveries per simulated second and latency
// percentiles. The TO/DVS layers sit on a sequencer-ordered view layer, so
// latency ≈ 2 network hops (sender→sequencer→receivers) plus the safe
// round (heartbeat-carried acks) before confirmation — the shape to expect
// is a flat-ish curve in n for delivery, with safe/confirm latency bound to
// the heartbeat period.
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "analysis/availability.h"
#include "tosys/cluster.h"

namespace {

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

struct Result {
  std::size_t n;
  double msgs_per_sec;       // unique messages confirmed at every node
  analysis::Percentiles latency_ms;  // bcast → brcv, per delivery
  std::uint64_t wire_messages;
  std::uint64_t wire_bytes;
};

Result run(std::size_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  Cluster c(cfg, seed);
  c.start();
  c.run_for(500 * kMillisecond);

  std::map<std::uint64_t, sim::Time> sent_at;
  std::vector<double> latencies;

  const sim::Time load_duration = 20 * kSecond;
  const sim::Time send_period = 10 * kMillisecond;  // 100 msg/s offered
  std::uint64_t uid = 1;
  const sim::Time t_start = c.sim().now();
  for (sim::Time t = 0; t < load_duration; t += send_period) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % n)};
    sent_at[uid] = c.sim().now();
    c.bcast(p, AppMsg{uid, p, ""});
    ++uid;
    c.run_for(send_period);
  }
  c.run_for(2 * kSecond);  // drain

  // Collect latencies and completeness.
  std::map<std::uint64_t, std::size_t> delivered_count;
  for (const Delivery& d : c.deliveries()) {
    auto it = sent_at.find(d.msg.uid);
    if (it == sent_at.end()) continue;
    latencies.push_back(static_cast<double>(d.at - it->second) /
                        kMillisecond);
    ++delivered_count[d.msg.uid];
  }
  std::size_t fully_delivered = 0;
  for (const auto& [id, count] : delivered_count) {
    if (count == n) ++fully_delivered;
  }
  const double seconds =
      static_cast<double>(c.sim().now() - t_start) / kSecond;

  Result r;
  r.n = n;
  r.msgs_per_sec = static_cast<double>(fully_delivered) / seconds;
  r.latency_ms = analysis::percentiles(std::move(latencies));
  r.wire_messages = c.net().stats().sent;
  r.wire_bytes = c.net().stats().bytes_sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: two group sizes, for CI.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf(
      "E11: totally-ordered broadcast throughput/latency vs group size "
      "(offered load 100 msg/s, sim time)\n");
  std::printf("%4s  %10s | %8s %8s %8s %8s | %12s %12s\n", "n", "msgs/s",
              "lat p50", "p90", "p99", "mean", "wire msgs", "wire bytes");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{2, 3}
            : std::vector<std::size_t>{2, 3, 4, 5, 6, 8};
  for (std::size_t n : sizes) {
    const Result r = run(n, 7 + n);
    std::printf("%4zu  %10.1f | %8.1f %8.1f %8.1f %8.1f | %12llu %12llu\n",
                r.n, r.msgs_per_sec, r.latency_ms.p50, r.latency_ms.p90,
                r.latency_ms.p99, r.latency_ms.mean,
                static_cast<unsigned long long>(r.wire_messages),
                static_cast<unsigned long long>(r.wire_bytes));
  }
  std::printf(
      "\nshape check: throughput tracks the offered load for all n (the "
      "sequencer is not saturated); delivery latency is a few network "
      "delays and roughly flat in n; wire traffic grows ~n per message "
      "(sequencer fan-out) plus n^2 heartbeats.\n");
  return 0;
}
