// Experiment E9 (the paper's motivating claim, Sections 1 and 4):
// availability of a dynamic primary-view service vs a static majority rule,
// under membership churn.
//
// For each group size and churn workload we run the full distributed stack
// and periodically sample, for every live process, whether it is operating
// in a primary component under three policies:
//   dynamic  — the DVS stack itself (per-node, distributed);
//   static   — strict majority of the fixed universe (the classical rule);
//   oracle   — centralized idealized dynamic voting (upper bound).
//
// Workloads:
//   cascade — graceful shrink one process at a time down to 2, then grow
//             back (the scenario where dynamic voting shines: a 2-node
//             primary survives while 2 < n/2 for the static rule);
//   random  — random partitions into 1–3 groups at a configurable rate.
//
// Expected shape (recorded in EXPERIMENTS.md): dynamic ≈ oracle ≥ static,
// with the gap widening as the cascade deepens; under random partitioning
// the gap narrows because abrupt splits rarely contain a majority of the
// previous primary.
#include <cstdio>
#include <cstring>
#include <vector>

#include "analysis/availability.h"
#include "baseline/static_stack.h"
#include "common/rng.h"
#include "tosys/cluster.h"

namespace {

using namespace dvs;           // NOLINT
using namespace dvs::tosys;    // NOLINT
using sim::kMillisecond;
using sim::kSecond;

struct Row {
  std::size_t n;
  const char* workload;
  sim::Time change_period;
  analysis::AvailabilityReport report;
};

/// Largest group of a partition (fed to the oracle as "the" component).
ProcessSet largest(const std::vector<ProcessSet>& groups) {
  const ProcessSet* best = &groups.front();
  for (const ProcessSet& g : groups) {
    if (g.size() > best->size()) best = &g;
  }
  return *best;
}

Row run_cascade(std::size_t n, sim::Time change_period, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  Cluster c(cfg, seed);
  analysis::AvailabilitySampler sampler(c, c.v0());
  c.start();
  c.run_for(500 * kMillisecond);

  const sim::Time sample_period = 20 * kMillisecond;
  auto run_and_sample = [&](sim::Time duration) {
    for (sim::Time t = 0; t < duration; t += sample_period) {
      c.run_for(sample_period);
      sampler.sample();
    }
  };

  for (int cycle = 0; cycle < 2; ++cycle) {
    // Shrink: n → n-1 → ... → 2.
    for (std::size_t alive = n; alive >= 2; --alive) {
      ProcessSet component = make_universe(alive);
      std::vector<ProcessSet> groups{component};
      for (std::size_t i = alive; i < n; ++i) {
        groups.push_back(make_process_set(
            {static_cast<unsigned>(i)}));
      }
      c.net().set_partition(groups);
      sampler.on_configuration_change(component);
      run_and_sample(change_period);
      if (alive == 2) break;
    }
    // Grow back to full.
    c.net().heal();
    sampler.on_configuration_change(make_universe(n));
    run_and_sample(2 * change_period);
  }
  return Row{n, "cascade", change_period, sampler.report()};
}

Row run_random(std::size_t n, sim::Time change_period, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  Cluster c(cfg, seed);
  Rng chaos(seed ^ 0xabcdef);
  analysis::AvailabilitySampler sampler(c, c.v0());
  c.start();
  c.run_for(500 * kMillisecond);

  const sim::Time sample_period = 20 * kMillisecond;
  for (int round = 0; round < 30; ++round) {
    if (chaos.chance(0.6)) {
      const std::size_t groups_n = 1 + chaos.below(3);
      std::vector<ProcessSet> groups(groups_n);
      for (ProcessId p : c.universe()) {
        groups[chaos.below(groups_n)].insert(p);
      }
      std::erase_if(groups, [](const ProcessSet& g) { return g.empty(); });
      c.net().set_partition(groups);
      sampler.on_configuration_change(largest(groups));
    } else {
      c.net().heal();
      sampler.on_configuration_change(c.universe());
    }
    for (sim::Time t = 0; t < change_period; t += sample_period) {
      c.run_for(sample_period);
      sampler.sample();
    }
  }
  return Row{n, "random", change_period, sampler.report()};
}

/// Rolling-restart workload: members pause and resume one at a time (the
/// "processes join and leave routinely" setting of the paper's
/// introduction). The dynamic service re-forms a primary around each
/// departure; the static rule also survives (n-1 is a majority) — the
/// interesting comparison is against the *oracle*: how much the distributed
/// implementation loses to reconfiguration transients.
Row run_rolling(std::size_t n, sim::Time change_period, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  Cluster c(cfg, seed);
  analysis::AvailabilitySampler sampler(c, c.v0());
  c.start();
  c.run_for(500 * kMillisecond);

  const sim::Time sample_period = 20 * kMillisecond;
  auto run_and_sample = [&](sim::Time duration) {
    for (sim::Time t = 0; t < duration; t += sample_period) {
      c.run_for(sample_period);
      sampler.sample();
    }
  };
  for (int round = 0; round < 12; ++round) {
    const ProcessId victim{static_cast<ProcessId::Rep>(round % n)};
    c.net().pause(victim);
    ProcessSet component = c.universe();
    component.erase(victim);
    sampler.on_configuration_change(component);
    run_and_sample(change_period);
    c.net().resume(victim);
    sampler.on_configuration_change(c.universe());
    run_and_sample(change_period);
  }
  return Row{n, "rolling", change_period, sampler.report()};
}

/// Goodput companion experiment: the same cascading-shrink schedule drives
/// the full dynamic stack and the static-baseline stack; a client at p0
/// offers one broadcast every 100 ms throughout. Because the TO recovery
/// machinery eventually commits even long-stalled commands after the heal,
/// raw totals converge — the operational difference is *timeliness*, so we
/// count commands committed within 500 ms of being offered.
struct Goodput {
  std::size_t offered = 0;
  std::size_t committed_dynamic = 0;  // within the deadline
  std::size_t committed_static = 0;   // within the deadline
};

Goodput run_goodput(std::size_t n, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  Cluster dyn(cfg, seed);
  baseline::StaticCluster sta(n, seed);
  dyn.start();
  sta.start();
  dyn.run_for(500 * kMillisecond);
  sta.run_for(500 * kMillisecond);

  Goodput g;
  std::uint64_t uid = 1;
  std::map<std::uint64_t, sim::Time> offered_at;
  auto drive = [&](auto&& reconfigure, sim::Time hold) {
    reconfigure();
    for (sim::Time t = 0; t < hold; t += 100 * kMillisecond) {
      ++g.offered;
      offered_at[uid] = dyn.sim().now();
      dyn.bcast(ProcessId{0}, AppMsg{uid, ProcessId{0}, ""});
      sta.bcast(ProcessId{0}, AppMsg{uid, ProcessId{0}, ""});
      ++uid;
      dyn.run_for(100 * kMillisecond);
      sta.run_for(100 * kMillisecond);
    }
  };

  for (int cycle = 0; cycle < 2; ++cycle) {
    for (std::size_t alive = n; alive >= 2; --alive) {
      std::vector<ProcessSet> groups{make_universe(alive)};
      for (std::size_t i = alive; i < n; ++i) {
        groups.push_back(make_process_set({static_cast<unsigned>(i)}));
      }
      drive([&] {
        dyn.net().set_partition(groups);
        sta.net().set_partition(groups);
      }, 2 * kSecond);
      if (alive == 2) break;
    }
    drive([&] {
      dyn.net().heal();
      sta.net().heal();
    }, 4 * kSecond);
  }
  dyn.run_for(3 * kSecond);
  sta.run_for(3 * kSecond);
  const sim::Time deadline = 500 * kMillisecond;
  for (const Delivery& d : dyn.deliveries_at(ProcessId{0})) {
    auto it = offered_at.find(d.msg.uid);
    if (it != offered_at.end() && d.at - it->second <= deadline) {
      ++g.committed_dynamic;
    }
  }
  for (const auto& d : sta.deliveries_at(ProcessId{0})) {
    auto it = offered_at.find(d.msg.uid);
    if (it != offered_at.end() && d.at - it->second <= deadline) {
      ++g.committed_static;
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: one small configuration per table, for CI sanity runs.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf(
      "E9: primary-component availability — dynamic (DVS) vs static majority "
      "vs oracle dynamic voting\n");
  std::printf("%4s  %-8s  %12s  %9s  %9s  %9s  %8s\n", "n", "workload",
              "period(ms)", "dynamic", "static", "oracle", "samples");
  std::vector<Row> rows;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{5} : std::vector<std::size_t>{5, 7, 9};
  const std::vector<sim::Time> periods =
      smoke ? std::vector<sim::Time>{1 * kSecond}
            : std::vector<sim::Time>{1 * kSecond, 3 * kSecond};
  for (std::size_t n : sizes) {
    for (sim::Time period : periods) {
      rows.push_back(run_cascade(n, period, 1000 + n));
      rows.push_back(run_random(n, period, 2000 + n));
      rows.push_back(run_rolling(n, period, 3000 + n));
    }
  }
  for (const Row& r : rows) {
    std::printf("%4zu  %-8s  %12llu  %9.3f  %9.3f  %9.3f  %8zu\n", r.n,
                r.workload,
                static_cast<unsigned long long>(r.change_period / kMillisecond),
                r.report.dynamic_dvs, r.report.static_majority,
                r.report.oracle_dynamic, r.report.samples);
  }
  std::printf(
      "\nshape check: on 'cascade', dynamic stays near the oracle and beats "
      "static; the gap is the paper's motivation for dynamic views.\n");

  std::printf(
      "\nE9b: goodput under the cascade — identical application and "
      "workload, dynamic vs static-majority stack\n");
  std::printf("%4s  %9s  %10s  %10s   (committed within 500 ms)\n", "n",
              "offered", "dynamic", "static");
  for (std::size_t n : sizes) {
    const Goodput g = run_goodput(n, 4000 + n);
    std::printf("%4zu  %9zu  %10zu  %10zu\n", n, g.offered,
                g.committed_dynamic, g.committed_static);
  }
  std::printf(
"\nshape check: the dynamic stack commits promptly through the deep "
      "(2-node) phases where the static stack stalls until the heal.\n");
  return 0;
}
