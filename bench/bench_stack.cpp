// Simulation-rate benchmark of the full distributed stack (experiment E8's
// machinery): wall-clock cost per simulated second and per delivered
// message, with and without trace recording.
#include <benchmark/benchmark.h>

#include <time.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "daemon/runtime.h"
#include "net/udp_transport.h"
#include "shard/shard_cluster.h"
#include "storage/file_store.h"
#include "tosys/cluster.h"
#include "workload/runner.h"
#include "workload/scenario.h"

namespace {

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

void BM_StableClusterSecond(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool record = state.range(1) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n_processes = n;
    cfg.record_traces = record;
    Cluster c(cfg, seed++);
    c.start();
    std::uint64_t uid = 1;
    for (int i = 0; i < 50; ++i) {
      const ProcessId p{static_cast<ProcessId::Rep>(uid % n)};
      c.bcast(p, AppMsg{uid++, p, ""});
      c.run_for(20 * kMillisecond);
    }
    benchmark::DoNotOptimize(c.deliveries().size());
  }
  state.SetItemsProcessed(state.iterations() * 50);
  state.SetLabel(record ? "traces on" : "traces off");
}
BENCHMARK(BM_StableClusterSecond)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({5, 0})
    ->Args({9, 0});

void BM_ViewChange(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n_processes = n;
    cfg.record_traces = false;
    Cluster c(cfg, seed++);
    c.start();
    c.run_for(300 * kMillisecond);
    c.net().pause(ProcessId{1});
    c.run_for(2 * kSecond);
    c.net().resume(ProcessId{1});
    c.run_for(2 * kSecond);
    benchmark::DoNotOptimize(c.primary_fraction());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two view changes
}
BENCHMARK(BM_ViewChange)->Arg(3)->Arg(5)->Arg(9);

// Hot-path configuration axis for the BM_Stack* benches:
//   0 = baseline   — eager per-tick retransmission (holdoff 1, the seed
//                    behaviour) over the unbatched transport;
//   1 = cursors    — per-destination retransmission cursors (default
//                    holdoff) skip resends whose covering copy is still in
//                    flight, unbatched transport;
//   2 = cursors+batch — cursors plus same-tick BATCH coalescing on the
//                    wire (`--batch` / NetConfig::batching);
//   3 = watermark+arena — cursors and batching plus SST-style watermark
//                    stability (VsConfig::stability) and the allocation-free
//                    data path (NetConfig::payload_arena + ring buffers).
// Modes 0–2 pin explicit-ack stability and the heap payload path, so mode 0
// stays an honest seed baseline and 2→3 isolates this round's work.
enum StackMode {
  kEager = 0,
  kCursors = 1,
  kCursorsBatched = 2,
  kWatermarkArena = 3,
};

const char* mode_label(int mode) {
  switch (mode) {
    case kEager: return "eager retx, unbatched";
    case kCursors: return "retx cursors, unbatched";
    case kCursorsBatched: return "retx cursors + batching";
    default: return "watermarks + arena + batching";
  }
}

/// Raw-stack config: tracing, oracle and observability off so the
/// measurement is the protocol + transport hot path alone.
ClusterConfig raw_stack(std::size_t n, int mode) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  cfg.conformance_oracle = false;
  cfg.observability = false;
  if (mode == kEager) cfg.vs.retransmit_holdoff_ticks = 1;
  cfg.net.batching = mode == kCursorsBatched || mode == kWatermarkArena;
  cfg.vs.stability = mode == kWatermarkArena
                         ? vsys::StabilityMode::kWatermark
                         : vsys::StabilityMode::kExplicitAck;
  cfg.net.payload_arena = mode == kWatermarkArena;
  return cfg;
}

void BM_StackBurstThroughput(benchmark::State& state) {
  // Bursty app load over a WAN-ish link — every process broadcasts a
  // clutch of messages each heartbeat tick while the one-way delay spans
  // several ticks, so every message stays un-acked (a resend candidate)
  // for its whole flight. The eager baseline re-sends the un-acked SEQ
  // window (cap 8 per member) plus the DATA head to every member every
  // tick; the cursors skip resends whose covering copy is still in
  // flight, and batching coalesces each tick's clutch (DATA, SEQ,
  // heartbeat to one destination) into a single datagram.
  const auto n = static_cast<std::size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  constexpr int kBurstsPerRun = 50;
  constexpr std::uint64_t kMsgsPerProcessPerBurst = 4;
  std::uint64_t seed = 1;
  std::size_t delivered = 0;
  for (auto _ : state) {
    ClusterConfig cfg = raw_stack(n, mode);
    // ~3 ticks one-way: acks lag ~6 ticks, so in-flight copies stay resend
    // candidates for several ticks in a row — the regime the eager baseline
    // floods in.
    cfg.net.base_delay = 55 * kMillisecond;
    Cluster c(cfg, seed++);
    c.start();
    std::uint64_t uid = 1;
    for (int burst = 0; burst < kBurstsPerRun; ++burst) {
      for (std::size_t q = 0; q < n; ++q) {
        const ProcessId p{static_cast<ProcessId::Rep>(q)};
        for (std::uint64_t k = 0; k < kMsgsPerProcessPerBurst; ++k) {
          c.bcast(p, AppMsg{uid++, p, ""});
        }
      }
      c.run_for(20 * kMillisecond);
    }
    c.run_for(2 * kSecond);
    delivered = c.deliveries().size();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              kBurstsPerRun * n * kMsgsPerProcessPerBurst));
  state.SetLabel(std::string(mode_label(mode)) + ", " +
                 std::to_string(delivered) + " delivered");
}
BENCHMARK(BM_StackBurstThroughput)
    ->Args({3, kEager})
    ->Args({3, kCursors})
    ->Args({3, kCursorsBatched})
    ->Args({3, kWatermarkArena})
    ->Args({5, kEager})
    ->Args({5, kCursors})
    ->Args({5, kCursorsBatched})
    ->Args({5, kWatermarkArena})
    ->Args({9, kEager})
    ->Args({9, kCursors})
    ->Args({9, kCursorsBatched})
    ->Args({9, kWatermarkArena});

void BM_StackSteadyState(benchmark::State& state) {
  // Long stable-view run: five simulated seconds of one broadcast per 20 ms
  // heartbeat tick, no faults, no view changes — the regime the watermark
  // table and the recycled containers are built for. The two boolean axes
  // split this round's work: stability mode {explicit ack, watermark} ×
  // payload path {heap, arena}, all over the cursors+batching transport, so
  // each axis' contribution is measurable on its own.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool watermarks = state.range(1) != 0;
  const bool arena = state.range(2) != 0;
  constexpr sim::Time kRun = 5 * kSecond;
  constexpr sim::Time kTick = 20 * kMillisecond;
  std::uint64_t seed = 1;
  std::size_t delivered = 0;
  for (auto _ : state) {
    ClusterConfig cfg = raw_stack(n, kCursorsBatched);
    cfg.vs.stability = watermarks ? vsys::StabilityMode::kWatermark
                                  : vsys::StabilityMode::kExplicitAck;
    cfg.net.payload_arena = arena;
    Cluster c(cfg, seed++);
    c.start();
    std::uint64_t uid = 1;
    for (sim::Time t = 0; t < kRun; t += kTick) {
      const ProcessId p{static_cast<ProcessId::Rep>(uid % n)};
      c.bcast(p, AppMsg{uid++, p, ""});
      c.run_for(kTick);
    }
    c.run_for(1 * kSecond);
    delivered = c.deliveries().size();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kRun / kTick));
  state.SetLabel(std::string(watermarks ? "watermark" : "explicit ack") +
                 ", " + (arena ? "arena" : "heap") + ", " +
                 std::to_string(delivered) + " delivered");
}
BENCHMARK(BM_StackSteadyState)
    ->Args({5, 0, 0})
    ->Args({5, 0, 1})
    ->Args({5, 1, 0})
    ->Args({5, 1, 1})
    ->Args({9, 0, 0})
    ->Args({9, 1, 1});

void BM_StackRestart(benchmark::State& state) {
  // Crash-restart cost of the persistent stack (experiment E19). One
  // episode = 10 simulated seconds (10k 1 ms heartbeat ticks) of steady
  // client load on n=3 with write-ahead persistence on; the restart-rate
  // axis injects {0, 1, 10} crash-restarts per episode, evenly spaced,
  // alternating victims. The label carries the deterministic outcome
  // counters: recovery latency (restart → first post-recovery delivery at
  // the restarted node, from the tracer's trace.recovery_us histogram),
  // total WAL bytes written, and deliveries. The second axis swaps the
  // deterministic in-memory store for the file-backed store, so the same
  // journal traffic is measured against a real filesystem.
  const int restarts = static_cast<int>(state.range(0));
  const bool file_backed = state.range(1) != 0;
  constexpr sim::Time kEpisode = 10 * kSecond;
  std::uint64_t seed = 1;
  std::uint64_t wal_bytes = 0;
  std::uint64_t recovery_p50 = 0;
  std::uint64_t recoveries = 0;
  std::size_t delivered = 0;
  const std::string root =
      (std::filesystem::temp_directory_path() / "dvs_bench_recovery_store")
          .string();
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n_processes = 3;
    cfg.record_traces = false;
    cfg.conformance_oracle = false;
    cfg.persistence = true;  // observability stays on: it times recovery
    std::unique_ptr<storage::FileStableStore> disk;
    if (file_backed) {
      disk = std::make_unique<storage::FileStableStore>(root);
      disk->wipe();
      cfg.store = disk.get();
    }
    Cluster c(cfg, seed++);
    c.start();
    for (int i = 0; i < restarts; ++i) {
      const ProcessId victim{static_cast<ProcessId::Rep>(1 + i % 2)};
      const sim::Time at =
          kSecond + static_cast<sim::Time>(i + 1) * (8 * kSecond) /
                        static_cast<sim::Time>(restarts + 1);
      c.sim().schedule_at(at, [&c, victim] { c.restart(victim); });
    }
    std::uint64_t uid = 1;
    for (sim::Time t = 0; t < kEpisode; t += 20 * kMillisecond) {
      const ProcessId p{static_cast<ProcessId::Rep>(uid % 3)};
      c.bcast(p, AppMsg{uid++, p, ""});
      c.run_for(20 * kMillisecond);
    }
    c.run_for(2 * kSecond);  // let the last recovery complete
    delivered = c.deliveries().size();
    wal_bytes = c.store()->stats().bytes_written();
    const obs::HistogramSnapshot h =
        c.metrics().histogram("trace.recovery_us").snapshot();
    recoveries = h.count;
    recovery_p50 = h.p50();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(delivered));
  state.SetLabel(std::to_string(restarts) + " restarts/10k ticks, " +
                 (file_backed ? "file store" : "mem store") + ", " +
                 std::to_string(recoveries) + " recoveries p50=" +
                 std::to_string(recovery_p50) + "us, wal=" +
                 std::to_string(wal_bytes) + "B, " +
                 std::to_string(delivered) + " delivered");
}
BENCHMARK(BM_StackRestart)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({10, 0})
    ->Args({10, 1});

void BM_TraceAcceptance(benchmark::State& state) {
  // Cost of replaying a recorded run through all three spec acceptors.
  ClusterConfig cfg;
  cfg.n_processes = 4;
  Cluster c(cfg, 99);
  c.start();
  std::uint64_t uid = 1;
  for (int i = 0; i < 100; ++i) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % 4)};
    c.bcast(p, AppMsg{uid++, p, ""});
    c.run_for(10 * kMillisecond);
  }
  c.run_for(1 * kSecond);
  const std::size_t events =
      c.vs_trace().size() + c.dvs_trace().size() + c.to_trace().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check_vs_trace().ok);
    benchmark::DoNotOptimize(c.check_dvs_trace().ok);
    benchmark::DoNotOptimize(c.check_to_trace().ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceAcceptance);

void BM_Scenario(benchmark::State& state) {
  // One full scenario seed per iteration: client swarm + compiled fault
  // plan + online oracle + SLO accounting, i.e. the whole workload-engine
  // path over the stack. Axis 0 is the faultless closed-loop baseline;
  // axis 1 adds crash-restart churn with persistence underneath. The
  // label counters (completed ops, views, restarts, availability) are
  // deterministic — the review surface; wall clock is indicative.
  const bool churny = state.range(0) != 0;
  workload::Scenario sc;
  sc.name = churny ? "bench-churn" : "bench-steady";
  sc.n = 3;
  sc.seeds = 1;
  sc.seed = 7;
  sc.warmup = 200 * kMillisecond;
  sc.horizon = 2 * kSecond;
  sc.settle = 1 * kSecond;
  sc.clients = 2;
  sc.think = 5 * kMillisecond;
  sc.mix.keys = 100;
  if (churny) {
    sc.churn = workload::ChurnSpec{1.0, true, 200 * kMillisecond,
                                   600 * kMillisecond};
  }
  sc.validate();

  workload::SeedOutcome out;
  for (auto _ : state) {
    out = workload::run_scenario_seed(sc, sc.seed);
    benchmark::DoNotOptimize(out.slo.completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.slo.completed));
  state.counters["completed"] = static_cast<double>(out.slo.completed);
  state.counters["commits"] = static_cast<double>(out.slo.commits);
  state.counters["views"] = static_cast<double>(out.slo.views_installed);
  state.counters["restarts"] = static_cast<double>(out.slo.restarts);
  state.counters["avail_ppm"] = static_cast<double>(out.slo.availability_ppm());
  state.SetLabel(churny ? "churn-restart" : "faultless");
}
BENCHMARK(BM_Scenario)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ----- real-transport axis (E21) ---------------------------------------------
// The same NodeRuntime stack the sim benchmarks exercise, but over real UDP
// sockets on loopback: n transports + n runtimes in one process, the timer
// queue slaved to the wall clock exactly like dvsd's event loop. Measures
// end-to-end replicated-command cost over real sockets — syscalls, kernel
// queues and heartbeat-paced stability included, which is why these numbers
// are wall-clock honest rather than simulated. Skipped under DVS_NO_NET=1.

std::uint64_t bench_monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

struct UdpLoopbackStack {
  sim::Simulator sim;
  std::vector<std::unique_ptr<net::UdpTransport>> nets;
  std::vector<std::unique_ptr<daemon::NodeRuntime>> nodes;
  std::uint64_t start_us = 0;

  explicit UdpLoopbackStack(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      net::UdpConfig cfg;
      cfg.self = ProcessId{static_cast<std::uint32_t>(i)};
      cfg.bind_port = 0;
      nets.push_back(
          std::make_unique<net::UdpTransport>(cfg, make_universe(n)));
    }
    for (auto& t : nets) {
      for (std::size_t j = 0; j < n; ++j) {
        t->set_peer(ProcessId{static_cast<std::uint32_t>(j)},
                    {"127.0.0.1", nets[j]->local_port()});
      }
    }
    start_us = bench_monotonic_us();
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<daemon::NodeRuntime>(
          ProcessId{static_cast<std::uint32_t>(i)}, n, n, *nets[i], sim,
          daemon::RuntimeOptions{}, nullptr, nullptr,
          [this] { return bench_monotonic_us() - start_us; }));
    }
    for (auto& rt : nodes) rt->start();
  }

  /// One event-loop step for every node (busy loop — latency benchmark).
  void step() {
    sim.run_until(bench_monotonic_us() - start_us);
    for (auto& t : nets) t->flush();
    for (auto& t : nets) t->drain();
  }

  bool run_until(const std::function<bool()>& pred, std::uint64_t limit_us) {
    const std::uint64_t deadline = bench_monotonic_us() + limit_us;
    while (!pred()) {
      step();
      if (bench_monotonic_us() > deadline) return false;
    }
    return true;
  }

  [[nodiscard]] bool all_applied(std::uint64_t want) const {
    for (const auto& rt : nodes) {
      if (rt->kv().applied() < want) return false;
    }
    return true;
  }
};

void BM_ShardedThroughput(benchmark::State& state) {
  // Multi-group scaling axis (experiment E23): K independent shard columns
  // over ONE fixed 8-node pool at replication 2, all multiplexed on one
  // simulator and one network. Offered load is one broadcast per shard per
  // 20 ms tick for 2 simulated seconds, so the aggregate committed load
  // grows with K while the per-column load stays constant. The label's
  // commit counts are deterministic (the review surface); wall time is the
  // cost of multiplexing K columns through one event loop.
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPool = 8;
  constexpr std::size_t kReplication = 2;
  constexpr sim::Time kRun = 2 * kSecond;
  constexpr sim::Time kTick = 20 * kMillisecond;
  std::uint64_t seed = 1;
  std::uint64_t committed = 0;
  for (auto _ : state) {
    shard::ShardClusterConfig cfg;
    cfg.shards = shards;
    cfg.replication = kReplication;
    cfg.base.n_processes = kPool;
    cfg.base.record_traces = false;
    cfg.base.conformance_oracle = false;
    cfg.base.observability = false;
    shard::ShardCluster c(cfg, seed++);
    c.start();
    std::uint64_t uid = 1;
    for (sim::Time t = 0; t < kRun; t += kTick) {
      for (std::size_t k = 1; k <= shards; ++k) {
        const ProcessId local{static_cast<ProcessId::Rep>(uid % kReplication)};
        c.bcast(static_cast<std::uint32_t>(k), local, AppMsg{uid++, local, ""});
      }
      c.run_for(kTick);
    }
    c.run_for(1 * kSecond);  // settle: drain in-flight commits
    committed = 0;
    for (std::size_t k = 1; k <= shards; ++k) {
      committed += c.shard(static_cast<std::uint32_t>(k)).deliveries().size() /
                   kReplication;
    }
    benchmark::DoNotOptimize(committed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(committed));
  const std::uint64_t per_sim_s = committed / (kRun / kSecond);
  state.counters["commits"] = static_cast<double>(committed);
  state.counters["commits_per_sim_s"] = static_cast<double>(per_sim_s);
  state.SetLabel("K=" + std::to_string(shards) + ", pool 8 r=2, " +
                 std::to_string(committed) + " commits, " +
                 std::to_string(per_sim_s) + "/sim-s");
}
BENCHMARK(BM_ShardedThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_ShardMigration(benchmark::State& state) {
  // Migration cost vs column state size (experiment E24): a K=4 r=2
  // dynamic pool of 4, shard g3 pre-loaded with S committed commands, then
  // its co-host (process 3, also on g4) drops off the network. The timed
  // region spans suspicion, the pool view change and BOTH state-transfer
  // episodes — journal snapshot, chunked 0x48 transfer, replay and cutover
  // — until the cluster reports the two slots migrated. The preload and
  // teardown run outside the timer, so the axis isolates how episode cost
  // grows with the transferred journal prefix.
  const auto preload = static_cast<std::uint64_t>(state.range(0));
  constexpr std::size_t kPool = 4;
  constexpr sim::Time kTick = 20 * kMillisecond;
  std::uint64_t seed = 1;
  std::optional<shard::ShardCluster> c;
  for (auto _ : state) {
    state.PauseTiming();
    shard::ShardClusterConfig cfg;
    cfg.shards = 4;
    cfg.replication = 2;
    cfg.dynamic = true;
    cfg.base.n_processes = kPool;
    cfg.base.persistence = true;
    cfg.base.record_traces = false;
    cfg.base.conformance_oracle = false;
    cfg.base.observability = false;
    c.emplace(cfg, seed++);
    c->start();
    // Commit S commands into g3 (hosts {2,3}) — the journal prefix the
    // donor must snapshot and the joiner must replay.
    std::uint64_t uid = 1;
    while (uid <= preload) {
      for (int burst = 0; burst < 8 && uid <= preload; ++burst) {
        const ProcessId local{static_cast<ProcessId::Rep>(uid % 2)};
        c->bcast(3, local, AppMsg{uid, local, "put k" + std::to_string(uid)});
        ++uid;
      }
      c->run_for(kTick);
    }
    for (int guard = 0; guard < 200 && c->shard(3).deliveries().size() <
                                           2 * preload;
         ++guard) {
      c->run_for(100 * kMillisecond);
    }
    state.ResumeTiming();
    c->net().pause(ProcessId{3});
    while (c->migrations() < 2) c->run_for(50 * kMillisecond);
    state.PauseTiming();
    benchmark::DoNotOptimize(c->migrations());
    c.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(preload));
  state.counters["preloaded_cmds"] = static_cast<double>(preload);
  state.SetLabel("pool 4 K=4 r=2, " + std::to_string(preload) +
                 " cmds transferred across 2 slot migrations");
}
BENCHMARK(BM_ShardMigration)
    ->Arg(16)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

bool bench_no_net() {
  const char* env = std::getenv("DVS_NO_NET");
  return env != nullptr && env[0] == '1';
}

void BM_UdpLoopbackCommand(benchmark::State& state) {
  // Latency axis: one replicated put at a time, timed until EVERY replica
  // has applied it (total-order delivery + stability over real sockets).
  if (bench_no_net()) {
    state.SkipWithError("DVS_NO_NET=1");
    return;
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  UdpLoopbackStack stack(n);
  if (!stack.run_until(
          [&] {
            for (const auto& rt : stack.nodes) {
              if (!rt->vs().view() || rt->vs().view()->size() != n)
                return false;
            }
            return true;
          },
          5'000'000)) {
    state.SkipWithError("initial view never formed");
    return;
  }
  std::uint64_t want = 0;
  for (auto _ : state) {
    stack.nodes[0]->bcast_command("put k v");
    ++want;
    if (!stack.run_until([&] { return stack.all_applied(want); },
                         5'000'000)) {
      state.SkipWithError("command never applied everywhere");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("udp loopback, applied on all " + std::to_string(n));
}
BENCHMARK(BM_UdpLoopbackCommand)
    ->Arg(3)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_UdpLoopbackBurst(benchmark::State& state) {
  // Throughput axis: 50 pipelined puts round-robin across members, timed
  // until every replica applied all of them. Batching coalesces the burst
  // into few datagrams; items/s is replicated commands per wall second.
  if (bench_no_net()) {
    state.SkipWithError("DVS_NO_NET=1");
    return;
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kBurst = 50;
  UdpLoopbackStack stack(n);
  if (!stack.run_until(
          [&] {
            for (const auto& rt : stack.nodes) {
              if (!rt->vs().view() || rt->vs().view()->size() != n)
                return false;
            }
            return true;
          },
          5'000'000)) {
    state.SkipWithError("initial view never formed");
    return;
  }
  std::uint64_t want = 0;
  for (auto _ : state) {
    for (std::uint64_t x = 0; x < kBurst; ++x) {
      stack.nodes[x % n]->bcast_command("put k" + std::to_string(x) + " v");
      stack.step();
    }
    want += kBurst;
    if (!stack.run_until([&] { return stack.all_applied(want); },
                         10'000'000)) {
      state.SkipWithError("burst never applied everywhere");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBurst));
  state.SetLabel("udp loopback, " + std::to_string(kBurst) +
                 " cmds/burst, n=" + std::to_string(n));
}
BENCHMARK(BM_UdpLoopbackBurst)->Arg(3)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
