// Simulation-rate benchmark of the full distributed stack (experiment E8's
// machinery): wall-clock cost per simulated second and per delivered
// message, with and without trace recording.
#include <benchmark/benchmark.h>

#include "tosys/cluster.h"

namespace {

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

void BM_StableClusterSecond(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool record = state.range(1) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n_processes = n;
    cfg.record_traces = record;
    Cluster c(cfg, seed++);
    c.start();
    std::uint64_t uid = 1;
    for (int i = 0; i < 50; ++i) {
      const ProcessId p{static_cast<ProcessId::Rep>(uid % n)};
      c.bcast(p, AppMsg{uid++, p, ""});
      c.run_for(20 * kMillisecond);
    }
    benchmark::DoNotOptimize(c.deliveries().size());
  }
  state.SetItemsProcessed(state.iterations() * 50);
  state.SetLabel(record ? "traces on" : "traces off");
}
BENCHMARK(BM_StableClusterSecond)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({5, 0})
    ->Args({9, 0});

void BM_ViewChange(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.n_processes = n;
    cfg.record_traces = false;
    Cluster c(cfg, seed++);
    c.start();
    c.run_for(300 * kMillisecond);
    c.net().pause(ProcessId{1});
    c.run_for(2 * kSecond);
    c.net().resume(ProcessId{1});
    c.run_for(2 * kSecond);
    benchmark::DoNotOptimize(c.primary_fraction());
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two view changes
}
BENCHMARK(BM_ViewChange)->Arg(3)->Arg(5)->Arg(9);

void BM_TraceAcceptance(benchmark::State& state) {
  // Cost of replaying a recorded run through all three spec acceptors.
  ClusterConfig cfg;
  cfg.n_processes = 4;
  Cluster c(cfg, 99);
  c.start();
  std::uint64_t uid = 1;
  for (int i = 0; i < 100; ++i) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % 4)};
    c.bcast(p, AppMsg{uid++, p, ""});
    c.run_for(10 * kMillisecond);
  }
  c.run_for(1 * kSecond);
  const std::size_t events =
      c.vs_trace().size() + c.dvs_trace().size() + c.to_trace().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.check_vs_trace().ok);
    benchmark::DoNotOptimize(c.check_dvs_trace().ok);
    benchmark::DoNotOptimize(c.check_to_trace().ok);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceAcceptance);

}  // namespace

BENCHMARK_MAIN();
