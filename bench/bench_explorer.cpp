// Cost of the verification machinery (experiments E1–E7): steps/second of
// the randomized explorers, with and without the per-step checkers. The
// interesting ratio is how much the paper's invariants + the step-wise
// refinement check cost on top of raw execution.
#include <benchmark/benchmark.h>

#include "explorer/explorer.h"
#include "explorer/to_explorer.h"

namespace {

using namespace dvs;  // NOLINT

void BM_VsSpecExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    explorer::VsSpecExplorer ex(make_universe(n),
                                initial_view(make_universe(n)), config,
                                seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_VsSpecExplorer)->Arg(3)->Arg(5);

void BM_DvsSpecExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    explorer::DvsSpecExplorer ex(make_universe(n),
                                 initial_view(make_universe(n)), config,
                                 seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_DvsSpecExplorer)->Arg(3)->Arg(5);

void BM_DvsImplExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool check_refinement = state.range(1) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    config.check_refinement = check_refinement;
    config.check_acceptance = check_refinement;
    explorer::DvsImplExplorer ex(make_universe(n),
                                 initial_view(make_universe(n)), config,
                                 seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
  state.SetLabel(check_refinement ? "checkers on" : "checkers off");
}
BENCHMARK(BM_DvsImplExplorer)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1});

void BM_ToImplExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    explorer::ToImplExplorer ex(make_universe(n),
                                initial_view(make_universe(n)), config,
                                seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ToImplExplorer)->Arg(3)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
