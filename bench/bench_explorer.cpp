// Cost of the verification machinery (experiments E1–E7): steps/second of
// the randomized explorers, with and without the per-step checkers. The
// interesting ratio is how much the paper's invariants + the step-wise
// refinement check cost on top of raw execution. The parallel-engine
// entries (BM_SeedSweep, BM_ExhaustiveBfs) sweep the jobs count; see
// bench_parallel for the full scaling tables and docs/PERFORMANCE.md for
// what determinism they promise.
#include <benchmark/benchmark.h>

#include "explorer/exhaustive.h"
#include "explorer/explorer.h"
#include "explorer/to_explorer.h"
#include "parallel/seed_sweep.h"

namespace {

using namespace dvs;  // NOLINT

void BM_VsSpecExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    explorer::VsSpecExplorer ex(make_universe(n),
                                initial_view(make_universe(n)), config,
                                seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_VsSpecExplorer)->Arg(3)->Arg(5);

void BM_DvsSpecExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    explorer::DvsSpecExplorer ex(make_universe(n),
                                 initial_view(make_universe(n)), config,
                                 seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_DvsSpecExplorer)->Arg(3)->Arg(5);

void BM_DvsImplExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool check_refinement = state.range(1) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    config.check_refinement = check_refinement;
    config.check_acceptance = check_refinement;
    explorer::DvsImplExplorer ex(make_universe(n),
                                 initial_view(make_universe(n)), config,
                                 seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
  state.SetLabel(check_refinement ? "checkers on" : "checkers off");
}
BENCHMARK(BM_DvsImplExplorer)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1});

void BM_ToImplExplorer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    explorer::ExplorerConfig config;
    config.steps = 500;
    explorer::ToImplExplorer ex(make_universe(n),
                                initial_view(make_universe(n)), config,
                                seed++);
    benchmark::DoNotOptimize(ex.run());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ToImplExplorer)->Arg(3)->Arg(4);

void BM_SeedSweep(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const ProcessSet universe = make_universe(3);
  const View v0 = initial_view(universe);
  explorer::ExplorerConfig config;
  config.steps = 300;
  const auto task = parallel::dvs_spec_task(universe, v0, config);
  parallel::SeedSweepConfig sweep;
  sweep.num_seeds = 8;
  sweep.jobs = jobs;
  for (auto _ : state) {
    const auto result = parallel::SeedSweep(sweep).run(task);
    if (result.seeds_failed != 0) state.SkipWithError("seed failed");
    benchmark::DoNotOptimize(result.total);
  }
  state.SetItemsProcessed(state.iterations() * sweep.num_seeds * 300);
}
BENCHMARK(BM_SeedSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ExhaustiveBfs(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const ProcessSet universe = make_universe(2);
  const View v0 = initial_view(universe);
  explorer::ExhaustiveConfig config;
  config.candidate_views = {View{ViewId{1, ProcessId{0}}, universe},
                            View{ViewId{2, ProcessId{0}},
                                 ProcessSet{ProcessId{0}}}};
  config.send_budget = 1;
  config.jobs = jobs;
  std::size_t states = 0;
  for (auto _ : state) {
    const auto stats = explorer::exhaustive_check_dvs_spec(universe, v0, config);
    states = stats.states_visited;
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(states));
}
BENCHMARK(BM_ExhaustiveBfs)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
