// Micro-benchmarks (experiment E13): the primitive operations every layer
// leans on — wire codec, view-set operations, the event queue, and the TO
// recovery functions.
#include <benchmark/benchmark.h>

#include <deque>
#include <map>

#include "common/arena.h"
#include "common/labels.h"
#include "common/ring.h"
#include "common/serialize.h"
#include "common/view.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "vsys/wire.h"

namespace {

using namespace dvs;  // NOLINT

void BM_EncodeDecodeSeq(benchmark::State& state) {
  const vsys::Seq sq{ViewId{12, ProcessId{3}}, 417, ProcessId{2},
                     Msg{OpaqueMsg{99, ProcessId{2}}}};
  for (auto _ : state) {
    const Bytes data = vsys::encode(vsys::WireMsg{sq});
    benchmark::DoNotOptimize(vsys::decode(data));
  }
}
BENCHMARK(BM_EncodeDecodeSeq);

void BM_EncodeDecodeSummary(benchmark::State& state) {
  Summary x;
  for (std::uint64_t i = 1; i <= static_cast<std::uint64_t>(state.range(0));
       ++i) {
    const Label l{ViewId{1, ProcessId{0}}, i, ProcessId{i % 4}};
    x.con.emplace(l, AppMsg{i, ProcessId{i % 4}, "payload"});
    x.ord.push_back(l);
  }
  x.next = x.ord.size();
  x.high = ViewId{1, ProcessId{0}};
  for (auto _ : state) {
    Writer w;
    w.summary(x);
    const Bytes data = w.take();
    Reader r(data);
    benchmark::DoNotOptimize(r.summary());
  }
  state.SetLabel(std::to_string(state.range(0)) + " labels");
}
BENCHMARK(BM_EncodeDecodeSummary)->Arg(10)->Arg(100)->Arg(1000);

void BM_MajorityCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ProcessSet a = make_universe(n);
  ProcessSet b;
  for (std::size_t i = n / 3; i < n; ++i) {
    b.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(majority_of(a, b));
  }
}
BENCHMARK(BM_MajorityCheck)->Arg(5)->Arg(50)->Arg(500);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<sim::Time>((i * 7919) % 10000),
                      [&sink] { ++sink; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_Fullorder(benchmark::State& state) {
  // The TO recovery hot path: combine summaries from n members.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::map<ProcessId, Summary> gotstate;
  for (std::size_t q = 0; q < n; ++q) {
    Summary x;
    for (std::uint64_t i = 1; i <= 200; ++i) {
      const Label l{ViewId{1, ProcessId{0}}, i,
                    ProcessId{static_cast<ProcessId::Rep>(i % n)}};
      x.con.emplace(l, AppMsg{i, l.origin, ""});
      if (i % (q + 1) == 0) x.ord.push_back(l);
    }
    x.high = ViewId{static_cast<std::uint64_t>(q), ProcessId{0}};
    gotstate.emplace(ProcessId{static_cast<ProcessId::Rep>(q)}, std::move(x));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fullorder(gotstate));
  }
}
BENCHMARK(BM_Fullorder)->Arg(3)->Arg(8);

// Arena/ring primitives (ISSUE 6): the steady-state cost of the recycled
// containers vs the std containers they replaced on the hot path.

void BM_ArenaAcquireRelease(benchmark::State& state) {
  MsgArena arena(64);
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const MsgArena::Handle h = arena.acquire();
    arena.at(h).resize(payload);
    benchmark::DoNotOptimize(arena.at(h).data());
    arena.release(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaAcquireRelease)->Arg(64)->Arg(1024);

void BM_HeapBytesAllocFree(benchmark::State& state) {
  // The baseline the arena replaces: a fresh Bytes per in-flight payload.
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Bytes b(payload);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapBytesAllocFree)->Arg(64)->Arg(1024);

void BM_RingBufferChurn(benchmark::State& state) {
  // Steady-state FIFO churn at a fixed backlog: the retransmit/order-queue
  // access pattern.
  RingBuffer<std::uint64_t> rb;
  for (std::uint64_t i = 0; i < 32; ++i) rb.push_back(i);
  std::uint64_t next = 32;
  for (auto _ : state) {
    rb.push_back(next++);
    benchmark::DoNotOptimize(rb.front());
    rb.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingBufferChurn);

void BM_DequeChurn(benchmark::State& state) {
  std::deque<std::uint64_t> dq;
  for (std::uint64_t i = 0; i < 32; ++i) dq.push_back(i);
  std::uint64_t next = 32;
  for (auto _ : state) {
    dq.push_back(next++);
    benchmark::DoNotOptimize(dq.front());
    dq.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequeChurn);

void BM_RingBufferPayloadChurn(benchmark::State& state) {
  // The stack's actual queue elements carry heap payloads. append_slot
  // hands back the recycled slot, so the payload's capacity survives the
  // pop/push lap and the assign below never allocates.
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const Bytes payload(bytes, std::byte{0x5a});
  RingBuffer<Bytes> rb;
  for (int i = 0; i < 32; ++i) rb.append_slot() = payload;
  for (auto _ : state) {
    Bytes& slot = rb.append_slot();
    slot.assign(payload.begin(), payload.end());
    benchmark::DoNotOptimize(rb.front().data());
    rb.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingBufferPayloadChurn)->Arg(64)->Arg(1024);

void BM_DequePayloadChurn(benchmark::State& state) {
  // std::deque destroys the popped element, so every push re-allocates the
  // payload buffer it just freed.
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  const Bytes payload(bytes, std::byte{0x5a});
  std::deque<Bytes> dq;
  for (int i = 0; i < 32; ++i) dq.push_back(payload);
  for (auto _ : state) {
    dq.emplace_back(payload.begin(), payload.end());
    benchmark::DoNotOptimize(dq.front().data());
    dq.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DequePayloadChurn)->Arg(64)->Arg(1024);

void BM_SeqWindowChurn(benchmark::State& state) {
  // Sliding issued-window churn: insert at hi, probe, GC below — the
  // sequencer's per-message bookkeeping.
  SeqWindow<std::uint64_t> w;
  for (std::uint64_t k = 1; k <= 32; ++k) w.insert(k) = k;
  std::uint64_t hi = 32;
  for (auto _ : state) {
    ++hi;
    w.insert(hi) = hi;
    benchmark::DoNotOptimize(w.find(hi - 16));
    w.erase_below(hi - 31);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeqWindowChurn);

void BM_MapChurn(benchmark::State& state) {
  std::map<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 1; k <= 32; ++k) m.emplace(k, k);
  std::uint64_t hi = 32;
  for (auto _ : state) {
    ++hi;
    m.emplace(hi, hi);
    benchmark::DoNotOptimize(m.find(hi - 16));
    m.erase(m.begin(), m.lower_bound(hi - 31));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapChurn);

void BM_ObsCounterInc(benchmark::State& state) {
  // The instrumentation hot path: a relaxed atomic add, no lock.
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bench.hits");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("bench.lat", obs::latency_buckets_us());
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.observe(v);
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    v %= 20'000'000;  // spans the full bucket range incl. overflow
  }
  benchmark::DoNotOptimize(h.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSnapshotExport(benchmark::State& state) {
  // Scrape + serialize cost for a registry the size of a chaos cluster's.
  obs::MetricsRegistry reg;
  for (int p = 0; p < 4; ++p) {
    const std::string label = "{process=\"p" + std::to_string(p) + "\"}";
    for (int m = 0; m < 10; ++m) {
      reg.counter("layer.metric" + std::to_string(m) + label).set(1000 + m);
    }
    obs::Histogram& h =
        reg.histogram("layer.lat" + label, obs::latency_buckets_us());
    for (std::uint64_t v = 100; v < 100000; v *= 3) h.observe(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot().to_json());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSnapshotExport);

}  // namespace

BENCHMARK_MAIN();
