// Ablation experiments for the design choices DESIGN.md calls out.
//
// A — mechanism ablation (the paper's machinery): availability on the
//     cascading-shrink workload with garbage collection and/or registration
//     disabled. Both mechanisms feed the `act` advancement that lets the
//     majority check measure against the *latest* totally registered view;
//     without either, `use` keeps every historical view and the dynamic
//     service degrades to (at best) the static rule — the shrink blocks as
//     soon as the component is not a majority of the initial membership.
//
// B — failure-detection tradeoff: suspect-timeout sweep vs recovery time
//     (time to a re-formed primary after a member pause). Lower timeouts
//     recover faster but a production deployment pays with false suspicions
//     on jittery links; the sweep quantifies the latency side.
#include <cstdio>
#include <optional>

#include "analysis/availability.h"
#include "tosys/cluster.h"

namespace {

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

double cascade_availability(std::size_t n, bool gc, bool registration,
                            std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  cfg.gc_enabled = gc;
  cfg.registration_enabled = registration;
  Cluster c(cfg, seed);
  analysis::AvailabilitySampler sampler(c, c.v0());
  c.start();
  c.run_for(500 * kMillisecond);

  const sim::Time hold = 2 * kSecond;
  const sim::Time sample_period = 20 * kMillisecond;
  auto run_and_sample = [&](sim::Time duration) {
    for (sim::Time t = 0; t < duration; t += sample_period) {
      c.run_for(sample_period);
      sampler.sample();
    }
  };
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (std::size_t alive = n; alive >= 2; --alive) {
      std::vector<ProcessSet> groups{make_universe(alive)};
      for (std::size_t i = alive; i < n; ++i) {
        groups.push_back(make_process_set({static_cast<unsigned>(i)}));
      }
      c.net().set_partition(groups);
      run_and_sample(hold);
      if (alive == 2) break;
    }
    c.net().heal();
    run_and_sample(2 * hold);
  }
  return sampler.report().dynamic_dvs;
}

double recovery_ms(sim::Time suspect_timeout, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = 5;
  cfg.record_traces = false;
  cfg.vs.suspect_timeout = suspect_timeout;
  cfg.vs.heartbeat_period = std::max<sim::Time>(suspect_timeout / 5,
                                                2 * kMillisecond);
  Cluster c(cfg, seed);
  c.start();
  c.run_for(500 * kMillisecond);

  std::vector<double> samples;
  const ProcessSet everyone = c.universe();
  for (int e = 0; e < 8; ++e) {
    const ProcessId victim{static_cast<ProcessId::Rep>(1 + (e % 4))};
    ProcessSet survivors = everyone;
    survivors.erase(victim);
    c.net().pause(victim);
    const sim::Time start = c.sim().now();
    const sim::Time deadline = start + 20 * kSecond;
    while (c.sim().now() < deadline) {
      c.run_for(1 * kMillisecond);
      bool done = true;
      for (ProcessId p : survivors) {
        const auto& node = c.dvs_node(p);
        const auto& pv = node.primary_view();
        if (!node.in_primary() || !pv.has_value() ||
            pv->set() != survivors) {
          done = false;
          break;
        }
      }
      if (done) break;
    }
    samples.push_back(static_cast<double>(c.sim().now() - start) /
                      kMillisecond);
    c.net().resume(victim);
    c.run_for(3 * kSecond);
  }
  return analysis::percentiles(std::move(samples)).p50;
}

}  // namespace

int main() {
  std::printf(
      "Ablation A: cascade availability with the paper's mechanisms "
      "disabled (n-process shrink to 2, dynamic policy)\n");
  std::printf("%4s  %-24s  %12s\n", "n", "configuration", "availability");
  for (std::size_t n : {5, 7}) {
    struct Config {
      const char* name;
      bool gc;
      bool reg;
    };
    const Config configs[] = {
        {"full (gc + registration)", true, true},
        {"no garbage collection", false, true},
        {"no registration", true, false},
        {"neither", false, false},
    };
    for (const Config& cfg : configs) {
      const double a = cascade_availability(n, cfg.gc, cfg.reg, 500 + n);
      std::printf("%4zu  %-24s  %12.3f\n", n, cfg.name, a);
    }
  }
  std::printf(
      "\nshape check: 'full' sustains the deep shrink; every ablated "
      "configuration collapses once the component is no longer a majority "
      "of the initial membership — both mechanisms are load-bearing.\n\n");

  std::printf(
      "Ablation B: failure-detection timeout vs time to a re-formed "
      "primary (n = 5, one member pauses; p50 over 8 events)\n");
  std::printf("%18s  %14s\n", "suspect timeout", "recovery p50");
  for (sim::Time timeout :
       {25 * kMillisecond, 50 * kMillisecond, 100 * kMillisecond,
        200 * kMillisecond, 400 * kMillisecond}) {
    const double p50 = recovery_ms(timeout, 900 + timeout);
    std::printf("%15llu ms  %11.1f ms\n",
                static_cast<unsigned long long>(timeout / kMillisecond), p50);
  }
  std::printf(
      "\nshape check: recovery tracks the suspect timeout almost linearly — "
      "detection dominates; the membership/info/exchange rounds add a "
      "near-constant tail.\n");
  return 0;
}
