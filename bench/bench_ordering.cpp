// Ordering-strategy comparison: sequencer (Isis/Amoeba style) vs token ring
// (Totem style) inside the same VS layer, with the DVS + TO stack on top.
//
// The classic tradeoff this reproduces: the sequencer gives low, flat
// delivery latency at any load but concentrates work at one member; the
// token ring spreads the ordering work but bounds idle latency from below
// by the token circulation time (≈ n/2 hops at the heartbeat pace when the
// system is lightly loaded, much less under load because holders forward
// immediately after issuing).
#include <cstdio>
#include <map>

#include "analysis/availability.h"
#include "tosys/cluster.h"

namespace {

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

struct Result {
  double msgs_per_sec;
  analysis::Percentiles latency_ms;
  std::uint64_t wire_messages;
};

Result run(std::size_t n, vsys::OrderingMode mode, sim::Time send_period,
           std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  cfg.vs.ordering = mode;
  Cluster c(cfg, seed);
  c.start();
  c.run_for(500 * kMillisecond);

  std::map<std::uint64_t, sim::Time> sent_at;
  const sim::Time load_duration = 20 * kSecond;
  std::uint64_t uid = 1;
  const sim::Time t0 = c.sim().now();
  for (sim::Time t = 0; t < load_duration; t += send_period) {
    const ProcessId p{static_cast<ProcessId::Rep>(uid % n)};
    sent_at[uid] = c.sim().now();
    c.bcast(p, AppMsg{uid, p, ""});
    ++uid;
    c.run_for(send_period);
  }
  c.run_for(3 * kSecond);

  std::vector<double> latencies;
  std::map<std::uint64_t, std::size_t> counts;
  for (const Delivery& d : c.deliveries()) {
    auto it = sent_at.find(d.msg.uid);
    if (it == sent_at.end()) continue;
    latencies.push_back(static_cast<double>(d.at - it->second) /
                        kMillisecond);
    ++counts[d.msg.uid];
  }
  std::size_t complete = 0;
  for (const auto& [id, k] : counts) {
    if (k == n) ++complete;
  }
  Result r;
  r.msgs_per_sec = static_cast<double>(complete) /
                   (static_cast<double>(c.sim().now() - t0) / kSecond);
  r.latency_ms = analysis::percentiles(std::move(latencies));
  r.wire_messages = c.net().stats().sent;
  return r;
}

const char* mode_name(vsys::OrderingMode mode) {
  return mode == vsys::OrderingMode::kSequencer ? "sequencer" : "token-ring";
}

}  // namespace

int main() {
  std::printf(
      "Ordering-strategy comparison: sequencer vs token ring (delivery "
      "latency in simulated ms)\n");
  std::printf("%4s  %-10s  %10s | %8s %8s %8s %8s | %12s\n", "n", "mode",
              "load", "msgs/s", "lat p50", "p90", "mean", "wire msgs");
  for (std::size_t n : {3, 5, 8}) {
    for (sim::Time period : {100 * kMillisecond, 10 * kMillisecond,
                             2 * kMillisecond}) {
      for (auto mode : {vsys::OrderingMode::kSequencer,
                        vsys::OrderingMode::kTokenRing}) {
        const Result r = run(n, mode, period, 100 + n);
        std::printf("%4zu  %-10s  %7.0f/s | %8.1f %8.1f %8.1f %8.1f | %12llu\n",
                    n, mode_name(mode),
                    1000.0 / (static_cast<double>(period) / kMillisecond),
                    r.msgs_per_sec, r.latency_ms.p50, r.latency_ms.p90,
                    r.latency_ms.mean,
                    static_cast<unsigned long long>(r.wire_messages));
      }
    }
  }
  std::printf(
      "\nshape check: sequencer latency is flat in load; token-ring latency "
      "is high at light load (circulation bound) and drops as load rises "
      "(the token is usually already in motion with work queued).\n");
  return 0;
}
