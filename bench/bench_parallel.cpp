// E13b: scaling of the parallel verification engine.
//
// Two workloads, each swept over worker counts {1, 2, 4, 8}:
//   * seed sweep — DVS-IMPL randomized exploration, one task per seed
//     (embarrassingly parallel; the determinism contract makes the output
//     identical at every width);
//   * exhaustive BFS — level-synchronized sharded search of the DVS spec
//     (shared visited set; scaling bounded by level widths and shard
//     contention).
//
// Reports wall time, throughput (steps/s resp. states/s) and speedup vs
// jobs=1. On a single-core host the expected speedup is ~1.0× throughout —
// the table then documents the parallel overhead rather than the scaling.
//
//   $ ./build/bench/bench_parallel [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "explorer/exhaustive.h"
#include "explorer/explorer.h"
#include "parallel/seed_sweep.h"
#include "parallel/thread_pool.h"

using namespace dvs;  // NOLINT

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void run_seed_sweep_table(bool smoke) {
  const ProcessSet universe = make_universe(3);
  const View v0 = initial_view(universe);
  explorer::ExplorerConfig config;
  config.steps = smoke ? 200 : 1500;
  const std::uint64_t num_seeds = smoke ? 8 : 32;
  const auto task = parallel::dvs_impl_task(universe, v0, config);

  std::printf("\nseed sweep: DVS-IMPL, %llu seeds x %zu steps, n=3 (all "
              "checkers armed)\n",
              static_cast<unsigned long long>(num_seeds), config.steps);
  std::printf("%6s  %10s  %12s  %8s\n", "jobs", "wall(s)", "steps/s",
              "speedup");
  double base = 0.0;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    parallel::SeedSweepConfig sweep_config;
    sweep_config.first_seed = 1;
    sweep_config.num_seeds = num_seeds;
    sweep_config.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = parallel::SeedSweep(sweep_config).run(task);
    const double wall = seconds_since(t0);
    if (jobs == 1) base = wall;
    std::printf("%6zu  %10.3f  %12.0f  %7.2fx%s\n", jobs, wall,
                static_cast<double>(result.total.steps_taken) / wall,
                base / wall,
                result.first_failure.has_value() ? "  (FAILURE?)" : "");
  }
}

void run_exhaustive_table(bool smoke) {
  const std::size_t n = smoke ? 2 : 3;
  const ProcessSet universe = make_universe(n);
  const View v0 = initial_view(universe);
  explorer::ExhaustiveConfig config;
  ProcessSet shrink;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    shrink.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, universe},
      View{ViewId{2, ProcessId{0}}, shrink.empty() ? universe : shrink},
  };
  config.send_budget = 1;

  std::printf("\nexhaustive BFS: DVS spec, n=%zu, 2 candidate views, "
              "1 send\n", n);
  std::printf("%6s  %10s  %10s  %12s  %8s\n", "jobs", "wall(s)", "states",
              "states/s", "speedup");
  double base = 0.0;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    config.jobs = jobs;
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = explorer::exhaustive_check_dvs_spec(universe, v0,
                                                           config);
    const double wall = seconds_since(t0);
    if (jobs == 1) base = wall;
    std::printf("%6zu  %10.3f  %10zu  %12.0f  %7.2fx\n", jobs, wall,
                stats.states_visited,
                static_cast<double>(stats.states_visited) / wall,
                base / wall);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("E13b: parallel verification scaling (hardware threads: %zu)\n",
              parallel::resolve_jobs(0));
  run_seed_sweep_table(smoke);
  run_exhaustive_table(smoke);
  std::printf(
      "\nshape check: per-jobs outputs are identical by construction "
      "(deterministic aggregation); speedup should approach the smaller of "
      "jobs and the hardware thread count.\n");
  return 0;
}
