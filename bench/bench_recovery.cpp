// Experiment E10: view-change recovery latency of the full stack.
//
// Measures, over repeated partition/heal events, the time from the
// connectivity change until
//   (a) every live process is operating in a primary view again
//       (DVS-NEWVIEW accepted everywhere — the membership + info exchange
//       cost), and
//   (b) the new primary view is totally registered (the application's state
//       exchange completed and DVS-REGISTER reached the service — the full
//       recovery the DVS specification's TotReg notion captures).
//
// Reported as percentiles across events, per group size. The gap between
// (a) and (b) is the cost of the paper's registration handshake.
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include "analysis/availability.h"
#include "tosys/cluster.h"

namespace {

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

/// Runs until every process in `expected` operates in a primary view whose
/// membership is exactly `expected` (and, for `registered`, has registered
/// it). Returns the elapsed simulated time in ms, or nullopt on timeout.
std::optional<double> wait_recovery(Cluster& c, const ProcessSet& expected,
                                    bool registered, sim::Time timeout) {
  const sim::Time start = c.sim().now();
  const sim::Time deadline = start + timeout;
  while (c.sim().now() < deadline) {
    c.run_for(1 * kMillisecond);
    bool done = true;
    for (ProcessId p : expected) {
      const auto& node = c.dvs_node(p);
      const auto& pv = node.primary_view();
      if (!node.in_primary() || !pv.has_value() || pv->set() != expected) {
        done = false;
        break;
      }
      if (registered && !node.automaton().reg(pv->id())) {
        done = false;
        break;
      }
    }
    if (done) {
      return static_cast<double>(c.sim().now() - start) / kMillisecond;
    }
  }
  return std::nullopt;
}

struct Series {
  std::vector<double> primary_ms;
  std::vector<double> registered_ms;
  std::size_t timeouts = 0;
};

Series run(std::size_t n, std::uint64_t seed, int events) {
  ClusterConfig cfg;
  cfg.n_processes = n;
  cfg.record_traces = false;
  Cluster c(cfg, seed);
  c.start();
  c.run_for(500 * kMillisecond);

  Series out;
  const ProcessSet everyone = c.universe();
  for (int e = 0; e < events; ++e) {
    // Drop one process out, wait for the shrunken primary...
    const ProcessId victim{static_cast<ProcessId::Rep>(1 + (e % (n - 1)))};
    ProcessSet survivors = everyone;
    survivors.erase(victim);
    c.net().pause(victim);
    auto t1 = wait_recovery(c, survivors, /*registered=*/false, 10 * kSecond);
    auto t2 = wait_recovery(c, survivors, /*registered=*/true, 10 * kSecond);
    if (t1 && t2) {
      out.primary_ms.push_back(*t1);
      out.registered_ms.push_back(*t1 + *t2);
    } else {
      ++out.timeouts;
    }
    // ...then heal and measure the merge recovery too.
    c.net().resume(victim);
    auto t3 = wait_recovery(c, everyone, /*registered=*/false, 10 * kSecond);
    auto t4 = wait_recovery(c, everyone, /*registered=*/true, 10 * kSecond);
    if (t3 && t4) {
      out.primary_ms.push_back(*t3);
      out.registered_ms.push_back(*t3 + *t4);
    } else {
      ++out.timeouts;
    }
    c.run_for(500 * kMillisecond);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: smallest group and fewer membership events, for CI.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf(
      "E10: recovery latency after a membership change (ms of simulated "
      "time)\n");
  std::printf("%4s  %10s | %8s %8s %8s | %8s %8s %8s | %8s\n", "n", "metric",
              "p50", "p90", "p99", "", "mean", "count", "timeouts");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{3}
            : std::vector<std::size_t>{3, 5, 7, 9};
  for (std::size_t n : sizes) {
    const Series s = run(n, 42 + n, /*events=*/smoke ? 4 : 12);
    const auto prim = analysis::percentiles(s.primary_ms);
    const auto reg = analysis::percentiles(s.registered_ms);
    std::printf("%4zu  %10s | %8.1f %8.1f %8.1f | %8s %8.1f %8zu | %8zu\n", n,
                "primary", prim.p50, prim.p90, prim.p99, "", prim.mean,
                prim.count, s.timeouts);
    std::printf("%4zu  %10s | %8.1f %8.1f %8.1f | %8s %8.1f %8zu |\n", n,
                "registered", reg.p50, reg.p90, reg.p99, "", reg.mean,
                reg.count);
  }
  std::printf(
      "\nshape check: recovery grows mildly with n (info exchange is "
      "all-to-all); 'registered' adds the application state-exchange + "
      "register round.\n");
  return 0;
}
