// Quickstart: a three-process group, totally-ordered broadcast, and the
// spec acceptors confirming the run.
//
//   $ ./build/examples/quickstart
//
// The Cluster helper assembles the full stack (simulated network → VS view
// layer → DVS dynamic-primary layer → TO broadcast) for each process. Every
// BCAST is delivered to all group members in one global order.
#include <cstdio>

#include "tosys/cluster.h"

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT

int main() {
  ClusterConfig config;
  config.n_processes = 3;

  Cluster cluster(config, /*seed=*/2026);
  cluster.start();
  cluster.run_for(200 * sim::kMillisecond);  // let the group settle

  // Three clients broadcast concurrently.
  cluster.bcast(ProcessId{0}, AppMsg{1, ProcessId{0}, "alpha"});
  cluster.bcast(ProcessId{1}, AppMsg{2, ProcessId{1}, "beta"});
  cluster.bcast(ProcessId{2}, AppMsg{3, ProcessId{2}, "gamma"});
  cluster.run_for(1 * sim::kSecond);

  for (ProcessId p : cluster.universe()) {
    std::printf("%s delivered:", p.to_string().c_str());
    for (const Delivery& d : cluster.deliveries_at(p)) {
      std::printf("  %s(from %s)", d.msg.payload.c_str(),
                  d.origin.to_string().c_str());
    }
    std::printf("\n");
  }

  // The recorded traces replay through the executable specifications of the
  // paper: VS (Figure 1), DVS (Figure 2) and the TO broadcast service.
  std::printf("VS  trace: %s\n",
              cluster.check_vs_trace().ok ? "accepted" : "REJECTED");
  std::printf("DVS trace: %s\n",
              cluster.check_dvs_trace().ok ? "accepted" : "REJECTED");
  std::printf("TO  trace: %s\n",
              cluster.check_to_trace().ok ? "accepted" : "REJECTED");

  // Every layer also publishes counters and latency histograms to the
  // cluster's metrics registry (docs/OBSERVABILITY.md has the catalogue).
  const obs::MetricsSnapshot m = cluster.metrics_snapshot();
  std::printf("metrics: %llu datagrams sent, %llu TO deliveries, "
              "p95 delivery latency %llu us\n",
              static_cast<unsigned long long>(m.counter_sum("net.sent")),
              static_cast<unsigned long long>(m.counter_sum("to.deliveries")),
              static_cast<unsigned long long>(
                  m.histograms.at("trace.to_delivery_us").p95()));
  return 0;
}
