// The paper's motivating scenario, narrated: a five-process group shrinks
// gracefully to two processes and keeps a primary component the whole way —
// where the classical static-majority rule loses it at the first step below
// three members (Sections 1 and 4; Lotem–Keidar–Dolev dynamic voting).
//
//   $ ./build/examples/dynamic_views_demo
#include <cstdio>

#include "baseline/static_primary.h"
#include "tosys/cluster.h"

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

namespace {

void report(Cluster& cluster, const baseline::MajorityDetector& majority,
            const char* moment) {
  std::printf("\n-- %s (t = %llu ms) --\n", moment,
              static_cast<unsigned long long>(cluster.sim().now() /
                                              kMillisecond));
  for (ProcessId p : cluster.universe()) {
    if (cluster.net().paused(p)) {
      std::printf("  %s: paused\n", p.to_string().c_str());
      continue;
    }
    const auto& dvs_node = cluster.dvs_node(p);
    const auto& vs_view = cluster.vs_node(p).view();
    const bool dynamic_primary = dvs_node.in_primary();
    const bool static_primary =
        vs_view.has_value() && majority.is_primary(vs_view->set());
    std::printf("  %s: view=%s  dynamic-primary=%-3s  static-majority=%s\n",
                p.to_string().c_str(),
                vs_view.has_value() ? vs_view->to_string().c_str() : "⊥",
                dynamic_primary ? "yes" : "no",
                static_primary ? "yes" : "no");
  }
}

}  // namespace

int main() {
  ClusterConfig config;
  config.n_processes = 5;
  Cluster cluster(config, /*seed=*/3);
  const baseline::MajorityDetector majority(cluster.universe());
  cluster.start();
  cluster.run_for(500 * kMillisecond);
  report(cluster, majority, "initial group of five");

  std::printf("\n### processes 3 and 4 depart ###\n");
  cluster.net().set_partition({make_process_set({0, 1, 2}),
                               make_process_set({3}), make_process_set({4})});
  cluster.run_for(2 * kSecond);
  report(cluster, majority, "three survivors — both notions keep a primary");

  std::printf("\n### process 2 departs: only {0,1} remain ###\n");
  cluster.net().set_partition({make_process_set({0, 1}),
                               make_process_set({2}), make_process_set({3}),
                               make_process_set({4})});
  cluster.run_for(2 * kSecond);
  report(cluster, majority,
         "two survivors — DYNAMIC keeps the primary ({0,1} is a majority of "
         "the previous primary {0,1,2}); STATIC has lost it (2 ≤ 5/2)");

  // Prove the two-node primary is live: a write commits.
  cluster.bcast(ProcessId{0}, AppMsg{1, ProcessId{0}, "committed-by-two"});
  cluster.run_for(1 * kSecond);
  std::printf("\n  p1 deliveries in the 2-node primary: %zu\n",
              cluster.deliveries_at(ProcessId{1}).size());

  std::printf("\n### the network heals ###\n");
  cluster.net().heal();
  cluster.run_for(3 * kSecond);
  report(cluster, majority, "full group again; everyone caught up");
  std::printf("\n  p4 deliveries after heal: %zu (the 2-node write reached "
              "it through the state exchange)\n",
              cluster.deliveries_at(ProcessId{4}).size());

  const auto dvs_ok = cluster.check_dvs_trace();
  std::printf("\nDVS trace accepted by the Figure 2 specification: %s\n",
              dvs_ok.ok ? "yes" : dvs_ok.error.c_str());
  return 0;
}
