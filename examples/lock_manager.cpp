// A distributed lock manager on the replicated-state-machine library — the
// archetypal coherent-data service: because lock commands commit in one
// global order at every replica, two clients can never both believe they
// hold the same lock, even across partitions (the minority side simply
// cannot acquire anything).
//
//   $ ./build/examples/lock_manager
#include <cstdio>
#include <map>
#include <sstream>

#include "apps/smr.h"

using namespace dvs;        // NOLINT
using namespace dvs::apps;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

namespace {

/// Lock-table state machine; commands: "acquire <lock> <client>",
/// "release <lock> <client>". Acquire fails deterministically when held.
class LockStateMachine final : public StateMachine {
 public:
  void apply(const std::string& command) override {
    std::istringstream is(command);
    std::string op;
    std::string lock;
    std::string client;
    is >> op >> lock >> client;
    if (op == "acquire") {
      holders_.try_emplace(lock, client);  // no-op if already held
    } else if (op == "release") {
      auto it = holders_.find(lock);
      if (it != holders_.end() && it->second == client) holders_.erase(it);
    }
    ++applied_;
  }
  [[nodiscard]] std::string snapshot() const override {
    std::ostringstream os;
    for (const auto& [l, c] : holders_) os << l << "->" << c << ";";
    return os.str();
  }
  [[nodiscard]] std::uint64_t digest() const override {
    std::uint64_t h = 1469598103934665603ULL;
    for (const auto& [l, c] : holders_) {
      for (char ch : l + "\x01" + c + "\x02") {
        h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ULL;
      }
    }
    return h ^ applied_;
  }
  [[nodiscard]] std::uint64_t applied() const override { return applied_; }
  [[nodiscard]] std::string holder(const std::string& lock) const {
    auto it = holders_.find(lock);
    return it == holders_.end() ? "(free)" : it->second;
  }

 private:
  std::map<std::string, std::string> holders_;
  std::uint64_t applied_ = 0;
};

const LockStateMachine& locks(const SmrCluster& smr, unsigned p) {
  return dynamic_cast<const LockStateMachine&>(
      smr.replica(ProcessId{p}));
}

}  // namespace

int main() {
  tosys::ClusterConfig cfg;
  cfg.n_processes = 5;
  SmrCluster smr(cfg, 2026,
                 [] { return std::make_unique<LockStateMachine>(); });
  smr.start();
  smr.run_for(300 * kMillisecond);

  std::printf("== two clients race for lock 'L' ==\n");
  smr.submit(ProcessId{0}, "acquire L alice");
  smr.submit(ProcessId{4}, "acquire L bob");
  smr.run_for(1 * kSecond);
  std::printf("every replica agrees the holder is: %s\n",
              locks(smr, 2).holder("L").c_str());

  std::printf("\n== partition {0,1,2} | {3,4}: minority cannot acquire ==\n");
  smr.cluster().net().set_partition({make_process_set({0, 1, 2}),
                                     make_process_set({3, 4})});
  smr.run_for(1 * kSecond);
  smr.submit(ProcessId{3}, "acquire M mallory");  // stalls in the minority
  smr.submit(ProcessId{1}, "acquire M alice");    // commits in the majority
  smr.run_for(2 * kSecond);
  std::printf("majority replica: M held by %s; minority replica p3 has "
              "applied %llu commands (stalled)\n",
              locks(smr, 0).holder("M").c_str(),
              static_cast<unsigned long long>(locks(smr, 3).applied()));

  std::printf("\n== heal: one history, mallory's late acquire loses ==\n");
  smr.cluster().net().heal();
  smr.run_for(4 * kSecond);
  for (unsigned p = 0; p < 5; ++p) {
    std::printf("  p%u: L=%s M=%s (%llu applied)\n", p,
                locks(smr, p).holder("L").c_str(),
                locks(smr, p).holder("M").c_str(),
                static_cast<unsigned long long>(locks(smr, p).applied()));
  }
  std::printf("replicas converged: %s\n", smr.converged() ? "yes" : "NO");
  return smr.converged() ? 0 : 1;
}
