// Load balancing on dynamic primary views — the second application class
// the paper's Discussion suggests (Section 7), using the service-supported
// state-exchange extension.
//
// Ten shards are spread over the members of each established primary view;
// every member computes the same assignment from the agreed membership and
// the exchanged load reports. A partitioned minority goes stale and stops
// serving; the primary side reassigns the minority's shards.
//
//   $ ./build/examples/load_balancer_demo
#include <cstdio>

#include "apps/load_balancer.h"

using namespace dvs;        // NOLINT
using namespace dvs::apps;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

namespace {

void report(LbCluster& lb, const char* moment) {
  std::printf("\n-- %s --\n", moment);
  for (ProcessId p : lb.universe()) {
    const LoadBalancerNode& node = lb.balancer(p);
    std::printf("  %s [%s]:", p.to_string().c_str(),
                node.assignment_fresh() ? "fresh" : "STALE");
    if (node.assignment_fresh()) {
      const auto owned = node.shards_owned_by(p);
      std::printf(" owns %zu shard(s):", owned.size());
      for (std::size_t s : owned) std::printf(" %zu", s);
    } else {
      std::printf(" serving suspended");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  LbCluster lb(/*n_processes=*/5, /*shards=*/10, /*seed=*/8);
  // p0 reports heavy load before the first exchange: it should receive the
  // leftovers last.
  lb.balancer(ProcessId{0}).set_load(90);
  lb.start();
  lb.run_for(2 * kSecond);
  report(lb, "initial assignment (p0 is busy, gets no extra shard)");

  std::printf("\n### partition {0,1,2} | {3,4} ###\n");
  lb.net().set_partition({make_process_set({0, 1, 2}),
                          make_process_set({3, 4})});
  lb.run_for(3 * kSecond);
  report(lb, "majority reassigned 10 shards over three nodes; minority "
             "suspended");

  std::printf("\n### heal ###\n");
  lb.net().heal();
  lb.run_for(3 * kSecond);
  report(lb, "full group again");
  return 0;
}
