// Replicated key-value store — the "coherent data" application class the
// paper's primary views exist for (Section 1's replicated-database
// motivation).
//
// Each replica applies totally-ordered PUT commands to a local map. Because
// every replica applies the same command sequence, the copies never
// diverge; because only primary components make progress, a partitioned
// minority simply stalls instead of forking history.
//
//   $ ./build/examples/replicated_kv
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "tosys/cluster.h"

using namespace dvs;         // NOLINT
using namespace dvs::tosys;  // NOLINT
using sim::kMillisecond;
using sim::kSecond;

namespace {

/// One replica's state machine: applies "key=value" commands in delivery
/// order.
class KvReplica {
 public:
  void apply(const AppMsg& command) {
    const std::string& text = command.payload;
    const auto eq = text.find('=');
    if (eq == std::string::npos) return;
    store_[text.substr(0, eq)] = text.substr(eq + 1);
    ++applied_;
  }

  [[nodiscard]] std::string dump() const {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto& [k, v] : store_) {
      if (!first) os << ", ";
      os << k << "=" << v;
      first = false;
    }
    os << "} (" << applied_ << " commands)";
    return os.str();
  }

  [[nodiscard]] bool same_as(const KvReplica& other) const {
    return store_ == other.store_ && applied_ == other.applied_;
  }

 private:
  std::map<std::string, std::string> store_;
  std::size_t applied_ = 0;
};

}  // namespace

int main() {
  ClusterConfig config;
  config.n_processes = 5;
  Cluster cluster(config, /*seed=*/7);

  // Wire one replica per process: BRCV callbacks apply commands.
  std::map<ProcessId, KvReplica> replicas;
  for (ProcessId p : cluster.universe()) replicas[p];
  // Rewire the TO callbacks to feed the replicas (on top of the cluster's
  // own recording hooks we keep the simple path: poll deliveries).
  cluster.start();
  cluster.run_for(200 * kMillisecond);

  std::uint64_t uid = 1;
  auto put = [&](unsigned at, const std::string& kv) {
    cluster.bcast(ProcessId{at}, AppMsg{uid++, ProcessId{at}, kv});
  };

  std::printf("== normal operation: 5 replicas ==\n");
  put(0, "name=dvs");
  put(1, "lang=c++20");
  put(2, "venue=podc98");
  cluster.run_for(1 * kSecond);

  std::printf("== partition: {0,1,2} | {3,4} — majority keeps serving ==\n");
  cluster.net().set_partition({make_process_set({0, 1, 2}),
                               make_process_set({3, 4})});
  cluster.run_for(1 * kSecond);
  put(0, "state=partitioned");
  // A write submitted in the minority stalls: no component it belongs to is
  // primary, so it is not delivered anywhere during the partition. It is
  // NOT lost — the label stays in p3's content and is recovered through the
  // state exchange when the group re-forms.
  put(3, "minority=stalls-until-heal");
  cluster.run_for(1 * kSecond);
  bool minority_write_visible = false;
  for (ProcessId p : cluster.universe()) {
    for (const Delivery& d : cluster.deliveries_at(p)) {
      if (d.msg.payload.starts_with("minority=")) minority_write_visible = true;
    }
  }
  std::printf("minority write delivered during the partition: %s\n",
              minority_write_visible ? "YES (bug!)" : "no (stalled, as "
              "required for consistency)");

  std::printf("== heal: minority catches up through the state exchange ==\n");
  cluster.net().heal();
  cluster.run_for(3 * kSecond);
  put(4, "state=healed");
  cluster.run_for(1 * kSecond);

  // Apply the delivery log to each replica and compare.
  for (ProcessId p : cluster.universe()) {
    for (const Delivery& d : cluster.deliveries_at(p)) {
      replicas[p].apply(d.msg);
    }
  }
  bool all_equal = true;
  for (ProcessId p : cluster.universe()) {
    std::printf("%s: %s\n", p.to_string().c_str(),
                replicas[p].dump().c_str());
    if (!replicas[p].same_as(replicas[ProcessId{0}])) all_equal = false;
  }
  std::printf("replicas identical: %s\n", all_equal ? "yes" : "NO");
  std::printf("note: the write submitted in the minority was invisible for "
              "the whole partition and committed only after the heal, when "
              "the state exchange pulled it into the new primary's order — "
              "coherence is never violated and no acknowledged write is "
              "lost.\n");
  return all_equal ? 0 : 1;
}
