// dvsd — one node of a real multi-process DVS deployment.
//
// Daemon mode runs the full VS/DVS/TO stack as one OS process over real
// UDP sockets (daemon/daemon.h), with write-ahead persistence and on-disk
// spec-event traces per its config file:
//
//   $ dvsd --config p0.conf            # run until SIGTERM/SIGINT or `quit`
//   $ dvsd --print-config p0.conf      # parse, validate, echo, exit
//
// Client mode sends one text command to a daemon's control socket and
// prints the reply — the workload driver for scripts/cluster.sh and the
// system tests, with no dependency on netcat:
//
//   $ dvsd --ctl 127.0.0.1:9200 put color red
//   $ dvsd --ctl 127.0.0.1:9200 dump
//   $ dvsd --ctl 127.0.0.1:9200 --timeout-ms 500 --retries 10 ping
//
// Control is UDP, so the client resends on timeout (default 3 tries of
// 1000ms); a lost reply to an idempotent query is invisible, and the
// non-idempotent commands (put/del) are safe to resend because replicated
// commands are deduplicated by uid only at the TO layer — a resent `put`
// is a fresh broadcast, which the KV semantics absorb (last write wins).
// Exit code: 0 with the reply on stdout, 1 on timeout/error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "daemon/config.h"
#include "daemon/daemon.h"

using namespace dvs;  // NOLINT

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int run_daemon(const char* config_path) {
  const daemon::DaemonConfig config =
      daemon::DaemonConfig::parse_file(config_path);
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  daemon::Daemon d(config);
  bool recovered = false;
  std::string groups;
  if (config.shards > 0) {
    for (const auto& col : d.columns()) {
      recovered = recovered || col->runtime->recovered();
      groups += (groups.empty() ? " groups g" : ",g") +
                std::to_string(col->group);
    }
  } else {
    recovered = d.runtime().recovered();
  }
  std::fprintf(stderr, "dvsd %s: udp port %u, control port %u%s%s\n",
               config.node.to_string().c_str(),
               config.peers.at(config.node).port, d.control_port(),
               groups.c_str(), recovered ? " (recovered from WAL)" : "");
  return d.run(&g_stop);
}

int run_client(const std::string& target, const std::string& command,
               int timeout_ms, int retries) {
  const net::UdpEndpoint ep = daemon::parse_endpoint(target);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "dvsd --ctl: bad address %s\n", ep.host.c_str());
    return 1;
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("dvsd --ctl: socket");
    return 1;
  }
  char reply[65536];
  for (int attempt = 0; attempt < retries; ++attempt) {
    if (::sendto(fd, command.data(), command.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
      std::perror("dvsd --ctl: sendto");
      ::close(fd);
      return 1;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      std::perror("dvsd --ctl: poll");
      ::close(fd);
      return 1;
    }
    if (ready == 0) continue;  // timeout: resend
    const ssize_t n = ::recv(fd, reply, sizeof(reply) - 1, 0);
    if (n < 0) continue;
    ::close(fd);
    std::fwrite(reply, 1, static_cast<std::size_t>(n), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  ::close(fd);
  std::fprintf(stderr, "dvsd --ctl: no reply from %s after %d tries\n",
               target.c_str(), retries);
  return 1;
}

void usage() {
  std::fputs(
      "usage: dvsd --config <file>\n"
      "       dvsd --print-config <file>\n"
      "       dvsd --ctl <host:port> [--timeout-ms N] [--retries N] "
      "<command...>\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const char* config_path = nullptr;
    const char* print_path = nullptr;
    std::string ctl_target;
    int timeout_ms = 1000;
    int retries = 3;
    std::vector<std::string> words;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
        config_path = argv[++i];
      } else if (std::strcmp(argv[i], "--print-config") == 0 && i + 1 < argc) {
        print_path = argv[++i];
      } else if (std::strcmp(argv[i], "--ctl") == 0 && i + 1 < argc) {
        ctl_target = argv[++i];
      } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
        timeout_ms = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
        retries = std::atoi(argv[++i]);
      } else {
        words.emplace_back(argv[i]);
      }
    }
    if (print_path != nullptr) {
      const daemon::DaemonConfig config =
          daemon::DaemonConfig::parse_file(print_path);
      std::fputs(config.to_string().c_str(), stdout);
      return 0;
    }
    if (!ctl_target.empty()) {
      if (words.empty()) {
        usage();
        return 1;
      }
      std::string command;
      for (const std::string& w : words) {
        if (!command.empty()) command += ' ';
        command += w;
      }
      return run_client(ctl_target, command, timeout_ms, retries);
    }
    if (config_path != nullptr && words.empty()) {
      return run_daemon(config_path);
    }
    usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvsd: %s\n", e.what());
    return 1;
  }
}
