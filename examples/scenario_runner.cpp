// scenario_runner — run a declarative .scn scenario and report its SLOs.
//
// Simulated mode (default) executes the scenario end to end on the
// deterministic in-process stack, exactly like `model_checker --scenario`,
// but prints a human-readable SLO summary (use --json for the raw report):
//
//   $ scenario_runner scenarios/steady.scn
//   $ scenario_runner scenarios/churn-storm.scn --jobs 4 --seeds 8 --json
//
// Real mode (--real) drives the scenario's YCSB-style operation mix against
// a LIVE dvsd cluster through the daemons' UDP control sockets — the same
// wire path `dvsd --ctl` uses — with closed-loop clients round-robined over
// the endpoints and wall-clock latency percentiles on the replies:
//
//   $ scenario_runner scenarios/steady.scn --duration-ms 5000
//       --real 127.0.0.1:9300,127.0.0.1:9301,127.0.0.1:9302
//
// Real mode generates the IDENTICAL deterministic per-client operation
// streams (same seed → same keys/values), so a simulated and a real run of
// one scenario exercise the same workload. The fault script is not applied
// in real mode — process lifecycle belongs to scripts/cluster.sh, whose
// `scenario` subcommand runs this driver and then audits the daemons'
// on-disk traces. Scans map to a get of the scan's start key over the
// control protocol. Exit 0 = every issued op got a reply and, in simulated
// mode, the oracle and declared SLOs held.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "workload/runner.h"
#include "workload/scenario.h"

using namespace dvs;  // NOLINT

namespace {

void print_histogram(const char* label, const obs::HistogramSnapshot& h) {
  std::printf("  %-9s p50 %6llu us   p95 %6llu us   p99 %6llu us   "
              "max %6llu us   (%llu samples)\n",
              label, static_cast<unsigned long long>(h.p50()),
              static_cast<unsigned long long>(h.p95()),
              static_cast<unsigned long long>(h.p99()),
              static_cast<unsigned long long>(h.max),
              static_cast<unsigned long long>(h.count));
}

int run_simulated(const workload::Scenario& sc, std::size_t jobs, bool json) {
  const workload::ScenarioSweepResult result = workload::run_scenario(sc, jobs);
  if (!result.ok()) {
    std::fprintf(stderr,
                 "SCENARIO FAILURE (lowest failing seed %llu of %zu "
                 "failing):\n%s\n",
                 static_cast<unsigned long long>(result.first_failing_seed),
                 result.seeds_failed, result.first_failure.c_str());
    return 1;
  }
  const workload::SloReport& r = result.slo;
  if (json) {
    std::fputs(r.to_json().c_str(), stdout);
    std::fputc('\n', stdout);
    return r.slo_pass() ? 0 : 1;
  }
  std::printf("scenario '%s': n=%llu, %llu seed(s) from %llu — "
              "zero oracle violations\n",
              r.scenario.c_str(), static_cast<unsigned long long>(r.n),
              static_cast<unsigned long long>(r.seeds),
              static_cast<unsigned long long>(r.first_seed));
  std::printf("  ops: %llu issued (%llu reads / %llu writes / %llu scans), "
              "%llu completed, %llu commits, %llu client timeouts\n",
              static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.reads),
              static_cast<unsigned long long>(r.writes),
              static_cast<unsigned long long>(r.scans),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.commits),
              static_cast<unsigned long long>(r.timeouts));
  std::printf("  throughput: %llu ops/s of simulated time\n",
              static_cast<unsigned long long>(r.throughput_ops_per_sec()));
  print_histogram("commit", r.commit_latency);
  print_histogram("delivery", r.delivery_latency);
  std::printf("  availability: %llu/%llu samples primary-available "
              "(%llu ppm)\n",
              static_cast<unsigned long long>(r.available_samples),
              static_cast<unsigned long long>(r.samples),
              static_cast<unsigned long long>(r.availability_ppm()));
  for (const workload::PhaseSlo& ph : r.phases) {
    std::printf("  phase %-12s %6llu ops, commit p99 %6llu us, "
                "availability %llu ppm\n",
                ph.name.c_str(), static_cast<unsigned long long>(ph.issued),
                static_cast<unsigned long long>(ph.commit_latency.p99()),
                static_cast<unsigned long long>(ph.availability_ppm()));
  }
  std::printf("  stack: %llu views installed, %llu fault events, %llu "
              "restarts, %llu/%llu seeds converged, span violations %llu\n",
              static_cast<unsigned long long>(r.views_installed),
              static_cast<unsigned long long>(r.fault_events),
              static_cast<unsigned long long>(r.restarts),
              static_cast<unsigned long long>(r.converged_seeds),
              static_cast<unsigned long long>(r.seeds),
              static_cast<unsigned long long>(r.span_violations));
  if (r.slo_availability_ppm != 0 || r.slo_p99_commit_ms != 0) {
    std::printf("  declared SLOs: %s\n", r.slo_pass() ? "PASS" : "FAIL");
  }
  return r.slo_pass() ? 0 : 1;
}

// ----- real mode: the same op streams over dvsd control sockets -------------

struct Endpoint {
  sockaddr_in addr{};
  std::string text;
};

bool parse_endpoint_list(const std::string& list, std::vector<Endpoint>& out) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      const std::size_t colon = item.rfind(':');
      if (colon == std::string::npos) return false;
      Endpoint ep;
      ep.text = item;
      ep.addr.sin_family = AF_INET;
      ep.addr.sin_port =
          htons(static_cast<std::uint16_t>(std::atoi(item.c_str() + colon + 1)));
      const std::string host = item.substr(0, colon);
      if (inet_pton(AF_INET, host.c_str(), &ep.addr.sin_addr) != 1) {
        return false;
      }
      out.push_back(ep);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out.empty();
}

/// One UDP request/reply round-trip with resend-on-timeout (the dvsd --ctl
/// contract: queries are idempotent, puts are last-write-wins).
bool ctl_roundtrip(int fd, const Endpoint& ep, const std::string& command,
                   int timeout_ms, int retries) {
  char reply[65536];
  for (int attempt = 0; attempt < retries; ++attempt) {
    if (::sendto(fd, command.data(), command.size(), 0,
                 reinterpret_cast<const sockaddr*>(&ep.addr),
                 sizeof(ep.addr)) < 0) {
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) continue;
    if (::recv(fd, reply, sizeof(reply), 0) >= 0) return true;
  }
  return false;
}

int run_real(const workload::Scenario& sc, const std::string& targets,
             std::uint64_t duration_ms, int timeout_ms, int retries) {
  std::vector<Endpoint> endpoints;
  if (!parse_endpoint_list(targets, endpoints)) {
    std::fprintf(stderr, "scenario_runner --real: bad endpoint list '%s'\n",
                 targets.c_str());
    return 1;
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("scenario_runner --real: socket");
    return 1;
  }

  // The identical deterministic streams the simulated run uses.
  std::vector<workload::OpGenerator> gens;
  for (std::size_t i = 0; i < sc.clients; ++i) {
    gens.emplace_back(sc.mix, workload::client_stream_seed(sc.seed, i));
  }

  obs::Histogram latency(obs::latency_buckets_us());
  std::uint64_t issued = 0;
  std::uint64_t failed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t scans = 0;

  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(duration_ms);
  while (Clock::now() < deadline) {
    for (std::size_t ci = 0; ci < gens.size() && Clock::now() < deadline;
         ++ci) {
      const workload::Op op = gens[ci].next();
      const Endpoint& ep = endpoints[ci % endpoints.size()];
      const std::string key = "k" + std::to_string(op.key);
      std::string command;
      switch (op.kind) {
        case workload::OpKind::kRead:
          ++reads;
          command = "get " + key;
          break;
        case workload::OpKind::kScan:
          // The control protocol has no range read; a scan probes its
          // start key (documented in docs/WORKLOADS.md).
          ++scans;
          command = "get " + key;
          break;
        case workload::OpKind::kWrite:
          ++writes;
          command = "put " + key + " " + op.value;
          break;
      }
      ++issued;
      const auto start = Clock::now();
      const bool ok = ctl_roundtrip(fd, ep, command, timeout_ms, retries);
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - start)
                          .count();
      if (ok) {
        latency.observe(static_cast<std::uint64_t>(us));
      } else {
        ++failed;
      }
    }
  }
  ::close(fd);

  const obs::HistogramSnapshot h = latency.snapshot();
  std::printf("scenario '%s' against %zu live daemon(s) for %llu ms: "
              "%llu ops issued (%llu reads / %llu writes / %llu scans), "
              "%llu replied, %llu failed\n",
              sc.name.c_str(), endpoints.size(),
              static_cast<unsigned long long>(duration_ms),
              static_cast<unsigned long long>(issued),
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(scans),
              static_cast<unsigned long long>(h.count),
              static_cast<unsigned long long>(failed));
  print_histogram("ctl rtt", h);
  return failed == 0 ? 0 : 1;
}

void usage() {
  std::fputs(
      "usage: scenario_runner <file.scn> [--jobs N] [--seed S] [--seeds K] "
      "[--json]\n"
      "       scenario_runner <file.scn> --real host:port[,host:port...]\n"
      "                       [--duration-ms N] [--timeout-ms N] "
      "[--retries N]\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t jobs = 1;
  bool json = false;
  std::string real_targets;
  std::uint64_t duration_ms = 5000;
  int timeout_ms = 1000;
  int retries = 3;
  std::uint64_t seed_override = 0;
  std::uint64_t seeds_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--real") == 0 && i + 1 < argc) {
      real_targets = argv[++i];
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      usage();
      return 1;
    }
  }
  if (path == nullptr) {
    usage();
    return 1;
  }
  try {
    workload::Scenario sc = workload::Scenario::parse_file(path);
    if (seed_override != 0) sc.seed = seed_override;
    if (seeds_override != 0) sc.seeds = seeds_override;
    if (!real_targets.empty()) {
      return run_real(sc, real_targets, duration_ms, timeout_ms, retries);
    }
    return run_simulated(sc, jobs, json);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
}
