// Command-line front end for the verification harness: explores the
// composed systems of the paper under a seeded random scheduler, checking
// every invariant (3.1, 4.1–4.2, 5.1–5.6, 6.1–6.3), the DVS refinement
// (Theorem 5.9) and TO trace acceptance (Theorem 6.4) at every step.
//
//   $ ./build/examples/model_checker [n_processes] [steps] [seeds]
//   $ ./build/examples/model_checker --jobs N [n_processes] [steps] [seeds]
//   $ ./build/examples/model_checker --exhaustive [n_processes]
//   $ ./build/examples/model_checker --exhaustive [n] --jobs N
//   $ ./build/examples/model_checker --chaos [n] [seeds] --jobs N
//   $ ./build/examples/model_checker --chaos --smoke
//   $ ./build/examples/model_checker --chaos --erratum [n] [seeds]
//   $ ./build/examples/model_checker --chaos --metrics [n] [seeds] --jobs N
//   $ ./build/examples/model_checker --chaos --batch [n] [seeds] --jobs N
//   $ ./build/examples/model_checker --chaos --restart [n] [seeds] --jobs N
//   $ ./build/examples/model_checker --chaos --shards K [--replication r] [n] [seeds]
//   $ ./build/examples/model_checker --audit <trace-dir>
//   $ ./build/examples/model_checker --scenario <file.scn> --jobs N
//
// The default mode runs seeded random exploration of DVS-IMPL and TO-IMPL
// with every checker armed. `--jobs N` fans the seeds across N worker
// threads (0 = one per hardware thread) with deterministic aggregation —
// same totals and same reported (lowest) failing seed for any N.
// --exhaustive instead enumerates ALL reachable DVS-specification states
// for a bounded environment (small-scope proof); with --jobs it runs the
// level-synchronized parallel BFS.
// --chaos runs FaultPlan-driven adversarial executions of the FULL
// distributed stack (simulated network with loss/duplication/reordering/
// truncation + scripted crash/partition schedules) with the
// spec-conformance oracles attached to every run; the chaos report is
// byte-identical for any --jobs value. --smoke shrinks the sweep for CI
// sanitizer gates. --erratum re-injects the paper's Figure 5 errata
// (printed_figure_mode) and *expects* the oracle to reject — a self-test
// that the harness detects real specification violations. --restart arms
// the crash-restart adversary: per-node write-ahead persistence on,
// scripted kRestart faults in the plan, and kCrash upgraded to real
// crashes (volatile state wiped, node rebuilt from its journal) — the
// oracles keep checking across every restart.
// --shards K multiplexes K independent DVS/TO shard columns over ONE
// shared pool and network (src/shard) and chaos-sweeps the whole sharded
// cluster with every shard's conformance oracle attached — a violation
// names its shard. --replication r bounds each shard to r round-robin
// replicas (0 = every pool member hosts every shard).
// --scenario runs a declarative .scn workload/topology/fault scenario
// (src/workload) over its seed range with the conformance oracle and span
// invariants always on, and prints the SLO report as pure JSON on stdout —
// byte-identical for any --jobs value. Exit 0 = every seed passed the
// oracle AND the report meets the scenario's declared SLOs.
// --audit replays a real deployment's on-disk spec-event traces (recorded
// by dvsd processes) through the same acceptors: per-process local order
// is preserved, the cross-process interleaving is merged by timestamp
// with deferral, and DVS Invariants 4.1/4.2 are re-checked on the merged
// state. The report is byte-identical regardless of --jobs.
//
// Exit code 0 = no violation found (or, under --erratum, the expected
// violation was found). On failure, the counterexample's seed, replayable
// fault plan and action/trace tail are printed for deterministic replay.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "daemon/audit.h"
#include "shard/shard_chaos.h"
#include "explorer/exhaustive.h"
#include "explorer/explorer.h"
#include "explorer/to_explorer.h"
#include "parallel/seed_sweep.h"
#include "parallel/thread_pool.h"
#include "tosys/chaos.h"
#include "workload/runner.h"
#include "workload/scenario.h"

using namespace dvs;  // NOLINT

namespace {

int run_exhaustive(std::size_t n, std::size_t jobs) {
  explorer::ExhaustiveConfig config;
  // A shrink-and-overlap candidate pool scaled to n.
  ProcessSet shrink;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) shrink.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, make_universe(n)},
      View{ViewId{2, ProcessId{0}}, shrink.empty() ? make_universe(n) : shrink},
  };
  config.send_budget = 1;
  config.jobs = jobs;
  try {
    const auto stats = explorer::exhaustive_check_dvs_spec(
        make_universe(n), initial_view(make_universe(n)), config);
    std::printf("exhaustive DVS check at n=%zu: %zu states, %zu transitions, "
                "frontier peak %zu%s — all invariants hold on every "
                "reachable state.\n",
                n, stats.states_visited, stats.transitions,
                stats.frontier_peak,
                stats.truncated ? " (TRUNCATED at the state cap)" : "");
  } catch (const std::exception& e) {
    std::printf("COUNTEREXAMPLE FOUND: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_sweep(std::size_t n, std::size_t steps, std::uint64_t seeds,
              std::size_t jobs) {
  explorer::ExplorerConfig config;
  config.steps = steps;
  const ProcessSet universe = make_universe(n);
  const View v0 = initial_view(universe);

  parallel::SeedSweepConfig sweep_config;
  sweep_config.first_seed = 1;
  sweep_config.num_seeds = seeds;
  sweep_config.jobs = jobs;
  const parallel::SeedSweep sweep(sweep_config);

  // One task runs BOTH stacks for its seed, mirroring the sequential
  // mode's per-seed work (TO-IMPL uses the same decorrelated seed).
  const auto dvs_task = parallel::dvs_impl_task(universe, v0, config);
  const auto to_task = parallel::to_impl_task(universe, v0, config);
  const parallel::SeedSweepResult result =
      sweep.run([&](std::uint64_t seed) {
        explorer::ExplorationStats stats = dvs_task(seed);
        stats += to_task(seed ^ 0x5eed);
        return stats;
      });

  if (result.first_failure.has_value()) {
    std::printf("COUNTEREXAMPLE FOUND (lowest failing seed %llu of %zu "
                "failing):\n%s\n",
                static_cast<unsigned long long>(result.first_failure->seed),
                result.seeds_failed, result.first_failure->message.c_str());
    return 1;
  }
  std::printf("swept %zu seeds × %zu steps at n=%zu over %zu worker(s): "
              "%zu steps taken, %zu external events, %zu views, "
              "%zu invariant checks, zero violations.\n",
              result.seeds_run, steps, n,
              parallel::resolve_jobs(jobs), result.total.steps_taken,
              result.total.external_events, result.total.views_created,
              result.total.invariant_checks);
  return 0;
}

int run_chaos(std::size_t n, std::uint64_t seeds, std::size_t jobs,
              bool smoke, bool erratum, bool metrics, bool batch,
              bool restart) {
  tosys::ChaosConfig chaos;
  chaos.n_processes = n;
  chaos.batching = batch;
  chaos.to_options.printed_figure_mode = erratum;
  if (restart) {
    chaos.persistence = true;
    chaos.crashes_restart = true;
    chaos.plan.w_restart = 0.15;
  }
  if (erratum) {
    // The reverted corrections misbehave when client messages are queued
    // while a node has no established view — most robustly at a late
    // joiner, whose whole backlog is labelled during its first exchange
    // and delivered twice. Run with one process outside v0 and a denser
    // client load so broadcasts land in those windows.
    if (n > 1) chaos.initial_members = n - 1;
    chaos.broadcasts = 200;
  }
  if (smoke) {
    // CI sanitizer gate: fewer seeds over a shorter horizon.
    chaos.plan.horizon = 2 * sim::kSecond;
    chaos.plan.events = 8;
    chaos.broadcasts = 30;
    chaos.settle = 2 * sim::kSecond;
  }

  parallel::SeedSweepConfig sweep;
  sweep.first_seed = 1;
  sweep.num_seeds = seeds;
  sweep.jobs = jobs;
  const parallel::ChaosSweepResult result =
      parallel::run_chaos_sweep(sweep, chaos);

  if (erratum) {
    // Self-test: with the Figure 5 errata re-injected, a clean sweep means
    // the oracle is blind — that is the failure.
    if (!result.first_failure.has_value()) {
      std::printf("ERRATUM SELF-TEST FAILED: printed_figure_mode ran %zu "
                  "chaos seeds at n=%zu without any oracle rejection.\n",
                  result.seeds_run, n);
      return 1;
    }
    std::printf("erratum self-test passed: oracle rejected %zu of %zu seeds; "
                "lowest failing seed %llu:\n%s\n",
                result.seeds_failed, result.seeds_run,
                static_cast<unsigned long long>(result.first_failure->seed),
                result.first_failure->message.c_str());
    return 0;
  }

  if (result.first_failure.has_value()) {
    std::printf("COUNTEREXAMPLE FOUND (lowest failing seed %llu of %zu "
                "failing):\n%s\n",
                static_cast<unsigned long long>(result.first_failure->seed),
                result.seeds_failed, result.first_failure->message.c_str());
    return 1;
  }
  // NOTE: deliberately does not print the worker count — the chaos report
  // is byte-identical across --jobs values, and that property is asserted
  // by tests and scripts/check.sh.
  if (metrics) {
    // Pure JSON: the seed-order-merged metric snapshot of the whole sweep
    // (every layer's counters, latency histograms, span-invariant counts).
    // Byte-identical for any --jobs value; scripts redirect it to a file.
    std::fputs(result.total.metrics.to_json().c_str(), stdout);
    return 0;
  }
  const tosys::ChaosStats& t = result.total;
  std::printf(
      "chaos-swept %zu seeds at n=%zu: %llu oracle events, %llu invariant "
      "checks, %llu views, %llu broadcasts, %llu TO deliveries, %llu "
      "scripted faults; injected %llu dups / %llu reorders / %llu "
      "truncations (%llu decode errors, %llu dups suppressed) — zero "
      "violations.\n",
      result.seeds_run, n,
      static_cast<unsigned long long>(t.events_checked),
      static_cast<unsigned long long>(t.invariant_checks),
      static_cast<unsigned long long>(t.views_installed),
      static_cast<unsigned long long>(t.broadcasts),
      static_cast<unsigned long long>(t.deliveries),
      static_cast<unsigned long long>(t.fault_events),
      static_cast<unsigned long long>(t.duplicated),
      static_cast<unsigned long long>(t.reordered),
      static_cast<unsigned long long>(t.truncated),
      static_cast<unsigned long long>(t.decode_errors),
      static_cast<unsigned long long>(t.duplicates_suppressed));
  if (batch) {
    std::printf("batching: %llu logical messages coalesced into %llu BATCH "
                "envelopes (%llu datagrams on the wire vs %llu sends).\n",
                static_cast<unsigned long long>(t.batched_msgs),
                static_cast<unsigned long long>(t.batches),
                static_cast<unsigned long long>(t.datagrams),
                static_cast<unsigned long long>(t.net_sent));
  }
  if (restart) {
    std::printf("crash-restart: %llu restarts recovered from stable storage "
                "(%llu WAL records, %llu bytes written) — every node came "
                "back from its journal alone.\n",
                static_cast<unsigned long long>(t.restarts),
                static_cast<unsigned long long>(t.wal_appends),
                static_cast<unsigned long long>(t.wal_bytes));
  }
  return 0;
}

int run_shard_chaos(std::size_t n, std::size_t shards, std::size_t replication,
                    std::uint64_t seeds, std::size_t jobs, bool smoke) {
  shard::ShardChaosConfig config;
  config.shards = shards;
  config.replication = replication;
  config.chaos.n_processes = n;
  if (smoke) {
    config.chaos.plan.horizon = 2 * sim::kSecond;
    config.chaos.plan.events = 8;
    config.chaos.broadcasts = 30;
    config.chaos.settle = 2 * sim::kSecond;
  }

  // Seed-indexed results → deterministic aggregation at any --jobs.
  std::vector<shard::ShardChaosResult> results(seeds);
  std::atomic<std::uint64_t> next{0};
  const std::size_t workers = parallel::resolve_jobs(jobs);
  const auto worker = [&] {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1);
      if (i >= seeds) return;
      results[i] = shard::run_shard_chaos_seed(1 + i, config);
    }
  };
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    for (std::size_t j = 0; j < workers; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::uint64_t failed = 0;
  const shard::ShardChaosResult* first_failure = nullptr;
  tosys::ChaosStats total;
  for (const shard::ShardChaosResult& r : results) {
    if (!r.ok) {
      ++failed;
      if (first_failure == nullptr) first_failure = &r;
    }
    total.events_checked += r.stats.events_checked;
    total.invariant_checks += r.stats.invariant_checks;
    total.views_installed += r.stats.views_installed;
    total.broadcasts += r.stats.broadcasts;
    total.deliveries += r.stats.deliveries;
    total.fault_events += r.stats.fault_events;
  }
  if (first_failure != nullptr) {
    std::printf("COUNTEREXAMPLE FOUND (%llu of %llu seeds failing):\n%s\n"
                "replayable fault plan:\n%s\n",
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(seeds),
                first_failure->failure.c_str(),
                first_failure->plan_text.c_str());
    return 1;
  }
  const std::string r_text =
      replication == 0 ? "all" : std::to_string(replication);
  std::printf(
      "sharded chaos-swept %llu seeds at n=%zu K=%zu r=%s: %llu oracle "
      "events, %llu invariant checks, %llu views, %llu broadcasts, %llu TO "
      "deliveries, %llu scripted faults — every shard's oracle clean.\n",
      static_cast<unsigned long long>(seeds), n, shards, r_text.c_str(),
      static_cast<unsigned long long>(total.events_checked),
      static_cast<unsigned long long>(total.invariant_checks),
      static_cast<unsigned long long>(total.views_installed),
      static_cast<unsigned long long>(total.broadcasts),
      static_cast<unsigned long long>(total.deliveries),
      static_cast<unsigned long long>(total.fault_events));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out `--jobs N` wherever it appears; remaining args keep their
  // positional meaning.
  std::size_t jobs = 1;
  bool sweep_mode = false;
  bool chaos_mode = false;
  const char* audit_dir = nullptr;
  const char* scenario_file = nullptr;
  bool smoke = false;
  bool erratum = false;
  bool metrics = false;
  bool batch = false;
  bool restart = false;
  std::size_t shards = 0;
  std::size_t replication = 0;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::strtoul(argv[++i], nullptr, 10);
      sweep_mode = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      replication = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--audit") == 0 && i + 1 < argc) {
      audit_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario_file = argv[++i];
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_mode = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--erratum") == 0) {
      erratum = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--restart") == 0) {
      restart = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  try {
    if (audit_dir != nullptr) {
      // Offline audit of a real deployment's on-disk spec-event traces
      // (written by dvsd; see docs/DEPLOYMENT.md). Single-threaded and
      // deterministic: the report is byte-identical for any --jobs value.
      const daemon::AuditReport report = daemon::audit_dir(audit_dir);
      std::fputs(report.to_string().c_str(), stdout);
      return report.ok ? 0 : 1;
    }
    if (scenario_file != nullptr) {
      // Declarative workload/topology/fault scenario. stdout is PURE JSON
      // (the SLO report) so scripts can byte-compare across --jobs values;
      // diagnostics go to stderr.
      const workload::Scenario sc = workload::Scenario::parse_file(
          scenario_file);
      const workload::ScenarioSweepResult result =
          workload::run_scenario(sc, jobs);
      if (!result.ok()) {
        std::fprintf(stderr,
                     "SCENARIO FAILURE (lowest failing seed %llu of %zu "
                     "failing):\n%s\n",
                     static_cast<unsigned long long>(result.first_failing_seed),
                     result.seeds_failed, result.first_failure.c_str());
        return 1;
      }
      std::fputs(result.slo.to_json().c_str(), stdout);
      if (!result.slo.slo_pass()) {
        std::fprintf(stderr, "\nDECLARED SLO NOT MET for scenario '%s'.\n",
                     result.slo.scenario.c_str());
        return 1;
      }
      return 0;
    }
    if (chaos_mode) {
      const std::size_t n =
          !args.empty() ? std::strtoul(args[0], nullptr, 10) : 3;
      const std::uint64_t seeds =
          args.size() > 1 ? std::strtoull(args[1], nullptr, 10)
                          : (smoke ? 25 : (erratum ? 60 : 500));
      if (shards > 0) {
        return run_shard_chaos(n, shards, replication, seeds, jobs, smoke);
      }
      return run_chaos(n, seeds, jobs, smoke, erratum, metrics, batch,
                       restart);
    }
    if (!args.empty() && std::strcmp(args[0], "--exhaustive") == 0) {
      const std::size_t n_ex =
          args.size() > 1 ? std::strtoul(args[1], nullptr, 10) : 2;
      return run_exhaustive(n_ex, jobs);
    }
    const std::size_t n =
        !args.empty() ? std::strtoul(args[0], nullptr, 10) : 3;
    const std::size_t steps =
        args.size() > 1 ? std::strtoul(args[1], nullptr, 10) : 3000;
    const std::uint64_t seeds =
        args.size() > 2 ? std::strtoull(args[2], nullptr, 10) : 10;

    if (sweep_mode) return run_sweep(n, steps, seeds, jobs);

    explorer::ExplorerConfig config;
    config.steps = steps;

    const ProcessSet universe = make_universe(n);
    const View v0 = initial_view(universe);

    std::size_t total_events = 0;
    std::size_t total_views = 0;
    try {
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        explorer::DvsImplExplorer dvs_ex(universe, v0, config, seed);
        const auto s1 = dvs_ex.run();
        explorer::ToImplExplorer to_ex(universe, v0, config, seed ^ 0x5eed);
        const auto s2 = to_ex.run();
        total_events += s1.external_events + s2.external_events;
        total_views += s1.views_created + s2.views_created;
        std::printf("seed %3llu: DVS-IMPL %zu steps (%zu attempts), TO-IMPL "
                    "%zu steps (%zu deliveries) — all checks passed\n",
                    static_cast<unsigned long long>(seed), s1.steps_taken,
                    s1.dvs_views_attempted, s2.steps_taken, s2.msgs_delivered);
      }
    } catch (const explorer::ExplorationFailure& e) {
      std::printf("COUNTEREXAMPLE FOUND:\n%s\n", e.what());
      return 1;
    }
    std::printf("\nexplored %llu seeds × %zu steps at n=%zu: %zu external "
                "events, %zu views, zero violations.\n",
                static_cast<unsigned long long>(seeds), steps, n, total_events,
                total_views);
    return 0;
  } catch (const std::exception& e) {
    std::printf("harness error: %s\n", e.what());
    return 2;
  }
}
