// Command-line front end for the verification harness: explores the
// composed systems of the paper under a seeded random scheduler, checking
// every invariant (3.1, 4.1–4.2, 5.1–5.6, 6.1–6.3), the DVS refinement
// (Theorem 5.9) and TO trace acceptance (Theorem 6.4) at every step.
//
//   $ ./build/examples/model_checker [n_processes] [steps] [seeds]
//   $ ./build/examples/model_checker --jobs N [n_processes] [steps] [seeds]
//   $ ./build/examples/model_checker --exhaustive [n_processes]
//   $ ./build/examples/model_checker --exhaustive [n] --jobs N
//
// The default mode runs seeded random exploration of DVS-IMPL and TO-IMPL
// with every checker armed. `--jobs N` fans the seeds across N worker
// threads (0 = one per hardware thread) with deterministic aggregation —
// same totals and same reported (lowest) failing seed for any N.
// --exhaustive instead enumerates ALL reachable DVS-specification states
// for a bounded environment (small-scope proof); with --jobs it runs the
// level-synchronized parallel BFS.
//
// Exit code 0 = no violation found. On failure, the counterexample's seed
// and action tail are printed for deterministic replay.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <vector>

#include "explorer/exhaustive.h"
#include "explorer/explorer.h"
#include "explorer/to_explorer.h"
#include "parallel/seed_sweep.h"
#include "parallel/thread_pool.h"

using namespace dvs;  // NOLINT

namespace {

int run_exhaustive(std::size_t n, std::size_t jobs) {
  explorer::ExhaustiveConfig config;
  // A shrink-and-overlap candidate pool scaled to n.
  ProcessSet shrink;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) shrink.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, make_universe(n)},
      View{ViewId{2, ProcessId{0}}, shrink.empty() ? make_universe(n) : shrink},
  };
  config.send_budget = 1;
  config.jobs = jobs;
  try {
    const auto stats = explorer::exhaustive_check_dvs_spec(
        make_universe(n), initial_view(make_universe(n)), config);
    std::printf("exhaustive DVS check at n=%zu: %zu states, %zu transitions, "
                "frontier peak %zu%s — all invariants hold on every "
                "reachable state.\n",
                n, stats.states_visited, stats.transitions,
                stats.frontier_peak,
                stats.truncated ? " (TRUNCATED at the state cap)" : "");
  } catch (const std::exception& e) {
    std::printf("COUNTEREXAMPLE FOUND: %s\n", e.what());
    return 1;
  }
  return 0;
}

int run_sweep(std::size_t n, std::size_t steps, std::uint64_t seeds,
              std::size_t jobs) {
  explorer::ExplorerConfig config;
  config.steps = steps;
  const ProcessSet universe = make_universe(n);
  const View v0 = initial_view(universe);

  parallel::SeedSweepConfig sweep_config;
  sweep_config.first_seed = 1;
  sweep_config.num_seeds = seeds;
  sweep_config.jobs = jobs;
  const parallel::SeedSweep sweep(sweep_config);

  // One task runs BOTH stacks for its seed, mirroring the sequential
  // mode's per-seed work (TO-IMPL uses the same decorrelated seed).
  const auto dvs_task = parallel::dvs_impl_task(universe, v0, config);
  const auto to_task = parallel::to_impl_task(universe, v0, config);
  const parallel::SeedSweepResult result =
      sweep.run([&](std::uint64_t seed) {
        explorer::ExplorationStats stats = dvs_task(seed);
        stats += to_task(seed ^ 0x5eed);
        return stats;
      });

  if (result.first_failure.has_value()) {
    std::printf("COUNTEREXAMPLE FOUND (lowest failing seed %llu of %zu "
                "failing):\n%s\n",
                static_cast<unsigned long long>(result.first_failure->seed),
                result.seeds_failed, result.first_failure->message.c_str());
    return 1;
  }
  std::printf("swept %zu seeds × %zu steps at n=%zu over %zu worker(s): "
              "%zu steps taken, %zu external events, %zu views, "
              "%zu invariant checks, zero violations.\n",
              result.seeds_run, steps, n,
              parallel::resolve_jobs(jobs), result.total.steps_taken,
              result.total.external_events, result.total.views_created,
              result.total.invariant_checks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out `--jobs N` wherever it appears; remaining args keep their
  // positional meaning.
  std::size_t jobs = 1;
  bool sweep_mode = false;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::strtoul(argv[++i], nullptr, 10);
      sweep_mode = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  try {
    if (!args.empty() && std::strcmp(args[0], "--exhaustive") == 0) {
      const std::size_t n_ex =
          args.size() > 1 ? std::strtoul(args[1], nullptr, 10) : 2;
      return run_exhaustive(n_ex, jobs);
    }
    const std::size_t n =
        !args.empty() ? std::strtoul(args[0], nullptr, 10) : 3;
    const std::size_t steps =
        args.size() > 1 ? std::strtoul(args[1], nullptr, 10) : 3000;
    const std::uint64_t seeds =
        args.size() > 2 ? std::strtoull(args[2], nullptr, 10) : 10;

    if (sweep_mode) return run_sweep(n, steps, seeds, jobs);

    explorer::ExplorerConfig config;
    config.steps = steps;

    const ProcessSet universe = make_universe(n);
    const View v0 = initial_view(universe);

    std::size_t total_events = 0;
    std::size_t total_views = 0;
    try {
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        explorer::DvsImplExplorer dvs_ex(universe, v0, config, seed);
        const auto s1 = dvs_ex.run();
        explorer::ToImplExplorer to_ex(universe, v0, config, seed ^ 0x5eed);
        const auto s2 = to_ex.run();
        total_events += s1.external_events + s2.external_events;
        total_views += s1.views_created + s2.views_created;
        std::printf("seed %3llu: DVS-IMPL %zu steps (%zu attempts), TO-IMPL "
                    "%zu steps (%zu deliveries) — all checks passed\n",
                    static_cast<unsigned long long>(seed), s1.steps_taken,
                    s1.dvs_views_attempted, s2.steps_taken, s2.msgs_delivered);
      }
    } catch (const explorer::ExplorationFailure& e) {
      std::printf("COUNTEREXAMPLE FOUND:\n%s\n", e.what());
      return 1;
    }
    std::printf("\nexplored %llu seeds × %zu steps at n=%zu: %zu external "
                "events, %zu views, zero violations.\n",
                static_cast<unsigned long long>(seeds), steps, n, total_events,
                total_views);
    return 0;
  } catch (const std::exception& e) {
    std::printf("harness error: %s\n", e.what());
    return 2;
  }
}
