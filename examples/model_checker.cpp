// Command-line front end for the verification harness: explores the
// composed systems of the paper under a seeded random scheduler, checking
// every invariant (3.1, 4.1–4.2, 5.1–5.6, 6.1–6.3), the DVS refinement
// (Theorem 5.9) and TO trace acceptance (Theorem 6.4) at every step.
//
//   $ ./build/examples/model_checker [n_processes] [steps] [seeds]
//   $ ./build/examples/model_checker --exhaustive [n_processes]
//
// The default mode runs seeded random exploration of DVS-IMPL and TO-IMPL
// with every checker armed. --exhaustive instead enumerates ALL reachable
// DVS-specification states for a bounded environment (small-scope proof).
//
// Exit code 0 = no violation found. On failure, the counterexample's seed
// and action tail are printed for deterministic replay.
#include <cstdio>
#include <cstdlib>
#include <exception>

#include <cstring>

#include "explorer/exhaustive.h"
#include "explorer/explorer.h"
#include "explorer/to_explorer.h"

using namespace dvs;  // NOLINT

namespace {

int run_exhaustive(std::size_t n) {
  explorer::ExhaustiveConfig config;
  // A shrink-and-overlap candidate pool scaled to n.
  ProcessSet shrink;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) shrink.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  config.candidate_views = {
      View{ViewId{1, ProcessId{0}}, make_universe(n)},
      View{ViewId{2, ProcessId{0}}, shrink.empty() ? make_universe(n) : shrink},
  };
  config.send_budget = 1;
  try {
    const auto stats = explorer::exhaustive_check_dvs_spec(
        make_universe(n), initial_view(make_universe(n)), config);
    std::printf("exhaustive DVS check at n=%zu: %zu states, %zu transitions, "
                "frontier peak %zu%s — all invariants hold on every "
                "reachable state.\n",
                n, stats.states_visited, stats.transitions,
                stats.frontier_peak,
                stats.truncated ? " (TRUNCATED at the state cap)" : "");
  } catch (const std::exception& e) {
    std::printf("COUNTEREXAMPLE FOUND: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--exhaustive") == 0) {
    const std::size_t n_ex =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
    return run_exhaustive(n_ex);
  }
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::size_t steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3000;
  const std::uint64_t seeds =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;

  explorer::ExplorerConfig config;
  config.steps = steps;

  const ProcessSet universe = make_universe(n);
  const View v0 = initial_view(universe);

  std::size_t total_events = 0;
  std::size_t total_views = 0;
  try {
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      explorer::DvsImplExplorer dvs_ex(universe, v0, config, seed);
      const auto s1 = dvs_ex.run();
      explorer::ToImplExplorer to_ex(universe, v0, config, seed ^ 0x5eed);
      const auto s2 = to_ex.run();
      total_events += s1.external_events + s2.external_events;
      total_views += s1.views_created + s2.views_created;
      std::printf("seed %3llu: DVS-IMPL %zu steps (%zu attempts), TO-IMPL %zu "
                  "steps (%zu deliveries) — all checks passed\n",
                  static_cast<unsigned long long>(seed), s1.steps_taken,
                  s1.dvs_views_attempted, s2.steps_taken, s2.msgs_delivered);
    }
  } catch (const explorer::ExplorationFailure& e) {
    std::printf("COUNTEREXAMPLE FOUND:\n%s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::printf("harness error: %s\n", e.what());
    return 2;
  }
  std::printf("\nexplored %llu seeds × %zu steps at n=%zu: %zu external "
              "events, %zu views, zero violations.\n",
              static_cast<unsigned long long>(seeds), steps, n, total_events,
              total_views);
  return 0;
}
