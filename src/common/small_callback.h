// Small-buffer-optimized move-only callable, a lean stand-in for
// std::function<void()> on hot scheduling paths.
//
// libstdc++'s std::function only inlines captures up to two words, so the
// typical simulator event closure (a this-pointer plus a couple of
// shared_ptrs or a ProcessId and a delay) heap-allocates on every
// schedule. SmallCallback keeps 48 bytes of aligned inline storage —
// enough for every closure the sim/net/vsys layers create (the largest,
// a network delivery capturing this + two ProcessIds + a Bytes payload,
// is 40 bytes) — and falls back to the heap only beyond that. The size is
// a balance: big enough that the hot closures never allocate, small
// enough that sifting events through the priority queue stays cheap.
// Unlike std::function it is move-only, which also means move-only
// captures (e.g. a Bytes buffer moved into the closure) are allowed.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dvs {

class SmallCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  SmallCallback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &inline_vtable<Fn>;
    } else {
      *reinterpret_cast<void**>(storage_) = new Fn(std::forward<F>(f));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  SmallCallback(SmallCallback&& other) noexcept { move_from(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  void operator()() { vtable_->invoke(storage_); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move the callable from src storage into dst storage, destroying the
    // src copy; the caller nulls src's vtable afterwards.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* s) { (*static_cast<Fn*>(*reinterpret_cast<void**>(s)))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* s) noexcept {
        delete static_cast<Fn*>(*reinterpret_cast<void**>(s));
      },
  };

  void move_from(SmallCallback& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace dvs
