#include "common/messages.h"

#include <ostream>
#include <sstream>

namespace dvs {

std::string OpaqueMsg::to_string() const {
  std::ostringstream os;
  os << "m#" << uid << "@" << sender.to_string();
  return os.str();
}

std::string LabeledAppMsg::to_string() const {
  std::ostringstream os;
  os << "<" << label.to_string() << "," << msg.to_string() << ">";
  return os.str();
}

std::string InfoMsg::to_string() const {
  std::ostringstream os;
  os << "info{act=" << act.to_string() << ",amb={";
  bool first = true;
  for (const View& w : amb) {
    if (!first) os << ",";
    os << w.to_string();
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string StateMsg::to_string() const {
  std::ostringstream os;
  os << "state{" << view.to_string() << ",|blob|=" << blob.size();
  if (is_delta) {
    os << ",delta{base=" << base_view.to_string() << ",keep=" << keep_len
       << "}";
  }
  os << "}";
  return os.str();
}

std::string RegisteredMsg::to_string() const { return "registered"; }

bool is_client(const Msg& m) {
  return !std::holds_alternative<InfoMsg>(m) &&
         !std::holds_alternative<RegisteredMsg>(m);
}

Msg to_msg(const ClientMsg& m) {
  return std::visit([](const auto& inner) -> Msg { return inner; }, m);
}

ClientMsg to_client(const Msg& m) {
  if (const auto* o = std::get_if<OpaqueMsg>(&m)) return *o;
  if (const auto* l = std::get_if<LabeledAppMsg>(&m)) return *l;
  if (const auto* s = std::get_if<Summary>(&m)) return *s;
  if (const auto* st = std::get_if<StateMsg>(&m)) return *st;
  throw std::logic_error("to_client called on a non-client message");
}

std::string to_string(const ClientMsg& m) {
  return std::visit([](const auto& inner) { return inner.to_string(); }, m);
}

std::string to_string(const Msg& m) {
  return std::visit([](const auto& inner) { return inner.to_string(); }, m);
}

std::ostream& operator<<(std::ostream& os, const ClientMsg& m) {
  return os << to_string(m);
}

std::ostream& operator<<(std::ostream& os, const Msg& m) {
  return os << to_string(m);
}

}  // namespace dvs
