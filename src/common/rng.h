// Deterministic randomness for explorers, simulators and workloads.
//
// All nondeterminism in the repository flows through one Rng seeded at the
// top of a run, so every failing execution replays from its seed.
#pragma once

#include <cstdint>
#include <random>
#include <set>
#include <stdexcept>
#include <vector>

namespace dvs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  [[nodiscard]] std::size_t below(std::size_t bound) {
    if (bound == 0) throw std::logic_error("Rng::below(0)");
    return std::uniform_int_distribution<std::size_t>{0, bound - 1}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Bernoulli with probability p.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0); used for
  /// message-delay distributions in the simulated network.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Uniform element of a nonempty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::logic_error("Rng::pick on empty vector");
    return items[below(items.size())];
  }

  /// Uniform element of a nonempty set.
  template <typename T>
  [[nodiscard]] const T& pick(const std::set<T>& items) {
    if (items.empty()) throw std::logic_error("Rng::pick on empty set");
    auto it = items.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(below(items.size())));
    return *it;
  }

  /// A fresh child seed (for spawning independent streams deterministically).
  [[nodiscard]] std::uint64_t fork_seed() { return engine_(); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace dvs
