// Allocation-free queue containers for the steady-state delivery path.
//
// The distributed stack's hot loops used std::deque/std::map for the
// per-view queues (send backlogs, reorder buffers, issued-SEQ logs). Those
// containers allocate a node or block per element, so every delivered
// message paid several mallocs even in a stable view. The two containers
// here keep their storage across pushes and pops (the ddprof
// producer_linearizer idiom: a power-of-two circular slot array indexed by
// a monotone counter), so once a run reaches its high-water mark the queues
// recycle slots and the data path stops allocating entirely.
//
//  * RingBuffer<T>  — a deque replacement: contiguous FIFO with O(1)
//    push_back/pop_front, relative operator[] and an *absolute* index view
//    (base() = count of elements ever popped), so logs that used to be
//    append-only vectors can garbage-collect their prefix without
//    renumbering (`log.at_abs(n)` keeps meaning "the n-th element ever
//    pushed").
//  * SeqWindow<V>   — a map<uint64_t, V> replacement for sequence-number
//    keyed windows (reorder buffers, issued-SEQ retransmit logs): open
//    addressing by `key & (capacity-1)` with per-slot key tags. Keys live
//    in a bounded moving window in practice, so collisions only occur when
//    the window outgrows the table, which doubles. Popped slots keep their
//    value's heap capacity (payload buffers are recycled on reuse).
//
// Both grow (double) when full — "fixed-capacity" is a steady-state
// property, not a hard limit, so correctness never depends on sizing.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

namespace dvs {

/// Growable circular FIFO with stable absolute indexing. Requires T to be
/// default-constructible and assignable (slots are recycled by assignment,
/// which lets payload heap capacity survive pop/push cycles).
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Absolute index of the front element == number of elements ever popped
  /// (until clear(), which rewinds it to 0).
  [[nodiscard]] std::uint64_t base() const { return base_; }
  /// Absolute index one past the back element.
  [[nodiscard]] std::uint64_t end_index() const { return base_ + size_; }

  void push_back(const T& v) { slot_for_push() = v; }
  void push_back(T&& v) { slot_for_push() = std::move(v); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    T& slot = slot_for_push();
    slot = T(std::forward<Args>(args)...);
    return slot;
  }

  /// Appends one element and returns the slot *without* clearing it: the
  /// caller assigns over the recycled previous content, so payload heap
  /// capacity (strings, vectors) survives pop/push cycles.
  T& append_slot() { return slot_for_push(); }

  void pop_front() {
    assert(size_ > 0);
    head_ = next(head_);
    --size_;
    ++base_;
  }

  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  /// Relative indexing: [0, size()).
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return slots_[(head_ + i) & mask()];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask()];
  }

  /// Absolute indexing: [base(), end_index()). The n-th element ever pushed
  /// keeps index n across pop_front garbage collection.
  [[nodiscard]] T& at_abs(std::uint64_t n) {
    assert(n >= base_);
    return (*this)[static_cast<std::size_t>(n - base_)];
  }
  [[nodiscard]] const T& at_abs(std::uint64_t n) const {
    assert(n >= base_);
    return (*this)[static_cast<std::size_t>(n - base_)];
  }

  /// Empties the queue and rewinds base() to 0. Capacity (and the heap
  /// buffers held by the parked slots) is retained for reuse.
  void clear() {
    head_ = 0;
    size_ = 0;
    base_ = 0;
  }

  /// Forward const iteration (range-for over front..back).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const RingBuffer* rb, std::size_t i) : rb_(rb), i_(i) {}
    reference operator*() const { return (*rb_)[i_]; }
    pointer operator->() const { return &(*rb_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++i_;
      return old;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) =
        default;

   private:
    const RingBuffer* rb_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size_}; }

  friend bool operator==(const RingBuffer& a, const RingBuffer& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) & mask();
  }

  T& slot_for_push() {
    if (size_ == slots_.size()) grow();
    T& slot = slots_[(head_ + size_) & mask()];
    ++size_;
    return slot;
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<T> bigger(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move((*this)[i]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;  // power-of-two capacity (or empty)
  std::size_t head_ = 0;  // slot index of the front element
  std::size_t size_ = 0;
  std::uint64_t base_ = 0;  // absolute index of the front element
};

/// Sparse uint64-keyed window map (reorder buffers, retransmit logs):
/// open-addressed circular table with per-slot key tags, no probing — keys
/// are sequence numbers in a bounded moving window, so `key mod capacity`
/// collides only when the live window outgrows the table (which doubles).
/// Erased slots keep their value's heap capacity for recycling.
template <typename V>
class SeqWindow {
 public:
  SeqWindow() = default;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Highest key ever inserted since the last clear() (0 when none); not
  /// lowered by erase — callers use it as "nothing above k was ever issued".
  [[nodiscard]] std::uint64_t hi() const { return hi_; }

  [[nodiscard]] bool contains(std::uint64_t k) const {
    return !slots_.empty() && slots_[slot(k)].occupied &&
           slots_[slot(k)].key == k;
  }

  [[nodiscard]] V* find(std::uint64_t k) {
    if (!contains(k)) return nullptr;
    return &slots_[slot(k)].value;
  }
  [[nodiscard]] const V* find(std::uint64_t k) const {
    if (!contains(k)) return nullptr;
    return &slots_[slot(k)].value;
  }

  /// Inserts key `k` (must not be present) and returns the slot's recycled
  /// value for the caller to assign into.
  V& insert(std::uint64_t k) {
    assert(!contains(k));
    if (slots_.empty()) rehash(16);
    while (slots_[slot(k)].occupied) rehash(slots_.size() * 2);
    Slot& s = slots_[slot(k)];
    s.occupied = true;
    s.key = k;
    ++count_;
    if (count_ == 1 || k < lo_) lo_ = k;
    if (k > hi_) hi_ = k;
    return s.value;
  }

  /// Erases key `k` if present; the value's heap capacity is retained in
  /// the slot for recycling.
  void erase(std::uint64_t k) {
    if (!contains(k)) return;
    slots_[slot(k)].occupied = false;
    --count_;
  }

  /// Erases every key < k (prefix garbage collection). Cost is bounded by
  /// the window span, not the table size.
  void erase_below(std::uint64_t k) {
    for (std::uint64_t x = lo_; x < k && count_ > 0; ++x) erase(x);
    if (k > lo_) lo_ = k;
  }

  /// Empties the window. Slot values (and their heap capacity) survive.
  void clear() {
    for (Slot& s : slots_) s.occupied = false;
    count_ = 0;
    lo_ = 0;
    hi_ = 0;
  }

 private:
  struct Slot {
    V value{};
    std::uint64_t key = 0;
    bool occupied = false;
  };

  [[nodiscard]] std::size_t slot(std::uint64_t k) const {
    return static_cast<std::size_t>(k & (slots_.size() - 1));
  }

  void rehash(std::size_t min_cap) {
    std::vector<Slot> old = std::move(slots_);
    // A power-of-two capacity strictly greater than the live key span makes
    // every live residue distinct (two keys collide iff their difference is
    // a multiple of the capacity).
    std::uint64_t min_k = 0;
    std::uint64_t max_k = 0;
    bool any = false;
    for (const Slot& s : old) {
      if (!s.occupied) continue;
      min_k = any ? std::min(min_k, s.key) : s.key;
      max_k = any ? std::max(max_k, s.key) : s.key;
      any = true;
    }
    std::size_t cap = min_cap < 16 ? 16 : min_cap;
    while (any && cap <= max_k - min_k) cap *= 2;
    slots_.assign(cap, Slot{});
    for (Slot& s : old) {
      if (!s.occupied) continue;
      Slot& fresh = slots_[slot(s.key)];
      assert(!fresh.occupied);
      fresh.value = std::move(s.value);
      fresh.key = s.key;
      fresh.occupied = true;
    }
  }

  std::vector<Slot> slots_;  // power-of-two capacity (or empty)
  std::size_t count_ = 0;
  std::uint64_t lo_ = 0;  // lower bound on live keys (exact after insert)
  std::uint64_t hi_ = 0;  // highest key ever inserted
};

}  // namespace dvs
