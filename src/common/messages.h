// Message universes.
//
// The paper uses M = Mc ∪ ({"info"} × V × 2^V) ∪ {"registered"}, where Mc is
// the set of client messages (Section 5.1). For the TO application, clients
// of DVS send Mc = C ∪ S (labelled app messages and summaries, Figure 5).
// We also provide an opaque client message for spec-level exploration.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "common/labels.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs {

/// An uninterpreted client message, used when exploring the VS/DVS specs
/// directly: the services treat client messages as opaque values.
struct OpaqueMsg {
  std::uint64_t uid = 0;
  ProcessId sender{};

  friend auto operator<=>(const OpaqueMsg&, const OpaqueMsg&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// C = L × A: a labelled application message (Figure 5).
struct LabeledAppMsg {
  Label label;
  AppMsg msg;

  friend auto operator<=>(const LabeledAppMsg&, const LabeledAppMsg&) =
      default;
  [[nodiscard]] std::string to_string() const;
};

/// An application state blob exchanged at the start of a view — used by the
/// service-supported state-exchange extension (paper Section 7: "a
/// variation in which the state exchange at the beginning of a new view is
/// supported by the dynamic view service").
struct StateMsg {
  ViewId view;       // the view whose exchange this blob belongs to
  std::string blob;  // opaque application bytes (the suffix when is_delta)

  // Delta encoding: instead of the full blob, ship only the bytes past the
  // longest common prefix with a blob the recipient is known to hold (the
  // sender's last safely-exchanged blob — VS safe semantics guarantee every
  // member received it). The full blob reconstructs as
  //   base.blob.substr(0, keep_len) + blob
  // where base is the sender's blob from the exchange of `base_view`.
  // Senders fall back to a full blob whenever the recipient is unknown.
  bool is_delta = false;
  ViewId base_view{};          // which earlier exchange the delta builds on
  std::uint64_t keep_len = 0;  // prefix of the base blob to keep

  friend auto operator<=>(const StateMsg&, const StateMsg&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Mc: the union of all client-message shapes used in this repository.
using ClientMsg = std::variant<OpaqueMsg, LabeledAppMsg, Summary, StateMsg>;

/// ("info", v, V): the VS-TO-DVS info message carrying act and amb.
struct InfoMsg {
  View act;
  std::vector<View> amb;

  friend bool operator==(const InfoMsg&, const InfoMsg&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// ("registered"): the VS-TO-DVS registration announcement.
struct RegisteredMsg {
  friend bool operator==(const RegisteredMsg&, const RegisteredMsg&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// M = Mc ∪ info ∪ registered (flattened variant).
using Msg = std::variant<OpaqueMsg, LabeledAppMsg, Summary, StateMsg, InfoMsg,
                         RegisteredMsg>;

/// True iff m ∈ Mc.
[[nodiscard]] bool is_client(const Msg& m);

/// Injection Mc → M.
[[nodiscard]] Msg to_msg(const ClientMsg& m);

/// Partial projection M → Mc. Precondition: is_client(m).
[[nodiscard]] ClientMsg to_client(const Msg& m);

[[nodiscard]] std::string to_string(const ClientMsg& m);
[[nodiscard]] std::string to_string(const Msg& m);

std::ostream& operator<<(std::ostream& os, const ClientMsg& m);
std::ostream& operator<<(std::ostream& os, const Msg& m);

}  // namespace dvs
