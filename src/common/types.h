// Core identifier types shared by every layer of the library.
//
// The paper (Section 2) postulates a universe of processors P, a totally
// ordered set G of view identifiers with a least element g0, and views
// v = <g, P> consisting of an identifier and a nonempty membership set.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>

namespace dvs {

/// Identifies a processor ("process" and "processor" are interchangeable,
/// as in the paper). Small integral handle; the universe P is finite.
class ProcessId {
 public:
  using Rep = std::uint32_t;

  constexpr ProcessId() = default;
  constexpr explicit ProcessId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(ProcessId, ProcessId) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  Rep value_ = 0;
};

std::ostream& operator<<(std::ostream& os, ProcessId p);

/// Totally ordered view identifier with a distinguished least element.
///
/// A ViewId is a pair (epoch, origin) ordered lexicographically. The initial
/// identifier g0 compares strictly below anything a running node mints
/// because nodes always mint epochs >= 1. Using the proposer as tie-breaker
/// lets concurrent proposers in different partitions mint distinct ids
/// without coordination, exactly the property dynamic voting needs.
class ViewId {
 public:
  constexpr ViewId() = default;
  constexpr ViewId(std::uint64_t epoch, ProcessId origin)
      : epoch_(epoch), origin_(origin) {}

  [[nodiscard]] constexpr std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] constexpr ProcessId origin() const { return origin_; }

  /// The distinguished least identifier g0.
  [[nodiscard]] static constexpr ViewId initial() { return ViewId{}; }

  friend constexpr auto operator<=>(const ViewId& a, const ViewId& b) {
    if (auto c = a.epoch_ <=> b.epoch_; c != 0) return c;
    return a.origin_ <=> b.origin_;
  }
  friend constexpr bool operator==(const ViewId&, const ViewId&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t epoch_ = 0;
  ProcessId origin_{};
};

std::ostream& operator<<(std::ostream& os, const ViewId& g);

}  // namespace dvs

template <>
struct std::hash<dvs::ProcessId> {
  std::size_t operator()(const dvs::ProcessId& p) const noexcept {
    return std::hash<dvs::ProcessId::Rep>{}(p.value());
  }
};

template <>
struct std::hash<dvs::ViewId> {
  std::size_t operator()(const dvs::ViewId& g) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(g.epoch());
    h ^= std::hash<dvs::ProcessId>{}(g.origin()) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    return h;
  }
};
