// Compact binary serialization for wire messages.
//
// The distributed layers (vsys/dvsys/tosys) exchange real encoded byte
// buffers over the simulated network rather than sharing C++ objects; this
// keeps the stack honest about what information actually crosses the wire
// and exercises encode/decode on every hop.
//
// Format: little-endian fixed-width integers, varuint-prefixed containers.
// Decoding is bounds-checked; malformed input throws DecodeError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/labels.h"
#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& message)
      : std::runtime_error("decode error: " + message) {}
};

using Bytes = std::vector<std::byte>;

/// Append-only byte sink.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// LEB128-style variable-length unsigned integer (length prefixes).
  void varuint(std::uint64_t v);
  void str(const std::string& s);
  void bytes_field(const Bytes& b);
  /// Appends `n` bytes verbatim — no length prefix (datagram framing where
  /// the record boundary is the datagram itself).
  void raw(const std::byte* p, std::size_t n) {
    buffer_.insert(buffer_.end(), p, p + n);
  }

  void process_id(ProcessId p);
  void view_id(const ViewId& g);
  void process_set(const ProcessSet& s);
  void view(const View& v);
  void label(const Label& l);
  void app_msg(const AppMsg& a);
  void summary(const Summary& x);
  void client_msg(const ClientMsg& m);
  void msg(const Msg& m);

  [[nodiscard]] Bytes take() { return std::move(buffer_); }
  [[nodiscard]] const Bytes& buffer() const { return buffer_; }

  /// Drop the contents but keep the capacity — lets hot encode loops reuse
  /// one Writer instead of re-growing a fresh buffer per message.
  void clear() { buffer_.clear(); }
  void reserve(std::size_t n) { buffer_.reserve(n); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Bounds-checked byte source.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}
  /// Reader holds a reference to the buffer for its whole lifetime; binding
  /// it to a temporary would dangle after the full-expression, so decoding
  /// a temporary buffer must not compile. Name the buffer instead.
  explicit Reader(Bytes&&) = delete;

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint64_t varuint();
  [[nodiscard]] std::string str();
  [[nodiscard]] Bytes bytes_field();

  /// Reads a varuint container count and validates it against the bytes
  /// remaining: each element occupies at least `min_element_bytes` on the
  /// wire, so a count that cannot possibly fit is a malformed length
  /// prefix — rejected as DecodeError *before* any reserve/allocation, so
  /// a corrupted length byte can never turn into a huge allocation attempt
  /// (std::length_error / bad_alloc) instead of a clean decode error.
  [[nodiscard]] std::uint64_t count(std::size_t min_element_bytes);

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  [[nodiscard]] ProcessId process_id();
  [[nodiscard]] ViewId view_id();
  [[nodiscard]] ProcessSet process_set();
  [[nodiscard]] View view();
  [[nodiscard]] Label label();
  [[nodiscard]] AppMsg app_msg();
  [[nodiscard]] Summary summary();
  [[nodiscard]] ClientMsg client_msg();
  [[nodiscard]] Msg msg();

  /// True when every byte has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  /// Throw unless exhausted (call at the end of a decode).
  void expect_exhausted() const;

 private:
  void need(std::size_t n) const;

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace dvs
