#include "common/types.h"

#include <ostream>
#include <sstream>

namespace dvs {

std::string ProcessId::to_string() const {
  return "p" + std::to_string(value_);
}

std::ostream& operator<<(std::ostream& os, ProcessId p) {
  return os << p.to_string();
}

std::string ViewId::to_string() const {
  std::ostringstream os;
  os << "g(" << epoch_ << "," << origin_.to_string() << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ViewId& g) {
  return os << g.to_string();
}

}  // namespace dvs
