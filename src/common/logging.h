// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples and debugging sessions turn it on per component.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace dvs {

enum class LogLevel { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Process-wide log threshold. Atomic: the parallel seed sweeps and the
/// sharded exhaustive search log from worker threads, so the threshold
/// read on every DVS_LOG must be data-race free (relaxed is enough — a
/// slightly stale level is fine, a torn read is not).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void emit(LogLevel level, const std::string& component,
          const std::string& message);
}  // namespace detail

}  // namespace dvs

#define DVS_LOG(level, component, expr)                              \
  do {                                                               \
    if (static_cast<int>(::dvs::log_level()) >=                      \
        static_cast<int>(level)) {                                   \
      std::ostringstream dvs_log_os_;                                \
      dvs_log_os_ << expr; /* NOLINT */                              \
      ::dvs::detail::emit(level, component, dvs_log_os_.str());      \
    }                                                                \
  } while (false)

#define DVS_LOG_INFO(component, expr) \
  DVS_LOG(::dvs::LogLevel::kInfo, component, expr)
#define DVS_LOG_DEBUG(component, expr) \
  DVS_LOG(::dvs::LogLevel::kDebug, component, expr)
#define DVS_LOG_ERROR(component, expr) \
  DVS_LOG(::dvs::LogLevel::kError, component, expr)
