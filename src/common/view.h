// Views: identifier + nonempty membership set (paper Section 2).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <initializer_list>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace dvs {

/// An ordered set of processors. std::set keeps membership iteration
/// deterministic, which the explorer and the distributed protocols rely on.
using ProcessSet = std::set<ProcessId>;

/// A view v = <g, P>: a view identifier and a nonempty membership set.
///
/// Invariant: set is nonempty (checked by the factory; default-constructed
/// Views are only used as "not yet assigned" placeholders behind optional).
class View {
 public:
  View() = default;
  View(ViewId id, ProcessSet members) : id_(id), set_(std::move(members)) {}

  [[nodiscard]] const ViewId& id() const { return id_; }
  [[nodiscard]] const ProcessSet& set() const { return set_; }

  [[nodiscard]] bool contains(ProcessId p) const { return set_.contains(p); }
  [[nodiscard]] std::size_t size() const { return set_.size(); }

  friend bool operator==(const View&, const View&) = default;
  /// Views order by identifier; the paper's Invariant 3.1 guarantees created
  /// views with equal ids are equal, so this is a strict weak order on any
  /// created set.
  friend auto operator<=>(const View& a, const View& b) {
    return a.id_ <=> b.id_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  ViewId id_{};
  ProcessSet set_{};
};

std::ostream& operator<<(std::ostream& os, const View& v);

/// |a ∩ b|.
[[nodiscard]] std::size_t intersection_size(const ProcessSet& a,
                                            const ProcessSet& b);

/// a ∩ b ≠ {} without materializing the intersection.
[[nodiscard]] bool intersects(const ProcessSet& a, const ProcessSet& b);

/// The paper's local acceptance check: |v.set ∩ w.set| > |w.set| / 2.
/// Note the threshold is a strict majority *of w*, not of v.
[[nodiscard]] bool majority_of(const ProcessSet& v_set,
                               const ProcessSet& w_set);

/// Per-process vote weights for weighted dynamic voting (empty map entries
/// default to weight 1; a zero weight makes a process a non-voting member).
using WeightMap = std::map<ProcessId, std::uint64_t>;

/// Weighted generalization (Jajodia–Mutchler style): the members of
/// v ∩ w hold a strict majority of w's total vote weight. With all weights
/// equal it coincides with majority_of. Two weighted majorities of the same
/// w always intersect, which is the property the dynamic-voting safety
/// argument needs.
[[nodiscard]] bool weighted_majority_of(const ProcessSet& v_set,
                                        const ProcessSet& w_set,
                                        const WeightMap& weights);

/// Convenience factory: processes {0, 1, ..., n-1}.
[[nodiscard]] ProcessSet make_universe(std::size_t n);

/// Convenience factory from ids.
[[nodiscard]] ProcessSet make_process_set(std::initializer_list<unsigned> ids);

/// The distinguished initial view v0 = <g0, P0>.
[[nodiscard]] View initial_view(const ProcessSet& p0);

}  // namespace dvs
