#include "common/logging.h"

namespace dvs {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void emit(LogLevel level, const std::string& component,
          const std::string& message) {
  std::cerr << "[" << level_name(level) << "][" << component << "] " << message
            << "\n";
}
}  // namespace detail

}  // namespace dvs
