#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace dvs {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

// Serializes sink writes so concurrent worker-thread log lines never
// interleave mid-line.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, const std::string& component,
          const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << "[" << level_name(level) << "][" << component << "] " << message
            << "\n";
}
}  // namespace detail

}  // namespace dvs
