#include "common/labels.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace dvs {

std::string Label::to_string() const {
  std::ostringstream os;
  os << "l(" << id.to_string() << "," << seqno << "," << origin.to_string()
     << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Label& l) {
  return os << l.to_string();
}

std::string AppMsg::to_string() const {
  std::ostringstream os;
  os << "a#" << uid << "@" << origin.to_string();
  if (!payload.empty()) os << "[" << payload << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AppMsg& a) {
  return os << a.to_string();
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "summary{|con|=" << con.size() << ",|ord|=" << ord.size()
     << ",next=" << next << ",high=" << high.to_string() << "}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Summary& x) {
  return os << x.to_string();
}

ContentMap knowncontent(const std::map<ProcessId, Summary>& y) {
  ContentMap all;
  for (const auto& [q, x] : y) {
    all.insert(x.con.begin(), x.con.end());
  }
  return all;
}

ViewId maxprimary(const std::map<ProcessId, Summary>& y) {
  if (y.empty()) throw std::logic_error("maxprimary of empty summary map");
  ViewId best = y.begin()->second.high;
  for (const auto& [q, x] : y) best = std::max(best, x.high);
  return best;
}

std::uint64_t maxnextconfirm(const std::map<ProcessId, Summary>& y) {
  if (y.empty()) throw std::logic_error("maxnextconfirm of empty summary map");
  std::uint64_t best = 1;
  for (const auto& [q, x] : y) best = std::max(best, x.next);
  return best;
}

ProcessId chosenrep(const std::map<ProcessId, Summary>& y) {
  const ViewId high = maxprimary(y);
  for (const auto& [q, x] : y) {
    if (x.high == high) return q;  // map iterates in ProcessId order
  }
  throw std::logic_error("chosenrep: no representative found");
}

std::vector<Label> shortorder(const std::map<ProcessId, Summary>& y) {
  return y.at(chosenrep(y)).ord;
}

std::vector<Label> fullorder(const std::map<ProcessId, Summary>& y) {
  std::vector<Label> order = shortorder(y);
  std::set<Label> seen(order.begin(), order.end());
  // Remaining labels of dom(knowncontent(Y)), in label order. ContentMap is
  // a std::map keyed by Label, so iteration is already label order.
  for (const auto& [label, msg] : knowncontent(y)) {
    if (seen.insert(label).second) order.push_back(label);
  }
  return order;
}

}  // namespace dvs
