// Slab recycling for the wire data path.
//
// Every datagram used to heap-allocate its payload buffer on send (the
// network copies the caller's bytes into the in-flight closure) and every
// map/set node in the upper layers paid a malloc per message. The two
// allocators here close those holes:
//
//  * MsgArena — a slab of recycled `Bytes` buffers addressed by small
//    integer handles. Acquire pops a free slot (keeping its heap capacity,
//    so copying a payload into it stops allocating once the slot has grown
//    to the working payload size); release parks it again. The arena
//    retains at most `max_retained` buffers' capacity: a release beyond
//    that cap frees the slot's heap memory but keeps the slot, so bursts
//    degrade to plain malloc/free (counted in stats().exhausted_acquires)
//    instead of failing or growing without bound.
//  * NodePool / PoolAllocator<T> — a size-classed free list for container
//    nodes (std::map/std::set in the TO layer's content tables). Freed
//    nodes return to the class's list and are handed back verbatim, so a
//    steady-state insert/erase workload allocates only when the pool grows
//    its high-water mark (one chunked malloc per 64 nodes). The pool is
//    mutex-guarded: chaos sweeps run whole clusters on worker threads and
//    every cluster shares the process-wide pool.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace dvs {

/// Wire byte buffer (same alias as common/serialize.h, restated here so the
/// arena does not need the full serialization surface).
using Bytes = std::vector<std::byte>;

/// Recycled wire-payload slab. Handles are indices into a stable slot
/// table, and references returned by at() are stable for the arena's
/// lifetime (deque storage — growth never moves existing slots). That
/// stability is load-bearing: a delivery reads its slot while the
/// receiver's handlers acquire fresh slots for their own sends, and a
/// batch flush reads frame slots while acquiring the envelope slot.
class MsgArena {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNullHandle = ~Handle{0};

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;  // acquires served from the free list
    /// Acquires that had to grow the slab past max_retained (the burst
    /// fallback: still served, from plain heap memory).
    std::uint64_t exhausted_acquires = 0;
    /// Releases that dropped the slot's buffer because the retained
    /// capacity budget was full.
    std::uint64_t trimmed_releases = 0;
    std::size_t live = 0;       // currently acquired slots
    std::size_t peak_live = 0;  // high-water mark of live
    std::size_t slots = 0;      // total slots ever created
  };

  explicit MsgArena(std::size_t max_retained = 1024)
      : max_retained_(max_retained == 0 ? 1 : max_retained) {}

  /// Pops a recycled buffer (cleared, capacity kept) or creates a fresh
  /// slot. Never fails: past max_retained it degrades to plain allocation.
  [[nodiscard]] Handle acquire() {
    ++stats_.acquires;
    Handle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      slots_[h].clear();
      ++stats_.reuses;
    } else {
      if (slots_.size() >= max_retained_) ++stats_.exhausted_acquires;
      h = static_cast<Handle>(slots_.size());
      slots_.emplace_back();
      stats_.slots = slots_.size();
    }
    ++stats_.live;
    stats_.peak_live = std::max(stats_.peak_live, stats_.live);
    return h;
  }

  [[nodiscard]] Bytes& at(Handle h) { return slots_[h]; }
  [[nodiscard]] const Bytes& at(Handle h) const { return slots_[h]; }

  /// Parks the slot for reuse. Beyond the retained-capacity budget the
  /// slot's heap buffer is freed (burst memory is returned), but the slot
  /// itself stays on the free list.
  void release(Handle h) {
    --stats_.live;
    if (free_.size() >= max_retained_) {
      Bytes().swap(slots_[h]);
      ++stats_.trimmed_releases;
    }
    free_.push_back(h);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t max_retained() const { return max_retained_; }

 private:
  std::size_t max_retained_;
  std::deque<Bytes> slots_;  // deque: references survive growth
  std::vector<Handle> free_;
  Stats stats_;
};

/// Process-wide size-classed node pool. Classes are 16-byte granules up to
/// 512 bytes; larger requests pass through to operator new. Chunks are
/// never returned to the OS — the pool's footprint is the high-water mark
/// of simultaneously live nodes, which for the per-view container churn it
/// backs is small and bounded.
class NodePool {
 public:
  static NodePool& global() {
    static NodePool pool;
    return pool;
  }

  void* allocate(std::size_t bytes) {
    const std::size_t cls = size_class(bytes);
    if (cls >= kClasses) return ::operator new(bytes);
    std::lock_guard<std::mutex> lock(mu_);
    FreeNode*& head = free_[cls];
    if (head == nullptr) refill(cls);
    FreeNode* node = head;
    head = node->next;
    return node;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = size_class(bytes);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kClasses = 32;  // up to 512 bytes
  static constexpr std::size_t kChunkNodes = 64;

  static std::size_t size_class(std::size_t bytes) {
    return (bytes + kGranule - 1) / kGranule;  // class i serves i*16 bytes
  }

  void refill(std::size_t cls) {
    const std::size_t node_bytes = cls * kGranule;
    auto* chunk =
        static_cast<std::byte*>(::operator new(node_bytes * kChunkNodes));
    chunks_.push_back(chunk);
    for (std::size_t i = 0; i < kChunkNodes; ++i) {
      auto* node = reinterpret_cast<FreeNode*>(chunk + i * node_bytes);
      node->next = free_[cls];
      free_[cls] = node;
    }
  }

  NodePool() = default;
  ~NodePool() {
    for (std::byte* c : chunks_) ::operator delete(c);
  }
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  std::mutex mu_;
  FreeNode* free_[kClasses] = {};
  std::vector<std::byte*> chunks_;
};

/// std-compatible allocator backed by NodePool::global(). Containers using
/// it recycle their nodes through the pool: steady-state insert/erase
/// cycles stop hitting operator new once the pool is warm.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(google-explicit-*)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(NodePool::global().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    NodePool::global().deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace dvs
