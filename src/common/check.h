// Invariant-violation reporting for the executable specs and checkers.
//
// A violated paper invariant is a *finding*, not a programming error: the
// checkers throw InvariantViolation carrying a human-readable account of the
// state that broke the property, and the explorer attaches the seed and the
// action trace so the execution replays deterministically.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dvs {

/// Thrown when an executable-spec invariant or a trace-acceptance check
/// fails. `what()` names the invariant and describes the offending state.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(std::string message)
      : std::runtime_error(std::move(message)) {}
};

/// Thrown when a precondition of an automaton action is not met. Applying a
/// disabled action is a harness bug (or a genuine trace rejection when used
/// by acceptors, which catch it and report).
class PreconditionViolation : public std::runtime_error {
 public:
  explicit PreconditionViolation(std::string message)
      : std::runtime_error(std::move(message)) {}
};

namespace detail {
[[noreturn]] void fail_invariant(const char* invariant_name,
                                 const std::string& details);
[[noreturn]] void fail_precondition(const char* action_name,
                                    const std::string& details);
}  // namespace detail

}  // namespace dvs

/// Check a paper invariant; on failure throw InvariantViolation naming it.
/// `name` should be the paper's label, e.g. "Invariant 4.1 (DVS)".
#define DVS_INVARIANT(name, cond, details)                    \
  do {                                                        \
    if (!(cond)) {                                            \
      std::ostringstream dvs_check_os_;                       \
      dvs_check_os_ << details; /* NOLINT */                  \
      ::dvs::detail::fail_invariant(name, dvs_check_os_.str()); \
    }                                                         \
  } while (false)

/// Check an action precondition inside an `apply` implementation.
#define DVS_REQUIRE(action_name, cond, details)                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream dvs_check_os_;                                 \
      dvs_check_os_ << details; /* NOLINT */                            \
      ::dvs::detail::fail_precondition(action_name, dvs_check_os_.str()); \
    }                                                                   \
  } while (false)
