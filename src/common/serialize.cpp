#include "common/serialize.h"

namespace dvs {
namespace {

// Message-variant wire tags.
enum class MsgTag : std::uint8_t {
  kOpaque = 1,
  kLabeled = 2,
  kSummary = 3,
  kInfo = 4,
  kRegistered = 5,
  kState = 6,
};

}  // namespace

void Writer::u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varuint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void Writer::str(const std::string& s) {
  varuint(s.size());
  for (char c : s) buffer_.push_back(static_cast<std::byte>(c));
}

void Writer::bytes_field(const Bytes& b) {
  varuint(b.size());
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

void Writer::process_id(ProcessId p) { u32(p.value()); }

void Writer::view_id(const ViewId& g) {
  u64(g.epoch());
  process_id(g.origin());
}

void Writer::process_set(const ProcessSet& s) {
  varuint(s.size());
  for (ProcessId p : s) process_id(p);
}

void Writer::view(const View& v) {
  view_id(v.id());
  process_set(v.set());
}

void Writer::label(const Label& l) {
  view_id(l.id);
  u64(l.seqno);
  process_id(l.origin);
}

void Writer::app_msg(const AppMsg& a) {
  u64(a.uid);
  process_id(a.origin);
  str(a.payload);
}

void Writer::summary(const Summary& x) {
  varuint(x.con.size());
  for (const auto& [l, a] : x.con) {
    label(l);
    app_msg(a);
  }
  varuint(x.ord.size());
  for (const Label& l : x.ord) label(l);
  u64(x.next);
  view_id(x.high);
}

void Writer::client_msg(const ClientMsg& m) {
  msg(to_msg(m));
}

void Writer::msg(const Msg& m) {
  if (const auto* o = std::get_if<OpaqueMsg>(&m)) {
    u8(static_cast<std::uint8_t>(MsgTag::kOpaque));
    u64(o->uid);
    process_id(o->sender);
  } else if (const auto* l = std::get_if<LabeledAppMsg>(&m)) {
    u8(static_cast<std::uint8_t>(MsgTag::kLabeled));
    label(l->label);
    app_msg(l->msg);
  } else if (const auto* s = std::get_if<Summary>(&m)) {
    u8(static_cast<std::uint8_t>(MsgTag::kSummary));
    summary(*s);
  } else if (const auto* st = std::get_if<StateMsg>(&m)) {
    u8(static_cast<std::uint8_t>(MsgTag::kState));
    view_id(st->view);
    str(st->blob);
    u8(st->is_delta ? 1 : 0);
    if (st->is_delta) {
      view_id(st->base_view);
      varuint(st->keep_len);
    }
  } else if (const auto* i = std::get_if<InfoMsg>(&m)) {
    u8(static_cast<std::uint8_t>(MsgTag::kInfo));
    view(i->act);
    varuint(i->amb.size());
    for (const View& w : i->amb) view(w);
  } else {
    u8(static_cast<std::uint8_t>(MsgTag::kRegistered));
  }
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t Reader::varuint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw DecodeError("varuint overflow");
    const std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint64_t Reader::count(std::size_t min_element_bytes) {
  const std::uint64_t n = varuint();
  if (min_element_bytes > 0 && n > remaining() / min_element_bytes) {
    throw DecodeError("container count exceeds remaining input");
  }
  return n;
}

std::string Reader::str() {
  const std::uint64_t n = varuint();
  need(n);
  std::string s;
  s.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(data_[pos_++]));
  }
  return s;
}

Bytes Reader::bytes_field() {
  const std::uint64_t n = varuint();
  need(n);
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

ProcessId Reader::process_id() { return ProcessId{u32()}; }

ViewId Reader::view_id() {
  const std::uint64_t epoch = u64();
  const ProcessId origin = process_id();
  return ViewId{epoch, origin};
}

ProcessSet Reader::process_set() {
  const std::uint64_t n = count(4);  // u32 per member
  ProcessSet s;
  for (std::uint64_t i = 0; i < n; ++i) s.insert(process_id());
  return s;
}

View Reader::view() {
  const ViewId g = view_id();
  ProcessSet s = process_set();
  if (s.empty()) throw DecodeError("view with empty membership");
  return View{g, std::move(s)};
}

Label Reader::label() {
  Label l;
  l.id = view_id();
  l.seqno = u64();
  l.origin = process_id();
  return l;
}

AppMsg Reader::app_msg() {
  AppMsg a;
  a.uid = u64();
  a.origin = process_id();
  a.payload = str();
  return a;
}

Summary Reader::summary() {
  Summary x;
  // Minimum wire sizes: label = 24 (view_id 12 + u64 8 + u32 4), con entry
  // = label + minimal app_msg (u64 8 + u32 4 + empty str 1) = 37.
  const std::uint64_t ncon = count(37);
  for (std::uint64_t i = 0; i < ncon; ++i) {
    Label l = label();
    AppMsg a = app_msg();
    x.con.emplace(l, std::move(a));
  }
  const std::uint64_t nord = count(24);
  x.ord.reserve(nord);
  for (std::uint64_t i = 0; i < nord; ++i) x.ord.push_back(label());
  x.next = u64();
  x.high = view_id();
  return x;
}

ClientMsg Reader::client_msg() {
  Msg m = msg();
  if (!is_client(m)) throw DecodeError("expected client message");
  return to_client(m);
}

Msg Reader::msg() {
  switch (static_cast<MsgTag>(u8())) {
    case MsgTag::kOpaque: {
      OpaqueMsg o;
      o.uid = u64();
      o.sender = process_id();
      return o;
    }
    case MsgTag::kLabeled: {
      LabeledAppMsg l;
      l.label = label();
      l.msg = app_msg();
      return l;
    }
    case MsgTag::kSummary:
      return summary();
    case MsgTag::kInfo: {
      InfoMsg i;
      i.act = view();
      // Minimal view: view_id 12 + count 1 + one member 4 (views are
      // nonempty).
      const std::uint64_t n = count(17);
      i.amb.reserve(n);
      for (std::uint64_t k = 0; k < n; ++k) i.amb.push_back(view());
      return i;
    }
    case MsgTag::kRegistered:
      return RegisteredMsg{};
    case MsgTag::kState: {
      StateMsg st;
      st.view = view_id();
      st.blob = str();
      const std::uint8_t delta_flag = u8();
      if (delta_flag > 1) throw DecodeError("bad StateMsg delta flag");
      st.is_delta = delta_flag == 1;
      if (st.is_delta) {
        st.base_view = view_id();
        st.keep_len = varuint();
      }
      return st;
    }
  }
  throw DecodeError("unknown message tag");
}

void Reader::expect_exhausted() const {
  if (!exhausted()) throw DecodeError("trailing bytes after decode");
}

}  // namespace dvs
