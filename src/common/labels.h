// Types used by the totally-ordered-broadcast application (paper Figure 5):
// labels, application messages, content associations and summaries.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/view.h"

namespace dvs {

/// L = G × N>0 × P, with selectors id, seqno and origin. Labels are the
/// system-wide unique names given to client messages; "label order" is the
/// lexicographic order used by fullorder().
struct Label {
  ViewId id{};
  std::uint64_t seqno = 0;  // N>0 in the paper; 0 only in default objects
  ProcessId origin{};

  friend constexpr auto operator<=>(const Label&, const Label&) = default;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Label& l);

/// A ∈ the set of client messages of the TO service. uid makes messages
/// distinguishable; payload carries application bytes for the examples.
struct AppMsg {
  std::uint64_t uid = 0;
  ProcessId origin{};
  std::string payload;

  friend auto operator<=>(const AppMsg&, const AppMsg&) = default;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const AppMsg& a);

/// Content relation entries: C = L × A. The `content` state variable of
/// DVS-TO-TO_p is a set of these; in practice each label maps to exactly one
/// message, so we model it as a map keyed by label.
using ContentMap = std::map<Label, AppMsg>;

/// S = 2^C × seqof(L) × N>0 × G, with selectors con, ord, next and high.
/// A summary is a node's state digest exchanged during recovery.
struct Summary {
  ContentMap con;
  std::vector<Label> ord;
  std::uint64_t next = 1;  // next confirm index (1-based, like the paper)
  ViewId high{};           // highest established primary id

  friend bool operator==(const Summary&, const Summary&) = default;

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Summary& x);

/// Helper functions on partial maps Y : P → S (paper Section 6.1).
/// knowncontent(Y) = union of all con components.
[[nodiscard]] ContentMap knowncontent(const std::map<ProcessId, Summary>& y);

/// maxprimary(Y) = max over Y of high.
[[nodiscard]] ViewId maxprimary(const std::map<ProcessId, Summary>& y);

/// maxnextconfirm(Y) = max over Y of next.
[[nodiscard]] std::uint64_t maxnextconfirm(
    const std::map<ProcessId, Summary>& y);

/// chosenrep(Y): some element of reps(Y) = argmax of high. We pick the one
/// with the smallest ProcessId so every node makes the same deterministic
/// choice — any consistent choice satisfies the paper's "some element".
[[nodiscard]] ProcessId chosenrep(const std::map<ProcessId, Summary>& y);

/// shortorder(Y) = Y(chosenrep(Y)).ord.
[[nodiscard]] std::vector<Label> shortorder(
    const std::map<ProcessId, Summary>& y);

/// fullorder(Y) = shortorder(Y) followed by the remaining labels of
/// dom(knowncontent(Y)) in label order.
[[nodiscard]] std::vector<Label> fullorder(
    const std::map<ProcessId, Summary>& y);

}  // namespace dvs
