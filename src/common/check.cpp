#include "common/check.h"

namespace dvs::detail {

void fail_invariant(const char* invariant_name, const std::string& details) {
  throw InvariantViolation(std::string(invariant_name) +
                           " violated: " + details);
}

void fail_precondition(const char* action_name, const std::string& details) {
  throw PreconditionViolation(std::string(action_name) +
                              " precondition failed: " + details);
}

}  // namespace dvs::detail
