// Sequence utilities from Section 2 of the paper: prefix ordering (≤),
// consistency of a collection of sequences, and lub of a consistent
// collection.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace dvs {

/// a ≤ b: a is a prefix of b.
template <typename T>
[[nodiscard]] bool is_prefix(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() > b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

/// A collection A of sequences is consistent iff a ≤ b or b ≤ a for all
/// a, b ∈ A (equivalently, pairwise prefix-comparable).
template <typename T>
[[nodiscard]] bool is_consistent(const std::vector<std::vector<T>>& seqs) {
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    for (std::size_t j = i + 1; j < seqs.size(); ++j) {
      if (!is_prefix(seqs[i], seqs[j]) && !is_prefix(seqs[j], seqs[i])) {
        return false;
      }
    }
  }
  return true;
}

/// lub(A): the minimum sequence b with a ≤ b for all a ∈ A. For a consistent
/// collection this is simply the longest member (empty collection → empty
/// sequence). Precondition: is_consistent(seqs).
template <typename T>
[[nodiscard]] std::vector<T> lub(const std::vector<std::vector<T>>& seqs) {
  const std::vector<T>* longest = nullptr;
  for (const auto& s : seqs) {
    if (longest == nullptr || s.size() > longest->size()) longest = &s;
  }
  return longest != nullptr ? *longest : std::vector<T>{};
}

/// The longest common prefix of a collection (useful for TO-spec acceptance:
/// the committed order is the part all replicas agree on).
template <typename T>
[[nodiscard]] std::vector<T> common_prefix(
    const std::vector<std::vector<T>>& seqs) {
  if (seqs.empty()) return {};
  std::vector<T> out = seqs.front();
  for (const auto& s : seqs) {
    std::size_t k = 0;
    while (k < out.size() && k < s.size() && out[k] == s[k]) ++k;
    out.resize(k);
  }
  return out;
}

}  // namespace dvs
