#include "common/view.h"

#include <ostream>
#include <sstream>

namespace dvs {

std::string View::to_string() const {
  std::ostringstream os;
  os << "<" << id_.to_string() << ",{";
  bool first = true;
  for (ProcessId p : set_) {
    if (!first) os << ",";
    os << p.to_string();
    first = false;
  }
  os << "}>";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const View& v) {
  return os << v.to_string();
}

std::size_t intersection_size(const ProcessSet& a, const ProcessSet& b) {
  // Walk the smaller set, probe the larger: O(min log max).
  const ProcessSet& small = a.size() <= b.size() ? a : b;
  const ProcessSet& large = a.size() <= b.size() ? b : a;
  std::size_t count = 0;
  for (ProcessId p : small) {
    if (large.contains(p)) ++count;
  }
  return count;
}

bool intersects(const ProcessSet& a, const ProcessSet& b) {
  const ProcessSet& small = a.size() <= b.size() ? a : b;
  const ProcessSet& large = a.size() <= b.size() ? b : a;
  return std::any_of(small.begin(), small.end(),
                     [&](ProcessId p) { return large.contains(p); });
}

bool majority_of(const ProcessSet& v_set, const ProcessSet& w_set) {
  return 2 * intersection_size(v_set, w_set) > w_set.size();
}

bool weighted_majority_of(const ProcessSet& v_set, const ProcessSet& w_set,
                          const WeightMap& weights) {
  auto weight_of = [&](ProcessId p) -> std::uint64_t {
    auto it = weights.find(p);
    return it == weights.end() ? 1 : it->second;
  };
  std::uint64_t total = 0;
  std::uint64_t shared = 0;
  for (ProcessId p : w_set) {
    const std::uint64_t w = weight_of(p);
    total += w;
    if (v_set.contains(p)) shared += w;
  }
  return 2 * shared > total;
}

ProcessSet make_universe(std::size_t n) {
  ProcessSet s;
  for (std::size_t i = 0; i < n; ++i) {
    s.insert(ProcessId{static_cast<ProcessId::Rep>(i)});
  }
  return s;
}

ProcessSet make_process_set(std::initializer_list<unsigned> ids) {
  ProcessSet s;
  for (unsigned id : ids) s.insert(ProcessId{id});
  return s;
}

View initial_view(const ProcessSet& p0) {
  return View{ViewId::initial(), p0};
}

}  // namespace dvs
