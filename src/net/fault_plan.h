// FaultPlan: a timed, serializable script of network faults.
//
// A plan is an ordered list of crash / recover / partition / heal /
// drop-window / dup-burst events with absolute simulated times. Plans are
// generated deterministically from a seed (FaultPlan::random), serialize to
// a line-oriented text form (to_string/parse round-trips exactly), and are
// applied to a run by scheduling every event into the Simulator
// (FaultPlan::schedule) — so the adversarial schedule that produced a
// violation can be dumped, stored, edited and replayed bit-identically.
//
// The chaos harness (tosys/chaos.h, `model_checker --chaos`) drives
// FaultPlan-shaped adversaries against the full distributed stack with the
// spec-conformance oracles attached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "common/view.h"
#include "net/sim_network.h"
#include "sim/simulator.h"

namespace dvs::net {

/// One timed fault. Which fields are meaningful depends on `kind`:
///   kCrash/kRecover — `target`. NOTE: kCrash is *pause* semantics — the
///                     process goes silent but keeps its volatile state,
///                     and kRecover resumes it intact (SimNetwork::pause);
///   kRestart        — `target`. A genuine crash-restart: the process
///                     loses all volatile state and is rebuilt from its
///                     stable storage (needs a ScheduleHooks::restart
///                     implementation; a no-op without one);
///   kPartition      — `groups`;
///   kHeal           — nothing beyond `at`;
///   kDropWindow     — `duration`, `probability` (random-drop rate inside
///                     the window; the pre-plan rate is restored after);
///   kDupBurst       — `duration`, `probability` (duplicate rate inside the
///                     window, same restore contract).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,
    kRecover,
    kPartition,
    kHeal,
    kDropWindow,
    kDupBurst,
    kRestart,
  };

  Kind kind = Kind::kHeal;
  sim::Time at = 0;
  ProcessId target{};
  std::vector<ProcessSet> groups;
  sim::Time duration = 0;
  double probability = 0.0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Shape of a randomly generated plan: how many events, over which time
/// span, and the mix of fault kinds.
struct FaultPlanConfig {
  /// Quiet prefix before the first fault (lets the stack install v0 and
  /// settle), and the time of the last scripted event.
  sim::Time warmup = 300 * sim::kMillisecond;
  sim::Time horizon = 5 * sim::kSecond;
  /// Number of scripted events.
  std::size_t events = 12;
  /// Relative weights of the fault kinds (need not sum to 1). Crash and
  /// recover draws degrade gracefully: a crash with everyone already paused
  /// becomes a recover and vice versa.
  double w_partition = 0.30;
  double w_heal = 0.20;
  double w_crash = 0.15;
  double w_recover = 0.15;
  double w_drop_window = 0.10;
  double w_dup_burst = 0.10;
  /// Crash-restart weight. Defaults to 0 so existing seeds generate
  /// byte-identical plans; chaos configs that exercise persistence turn it
  /// up explicitly.
  double w_restart = 0.0;
  /// At most this many processes paused at once (0 = n - 1, keeping one
  /// process alive so the run is never fully dark).
  std::size_t max_paused = 0;
  /// Drop-window / dup-burst parameters.
  double drop_probability = 0.4;
  double dup_probability = 0.5;
  sim::Time window_min = 100 * sim::kMillisecond;
  sim::Time window_max = 600 * sim::kMillisecond;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by `at`

  /// Deterministically generates a plan for `universe` from `seed`: same
  /// seed, universe and config → identical plan, on every platform.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const ProcessSet& universe,
                                        const FaultPlanConfig& config = {});

  /// Line-oriented text form, one event per line, e.g.
  ///   crash @400000 2
  ///   partition @1200000 0,1|2
  ///   drop @2500000 +300000 0.4
  /// parse(to_string()) reproduces the plan exactly (doubles are printed
  /// with round-trip precision). parse throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static FaultPlan parse(const std::string& text);

  /// Out-of-band actions a plan needs from the layer that owns the nodes
  /// (the network can pause a process but cannot rebuild one).
  struct ScheduleHooks {
    /// Tear the process down and rebuild it from stable storage
    /// (tosys::Cluster::restart). kRestart events are no-ops without it.
    std::function<void(ProcessId)> restart;
    /// Upgrade kCrash events to real crashes: the process still pauses for
    /// the kCrash..kRecover window, but its volatile state is wiped at the
    /// crash instant (restart hook fires while paused), so the kRecover
    /// brings back a node that only remembers what it persisted. Lets one
    /// plan run under both pause and crash-restart semantics.
    bool crashes_restart = false;
  };

  /// Schedules every event into `sim` against `net`. The baseline drop and
  /// duplicate probabilities restored at the end of a window are captured
  /// from `net.config()` at this call, so overlapping windows still restore
  /// the pre-plan rates. Call before the simulation passes the first
  /// event's time.
  void schedule(sim::Simulator& sim, SimNetwork& net) const;
  void schedule(sim::Simulator& sim, SimNetwork& net,
                ScheduleHooks hooks) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

[[nodiscard]] std::string to_string(FaultEvent::Kind kind);

}  // namespace dvs::net
