#include "net/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dvs::net {
namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("fault plan parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

/// Round-trip-exact double formatting (%.17g).
std::string format_probability(double p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

std::string format_groups(const std::vector<ProcessSet>& groups) {
  std::ostringstream os;
  bool first_group = true;
  for (const ProcessSet& g : groups) {
    if (!first_group) os << '|';
    first_group = false;
    bool first = true;
    for (ProcessId p : g) {
      if (!first) os << ',';
      first = false;
      os << p.value();
    }
  }
  return os.str();
}

std::vector<ProcessSet> parse_groups(const std::string& text,
                                     std::size_t line_no) {
  std::vector<ProcessSet> out;
  std::istringstream gs(text);
  std::string group;
  while (std::getline(gs, group, '|')) {
    ProcessSet set;
    std::istringstream ms(group);
    std::string member;
    while (std::getline(ms, member, ',')) {
      try {
        set.insert(ProcessId{
            static_cast<ProcessId::Rep>(std::stoul(member))});
      } catch (const std::exception&) {
        parse_fail(line_no, "bad process id '" + member + "'");
      }
    }
    if (set.empty()) parse_fail(line_no, "empty partition group");
    out.push_back(std::move(set));
  }
  if (out.empty()) parse_fail(line_no, "partition without groups");
  return out;
}

/// Draws a random partition of the universe into 1–3 groups.
std::vector<ProcessSet> random_partition(Rng& rng, const ProcessSet& universe) {
  const std::size_t n_groups = 1 + rng.below(3);
  std::vector<ProcessSet> out(n_groups);
  for (ProcessId p : universe) {
    out[rng.below(n_groups)].insert(p);
  }
  std::erase_if(out, [](const ProcessSet& g) { return g.empty(); });
  return out;
}

}  // namespace

std::string to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRecover:
      return "recover";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kDropWindow:
      return "drop";
    case FaultEvent::Kind::kDupBurst:
      return "dup";
    case FaultEvent::Kind::kRestart:
      return "restart";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed, const ProcessSet& universe,
                            const FaultPlanConfig& config) {
  Rng rng(seed);
  FaultPlan plan;
  if (config.events == 0 || universe.empty()) return plan;

  const sim::Time span =
      config.horizon > config.warmup ? config.horizon - config.warmup : 1;
  std::vector<sim::Time> times;
  times.reserve(config.events);
  for (std::size_t i = 0; i < config.events; ++i) {
    times.push_back(config.warmup +
                    static_cast<sim::Time>(
                        rng.below(static_cast<std::size_t>(span) + 1)));
  }
  std::sort(times.begin(), times.end());

  const std::size_t max_paused =
      config.max_paused != 0
          ? config.max_paused
          : (universe.size() > 1 ? universe.size() - 1 : 0);

  const double total = config.w_partition + config.w_heal + config.w_crash +
                       config.w_recover + config.w_drop_window +
                       config.w_dup_burst + config.w_restart;
  // Generator-side model of who is paused, so crash/recover picks stay
  // meaningful (pause an alive process, resume a paused one).
  ProcessSet paused;

  for (sim::Time at : times) {
    FaultEvent ev;
    ev.at = at;
    double r = rng.uniform() * (total > 0 ? total : 1.0);
    auto take = [&r](double w) {
      if (r < w) return true;
      r -= w;
      return false;
    };
    FaultEvent::Kind kind = FaultEvent::Kind::kHeal;
    if (take(config.w_partition)) {
      kind = FaultEvent::Kind::kPartition;
    } else if (take(config.w_heal)) {
      kind = FaultEvent::Kind::kHeal;
    } else if (take(config.w_crash)) {
      kind = FaultEvent::Kind::kCrash;
    } else if (take(config.w_recover)) {
      kind = FaultEvent::Kind::kRecover;
    } else if (take(config.w_drop_window)) {
      kind = FaultEvent::Kind::kDropWindow;
    } else if (config.w_restart > 0 && !take(config.w_dup_burst)) {
      // The explicit dup-burst take only happens when a restart weight is
      // in play: legacy configs (w_restart == 0) keep the final-else draw
      // and generate byte-identical plans.
      kind = FaultEvent::Kind::kRestart;
    } else {
      kind = FaultEvent::Kind::kDupBurst;
    }
    // Degenerate draws degrade into their counterpart: a crash with the
    // pause budget exhausted becomes a recover, a recover with nobody
    // paused becomes a crash (or a heal when even that is impossible).
    if (kind == FaultEvent::Kind::kCrash && paused.size() >= max_paused) {
      kind = paused.empty() ? FaultEvent::Kind::kHeal
                            : FaultEvent::Kind::kRecover;
    }
    if (kind == FaultEvent::Kind::kRecover && paused.empty()) {
      kind = max_paused > 0 ? FaultEvent::Kind::kCrash
                            : FaultEvent::Kind::kHeal;
    }
    ev.kind = kind;
    switch (kind) {
      case FaultEvent::Kind::kCrash: {
        ProcessSet alive;
        for (ProcessId p : universe) {
          if (!paused.contains(p)) alive.insert(p);
        }
        ev.target = rng.pick(alive);
        paused.insert(ev.target);
        break;
      }
      case FaultEvent::Kind::kRecover:
        ev.target = rng.pick(paused);
        paused.erase(ev.target);
        break;
      case FaultEvent::Kind::kRestart:
        // Any process can restart; a paused target comes back up (the
        // rebuild resumes its network endpoint).
        ev.target = rng.pick(universe);
        paused.erase(ev.target);
        break;
      case FaultEvent::Kind::kPartition:
        ev.groups = random_partition(rng, universe);
        break;
      case FaultEvent::Kind::kHeal:
        break;
      case FaultEvent::Kind::kDropWindow:
      case FaultEvent::Kind::kDupBurst: {
        const auto lo = static_cast<std::int64_t>(config.window_min);
        const auto hi = static_cast<std::int64_t>(
            std::max(config.window_max, config.window_min));
        ev.duration = static_cast<sim::Time>(rng.between(lo, hi));
        ev.probability = kind == FaultEvent::Kind::kDropWindow
                             ? config.drop_probability
                             : config.dup_probability;
        break;
      }
    }
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (const FaultEvent& ev : events) {
    os << net::to_string(ev.kind) << " @" << ev.at;
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kRecover:
      case FaultEvent::Kind::kRestart:
        os << ' ' << ev.target.value();
        break;
      case FaultEvent::Kind::kPartition:
        os << ' ' << format_groups(ev.groups);
        break;
      case FaultEvent::Kind::kHeal:
        break;
      case FaultEvent::Kind::kDropWindow:
      case FaultEvent::Kind::kDupBurst:
        os << " +" << ev.duration << ' '
           << format_probability(ev.probability);
        break;
    }
    os << '\n';
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind_word;
    std::string at_word;
    ls >> kind_word >> at_word;
    if (at_word.size() < 2 || at_word[0] != '@') {
      parse_fail(line_no, "expected '@<time>' after the event kind");
    }
    FaultEvent ev;
    try {
      ev.at = std::stoull(at_word.substr(1));
    } catch (const std::exception&) {
      parse_fail(line_no, "bad time '" + at_word + "'");
    }
    if (kind_word == "crash" || kind_word == "recover" ||
        kind_word == "restart") {
      ev.kind = kind_word == "crash"     ? FaultEvent::Kind::kCrash
                : kind_word == "recover" ? FaultEvent::Kind::kRecover
                                         : FaultEvent::Kind::kRestart;
      std::string id_word;
      if (!(ls >> id_word)) parse_fail(line_no, "missing process id");
      try {
        ev.target =
            ProcessId{static_cast<ProcessId::Rep>(std::stoul(id_word))};
      } catch (const std::exception&) {
        parse_fail(line_no, "bad process id '" + id_word + "'");
      }
    } else if (kind_word == "partition") {
      ev.kind = FaultEvent::Kind::kPartition;
      std::string groups_word;
      if (!(ls >> groups_word)) parse_fail(line_no, "missing groups");
      ev.groups = parse_groups(groups_word, line_no);
    } else if (kind_word == "heal") {
      ev.kind = FaultEvent::Kind::kHeal;
    } else if (kind_word == "drop" || kind_word == "dup") {
      ev.kind = kind_word == "drop" ? FaultEvent::Kind::kDropWindow
                                    : FaultEvent::Kind::kDupBurst;
      std::string dur_word;
      std::string prob_word;
      if (!(ls >> dur_word >> prob_word) || dur_word.empty() ||
          dur_word[0] != '+') {
        parse_fail(line_no, "expected '+<duration> <probability>'");
      }
      try {
        ev.duration = std::stoull(dur_word.substr(1));
        ev.probability = std::stod(prob_word);
      } catch (const std::exception&) {
        parse_fail(line_no, "bad duration or probability");
      }
    } else {
      parse_fail(line_no, "unknown event kind '" + kind_word + "'");
    }
    plan.events.push_back(std::move(ev));
  }
  return plan;
}

void FaultPlan::schedule(sim::Simulator& sim, SimNetwork& net) const {
  schedule(sim, net, ScheduleHooks{});
}

void FaultPlan::schedule(sim::Simulator& sim, SimNetwork& net,
                         ScheduleHooks hooks) const {
  // Windows restore the pre-plan rates, captured once here — overlapping
  // windows therefore cannot "restore" each other's elevated values.
  const double base_drop = net.config().drop_probability;
  const double base_dup = net.config().duplicate_probability;
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        sim.schedule_at(ev.at, [&net, hooks, p = ev.target] {
          net.pause(p);
          // Upgraded crash: the volatile state dies at the crash instant.
          // The rebuild happens now, while the endpoint is paused, so the
          // node sits silent (recovered, but unreachable) until kRecover.
          if (hooks.crashes_restart && hooks.restart) hooks.restart(p);
        });
        break;
      case FaultEvent::Kind::kRestart:
        sim.schedule_at(ev.at, [&net, hooks, p = ev.target] {
          if (!hooks.restart) return;  // documented no-op without the hook
          hooks.restart(p);
          // A restarted node is up: if it was paused, the rebuild brings
          // its endpoint back (the hook itself never touches pause state,
          // so upgraded kCrash events can rebuild while staying silent).
          net.resume(p);
        });
        break;
      case FaultEvent::Kind::kRecover:
        sim.schedule_at(ev.at, [&net, p = ev.target] { net.resume(p); });
        break;
      case FaultEvent::Kind::kPartition:
        sim.schedule_at(ev.at, [&net, groups = ev.groups] {
          net.set_partition(groups);
        });
        break;
      case FaultEvent::Kind::kHeal:
        sim.schedule_at(ev.at, [&net] { net.heal(); });
        break;
      case FaultEvent::Kind::kDropWindow:
        sim.schedule_at(ev.at, [&net, p = ev.probability] {
          net.set_drop_probability(p);
        });
        sim.schedule_at(ev.at + ev.duration, [&net, base_drop] {
          net.set_drop_probability(base_drop);
        });
        break;
      case FaultEvent::Kind::kDupBurst:
        sim.schedule_at(ev.at, [&net, p = ev.probability] {
          net.set_duplicate_probability(p);
        });
        sim.schedule_at(ev.at + ev.duration, [&net, base_dup] {
          net.set_duplicate_probability(base_dup);
        });
        break;
    }
  }
}

}  // namespace dvs::net
