// Real asynchronous UDP backend for the Transport interface.
//
// One UdpTransport instance serves ONE local process (unlike SimNetwork,
// which simulates the whole universe in-process): it owns a non-blocking
// UDP socket bound to a local endpoint, a per-peer address map, and an
// epoll instance its owner's event loop waits on. The dvsd daemon runs a
// full VS/DVS/TO node over one of these; the transport-conformance suite
// runs several in one test process over loopback.
//
// Framing reuses the exact wire format of the simulated network:
//   * every datagram starts with a fixed header [kUdpMagic u8][sender u32]
//     so the receiver resolves the logical sender without trusting (or
//     even consulting) the source address — rebinding after a crash-restart
//     or NAT rewriting cannot confuse process identity;
//   * sends within one flush window coalesce per destination into the
//     net::Batcher BATCH envelope (single-frame flushes travel raw), and
//     the receive path salvage-decodes exactly like SimNetwork, so the
//     layers above see identical per-message handler callbacks over
//     simulated and real links.
//
// Loss model: UDP is already best-effort; on top of it a socket-level drop
// knob (set_drop_probability) discards outbound datagrams at random — the
// process-level fault injector in scripts/cluster.sh uses it as an
// iptables-style drop without needing privileges.
//
// Threading: single-owner. All methods must be called from the thread that
// runs the event loop; handlers are dispatched synchronously from drain().
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/serialize.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace dvs::net {

/// First byte of every datagram; outside both the vsys wire Tag range and
/// the BATCH tag, so stray traffic is rejected before any decode.
inline constexpr std::uint8_t kUdpMagic = 0xDA;
/// Header bytes prepended to every datagram: magic + u32 sender id.
inline constexpr std::size_t kUdpHeaderBytes = 5;

/// A peer's UDP address (IPv4 dotted quad; "127.0.0.1" for localhost
/// clusters).
struct UdpEndpoint {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const UdpEndpoint&, const UdpEndpoint&) = default;
  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

struct UdpConfig {
  /// The one local process this transport serves.
  ProcessId self{};
  /// Local bind address. Port 0 asks the kernel for a free port (tests);
  /// read it back with local_port().
  std::string bind_host = "127.0.0.1";
  std::uint16_t bind_port = 0;
  /// Largest payload one send() may carry (header excluded). Loopback
  /// takes ~64KiB; keep headroom for the header and IP/UDP overhead.
  std::size_t max_datagram = 60 * 1024;
  /// Coalesce same-destination sends between flush() calls into BATCH
  /// envelopes (net/batcher.h) — same framing as the simulator.
  bool batching = true;
  std::size_t batch_max_msgs = 16;
  /// Byte cap per envelope; clamped to max_datagram.
  std::size_t batch_max_bytes = 8192;
  /// Send-side random drop (the fault-injection knob); seeded
  /// deterministically so a dropping run is reproducible.
  double drop_probability = 0.0;
  std::uint64_t drop_seed = 1;
  /// Kernel receive buffer request (SO_RCVBUF); 0 leaves the default.
  int so_rcvbuf = 1 << 20;
};

/// Counters specific to the real-socket path, published as udp.* metrics
/// next to the shared net.* NetStats.
struct UdpStats {
  std::uint64_t sendto_errors = 0;   // sendto() failed (EAGAIN included)
  std::uint64_t recv_errors = 0;     // recvfrom() failed (EAGAIN excluded)
  std::uint64_t dropped_knob = 0;    // outbound drops by the drop knob
  std::uint64_t dropped_unmapped = 0;  // sends to ids with no endpoint
  std::uint64_t bad_header = 0;      // inbound datagrams failing magic/header
  std::uint64_t recv_datagrams = 0;  // well-formed datagrams received
  std::uint64_t recv_bytes = 0;      // payload bytes received (headers off)
  std::uint64_t flushes = 0;         // flush() calls that wrote anything
};

class UdpTransport : public Transport {
 public:
  /// Opens and binds the socket (throws std::runtime_error on failure) and
  /// creates the epoll instance. `processes` is the id universe the layers
  /// above will iterate; peers gain addresses via set_peer.
  UdpTransport(UdpConfig config, ProcessSet processes);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Maps a peer id to its UDP address (self-mapping is allowed and makes
  /// self-sends loop through the real socket like any other message).
  void set_peer(ProcessId p, const UdpEndpoint& ep);

  /// The port the socket actually bound (useful with bind_port = 0).
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  // ----- Transport -----------------------------------------------------------

  /// Only the local process may attach.
  void attach(ProcessId p, Handler handler) override;
  /// `from` must be the local process.
  void send(ProcessId from, ProcessId to, const Bytes& payload) override;
  [[nodiscard]] std::size_t max_datagram_size() const override {
    return config_.max_datagram;
  }
  [[nodiscard]] const NetStats& stats() const override { return stats_; }
  [[nodiscard]] const ProcessSet& processes() const override {
    return processes_;
  }

  // ----- event-loop integration ----------------------------------------------

  /// The epoll fd the owner's loop may wait on (the transport's socket is
  /// already registered; owners add their own fds — dvsd adds its control
  /// socket).
  [[nodiscard]] int epoll_fd() const { return epoll_fd_; }
  /// The raw socket fd (registered in epoll_fd() already).
  [[nodiscard]] int socket_fd() const { return sock_fd_; }

  /// Reads every datagram currently queued on the socket and dispatches the
  /// attached handler per decoded frame. Returns frames dispatched.
  std::size_t drain();

  /// Writes every pending batch to the socket. Call once per loop
  /// iteration after the protocol layers ran (mirrors the simulator's
  /// end-of-instant sweep).
  void flush();

  /// Convenience loop step: flush pending sends, epoll-wait up to
  /// `timeout_us` for readability, then drain. Returns frames dispatched.
  std::size_t pump(std::uint64_t timeout_us);

  /// The socket-level fault-injection knob.
  void set_drop_probability(double p) { config_.drop_probability = p; }
  [[nodiscard]] double drop_probability() const {
    return config_.drop_probability;
  }

  [[nodiscard]] const UdpConfig& config() const { return config_; }
  [[nodiscard]] const UdpStats& udp_stats() const { return udp_stats_; }

  /// Publishes NetStats as net.* plus UdpStats as udp.* counters.
  void bind_metrics(obs::MetricsRegistry& metrics);

 private:
  struct PendingBatch {
    std::vector<Bytes> frames;
    std::size_t bytes = 0;
  };

  /// Encodes header + envelope and sendto()s one datagram to `to`.
  void transmit(ProcessId to, const std::vector<Bytes>& frames,
                std::size_t frame_bytes);
  void dispatch(const Bytes& datagram);

  UdpConfig config_;
  ProcessSet processes_;
  std::map<ProcessId, UdpEndpoint> peers_;
  Handler handler_;
  Rng drop_rng_;
  int sock_fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::map<ProcessId, PendingBatch> pending_;
  // Flush order = first-send order, so runs stay deterministic given a
  // deterministic upper layer.
  std::vector<ProcessId> dirty_;
  NetStats stats_;
  UdpStats udp_stats_;
  Writer wire_writer_;   // reused datagram encoder
  Bytes recv_buf_;       // reused receive buffer
  Bytes frame_scratch_;  // reused per-frame dispatch buffer
};

}  // namespace dvs::net
