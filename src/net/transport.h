// Transport: the point-to-point datagram service every protocol layer
// sends through.
//
// Two conforming backends exist:
//   * net::SimNetwork — the deterministic in-process simulator (delay,
//     jitter, loss, partitions, duplication, reordering, truncation), used
//     by every verification harness;
//   * net::UdpTransport — real non-blocking UDP sockets between OS
//     processes (src/net/udp_transport.h), used by the dvsd daemon.
// tests/net/test_transport_conformance.cpp runs the same contract suite
// against both, so protocol code written against this interface behaves
// identically over simulated and real links.
//
// Semantics every backend must provide:
//   * datagram, not stream: one send() is delivered (if at all) as one
//     handler invocation with an identical byte payload;
//   * best effort: messages may be dropped, duplicated or reordered — the
//     layers above already tolerate all three (the simulator injects them
//     deliberately, real UDP produces them for free);
//   * self-sends are delivered like any other message;
//   * payloads up to max_datagram_size() are never refused for size;
//     larger sends are dropped (counted in stats().dropped_oversize),
//     never truncated and never an exception.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

#include "common/serialize.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::net {

struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_crash = 0;
  /// Sends refused because the payload exceeded max_datagram_size().
  std::uint64_t dropped_oversize = 0;
  std::uint64_t bytes_sent = 0;
  /// Extra copies scheduled by duplication (each may still be lost to an
  /// in-flight partition like any other delivery).
  std::uint64_t duplicated = 0;
  /// Deliveries that bypassed the link FIFO clock.
  std::uint64_t reordered = 0;
  /// Payloads truncated in flight.
  std::uint64_t truncated = 0;
  /// Datagrams actually put on the wire (BATCH envelopes when batching;
  /// equals the per-copy schedule count otherwise) and their payload bytes.
  /// `sent`/`bytes_sent` keep logical-message semantics in both modes, so
  /// datagrams/wire_bytes vs sent/bytes_sent is the batching win.
  std::uint64_t datagrams = 0;
  std::uint64_t wire_bytes = 0;
  /// Batching: multi-frame BATCH envelopes put on the wire and the logical
  /// frames carried inside them (single-frame flushes travel as the raw
  /// frame and count in neither), flushes forced by the count/byte caps,
  /// and damaged envelopes the receiver had to salvage frame-by-frame.
  std::uint64_t batches = 0;
  std::uint64_t batched_msgs = 0;
  std::uint64_t batch_cap_flushes = 0;
  std::uint64_t batch_salvaged = 0;
};

class Transport {
 public:
  using Handler = std::function<void(ProcessId from, const Bytes& payload)>;

  virtual ~Transport() = default;

  /// Registers the receive handler for `p`. Must be called before traffic.
  /// Re-attaching replaces the handler (crash-restart rebuilds do this).
  virtual void attach(ProcessId p, Handler handler) = 0;

  /// Sends one datagram; the bytes are copied out, so the caller may reuse
  /// its buffer immediately.
  virtual void send(ProcessId from, ProcessId to, const Bytes& payload) = 0;

  /// Sends to every process in `targets` (including `from` if present).
  virtual void multicast(ProcessId from, const ProcessSet& targets,
                         const Bytes& payload) {
    for (ProcessId q : targets) send(from, q, payload);
  }

  /// Largest payload one send() may carry. The simulator is unbounded
  /// (size_t max); UDP backends report their socket/framing limit.
  [[nodiscard]] virtual std::size_t max_datagram_size() const {
    return std::numeric_limits<std::size_t>::max();
  }

  [[nodiscard]] virtual const NetStats& stats() const = 0;

  /// The universe of process ids this transport can address.
  [[nodiscard]] virtual const ProcessSet& processes() const = 0;
};

}  // namespace dvs::net
