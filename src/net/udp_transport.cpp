#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/batcher.h"

namespace dvs::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("UdpTransport: bad IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(UdpConfig config, ProcessSet processes)
    : config_(std::move(config)),
      processes_(std::move(processes)),
      drop_rng_(config_.drop_seed) {
  config_.batch_max_bytes = std::min(config_.batch_max_bytes,
                                     config_.max_datagram);
  sock_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (sock_fd_ < 0) {
    throw std::runtime_error(std::string("UdpTransport: socket(): ") +
                             std::strerror(errno));
  }
  if (config_.so_rcvbuf > 0) {
    // Best effort: a small rmem_max just means more kernel-side drops,
    // which the layers above already tolerate.
    ::setsockopt(sock_fd_, SOL_SOCKET, SO_RCVBUF, &config_.so_rcvbuf,
                 sizeof(config_.so_rcvbuf));
  }
  sockaddr_in addr = make_addr(config_.bind_host, config_.bind_port);
  if (::bind(sock_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(sock_fd_);
    throw std::runtime_error("UdpTransport: bind(" + config_.bind_host + ":" +
                             std::to_string(config_.bind_port) +
                             "): " + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(sock_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  local_port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const int err = errno;
    ::close(sock_fd_);
    throw std::runtime_error(std::string("UdpTransport: epoll_create1(): ") +
                             std::strerror(err));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = sock_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sock_fd_, &ev) != 0) {
    const int err = errno;
    ::close(epoll_fd_);
    ::close(sock_fd_);
    throw std::runtime_error(std::string("UdpTransport: epoll_ctl(): ") +
                             std::strerror(err));
  }
  recv_buf_.resize(config_.max_datagram + kUdpHeaderBytes + 1);
}

UdpTransport::~UdpTransport() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (sock_fd_ >= 0) ::close(sock_fd_);
}

void UdpTransport::set_peer(ProcessId p, const UdpEndpoint& ep) {
  make_addr(ep.host, ep.port);  // validate early
  peers_[p] = ep;
}

void UdpTransport::attach(ProcessId p, Handler handler) {
  if (p != config_.self) {
    throw std::logic_error(
        "UdpTransport::attach: this transport serves only " +
        config_.self.to_string());
  }
  handler_ = std::move(handler);
}

void UdpTransport::send(ProcessId from, ProcessId to, const Bytes& payload) {
  if (from != config_.self) {
    throw std::logic_error("UdpTransport::send: from must be " +
                           config_.self.to_string());
  }
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  if (payload.size() > config_.max_datagram) {
    ++stats_.dropped_oversize;
    return;
  }
  if (!peers_.contains(to)) {
    ++udp_stats_.dropped_unmapped;
    return;
  }
  if (!config_.batching) {
    transmit(to, {payload}, payload.size());
    return;
  }
  PendingBatch& batch = pending_[to];
  if (batch.frames.empty()) dirty_.push_back(to);
  batch.frames.push_back(payload);
  batch.bytes += payload.size();
  if (batch.frames.size() >= config_.batch_max_msgs ||
      batch.bytes >= config_.batch_max_bytes) {
    ++stats_.batch_cap_flushes;
    transmit(to, batch.frames, batch.bytes);
    batch.frames.clear();
    batch.bytes = 0;
  }
}

void UdpTransport::flush() {
  if (dirty_.empty()) return;
  bool wrote = false;
  // Index loop: transmit never appends to dirty_.
  for (std::size_t i = 0; i < dirty_.size(); ++i) {
    auto it = pending_.find(dirty_[i]);
    if (it == pending_.end() || it->second.frames.empty()) continue;
    transmit(it->first, it->second.frames, it->second.bytes);
    it->second.frames.clear();
    it->second.bytes = 0;
    wrote = true;
  }
  dirty_.clear();
  if (wrote) ++udp_stats_.flushes;
}

void UdpTransport::transmit(ProcessId to, const std::vector<Bytes>& frames,
                            std::size_t frame_bytes) {
  // Header first, then either the raw single frame or a BATCH envelope —
  // exactly the simulator's raw-passthrough rule, so the receive path is
  // shared byte for byte.
  wire_writer_.clear();
  wire_writer_.u8(kUdpMagic);
  wire_writer_.u32(config_.self.value());
  if (frames.size() == 1) {
    const Bytes& f = frames.front();
    wire_writer_.raw(f.data(), f.size());
  } else {
    ++stats_.batches;
    stats_.batched_msgs += frames.size();
    encode_batch_into(frames, wire_writer_);
  }
  (void)frame_bytes;
  if (config_.drop_probability > 0.0 &&
      drop_rng_.chance(config_.drop_probability)) {
    ++udp_stats_.dropped_knob;
    return;
  }
  const UdpEndpoint& ep = peers_.at(to);
  const sockaddr_in addr = make_addr(ep.host, ep.port);
  const Bytes& datagram = wire_writer_.buffer();
  const ssize_t n =
      ::sendto(sock_fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n != static_cast<ssize_t>(datagram.size())) {
    // Full send buffer, transient ENOBUFS, unreachable peer: UDP loss. The
    // protocol layers retransmit; we only count it.
    ++udp_stats_.sendto_errors;
    return;
  }
  ++stats_.datagrams;
  stats_.wire_bytes += datagram.size() - kUdpHeaderBytes;
}

std::size_t UdpTransport::drain() {
  std::size_t dispatched = 0;
  for (;;) {
    const ssize_t n =
        ::recvfrom(sock_fd_, recv_buf_.data(), recv_buf_.size(), 0, nullptr,
                   nullptr);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        ++udp_stats_.recv_errors;
      }
      if (errno == EINTR) continue;
      break;
    }
    const auto size = static_cast<std::size_t>(n);
    if (size < kUdpHeaderBytes ||
        std::to_integer<std::uint8_t>(recv_buf_[0]) != kUdpMagic) {
      ++udp_stats_.bad_header;
      continue;
    }
    ++udp_stats_.recv_datagrams;
    udp_stats_.recv_bytes += size - kUdpHeaderBytes;
    // Copy out of the reused receive buffer: dispatch() reuses
    // frame_scratch_, and handlers may send (reusing wire_writer_), so the
    // datagram must own its bytes.
    const Bytes datagram(recv_buf_.begin(),
                         recv_buf_.begin() + static_cast<std::ptrdiff_t>(size));
    const std::size_t before = stats_.delivered;
    dispatch(datagram);
    dispatched += stats_.delivered - before;
  }
  return dispatched;
}

void UdpTransport::dispatch(const Bytes& datagram) {
  if (!handler_) return;
  std::uint32_t sender = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    sender |= static_cast<std::uint32_t>(
                  std::to_integer<std::uint8_t>(datagram[1 + i]))
              << (8 * i);
  }
  const ProcessId from{sender};
  const Bytes payload(datagram.begin() + kUdpHeaderBytes, datagram.end());
  // Same delivery rule as the simulator: raw frames go straight up, BATCH
  // envelopes are salvage-decoded so a damaged tail costs exactly one
  // decode error above.
  if (!looks_like_batch(payload)) {
    ++stats_.delivered;
    handler_(from, payload);
    return;
  }
  const bool clean = visit_batch_frames(
      payload, [this, from](const std::byte* p, std::size_t len) {
        frame_scratch_.assign(p, p + len);
        ++stats_.delivered;
        handler_(from, frame_scratch_);
      });
  if (!clean) ++stats_.batch_salvaged;
}

std::size_t UdpTransport::pump(std::uint64_t timeout_us) {
  flush();
  epoll_event ev{};
  const int timeout_ms =
      static_cast<int>((timeout_us + 999) / 1000);  // round up: never spin
  const int n = ::epoll_wait(epoll_fd_, &ev, 1, timeout_ms);
  if (n <= 0) return 0;
  return drain();
}

void UdpTransport::bind_metrics(obs::MetricsRegistry& metrics) {
  metrics.add_collector([this, &metrics] {
    metrics.counter("net.sent").set(stats_.sent);
    metrics.counter("net.delivered").set(stats_.delivered);
    metrics.counter("net.bytes_sent").set(stats_.bytes_sent);
    metrics.counter("net.datagrams").set(stats_.datagrams);
    metrics.counter("net.wire_bytes").set(stats_.wire_bytes);
    metrics.counter("net.batches").set(stats_.batches);
    metrics.counter("net.batched_msgs").set(stats_.batched_msgs);
    metrics.counter("net.batch_cap_flushes").set(stats_.batch_cap_flushes);
    metrics.counter("net.batch_salvaged").set(stats_.batch_salvaged);
    metrics.counter("net.dropped_oversize").set(stats_.dropped_oversize);
    metrics.counter("udp.sendto_errors").set(udp_stats_.sendto_errors);
    metrics.counter("udp.recv_errors").set(udp_stats_.recv_errors);
    metrics.counter("udp.dropped_knob").set(udp_stats_.dropped_knob);
    metrics.counter("udp.dropped_unmapped").set(udp_stats_.dropped_unmapped);
    metrics.counter("udp.bad_header").set(udp_stats_.bad_header);
    metrics.counter("udp.recv_datagrams").set(udp_stats_.recv_datagrams);
    metrics.counter("udp.recv_bytes").set(udp_stats_.recv_bytes);
    metrics.counter("udp.flushes").set(udp_stats_.flushes);
  });
}

}  // namespace dvs::net
