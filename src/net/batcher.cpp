#include "net/batcher.h"

#include <cstddef>

namespace dvs::net {

namespace {

std::size_t varuint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

void encode_batch_into(const std::vector<Bytes>& frames, Writer& w) {
  w.u8(kBatchTag);
  w.varuint(frames.size());
  for (const Bytes& frame : frames) w.bytes_field(frame);
}

Bytes encode_batch(const std::vector<Bytes>& frames) {
  std::size_t total = 1 + varuint_size(frames.size());
  for (const Bytes& frame : frames) {
    total += varuint_size(frame.size()) + frame.size();
  }
  Writer w;
  w.reserve(total);
  encode_batch_into(frames, w);
  return w.take();
}

bool looks_like_batch(const Bytes& data) {
  return !data.empty() && static_cast<std::uint8_t>(data[0]) == kBatchTag;
}

std::vector<Bytes> decode_batch(const Bytes& data) {
  Reader r(data);
  if (r.u8() != kBatchTag) throw DecodeError("not a BATCH envelope");
  // Every frame occupies at least its one-byte length prefix, so a count
  // that cannot fit the remaining input is rejected before any allocation.
  const std::uint64_t n = r.count(1);
  std::vector<Bytes> frames;
  frames.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) frames.push_back(r.bytes_field());
  r.expect_exhausted();
  return frames;
}

SalvagedBatch salvage_batch(const Bytes& data) {
  SalvagedBatch out;
  out.clean =
      visit_batch_frames(data, [&out](const std::byte* p, std::size_t len) {
        out.frames.emplace_back(p, p + len);
      });
  return out;
}

}  // namespace dvs::net
