// BATCH envelope codec.
//
// When batching is enabled, SimNetwork coalesces every message a process
// emits to the same destination within one simulated instant (plus an
// optional window) into a single framed BATCH envelope, so the per-datagram
// delay/jitter/FIFO machinery runs once per envelope instead of once per
// logical message. The envelope is a flat frame list:
//
//   u8      kBatchTag        (0xB5 — outside the vsys wire Tag range)
//   varuint frame count
//   per frame: varuint length, then that many payload bytes
//
// Two decoders share the format:
//   * decode_batch — strict. Any malformation (bad tag, short frame,
//     trailing bytes, overlong count) throws DecodeError. This is the codec
//     contract the property fuzz suite locks down: encode→decode→re-encode
//     is byte-identical and corrupted envelopes never escape DecodeError.
//   * salvage_batch — lenient, used on the delivery path. The network can
//     truncate an envelope in flight; the receiver should still get every
//     frame that survived intact, with the damaged tail delivered as one
//     final corrupt frame so the layer above counts a decode error exactly
//     like it would for an unbatched truncated datagram. Never throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serialize.h"

namespace dvs::net {

inline constexpr std::uint8_t kBatchTag = 0xB5;

/// Encodes `frames` into one BATCH envelope.
[[nodiscard]] Bytes encode_batch(const std::vector<Bytes>& frames);

/// Appends the envelope for `frames` to `w` (hot paths reuse one Writer).
void encode_batch_into(const std::vector<Bytes>& frames, Writer& w);

/// True iff `data` starts with the BATCH tag (cheap dispatch test; says
/// nothing about whether the rest of the envelope is well-formed).
[[nodiscard]] bool looks_like_batch(const Bytes& data);

/// Strict decode: the exact inverse of encode_batch. Throws DecodeError on
/// any malformation, including trailing bytes.
[[nodiscard]] std::vector<Bytes> decode_batch(const Bytes& data);

struct SalvagedBatch {
  std::vector<Bytes> frames;
  /// False iff the envelope was damaged: the final frame (when present) then
  /// holds the unparseable tail bytes verbatim.
  bool clean = true;
};

/// Lenient decode for the delivery path: extracts every intact frame, then
/// delivers whatever damaged tail remains as one final corrupt frame. A
/// datagram that does not even carry the BATCH tag comes back whole as a
/// single (corrupt) frame. Never throws.
[[nodiscard]] SalvagedBatch salvage_batch(const Bytes& data);

namespace detail {

/// Non-throwing varuint parse over raw bytes; false on truncation/overflow.
inline bool parse_varuint(const Bytes& data, std::size_t& pos,
                          std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64 || pos >= data.size()) return false;
    const auto b = static_cast<std::uint8_t>(data[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
}

}  // namespace detail

/// Allocation-free form of salvage_batch for the hot delivery path: calls
/// visit(ptr, len) for every intact frame in envelope order, then once more
/// for the damaged tail if the envelope was corrupted. Returns true iff the
/// envelope parsed cleanly. The (ptr, len) ranges alias `data` and are only
/// valid inside the visit call.
template <typename Visitor>
bool visit_batch_frames(const Bytes& data, Visitor&& visit) {
  if (!looks_like_batch(data)) {
    if (!data.empty()) visit(data.data(), data.size());
    return false;
  }
  std::size_t pos = 1;
  std::uint64_t count = 0;
  const bool have_count = detail::parse_varuint(data, pos, count);
  std::uint64_t parsed = 0;
  while (have_count && parsed < count) {
    const std::size_t frame_start = pos;
    std::uint64_t len = 0;
    if (!detail::parse_varuint(data, pos, len) || len > data.size() - pos) {
      // Length prefix damaged or frame cut short: stop at the last intact
      // frame; the tail (from the damaged prefix on) is delivered below.
      pos = frame_start;
      break;
    }
    visit(data.data() + pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    ++parsed;
  }
  if (!have_count || parsed < count || pos != data.size()) {
    // Truncated mid-frame, short of the advertised count, or trailing junk:
    // surface the damaged tail as one corrupt frame so the layer above sees
    // exactly one decode error for the damaged region.
    if (pos < data.size()) visit(data.data() + pos, data.size() - pos);
    return false;
  }
  return true;
}

}  // namespace dvs::net
