// Simulated partitionable network.
//
// Point-to-point message transport between processes with per-link delay
// (base + exponential jitter), optional loss, crash/pause injection and a
// partition oracle. Links are FIFO (delivery times are monotone per ordered
// pair, like a TCP stream); connectivity is evaluated both when a message
// is sent and when it is delivered, so messages in flight across a
// partition event are lost — exactly the behaviour a view-synchronous layer
// must tolerate.
//
// Payloads are encoded byte buffers: every protocol above this layer
// serializes its messages (common/serialize.h), keeping the stack honest
// about what crosses the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/types.h"
#include "common/view.h"
#include "sim/simulator.h"

namespace dvs::net {

struct NetConfig {
  /// Fixed propagation delay per message.
  sim::Time base_delay = 1 * sim::kMillisecond;
  /// Mean of the additional exponential jitter (0 = no jitter).
  double jitter_mean_us = 500.0;
  /// Probability a message is silently dropped (checked at send time).
  double drop_probability = 0.0;
};

struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_crash = 0;
  std::uint64_t bytes_sent = 0;
};

class SimNetwork {
 public:
  using Handler = std::function<void(ProcessId from, const Bytes& payload)>;

  SimNetwork(sim::Simulator& sim, Rng& rng, NetConfig config,
             ProcessSet processes);

  /// Registers the receive handler for `p`. Must be called before traffic.
  void attach(ProcessId p, Handler handler);

  /// Sends a datagram; self-sends are delivered (with delay) too.
  void send(ProcessId from, ProcessId to, Bytes payload);

  /// Sends to every process in `targets` (including `from` if present).
  void multicast(ProcessId from, const ProcessSet& targets, Bytes payload);

  // ----- fault injection -----------------------------------------------------

  /// Splits connectivity into the given groups; processes in different
  /// groups cannot communicate. Processes not mentioned form an implicit
  /// singleton group each.
  void set_partition(const std::vector<ProcessSet>& groups);

  /// Restores full connectivity.
  void heal();

  /// Pauses a process: all traffic to and from it is dropped. Models a
  /// crash in the asynchronous sense (indistinguishable from a very slow
  /// process); recovery resumes with state intact.
  void pause(ProcessId p);
  void resume(ProcessId p);
  [[nodiscard]] bool paused(ProcessId p) const { return paused_.contains(p); }

  /// True iff a and b are currently in the same connectivity component and
  /// neither is paused.
  [[nodiscard]] bool connected(ProcessId a, ProcessId b) const;

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  [[nodiscard]] const ProcessSet& processes() const { return processes_; }

 private:
  [[nodiscard]] int group_of(ProcessId p) const;

  sim::Simulator& sim_;
  Rng& rng_;
  NetConfig config_;
  ProcessSet processes_;
  std::map<ProcessId, Handler> handlers_;
  std::map<ProcessId, int> partition_group_;  // empty = fully connected
  ProcessSet paused_;
  // FIFO link enforcement: earliest permissible delivery time per link.
  std::map<std::pair<ProcessId, ProcessId>, sim::Time> link_clock_;
  NetStats stats_;
};

}  // namespace dvs::net
