// Simulated partitionable network.
//
// Point-to-point message transport between processes with per-link delay
// (base + exponential jitter), optional loss, crash/pause injection and a
// partition oracle. Links are FIFO (delivery times are monotone per ordered
// pair, like a TCP stream); connectivity is evaluated both when a message
// is sent and when it is delivered, so messages in flight across a
// partition event are lost — exactly the behaviour a view-synchronous layer
// must tolerate.
//
// Beyond loss, the network injects the classic message anomalies an
// adversarial transport can produce, each behind its own NetConfig knob:
//   * duplication — a message is delivered again, up to max_duplicates
//     extra copies, each with its own delay;
//   * bounded reordering — a message bypasses the link's FIFO clock and may
//     arrive up to reorder_window after its natural slot, overtaken by
//     later sends (models UDP-style reordering; off by default so links
//     stay TCP-like);
//   * payload truncation — the payload is cut to a proper prefix in flight
//     (models a corrupted frame; receivers must treat it as a decode error,
//     never crash).
// The fault knobs can also be flipped mid-run (set_drop_probability /
// set_duplicate_probability), which net::FaultPlan uses to script
// drop-windows and dup-bursts.
//
// Payloads are encoded byte buffers: every protocol above this layer
// serializes its messages (common/serialize.h), keeping the stack honest
// about what crosses the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/types.h"
#include "common/view.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace dvs::net {

struct NetConfig {
  /// Fixed propagation delay per message.
  sim::Time base_delay = 1 * sim::kMillisecond;
  /// Mean of the additional exponential jitter (0 = no jitter).
  double jitter_mean_us = 500.0;
  /// Probability a message is silently dropped (checked at send time).
  double drop_probability = 0.0;
  /// Probability each extra copy of a message is delivered, evaluated up to
  /// max_duplicates times per send (so k extra copies have probability
  /// duplicate_probability^k). Duplicates respect the same FIFO/reorder
  /// rules as the original.
  double duplicate_probability = 0.0;
  /// Hard cap on extra copies per send.
  std::size_t max_duplicates = 1;
  /// Probability a delivery bypasses the link FIFO clock: it is scheduled
  /// at send-time + delay + uniform(0, reorder_window) without consulting
  /// or advancing the per-link monotone clock, so later sends can overtake
  /// it. 0 keeps every link strictly FIFO.
  double reorder_probability = 0.0;
  sim::Time reorder_window = 5 * sim::kMillisecond;
  /// Probability the payload is truncated to a random proper prefix in
  /// flight (delivered corrupted rather than dropped). With batching on the
  /// fault applies to the envelope actually on the wire, so a single
  /// truncation can damage the tail of a whole batch (the receiver salvages
  /// the intact prefix frames — net/batcher.h).
  double truncate_probability = 0.0;

  // ----- WAN topology --------------------------------------------------------
  /// Region of each process, indexed by ProcessId::value() (processes past
  /// the end of the vector live in region 0), and the inter-region one-way
  /// base-delay matrix in simulated microseconds. When `region_delay` is
  /// nonempty it replaces base_delay on every link — the WAN latency matrix
  /// of a workload scenario (src/workload/scenario.h) — and the exponential
  /// jitter still adds on top. The matrix must be square and cover every
  /// assigned region (checked at construction).
  std::vector<std::size_t> process_region;
  std::vector<std::vector<sim::Time>> region_delay;

  // ----- batching ------------------------------------------------------------
  /// Coalesce every message a process sends to the same destination within
  /// one flush window into a single framed BATCH envelope (net/batcher.h),
  /// so delay/jitter/FIFO machinery runs once per envelope instead of once
  /// per logical message. Decoded transparently on delivery: handlers see
  /// the same per-message callbacks either way.
  bool batching = false;
  /// How long a batch stays open after its first message. 0 flushes at the
  /// end of the current simulated instant — same-tick coalescing only,
  /// adding no latency beyond the event queue.
  sim::Time batch_window = 0;
  /// A batch reaching either cap is flushed immediately.
  std::size_t batch_max_msgs = 16;
  std::size_t batch_max_bytes = 8192;

  // ----- payload slab --------------------------------------------------------
  /// Carry in-flight payloads in recycled MsgArena slots instead of a fresh
  /// heap buffer per send. The observable behaviour is identical (the
  /// receiver sees the same bytes); the win is that steady-state traffic
  /// stops allocating. Off = the legacy copy-per-send path (the bench's
  /// heap axis).
  bool payload_arena = true;
  /// Buffer capacity the arena may retain across releases; bursts beyond it
  /// degrade to plain malloc/free (counted, never refused).
  std::size_t arena_max_retained = 1024;
};

// NetStats lives in net/transport.h — it is the stats contract every
// Transport backend shares.

class SimNetwork : public Transport {
 public:
  using Handler = Transport::Handler;

  SimNetwork(sim::Simulator& sim, Rng& rng, NetConfig config,
             ProcessSet processes);

  /// Registers the receive handler for `p`. Must be called before traffic.
  void attach(ProcessId p, Handler handler) override;

  /// Sends a datagram; self-sends are delivered (with delay) too. The bytes
  /// are copied out (into a recycled arena slot by default), so the caller
  /// may reuse its buffer immediately — the broadcast hot paths hand the
  /// same scratch encoding to every destination.
  void send(ProcessId from, ProcessId to, const Bytes& payload) override;

  /// Sends to every process in `targets` (including `from` if present).
  void multicast(ProcessId from, const ProcessSet& targets,
                 const Bytes& payload) override;

  // ----- group channels (sharded clusters) -----------------------------------
  //
  // A sharded cluster (src/shard) runs many independent protocol columns
  // over one simulated network. Each column gets its own *channel*: its own
  // handlers, FIFO link clocks, batch state and — crucially — its own Rng
  // seeded per group, so the fault-draw sequence one shard observes never
  // depends on sibling traffic. The group tag travels out-of-band here
  // (structural demux, unlike the in-band wire.h GroupFrame the real
  // transports use) because an in-band prefix would change simulated
  // payload sizes and thereby truncation offsets and batch byte caps —
  // breaking the K=1 byte-identity differential. Faults stay process-level
  // and shared: pause/partition affect every channel of a process, exactly
  // like unplugging a machine. Channel 0 is the legacy/default channel that
  // attach()/send() address; stats_ aggregates all channels (pool-level).

  /// Creates channel `group` with its own fault Rng. Must precede any
  /// attach_group/send_group for it; group 0 and re-opening are errors.
  void open_group(std::uint32_t group, std::uint64_t seed);
  void attach_group(std::uint32_t group, ProcessId p, Handler handler);
  /// Removes p's handler on channel `group` (no-op if absent). Used by shard
  /// re-provisioning: when a column migrates off a departed process, its old
  /// handler would otherwise dangle once the column's node objects die.
  void detach_group(std::uint32_t group, ProcessId p);
  void send_group(std::uint32_t group, ProcessId from, ProcessId to,
                  const Bytes& payload);
  void multicast_group(std::uint32_t group, ProcessId from,
                       const ProcessSet& targets, const Bytes& payload);
  [[nodiscard]] bool has_group(std::uint32_t group) const {
    return groups_.contains(group);
  }

  // ----- fault injection -----------------------------------------------------

  /// Splits connectivity into the given groups; processes in different
  /// groups cannot communicate. Processes not mentioned form an implicit
  /// singleton group each.
  void set_partition(const std::vector<ProcessSet>& groups);

  /// Restores full connectivity. Pauses are untouched: heal() after pause()
  /// reconnects exactly the non-paused links.
  void heal();

  /// Pauses a process: all traffic to and from it is dropped. This is what
  /// FaultPlan's kCrash injects — *pause* semantics: a crash in the
  /// asynchronous sense (indistinguishable from a very slow process), whose
  /// resume() comes back with volatile state intact. A genuine
  /// crash-restart — volatile state lost, the node rebuilt from stable
  /// storage — is the separate kRestart fault, handled above the network
  /// (tosys::Cluster::restart via FaultPlan::ScheduleHooks).
  void pause(ProcessId p);
  void resume(ProcessId p);
  [[nodiscard]] bool paused(ProcessId p) const { return paused_.contains(p); }

  /// Mid-run fault-knob overrides (drop-windows and dup-bursts of a
  /// FaultPlan flip these and restore the previous value afterwards).
  void set_drop_probability(double p) { config_.drop_probability = p; }
  void set_duplicate_probability(double p) {
    config_.duplicate_probability = p;
  }

  /// True iff a and b are currently in the same connectivity component and
  /// neither is paused.
  [[nodiscard]] bool connected(ProcessId a, ProcessId b) const;

  [[nodiscard]] const NetConfig& config() const { return config_; }
  [[nodiscard]] const NetStats& stats() const override { return stats_; }
  [[nodiscard]] const ProcessSet& processes() const override {
    return processes_;
  }
  /// The in-flight payload slab (recycling stats; see common/arena.h).
  [[nodiscard]] const MsgArena& arena() const { return arena_; }

  /// Registers a collector that publishes NetStats as net.* counters plus
  /// net.paused / net.partition_groups gauges. The network must outlive the
  /// registry's last collect().
  void bind_metrics(obs::MetricsRegistry& metrics);

 private:
  // Open batches per (from, to) link; flushed by a scheduled event at the
  // end of the window or synchronously when a cap is hit. Keyed by the
  // packed link id (hot path: one hash lookup per logical send); flushed
  // in-place so the frames vector keeps its capacity across ticks.
  struct PendingBatch {
    // Exactly one of the two frame stores is used, per config_.payload_arena:
    // arena handles (recycled slots, no per-frame allocation) or owned
    // buffers (the legacy heap axis).
    std::vector<MsgArena::Handle> handles;
    std::vector<Bytes> frames;
    std::size_t bytes = 0;
    bool flush_scheduled = false;

    [[nodiscard]] std::size_t frame_count() const {
      return handles.size() + frames.size();
    }
  };

  /// Everything that must be independent per group so channels cannot
  /// perturb each other: handlers, FIFO clocks, batch state, scratch, and
  /// (for non-default channels) a dedicated fault Rng. Faults (pause /
  /// partition), stats and the payload arena stay process- / network-global.
  struct Channel {
    // Engaged on group channels; the default channel draws from the
    // injected rng_ so pre-sharding behaviour is bit-for-bit unchanged.
    std::optional<Rng> rng;
    std::map<ProcessId, Handler> handlers;
    // FIFO link enforcement: earliest permissible delivery time per link.
    std::map<std::pair<ProcessId, ProcessId>, sim::Time> link_clock;
    std::unordered_map<std::uint64_t, PendingBatch> pending;
    // With batch_window == 0 every dirty link is flushed by one
    // end-of-instant sweep event (in first-message order, so runs stay
    // deterministic) instead of one scheduled event per link per instant.
    std::vector<std::pair<ProcessId, ProcessId>> dirty;
    bool sweep_scheduled = false;
    // Reused buffer for handing envelope frames to handlers without a fresh
    // allocation per frame (handlers decode synchronously).
    Bytes frame_scratch;
    // Reused encoder for multi-frame envelopes (arena mode) and scratch for
    // the rare in-flight truncation mutation.
    Writer batch_writer;
    Bytes trunc_scratch;
  };

  [[nodiscard]] int group_of(ProcessId p) const;
  /// WAN region of p per config_.process_region (region 0 when unmapped).
  [[nodiscard]] std::size_t region_of(ProcessId p) const;
  /// Base propagation delay for the (from, to) link: the region matrix when
  /// configured, base_delay otherwise.
  [[nodiscard]] sim::Time link_base_delay(ProcessId from, ProcessId to) const;
  /// The channel's fault Rng (the injected rng_ on the default channel).
  [[nodiscard]] Rng& chan_rng(Channel& ch) {
    return ch.rng.has_value() ? *ch.rng : rng_;
  }
  [[nodiscard]] Channel& group_channel(std::uint32_t group);
  void send_on(Channel& ch, ProcessId from, ProcessId to,
               const Bytes& payload);
  void schedule_delivery(Channel& ch, ProcessId from, ProcessId to,
                         const Bytes& payload);
  /// The delivery-time half of schedule_delivery: connectivity re-check,
  /// handler dispatch, envelope salvage. Shared by the arena-handle and
  /// legacy heap closures.
  void deliver_payload(Channel& ch, ProcessId from, ProcessId to,
                       const Bytes& payload);
  void enqueue_batch(Channel& ch, ProcessId from, ProcessId to,
                     const Bytes& payload);
  void flush_batch(Channel& ch, ProcessId from, ProcessId to);
  void flush_all_batches(Channel& ch);

  /// Packed (from, to) key for the O(1) per-send batch lookup.
  static std::uint64_t link_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(from.value()) << 32) |
           static_cast<std::uint64_t>(to.value());
  }

  sim::Simulator& sim_;
  Rng& rng_;
  NetConfig config_;
  ProcessSet processes_;
  std::map<ProcessId, int> partition_group_;  // empty = fully connected
  ProcessSet paused_;
  // The legacy/unsharded channel (attach/send/multicast) plus one channel
  // per opened group. node-based map: scheduled closures hold Channel*
  // across inserts, so addresses must be stable.
  Channel default_;
  std::map<std::uint32_t, Channel> groups_;
  NetStats stats_;
  // Recycled in-flight payload slab (and the batch frames' store when
  // payload_arena is on). Shared by all channels — slot handles are
  // channel-agnostic and acquisition order cannot leak across channels'
  // observable behaviour (the bytes delivered are identical either way).
  MsgArena arena_;
  // Batch fill (frames per flush, single-frame flushes included), published
  // when batching is on.
  obs::Histogram* batch_fill_ = nullptr;
};

}  // namespace dvs::net
