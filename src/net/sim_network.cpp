#include "net/sim_network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dvs::net {

SimNetwork::SimNetwork(sim::Simulator& sim, Rng& rng, NetConfig config,
                       ProcessSet processes)
    : sim_(sim),
      rng_(rng),
      config_(config),
      processes_(std::move(processes)) {}

void SimNetwork::attach(ProcessId p, Handler handler) {
  if (!processes_.contains(p)) {
    throw std::logic_error("attach: unknown process " + p.to_string());
  }
  handlers_[p] = std::move(handler);
}

int SimNetwork::group_of(ProcessId p) const {
  auto it = partition_group_.find(p);
  return it == partition_group_.end() ? -1 : it->second;
}

bool SimNetwork::connected(ProcessId a, ProcessId b) const {
  if (paused_.contains(a) || paused_.contains(b)) return false;
  if (partition_group_.empty()) return true;
  const int ga = group_of(a);
  const int gb = group_of(b);
  // Unmentioned processes are singleton groups: connected only to self.
  if (ga == -1 || gb == -1) return a == b;
  return ga == gb;
}

void SimNetwork::schedule_delivery(ProcessId from, ProcessId to,
                                   Bytes payload) {
  sim::Time delay = config_.base_delay;
  if (config_.jitter_mean_us > 0.0) {
    delay += static_cast<sim::Time>(rng_.exponential(config_.jitter_mean_us));
  }
  sim::Time at = sim_.now() + delay;
  if (config_.reorder_probability > 0.0 &&
      rng_.chance(config_.reorder_probability)) {
    // Reordered delivery: bypass the link clock entirely — later sends can
    // overtake this one within the bounded window.
    if (config_.reorder_window > 0) {
      at += static_cast<sim::Time>(
          rng_.below(static_cast<std::size_t>(config_.reorder_window) + 1));
    }
    ++stats_.reordered;
  } else {
    // FIFO per ordered pair: never deliver before an earlier send on the
    // link.
    auto& clock = link_clock_[{from, to}];
    at = std::max(at, clock + 1);
    clock = at;
  }
  sim_.schedule_at(at, [this, from, to, payload = std::move(payload)] {
    // Re-check connectivity at delivery: partitions and pauses that
    // happened in flight lose the message.
    if (!connected(from, to)) {
      ++stats_.dropped_partition;
      return;
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) return;
    ++stats_.delivered;
    it->second(from, payload);
  });
}

void SimNetwork::send(ProcessId from, ProcessId to, Bytes payload) {
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  if (paused_.contains(from) || paused_.contains(to)) {
    ++stats_.dropped_crash;
    return;
  }
  if (!connected(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    ++stats_.dropped_random;
    return;
  }
  if (config_.truncate_probability > 0.0 && !payload.empty() &&
      rng_.chance(config_.truncate_probability)) {
    // Corrupt rather than drop: deliver a proper prefix (possibly empty).
    payload.resize(rng_.below(payload.size()));
    ++stats_.truncated;
  }
  // Extra copies first decide how many, then every copy (original included)
  // is scheduled through the same delay/reorder machinery.
  std::size_t extra = 0;
  while (extra < config_.max_duplicates &&
         config_.duplicate_probability > 0.0 &&
         rng_.chance(config_.duplicate_probability)) {
    ++extra;
  }
  stats_.duplicated += extra;
  for (std::size_t copy = 0; copy < extra; ++copy) {
    schedule_delivery(from, to, payload);
  }
  schedule_delivery(from, to, std::move(payload));
}

void SimNetwork::multicast(ProcessId from, const ProcessSet& targets,
                           Bytes payload) {
  for (ProcessId to : targets) {
    send(from, to, payload);
  }
}

void SimNetwork::set_partition(const std::vector<ProcessSet>& groups) {
  partition_group_.clear();
  int index = 0;
  for (const ProcessSet& group : groups) {
    for (ProcessId p : group) {
      if (partition_group_.contains(p)) {
        throw std::logic_error("set_partition: process in two groups");
      }
      partition_group_[p] = index;
    }
    ++index;
  }
}

void SimNetwork::heal() { partition_group_.clear(); }

void SimNetwork::bind_metrics(obs::MetricsRegistry& metrics) {
  metrics.add_collector([this, &metrics] {
    metrics.counter("net.sent").set(stats_.sent);
    metrics.counter("net.delivered").set(stats_.delivered);
    metrics.counter("net.dropped_random").set(stats_.dropped_random);
    metrics.counter("net.dropped_partition").set(stats_.dropped_partition);
    metrics.counter("net.dropped_crash").set(stats_.dropped_crash);
    metrics.counter("net.bytes_sent").set(stats_.bytes_sent);
    metrics.counter("net.duplicated").set(stats_.duplicated);
    metrics.counter("net.reordered").set(stats_.reordered);
    metrics.counter("net.truncated").set(stats_.truncated);
    metrics.gauge("net.paused").set(
        static_cast<std::int64_t>(paused_.size()));
    int groups = 0;
    for (const auto& [p, g] : partition_group_) groups = std::max(groups, g + 1);
    metrics.gauge("net.partition_groups").set(groups);
  });
}

void SimNetwork::pause(ProcessId p) { paused_.insert(p); }

void SimNetwork::resume(ProcessId p) { paused_.erase(p); }

}  // namespace dvs::net
