#include "net/sim_network.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/batcher.h"

namespace dvs::net {

SimNetwork::SimNetwork(sim::Simulator& sim, Rng& rng, NetConfig config,
                       ProcessSet processes)
    : sim_(sim),
      rng_(rng),
      config_(config),
      processes_(std::move(processes)),
      arena_(config.arena_max_retained) {
  if (!config_.region_delay.empty()) {
    const std::size_t regions = config_.region_delay.size();
    for (const auto& row : config_.region_delay) {
      if (row.size() != regions) {
        throw std::logic_error("SimNetwork: region_delay matrix not square");
      }
    }
    for (ProcessId p : processes_) {
      if (region_of(p) >= regions) {
        throw std::logic_error("SimNetwork: process " + p.to_string() +
                               " assigned to region outside the delay matrix");
      }
    }
  }
}

void SimNetwork::attach(ProcessId p, Handler handler) {
  if (!processes_.contains(p)) {
    throw std::logic_error("attach: unknown process " + p.to_string());
  }
  default_.handlers[p] = std::move(handler);
}

void SimNetwork::open_group(std::uint32_t group, std::uint64_t seed) {
  if (group == 0) {
    throw std::logic_error("open_group: group 0 is the default channel");
  }
  auto [it, inserted] = groups_.try_emplace(group);
  if (!inserted) {
    throw std::logic_error("open_group: group already open");
  }
  it->second.rng.emplace(seed);
}

SimNetwork::Channel& SimNetwork::group_channel(std::uint32_t group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    throw std::logic_error("group channel not open: " + std::to_string(group));
  }
  return it->second;
}

void SimNetwork::attach_group(std::uint32_t group, ProcessId p,
                              Handler handler) {
  if (!processes_.contains(p)) {
    throw std::logic_error("attach_group: unknown process " + p.to_string());
  }
  group_channel(group).handlers[p] = std::move(handler);
}

void SimNetwork::detach_group(std::uint32_t group, ProcessId p) {
  group_channel(group).handlers.erase(p);
}

int SimNetwork::group_of(ProcessId p) const {
  auto it = partition_group_.find(p);
  return it == partition_group_.end() ? -1 : it->second;
}

bool SimNetwork::connected(ProcessId a, ProcessId b) const {
  if (paused_.contains(a) || paused_.contains(b)) return false;
  if (partition_group_.empty()) return true;
  const int ga = group_of(a);
  const int gb = group_of(b);
  // Unmentioned processes are singleton groups: connected only to self.
  if (ga == -1 || gb == -1) return a == b;
  return ga == gb;
}

std::size_t SimNetwork::region_of(ProcessId p) const {
  const std::size_t i = p.value();
  return i < config_.process_region.size() ? config_.process_region[i] : 0;
}

sim::Time SimNetwork::link_base_delay(ProcessId from, ProcessId to) const {
  if (config_.region_delay.empty()) return config_.base_delay;
  return config_.region_delay[region_of(from)][region_of(to)];
}

void SimNetwork::schedule_delivery(Channel& ch, ProcessId from, ProcessId to,
                                   const Bytes& payload) {
  Rng& rng = chan_rng(ch);
  sim::Time delay = link_base_delay(from, to);
  if (config_.jitter_mean_us > 0.0) {
    delay += static_cast<sim::Time>(rng.exponential(config_.jitter_mean_us));
  }
  sim::Time at = sim_.now() + delay;
  if (config_.reorder_probability > 0.0 &&
      rng.chance(config_.reorder_probability)) {
    // Reordered delivery: bypass the link clock entirely — later sends can
    // overtake this one within the bounded window.
    if (config_.reorder_window > 0) {
      at += static_cast<sim::Time>(
          rng.below(static_cast<std::size_t>(config_.reorder_window) + 1));
    }
    ++stats_.reordered;
  } else {
    // FIFO per ordered pair: never deliver before an earlier send on the
    // link.
    auto& clock = ch.link_clock[{from, to}];
    at = std::max(at, clock + 1);
    clock = at;
  }
  ++stats_.datagrams;
  stats_.wire_bytes += payload.size();
  if (config_.payload_arena) {
    // The in-flight bytes ride in a recycled arena slot; the closure
    // carries only the handle (fits the simulator's inline callback
    // storage), so a steady-state send performs no heap allocation.
    const MsgArena::Handle h = arena_.acquire();
    arena_.at(h) = payload;
    Channel* chp = &ch;
    sim_.schedule_at(at, [this, chp, from, to, h] {
      deliver_payload(*chp, from, to, arena_.at(h));
      arena_.release(h);
    });
  } else {
    Channel* chp = &ch;
    sim_.schedule_at(at, [this, chp, from, to, payload] {
      deliver_payload(*chp, from, to, payload);
    });
  }
}

void SimNetwork::deliver_payload(Channel& ch, ProcessId from, ProcessId to,
                                 const Bytes& payload) {
  // Re-check connectivity at delivery: partitions and pauses that
  // happened in flight lose the message.
  if (!connected(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  auto it = ch.handlers.find(to);
  if (it == ch.handlers.end()) return;
  // Coalesced flushes travel as BATCH envelopes; single-message flushes
  // (and all unbatched traffic) travel as the raw frame. The tag byte
  // (outside the vsys wire Tag range) disambiguates on delivery.
  if (!config_.batching || !looks_like_batch(payload)) {
    ++stats_.delivered;
    it->second(from, payload);
    return;
  }
  // Salvage rather than strict-decode so an envelope truncated in flight
  // still yields its intact prefix frames; the damaged tail arrives as
  // one corrupt frame the receiver rejects like any other corrupt
  // datagram. Frames are handed up through one reused scratch buffer —
  // handlers decode synchronously and must not retain the reference.
  const bool clean = visit_batch_frames(
      payload, [this, &ch, from, &it](const std::byte* p, std::size_t len) {
        ch.frame_scratch.assign(p, p + len);
        ++stats_.delivered;
        it->second(from, ch.frame_scratch);
      });
  if (!clean) ++stats_.batch_salvaged;
}

void SimNetwork::enqueue_batch(Channel& ch, ProcessId from, ProcessId to,
                               const Bytes& payload) {
  PendingBatch& batch = ch.pending[link_key(from, to)];
  batch.bytes += payload.size();
  if (config_.payload_arena) {
    const MsgArena::Handle h = arena_.acquire();
    arena_.at(h) = payload;
    batch.handles.push_back(h);
  } else {
    batch.frames.push_back(payload);
  }
  if (batch.frame_count() >= config_.batch_max_msgs ||
      batch.bytes >= config_.batch_max_bytes) {
    ++stats_.batch_cap_flushes;
    flush_batch(ch, from, to);
    return;
  }
  if (batch.flush_scheduled) return;
  batch.flush_scheduled = true;
  Channel* chp = &ch;
  if (config_.batch_window == 0) {
    // End-of-instant coalescing: one sweep event flushes every dirty link,
    // in the order their first message arrived (deterministic).
    ch.dirty.emplace_back(from, to);
    if (!ch.sweep_scheduled) {
      ch.sweep_scheduled = true;
      sim_.schedule_at(sim_.now(), [this, chp] { flush_all_batches(*chp); });
    }
  } else {
    sim_.schedule_at(sim_.now() + config_.batch_window,
                     [this, chp, from, to] { flush_batch(*chp, from, to); });
  }
}

void SimNetwork::flush_all_batches(Channel& ch) {
  ch.sweep_scheduled = false;
  // Index loop: flush_batch never appends to dirty, but stay safe against
  // iterator invalidation if that ever changes.
  for (std::size_t i = 0; i < ch.dirty.size(); ++i) {
    flush_batch(ch, ch.dirty[i].first, ch.dirty[i].second);
  }
  ch.dirty.clear();
}

void SimNetwork::flush_batch(Channel& ch, ProcessId from, ProcessId to) {
  auto it = ch.pending.find(link_key(from, to));
  if (it == ch.pending.end()) return;
  PendingBatch& batch = it->second;
  batch.flush_scheduled = false;
  // A cap flush may already have emptied this batch; the sweep (or a
  // window event) then finds nothing to do.
  const std::size_t n = batch.frame_count();
  if (n == 0) return;
  if (batch_fill_ != nullptr) batch_fill_->observe(n);
  Rng& rng = chan_rng(ch);
  if (config_.payload_arena) {
    // A flush that coalesced nothing goes out as the raw frame — the
    // envelope framing only pays for itself when it carries several
    // messages, and the receiver disambiguates by the tag byte. Multi-frame
    // envelopes are encoded into one reused Writer straight from the arena
    // slots, so flushing allocates nothing in steady state.
    const Bytes* datagram;
    if (n == 1) {
      datagram = &arena_.at(batch.handles.front());
    } else {
      ++stats_.batches;
      stats_.batched_msgs += n;
      ch.batch_writer.clear();
      ch.batch_writer.u8(kBatchTag);
      ch.batch_writer.varuint(n);
      for (MsgArena::Handle h : batch.handles) {
        ch.batch_writer.bytes_field(arena_.at(h));
      }
      datagram = &ch.batch_writer.buffer();
    }
    // The in-flight corruption fault applies to the datagram actually on
    // the wire: one truncation draw per datagram, potentially damaging the
    // tail of a whole batch. The mutation lands in a scratch copy so the
    // writer / arena slot stays intact.
    if (config_.truncate_probability > 0.0 && !datagram->empty() &&
        rng.chance(config_.truncate_probability)) {
      const auto keep =
          static_cast<std::ptrdiff_t>(rng.below(datagram->size()));
      ch.trunc_scratch.assign(datagram->begin(), datagram->begin() + keep);
      datagram = &ch.trunc_scratch;
      ++stats_.truncated;
    }
    schedule_delivery(ch, from, to, *datagram);
    for (MsgArena::Handle h : batch.handles) arena_.release(h);
    batch.handles.clear();  // keeps the vector's capacity for the next batch
    batch.bytes = 0;
    return;
  }
  Bytes datagram;
  if (n == 1) {
    datagram = std::move(batch.frames.front());
  } else {
    ++stats_.batches;
    stats_.batched_msgs += n;
    datagram = encode_batch(batch.frames);
  }
  batch.frames.clear();  // keeps the vector's capacity for the next batch
  batch.bytes = 0;
  // The in-flight corruption fault applies to the datagram actually on the
  // wire: one truncation draw per datagram, potentially damaging the tail
  // of a whole batch.
  if (config_.truncate_probability > 0.0 && !datagram.empty() &&
      rng.chance(config_.truncate_probability)) {
    datagram.resize(rng.below(datagram.size()));
    ++stats_.truncated;
  }
  schedule_delivery(ch, from, to, datagram);
}

void SimNetwork::send_on(Channel& ch, ProcessId from, ProcessId to,
                         const Bytes& payload) {
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  if (paused_.contains(from) || paused_.contains(to)) {
    ++stats_.dropped_crash;
    return;
  }
  if (!connected(from, to)) {
    ++stats_.dropped_partition;
    return;
  }
  Rng& rng = chan_rng(ch);
  if (config_.drop_probability > 0.0 && rng.chance(config_.drop_probability)) {
    ++stats_.dropped_random;
    return;
  }
  const Bytes* wire = &payload;
  if (!config_.batching && config_.truncate_probability > 0.0 &&
      !payload.empty() && rng.chance(config_.truncate_probability)) {
    // Corrupt rather than drop: deliver a proper prefix (possibly empty).
    // When batching, the truncation draw happens per envelope at flush
    // instead (flush_batch). The caller's buffer is const, so the mutated
    // copy lands in reused scratch.
    const auto keep = static_cast<std::ptrdiff_t>(rng.below(payload.size()));
    ch.trunc_scratch.assign(payload.begin(), payload.begin() + keep);
    wire = &ch.trunc_scratch;
    ++stats_.truncated;
  }
  // Extra copies first decide how many, then every copy (original included)
  // is scheduled through the same delay/reorder machinery. Under batching
  // the copies ride as extra frames of the same envelope.
  std::size_t extra = 0;
  while (extra < config_.max_duplicates &&
         config_.duplicate_probability > 0.0 &&
         rng.chance(config_.duplicate_probability)) {
    ++extra;
  }
  stats_.duplicated += extra;
  if (config_.batching) {
    for (std::size_t copy = 0; copy < extra; ++copy) {
      enqueue_batch(ch, from, to, *wire);
    }
    enqueue_batch(ch, from, to, *wire);
    return;
  }
  for (std::size_t copy = 0; copy < extra; ++copy) {
    schedule_delivery(ch, from, to, *wire);
  }
  schedule_delivery(ch, from, to, *wire);
}

void SimNetwork::send(ProcessId from, ProcessId to, const Bytes& payload) {
  send_on(default_, from, to, payload);
}

void SimNetwork::multicast(ProcessId from, const ProcessSet& targets,
                           const Bytes& payload) {
  for (ProcessId to : targets) {
    send_on(default_, from, to, payload);
  }
}

void SimNetwork::send_group(std::uint32_t group, ProcessId from, ProcessId to,
                            const Bytes& payload) {
  send_on(group_channel(group), from, to, payload);
}

void SimNetwork::multicast_group(std::uint32_t group, ProcessId from,
                                 const ProcessSet& targets,
                                 const Bytes& payload) {
  Channel& ch = group_channel(group);
  for (ProcessId to : targets) {
    send_on(ch, from, to, payload);
  }
}

void SimNetwork::set_partition(const std::vector<ProcessSet>& groups) {
  partition_group_.clear();
  int index = 0;
  for (const ProcessSet& group : groups) {
    for (ProcessId p : group) {
      if (partition_group_.contains(p)) {
        throw std::logic_error("set_partition: process in two groups");
      }
      partition_group_[p] = index;
    }
    ++index;
  }
}

void SimNetwork::heal() { partition_group_.clear(); }

void SimNetwork::bind_metrics(obs::MetricsRegistry& metrics) {
  metrics.add_collector([this, &metrics] {
    metrics.counter("net.sent").set(stats_.sent);
    metrics.counter("net.delivered").set(stats_.delivered);
    metrics.counter("net.dropped_random").set(stats_.dropped_random);
    metrics.counter("net.dropped_partition").set(stats_.dropped_partition);
    metrics.counter("net.dropped_crash").set(stats_.dropped_crash);
    metrics.counter("net.bytes_sent").set(stats_.bytes_sent);
    metrics.counter("net.duplicated").set(stats_.duplicated);
    metrics.counter("net.reordered").set(stats_.reordered);
    metrics.counter("net.truncated").set(stats_.truncated);
    metrics.counter("net.datagrams").set(stats_.datagrams);
    metrics.counter("net.wire_bytes").set(stats_.wire_bytes);
    metrics.counter("net.batches").set(stats_.batches);
    metrics.counter("net.batched_msgs").set(stats_.batched_msgs);
    metrics.counter("net.batch_cap_flushes").set(stats_.batch_cap_flushes);
    metrics.counter("net.batch_salvaged").set(stats_.batch_salvaged);
    const MsgArena::Stats& a = arena_.stats();
    metrics.counter("arena.acquires").set(a.acquires);
    metrics.counter("arena.reuses").set(a.reuses);
    metrics.counter("arena.exhausted_acquires").set(a.exhausted_acquires);
    metrics.counter("arena.trimmed_releases").set(a.trimmed_releases);
    metrics.gauge("arena.live").set(static_cast<std::int64_t>(a.live));
    metrics.gauge("arena.peak_live").set(
        static_cast<std::int64_t>(a.peak_live));
    metrics.gauge("arena.slots").set(static_cast<std::int64_t>(a.slots));
    metrics.gauge("net.paused").set(
        static_cast<std::int64_t>(paused_.size()));
    int groups = 0;
    for (const auto& [p, g] : partition_group_) groups = std::max(groups, g + 1);
    metrics.gauge("net.partition_groups").set(groups);
  });
  if (config_.batching) {
    // Frames per flushed envelope: how well the hot paths coalesce.
    batch_fill_ = &metrics.histogram("net.batch_fill", {1, 2, 4, 8, 16, 32});
  }
}

void SimNetwork::pause(ProcessId p) { paused_.insert(p); }

void SimNetwork::resume(ProcessId p) { paused_.erase(p); }

}  // namespace dvs::net
