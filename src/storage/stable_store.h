// Stable storage: the crash-surviving byte store underneath the write-ahead
// logs (wal.h). The paper's dynamic-voting protocol is only safe if a
// process remembers its attempted/registered view information across
// failures (Section 4; Invariants 4.1/4.2 quantify over *everything a
// process ever attempted*, not just what it currently holds in RAM) — a
// StableStore is the abstraction of "what survives a crash".
//
// Two implementations:
//   * MemStableStore — a deterministic in-memory map, for simulation. The
//     simulated machine's "disk" lives beside the simulated machine; chaos
//     sweeps stay byte-identical across --jobs because nothing here touches
//     the host OS.
//   * FileStableStore (file_store.h) — a directory of real files, for
//     benches and manual experiments.
//
// Keys are flat strings (by convention "p<process>/<layer>", e.g. "p2/dvs").
// Each key holds one append-only byte log; `replace` rewrites a key
// wholesale (snapshot compaction). Durability granularity is the append:
// every append/replace is a persistence barrier — after it returns, a crash
// loses nothing of that write. The crash-point sweep (tests/sys/
// test_crash_points.cpp) enumerates exactly these barriers via the
// barrier hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/serialize.h"

namespace dvs::storage {

/// Cumulative write/read accounting for one store (feeds the storage.*
/// metrics and the recovery benches' "WAL bytes written" axis).
struct StorageStats {
  std::uint64_t appends = 0;        // append() calls (WAL records written)
  std::uint64_t bytes_appended = 0; // bytes through append()
  std::uint64_t replaces = 0;       // replace() calls (snapshot compactions)
  std::uint64_t bytes_replaced = 0; // bytes through replace()
  std::uint64_t loads = 0;          // load() calls (recoveries read)

  /// Total bytes written to stable storage (log appends + snapshots).
  [[nodiscard]] std::uint64_t bytes_written() const {
    return bytes_appended + bytes_replaced;
  }
};

class StableStore {
 public:
  virtual ~StableStore() = default;

  /// Appends `data` to the log at `key` (creating it if absent). A
  /// persistence barrier: returns only after the bytes are durable.
  void append(const std::string& key, const Bytes& data);

  /// Replaces the entire contents of `key` with `data` (snapshot
  /// compaction). Also a persistence barrier.
  void replace(const std::string& key, const Bytes& data);

  /// Full current contents of `key`; nullopt if the key was never written.
  [[nodiscard]] std::optional<Bytes> load(const std::string& key) const;

  [[nodiscard]] const StorageStats& stats() const { return stats_; }

  /// Invoked after every completed append/replace with the key written.
  /// Test instrumentation: the crash-point sweep records (sim-time, key)
  /// pairs here to enumerate every persistence barrier of a run.
  void set_barrier_hook(std::function<void(const std::string& key)> hook) {
    barrier_hook_ = std::move(hook);
  }

 protected:
  virtual void do_append(const std::string& key, const Bytes& data) = 0;
  virtual void do_replace(const std::string& key, const Bytes& data) = 0;
  [[nodiscard]] virtual std::optional<Bytes> do_load(
      const std::string& key) const = 0;

 private:
  mutable StorageStats stats_;
  std::function<void(const std::string&)> barrier_hook_;
};

/// Deterministic in-memory stable store for simulation. A std::map keeps
/// iteration (and therefore any derived output) deterministic.
class MemStableStore final : public StableStore {
 public:
  /// All keys currently present (deterministic order), for tests.
  [[nodiscard]] std::map<std::string, Bytes> contents() const { return data_; }

  /// Test hook: overwrite a key's raw bytes (corruption injection).
  void poke(const std::string& key, Bytes data) {
    data_[key] = std::move(data);
  }

 protected:
  void do_append(const std::string& key, const Bytes& data) override;
  void do_replace(const std::string& key, const Bytes& data) override;
  [[nodiscard]] std::optional<Bytes> do_load(
      const std::string& key) const override;

 private:
  std::map<std::string, Bytes> data_;
};

}  // namespace dvs::storage
