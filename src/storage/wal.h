// Write-ahead log framing over a StableStore key.
//
// A log is a flat byte sequence of CRC-framed records:
//
//   record := magic(0xD5) u8 | type u8 | varuint len | payload | crc32 u32
//
// The CRC (reflected IEEE CRC-32, the zlib polynomial) covers everything
// from the magic byte through the payload, so a flip anywhere in a record —
// including its length field — fails the check. Readers recover the longest
// clean prefix: decoding stops at the first record whose magic, framing, or
// CRC does not verify (a torn tail after a crash, or corruption), and
// everything before it is returned intact. Record types are per-log
// namespaces chosen by each layer's journal; duplicate records are legal
// and replay must be idempotent (the layers use max-merge / set-insert
// semantics), which is what makes "append, then maybe crash, then replay"
// safe without a commit marker.
//
// Compaction: `Wal::snapshot` rewrites the whole key as a single snapshot
// record (via StableStore::replace), resetting log growth; the layer
// journals call it every `compact_every` appends and on recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "storage/stable_store.h"

namespace dvs::storage {

/// Reflected IEEE CRC-32 (the zlib polynomial 0xEDB88320), table-driven.
[[nodiscard]] std::uint32_t crc32(const std::byte* data, std::size_t size);
[[nodiscard]] std::uint32_t crc32(const Bytes& data);

/// First byte of every record.
inline constexpr std::uint8_t kWalMagic = 0xD5;

/// Appender for one log (one StableStore key).
class Wal {
 public:
  Wal(StableStore& store, std::string key) : store_(store), key_(std::move(key)) {}

  /// Appends one record whose payload is produced by `encode`.
  void append(std::uint8_t type, const std::function<void(Writer&)>& encode);

  /// Replaces the whole log with a single snapshot record (compaction).
  void snapshot(std::uint8_t type, const std::function<void(Writer&)>& encode);

  /// Records appended since the last snapshot (or construction); the layer
  /// journals compact when this crosses their threshold.
  [[nodiscard]] std::size_t records_since_snapshot() const {
    return records_since_snapshot_;
  }

  [[nodiscard]] const std::string& key() const { return key_; }

  /// Frames a single record (exposed for tests to build corrupt logs).
  [[nodiscard]] static Bytes frame(std::uint8_t type,
                                   const std::function<void(Writer&)>& encode);

 private:
  StableStore& store_;
  std::string key_;
  std::size_t records_since_snapshot_ = 0;
};

struct WalRecord {
  std::uint8_t type = 0;
  Bytes payload;
};

/// A decoded log: the longest clean prefix of records, plus whether a
/// corrupt/torn tail was discarded.
struct WalContents {
  std::vector<WalRecord> records;
  std::size_t bytes_consumed = 0;  // length of the clean prefix, in bytes
  bool corrupt_tail = false;       // true if trailing bytes failed to verify
};

/// Decodes a raw log. Never throws: corruption and truncation terminate the
/// scan, returning the verified prefix.
[[nodiscard]] WalContents read_wal(const Bytes& log);

/// Loads and decodes the log at `key`; an absent key is an empty log.
[[nodiscard]] WalContents read_wal(const StableStore& store,
                                   const std::string& key);

}  // namespace dvs::storage
