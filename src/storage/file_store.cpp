#include "storage/file_store.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dvs::storage {

namespace fs = std::filesystem;

FileStableStore::FileStableStore(std::string root) : root_(std::move(root)) {
  fs::create_directories(root_);
}

std::string FileStableStore::path_for(const std::string& key) const {
  std::string flat = key;
  for (char& c : flat) {
    if (c == '/' || c == '\\') c = '_';
  }
  return root_ + "/" + flat + "_.wal";
}

void FileStableStore::wipe() {
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wal") {
      fs::remove(entry.path());
    }
  }
}

void FileStableStore::do_append(const std::string& key, const Bytes& data) {
  std::ofstream out(path_for(key), std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("FileStableStore: cannot open " + key);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) throw std::runtime_error("FileStableStore: append failed " + key);
}

void FileStableStore::do_replace(const std::string& key, const Bytes& data) {
  const std::string final_path = path_for(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("FileStableStore: cannot open " + key);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("FileStableStore: replace failed " + key);
    }
  }
  fs::rename(tmp_path, final_path);
}

std::optional<Bytes> FileStableStore::do_load(const std::string& key) const {
  std::ifstream in(path_for(key), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw std::runtime_error("FileStableStore: load failed " + key);
  return data;
}

}  // namespace dvs::storage
