#include "storage/wal.h"

#include <array>

namespace dvs::storage {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(const std::byte* data, std::size_t size) {
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(data[i])) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

std::uint32_t crc32(const Bytes& data) { return crc32(data.data(), data.size()); }

Bytes Wal::frame(std::uint8_t type,
                 const std::function<void(Writer&)>& encode) {
  Writer payload;
  encode(payload);
  Writer record;
  record.u8(kWalMagic);
  record.u8(type);
  record.bytes_field(payload.buffer());
  const std::uint32_t crc = crc32(record.buffer());
  record.u32(crc);
  return record.take();
}

void Wal::append(std::uint8_t type,
                 const std::function<void(Writer&)>& encode) {
  store_.append(key_, frame(type, encode));
  ++records_since_snapshot_;
}

void Wal::snapshot(std::uint8_t type,
                   const std::function<void(Writer&)>& encode) {
  store_.replace(key_, frame(type, encode));
  records_since_snapshot_ = 0;
}

WalContents read_wal(const Bytes& log) {
  WalContents out;
  std::size_t offset = 0;
  while (offset < log.size()) {
    // Decode one record from log[offset..]; any framing failure (bad magic,
    // truncation mid-record, CRC mismatch) ends the clean prefix.
    Bytes tail(log.begin() + static_cast<std::ptrdiff_t>(offset), log.end());
    try {
      Reader r(tail);
      const std::uint8_t magic = r.u8();
      if (magic != kWalMagic) {
        out.corrupt_tail = true;
        break;
      }
      WalRecord rec;
      rec.type = r.u8();
      rec.payload = r.bytes_field();
      const std::size_t covered = tail.size() - r.remaining();
      const std::uint32_t want = crc32(tail.data(), covered);
      const std::uint32_t got = r.u32();
      if (want != got) {
        out.corrupt_tail = true;
        break;
      }
      offset += covered + 4;
      out.records.push_back(std::move(rec));
      out.bytes_consumed = offset;
    } catch (const DecodeError&) {
      out.corrupt_tail = true;
      break;
    }
  }
  return out;
}

WalContents read_wal(const StableStore& store, const std::string& key) {
  const std::optional<Bytes> log = store.load(key);
  if (!log.has_value()) return {};
  return read_wal(*log);
}

}  // namespace dvs::storage
