#include "storage/stable_store.h"

namespace dvs::storage {

void StableStore::append(const std::string& key, const Bytes& data) {
  do_append(key, data);
  ++stats_.appends;
  stats_.bytes_appended += data.size();
  if (barrier_hook_) barrier_hook_(key);
}

void StableStore::replace(const std::string& key, const Bytes& data) {
  do_replace(key, data);
  ++stats_.replaces;
  stats_.bytes_replaced += data.size();
  if (barrier_hook_) barrier_hook_(key);
}

std::optional<Bytes> StableStore::load(const std::string& key) const {
  ++stats_.loads;
  return do_load(key);
}

void MemStableStore::do_append(const std::string& key, const Bytes& data) {
  Bytes& log = data_[key];
  log.insert(log.end(), data.begin(), data.end());
}

void MemStableStore::do_replace(const std::string& key, const Bytes& data) {
  data_[key] = data;
}

std::optional<Bytes> MemStableStore::do_load(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dvs::storage
