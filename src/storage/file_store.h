// FileStableStore: a directory-backed StableStore for benches and manual
// experiments. Each key maps to one file under the root directory (path
// separators in keys are flattened, so "p0/dvs" becomes "p0__dvs"); append
// is an O_APPEND-style write, replace goes through a temp file + rename so
// a snapshot is either the old bytes or the new bytes, never a torn mix.
//
// Simulation never uses this class (determinism across --jobs requires the
// in-memory store); it exists so the recovery benches can measure the same
// WAL traffic against a real filesystem.
#pragma once

#include <string>

#include "storage/stable_store.h"

namespace dvs::storage {

class FileStableStore final : public StableStore {
 public:
  /// Creates `root` (and parents) if needed.
  explicit FileStableStore(std::string root);

  /// Deletes every key file under the root (fresh-disk reset for benches).
  void wipe();

  [[nodiscard]] const std::string& root() const { return root_; }

 protected:
  void do_append(const std::string& key, const Bytes& data) override;
  void do_replace(const std::string& key, const Bytes& data) override;
  [[nodiscard]] std::optional<Bytes> do_load(
      const std::string& key) const override;

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;

  std::string root_;
};

}  // namespace dvs::storage
