#include "shard/shard_chaos.h"

#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/fault_plan.h"
#include "obs/stack_tracer.h"
#include "shard/shard_cluster.h"
#include "tosys/cluster.h"

namespace dvs::shard {
namespace {

/// Mirrors tosys::run_chaos_seed's ClusterConfig assembly exactly — the
/// K=1 differential depends on both drivers building the same column.
tosys::ClusterConfig make_base(const tosys::ChaosConfig& c) {
  tosys::ClusterConfig cc;
  cc.n_processes = c.n_processes;
  cc.initial_members = c.initial_members;
  cc.net.drop_probability = c.drop_probability;
  cc.net.duplicate_probability = c.duplicate_probability;
  cc.net.max_duplicates = c.max_duplicates;
  cc.net.reorder_probability = c.reorder_probability;
  cc.net.reorder_window = c.reorder_window;
  cc.net.truncate_probability = c.truncate_probability;
  cc.net.batching = c.batching;
  cc.net.payload_arena = c.payload_arena;
  cc.vs.stability = c.watermarks ? vsys::StabilityMode::kWatermark
                                 : vsys::StabilityMode::kExplicitAck;
  cc.record_traces = true;
  cc.conformance_oracle = true;
  cc.to_options = c.to_options;
  cc.persistence =
      c.persistence || c.crashes_restart || c.plan.w_restart > 0;
  return cc;
}

/// The seeded client load: same salt, same draw sequence as
/// tosys::run_chaos_seed. `inject(i, p, uid)` places broadcast i drawn for
/// pool process p.
template <typename Inject>
void schedule_load(sim::Simulator& sim, std::uint64_t seed,
                   const tosys::ChaosConfig& c, const ProcessSet& pool,
                   Inject inject) {
  Rng load(seed ^ 0xb0adca5700150adULL);
  const std::vector<ProcessId> procs(pool.begin(), pool.end());
  std::uint64_t uid = 1;
  for (std::size_t i = 0; i < c.broadcasts; ++i) {
    const auto at = static_cast<sim::Time>(
        1 + load.below(static_cast<std::size_t>(c.plan.horizon)));
    const ProcessId p = procs[load.below(procs.size())];
    const std::uint64_t u = uid++;
    sim.schedule_at(at, [inject, i, p, u] { inject(i, p, u); });
  }
}

ShardChaosResult run_unsharded(std::uint64_t seed,
                               const ShardChaosConfig& config,
                               const ProcessSet& targets) {
  const tosys::ChaosConfig& c = config.chaos;
  const tosys::ClusterConfig cc = make_base(c);
  tosys::Cluster cluster(cc, seed);

  const net::FaultPlan plan = net::FaultPlan::random(seed, targets, c.plan);
  ShardChaosResult out;
  out.plan_text = plan.to_string();
  net::FaultPlan::ScheduleHooks hooks;
  hooks.crashes_restart = c.crashes_restart;
  if (cc.persistence) {
    hooks.restart = [&cluster](ProcessId p) { cluster.restart(p); };
  }
  plan.schedule(cluster.sim(), cluster.net(), hooks);

  schedule_load(cluster.sim(), seed, c, cluster.universe(),
                [&cluster](std::size_t, ProcessId p, std::uint64_t u) {
                  cluster.bcast(p, AppMsg{u, p, "x"});
                });

  if (c.invariant_check_period > 0) {
    for (sim::Time t = c.invariant_check_period; t < c.plan.horizon;
         t += c.invariant_check_period) {
      cluster.sim().schedule_at(
          t, [&cluster] { (void)cluster.oracle().check_invariants(); });
    }
  }

  cluster.start();
  cluster.run_for(c.plan.horizon);
  cluster.net().heal();
  for (ProcessId p : cluster.universe()) cluster.net().resume(p);
  cluster.run_for(c.settle);
  (void)cluster.oracle().check_invariants();

  if (!cluster.oracle().ok()) {
    out.ok = false;
    out.failure = "chaos seed " + std::to_string(seed) + ": " +
                  cluster.oracle().violation()->to_string();
  }

  out.orders.resize(1);
  out.orders[0].resize(c.n_processes);
  for (const tosys::Delivery& d : cluster.deliveries()) {
    out.orders[0][d.receiver.value()].push_back(d.msg.uid);
  }

  tosys::ChaosStats& s = out.stats;
  s.events_checked = cluster.oracle().events_checked();
  s.invariant_checks = cluster.oracle().invariant_checks();
  s.broadcasts = c.broadcasts;
  s.deliveries = cluster.deliveries().size();
  s.fault_events = plan.events.size();
  for (ProcessId p : cluster.universe()) {
    const auto& vstats = cluster.vs_node(p).stats();
    s.views_installed += vstats.views_installed;
    s.decode_errors += vstats.decode_errors;
    s.duplicates_suppressed += vstats.duplicates_suppressed;
  }
  const net::NetStats& ns = cluster.net().stats();
  s.net_sent = ns.sent;
  s.net_delivered = ns.delivered;
  s.duplicated = ns.duplicated;
  s.reordered = ns.reordered;
  s.truncated = ns.truncated;
  s.datagrams = ns.datagrams;
  s.batches = ns.batches;
  s.batched_msgs = ns.batched_msgs;
  s.restarts = cluster.restarts();
  if (cluster.store() != nullptr) {
    const storage::StorageStats& ss = cluster.store()->stats();
    s.wal_appends = ss.appends;
    s.wal_bytes = ss.bytes_written();
  }
  obs::publish_span_invariants(obs::check_span_invariants(cluster.trace()),
                               cluster.metrics());
  s.metrics = cluster.metrics_snapshot();
  return out;
}

ShardChaosResult run_sharded(std::uint64_t seed,
                             const ShardChaosConfig& config,
                             const ProcessSet& targets) {
  const tosys::ChaosConfig& c = config.chaos;
  ShardClusterConfig scc;
  scc.shards = config.shards;
  scc.replication = config.replication;
  scc.dynamic = config.dynamic;
  scc.base = make_base(c);
  if (scc.dynamic) scc.base.persistence = true;
  ShardCluster sc(scc, seed);

  const net::FaultPlan plan = net::FaultPlan::random(seed, targets, c.plan);
  ShardChaosResult out;
  out.plan_text = plan.to_string();
  net::FaultPlan::ScheduleHooks hooks;
  hooks.crashes_restart = c.crashes_restart;
  if (scc.base.persistence) {
    hooks.restart = [&sc](ProcessId p) { sc.restart(p); };
  }
  plan.schedule(sc.sim(), sc.net(), hooks);

  // Broadcast i goes to shard (i mod K) + 1 at the replica its drawn pool
  // process folds onto; at K=1 full replication this is exactly the
  // unsharded load, broadcast for broadcast.
  const std::size_t shard_count = sc.shard_count();
  schedule_load(
      sc.sim(), seed, c, sc.pool(),
      [&sc, shard_count](std::size_t i, ProcessId p, std::uint64_t u) {
        const auto k = static_cast<std::uint32_t>(i % shard_count) + 1;
        const std::size_t r = sc.assignment(k).replicas.size();
        const ProcessId local(static_cast<std::uint32_t>(p.value() % r));
        sc.bcast(k, local, AppMsg{u, local, "x"});
      });

  if (c.invariant_check_period > 0) {
    for (sim::Time t = c.invariant_check_period; t < c.plan.horizon;
         t += c.invariant_check_period) {
      sc.sim().schedule_at(t, [&sc] { (void)sc.check_invariants(); });
    }
  }

  sc.start();
  sc.run_for(c.plan.horizon);
  sc.net().heal();
  for (ProcessId p : sc.pool()) sc.net().resume(p);
  sc.run_for(c.settle);
  (void)sc.check_invariants();

  if (!sc.oracle_ok()) {
    out.ok = false;
    out.failure = "chaos seed " + std::to_string(seed) + ": " +
                  sc.violation_message();
  }

  out.orders.resize(shard_count);
  for (std::size_t k = 1; k <= shard_count; ++k) {
    tosys::Cluster& column = sc.shard(static_cast<std::uint32_t>(k));
    out.orders[k - 1].resize(sc.assignment(k).replicas.size());
    for (const tosys::Delivery& d : column.deliveries()) {
      out.orders[k - 1][d.receiver.value()].push_back(d.msg.uid);
    }
  }

  tosys::ChaosStats& s = out.stats;
  s.broadcasts = c.broadcasts;
  s.fault_events = plan.events.size();
  s.restarts = sc.restarts();
  for (std::size_t k = 1; k <= shard_count; ++k) {
    tosys::Cluster& column = sc.shard(static_cast<std::uint32_t>(k));
    s.events_checked += column.oracle().events_checked();
    s.invariant_checks += column.oracle().invariant_checks();
    s.deliveries += column.deliveries().size();
    for (ProcessId local : column.universe()) {
      const auto& vstats = column.vs_node(local).stats();
      s.views_installed += vstats.views_installed;
      s.decode_errors += vstats.decode_errors;
      s.duplicates_suppressed += vstats.duplicates_suppressed;
    }
    if (column.store() != nullptr) {
      const storage::StorageStats& ss = column.store()->stats();
      s.wal_appends += ss.appends;
      s.wal_bytes += ss.bytes_written();
    }
    obs::publish_span_invariants(obs::check_span_invariants(column.trace()),
                                 column.metrics());
  }
  // Pool-wide wire counters: include the top-level VS group's traffic, so
  // they are NOT comparable to an unsharded run even at K=1.
  const net::NetStats& ns = sc.net().stats();
  s.net_sent = ns.sent;
  s.net_delivered = ns.delivered;
  s.duplicated = ns.duplicated;
  s.reordered = ns.reordered;
  s.truncated = ns.truncated;
  s.datagrams = ns.datagrams;
  s.batches = ns.batches;
  s.batched_msgs = ns.batched_msgs;
  s.metrics = sc.metrics_snapshot();
  out.migrations = sc.migrations();
  out.migration_stalls = sc.migration_stalls();
  out.migrations_lost = sc.migrations_lost();
  return out;
}

}  // namespace

ShardChaosResult run_shard_chaos_seed(std::uint64_t seed,
                                      const ShardChaosConfig& config) {
  const ProcessSet pool = make_universe(config.chaos.n_processes);
  const ProcessSet& targets =
      config.fault_targets.empty() ? pool : config.fault_targets;
  if (config.shards == 0) return run_unsharded(seed, config, targets);
  return run_sharded(seed, config, targets);
}

}  // namespace dvs::shard
