#include "shard/group_mux.h"

#include <stdexcept>

#include "vsys/wire.h"

namespace dvs::shard {

GroupMux::Port& GroupMux::open(std::uint32_t group,
                               std::vector<ProcessId> pool_replicas) {
  if (group == 0) {
    throw std::logic_error("GroupMux: group 0 is untagged traffic");
  }
  auto [it, inserted] = ports_.try_emplace(
      group, std::make_unique<Port>(*this, group, std::move(pool_replicas)));
  if (!inserted) {
    throw std::logic_error("GroupMux: group already open: " +
                           std::to_string(group));
  }
  return *it->second;
}

void GroupMux::attach_default(ProcessId pool_p,
                              net::Transport::Handler handler) {
  default_handlers_[pool_p] = std::move(handler);
  ensure_attached(pool_p);
}

void GroupMux::close(std::uint32_t group) {
  ports_.erase(group);
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->first.first == group) {
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void GroupMux::set_transfer_handler(ProcessId pool_p,
                                    TransferHandler handler) {
  transfer_handlers_[pool_p] = std::move(handler);
  ensure_attached(pool_p);
}

void GroupMux::send_transfer(ProcessId pool_from, ProcessId pool_to,
                             const TransferFrame& frame) {
  base_.send(pool_from, pool_to, encode_transfer(frame));
}

void GroupMux::ensure_attached(ProcessId pool_p) {
  if (attached_.contains(pool_p)) return;
  attached_.insert(pool_p);
  base_.attach(pool_p, [this, pool_p](ProcessId from, const Bytes& payload) {
    dispatch(pool_p, from, payload);
  });
}

void GroupMux::dispatch(ProcessId pool_to, ProcessId pool_from,
                        const Bytes& payload) {
  // Transfer frames (0x48) first: their tag sits outside both the group
  // frame tag (0x47) and the vsys/batch tag ranges, and a joiner must be
  // reachable before any port for the migrating group exists on this node.
  if (looks_like_transfer_frame(payload)) {
    auto it = transfer_handlers_.find(pool_to);
    if (it == transfer_handlers_.end()) {
      ++unroutable_;
      return;
    }
    TransferFrame frame;
    try {
      frame = decode_transfer(payload);
    } catch (const DecodeError&) {
      ++unroutable_;
      return;
    }
    it->second(pool_from, frame);
    return;
  }
  if (!vsys::looks_like_group_frame(payload)) {
    auto it = default_handlers_.find(pool_to);
    if (it != default_handlers_.end()) {
      it->second(pool_from, payload);
    } else {
      ++unroutable_;
    }
    return;
  }
  vsys::GroupFrame frame;
  try {
    frame = vsys::decode_group_frame(payload);
  } catch (const DecodeError&) {
    // A frame truncated below its header is indistinguishable from any
    // other corrupt datagram: drop it here; nothing above could route it.
    ++unroutable_;
    return;
  }
  auto it = handlers_.find({frame.group, pool_to});
  if (it == handlers_.end()) {
    ++unroutable_;
    return;
  }
  it->second(pool_from, frame.payload);
}

void GroupMux::send_framed(std::uint32_t group, ProcessId pool_from,
                           ProcessId pool_to, const Bytes& payload) {
  base_.send(pool_from, pool_to, vsys::encode_group_frame(group, payload));
}

ProcessId GroupMux::Port::to_local(ProcessId pool) const {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i] == pool) return ProcessId(static_cast<std::uint32_t>(i));
  }
  throw std::logic_error("GroupMux::Port: pool process not a replica: " +
                         pool.to_string());
}

void GroupMux::Port::attach(ProcessId local, Handler handler) {
  const ProcessId pool_p = to_pool(local);
  mux_.handlers_[{group_, pool_p}] =
      [this, handler = std::move(handler)](ProcessId from,
                                           const Bytes& payload) {
        // A correctly tagged frame from a process outside this shard's
        // replica set is as unroutable as an unknown group id.
        for (std::size_t i = 0; i < pool_.size(); ++i) {
          if (pool_[i] == from) {
            handler(ProcessId(static_cast<std::uint32_t>(i)), payload);
            return;
          }
        }
        ++mux_.unroutable_;
      };
  mux_.ensure_attached(pool_p);
}

void GroupMux::Port::send(ProcessId from, ProcessId to,
                          const Bytes& payload) {
  mux_.send_framed(group_, to_pool(from), to_pool(to), payload);
}

}  // namespace dvs::shard
