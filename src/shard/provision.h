// Deterministic shard provisioning: which replicas of the shared node pool
// host each of the K shards.
//
// The assignment is a pure function of (pool membership, K, replication
// factor), so every node that agrees on the pool view agrees on the
// provisioning without any extra coordination — exactly how Derecho derives
// subgroup membership from the top-level view. The function is a rotating
// window (round-robin) over the sorted pool members: shard k (1-based)
// takes the r members starting at offset k-1, wrapping around. K=1 with
// full replication therefore provisions the entire pool, which is what the
// single-shard equivalence differential pins against the unsharded stack.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "common/view.h"

namespace dvs::shard {

/// One shard's provisioned replica subset. `group` doubles as the wire
/// group_id (vsys::GroupFrame); group 0 is reserved for the pool-level
/// membership group, so shards are numbered 1..K.
struct ShardAssignment {
  std::uint32_t group = 0;
  /// Pool ProcessIds hosting this shard, ascending. Index in this vector is
  /// the replica's shard-local ProcessId (0..r-1).
  std::vector<ProcessId> replicas;

  friend bool operator==(const ShardAssignment&,
                         const ShardAssignment&) = default;
};

/// Round-robin provisioning of `shards` shards over `members`, `replication`
/// replicas each (0 = every member). Throws std::logic_error when shards is
/// 0, members is empty, or replication exceeds the pool.
[[nodiscard]] std::vector<ShardAssignment> provision(
    const ProcessSet& members, std::size_t shards, std::size_t replication);

}  // namespace dvs::shard
