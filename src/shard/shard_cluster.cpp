#include "shard/shard_cluster.h"

#include <stdexcept>
#include <utility>

namespace dvs::shard {
namespace {

/// Decorrelates the pool group's fault Rng from every shard channel (shard
/// 1's channel must reproduce the unsharded network's draw sequence, so the
/// pool cannot share its seed).
constexpr std::uint64_t kPoolRngSalt = 0x706f6f6c00005eedULL;
/// Weyl-sequence stride for per-shard channel seeds; shard 1 gets the bare
/// seed (the unsharded network's), shard k gets seed ^ ((k-1) * stride).
constexpr std::uint64_t kShardSeedStride = 0x9E3779B97F4A7C15ULL;

/// Episode staging keys (see shard::transfer_stage_key): the snapshot is
/// staged here, the commit marker lives at leaf "meta", and the installed
/// journals (tosys::Cluster::storage_key) are only touched after the
/// marker commits.
std::string xfer_key(ProcessId slot, const char* leaf) {
  return transfer_stage_key(slot, leaf);
}

Bytes load_or_empty(storage::StableStore& store, const std::string& key) {
  std::optional<Bytes> v = store.load(key);
  return v.has_value() ? std::move(*v) : Bytes{};
}

}  // namespace

ShardCluster::ShardCluster(ShardClusterConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      seed_(seed),
      pool_rng_(seed ^ kPoolRngSalt),
      pool_(make_universe(config_.base.n_processes)),
      pool_v0_(ViewId::initial(), pool_),
      router_(config_.shards) {
  if (config_.shards == 0) {
    throw std::logic_error("ShardCluster: zero shards");
  }
  if (config_.base.sim != nullptr || config_.base.transport != nullptr) {
    throw std::logic_error(
        "ShardCluster: base config must not inject sim/transport");
  }
  if (config_.dynamic && !config_.base.persistence) {
    throw std::logic_error(
        "ShardCluster: dynamic re-provisioning requires persistence "
        "(journals are the transferable state)");
  }
  live_pool_ = pool_;
  net_ = std::make_unique<net::SimNetwork>(sim_, pool_rng_, config_.base.net,
                                           pool_);
  if (config_.base.persistence) {
    pool_store_ = std::make_unique<storage::MemStableStore>();
  }

  assignments_ = provision(pool_, config_.shards, config_.replication);
  router_.set_assignments(assignments_);
  router_.set_pool_view(pool_);

  // The top-level VS group: every pool process is a member of pool v0.
  for (ProcessId p : pool_) {
    pool_views_.emplace(p, pool_v0_);
    build_pool_node(p, /*initial=*/true);
  }

  // One full protocol column per shard, over its own group channel.
  shards_.reserve(assignments_.size());
  for (const ShardAssignment& a : assignments_) {
    Shard s;
    const std::uint64_t channel_seed =
        seed ^ (static_cast<std::uint64_t>(a.group - 1) * kShardSeedStride);
    s.port = std::make_unique<GroupPort>(*net_, a.group, a.replicas,
                                         channel_seed);
    tosys::ClusterConfig cc = config_.base;
    cc.n_processes = a.replicas.size();
    // initial_members is a prefix count over the column's local universe;
    // only meaningful at K=1 (the equivalence configuration). With K > 1
    // every provisioned replica starts as a member of its shard.
    cc.initial_members =
        config_.shards == 1 ? config_.base.initial_members : 0;
    cc.sim = &sim_;
    cc.transport = s.port.get();
    GroupPort* port = s.port.get();
    cc.paused_probe = [port](ProcessId local) { return port->paused(local); };
    cc.store = nullptr;  // each column owns its own deterministic store
    s.cluster = std::make_unique<tosys::Cluster>(cc, seed);
    shards_.push_back(std::move(s));
  }

  if (config_.base.observability) {
    net_->bind_metrics(pool_metrics_);
    pool_metrics_.add_collector([this] {
      pool_metrics_.gauge("pool.shards").set(
          static_cast<std::int64_t>(shards_.size()));
      pool_metrics_.gauge("pool.processes").set(
          static_cast<std::int64_t>(pool_.size()));
      pool_metrics_.counter("pool.restarts").set(restarts_);
      pool_metrics_.counter("pool.migrations").set(migrations_);
      pool_metrics_.counter("pool.migration_stalls").set(stalls_);
      pool_metrics_.counter("pool.migration_lost").set(lost_);
      pool_metrics_.counter("pool.router_re_resolutions")
          .set(router_.re_resolutions());
      std::uint64_t views = 0;
      for (const auto& [p, node] : pool_vs_) {
        views += node->stats().views_installed;
      }
      pool_metrics_.counter("pool.vs_views_installed").set(views);
    });
  }
}

std::string ShardCluster::pool_storage_key(ProcessId p) {
  return "pool/" + p.to_string() + "/vs";
}

void ShardCluster::build_pool_node(ProcessId p, bool initial) {
  vsys::VsCallbacks cb;
  cb.on_newview = [this, p](const View& v) {
    pool_views_[p] = v;
    // Any member's pool view change re-resolves routing; contact resolution
    // uses the live membership. Keys never migrate (shard count is fixed);
    // with dynamic provisioning the *replicas* hosting a column do.
    router_.set_pool_view(v.set());
    if (config_.dynamic) {
      live_pool_ = v.set();
      maybe_reprovision();
    }
  };
  pool_vs_[p] = std::make_unique<vsys::VsNode>(
      p, initial ? std::optional<View>{pool_v0_} : std::nullopt, *net_, sim_,
      config_.base.vs, std::move(cb));
  if (pool_store_ != nullptr) {
    pool_vs_.at(p)->attach_storage(*pool_store_, pool_storage_key(p));
  }
}

void ShardCluster::start() {
  for (ProcessId p : pool_) pool_vs_.at(p)->start();
  for (Shard& s : shards_) s.cluster->start();
}

void ShardCluster::run_for(sim::Time duration) {
  sim_.run_until(sim_.now() + duration);
}

bool ShardCluster::hosts(std::uint32_t k, ProcessId pool_p) const {
  for (const ProcessId r : assignment(k).replicas) {
    if (r == pool_p) return true;
  }
  return false;
}

void ShardCluster::restart(ProcessId pool_p) {
  if (!config_.base.persistence) {
    throw std::logic_error("ShardCluster::restart requires persistence");
  }
  ++restarts_;
  // Pool membership node first: recover the epoch floor, rejoin with no
  // view — same recovery discipline as a shard column's VS layer.
  pool_vs_.erase(pool_p);
  const std::uint64_t epoch =
      vsys::VsNode::recover_epoch(*pool_store_, pool_storage_key(pool_p));
  build_pool_node(pool_p, /*initial=*/false);
  pool_vs_.at(pool_p)->restore_epoch(epoch);
  pool_vs_.at(pool_p)->start();
  // Then every shard column hosting this process restarts its local
  // replica from that column's own journals.
  for (const ShardAssignment& a : assignments_) {
    if (!hosts(a.group, pool_p)) continue;
    shards_[a.group - 1].cluster->restart(local_id(a.group, pool_p));
  }
}

void ShardCluster::maybe_reprovision() {
  if (migrating_) return;  // a cutover's own events must not re-plan mid-move
  migrating_ = true;
  const ReprovisionPlan plan = plan_reprovision(assignments_, live_pool_);
  // Stall/loss observations accumulate per planning round: a shortage that
  // persists across views is counted each time it blocks a refill.
  stalls_ += plan.stalled;
  lost_ += plan.lost;
  for (const GroupMigration& gm : plan.migrations) {
    for (const SlotMove& m : gm.moves) {
      migrate_slot(gm.group, gm.source_slot, m);
    }
  }
  migrating_ = false;
}

void ShardCluster::migration_barrier() {
  const std::size_t i = migration_barriers_++;
  if (migration_crash_hook_) migration_crash_hook_(i);
}

void ShardCluster::migrate_slot(std::uint32_t group, ProcessId source_slot,
                                const SlotMove& m) {
  Shard& s = shards_[group - 1];
  storage::StableStore* store = s.cluster->store();
  // Snapshot the donor's journals. In-process the "transfer" is a staging
  // copy inside the column's store (the simulated pool shares one address
  // space); the real-transport daemon ships the same bytes as 0x48 frames.
  migration_barrier();
  SlotSnapshot snap;
  snap.vs = load_or_empty(*store, tosys::Cluster::storage_key(source_slot, "vs"));
  snap.dvs =
      load_or_empty(*store, tosys::Cluster::storage_key(source_slot, "dvs"));
  snap.to = load_or_empty(*store, tosys::Cluster::storage_key(source_slot, "to"));
  migration_barrier();
  store->replace(xfer_key(m.slot, "vs"), snap.vs);
  migration_barrier();
  store->replace(xfer_key(m.slot, "dvs"), snap.dvs);
  migration_barrier();
  store->replace(xfer_key(m.slot, "to"), snap.to);
  // Commit point: a nonempty meta marker flips the episode from roll-back
  // (staging is scratch, the move re-plans from the next view) to
  // roll-forward (install_slot is idempotent and recovery re-runs it).
  Writer w;
  w.process_id(m.to);
  migration_barrier();
  store->replace(xfer_key(m.slot, "meta"), w.take());
  install_slot(group, m.slot, m.to);
}

void ShardCluster::install_slot(std::uint32_t group, ProcessId slot,
                                ProcessId to_pool) {
  Shard& s = shards_[group - 1];
  storage::StableStore* store = s.cluster->store();
  migration_barrier();
  store->replace(tosys::Cluster::storage_key(slot, "vs"),
                 load_or_empty(*store, xfer_key(slot, "vs")));
  migration_barrier();
  store->replace(tosys::Cluster::storage_key(slot, "dvs"),
                 load_or_empty(*store, xfer_key(slot, "dvs")));
  migration_barrier();
  store->replace(tosys::Cluster::storage_key(slot, "to"),
                 load_or_empty(*store, xfer_key(slot, "to")));
  // Volatile cutover, synchronous within the current simulator event so no
  // message can observe a half-moved slot: detach the departed process from
  // the group channel, re-point the slot, and crash-restart the column
  // replica from the journals just installed. The restart records CRASH;
  // HANDOFF then tells the oracle the new incarnation adopted the donor's
  // delivery cursor (spec::EvHandoff — re-delivery is legal, invention is
  // not).
  migration_barrier();
  s.port->remap(slot, to_pool);
  s.cluster->restart(slot);
  s.cluster->record_handoff(
      slot, s.cluster->to_node(slot).automaton().nextreport());
  assignments_[group - 1].replicas[slot.value()] = to_pool;
  router_.set_assignments(assignments_);
  ++migrations_;
  if (handoff_hook_) handoff_hook_(group, slot);
  // Clearing the marker is LAST: a crash anywhere above re-runs the install.
  migration_barrier();
  store->replace(xfer_key(slot, "meta"), Bytes{});
}

void ShardCluster::recover_migrations() {
  migrating_ = false;  // a crash mid-episode left the guard set
  // Roll forward every episode whose commit marker is present (the staged
  // journals are complete by construction of the marker order)...
  for (std::size_t k = 1; k <= shards_.size(); ++k) {
    Shard& s = shards_[k - 1];
    storage::StableStore* store = s.cluster->store();
    const std::size_t r = assignments_[k - 1].replicas.size();
    for (std::size_t i = 0; i < r; ++i) {
      const ProcessId slot(static_cast<std::uint32_t>(i));
      const std::optional<Bytes> meta = store->load(xfer_key(slot, "meta"));
      if (!meta.has_value() || meta->empty()) continue;
      Reader rd(*meta);
      const ProcessId to = rd.process_id();
      rd.expect_exhausted();
      install_slot(static_cast<std::uint32_t>(k), slot, to);
    }
  }
  // ...then re-plan from the live view: rolled-back moves are simply
  // replayed as fresh episodes. Callers clear the crash hook first or the
  // sweep would crash the recovery too.
  maybe_reprovision();
}

bool ShardCluster::oracle_ok() const {
  for (const Shard& s : shards_) {
    if (!s.cluster->oracle().ok()) return false;
  }
  return true;
}

std::string ShardCluster::violation_message() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& oracle = shards_[i].cluster->oracle();
    if (oracle.ok()) continue;
    return "shard " + std::to_string(i + 1) + ": " +
           oracle.violation()->to_string();
  }
  return {};
}

bool ShardCluster::check_invariants() {
  bool all_ok = true;
  for (Shard& s : shards_) {
    if (!s.cluster->oracle().check_invariants()) all_ok = false;
  }
  return all_ok;
}

double ShardCluster::min_primary_fraction() const {
  double min = 1.0;
  for (std::size_t k = 1; k <= shards_.size(); ++k) {
    const double f = primary_fraction(static_cast<std::uint32_t>(k));
    if (f < min) min = f;
  }
  return min;
}

obs::MetricsSnapshot ShardCluster::metrics_snapshot() {
  obs::MetricsSnapshot out = pool_metrics_.snapshot();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "shard." + std::to_string(i + 1) + ".";
    const obs::MetricsSnapshot s = shards_[i].cluster->metrics_snapshot();
    for (const auto& [key, v] : s.counters) {
      out.counters[prefix + key] = v;
      out.counters["pool." + key] += v;
    }
    for (const auto& [key, v] : s.gauges) {
      out.gauges[prefix + key] = v;
      out.gauges["pool." + key] += v;
    }
    for (const auto& [key, v] : s.histograms) {
      out.histograms[prefix + key] = v;
    }
  }
  return out;
}

}  // namespace dvs::shard
