// ShardCluster: K independent DVS/TO shards multiplexed over ONE shared
// node pool, ONE simulator and ONE simulated network.
//
// Topology (the Derecho-style subgroup pattern):
//   * a top-level VS group — one vsys::VsNode per pool process on the
//     network's default channel — tracks the node pool itself and feeds the
//     ShardRouter's contact resolution;
//   * a deterministic provisioning function (shard::provision, round-robin
//     over the pool) assigns each shard a replica subset;
//   * each shard is a full tosys::Cluster (VsNode→DvsNode→ToNode columns,
//     conformance oracle, metrics, persistence) running over a GroupPort —
//     shard-local ids 0..r-1, its own SimNetwork group channel, its own
//     fault Rng.
// Because every shard column carries its own spec::TraceRecorder, VS/DVS/TO
// acceptance and Invariants 4.1/4.2 are checked independently per group_id,
// and a violation names its shard.
//
// Determinism contract (pinned by tests/shard/test_single_shard_equivalence):
// at K=1 with full replication, shard 1's channel Rng is seeded exactly like
// the unsharded cluster's network Rng, the GroupPort id map is the identity,
// and no shard-visible state reads pool-level state — so delivery orders,
// verdicts and SLO reports are byte-identical to the unsharded stack. Pool
// traffic shares the simulator but draws from its own salted Rng and
// touches only pool state.
//
// Reconfiguration isolation (tests/shard/test_shard_isolation): faults are
// injected per pool process on the shared network; a shard whose replicas
// are untouched shares nothing with the wounded shard but the event queue,
// so its commits proceed while the sibling reconfigures.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/labels.h"
#include "common/rng.h"
#include "common/types.h"
#include "common/view.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "shard/group_port.h"
#include "shard/provision.h"
#include "shard/reprovision.h"
#include "shard/router.h"
#include "sim/simulator.h"
#include "storage/stable_store.h"
#include "tosys/cluster.h"
#include "vsys/vs_node.h"

namespace dvs::shard {

struct ShardClusterConfig {
  /// Number of shards K (wire groups 1..K).
  std::size_t shards = 1;
  /// Replicas per shard (0 = every pool member hosts every shard).
  std::size_t replication = 0;
  /// Dynamic re-provisioning (shard/reprovision.h): on every pool VS
  /// NEWVIEW, diff the installed shard→replica map against the round-robin
  /// target recomputed from the surviving members and migrate each departed
  /// slot onto a joiner by shipping the donor's journals and
  /// crash-restarting the slot there. Requires base.persistence (journals
  /// are the transferable state). With a stable pool the diff is empty on
  /// every view, so dynamic mode is byte-inert — pinned by
  /// tests/shard/test_reprovision.cpp's differential.
  bool dynamic = false;
  /// Template for the pool and every shard column: n_processes is the POOL
  /// size; net/vs/to/persistence/observability knobs apply to each shard
  /// column (and base.net to the shared network). initial_members is
  /// honored only at shards == 1 (the equivalence configuration); with
  /// K > 1 every provisioned replica is an initial member of its shard.
  /// base.sim/base.transport must be null — the pool owns both.
  tosys::ClusterConfig base;
};

class ShardCluster {
 public:
  ShardCluster(ShardClusterConfig config, std::uint64_t seed);

  /// Starts the pool VS group and every shard column.
  void start();
  void run_for(sim::Time duration);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  /// The shared network — the fault surface (pause/partition/knobs) for
  /// every shard at once; faults are per pool process.
  [[nodiscard]] net::SimNetwork& net() { return *net_; }
  [[nodiscard]] const ProcessSet& pool() const { return pool_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const std::vector<ShardAssignment>& assignments() const {
    return assignments_;
  }

  /// Shard k's full protocol column (k is the 1-based group id).
  [[nodiscard]] tosys::Cluster& shard(std::uint32_t k) {
    return *shards_.at(k - 1).cluster;
  }
  [[nodiscard]] const tosys::Cluster& shard(std::uint32_t k) const {
    return *shards_.at(k - 1).cluster;
  }
  [[nodiscard]] const ShardAssignment& assignment(std::uint32_t k) const {
    return assignments_.at(k - 1);
  }
  [[nodiscard]] bool hosts(std::uint32_t k, ProcessId pool_p) const;
  /// Shard-local id of pool_p in shard k (throws unless hosts()).
  [[nodiscard]] ProcessId local_id(std::uint32_t k, ProcessId pool_p) const {
    return shards_.at(k - 1).port->to_local(pool_p);
  }

  /// Client broadcast into shard k at shard-local process `local`.
  void bcast(std::uint32_t k, ProcessId local, AppMsg a) {
    shard(k).bcast(local, std::move(a));
  }

  /// Crash-restarts pool process p: the pool VS node is rebuilt from its
  /// epoch journal and every shard column hosting p restarts its local
  /// replica (each from its own per-shard store). Requires persistence.
  void restart(ProcessId pool_p);
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

  /// All shards' oracles clean?
  [[nodiscard]] bool oracle_ok() const;
  /// First violation (lowest shard id), named with its shard; empty when
  /// clean.
  [[nodiscard]] std::string violation_message() const;
  /// Re-checks DVS Invariants 4.1/4.2 on every shard's oracle.
  bool check_invariants();

  [[nodiscard]] double primary_fraction(std::uint32_t k) const {
    return shard(k).primary_fraction();
  }
  /// min over shards — the pool is "available" when every shard can commit.
  [[nodiscard]] double min_primary_fraction() const;

  /// The latest pool view installed at p (pool v0 before any change).
  [[nodiscard]] const View& pool_view(ProcessId p) const {
    return pool_views_.at(p);
  }
  [[nodiscard]] ShardRouter& router() { return router_; }

  // ----- dynamic re-provisioning ---------------------------------------------

  /// Completed slot migrations / departed slots left unfilled (pool below
  /// replication; retried on later views) / columns with every replica
  /// departed. All zero unless config.dynamic.
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t migration_stalls() const { return stalls_; }
  [[nodiscard]] std::uint64_t migrations_lost() const { return lost_; }

  /// Crash-point sweep instrumentation: invoked with a run-global ordinal
  /// before every persistence barrier and the volatile cutover of each
  /// migration episode; throwing shard::MigrationCrash simulates a crash
  /// mid-episode. recover_migrations() then rolls every column forward
  /// (committed meta marker present) or back (absent — the move is simply
  /// re-planned from the live pool view).
  void set_migration_crash_hook(std::function<void(std::size_t)> hook) {
    migration_crash_hook_ = std::move(hook);
  }
  void recover_migrations();

  /// Invoked after a slot's cutover completes (journals installed, column
  /// replica restarted, HANDOFF recorded) — the workload harness rebuilds
  /// its application mirror for that slot here.
  void set_handoff_hook(
      std::function<void(std::uint32_t group, ProcessId slot)> hook) {
    handoff_hook_ = std::move(hook);
  }

  /// Per-shard snapshots with `shard.<k>.` key prefixes, pool-level
  /// `pool.<key>` counter/gauge rollups (summed across shards), and the
  /// shared network's own net.*/arena.* counters once at pool level.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();

 private:
  struct Shard {
    std::unique_ptr<GroupPort> port;
    std::unique_ptr<tosys::Cluster> cluster;
  };

  [[nodiscard]] static std::string pool_storage_key(ProcessId p);
  void build_pool_node(ProcessId p, bool initial);

  // Dynamic re-provisioning (all no-ops unless config.dynamic).
  void maybe_reprovision();
  void migrate_slot(std::uint32_t group, ProcessId source_slot,
                    const SlotMove& m);
  /// The roll-forward half of an episode: staged journals → live keys,
  /// port remap, column restart, HANDOFF record, meta clear. Idempotent —
  /// recovery re-runs it when the commit marker is present.
  void install_slot(std::uint32_t group, ProcessId slot, ProcessId to_pool);
  void migration_barrier();

  ShardClusterConfig config_;
  std::uint64_t seed_;
  Rng pool_rng_;  // drives the default channel (pool traffic) only
  sim::Simulator sim_;
  ProcessSet pool_;
  View pool_v0_;
  std::unique_ptr<net::SimNetwork> net_;
  std::unique_ptr<storage::MemStableStore> pool_store_;  // persistence only
  std::map<ProcessId, std::unique_ptr<vsys::VsNode>> pool_vs_;
  std::map<ProcessId, View> pool_views_;
  std::vector<ShardAssignment> assignments_;
  std::vector<Shard> shards_;  // index k-1
  ShardRouter router_;
  obs::MetricsRegistry pool_metrics_;
  std::uint64_t restarts_ = 0;

  // Dynamic re-provisioning state.
  ProcessSet live_pool_;  // latest pool view set (= pool_ while stable)
  bool migrating_ = false;
  std::uint64_t migrations_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t lost_ = 0;
  std::size_t migration_barriers_ = 0;  // run-global episode barrier ordinal
  std::function<void(std::size_t)> migration_crash_hook_;
  std::function<void(std::uint32_t, ProcessId)> handoff_hook_;
};

}  // namespace dvs::shard
