#include "shard/provision.h"

#include <algorithm>
#include <stdexcept>

namespace dvs::shard {

std::vector<ShardAssignment> provision(const ProcessSet& members,
                                       std::size_t shards,
                                       std::size_t replication) {
  if (shards == 0) throw std::logic_error("provision: zero shards");
  if (members.empty()) throw std::logic_error("provision: empty pool");
  const std::vector<ProcessId> pool(members.begin(), members.end());
  const std::size_t r = replication == 0 ? pool.size() : replication;
  if (r > pool.size()) {
    throw std::logic_error("provision: replication exceeds the pool");
  }
  std::vector<ShardAssignment> out;
  out.reserve(shards);
  for (std::size_t k = 1; k <= shards; ++k) {
    ShardAssignment a;
    a.group = static_cast<std::uint32_t>(k);
    a.replicas.reserve(r);
    for (std::size_t j = 0; j < r; ++j) {
      a.replicas.push_back(pool[(k - 1 + j) % pool.size()]);
    }
    // Ascending replica order: the index in `replicas` is the shard-local
    // ProcessId, and keeping the map monotone means local iteration order
    // (multicasts, watermark rows) matches pool iteration order.
    std::sort(a.replicas.begin(), a.replicas.end());
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace dvs::shard
