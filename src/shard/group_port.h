// GroupPort: a net::Transport facade exposing one SimNetwork group channel
// to one shard's protocol column, translating shard-local ProcessIds
// (0..r-1) to pool ProcessIds on the way down and back on the way up.
//
// Each shard's VS/DVS/TO column is a full tosys::Cluster whose universe is
// always {0..r-1} (clusters cannot run on arbitrary id subsets); the port
// is what lets that column live on an r-sized slice of an n-sized pool.
// The id map is monotone (provision() keeps replicas ascending), so local
// iteration order equals pool iteration order and a K=1 full-replication
// port is the identity — the byte-identity differential depends on that.
//
// The group tag travels out-of-band on the simulated network (SimNetwork
// group channels); the in-band vsys::GroupFrame codec is the real-transport
// equivalent (shard::GroupMux).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "net/sim_network.h"
#include "net/transport.h"

namespace dvs::shard {

class GroupPort : public net::Transport {
 public:
  /// `pool_replicas` must be ascending; local id i maps to pool_replicas[i].
  /// Opens the group channel on `net` with `channel_seed` as its fault Rng.
  GroupPort(net::SimNetwork& net, std::uint32_t group,
            std::vector<ProcessId> pool_replicas, std::uint64_t channel_seed)
      : net_(net), group_(group), pool_(std::move(pool_replicas)) {
    local_ = make_universe(pool_.size());
    net_.open_group(group_, channel_seed);
  }

  [[nodiscard]] std::uint32_t group() const { return group_; }
  [[nodiscard]] ProcessId to_pool(ProcessId local) const {
    return pool_.at(local.value());
  }
  [[nodiscard]] ProcessId to_local(ProcessId pool) const {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i] == pool) return ProcessId(static_cast<std::uint32_t>(i));
    }
    throw std::logic_error("GroupPort: pool process not a replica: " +
                           pool.to_string());
  }

  void attach(ProcessId local, Handler handler) override {
    net_.attach_group(group_, to_pool(local),
                      [this, handler = std::move(handler)](
                          ProcessId from, const Bytes& payload) {
                        handler(to_local(from), payload);
                      });
  }

  void send(ProcessId from, ProcessId to, const Bytes& payload) override {
    net_.send_group(group_, to_pool(from), to_pool(to), payload);
  }

  void multicast(ProcessId from, const ProcessSet& targets,
                 const Bytes& payload) override {
    // Local ids ascend with pool ids, so this hits the pool in the same
    // order SimNetwork::multicast would.
    for (ProcessId to : targets) {
      net_.send_group(group_, to_pool(from), to_pool(to), payload);
    }
  }

  /// Pool-wide counters (channels share one NetStats — see SimNetwork).
  [[nodiscard]] const net::NetStats& stats() const override {
    return net_.stats();
  }
  [[nodiscard]] const ProcessSet& processes() const override {
    return local_;
  }

  /// Whether this shard-local process is fault-paused on the pool network.
  [[nodiscard]] bool paused(ProcessId local) const {
    return net_.paused(to_pool(local));
  }

  /// Re-provisioning: re-points local slot `local` at a new pool process.
  /// The departed process's group-channel handler is detached (its column
  /// node objects are about to be destroyed); the joiner attaches its own
  /// handler when its column restarts. After a remap the pool list may be
  /// non-ascending — to_local stays correct (linear scan) but the ascending
  /// K=1 identity only ever held for never-migrated columns.
  void remap(ProcessId local, ProcessId pool) {
    ProcessId& slot = pool_.at(local.value());
    if (slot == pool) return;
    net_.detach_group(group_, slot);
    slot = pool;
  }

  /// The current local→pool slot map (index = local id).
  [[nodiscard]] const std::vector<ProcessId>& pool_map() const {
    return pool_;
  }

 private:
  net::SimNetwork& net_;
  std::uint32_t group_;
  std::vector<ProcessId> pool_;  // ascending; index = local id
  ProcessSet local_;
};

}  // namespace dvs::shard
