// Dynamic shard re-provisioning: pool-view-driven column migration.
//
// PR 9 froze the shard→replica map at configuration time, so a pool view
// change stranded every column hosted on a departed process. This module
// makes provisioning follow the *live* pool view: on every pool NEWVIEW the
// installed map is diffed against the pure round-robin assignment recomputed
// from the surviving members (provision.h), and each slot whose host
// departed is migrated onto a joiner by shipping the slot's durable
// journals — the exact bytes Cluster journals per layer (VS epoch floor,
// DVS att/reg knowledge, TO content/order/cursors) — and crash-restarting
// the slot on the new host.
//
// The diff is *slot-stable and minimal*: surviving replicas keep their
// slots (local ProcessIds, journal keys, trace identities) untouched, and
// only departed slots move. The joiner for each departed slot is chosen
// deterministically from the recomputed round-robin target, so every node
// that agrees on the pool view agrees on the whole migration plan without
// coordination (the Derecho discipline, extended with the reconfiguration
// state transfer of Alchieri et al. and the sequencer-driven handoff of
// vertical atomic broadcast).
//
// Cutover atomicity: a migration episode stages the copied journals under
// scratch keys, commits a meta marker, and only then installs them at the
// joiner's live keys and restarts the column node. A crash before the meta
// marker rolls back (the staging bytes are ignored and the move is
// re-planned from the next pool view); a crash after it rolls forward (the
// install is idempotent). The oracle hears the move as CRASH (the departed
// incarnation) followed by HANDOFF(next) (the joiner adopting the
// survivors' delivered prefix) — see spec::EvHandoff.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/types.h"
#include "common/view.h"
#include "shard/provision.h"

namespace dvs::shard {

// ----- assignment diff -------------------------------------------------------

/// One slot of one column moving between pool processes.
struct SlotMove {
  ProcessId slot;  // shard-local id (index into ShardAssignment::replicas)
  ProcessId from;  // departed pool process
  ProcessId to;    // joining pool process (⊆ live view)

  friend bool operator==(const SlotMove&, const SlotMove&) = default;
};

/// All moves of one column, plus the surviving slot whose journals seed the
/// joiners (the lowest-pool-id survivor: every agreeing node picks the same
/// source without coordination).
struct GroupMigration {
  std::uint32_t group = 0;
  ProcessId source_slot;  // shard-local id of the donor replica
  std::vector<SlotMove> moves;

  friend bool operator==(const GroupMigration&,
                         const GroupMigration&) = default;
};

struct ReprovisionPlan {
  std::vector<GroupMigration> migrations;  // ascending group
  /// Departed slots left unfilled this round (no live candidate — the pool
  /// shrank below the replication factor). Re-planned on the next view.
  std::size_t stalled = 0;
  /// Columns with every replica departed: no survivor holds the state, so
  /// nothing can migrate until a host returns (its on-disk journals rejoin
  /// through the ordinary crash-restart path).
  std::size_t lost = 0;

  [[nodiscard]] bool empty() const {
    return migrations.empty() && stalled == 0 && lost == 0;
  }
};

/// Diffs the installed assignment against the round-robin target recomputed
/// from `live` (replication clamped to the live pool). Pure: same inputs →
/// same plan on every node. Slots whose host is in `live` never move;
/// departed slots are paired, in slot order, with the target's fresh
/// candidates in ascending pool order.
[[nodiscard]] ReprovisionPlan plan_reprovision(
    const std::vector<ShardAssignment>& installed, const ProcessSet& live);

/// Applies a plan to an installed map (pure). Patched replica lists may be
/// non-ascending — slot order is identity, not pool order, after the first
/// migration.
[[nodiscard]] std::vector<ShardAssignment> apply_plan(
    std::vector<ShardAssignment> installed, const ReprovisionPlan& plan);

// ----- transfer frames (0x48) ------------------------------------------------
//
// Real-transport state shipping: a joiner asks a survivor for a slot's
// journals (REQ) and the survivor streams them back in chunks (SNAP), all
// through the pool's GroupMux under a dedicated tag byte that can never
// collide with vsys::GroupFrame (0x47) or any bare protocol frame.

constexpr std::uint8_t kTransferTag = 0x48;
constexpr std::uint8_t kTransferVersion = 2;  // v2 added the episode nonce

enum class TransferKind : std::uint8_t {
  kRequest = 1,   // joiner → survivor: send me (group, slot)'s snapshot
  kSnapshot = 2,  // survivor → joiner: one chunk of the encoded snapshot
};

struct TransferFrame {
  TransferKind kind = TransferKind::kRequest;
  std::uint32_t group = 0;
  std::uint32_t slot = 0;  // shard-local id being re-provisioned
  /// Request nonce: the joiner stamps every kRequest with a fresh,
  /// monotonically increasing episode and the donor echoes it into every
  /// chunk of its answer. The joiner retries requests on a timer while the
  /// donor keeps serving writes, so two answers can carry legitimately
  /// different chunk counts AND different content — without the nonce their
  /// chunks interleave into a decodable but internally inconsistent
  /// snapshot. SnapshotAssembler only ever assembles one episode.
  std::uint32_t episode = 0;
  std::uint32_t seq = 0;    // chunk index (kSnapshot; 0 for kRequest)
  std::uint32_t total = 0;  // chunk count (kSnapshot; 0 for kRequest)
  Bytes payload;            // chunk bytes (kSnapshot only)

  friend bool operator==(const TransferFrame&, const TransferFrame&) = default;
};

[[nodiscard]] Bytes encode_transfer(const TransferFrame& f);
/// Cheap structural sniff (tag + version), mirroring
/// vsys::looks_like_group_frame.
[[nodiscard]] bool looks_like_transfer_frame(const Bytes& payload);
/// Throws DecodeError on malformed input.
[[nodiscard]] TransferFrame decode_transfer(const Bytes& payload);

// ----- slot snapshots --------------------------------------------------------

/// The durable state of one column slot, as raw journal bytes: exactly what
/// tosys::Cluster journals at storage keys "p<slot>/{vs,dvs,to}" and what
/// its restart(p) recovery path consumes. Shipping bytes (not decoded
/// state) keeps the transfer honest about what survives a crash and reuses
/// the PR 5 encodings without a parallel codec.
struct SlotSnapshot {
  Bytes vs;   // epoch-floor journal (may be empty: never written)
  Bytes dvs;  // att/reg journal
  Bytes to;   // content/order/cursor journal
  /// The donor's next-delivery cursor at snapshot time — the HANDOFF(next)
  /// the joiner's new incarnation reports to the oracle.
  std::uint64_t next = 1;

  friend bool operator==(const SlotSnapshot&, const SlotSnapshot&) = default;
};

[[nodiscard]] Bytes encode_snapshot(const SlotSnapshot& s);
[[nodiscard]] SlotSnapshot decode_snapshot(const Bytes& payload);

/// Splits an encoded snapshot into kSnapshot frames of at most `max_chunk`
/// payload bytes (≥1 frame even when empty, so the joiner always gets a
/// terminating total). `episode` is the request nonce being answered —
/// every chunk echoes it.
[[nodiscard]] std::vector<TransferFrame> chunk_snapshot(
    std::uint32_t group, std::uint32_t slot, std::uint32_t episode,
    const Bytes& encoded, std::size_t max_chunk);

/// Reassembles the chunks of ONE episode (any arrival order, duplicates
/// ignored); returns the payload once every seq in [0, total) is present,
/// nullopt-style via the bool. Frames older than the episode in progress
/// are dropped; a frame from a NEWER episode discards the partial assembly
/// and starts over — so an assembly only ever mixes chunks of a single
/// donor answer. Used by the daemon's transfer client.
class SnapshotAssembler {
 public:
  /// Returns true when the snapshot just became complete.
  bool add(const TransferFrame& f);
  /// Quarantines everything below `episode`: clears any partial assembly
  /// and drops future frames with a smaller nonce. Used after a failed
  /// install so duplicates of the poisoned episode can never re-complete.
  void expect(std::uint32_t episode);
  [[nodiscard]] bool complete() const {
    return total_ != 0 && have_ == total_;
  }
  [[nodiscard]] Bytes take();

 private:
  void reset(std::uint32_t episode);

  std::vector<Bytes> chunks_;
  std::vector<bool> seen_;  // empty chunks are legal, so presence is explicit
  std::uint32_t episode_ = 0;  // episode being assembled (floor for frames)
  std::uint32_t total_ = 0;
  std::uint32_t have_ = 0;
};

/// Staging namespace of a migration episode inside a column's store: the
/// snapshot is staged here and the commit marker lives at leaf "meta". A
/// nonempty marker flips the episode from roll-back (staged bytes are
/// scratch, the move re-plans from the next pool view) to roll-forward
/// (the install is idempotent and recovery re-runs it). Shared by the
/// simulated ShardCluster and the real-transport daemon so both sides run
/// the same cutover-atomicity discipline.
[[nodiscard]] std::string transfer_stage_key(ProcessId slot,
                                             const char* leaf);

// ----- crash-point injection -------------------------------------------------

/// Thrown by a migration episode when a test-installed crash hook fires at
/// one of the episode's persistence barriers; the harness then simulates a
/// process crash and drives recovery (ShardCluster::recover_migrations).
struct MigrationCrash : std::runtime_error {
  explicit MigrationCrash(std::size_t barrier)
      : std::runtime_error("migration crash injected at barrier " +
                           std::to_string(barrier)),
        barrier_index(barrier) {}
  std::size_t barrier_index;
};

}  // namespace dvs::shard
