#include "shard/reprovision.h"

#include <algorithm>

namespace dvs::shard {

ReprovisionPlan plan_reprovision(
    const std::vector<ShardAssignment>& installed, const ProcessSet& live) {
  ReprovisionPlan plan;
  if (installed.empty()) return plan;
  if (live.empty()) {
    // Nobody survives: every column with state is unreachable until a host
    // returns through the ordinary crash-restart path.
    plan.lost = installed.size();
    return plan;
  }
  const std::size_t r_installed = installed.front().replicas.size();
  const std::size_t r = std::min(r_installed, live.size());
  // The agreed-upon target: the same pure function the initial provisioning
  // used, re-evaluated over the survivors. Only *which processes* join comes
  // from here — surviving slots never move (slot-stable minimal diff).
  const std::vector<ShardAssignment> target =
      provision(live, installed.size(), r);
  for (const ShardAssignment& a : installed) {
    std::vector<std::size_t> departed;
    for (std::size_t i = 0; i < a.replicas.size(); ++i) {
      if (!live.contains(a.replicas[i])) departed.push_back(i);
    }
    if (departed.empty()) continue;
    if (departed.size() == a.replicas.size()) {
      ++plan.lost;
      continue;
    }
    // Donor: the surviving slot with the lowest pool id — every node that
    // agrees on the pool view picks the same one without coordination.
    std::size_t src = a.replicas.size();
    for (std::size_t i = 0; i < a.replicas.size(); ++i) {
      if (!live.contains(a.replicas[i])) continue;
      if (src == a.replicas.size() || a.replicas[i] < a.replicas[src]) {
        src = i;
      }
    }
    // Fresh candidates: target members not already hosting this column,
    // ascending (provision sorts). Departed processes can never reappear
    // here (target ⊆ live).
    std::vector<ProcessId> cands;
    for (ProcessId c : target[a.group - 1].replicas) {
      if (std::find(a.replicas.begin(), a.replicas.end(), c) ==
          a.replicas.end()) {
        cands.push_back(c);
      }
    }
    GroupMigration gm;
    gm.group = a.group;
    gm.source_slot = ProcessId(static_cast<std::uint32_t>(src));
    std::size_t j = 0;
    for (std::size_t i : departed) {
      if (j >= cands.size()) {
        ++plan.stalled;  // pool below replication: refill on a later view
        continue;
      }
      gm.moves.push_back(SlotMove{ProcessId(static_cast<std::uint32_t>(i)),
                                  a.replicas[i], cands[j++]});
    }
    if (!gm.moves.empty()) plan.migrations.push_back(std::move(gm));
  }
  return plan;
}

std::vector<ShardAssignment> apply_plan(std::vector<ShardAssignment> installed,
                                        const ReprovisionPlan& plan) {
  for (const GroupMigration& gm : plan.migrations) {
    for (const SlotMove& m : gm.moves) {
      installed.at(gm.group - 1).replicas.at(m.slot.value()) = m.to;
    }
  }
  return installed;
}

// ----- transfer frames -------------------------------------------------------

Bytes encode_transfer(const TransferFrame& f) {
  Writer w;
  w.u8(kTransferTag);
  w.u8(kTransferVersion);
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.varuint(f.group);
  w.varuint(f.slot);
  w.varuint(f.episode);
  w.varuint(f.seq);
  w.varuint(f.total);
  w.bytes_field(f.payload);
  return w.take();
}

bool looks_like_transfer_frame(const Bytes& payload) {
  return payload.size() >= 2 &&
         static_cast<std::uint8_t>(payload[0]) == kTransferTag &&
         static_cast<std::uint8_t>(payload[1]) == kTransferVersion;
}

TransferFrame decode_transfer(const Bytes& payload) {
  Reader r(payload);
  if (r.u8() != kTransferTag) throw DecodeError("transfer: bad tag");
  if (r.u8() != kTransferVersion) throw DecodeError("transfer: bad version");
  TransferFrame f;
  const std::uint8_t kind = r.u8();
  if (kind != static_cast<std::uint8_t>(TransferKind::kRequest) &&
      kind != static_cast<std::uint8_t>(TransferKind::kSnapshot)) {
    throw DecodeError("transfer: unknown kind " + std::to_string(kind));
  }
  f.kind = static_cast<TransferKind>(kind);
  f.group = static_cast<std::uint32_t>(r.varuint());
  f.slot = static_cast<std::uint32_t>(r.varuint());
  f.episode = static_cast<std::uint32_t>(r.varuint());
  f.seq = static_cast<std::uint32_t>(r.varuint());
  f.total = static_cast<std::uint32_t>(r.varuint());
  f.payload = r.bytes_field();
  r.expect_exhausted();
  if (f.kind == TransferKind::kSnapshot) {
    if (f.total == 0) throw DecodeError("transfer: snapshot with zero total");
    if (f.seq >= f.total) throw DecodeError("transfer: seq beyond total");
  }
  return f;
}

// ----- slot snapshots --------------------------------------------------------

Bytes encode_snapshot(const SlotSnapshot& s) {
  Writer w;
  w.bytes_field(s.vs);
  w.bytes_field(s.dvs);
  w.bytes_field(s.to);
  w.varuint(s.next);
  return w.take();
}

SlotSnapshot decode_snapshot(const Bytes& payload) {
  Reader r(payload);
  SlotSnapshot s;
  s.vs = r.bytes_field();
  s.dvs = r.bytes_field();
  s.to = r.bytes_field();
  s.next = r.varuint();
  r.expect_exhausted();
  return s;
}

std::vector<TransferFrame> chunk_snapshot(std::uint32_t group,
                                          std::uint32_t slot,
                                          std::uint32_t episode,
                                          const Bytes& encoded,
                                          std::size_t max_chunk) {
  if (max_chunk == 0) max_chunk = 1;
  const std::uint32_t total = static_cast<std::uint32_t>(
      encoded.empty() ? 1 : (encoded.size() + max_chunk - 1) / max_chunk);
  std::vector<TransferFrame> out;
  out.reserve(total);
  for (std::uint32_t seq = 0; seq < total; ++seq) {
    TransferFrame f;
    f.kind = TransferKind::kSnapshot;
    f.group = group;
    f.slot = slot;
    f.episode = episode;
    f.seq = seq;
    f.total = total;
    const std::size_t begin = static_cast<std::size_t>(seq) * max_chunk;
    const std::size_t end = std::min(encoded.size(), begin + max_chunk);
    f.payload.assign(encoded.begin() + static_cast<std::ptrdiff_t>(begin),
                     encoded.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(f));
  }
  return out;
}

bool SnapshotAssembler::add(const TransferFrame& f) {
  if (f.kind != TransferKind::kSnapshot || f.total == 0) return false;
  if (f.episode < episode_) return false;  // stale episode: never mix it in
  if (f.episode > episode_ || total_ == 0) {
    // First frame of a newer episode: whatever was partially assembled came
    // from an answer that is now superseded — discard it wholesale.
    reset(f.episode);
    total_ = f.total;
    chunks_.assign(total_, {});
    seen_.assign(total_, false);
  }
  // Same episode, inconsistent geometry: an honest donor sends one answer
  // per episode, so this is corruption — drop the frame.
  if (f.total != total_ || f.seq >= total_) return false;
  if (seen_[f.seq]) return false;  // duplicate
  seen_[f.seq] = true;
  chunks_[f.seq] = f.payload;
  ++have_;
  return complete();
}

void SnapshotAssembler::expect(std::uint32_t episode) {
  if (episode > episode_) reset(episode);
}

void SnapshotAssembler::reset(std::uint32_t episode) {
  episode_ = episode;
  chunks_.clear();
  seen_.clear();
  total_ = 0;
  have_ = 0;
}

Bytes SnapshotAssembler::take() {
  Bytes out;
  std::size_t n = 0;
  for (const Bytes& c : chunks_) n += c.size();
  out.reserve(n);
  for (const Bytes& c : chunks_) out.insert(out.end(), c.begin(), c.end());
  // The floor moves PAST the episode just taken: duplicates of its chunks
  // must not start a second assembly of the same answer.
  reset(episode_ + 1);
  return out;
}

std::string transfer_stage_key(ProcessId slot, const char* leaf) {
  return "xfer/" + slot.to_string() + "/" + leaf;
}

}  // namespace dvs::shard
