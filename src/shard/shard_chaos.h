// Sharded chaos harness: FaultPlan-driven adversarial executions of a
// ShardCluster (or, with shards == 0, the legacy unsharded Cluster driven
// by the *same* schedule code) with every shard's conformance oracle
// attached.
//
// The driver reproduces tosys::run_chaos_seed's deterministic structure —
// same plan generator, same client-load Rng and draw sequence, same
// heal/resume/settle epilogue — and extracts a comparable verdict: pass /
// fail plus the per-receiver delivery orders of every shard. That verdict
// is the byte-compare artifact of the K=1 equivalence differential
// (tests/shard/test_single_shard_equivalence.cpp): shards=0 (unsharded
// tosys::Cluster) and shards=1 (full-replication ShardCluster) must agree
// exactly, seed for seed. NetStats-derived counters are pool-wide in the
// sharded runs (they include top-level VS traffic), so they are reported
// but are NOT part of the equivalence verdict.
//
// Fault targeting: `fault_targets` restricts the generated FaultPlan to a
// subset of the pool — the isolation test aims the adversary at exactly
// shard k's replicas and checks the siblings never miss a beat.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "tosys/chaos.h"

namespace dvs::shard {

struct ShardChaosConfig {
  /// 0 = run the legacy unsharded tosys::Cluster (the differential
  /// baseline); K >= 1 = a ShardCluster with K shards.
  std::size_t shards = 1;
  /// Replicas per shard (0 = whole pool). Ignored when shards == 0.
  std::size_t replication = 0;
  /// Dynamic re-provisioning (ShardClusterConfig::dynamic): pool view
  /// changes migrate departed slots onto survivors. Forces persistence.
  /// Ignored when shards == 0.
  bool dynamic = false;
  /// Everything else: pool size, fault mix, anomaly rates, load, settle.
  tosys::ChaosConfig chaos;
  /// Restrict the generated FaultPlan to these pool processes (empty = the
  /// whole pool). The plan is generated over this sub-universe, so the
  /// adversary never touches anyone else.
  ProcessSet fault_targets;
};

struct ShardChaosResult {
  bool ok = true;
  /// Oracle diagnosis naming the violated shard; empty on a clean run.
  std::string failure;
  /// Replayable fault plan text (empty only if construction failed early).
  std::string plan_text;
  /// orders[k-1][local receiver] = sequence of delivered AppMsg uids, in
  /// delivery order. For shards == 0 there is exactly one entry (the
  /// unsharded cluster as "shard 1"). This is the equivalence artifact.
  std::vector<std::vector<std::vector<std::uint64_t>>> orders;
  /// Aggregated counters (pool-wide net numbers in sharded mode).
  tosys::ChaosStats stats;
  /// Dynamic re-provisioning counters (zero unless config.dynamic):
  /// completed slot migrations, refills blocked by a too-small pool, and
  /// columns whose every replica departed.
  std::uint64_t migrations = 0;
  std::uint64_t migration_stalls = 0;
  std::uint64_t migrations_lost = 0;
};

/// Runs one seeded sharded chaos execution to completion. Unlike
/// tosys::run_chaos_seed it reports violations in the result rather than
/// throwing, so sweeps can compare verdicts byte-for-byte.
[[nodiscard]] ShardChaosResult run_shard_chaos_seed(
    std::uint64_t seed, const ShardChaosConfig& config);

}  // namespace dvs::shard
