// ShardRouter: the client-side library that partitions the replicated_kv
// keyspace across shards and resolves which replica to contact.
//
// Key placement is a stable FNV-1a hash of the key string modulo K — a
// pure function, identical on every client, never dependent on membership
// (so a view change migrates no keys, only contacts). Contact resolution
// IS membership-dependent: the router tracks the current provisioning
// (assignments derived from the pool view) and, per operation, prefers the
// client's home process when it hosts the shard, then the first provisioned
// replica the current pool view still contains, then the first provisioned
// replica (it may be rejoining; the op will time out and retry above us).
// Every provisioning change bumps a re-resolution counter the workload
// layer publishes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "shard/provision.h"

namespace dvs::shard {

/// Stable 64-bit FNV-1a over the key bytes — the keyspace partition point.
[[nodiscard]] std::uint64_t key_hash(const std::string& key);

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards) : shards_(shards) {}

  [[nodiscard]] std::size_t shards() const { return shards_; }

  /// group id (1..K) owning `key`.
  [[nodiscard]] std::uint32_t shard_of(const std::string& key) const {
    return static_cast<std::uint32_t>(key_hash(key) % shards_) + 1;
  }

  /// Installs a new provisioning (sorted by group). Counted as one
  /// re-resolution when it differs from the current table.
  void set_assignments(std::vector<ShardAssignment> assignments);
  /// Installs the pool view contact resolution filters live replicas by.
  /// Counted as a re-resolution when membership actually changed.
  void set_pool_view(const ProcessSet& members);

  [[nodiscard]] const std::vector<ShardAssignment>& assignments() const {
    return assignments_;
  }
  [[nodiscard]] const ShardAssignment& assignment(std::uint32_t group) const;

  /// True iff `p` hosts `group` under the current provisioning.
  [[nodiscard]] bool hosts(std::uint32_t group, ProcessId p) const;

  /// The replica a client homed at `home` should contact for `group`.
  [[nodiscard]] ProcessId contact(std::uint32_t group, ProcessId home) const;

  /// Provisioning/membership changes observed (routing re-resolutions).
  [[nodiscard]] std::uint64_t re_resolutions() const {
    return re_resolutions_;
  }

 private:
  std::size_t shards_;
  std::vector<ShardAssignment> assignments_;
  ProcessSet pool_view_;
  std::uint64_t re_resolutions_ = 0;
};

}  // namespace dvs::shard
