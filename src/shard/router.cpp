#include "shard/router.h"

#include <stdexcept>

namespace dvs::shard {

std::uint64_t key_hash(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ShardRouter::set_assignments(std::vector<ShardAssignment> assignments) {
  if (assignments != assignments_) ++re_resolutions_;
  assignments_ = std::move(assignments);
}

void ShardRouter::set_pool_view(const ProcessSet& members) {
  if (members != pool_view_) ++re_resolutions_;
  pool_view_ = members;
}

const ShardAssignment& ShardRouter::assignment(std::uint32_t group) const {
  for (const ShardAssignment& a : assignments_) {
    if (a.group == group) return a;
  }
  throw std::logic_error("ShardRouter: no assignment for group " +
                         std::to_string(group));
}

bool ShardRouter::hosts(std::uint32_t group, ProcessId p) const {
  for (const ProcessId r : assignment(group).replicas) {
    if (r == p) return true;
  }
  return false;
}

ProcessId ShardRouter::contact(std::uint32_t group, ProcessId home) const {
  const ShardAssignment& a = assignment(group);
  if (hosts(group, home)) return home;
  for (const ProcessId r : a.replicas) {
    if (pool_view_.contains(r)) return r;
  }
  return a.replicas.front();
}

}  // namespace dvs::shard
