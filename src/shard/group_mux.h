// GroupMux: in-band group multiplexing over any real net::Transport.
//
// Where the simulator carries the shard tag structurally (SimNetwork group
// channels), a real wire carries exactly bytes — so every datagram of a
// sharded deployment is prefixed with the vsys::GroupFrame header
// (kGroupFrameTag | varuint group_id | payload), and the receiving side
// demuxes on it. GroupMux installs ONE handler per pool process on the
// underlying transport and fans frames out to the per-group ports; traffic
// without a group frame (legacy daemons, the pool-level membership group's
// own protocol if it chooses to run untagged) is routed to the default
// handler for that process.
//
// Each port translates shard-local ProcessIds (0..r-1) to pool ids exactly
// like shard::GroupPort does for the simulator, so a tosys column or a
// daemon::NodeRuntime can run over a port unmodified.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/view.h"
#include "net/transport.h"
#include "shard/reprovision.h"

namespace dvs::shard {

class GroupMux {
 public:
  class Port;

  explicit GroupMux(net::Transport& base) : base_(base) {}
  GroupMux(const GroupMux&) = delete;
  GroupMux& operator=(const GroupMux&) = delete;

  /// Opens the port for `group`; `pool_replicas` ascending, local id i =
  /// pool_replicas[i]. The port is owned by the mux and valid for its
  /// lifetime. Throws on a duplicate group or group 0 (0 marks untagged
  /// traffic — use attach_default).
  Port& open(std::uint32_t group, std::vector<ProcessId> pool_replicas);

  /// Handler for datagrams addressed to `pool_p` that carry no group frame.
  void attach_default(ProcessId pool_p, net::Transport::Handler handler);

  /// Closes the port for `group`: the port object is destroyed and every
  /// handler it installed is removed (subsequent frames for the group count
  /// as unroutable). No-op on an unknown group. Used by dynamic
  /// re-provisioning when a column this node hosted migrates away.
  void close(std::uint32_t group);

  /// State-transfer frames (shard/reprovision.h, tag 0x48) ride the same
  /// socket but OUTSIDE the group framing — a joiner needs them before its
  /// column (and hence its port) exists. The per-destination handler
  /// receives the decoded frame; malformed transfer datagrams are dropped
  /// and counted as unroutable.
  using TransferHandler =
      std::function<void(ProcessId from, const TransferFrame&)>;
  void set_transfer_handler(ProcessId pool_p, TransferHandler handler);
  void send_transfer(ProcessId pool_from, ProcessId pool_to,
                     const TransferFrame& frame);

  [[nodiscard]] net::Transport& base() { return base_; }
  /// Datagrams whose group frame named a group with no open port (or no
  /// handler attached for the destination) — dropped, counted.
  [[nodiscard]] std::uint64_t unroutable() const { return unroutable_; }

 private:
  friend class Port;

  /// Installs the demux handler on the base transport for pool_p (idempotent).
  void ensure_attached(ProcessId pool_p);
  void dispatch(ProcessId pool_to, ProcessId pool_from, const Bytes& payload);
  void send_framed(std::uint32_t group, ProcessId pool_from, ProcessId pool_to,
                   const Bytes& payload);

  net::Transport& base_;
  std::map<std::uint32_t, std::unique_ptr<Port>> ports_;
  // (group, pool destination) -> translated handler installed by the port.
  std::map<std::pair<std::uint32_t, ProcessId>, net::Transport::Handler>
      handlers_;
  std::map<ProcessId, net::Transport::Handler> default_handlers_;
  std::map<ProcessId, TransferHandler> transfer_handlers_;
  ProcessSet attached_;
  std::uint64_t unroutable_ = 0;
};

/// One group's Transport view. Lives inside the mux; see GroupMux::open.
class GroupMux::Port : public net::Transport {
 public:
  Port(GroupMux& mux, std::uint32_t group, std::vector<ProcessId> pool)
      : mux_(mux), group_(group), pool_(std::move(pool)) {
    local_ = make_universe(pool_.size());
  }

  [[nodiscard]] std::uint32_t group() const { return group_; }
  [[nodiscard]] ProcessId to_pool(ProcessId local) const {
    return pool_.at(local.value());
  }
  [[nodiscard]] ProcessId to_local(ProcessId pool) const;
  /// Re-points shard-local id `local` at a different pool process — the
  /// volatile half of a slot migration. Post-remap the pool list may be
  /// non-ascending; to_local's linear scan stays correct. This node's own
  /// slot never moves while it is alive, so the installed receive handler
  /// (keyed by this node's pool id) is untouched.
  void remap(ProcessId local, ProcessId pool) {
    pool_.at(local.value()) = pool;
  }
  [[nodiscard]] const std::vector<ProcessId>& pool_map() const {
    return pool_;
  }

  void attach(ProcessId local, Handler handler) override;
  void send(ProcessId from, ProcessId to, const Bytes& payload) override;

  [[nodiscard]] std::size_t max_datagram_size() const override {
    // The group frame (tag + varuint) rides inside the base datagram.
    const std::size_t base = mux_.base_.max_datagram_size();
    return base > 6 ? base - 6 : 0;
  }
  [[nodiscard]] const net::NetStats& stats() const override {
    return mux_.base_.stats();
  }
  [[nodiscard]] const ProcessSet& processes() const override {
    return local_;
  }

 private:
  GroupMux& mux_;
  std::uint32_t group_;
  std::vector<ProcessId> pool_;  // ascending; index = local id
  ProcessSet local_;
};

}  // namespace dvs::shard
