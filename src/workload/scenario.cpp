#include "workload/scenario.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dvs::workload {

namespace {

constexpr std::uint64_t kChurnSalt = 0xc4a2f70c0de5eedULL;

[[noreturn]] void bad_line(std::size_t lineno, const std::string& line,
                           const std::string& why) {
  throw std::runtime_error("scenario line " + std::to_string(lineno) + " (" +
                           line + "): " + why);
}

std::uint64_t parse_u64(const std::string& s) {
  std::size_t pos = 0;
  const std::uint64_t v = std::stoull(s, &pos);
  if (pos != s.size()) {
    throw std::runtime_error("trailing garbage in '" + s + "'");
  }
  return v;
}

double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) {
    throw std::runtime_error("trailing garbage in '" + s + "'");
  }
  return v;
}

bool parse_on_off(const std::string& s) {
  if (s == "on") return true;
  if (s == "off") return false;
  throw std::runtime_error("want on|off, got '" + s + "'");
}

/// Round-trip-exact double formatting (%.17g), matching net::FaultPlan.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t to_ms(sim::Time t) { return t / sim::kMillisecond; }

void require_ms(sim::Time t, const char* what) {
  if (t % sim::kMillisecond != 0) {
    throw std::runtime_error(std::string("scenario: ") + what +
                             " must have millisecond granularity");
  }
}

std::vector<ProcessId> parse_targets(const std::string& text) {
  std::vector<ProcessId> out;
  std::istringstream ts(text);
  std::string id;
  while (std::getline(ts, id, ',')) {
    out.push_back(ProcessId{static_cast<ProcessId::Rep>(parse_u64(id))});
  }
  if (out.empty()) throw std::runtime_error("empty target list");
  return out;
}

std::string format_targets(const std::vector<ProcessId>& targets) {
  std::string out;
  for (ProcessId p : targets) {
    if (!out.empty()) out += ',';
    out += std::to_string(p.value());
  }
  return out;
}

}  // namespace

Scenario Scenario::parse(const std::string& text) {
  Scenario s;
  s.phases.clear();
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    try {
      auto word = [&]() {
        std::string w;
        if (!(ls >> w)) throw std::runtime_error("missing value");
        return w;
      };
      auto ms_value = [&]() {
        return static_cast<sim::Time>(parse_u64(word())) * sim::kMillisecond;
      };
      if (key == "name") {
        s.name = word();
      } else if (key == "n") {
        s.n = parse_u64(word());
      } else if (key == "initial") {
        s.initial = parse_u64(word());
      } else if (key == "shards") {
        s.shards = parse_u64(word());
      } else if (key == "replication") {
        s.replication = parse_u64(word());
      } else if (key == "dynamic") {
        s.dynamic = parse_on_off(word());
      } else if (key == "seeds") {
        s.seeds = parse_u64(word());
      } else if (key == "seed") {
        s.seed = parse_u64(word());
      } else if (key == "warmup_ms") {
        s.warmup = ms_value();
      } else if (key == "horizon_ms") {
        s.horizon = ms_value();
      } else if (key == "settle_ms") {
        s.settle = ms_value();
      } else if (key == "heartbeat_ms") {
        s.heartbeat_ms = parse_u64(word());
      } else if (key == "suspect_ms") {
        s.suspect_ms = parse_u64(word());
      } else if (key == "propose_ms") {
        s.propose_ms = parse_u64(word());
      } else if (key == "watermarks") {
        s.watermarks = parse_on_off(word());
      } else if (key == "batching") {
        s.batching = parse_on_off(word());
      } else if (key == "persistence") {
        s.persistence = parse_on_off(word());
      } else if (key == "clients") {
        s.clients = parse_u64(word());
      } else if (key == "loop") {
        const std::string v = word();
        if (v == "closed") {
          s.closed_loop = true;
        } else if (v == "open") {
          s.closed_loop = false;
        } else {
          throw std::runtime_error("want loop closed|open, got '" + v + "'");
        }
      } else if (key == "rate") {
        s.rate = parse_double(word());
      } else if (key == "think_ms") {
        s.think = ms_value();
      } else if (key == "keys") {
        s.mix.keys = parse_u64(word());
      } else if (key == "dist") {
        s.mix.dist = parse_key_dist(word());
      } else if (key == "theta") {
        s.mix.theta = parse_double(word());
      } else if (key == "reads") {
        s.mix.reads = static_cast<std::uint32_t>(parse_u64(word()));
      } else if (key == "writes") {
        s.mix.writes = static_cast<std::uint32_t>(parse_u64(word()));
      } else if (key == "scans") {
        s.mix.scans = static_cast<std::uint32_t>(parse_u64(word()));
      } else if (key == "scan_len") {
        s.mix.scan_len = parse_u64(word());
      } else if (key == "value_len") {
        s.mix.value_len = parse_u64(word());
      } else if (key == "sample_ms") {
        s.sample_period = ms_value();
      } else if (key == "phase") {
        Phase ph;
        ph.name = word();
        ph.duration = ms_value();
        ph.rate_mult = parse_double(word());
        s.phases.push_back(std::move(ph));
      } else if (key == "burst") {
        s.burst_period = ms_value();
        s.burst_len = ms_value();
        s.burst_mult = parse_double(word());
      } else if (key == "region") {
        const std::size_t p = parse_u64(word());
        const std::size_t r = parse_u64(word());
        if (s.region.size() <= p) s.region.resize(p + 1, 0);
        s.region[p] = r;
      } else if (key == "latency") {
        const std::size_t a = parse_u64(word());
        const std::size_t b = parse_u64(word());
        const sim::Time us = ms_value();
        const std::size_t need = std::max(a, b) + 1;
        if (s.latency.size() < need) {
          for (auto& row : s.latency) row.resize(need, 0);
          s.latency.resize(need, std::vector<sim::Time>(need, 0));
        }
        s.latency[a][b] = us;  // symmetric: one line sets both directions
        s.latency[b][a] = us;
      } else if (key == "drop") {
        s.drop = parse_double(word());
      } else if (key == "duplicate") {
        s.duplicate = parse_double(word());
      } else if (key == "flap") {
        FlapSpec f;
        f.target = ProcessId{static_cast<ProcessId::Rep>(parse_u64(word()))};
        f.first = ms_value();
        f.period = ms_value();
        f.down = ms_value();
        f.count = parse_u64(word());
        s.flaps.push_back(f);
      } else if (key == "crash_group") {
        CrashGroupSpec g;
        g.at = ms_value();
        g.down = ms_value();
        g.targets = parse_targets(word());
        s.crash_groups.push_back(std::move(g));
      } else if (key == "rolling_restart") {
        RollingRestartSpec r;
        r.start = ms_value();
        r.stagger = ms_value();
        s.rolling_restart = r;
      } else if (key == "drop_window" || key == "dup_burst") {
        WindowSpec w;
        w.at = ms_value();
        w.duration = ms_value();
        w.probability = parse_double(word());
        (key == "drop_window" ? s.drop_windows : s.dup_bursts).push_back(w);
      } else if (key == "churn") {
        ChurnSpec c;
        c.events_per_sec = parse_double(word());
        const std::string kind = word();
        if (kind == "pause") {
          c.restart_semantics = false;
        } else if (kind == "restart") {
          c.restart_semantics = true;
        } else {
          throw std::runtime_error("want churn ... pause|restart, got '" +
                                   kind + "'");
        }
        c.down_min = ms_value();
        c.down_max = ms_value();
        s.churn = c;
      } else if (key == "slo_availability_ppm") {
        s.slo_availability_ppm = parse_u64(word());
      } else if (key == "slo_p99_commit_ms") {
        s.slo_p99_commit_ms = parse_u64(word());
      } else {
        bad_line(lineno, line, "unknown key '" + key + "'");
      }
      std::string trailing;
      if (ls >> trailing) {
        bad_line(lineno, line, "trailing token '" + trailing + "'");
      }
    } catch (const std::runtime_error& e) {
      bad_line(lineno, line, e.what());
    } catch (const std::invalid_argument&) {
      bad_line(lineno, line, "malformed number");
    } catch (const std::out_of_range&) {
      bad_line(lineno, line, "number out of range");
    }
  }
  s.validate();
  return s;
}

Scenario Scenario::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("scenario: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string Scenario::to_string() const {
  std::ostringstream os;
  os << "name " << name << "\n";
  os << "n " << n << "\n";
  if (initial != 0) os << "initial " << initial << "\n";
  if (shards != 0) os << "shards " << shards << "\n";
  if (replication != 0) os << "replication " << replication << "\n";
  if (dynamic) os << "dynamic on\n";
  os << "seeds " << seeds << "\n";
  os << "seed " << seed << "\n";
  os << "warmup_ms " << to_ms(warmup) << "\n";
  os << "horizon_ms " << to_ms(horizon) << "\n";
  os << "settle_ms " << to_ms(settle) << "\n";
  if (heartbeat_ms != 0) os << "heartbeat_ms " << heartbeat_ms << "\n";
  if (suspect_ms != 0) os << "suspect_ms " << suspect_ms << "\n";
  if (propose_ms != 0) os << "propose_ms " << propose_ms << "\n";
  os << "watermarks " << (watermarks ? "on" : "off") << "\n";
  os << "batching " << (batching ? "on" : "off") << "\n";
  os << "persistence " << (persistence ? "on" : "off") << "\n";
  os << "clients " << clients << "\n";
  os << "loop " << (closed_loop ? "closed" : "open") << "\n";
  os << "rate " << fmt_double(rate) << "\n";
  os << "think_ms " << to_ms(think) << "\n";
  os << "keys " << mix.keys << "\n";
  os << "dist " << workload::to_string(mix.dist) << "\n";
  os << "theta " << fmt_double(mix.theta) << "\n";
  os << "reads " << mix.reads << "\n";
  os << "writes " << mix.writes << "\n";
  os << "scans " << mix.scans << "\n";
  os << "scan_len " << mix.scan_len << "\n";
  os << "value_len " << mix.value_len << "\n";
  os << "sample_ms " << to_ms(sample_period) << "\n";
  for (const Phase& ph : phases) {
    os << "phase " << ph.name << " " << to_ms(ph.duration) << " "
       << fmt_double(ph.rate_mult) << "\n";
  }
  if (burst_period != 0) {
    os << "burst " << to_ms(burst_period) << " " << to_ms(burst_len) << " "
       << fmt_double(burst_mult) << "\n";
  }
  for (std::size_t p = 0; p < region.size(); ++p) {
    os << "region " << p << " " << region[p] << "\n";
  }
  for (std::size_t a = 0; a < latency.size(); ++a) {
    for (std::size_t b = a; b < latency.size(); ++b) {
      os << "latency " << a << " " << b << " " << to_ms(latency[a][b])
         << "\n";
    }
  }
  if (drop != 0.0) os << "drop " << fmt_double(drop) << "\n";
  if (duplicate != 0.0) os << "duplicate " << fmt_double(duplicate) << "\n";
  for (const FlapSpec& f : flaps) {
    os << "flap " << f.target.value() << " " << to_ms(f.first) << " "
       << to_ms(f.period) << " " << to_ms(f.down) << " " << f.count << "\n";
  }
  for (const CrashGroupSpec& g : crash_groups) {
    os << "crash_group " << to_ms(g.at) << " " << to_ms(g.down) << " "
       << format_targets(g.targets) << "\n";
  }
  if (rolling_restart.has_value()) {
    os << "rolling_restart " << to_ms(rolling_restart->start) << " "
       << to_ms(rolling_restart->stagger) << "\n";
  }
  for (const WindowSpec& w : drop_windows) {
    os << "drop_window " << to_ms(w.at) << " " << to_ms(w.duration) << " "
       << fmt_double(w.probability) << "\n";
  }
  for (const WindowSpec& w : dup_bursts) {
    os << "dup_burst " << to_ms(w.at) << " " << to_ms(w.duration) << " "
       << fmt_double(w.probability) << "\n";
  }
  if (churn.has_value()) {
    os << "churn " << fmt_double(churn->events_per_sec) << " "
       << (churn->restart_semantics ? "restart" : "pause") << " "
       << to_ms(churn->down_min) << " " << to_ms(churn->down_max) << "\n";
  }
  if (slo_availability_ppm != 0) {
    os << "slo_availability_ppm " << slo_availability_ppm << "\n";
  }
  if (slo_p99_commit_ms != 0) {
    os << "slo_p99_commit_ms " << slo_p99_commit_ms << "\n";
  }
  return os.str();
}

void Scenario::validate() const {
  auto fail = [](const std::string& why) -> void {
    throw std::runtime_error("scenario: " + why);
  };
  if (n == 0) fail("n must be > 0");
  if (initial > n) fail("initial > n");
  if (replication != 0 && shards == 0) {
    fail("replication needs shards >= 1");
  }
  if (replication > n) fail("replication > n");
  if (shards > 1 && initial != 0) {
    fail("initial members are only meaningful with shards 0|1");
  }
  if (dynamic && shards == 0) fail("dynamic needs shards >= 1");
  if (seeds == 0) fail("seeds must be >= 1");
  if (horizon == 0) fail("horizon_ms must be > 0");
  if (warmup >= horizon) fail("warmup must be shorter than the horizon");
  require_ms(warmup, "warmup");
  require_ms(horizon, "horizon");
  require_ms(settle, "settle");
  require_ms(think, "think");
  require_ms(sample_period, "sample_ms");
  if (sample_period == 0) fail("sample_ms must be > 0");
  if (clients == 0) fail("clients must be >= 1");
  if (!closed_loop && rate <= 0.0) fail("open loop needs rate > 0");
  mix.validate();
  if (!phases.empty()) {
    sim::Time total = 0;
    for (const Phase& ph : phases) {
      require_ms(ph.duration, "phase duration");
      if (ph.duration == 0) fail("phase '" + ph.name + "' has zero duration");
      if (ph.rate_mult <= 0.0) {
        fail("phase '" + ph.name + "' needs rate_mult > 0");
      }
      total += ph.duration;
    }
    if (total != horizon) {
      fail("phase durations sum to " + std::to_string(to_ms(total)) +
           "ms, horizon is " + std::to_string(to_ms(horizon)) + "ms");
    }
  }
  if (burst_period != 0) {
    require_ms(burst_period, "burst period");
    require_ms(burst_len, "burst length");
    if (burst_len > burst_period) fail("burst length exceeds its period");
    if (burst_mult <= 0.0) fail("burst mult must be > 0");
  }
  if (!region.empty()) {
    if (region.size() != n) fail("region lines must cover exactly 0..n-1");
    if (latency.empty()) fail("regions assigned but no latency matrix");
  }
  for (std::size_t a = 0; a < latency.size(); ++a) {
    if (latency[a].size() != latency.size()) {
      fail("latency matrix not square");
    }
  }
  if (!latency.empty()) {
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t r = p < region.size() ? region[p] : 0;
      if (r >= latency.size()) {
        fail("process " + std::to_string(p) + " in region " +
             std::to_string(r) + " outside the latency matrix");
      }
    }
  }
  if (drop < 0.0 || drop > 1.0) fail("drop must be in [0,1]");
  if (duplicate < 0.0 || duplicate > 1.0) fail("duplicate must be in [0,1]");
  // Flap windows drive the single global partition state, so they must not
  // overlap each other (and a flap must fit inside its period).
  struct Window {
    sim::Time start, end;
  };
  std::vector<Window> flap_windows;
  for (const FlapSpec& f : flaps) {
    if (f.target.value() >= n) fail("flap target outside universe");
    if (f.count == 0) fail("flap count must be > 0");
    if (f.down == 0) fail("flap down time must be > 0");
    if (f.count > 1 && f.down >= f.period) {
      fail("flap down time must be shorter than its period");
    }
    require_ms(f.first, "flap first");
    require_ms(f.period, "flap period");
    require_ms(f.down, "flap down");
    for (std::size_t k = 0; k < f.count; ++k) {
      const sim::Time at = f.first + static_cast<sim::Time>(k) * f.period;
      flap_windows.push_back({at, at + f.down});
    }
  }
  std::sort(flap_windows.begin(), flap_windows.end(),
            [](const Window& a, const Window& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < flap_windows.size(); ++i) {
    if (flap_windows[i].start < flap_windows[i - 1].end) {
      fail("flap windows overlap (partition state is global)");
    }
  }
  for (const CrashGroupSpec& g : crash_groups) {
    if (g.targets.empty()) fail("crash_group without targets");
    if (g.targets.size() >= n) {
      fail("crash_group must leave at least one process alive");
    }
    for (ProcessId p : g.targets) {
      if (p.value() >= n) fail("crash_group target outside universe");
    }
    if (g.down == 0) fail("crash_group down time must be > 0");
    require_ms(g.at, "crash_group at");
    require_ms(g.down, "crash_group down");
  }
  if (rolling_restart.has_value()) {
    require_ms(rolling_restart->start, "rolling_restart start");
    require_ms(rolling_restart->stagger, "rolling_restart stagger");
  }
  for (const WindowSpec& w : drop_windows) {
    require_ms(w.at, "drop_window at");
    require_ms(w.duration, "drop_window duration");
    if (w.probability < 0.0 || w.probability > 1.0) {
      fail("drop_window probability must be in [0,1]");
    }
  }
  for (const WindowSpec& w : dup_bursts) {
    require_ms(w.at, "dup_burst at");
    require_ms(w.duration, "dup_burst duration");
    if (w.probability < 0.0 || w.probability > 1.0) {
      fail("dup_burst probability must be in [0,1]");
    }
  }
  if (churn.has_value()) {
    if (churn->events_per_sec <= 0.0) fail("churn rate must be > 0");
    if (churn->down_min == 0) fail("churn down_min must be > 0");
    if (churn->down_min > churn->down_max) fail("churn down_min > down_max");
    require_ms(churn->down_min, "churn down_min");
    require_ms(churn->down_max, "churn down_max");
    if (n < 2) fail("churn needs n >= 2");
  }
  if (slo_availability_ppm > 1'000'000) {
    fail("slo_availability_ppm must be <= 1000000");
  }
}

bool Scenario::needs_persistence() const {
  return persistence || dynamic || rolling_restart.has_value() ||
         (churn.has_value() && churn->restart_semantics);
}

bool Scenario::crashes_restart() const {
  return churn.has_value() && churn->restart_semantics;
}

net::FaultPlan Scenario::compile_faults(std::uint64_t run_seed) const {
  net::FaultPlan plan;
  auto& ev = plan.events;

  ProcessSet universe = make_universe(n);
  for (const FlapSpec& f : flaps) {
    ProcessSet rest;
    for (ProcessId p : universe) {
      if (p != f.target) rest.insert(p);
    }
    for (std::size_t k = 0; k < f.count; ++k) {
      const sim::Time at = f.first + static_cast<sim::Time>(k) * f.period;
      net::FaultEvent cut;
      cut.kind = net::FaultEvent::Kind::kPartition;
      cut.at = at;
      cut.groups = {ProcessSet{f.target}, rest};
      ev.push_back(std::move(cut));
      net::FaultEvent heal;
      heal.kind = net::FaultEvent::Kind::kHeal;
      heal.at = at + f.down;
      ev.push_back(heal);
    }
  }
  for (const CrashGroupSpec& g : crash_groups) {
    for (ProcessId p : g.targets) {
      net::FaultEvent crash;
      crash.kind = net::FaultEvent::Kind::kCrash;
      crash.at = g.at;
      crash.target = p;
      ev.push_back(crash);
      net::FaultEvent recover;
      recover.kind = net::FaultEvent::Kind::kRecover;
      recover.at = g.at + g.down;
      recover.target = p;
      ev.push_back(recover);
    }
  }
  if (rolling_restart.has_value()) {
    for (std::size_t i = 0; i < n; ++i) {
      net::FaultEvent restart;
      restart.kind = net::FaultEvent::Kind::kRestart;
      restart.at = rolling_restart->start +
                   static_cast<sim::Time>(i) * rolling_restart->stagger;
      restart.target = ProcessId{static_cast<ProcessId::Rep>(i)};
      ev.push_back(restart);
    }
  }
  for (const WindowSpec& w : drop_windows) {
    net::FaultEvent e;
    e.kind = net::FaultEvent::Kind::kDropWindow;
    e.at = w.at;
    e.duration = w.duration;
    e.probability = w.probability;
    ev.push_back(e);
  }
  for (const WindowSpec& w : dup_bursts) {
    net::FaultEvent e;
    e.kind = net::FaultEvent::Kind::kDupBurst;
    e.at = w.at;
    e.duration = w.duration;
    e.probability = w.probability;
    ev.push_back(e);
  }
  if (churn.has_value()) {
    // Seeded crash/recover churn stream, decorrelated from the cluster and
    // client RNGs. Always kCrash/kRecover — the pause-vs-restart choice is
    // the runner's ScheduleHooks::crashes_restart knob, never a different
    // event vocabulary.
    Rng rng(run_seed ^ kChurnSalt);
    const double mean_gap_us = 1e6 / churn->events_per_sec;
    std::vector<sim::Time> down_until(n, 0);
    const std::size_t down_span_ms =
        to_ms(churn->down_max) - to_ms(churn->down_min) + 1;
    sim::Time t = warmup;
    while (true) {
      const double gap = rng.exponential(mean_gap_us);
      t += gap < 1.0 ? 1 : static_cast<sim::Time>(gap);
      if (t >= horizon) break;
      std::size_t down_now = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (down_until[i] > t) ++down_now;
      }
      const std::size_t target = rng.below(n);
      // Keep one process alive and never re-crash a crashed one — the same
      // graceful-degrade discipline as FaultPlan::random (the draw is
      // consumed either way, keeping the stream deterministic).
      if (down_until[target] > t || down_now + 1 >= n) continue;
      const sim::Time down =
          churn->down_min +
          static_cast<sim::Time>(rng.below(down_span_ms)) * sim::kMillisecond;
      // Every outage ends before the horizon: the settle epilogue starts
      // with all processes up, so rejoin view changes complete (no spans
      // left open at trace end). The draws above are consumed either way.
      if (t + down >= horizon) continue;
      net::FaultEvent crash;
      crash.kind = net::FaultEvent::Kind::kCrash;
      crash.at = t;
      crash.target = ProcessId{static_cast<ProcessId::Rep>(target)};
      ev.push_back(crash);
      net::FaultEvent recover;
      recover.kind = net::FaultEvent::Kind::kRecover;
      recover.at = t + down;
      recover.target = crash.target;
      ev.push_back(recover);
      down_until[target] = t + down;
    }
  }

  std::stable_sort(ev.begin(), ev.end(),
                   [](const net::FaultEvent& a, const net::FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

net::NetConfig Scenario::net_config() const {
  net::NetConfig nc;
  nc.drop_probability = drop;
  nc.duplicate_probability = duplicate;
  nc.max_duplicates = 2;
  nc.batching = batching;
  nc.process_region = region;
  nc.region_delay = latency;
  return nc;
}

std::vector<Phase> Scenario::effective_phases() const {
  if (!phases.empty()) return phases;
  return {Phase{"steady", horizon, 1.0}};
}

double Scenario::rate_mult_at(sim::Time t) const {
  double mult = 1.0;
  if (!phases.empty()) {
    sim::Time edge = 0;
    mult = phases.back().rate_mult;  // t past the horizon: last phase rules
    for (const Phase& ph : phases) {
      edge += ph.duration;
      if (t < edge) {
        mult = ph.rate_mult;
        break;
      }
    }
  }
  if (burst_period != 0 && (t % burst_period) < burst_len) {
    mult *= burst_mult;
  }
  return mult;
}

}  // namespace dvs::workload
