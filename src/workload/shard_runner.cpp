#include "workload/shard_runner.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/state_machine.h"
#include "common/labels.h"
#include "net/fault_plan.h"
#include "obs/stack_tracer.h"
#include "shard/shard_cluster.h"
#include "tosys/cluster.h"

namespace dvs::workload::detail {

namespace {

constexpr sim::Time kInvariantCheckPeriod = 100 * sim::kMillisecond;

struct PendingWrite {
  std::size_t client = 0;
  sim::Time submitted = 0;
  std::size_t phase = 0;
  bool committed = false;
};

struct ClientState {
  OpGenerator gen;
  ProcessId home{};
  std::uint64_t waiting_uid = 0;
};

SloReport skeleton_report(const Scenario& sc) {
  SloReport r;
  r.scenario = sc.name;
  r.n = sc.n;
  r.seeds = 0;
  r.first_seed = sc.seed;
  r.slo_availability_ppm = sc.slo_availability_ppm;
  r.slo_p99_commit_ms = sc.slo_p99_commit_ms;
  for (const Phase& ph : sc.effective_phases()) {
    PhaseSlo p;
    p.name = ph.name;
    r.phases.push_back(std::move(p));
  }
  return r;
}

std::string failure_message(std::uint64_t seed, const Scenario& sc,
                            const net::FaultPlan& plan,
                            const std::string& violation) {
  std::string out = "scenario '" + sc.name + "' seed " + std::to_string(seed) +
                    " (n=" + std::to_string(sc.n) + "): " + violation;
  out += "\nfault plan (replay with net::FaultPlan::parse):\n";
  out += plan.to_string();
  return out;
}

}  // namespace

// Structurally a mirror of run_scenario_seed (workload/runner.cpp): the
// client swarm performs the SAME Rng draws in the SAME order, so at K=1 the
// two runners produce byte-identical reports. The differences are exactly
// the routing seams: key -> shard via ShardRouter, contact -> shard-local
// replica via the shard's GroupPort map, and per-shard KV replicas,
// delivery hooks, oracles and span checks.
SeedOutcome run_sharded_scenario_seed(const Scenario& sc, std::uint64_t seed) {
  sc.validate();

  shard::ShardClusterConfig scc;
  scc.shards = sc.shards;
  scc.replication = sc.replication;
  scc.dynamic = sc.dynamic;
  tosys::ClusterConfig& cc = scc.base;
  cc.n_processes = sc.n;
  cc.initial_members = sc.initial;
  cc.net = sc.net_config();
  if (sc.heartbeat_ms != 0) {
    cc.vs.heartbeat_period = sc.heartbeat_ms * sim::kMillisecond;
  }
  if (sc.suspect_ms != 0) {
    cc.vs.suspect_timeout = sc.suspect_ms * sim::kMillisecond;
  }
  if (sc.propose_ms != 0) {
    cc.vs.propose_timeout = sc.propose_ms * sim::kMillisecond;
  }
  cc.vs.stability = sc.watermarks ? vsys::StabilityMode::kWatermark
                                  : vsys::StabilityMode::kExplicitAck;
  cc.record_traces = false;
  cc.conformance_oracle = true;
  cc.persistence = sc.needs_persistence();
  shard::ShardCluster cluster(scc, seed);
  const std::size_t shard_count = cluster.shard_count();

  const net::FaultPlan plan = sc.compile_faults(seed);
  net::FaultPlan::ScheduleHooks hooks;
  hooks.crashes_restart = sc.crashes_restart();
  if (cc.persistence) {
    hooks.restart = [&cluster](ProcessId p) { cluster.restart(p); };
  }
  plan.schedule(cluster.sim(), cluster.net(), hooks);

  // ----- measurement state ---------------------------------------------------
  SloReport report = skeleton_report(sc);
  report.seeds = 1;
  report.first_seed = seed;
  report.measured_us = sc.horizon - sc.warmup;

  const std::vector<Phase> phases = sc.effective_phases();
  std::vector<sim::Time> phase_edge;
  {
    sim::Time edge = 0;
    for (const Phase& ph : phases) {
      edge += ph.duration;
      phase_edge.push_back(edge);
    }
    for (std::size_t i = 0; i < phases.size(); ++i) {
      report.phases[i].duration_us = phases[i].duration;
    }
  }
  auto phase_index = [&phase_edge](sim::Time t) {
    for (std::size_t i = 0; i + 1 < phase_edge.size(); ++i) {
      if (t < phase_edge[i]) return i;
    }
    return phase_edge.size() - 1;
  };

  obs::Histogram commit_hist(obs::latency_buckets_us());
  obs::Histogram delivery_hist(obs::latency_buckets_us());
  std::vector<std::unique_ptr<obs::Histogram>> phase_hist;
  phase_hist.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    phase_hist.push_back(
        std::make_unique<obs::Histogram>(obs::latency_buckets_us()));
  }

  // ----- replicated application ---------------------------------------------
  // One KV replica per (shard, shard-local process): each shard's column
  // replicates exactly its own key partition.
  std::vector<std::vector<apps::KvStateMachine>> kv;
  kv.reserve(shard_count);
  for (std::size_t k = 1; k <= shard_count; ++k) {
    kv.emplace_back(
        cluster.assignment(static_cast<std::uint32_t>(k)).replicas.size());
  }
  std::unordered_map<std::uint64_t, PendingWrite> pending;
  std::uint64_t next_uid = 1;

  std::vector<ClientState> clients;
  clients.reserve(sc.clients);
  for (std::size_t i = 0; i < sc.clients; ++i) {
    clients.push_back(ClientState{
        OpGenerator(sc.mix, client_stream_seed(seed, i)),
        ProcessId{static_cast<ProcessId::Rep>(i % sc.n)}, 0});
  }

  const sim::Time op_timeout =
      std::max<sim::Time>(2 * sim::kSecond, 10 * cc.vs.suspect_timeout);

  sim::Simulator& sim = cluster.sim();

  std::function<void(std::size_t)> issue_op;
  std::function<void(std::size_t)> arm_open;
  auto schedule_next = [&](std::size_t ci) {
    const sim::Time now = sim.now();
    if (now >= sc.horizon) return;
    const double mult = sc.rate_mult_at(now);
    const double mean = std::max(
        1.0, static_cast<double>(sc.think == 0 ? 1 : sc.think) / mult);
    const sim::Time at = now + clients[ci].gen.arrival_gap_us(mean);
    if (at >= sc.horizon) return;
    sim.schedule_at(at, [&issue_op, ci] { issue_op(ci); });
  };

  for (std::size_t k = 1; k <= shard_count; ++k) {
    const auto g = static_cast<std::uint32_t>(k);
    cluster.shard(g).set_delivery_hook([&, k](const tosys::Delivery& d) {
      kv[k - 1][d.receiver.value()].apply(d.msg.payload);
      auto it = pending.find(d.msg.uid);
      if (it == pending.end()) return;
      PendingWrite& w = it->second;
      const sim::Time lat = d.at - w.submitted;
      delivery_hist.observe(lat);
      if (d.receiver != d.msg.origin || w.committed) return;
      w.committed = true;
      commit_hist.observe(lat);
      phase_hist[w.phase]->observe(lat);
      ++report.commits;
      ++report.completed;
      ++report.phases[w.phase].completed;
      ClientState& c = clients[w.client];
      if (sc.closed_loop && c.waiting_uid == d.msg.uid) {
        c.waiting_uid = 0;
        schedule_next(w.client);
      }
    });
  }

  // After a migration the slot's new incarnation owns the donor's delivered
  // prefix — positions the old KV mirror may never have applied (the donor
  // was ahead) or has already applied (the donor lagged; re-deliveries
  // re-apply idempotently through the delivery hook). Rebuild the mirror
  // from the column's recovered order so the digest-convergence check stays
  // meaningful across re-provisioning.
  if (scc.dynamic) {
    cluster.set_handoff_hook([&](std::uint32_t g, ProcessId slot) {
      const auto& at = cluster.shard(g).to_node(slot).automaton();
      apps::KvStateMachine fresh;
      const std::uint64_t next = at.nextreport();
      for (std::uint64_t i = 1; i < next && i <= at.order().size(); ++i) {
        auto it = at.content().find(at.order()[i - 1]);
        if (it != at.content().end()) fresh.apply(it->second.payload);
      }
      kv[g - 1][slot.value()] = std::move(fresh);
    });
  }

  // key -> (shard, shard-local replica the client talks to). The router
  // resolves the contact from the live pool view; the port map translates
  // it into the column's local id space.
  auto route = [&](const std::string& key, ProcessId home) {
    const std::uint32_t g = cluster.router().shard_of(key);
    const ProcessId contact = cluster.router().contact(g, home);
    return std::pair<std::uint32_t, ProcessId>(g,
                                               cluster.local_id(g, contact));
  };

  issue_op = [&](std::size_t ci) {
    const sim::Time now = sim.now();
    if (now >= sc.horizon) return;
    ClientState& c = clients[ci];
    const Op op = c.gen.next();
    const std::size_t ph = phase_index(now);
    ++report.issued;
    ++report.phases[ph].issued;
    const std::string key = "k" + std::to_string(op.key);
    switch (op.kind) {
      case OpKind::kRead: {
        ++report.reads;
        ++report.phases[ph].reads;
        const auto [g, local] = route(key, c.home);
        (void)kv[g - 1][local.value()].get(key);
        ++report.completed;
        ++report.phases[ph].completed;
        if (sc.closed_loop) schedule_next(ci);
        break;
      }
      case OpKind::kScan: {
        ++report.scans;
        ++report.phases[ph].scans;
        // Scans read the contact replica of the key's home shard; keys
        // hashing to sibling shards are out of partition by design.
        const auto [g, local] = route(key, c.home);
        const auto& data = kv[g - 1][local.value()].data();
        auto it = data.lower_bound(key);
        for (std::size_t k = 0; k < op.scan_len && it != data.end();
             ++k, ++it) {
        }
        ++report.completed;
        ++report.phases[ph].completed;
        if (sc.closed_loop) schedule_next(ci);
        break;
      }
      case OpKind::kWrite: {
        ++report.writes;
        ++report.phases[ph].writes;
        const std::uint64_t uid = next_uid++;
        pending.emplace(uid, PendingWrite{ci, now, ph, false});
        if (sc.closed_loop) {
          c.waiting_uid = uid;
          sim.schedule_at(now + op_timeout, [&, ci, uid] {
            if (clients[ci].waiting_uid != uid) return;
            clients[ci].waiting_uid = 0;
            ++report.timeouts;
            schedule_next(ci);
          });
        }
        const auto [g, local] = route(key, c.home);
        cluster.bcast(g, local, AppMsg{uid, local, "put " + key + " " +
                                                       op.value});
        break;
      }
    }
  };

  if (sc.closed_loop) {
    for (std::size_t i = 0; i < sc.clients; ++i) {
      sim.schedule_at(sc.warmup + static_cast<sim::Time>(i + 1) * 100,
                      [&issue_op, i] { issue_op(i); });
    }
  } else {
    arm_open = [&](std::size_t ci) {
      const sim::Time now = std::max(sim.now(), sc.warmup);
      const double per_client =
          sc.rate * sc.rate_mult_at(now) / static_cast<double>(sc.clients);
      const sim::Time at =
          now + clients[ci].gen.arrival_gap_us(1e6 / per_client);
      if (at >= sc.horizon) return;
      sim.schedule_at(at, [&, ci] {
        issue_op(ci);
        arm_open(ci);
      });
    };
    for (std::size_t i = 0; i < sc.clients; ++i) arm_open(i);
  }

  // ----- availability sampling and mid-run invariant checks ------------------
  // "Available" = every shard has a primary-capable member (the pool serves
  // its whole keyspace); at K=1 this is exactly the unsharded sample.
  for (sim::Time t = sc.warmup; t < sc.horizon; t += sc.sample_period) {
    sim.schedule_at(t, [&, t] {
      const std::size_t ph = phase_index(t);
      ++report.samples;
      ++report.phases[ph].samples;
      if (cluster.min_primary_fraction() > 0.0) {
        ++report.available_samples;
        ++report.phases[ph].available_samples;
      }
    });
  }
  const sim::Time check_period =
      std::max(kInvariantCheckPeriod, sc.horizon / 200);
  for (sim::Time t = check_period; t < sc.horizon; t += check_period) {
    sim.schedule_at(t, [&cluster] { (void)cluster.check_invariants(); });
  }

  // ----- run -----------------------------------------------------------------
  cluster.start();
  cluster.run_for(sc.horizon);

  cluster.net().heal();
  for (ProcessId p : cluster.pool()) cluster.net().resume(p);
  cluster.run_for(sc.settle);
  auto open_view_changes = [&] {
    std::size_t open = 0;
    for (std::size_t k = 1; k <= shard_count; ++k) {
      const auto& column = cluster.shard(static_cast<std::uint32_t>(k));
      open += obs::check_span_invariants(column.trace()).open_view_change;
    }
    return open;
  };
  for (int round = 0; round < 8 && open_view_changes() > 0; ++round) {
    cluster.run_for(sc.settle);
  }
  (void)cluster.check_invariants();

  if (!cluster.oracle_ok()) {
    throw ScenarioFailure(
        seed, failure_message(seed, sc, plan, cluster.violation_message()));
  }

  // ----- report assembly -----------------------------------------------------
  report.commit_latency = commit_hist.snapshot();
  report.delivery_latency = delivery_hist.snapshot();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    report.phases[i].commit_latency = phase_hist[i]->snapshot();
  }
  report.fault_events = plan.events.size();
  report.restarts = cluster.restarts();
  bool converged = true;
  std::size_t span_violations = 0;
  for (std::size_t k = 1; k <= shard_count; ++k) {
    const auto g = static_cast<std::uint32_t>(k);
    tosys::Cluster& column = cluster.shard(g);
    for (ProcessId local : column.universe()) {
      report.views_installed += column.vs_node(local).stats().views_installed;
    }
    for (std::size_t i = 1; i < kv[k - 1].size(); ++i) {
      if (kv[k - 1][i].digest() != kv[k - 1][0].digest()) converged = false;
    }
    const obs::SpanInvariantReport spans =
        obs::check_span_invariants(column.trace());
    obs::publish_span_invariants(spans, column.metrics());
    span_violations += spans.open_view_change + spans.non_nested_delivery +
                       spans.overlapping_registration;
  }
  report.converged_seeds = converged ? 1 : 0;
  report.span_violations = span_violations;

  SeedOutcome out;
  out.slo = std::move(report);
  out.metrics = cluster.metrics_snapshot();
  return out;
}

}  // namespace dvs::workload::detail
