// Internal: the sharded half of the scenario runner (scenario.shards >= 1).
// run_scenario_seed dispatches here; everything public stays in runner.h.
#pragma once

#include <cstdint>

#include "workload/runner.h"

namespace dvs::workload::detail {

/// Mirrors run_scenario_seed over a shard::ShardCluster: same client swarm
/// and Rng draw sequences, operations routed per key by shard::ShardRouter.
/// At shards=1 / replication=0 the SLO report is byte-identical to the
/// unsharded runner's (the K=1 equivalence differential).
[[nodiscard]] SeedOutcome run_sharded_scenario_seed(const Scenario& scenario,
                                                    std::uint64_t seed);

}  // namespace dvs::workload::detail
