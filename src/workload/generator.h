// YCSB-style deterministic load generation: key-popularity distributions
// (uniform / zipfian / latest), read/write/scan operation mixes, and
// per-client operation streams with independent RNG state.
//
// Every client owns its own Rng, seeded by a splitmix64 hash of
// (scenario seed, client id) — so client c's operation stream is a pure
// function of (seed, c, mix) and never shifts when other clients are added,
// removed, or interleaved differently (tests/workload/test_generator.cpp
// asserts this stream independence, plus closed-form frequency bounds for
// each distribution and byte-exact seed replay).
//
// The zipfian generator is the Gray et al. algorithm YCSB uses
// (ZipfianGenerator): O(1) per draw after an O(n) zeta precomputation,
// rank 0 the hottest key. "latest" composes it with a moving head that
// advances on every write, skewing popularity toward recently written keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dvs::workload {

/// Key-popularity distribution of a mix.
enum class KeyDist : std::uint8_t { kUniform, kZipfian, kLatest };

[[nodiscard]] const char* to_string(KeyDist dist);
/// Parses "uniform" / "zipfian" / "latest"; throws std::runtime_error.
[[nodiscard]] KeyDist parse_key_dist(const std::string& text);

enum class OpKind : std::uint8_t { kRead, kWrite, kScan };

/// One generated client operation. `key` is a rank in [0, keys); writes
/// carry a deterministic value, scans a run length.
struct Op {
  OpKind kind = OpKind::kRead;
  std::uint64_t key = 0;
  std::size_t scan_len = 0;
  std::string value;  // writes only

  friend bool operator==(const Op&, const Op&) = default;
};

/// A YCSB-like operation mix over a bounded keyspace.
struct MixConfig {
  std::size_t keys = 1000;
  KeyDist dist = KeyDist::kZipfian;
  /// Zipfian skew parameter (YCSB default 0.99); also used by kLatest.
  double theta = 0.99;
  /// Operation percentages; must sum to 100.
  std::uint32_t reads = 50;
  std::uint32_t writes = 45;
  std::uint32_t scans = 5;
  std::size_t scan_len = 10;
  /// Minimum length writes' values are padded to.
  std::size_t value_len = 8;

  friend bool operator==(const MixConfig&, const MixConfig&) = default;

  /// Throws std::runtime_error on an inconsistent mix (percentages not
  /// summing to 100, empty keyspace, theta outside (0, 1)).
  void validate() const;
};

/// Gray et al. bounded zipfian: ranks 0..n-1 with P(rank r) proportional to
/// 1/(r+1)^theta. Deterministic given the caller's Rng.
class ZipfianGenerator {
 public:
  /// Precomputes zeta(n, theta); theta in (0, 1), n >= 1.
  ZipfianGenerator(std::size_t n, double theta);

  /// Draws one rank in [0, n) using two uniform() draws at most.
  [[nodiscard]] std::uint64_t next(Rng& rng) const;

  /// Closed-form P(rank r) — the expectation the frequency tests check
  /// empirical counts against.
  [[nodiscard]] double probability(std::uint64_t rank) const;

  [[nodiscard]] std::size_t n() const { return n_; }

 private:
  std::size_t n_;
  double theta_;
  double zeta_n_;   // sum_{i=1..n} 1/i^theta
  double alpha_;    // 1 / (1 - theta)
  double eta_;
};

/// Splitmix64-mixed per-client stream seed: decorrelates client streams
/// from each other and from the scenario's network/fault RNGs.
[[nodiscard]] std::uint64_t client_stream_seed(std::uint64_t scenario_seed,
                                               std::uint64_t client_id);

/// One client's deterministic operation stream.
class OpGenerator {
 public:
  /// `seed` should be client_stream_seed(scenario_seed, client_id).
  OpGenerator(const MixConfig& mix, std::uint64_t seed);

  /// The next operation of this client's stream.
  [[nodiscard]] Op next();

  /// Draws per exponential inter-arrival gap for open-loop pacing, from the
  /// same client stream (mean in simulated microseconds, >= 1).
  [[nodiscard]] std::uint64_t arrival_gap_us(double mean_us);

  [[nodiscard]] std::uint64_t ops_generated() const { return ops_; }

 private:
  [[nodiscard]] std::uint64_t draw_key();

  MixConfig mix_;
  Rng rng_;
  ZipfianGenerator zipf_;
  std::uint64_t head_ = 0;  // kLatest: advances on every write
  std::uint64_t ops_ = 0;
};

/// Renders a write's deterministic value: "v<key>." padded to value_len.
[[nodiscard]] std::string make_value(std::uint64_t key, std::size_t value_len);

}  // namespace dvs::workload
