#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "apps/state_machine.h"
#include "common/labels.h"
#include "net/fault_plan.h"
#include "obs/stack_tracer.h"
#include "tosys/cluster.h"

namespace dvs::workload {

namespace {

constexpr sim::Time kInvariantCheckPeriod = 100 * sim::kMillisecond;

/// A write in flight: who issued it, when, and in which phase.
struct PendingWrite {
  std::size_t client = 0;
  sim::Time submitted = 0;
  std::size_t phase = 0;
  bool committed = false;
};

struct ClientState {
  OpGenerator gen;
  ProcessId home{};
  std::uint64_t waiting_uid = 0;  // closed loop: the outstanding write
};

/// Skeleton report: scenario identity, declared SLOs and the phase
/// structure with all measurements zero. Sweeps merge every passing seed
/// into this, so even an all-failed sweep serializes coherently.
SloReport skeleton_report(const Scenario& sc) {
  SloReport r;
  r.scenario = sc.name;
  r.n = sc.n;
  r.seeds = 0;
  r.first_seed = sc.seed;
  r.slo_availability_ppm = sc.slo_availability_ppm;
  r.slo_p99_commit_ms = sc.slo_p99_commit_ms;
  for (const Phase& ph : sc.effective_phases()) {
    PhaseSlo p;
    p.name = ph.name;
    r.phases.push_back(std::move(p));
  }
  return r;
}

std::string failure_message(std::uint64_t seed, const Scenario& sc,
                            const net::FaultPlan& plan,
                            const spec::TraceRecorder& oracle) {
  std::string out = "scenario '" + sc.name + "' seed " + std::to_string(seed) +
                    " (n=" + std::to_string(sc.n) +
                    "): " + oracle.violation()->to_string();
  out += "\nfault plan (replay with net::FaultPlan::parse):\n";
  out += plan.to_string();
  const std::string tail = oracle.tail();
  if (!tail.empty()) out += "trace tail:\n" + tail;
  return out;
}

}  // namespace

SeedOutcome run_scenario_seed(const Scenario& sc, std::uint64_t seed) {
  sc.validate();

  tosys::ClusterConfig cc;
  cc.n_processes = sc.n;
  cc.initial_members = sc.initial;
  cc.net = sc.net_config();
  if (sc.heartbeat_ms != 0) {
    cc.vs.heartbeat_period = sc.heartbeat_ms * sim::kMillisecond;
  }
  if (sc.suspect_ms != 0) {
    cc.vs.suspect_timeout = sc.suspect_ms * sim::kMillisecond;
  }
  if (sc.propose_ms != 0) {
    cc.vs.propose_timeout = sc.propose_ms * sim::kMillisecond;
  }
  cc.vs.stability = sc.watermarks ? vsys::StabilityMode::kWatermark
                                  : vsys::StabilityMode::kExplicitAck;
  // The oracle checks every event ONLINE; storing the full event streams as
  // well would hold a copy of every TO summary exchanged at every primary
  // establishment — O(history x views) memory on long churny horizons — so
  // trace retention stays off. A failing seed is replayed from its embedded
  // fault plan instead of a stored tail.
  cc.record_traces = false;
  cc.conformance_oracle = true;
  cc.persistence = sc.needs_persistence();
  tosys::Cluster cluster(cc, seed);

  const net::FaultPlan plan = sc.compile_faults(seed);
  net::FaultPlan::ScheduleHooks hooks;
  hooks.crashes_restart = sc.crashes_restart();
  if (cc.persistence) {
    hooks.restart = [&cluster](ProcessId p) { cluster.restart(p); };
  }
  plan.schedule(cluster.sim(), cluster.net(), hooks);

  // ----- measurement state ---------------------------------------------------
  SloReport report = skeleton_report(sc);
  report.seeds = 1;
  report.first_seed = seed;
  report.measured_us = sc.horizon - sc.warmup;

  const std::vector<Phase> phases = sc.effective_phases();
  std::vector<sim::Time> phase_edge;  // cumulative end times over [0, horizon)
  {
    sim::Time edge = 0;
    for (const Phase& ph : phases) {
      edge += ph.duration;
      phase_edge.push_back(edge);
    }
    for (std::size_t i = 0; i < phases.size(); ++i) {
      report.phases[i].duration_us = phases[i].duration;
    }
  }
  auto phase_index = [&phase_edge](sim::Time t) {
    for (std::size_t i = 0; i + 1 < phase_edge.size(); ++i) {
      if (t < phase_edge[i]) return i;
    }
    return phase_edge.size() - 1;
  };

  obs::Histogram commit_hist(obs::latency_buckets_us());
  obs::Histogram delivery_hist(obs::latency_buckets_us());
  std::vector<std::unique_ptr<obs::Histogram>> phase_hist;
  phase_hist.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    phase_hist.push_back(
        std::make_unique<obs::Histogram>(obs::latency_buckets_us()));
  }

  // ----- replicated application ---------------------------------------------
  std::vector<apps::KvStateMachine> replicas(sc.n);
  std::unordered_map<std::uint64_t, PendingWrite> pending;
  std::uint64_t next_uid = 1;

  std::vector<ClientState> clients;
  clients.reserve(sc.clients);
  for (std::size_t i = 0; i < sc.clients; ++i) {
    clients.push_back(ClientState{
        OpGenerator(sc.mix, client_stream_seed(seed, i)),
        ProcessId{static_cast<ProcessId::Rep>(i % sc.n)}, 0});
  }

  // A write that cannot commit (home crashed mid-protocol) must not wedge
  // its closed-loop client: give the stack ample time to change views and
  // recover, then abandon the wait.
  const sim::Time op_timeout =
      std::max<sim::Time>(2 * sim::kSecond, 10 * cc.vs.suspect_timeout);

  sim::Simulator& sim = cluster.sim();

  // Continuation cycles (closed-loop think chains, open-loop arrival
  // chains); function-scope so scheduled events can reference them safely.
  std::function<void(std::size_t)> issue_op;
  std::function<void(std::size_t)> arm_open;
  auto schedule_next = [&](std::size_t ci) {
    const sim::Time now = sim.now();
    if (now >= sc.horizon) return;
    const double mult = sc.rate_mult_at(now);
    const double mean = std::max(
        1.0, static_cast<double>(sc.think == 0 ? 1 : sc.think) / mult);
    const sim::Time at = now + clients[ci].gen.arrival_gap_us(mean);
    if (at >= sc.horizon) return;
    sim.schedule_at(at, [&issue_op, ci] { issue_op(ci); });
  };

  cluster.set_delivery_hook([&](const tosys::Delivery& d) {
    replicas[d.receiver.value()].apply(d.msg.payload);
    auto it = pending.find(d.msg.uid);
    if (it == pending.end()) return;
    PendingWrite& w = it->second;
    const sim::Time lat = d.at - w.submitted;
    delivery_hist.observe(lat);
    if (d.receiver != d.msg.origin || w.committed) return;
    w.committed = true;
    commit_hist.observe(lat);
    phase_hist[w.phase]->observe(lat);
    ++report.commits;
    ++report.completed;
    ++report.phases[w.phase].completed;
    ClientState& c = clients[w.client];
    if (sc.closed_loop && c.waiting_uid == d.msg.uid) {
      c.waiting_uid = 0;
      schedule_next(w.client);
    }
  });

  issue_op = [&](std::size_t ci) {
    const sim::Time now = sim.now();
    if (now >= sc.horizon) return;
    ClientState& c = clients[ci];
    const Op op = c.gen.next();
    const std::size_t ph = phase_index(now);
    ++report.issued;
    ++report.phases[ph].issued;
    const std::string key = "k" + std::to_string(op.key);
    switch (op.kind) {
      case OpKind::kRead: {
        ++report.reads;
        ++report.phases[ph].reads;
        (void)replicas[c.home.value()].get(key);
        ++report.completed;
        ++report.phases[ph].completed;
        if (sc.closed_loop) schedule_next(ci);
        break;
      }
      case OpKind::kScan: {
        ++report.scans;
        ++report.phases[ph].scans;
        const auto& data = replicas[c.home.value()].data();
        auto it = data.lower_bound(key);
        for (std::size_t k = 0; k < op.scan_len && it != data.end();
             ++k, ++it) {
        }
        ++report.completed;
        ++report.phases[ph].completed;
        if (sc.closed_loop) schedule_next(ci);
        break;
      }
      case OpKind::kWrite: {
        ++report.writes;
        ++report.phases[ph].writes;
        const std::uint64_t uid = next_uid++;
        pending.emplace(uid, PendingWrite{ci, now, ph, false});
        if (sc.closed_loop) {
          c.waiting_uid = uid;
          sim.schedule_at(now + op_timeout, [&, ci, uid] {
            if (clients[ci].waiting_uid != uid) return;
            clients[ci].waiting_uid = 0;
            ++report.timeouts;
            schedule_next(ci);
          });
        }
        cluster.bcast(c.home, AppMsg{uid, c.home, "put " + key + " " +
                                                      op.value});
        break;
      }
    }
  };

  if (sc.closed_loop) {
    // Stagger the first operations so clients never lock step at warmup.
    for (std::size_t i = 0; i < sc.clients; ++i) {
      sim.schedule_at(sc.warmup + static_cast<sim::Time>(i + 1) * 100,
                      [&issue_op, i] { issue_op(i); });
    }
  } else {
    // Open loop: per-client Poisson arrival chains targeting the aggregate
    // rate, scaled by the phase/burst multiplier at arming time.
    arm_open = [&](std::size_t ci) {
      const sim::Time now = std::max(sim.now(), sc.warmup);
      const double per_client =
          sc.rate * sc.rate_mult_at(now) / static_cast<double>(sc.clients);
      const sim::Time at =
          now + clients[ci].gen.arrival_gap_us(1e6 / per_client);
      if (at >= sc.horizon) return;
      sim.schedule_at(at, [&, ci] {
        issue_op(ci);
        arm_open(ci);
      });
    };
    for (std::size_t i = 0; i < sc.clients; ++i) arm_open(i);
  }

  // ----- availability sampling and mid-run invariant checks ------------------
  for (sim::Time t = sc.warmup; t < sc.horizon; t += sc.sample_period) {
    sim.schedule_at(t, [&, t] {
      const std::size_t ph = phase_index(t);
      ++report.samples;
      ++report.phases[ph].samples;
      if (cluster.primary_fraction() > 0.0) {
        ++report.available_samples;
        ++report.phases[ph].available_samples;
      }
    });
  }
  // Mid-run state-invariant checks (Invariants 4.1/4.2): every 100ms on
  // short runs, stretched to ~200 checks total on long soaks.
  const sim::Time check_period =
      std::max(kInvariantCheckPeriod, sc.horizon / 200);
  for (sim::Time t = check_period; t < sc.horizon; t += check_period) {
    sim.schedule_at(t, [&cluster] { (void)cluster.oracle().check_invariants(); });
  }

  // ----- run -----------------------------------------------------------------
  cluster.start();
  cluster.run_for(sc.horizon);

  // Recovery epilogue, as in the chaos harness: heal, resume everyone, let
  // the stack converge, and keep the oracle watching the repair traffic.
  cluster.net().heal();
  for (ProcessId p : cluster.universe()) cluster.net().resume(p);
  cluster.run_for(sc.settle);
  // A churny plan can leave the last rejoin's view change mid-flight at the
  // settle deadline; give the membership layer bounded extra rounds to
  // quiesce (a genuinely wedged stack still fails the span check below).
  for (int round = 0;
       round < 8 &&
       obs::check_span_invariants(cluster.trace()).open_view_change > 0;
       ++round) {
    cluster.run_for(sc.settle);
  }
  (void)cluster.oracle().check_invariants();

  if (!cluster.oracle().ok()) {
    throw ScenarioFailure(seed,
                          failure_message(seed, sc, plan, cluster.oracle()));
  }

  // ----- report assembly -----------------------------------------------------
  report.commit_latency = commit_hist.snapshot();
  report.delivery_latency = delivery_hist.snapshot();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    report.phases[i].commit_latency = phase_hist[i]->snapshot();
  }
  report.fault_events = plan.events.size();
  report.restarts = cluster.restarts();
  for (ProcessId p : cluster.universe()) {
    report.views_installed += cluster.vs_node(p).stats().views_installed;
  }
  bool converged = true;
  for (std::size_t i = 1; i < sc.n; ++i) {
    if (replicas[i].digest() != replicas[0].digest()) converged = false;
  }
  report.converged_seeds = converged ? 1 : 0;

  const obs::SpanInvariantReport spans =
      obs::check_span_invariants(cluster.trace());
  obs::publish_span_invariants(spans, cluster.metrics());
  report.span_violations = spans.open_view_change + spans.non_nested_delivery +
                           spans.overlapping_registration;

  SeedOutcome out;
  out.slo = std::move(report);
  out.metrics = cluster.metrics_snapshot();
  return out;
}

ScenarioSweepResult run_scenario(const Scenario& sc, std::size_t jobs) {
  sc.validate();
  const std::size_t count = sc.seeds;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  jobs = std::min(jobs, count);

  // One slot per seed, indexed by seed offset — never by worker — so the
  // merge below is independent of scheduling (the SeedSweep contract).
  std::vector<std::optional<SeedOutcome>> outcomes(count);
  std::vector<std::string> errors(count);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        outcomes[i] = run_scenario_seed(sc, sc.seed + i);
      } catch (const std::exception& e) {
        errors[i] = e.what();
        if (errors[i].empty()) errors[i] = "unknown failure";
      }
    }
  };
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ScenarioSweepResult result;
  result.slo = skeleton_report(sc);
  for (std::size_t i = 0; i < count; ++i) {
    if (outcomes[i].has_value()) {
      result.slo += outcomes[i]->slo;
      result.metrics += outcomes[i]->metrics;
      ++result.seeds_run;
    } else {
      if (result.first_failure.empty()) {
        result.first_failing_seed = sc.seed + i;
        result.first_failure = errors[i];
      }
      ++result.seeds_failed;
    }
  }
  return result;
}

}  // namespace dvs::workload
