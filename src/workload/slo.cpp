#include "workload/slo.h"

#include <sstream>
#include <stdexcept>

namespace dvs::workload {

namespace {

void merge_histogram(obs::HistogramSnapshot& into,
                     const obs::HistogramSnapshot& from) {
  if (from.bounds.empty()) return;
  if (into.bounds.empty()) {
    into = from;
  } else {
    into += from;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emit_histogram(std::ostream& os, const obs::HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"max\":" << h.max
     << ",\"p50\":" << h.p50() << ",\"p95\":" << h.p95()
     << ",\"p99\":" << h.p99() << "}";
}

std::uint64_t ppm(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 1'000'000;  // nothing sampled = no downtime observed
  return part * 1'000'000 / whole;
}

}  // namespace

std::uint64_t PhaseSlo::availability_ppm() const {
  return ppm(available_samples, samples);
}

PhaseSlo& PhaseSlo::operator+=(const PhaseSlo& other) {
  if (name != other.name) {
    throw std::logic_error("PhaseSlo merge: '" + name + "' vs '" + other.name +
                           "'");
  }
  duration_us += other.duration_us;
  issued += other.issued;
  completed += other.completed;
  reads += other.reads;
  writes += other.writes;
  scans += other.scans;
  merge_histogram(commit_latency, other.commit_latency);
  samples += other.samples;
  available_samples += other.available_samples;
  return *this;
}

std::uint64_t SloReport::availability_ppm() const {
  return ppm(available_samples, samples);
}

std::uint64_t SloReport::throughput_ops_per_sec() const {
  if (measured_us == 0) return 0;
  return completed * 1'000'000 / measured_us;
}

bool SloReport::slo_pass() const {
  if (oracle_violations != 0 || span_violations != 0) return false;
  if (slo_availability_ppm != 0 && availability_ppm() < slo_availability_ppm) {
    return false;
  }
  if (slo_p99_commit_ms != 0 &&
      commit_latency.p99() > slo_p99_commit_ms * 1000) {
    return false;
  }
  return true;
}

SloReport& SloReport::operator+=(const SloReport& other) {
  if (scenario != other.scenario) {
    throw std::logic_error("SloReport merge: scenario '" + scenario +
                           "' vs '" + other.scenario + "'");
  }
  if (phases.size() != other.phases.size()) {
    throw std::logic_error("SloReport merge: phase structure differs");
  }
  seeds += other.seeds;
  measured_us += other.measured_us;
  issued += other.issued;
  completed += other.completed;
  reads += other.reads;
  writes += other.writes;
  scans += other.scans;
  commits += other.commits;
  timeouts += other.timeouts;
  merge_histogram(commit_latency, other.commit_latency);
  merge_histogram(delivery_latency, other.delivery_latency);
  samples += other.samples;
  available_samples += other.available_samples;
  oracle_violations += other.oracle_violations;
  span_violations += other.span_violations;
  converged_seeds += other.converged_seeds;
  restarts += other.restarts;
  fault_events += other.fault_events;
  views_installed += other.views_installed;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    phases[i] += other.phases[i];
  }
  return *this;
}

std::string SloReport::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"scenario\":\"" << json_escape(scenario) << "\"";
  os << ",\"n\":" << n;
  os << ",\"seeds\":" << seeds;
  os << ",\"first_seed\":" << first_seed;
  os << ",\"measured_us\":" << measured_us;
  os << ",\"ops\":{\"issued\":" << issued << ",\"completed\":" << completed
     << ",\"reads\":" << reads << ",\"writes\":" << writes
     << ",\"scans\":" << scans << ",\"commits\":" << commits
     << ",\"timeouts\":" << timeouts << "}";
  os << ",\"throughput_ops_per_sec\":" << throughput_ops_per_sec();
  os << ",\"latency_us\":{\"commit\":";
  emit_histogram(os, commit_latency);
  os << ",\"delivery\":";
  emit_histogram(os, delivery_latency);
  os << "}";
  os << ",\"availability\":{\"samples\":" << samples
     << ",\"available\":" << available_samples
     << ",\"ppm\":" << availability_ppm() << "}";
  os << ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSlo& ph = phases[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << json_escape(ph.name) << "\"";
    os << ",\"duration_us\":" << ph.duration_us;
    os << ",\"issued\":" << ph.issued << ",\"completed\":" << ph.completed
       << ",\"reads\":" << ph.reads << ",\"writes\":" << ph.writes
       << ",\"scans\":" << ph.scans;
    os << ",\"commit\":";
    emit_histogram(os, ph.commit_latency);
    os << ",\"availability_ppm\":" << ph.availability_ppm();
    os << "}";
  }
  os << "]";
  os << ",\"stack\":{\"views_installed\":" << views_installed
     << ",\"fault_events\":" << fault_events << ",\"restarts\":" << restarts
     << ",\"converged_seeds\":" << converged_seeds << "}";
  os << ",\"violations\":{\"oracle\":" << oracle_violations
     << ",\"spans\":" << span_violations << "}";
  os << ",\"slo\":{\"availability_ppm\":" << slo_availability_ppm
     << ",\"p99_commit_ms\":" << slo_p99_commit_ms
     << ",\"pass\":" << (slo_pass() ? 1 : 0) << "}";
  os << "}";
  return os.str();
}

}  // namespace dvs::workload
