// Scenario execution: drives the full distributed stack (tosys::Cluster +
// replicated KV state machines) with the scenario's client swarm, topology
// and compiled fault plan, and measures the SLO report.
//
// One seed = one self-contained simulated run with the conformance oracle
// and span tracer always on: an oracle violation aborts the seed with a
// ScenarioFailure whose message embeds the replayable fault plan, exactly
// like the chaos harness. run_scenario fans the scenario's seed range over
// a thread pool with the SeedSweep determinism contract — results merge in
// seed order, the LOWEST failing seed is reported — so the merged SLO
// report and metrics are byte-identical for any --jobs value.
//
// Client model:
//   * closed-loop clients keep one operation in flight each; think times
//     are exponential with mean think/rate_mult, and a write that fails to
//     commit within the op timeout is abandoned (counted in `timeouts`) so
//     a crashed home replica never wedges the client;
//   * open-loop clients issue at exponential inter-arrival gaps targeting
//     `rate` aggregate ops/s (scaled per phase/burst), never waiting.
// Reads and scans are served by the client's home replica locally; writes
// are TO-broadcast and complete when the BRCV returns at the origin.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "workload/scenario.h"
#include "workload/slo.h"

namespace dvs::workload {

/// A seed whose run violated the spec (oracle) — the message embeds the
/// seed and the compiled fault plan for bit-identical replay.
class ScenarioFailure : public std::runtime_error {
 public:
  ScenarioFailure(std::uint64_t seed, const std::string& message)
      : std::runtime_error(message), seed_(seed) {}
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

/// One seed's measurements: the single-seed SLO report (seeds == 1) and the
/// cluster metrics snapshot with span invariants published into it.
struct SeedOutcome {
  SloReport slo;
  obs::MetricsSnapshot metrics;
};

/// Runs one seed to completion; throws ScenarioFailure on an oracle
/// violation (the run, not the report, is the conformance check).
[[nodiscard]] SeedOutcome run_scenario_seed(const Scenario& scenario,
                                            std::uint64_t seed);

struct ScenarioSweepResult {
  /// Seed-order merge of every passing seed's report / metrics.
  SloReport slo;
  obs::MetricsSnapshot metrics;
  std::size_t seeds_run = 0;
  std::size_t seeds_failed = 0;
  /// Lowest failing seed's ScenarioFailure::what(); empty when all passed.
  std::uint64_t first_failing_seed = 0;
  std::string first_failure;

  [[nodiscard]] bool ok() const { return seeds_failed == 0; }
};

/// Fans the scenario's seeds [seed, seed + seeds) over `jobs` worker
/// threads (0 = hardware_concurrency). Deterministic: the result is
/// byte-identical for any jobs value.
[[nodiscard]] ScenarioSweepResult run_scenario(const Scenario& scenario,
                                               std::size_t jobs = 0);

}  // namespace dvs::workload
