// Declarative workload + topology + fault scenarios: the `.scn` format.
//
// A scenario composes (1) a YCSB-style client workload (workload/generator.h)
// over the replicated-KV app, (2) a WAN topology — regions and an
// inter-region latency matrix applied through NetConfig — and (3) a fault
// script: flapping connectivity, correlated crash groups, rolling restarts,
// drop windows / dup bursts, and membership churn at a configurable rate.
//
// The fault script COMPILES DOWN to the existing net::FaultPlan vocabulary —
// no second fault language. The mapping (documented in docs/VERIFICATION.md
// and pinned by tests/workload/test_scenario.cpp's differential suite):
//
//   flap            → kPartition {target | rest} + kHeal pairs
//   crash_group     → one kCrash per member + one kRecover per member
//   rolling_restart → one kRestart per process, staggered
//   drop_window     → kDropWindow        dup_burst → kDupBurst
//   churn           → seeded kCrash/kRecover pairs at the configured rate;
//                     `churn ... restart` additionally arms the standard
//                     ScheduleHooks::crashes_restart upgrade (volatile state
//                     wiped at the crash instant, rebuilt from the WAL), so
//                     churn runs under exactly ChaosConfig's pause-vs-restart
//                     semantics.
//
// The text format is line-oriented key/value like daemon::DaemonConfig:
// '#' starts a comment, unknown keys are an error, parse(to_string())
// round-trips exactly. See docs/WORKLOADS.md for the full reference and
// scenarios/*.scn for the canonical instances.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/fault_plan.h"
#include "net/sim_network.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace dvs::workload {

/// One workload phase: `duration` of simulated time during which the
/// open-loop arrival rate is scaled by `rate_mult` (closed-loop clients
/// scale their think time by 1/rate_mult). Phase durations must sum to the
/// scenario horizon.
struct Phase {
  std::string name;
  sim::Time duration = 0;
  double rate_mult = 1.0;

  friend bool operator==(const Phase&, const Phase&) = default;
};

/// Flapping connectivity: `count` times, starting at `first` with the given
/// period, `target` is partitioned away from the rest for `down`, then the
/// partition heals. Compiles to kPartition/kHeal pairs.
struct FlapSpec {
  ProcessId target{};
  sim::Time first = 0;
  sim::Time period = 0;
  sim::Time down = 0;
  std::size_t count = 0;

  friend bool operator==(const FlapSpec&, const FlapSpec&) = default;
};

/// Correlated failure: every member of `targets` crashes (pause semantics,
/// or genuine crash-restart under `crashes_restart`) at `at` and recovers
/// `down` later. Compiles to kCrash/kRecover per member.
struct CrashGroupSpec {
  sim::Time at = 0;
  sim::Time down = 0;
  std::vector<ProcessId> targets;

  friend bool operator==(const CrashGroupSpec&, const CrashGroupSpec&) = default;
};

/// One kRestart per process, process i at start + i * stagger.
struct RollingRestartSpec {
  sim::Time start = 0;
  sim::Time stagger = 0;

  friend bool operator==(const RollingRestartSpec&,
                         const RollingRestartSpec&) = default;
};

/// A scripted drop window or dup burst (kDropWindow / kDupBurst).
struct WindowSpec {
  sim::Time at = 0;
  sim::Time duration = 0;
  double probability = 0.0;

  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

/// Membership churn: crash/recover events at `events_per_sec`, targets drawn
/// from a deterministic per-seed stream, each outage uniform in
/// [down_min, down_max]. `restart_semantics` upgrades every churn crash to a
/// genuine crash-restart via ScheduleHooks::crashes_restart (and implies
/// persistence) — the same single knob ChaosConfig uses.
struct ChurnSpec {
  double events_per_sec = 0.0;
  bool restart_semantics = false;
  sim::Time down_min = 0;
  sim::Time down_max = 0;

  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

struct Scenario {
  std::string name = "unnamed";

  // ----- cluster -------------------------------------------------------------
  std::size_t n = 3;
  /// Initial view size (0 = all n; fewer leaves late joiners).
  std::size_t initial = 0;
  /// 0 = the legacy unsharded stack (one tosys::Cluster). K >= 1 runs a
  /// shard::ShardCluster with K subgroups over the n-process pool; clients
  /// route every operation by key hash (shard::ShardRouter). shards=1 with
  /// replication 0 is the equivalence configuration — byte-identical SLO
  /// reports to shards=0.
  std::size_t shards = 0;
  /// Replicas per shard (0 = every pool member hosts every shard). Only
  /// meaningful with shards >= 1.
  std::size_t replication = 0;
  /// Dynamic shard re-provisioning (shard/reprovision.h): pool view changes
  /// migrate departed slots onto surviving members with state transfer.
  /// Requires shards >= 1; implies persistence (journals are the
  /// transferable state). With a stable pool this is byte-inert — the
  /// reprovision differential pins it.
  bool dynamic = false;
  /// Seeds swept per report: seeds [seed, seed + seeds) run independently
  /// and their SLO reports merge in seed order (byte-identical across
  /// --jobs values).
  std::uint64_t seeds = 1;
  std::uint64_t seed = 1;
  sim::Time warmup = 300 * sim::kMillisecond;
  sim::Time horizon = 10 * sim::kSecond;
  sim::Time settle = 3 * sim::kSecond;

  /// Protocol timers (vsys::VsConfig defaults when left 0).
  std::uint64_t heartbeat_ms = 0;
  std::uint64_t suspect_ms = 0;
  std::uint64_t propose_ms = 0;

  /// Stack knobs, mirroring ChaosConfig.
  bool watermarks = true;
  bool batching = false;
  bool persistence = false;

  // ----- workload ------------------------------------------------------------
  std::size_t clients = 4;
  /// true = closed loop (one op in flight per client, think time between);
  /// false = open loop (Poisson arrivals at `rate` aggregate ops/s).
  bool closed_loop = true;
  double rate = 100.0;
  sim::Time think = 5 * sim::kMillisecond;
  MixConfig mix;
  /// Availability / primary-fraction sampling period.
  sim::Time sample_period = 20 * sim::kMillisecond;
  std::vector<Phase> phases;  // empty = one "steady" phase over the horizon
  /// Burst train multiplier: within every [k*period, k*period + len) window
  /// of the horizon the arrival rate is additionally scaled by `burst_mult`.
  sim::Time burst_period = 0;
  sim::Time burst_len = 0;
  double burst_mult = 1.0;

  // ----- topology ------------------------------------------------------------
  /// WAN regions: process → region (defaults to region 0) and the symmetric
  /// inter-region one-way latency matrix. Empty matrix = the flat LAN
  /// default (NetConfig.base_delay).
  std::vector<std::size_t> region;  // indexed by process id; sized 0 or n
  std::vector<std::vector<sim::Time>> latency;  // region × region, µs

  /// Steady network anomalies (the scripted windows modulate on top).
  double drop = 0.0;
  double duplicate = 0.0;

  // ----- fault script --------------------------------------------------------
  std::vector<FlapSpec> flaps;
  std::vector<CrashGroupSpec> crash_groups;
  std::optional<RollingRestartSpec> rolling_restart;
  std::vector<WindowSpec> drop_windows;
  std::vector<WindowSpec> dup_bursts;
  std::optional<ChurnSpec> churn;

  // ----- declared SLOs (0 = not declared) ------------------------------------
  /// Minimum fraction of sampled instants with at least one process in a
  /// primary view, in parts per million.
  std::uint64_t slo_availability_ppm = 0;
  /// Maximum p99 write-commit latency in milliseconds.
  std::uint64_t slo_p99_commit_ms = 0;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// Parses the `.scn` text; throws std::runtime_error with the offending
  /// line on malformed input (unknown keys are errors). Calls validate().
  [[nodiscard]] static Scenario parse(const std::string& text);
  [[nodiscard]] static Scenario parse_file(const std::string& path);

  /// Canonical text form; parse(to_string()) reproduces the scenario
  /// exactly (doubles printed with round-trip precision).
  [[nodiscard]] std::string to_string() const;

  /// Consistency checks (phase durations sum to horizon, regions within the
  /// latency matrix, mix percentages, fault targets in range, ...); throws
  /// std::runtime_error with a diagnosis.
  void validate() const;

  /// True iff any fault needs stable storage (rolling restarts, or churn
  /// with restart semantics) — the runner turns persistence on for these
  /// exactly like ChaosConfig does.
  [[nodiscard]] bool needs_persistence() const;
  /// The single crash-vs-restart semantics knob, passed verbatim to
  /// FaultPlan::ScheduleHooks::crashes_restart.
  [[nodiscard]] bool crashes_restart() const;

  /// Compiles the fault script for one seed into the existing FaultPlan
  /// vocabulary (sorted by time; deterministic per seed). The scripted
  /// parts (flaps, crash groups, rolling restarts, windows) are
  /// seed-independent; churn events are drawn from Rng(seed ^ salt).
  [[nodiscard]] net::FaultPlan compile_faults(std::uint64_t run_seed) const;

  /// The NetConfig this scenario's topology translates to (WAN matrix,
  /// steady anomalies, batching).
  [[nodiscard]] net::NetConfig net_config() const;

  /// The effective phase list (the declared phases, or the implicit single
  /// steady phase covering the horizon).
  [[nodiscard]] std::vector<Phase> effective_phases() const;

  /// Arrival-rate multiplier at simulated time t (phase × burst train).
  [[nodiscard]] double rate_mult_at(sim::Time t) const;
};

}  // namespace dvs::workload
