#include "workload/generator.h"

#include <cmath>
#include <stdexcept>

namespace dvs::workload {

const char* to_string(KeyDist dist) {
  switch (dist) {
    case KeyDist::kUniform:
      return "uniform";
    case KeyDist::kZipfian:
      return "zipfian";
    case KeyDist::kLatest:
      return "latest";
  }
  return "?";
}

KeyDist parse_key_dist(const std::string& text) {
  if (text == "uniform") return KeyDist::kUniform;
  if (text == "zipfian") return KeyDist::kZipfian;
  if (text == "latest") return KeyDist::kLatest;
  throw std::runtime_error("unknown key distribution '" + text +
                           "' (want uniform|zipfian|latest)");
}

void MixConfig::validate() const {
  if (keys == 0) throw std::runtime_error("mix: keys must be > 0");
  if (reads + writes + scans != 100) {
    throw std::runtime_error("mix: reads + writes + scans must be 100, got " +
                             std::to_string(reads + writes + scans));
  }
  if (dist != KeyDist::kUniform && (theta <= 0.0 || theta >= 1.0)) {
    throw std::runtime_error("mix: theta must be in (0, 1)");
  }
  if (scans > 0 && scan_len == 0) {
    throw std::runtime_error("mix: scans need scan_len > 0");
  }
}

ZipfianGenerator::ZipfianGenerator(std::size_t n, double theta)
    : n_(n), theta_(theta) {
  if (n == 0) throw std::logic_error("ZipfianGenerator: n == 0");
  if (theta <= 0.0 || theta >= 1.0) {
    throw std::logic_error("ZipfianGenerator: theta outside (0, 1)");
  }
  zeta_n_ = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    zeta_n_ += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  alpha_ = 1.0 / (1.0 - theta);
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zeta_n_);
}

std::uint64_t ZipfianGenerator::next(Rng& rng) const {
  const double u = rng.uniform();
  const double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfianGenerator::probability(std::uint64_t rank) const {
  if (rank >= n_) return 0.0;
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zeta_n_);
}

std::uint64_t client_stream_seed(std::uint64_t scenario_seed,
                                 std::uint64_t client_id) {
  // splitmix64 finalizer over the packed pair: adjacent (seed, client)
  // inputs land in unrelated stream seeds.
  std::uint64_t z = scenario_seed + 0x9e3779b97f4a7c15ULL * (client_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

OpGenerator::OpGenerator(const MixConfig& mix, std::uint64_t seed)
    : mix_(mix),
      rng_(seed),
      zipf_(mix.keys, mix.dist == KeyDist::kUniform ? 0.99 : mix.theta) {
  mix_.validate();
}

std::uint64_t OpGenerator::draw_key() {
  switch (mix_.dist) {
    case KeyDist::kUniform:
      return rng_.below(mix_.keys);
    case KeyDist::kZipfian:
      return zipf_.next(rng_);
    case KeyDist::kLatest: {
      // Rank 0 = the most recently written key; the head advances with
      // every write (YCSB's "latest" over a bounded keyspace).
      const std::uint64_t rank = zipf_.next(rng_);
      return (head_ + mix_.keys - rank % mix_.keys) % mix_.keys;
    }
  }
  return 0;
}

Op OpGenerator::next() {
  ++ops_;
  Op op;
  const std::uint64_t roll = rng_.below(100);
  if (roll < mix_.reads) {
    op.kind = OpKind::kRead;
    op.key = draw_key();
  } else if (roll < mix_.reads + mix_.writes) {
    op.kind = OpKind::kWrite;
    op.key = draw_key();
    op.value = make_value(op.key, mix_.value_len);
    if (mix_.dist == KeyDist::kLatest) head_ = (head_ + 1) % mix_.keys;
  } else {
    op.kind = OpKind::kScan;
    op.key = draw_key();
    op.scan_len = mix_.scan_len;
  }
  return op;
}

std::uint64_t OpGenerator::arrival_gap_us(double mean_us) {
  const double gap = rng_.exponential(mean_us);
  return gap < 1.0 ? 1 : static_cast<std::uint64_t>(gap);
}

std::string make_value(std::uint64_t key, std::size_t value_len) {
  std::string v = "v" + std::to_string(key) + ".";
  while (v.size() < value_len) v.push_back('x');
  return v;
}

}  // namespace dvs::workload
