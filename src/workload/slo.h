// SLO reports: the stable, integer-only summary a scenario run produces.
//
// A report aggregates what the workload layer measured (throughput,
// write-commit and delivery latency percentiles, availability windows,
// per-phase breakdown) together with the conformance verdict (oracle and
// span-invariant violation counts). Reports merge across seeds in seed
// order (operator+=), and to_json() is canonical — sorted structure,
// integers only (latencies in simulated microseconds, availability in parts
// per million) — so a scenario's report is byte-identical for any --jobs
// value and across platforms (tests/workload/test_scenario.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dvs::workload {

/// Per-phase slice of a report. Histograms use obs::latency_buckets_us():
/// quantiles are exact bucket upper bounds, never interpolated floats.
struct PhaseSlo {
  std::string name;
  std::uint64_t duration_us = 0;  // summed across merged seeds
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t scans = 0;
  obs::HistogramSnapshot commit_latency;
  std::uint64_t samples = 0;
  std::uint64_t available_samples = 0;

  [[nodiscard]] std::uint64_t availability_ppm() const;

  PhaseSlo& operator+=(const PhaseSlo& other);
  friend bool operator==(const PhaseSlo&, const PhaseSlo&) = default;
};

struct SloReport {
  std::string scenario;
  std::uint64_t n = 0;
  std::uint64_t seeds = 0;
  std::uint64_t first_seed = 0;

  /// Measured interval (horizon - warmup), summed across merged seeds.
  std::uint64_t measured_us = 0;

  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t scans = 0;
  /// Writes delivered back at their origin (committed), and writes whose
  /// closed-loop client gave up waiting (the op may still commit later —
  /// timeouts and commits are not exclusive).
  std::uint64_t commits = 0;
  std::uint64_t timeouts = 0;

  /// Write submit → BRCV at the origin (the client-visible commit latency).
  obs::HistogramSnapshot commit_latency;
  /// Write submit → BRCV at each replica (the replication-lag spread).
  obs::HistogramSnapshot delivery_latency;

  /// Availability sampling: an instant is available when at least one
  /// process is operating in a primary view (Cluster::primary_fraction).
  std::uint64_t samples = 0;
  std::uint64_t available_samples = 0;

  /// Conformance verdict: oracle violations abort the run (they never reach
  /// a report from run_scenario), span violations are counted here.
  std::uint64_t oracle_violations = 0;
  std::uint64_t span_violations = 0;
  /// Seeds whose replicas all agreed on the KV digest after settle.
  std::uint64_t converged_seeds = 0;
  std::uint64_t restarts = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t views_installed = 0;

  std::vector<PhaseSlo> phases;

  /// Declared SLOs copied from the scenario (0 = undeclared).
  std::uint64_t slo_availability_ppm = 0;
  std::uint64_t slo_p99_commit_ms = 0;

  [[nodiscard]] std::uint64_t availability_ppm() const;
  /// Completed ops per simulated second (integer floor).
  [[nodiscard]] std::uint64_t throughput_ops_per_sec() const;
  /// True iff every declared SLO holds and no invariant was violated.
  [[nodiscard]] bool slo_pass() const;

  /// Seed-order merge; throws std::logic_error on mismatched shape
  /// (different scenario name or phase structure).
  SloReport& operator+=(const SloReport& other);
  friend bool operator==(const SloReport&, const SloReport&) = default;

  /// Canonical JSON: fixed key order, integers only — byte-identical for
  /// equal reports on every platform.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace dvs::workload
