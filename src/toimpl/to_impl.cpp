#include "toimpl/to_impl.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/sequence.h"

namespace dvs::toimpl {

const char* to_string(ToImplActionKind kind) {
  switch (kind) {
    case ToImplActionKind::kDvsCreateview:
      return "dvs-createview";
    case ToImplActionKind::kDvsNewview:
      return "dvs-newview";
    case ToImplActionKind::kDvsOrder:
      return "dvs-order";
    case ToImplActionKind::kDvsReceive:
      return "dvs-receive";
    case ToImplActionKind::kDvsGprcv:
      return "dvs-gprcv";
    case ToImplActionKind::kDvsSafe:
      return "dvs-safe";
    case ToImplActionKind::kGpsnd:
      return "gpsnd";
    case ToImplActionKind::kRegister:
      return "register";
    case ToImplActionKind::kLabel:
      return "label";
    case ToImplActionKind::kConfirm:
      return "confirm";
    case ToImplActionKind::kBrcv:
      return "brcv";
    case ToImplActionKind::kBcast:
      return "bcast";
  }
  return "?";
}

std::string ToImplAction::to_string() const {
  std::ostringstream os;
  os << toimpl::to_string(kind) << "_" << p.to_string();
  if (view.has_value()) os << "(" << view->to_string() << ")";
  if (gid.has_value()) os << "[g=" << gid->to_string() << "]";
  if (from.has_value()) os << "[from=" << from->to_string() << "]";
  if (msg.has_value()) os << "(" << msg->to_string() << ")";
  return os.str();
}

ToImplAction ToImplAction::make(ToImplActionKind kind, ProcessId p) {
  ToImplAction a;
  a.kind = kind;
  a.p = p;
  return a;
}

ToImplAction ToImplAction::with_view(ToImplActionKind kind, ProcessId p,
                                     View v) {
  ToImplAction a = make(kind, p);
  a.view = std::move(v);
  return a;
}

ToImplAction ToImplAction::order(ProcessId sender, ViewId g) {
  ToImplAction a = make(ToImplActionKind::kDvsOrder, sender);
  a.gid = g;
  a.from = sender;
  return a;
}

ToImplAction ToImplAction::receive(ProcessId p, ViewId g) {
  ToImplAction a = make(ToImplActionKind::kDvsReceive, p);
  a.gid = g;
  return a;
}

ToImplAction ToImplAction::bcast(ProcessId p, AppMsg a_msg) {
  ToImplAction a = make(ToImplActionKind::kBcast, p);
  a.msg = std::move(a_msg);
  return a;
}

ToImplSystem::ToImplSystem(ProcessSet universe, View v0,
                           DvsToToOptions node_options)
    : universe_(std::move(universe)), v0_(std::move(v0)), dvs_(universe_, v0_) {
  for (ProcessId p : universe_) {
    nodes_.emplace(p, DvsToTo{p, v0_, node_options});
  }
}

std::vector<ToImplAction> ToImplSystem::enabled_actions() const {
  std::vector<ToImplAction> out;
  for (const auto& [p, node] : nodes_) {
    for (const View& v : dvs_.newview_candidates(p)) {
      out.push_back(
          ToImplAction::with_view(ToImplActionKind::kDvsNewview, p, v));
    }
    for (const auto& [g, v] : dvs_.created()) {
      if (dvs_.can_order(p, g)) out.push_back(ToImplAction::order(p, g));
      if (dvs_.can_receive(p, g)) out.push_back(ToImplAction::receive(p, g));
    }
    if (dvs_.next_gprcv(p).has_value()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kDvsGprcv, p));
    }
    if (dvs_.next_safe_indication(p).has_value()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kDvsSafe, p));
    }
    if (node.next_gpsnd().has_value()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kGpsnd, p));
    }
    if (node.can_register()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kRegister, p));
    }
    if (node.can_label()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kLabel, p));
    }
    if (node.can_confirm()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kConfirm, p));
    }
    if (node.next_brcv().has_value()) {
      out.push_back(ToImplAction::make(ToImplActionKind::kBrcv, p));
    }
  }
  return out;
}

bool ToImplSystem::can_dvs_createview(const View& v) const {
  return dvs_.can_createview(v);
}

std::optional<spec::ToEvent> ToImplSystem::apply(const ToImplAction& action) {
  DvsToTo& node = nodes_.at(action.p);
  switch (action.kind) {
    case ToImplActionKind::kDvsCreateview:
      dvs_.apply_createview(action.view.value());
      return std::nullopt;
    case ToImplActionKind::kDvsNewview: {
      const View& v = action.view.value();
      dvs_.apply_newview(v, action.p);
      node.on_dvs_newview(v);
      return std::nullopt;
    }
    case ToImplActionKind::kDvsOrder:
      dvs_.apply_order(action.from.value(), action.gid.value());
      return std::nullopt;
    case ToImplActionKind::kDvsReceive:
      dvs_.apply_receive(action.p, action.gid.value());
      return std::nullopt;
    case ToImplActionKind::kDvsGprcv: {
      auto [m, sender] = dvs_.apply_gprcv(action.p);
      node.on_dvs_gprcv(m, sender);
      return std::nullopt;
    }
    case ToImplActionKind::kDvsSafe: {
      auto [m, sender] = dvs_.apply_safe(action.p);
      node.on_dvs_safe(m, sender);
      return std::nullopt;
    }
    case ToImplActionKind::kGpsnd: {
      ClientMsg m = node.take_gpsnd();
      dvs_.apply_gpsnd(m, action.p);
      return std::nullopt;
    }
    case ToImplActionKind::kRegister:
      node.apply_register();
      dvs_.apply_register(action.p);
      return std::nullopt;
    case ToImplActionKind::kLabel:
      node.apply_label();
      return std::nullopt;
    case ToImplActionKind::kConfirm:
      node.apply_confirm();
      return std::nullopt;
    case ToImplActionKind::kBrcv: {
      auto [a, origin] = node.take_brcv();
      return spec::ToEvent{spec::EvBrcv{origin, action.p, std::move(a)}};
    }
    case ToImplActionKind::kBcast:
      node.on_bcast(action.msg.value());
      return spec::ToEvent{spec::EvBcast{action.p, action.msg.value()}};
  }
  throw PreconditionViolation("unknown ToImplAction kind");
}

std::vector<Summary> ToImplSystem::allstate() const {
  std::vector<Summary> out;
  for (const auto& [p, node] : nodes_) {
    for (const auto& [q, x] : node.gotstate()) out.push_back(x);
  }
  // Summaries in transit inside DVS: pending[p,g] and queue[g].
  for (const auto& [p, per_view] : dvs_.pending_all()) {
    for (const auto& [g, msgs] : per_view) {
      for (const ClientMsg& m : msgs) {
        if (const auto* x = std::get_if<Summary>(&m)) out.push_back(*x);
      }
    }
  }
  for (const auto& [g, q] : dvs_.queue_all()) {
    for (const auto& [m, sender] : q) {
      if (const auto* x = std::get_if<Summary>(&m)) out.push_back(*x);
    }
  }
  return out;
}

void ToImplSystem::check_invariants() const {
  // The composed system contains a DVS automaton; its own invariants
  // (4.1, 4.2) must keep holding under the TO workload.
  dvs_.check_invariants();
  check_invariant_6_1();
  check_invariant_6_2();
  check_invariant_6_3();
}

// Invariant 6.1: if x ∈ allstate then ∃w ∈ created with x.high = w.id and
// ∀p ∈ w.set: p ∈ attempted[w.id].
void ToImplSystem::check_invariant_6_1() const {
  for (const Summary& x : allstate()) {
    auto it = dvs_.created().find(x.high);
    DVS_INVARIANT("Invariant 6.1 (TO-IMPL)", it != dvs_.created().end(),
                  "summary with high = " << x.high.to_string()
                                         << " names an uncreated view");
    const View& w = it->second;
    const ProcessSet& att = dvs_.attempted(x.high);
    const bool totally_attempted =
        std::includes(att.begin(), att.end(), w.set().begin(), w.set().end());
    DVS_INVARIANT("Invariant 6.1 (TO-IMPL)", totally_attempted,
                  "summary's high view " << w.to_string()
                                         << " is not totally attempted");
  }
}

// Invariant 6.2: if v ∈ created, x ∈ allstate and x.high > v.id then
// ∃p ∈ v.set with current.id_p > v.id.
void ToImplSystem::check_invariant_6_2() const {
  const std::vector<Summary> all = allstate();
  for (const auto& [gid, v] : dvs_.created()) {
    const bool later_summary = std::any_of(
        all.begin(), all.end(),
        [&](const Summary& x) { return x.high > gid; });
    if (!later_summary) continue;
    const bool advanced =
        std::any_of(v.set().begin(), v.set().end(), [&](ProcessId p) {
          const auto& cur = nodes_.at(p).current();
          return cur.has_value() && cur->id() > gid;
        });
    DVS_INVARIANT("Invariant 6.2 (TO-IMPL)", advanced,
                  "view " << v.to_string()
                          << " precedes an established primary but no member "
                             "has advanced past it");
  }
}

// Invariant 6.3: for every v ∈ created and σ such that every member p with
// current.id_p > v.id has established[v.id]_p and σ ≤ buildorder[p, v.id],
// every x ∈ allstate with x.high > v.id satisfies σ ≤ x.ord. We check the
// strongest such σ: the longest common prefix of the advanced members'
// buildorders (⊤ when no member advanced — then Invariant 6.2 guarantees no
// such x exists).
void ToImplSystem::check_invariant_6_3() const {
  const std::vector<Summary> all = allstate();
  for (const auto& [gid, v] : dvs_.created()) {
    bool hypothesis_holds = true;
    std::vector<std::vector<Label>> advanced_orders;
    for (ProcessId p : v.set()) {
      const DvsToTo& node = nodes_.at(p);
      const auto& cur = node.current();
      if (!cur.has_value() || !(cur->id() > gid)) continue;
      if (!node.established(gid)) {
        hypothesis_holds = false;
        break;
      }
      const auto bo = node.buildorder(gid);
      if (!bo.has_value()) {
        hypothesis_holds = false;  // never in the view: hypothesis undefined
        break;
      }
      advanced_orders.push_back(*bo);
    }
    if (!hypothesis_holds) continue;
    if (advanced_orders.empty()) continue;  // covered by Invariant 6.2
    const std::vector<Label> sigma = common_prefix(advanced_orders);
    for (const Summary& x : all) {
      if (!(x.high > gid)) continue;
      DVS_INVARIANT(
          "Invariant 6.3 (TO-IMPL)", is_prefix(sigma, x.ord),
          "a summary established after view "
              << v.to_string()
              << " does not extend the common confirmed prefix (|σ|="
              << sigma.size() << ", |x.ord|=" << x.ord.size() << ")");
    }
  }
}

}  // namespace dvs::toimpl
