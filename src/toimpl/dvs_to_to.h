// Executable transcription of Figure 5: DVS-TO-TO_p, the application
// automaton that implements totally-ordered broadcast on top of DVS
// (a variant of Keidar–Dolev / Amir–Dolev–Keidar–Melliar-Smith–Moser).
//
// Normal activity: each BCAST is given a system-wide unique label, sent via
// DVS, tentatively ordered on receipt, confirmed when its safe indication
// arrives, and finally reported (BRCV) in confirmed order.
//
// Recovery activity: on a DVS-NEWVIEW each member multicasts a summary of
// its state; once summaries from all members arrive the node *establishes*
// the view — adopting fullorder(gotstate) as its tentative order — then
// registers it with DVS; when the state exchange is safe, all exchanged
// labels become confirmed.
//
// CORRECTIONS to the printed Figure 5 (reproduction findings; see
// EXPERIMENTS.md E6):
//  1. LABEL additionally requires status = normal. As printed, a label
//     created between DVS-NEWVIEW and the summary send leaks into the
//     summary's con, is placed into fullorder via knowncontent, and then
//     also arrives as a regular labelled message — ending up *twice* in
//     order, i.e. a duplicate client delivery. Found by the randomized
//     TO-IMPL sweep; reproduced as a unit test.
//  2. A labelled message received while status ≠ normal is recorded in
//     content but its order-append is deferred until establishment (as
//     printed, the append is overwritten by order := fullorder and the
//     label silently vanishes from this member's tentative order while
//     remaining in everyone else's — diverging confirmed orders). Deferred
//     appends are replayed after fullorder is adopted; pending deferrals
//     are discarded on the next view change (the labels stay in content and
//     are recovered through the state exchange).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/arena.h"
#include "common/labels.h"
#include "common/messages.h"
#include "common/ring.h"
#include "common/types.h"
#include "common/view.h"

namespace dvs::toimpl {

/// Internal content/safe-label tables, backed by the process-wide node pool
/// (common/arena.h): `content` grows by one map node per delivered message,
/// so pooling turns the steady-state insert stream into recycled-node
/// handouts (one chunked allocation per 64 nodes at the high-water mark).
/// The durable snapshots (Summary, ToDurableState) keep the plain map types
/// — conversion happens only at view changes and crash recovery.
using PooledContentMap =
    std::map<Label, AppMsg, std::less<Label>,
             PoolAllocator<std::pair<const Label, AppMsg>>>;
using PooledLabelSet = std::set<Label, std::less<Label>, PoolAllocator<Label>>;

enum class Status { kNormal, kSend, kCollect };

[[nodiscard]] const char* to_string(Status s);

/// Behaviour switches for harness self-validation (mutation testing).
struct DvsToToOptions {
  /// Runs the automaton exactly as printed in Figure 5 — labels may be
  /// created during recovery, and deliveries racing the state exchange
  /// append to order immediately (both reverted corrections; see the class
  /// comment). Unsafe: exists so the test suite can demonstrate that the
  /// TO acceptance harness detects the paper's errata.
  bool printed_figure_mode = false;
};

/// The part of DVS-TO-TO_p state that must survive a crash for the TO
/// service to stay prefix-consistent: the confirmed/reported prefix
/// bookkeeping. `order`/`nextconfirm`/`highprimary` are what this node
/// contributes to the next state exchange (losing them when this node is
/// the only holder of a confirmed label would lose a confirmed delivery);
/// `nextreport` is the BRCV cursor (forgetting it re-delivers); `content`
/// maps the ordered labels back to payloads. Everything else — buffers,
/// gotstate, safe sets, registered/established, nextseqno — is
/// per-view/per-incarnation: a restarted process only ever acts in fresh
/// views with higher ids, so those reset cleanly (labels stay unique
/// because they are keyed by (viewid, seqno, origin) and view ids never
/// repeat across incarnations).
struct ToDurableState {
  ContentMap content;
  std::vector<Label> order;
  std::uint64_t nextconfirm = 1;
  std::uint64_t nextreport = 1;
  ViewId highprimary{};  // init g0

  friend bool operator==(const ToDurableState&,
                         const ToDurableState&) = default;
};

/// Write-ahead observers for the durable transitions, invoked synchronously
/// as the state changes (one simulator event = one atomic log+act unit).
/// The journal in tosys::ToNode appends one WAL record per call.
struct ToDurabilityHooks {
  std::function<void(const Label&, const AppMsg&)> on_content;  // content ∪=
  std::function<void(const Label&)> on_order_append;  // order := order + l
  // Establishment: order wholesale-replaced by fullorder(gotstate) (plus
  // deferred replays), nextconfirm and highprimary jump.
  std::function<void(const std::vector<Label>& order, std::uint64_t nextconfirm,
                     const ViewId& highprimary)>
      on_establish;
  std::function<void(std::uint64_t)> on_confirm;  // new nextconfirm
  std::function<void(std::uint64_t)> on_report;   // new nextreport
};

/// The DVS-TO-TO_p automaton of Figure 5.
class DvsToTo {
 public:
  DvsToTo(ProcessId self, const View& v0, DvsToToOptions options = {});

  // ----- inputs -------------------------------------------------------------

  /// input BCAST(a)_p: append a to the delay buffer.
  void on_bcast(const AppMsg& a);

  /// input DVS-GPRCV(m)_{q,p}: dispatches on labelled message vs summary.
  void on_dvs_gprcv(const ClientMsg& m, ProcessId q);

  /// input DVS-SAFE(m)_{q,p}: labelled message → safe-labels; summary →
  /// safe-exch (and mark the exchange safe when complete).
  void on_dvs_safe(const ClientMsg& m, ProcessId q);

  /// input DVS-NEWVIEW(v)_p: reset per-view state, start recovery.
  void on_dvs_newview(const View& v);

  // ----- internal actions -----------------------------------------------------

  /// internal LABEL(a)_p. Pre: a head of delay ∧ current ≠ ⊥ ∧
  /// status = normal (corrected; see header).
  [[nodiscard]] bool can_label() const;
  void apply_label();

  /// internal CONFIRM_p. Pre: order(nextconfirm) ∈ safe-labels.
  [[nodiscard]] bool can_confirm() const;
  void apply_confirm();

  /// Combined poll-and-take for the drain loops: returns the enabled
  /// DVS-GPSND output and applies its effect, or nullopt when disabled.
  /// Equivalent to next_gpsnd()+take_gpsnd() without building the message
  /// twice (the precondition check is the hot path of every drain).
  [[nodiscard]] std::optional<ClientMsg> poll_gpsnd();
  /// Combined poll-and-take for BRCV, same contract as poll_gpsnd().
  [[nodiscard]] std::optional<std::pair<AppMsg, ProcessId>> poll_brcv();

  // ----- outputs --------------------------------------------------------------

  /// output DVS-GPSND(⟨l,a⟩)_p. Pre: status = normal ∧ l head of buffer ∧
  /// ⟨l,a⟩ ∈ content. Returns the message to hand to DVS.
  [[nodiscard]] std::optional<ClientMsg> next_gpsnd() const;
  ClientMsg take_gpsnd();

  /// output DVS-REGISTER_p. Pre: current ≠ ⊥ ∧ established[current.id] ∧
  /// current.id ∉ registered.
  [[nodiscard]] bool can_register() const;
  void apply_register();

  /// output BRCV(a)_{q,p}. Pre: nextreport < nextconfirm ∧
  /// ⟨order(nextreport), a⟩ ∈ content ∧ q = order(nextreport).origin.
  /// Returns (a, q) — the payload and its original sender.
  [[nodiscard]] std::optional<std::pair<AppMsg, ProcessId>> next_brcv() const;
  std::pair<AppMsg, ProcessId> take_brcv();

  // ----- durability (crash-restart recovery) ---------------------------------

  /// Installs write-ahead observers for the durable transitions. The ctor
  /// fires no hooks; the journal snapshots durable_state() when it attaches.
  void set_durability_hooks(ToDurabilityHooks hooks);

  /// Reinstates recovered durable state after a crash-restart. Must be
  /// called before any input events. current becomes ⊥ and all volatile
  /// state resets; the node re-enters service at the next DVS-NEWVIEW,
  /// contributing its recovered order/content to that state exchange.
  void restore(const ToDurableState& recovered);

  /// Snapshot of the durable variables (journal compaction, checkers).
  [[nodiscard]] ToDurableState durable_state() const;

  // ----- observers (Figure 5 state + history variables) ----------------------

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] const std::optional<View>& current() const { return current_; }
  [[nodiscard]] Status status() const { return status_; }
  [[nodiscard]] const PooledContentMap& content() const { return content_; }
  [[nodiscard]] std::uint64_t nextseqno() const { return nextseqno_; }
  [[nodiscard]] const RingBuffer<Label>& buffer() const { return buffer_; }
  [[nodiscard]] const PooledLabelSet& safe_labels() const {
    return safe_labels_;
  }
  [[nodiscard]] const std::vector<Label>& order() const { return order_; }
  [[nodiscard]] std::uint64_t nextconfirm() const { return nextconfirm_; }
  [[nodiscard]] std::uint64_t nextreport() const { return nextreport_; }
  [[nodiscard]] const ViewId& highprimary() const { return highprimary_; }
  [[nodiscard]] const std::map<ProcessId, Summary>& gotstate() const {
    return gotstate_;
  }
  [[nodiscard]] const ProcessSet& safe_exch() const { return safe_exch_; }
  [[nodiscard]] const std::set<ViewId>& registered() const {
    return registered_;
  }
  [[nodiscard]] const RingBuffer<AppMsg>& delay() const { return delay_; }
  [[nodiscard]] bool established(const ViewId& g) const {
    return established_.contains(g);
  }
  [[nodiscard]] const std::set<ViewId>& established_set() const {
    return established_;
  }

  /// The summary this node would send during recovery:
  /// ⟨content, order, nextconfirm, highprimary⟩.
  [[nodiscard]] Summary make_summary() const;

  /// History variable (from the extended version [13], used by
  /// Invariant 6.3): the tentative order this node had built in view g —
  /// its final order while g was current, or the live order if g is
  /// current now.
  [[nodiscard]] std::optional<std::vector<Label>> buildorder(
      const ViewId& g) const;

 private:
  ProcessId self_;
  DvsToToOptions options_;
  ToDurabilityHooks durability_;

  std::optional<View> current_;
  Status status_ = Status::kNormal;
  PooledContentMap content_;
  std::uint64_t nextseqno_ = 1;
  RingBuffer<Label> buffer_;
  PooledLabelSet safe_labels_;
  std::vector<Label> order_;
  std::uint64_t nextconfirm_ = 1;
  std::uint64_t nextreport_ = 1;
  ViewId highprimary_{};  // init g0
  std::map<ProcessId, Summary> gotstate_;
  ProcessSet safe_exch_;
  std::set<ViewId> registered_;
  RingBuffer<AppMsg> delay_;
  std::set<ViewId> established_;

  // Labelled messages received during recovery, to be appended to the
  // adopted fullorder at establishment (correction 2; see header).
  std::vector<Label> deferred_labels_;

  // Memoized negative result for can_confirm(): the drain loops poll it on
  // every event, but its value can only flip to true when order_,
  // safe_labels_, or nextconfirm_ change — every such mutation re-arms the
  // flag. Pure cache: observable behaviour is identical.
  mutable bool confirm_check_needed_ = true;

  // History: order as of leaving each past view (checker support only).
  std::map<ViewId, std::vector<Label>> past_orders_;
};

}  // namespace dvs::toimpl
