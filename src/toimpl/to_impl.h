// TO-IMPL: the composition of the DVS specification automaton with one
// DVS-TO-TO_p automaton per processor, with all DVS actions hidden
// (paper Section 6). External actions: BCAST (input) and BRCV (output).
//
// The class enumerates enabled actions for exploration, exposes the
// `allstate` derived variable (every summary present anywhere in the system
// state), and implements checkers for Invariants 6.1, 6.2 and 6.3. The
// executable counterpart of Theorem 6.4 is trace acceptance against the TO
// specification (spec::ToAcceptor) over the BCAST/BRCV trace.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/labels.h"
#include "common/messages.h"
#include "common/types.h"
#include "common/view.h"
#include "spec/dvs_spec.h"
#include "spec/events.h"
#include "toimpl/dvs_to_to.h"

namespace dvs::toimpl {

enum class ToImplActionKind {
  // DVS specification moves (hidden).
  kDvsCreateview,
  kDvsNewview,
  kDvsOrder,
  kDvsReceive,
  kDvsGprcv,
  kDvsSafe,
  // DVS-TO-TO_p moves.
  kGpsnd,     // node output → DVS input
  kRegister,  // node output → DVS input
  kLabel,     // internal
  kConfirm,   // internal
  kBrcv,      // external output
  // Environment input.
  kBcast,
};

[[nodiscard]] const char* to_string(ToImplActionKind kind);

struct ToImplAction {
  ToImplActionKind kind{};
  ProcessId p{};
  std::optional<View> view;    // createview / newview
  std::optional<ViewId> gid;   // order / receive
  std::optional<ProcessId> from;  // order sender
  std::optional<AppMsg> msg;   // bcast payload

  [[nodiscard]] std::string to_string() const;

  static ToImplAction make(ToImplActionKind kind, ProcessId p);
  static ToImplAction with_view(ToImplActionKind kind, ProcessId p, View v);
  static ToImplAction order(ProcessId sender, ViewId g);
  static ToImplAction receive(ProcessId p, ViewId g);
  static ToImplAction bcast(ProcessId p, AppMsg a);
};

/// The composed system.
class ToImplSystem {
 public:
  /// `node_options` is forwarded to every DVS-TO-TO_p (mutation-testing
  /// switches; see DvsToToOptions).
  ToImplSystem(ProcessSet universe, View v0,
               DvsToToOptions node_options = {});

  /// Enumerates every enabled non-environment action.
  [[nodiscard]] std::vector<ToImplAction> enabled_actions() const;

  /// DVS-CREATEVIEW candidates are proposed by the caller (the view
  /// nondeterminism of the membership service).
  [[nodiscard]] bool can_dvs_createview(const View& v) const;

  /// Applies the action; returns the external TO event if any.
  std::optional<spec::ToEvent> apply(const ToImplAction& action);

  [[nodiscard]] const ProcessSet& universe() const { return universe_; }
  [[nodiscard]] const spec::DvsSpec& dvs() const { return dvs_; }
  [[nodiscard]] const DvsToTo& node(ProcessId p) const { return nodes_.at(p); }

  /// allstate: every summary present anywhere in the system state — in any
  /// node's gotstate, or in transit inside the DVS service (pending/queue).
  [[nodiscard]] std::vector<Summary> allstate() const;

  /// Checks Invariants 6.1–6.3; throws InvariantViolation on failure.
  void check_invariants() const;

  void check_invariant_6_1() const;
  void check_invariant_6_2() const;
  void check_invariant_6_3() const;

 private:
  ProcessSet universe_;
  View v0_;
  spec::DvsSpec dvs_;
  std::map<ProcessId, DvsToTo> nodes_;
};

}  // namespace dvs::toimpl
